(* End-to-end tests for the trace analysis toolkit: an E6-style smoke
   run streamed through a JSONL file sink must satisfy the trace
   contract (Trace_reader.validate), and the analysis modules (Summary,
   Timeline, Chrome) must agree with the engine's own reports. *)

open Rota_interval
open Rota_resource
open Rota_actor
open Rota_scheduler
open Rota_sim
module Events = Rota_obs.Events
module Json = Rota_obs.Json
module Metrics = Rota_obs.Metrics
module Sink = Rota_obs.Sink
module Tracer = Rota_obs.Tracer
module Trace_reader = Rota_obs.Trace_reader
module Summary = Rota_obs.Summary
module Timeline = Rota_obs.Timeline
module Chrome = Rota_obs.Chrome

let iv a b = Interval.of_pair a b
let l1 = Location.make "l1"
let cpu1 = Located_type.cpu l1
let a1 = Actor_name.make "a1"

let job ~id ~start ~deadline =
  Computation.make ~id ~start ~deadline
    [ Program.make ~name:a1 ~home:l1 [ Action.evaluate 1; Action.ready ] ]

(* An overloaded window: four computations contending for one cpu with
   tight deadlines, so optimistic over-admission produces kills while
   rota's admitted set completes on time. *)
let smoke_trace =
  lazy
    (Trace.of_events
       ((0, Trace.Join (Resource_set.of_terms [ Term.v 1 (iv 0 40) cpu1 ]))
       :: List.map
            (fun (j : Computation.t) -> (j.Computation.start, Trace.Arrive j))
            [
              job ~id:"c1" ~start:0 ~deadline:10;
              job ~id:"c2" ~start:0 ~deadline:10;
              job ~id:"c3" ~start:1 ~deadline:11;
              job ~id:"c4" ~start:14 ~deadline:30;
            ]))

(* Run the smoke workload under both policies through a JSONL file sink
   (with metric sampling on), hand the resulting path and reports to
   [k], and clean up afterwards. *)
let with_smoke_jsonl k =
  Tracer.reset ();
  Metrics.reset ();
  let path = Filename.temp_file "rota-trace-tools" ".jsonl" in
  let finally () =
    Tracer.reset ();
    Metrics.set_enabled false;
    Metrics.reset ();
    Sys.remove path
  in
  Fun.protect ~finally @@ fun () ->
  Tracer.install (Sink.jsonl_file path);
  Tracer.set_sample_period 10;
  Metrics.set_enabled true;
  let reports =
    List.map
      (fun policy -> (policy, Engine.run ~policy (Lazy.force smoke_trace)))
      [ Admission.Rota; Admission.Optimistic ]
  in
  Tracer.uninstall ();
  k path reports

let contains ~sub s =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

let read_events path =
  match Trace_reader.read_file path with
  | Ok (events, Trace_reader.Complete) -> events
  | Ok (_, Trace_reader.Truncated _) -> Alcotest.fail "unexpected truncated trace"
  | Error e ->
      Alcotest.failf "read_file: %s" (Format.asprintf "%a" Trace_reader.pp_error e)

(* --- the trace contract, end to end ---------------------------------------- *)

let test_e2e_validate () =
  with_smoke_jsonl @@ fun path _reports ->
  let v = Trace_reader.validate_file path in
  List.iter (fun e -> Printf.eprintf "validate: %s\n" e) v.Trace_reader.errors;
  Alcotest.(check (list string)) "no contract violations" [] v.Trace_reader.errors;
  Alcotest.(check int) "two runs" 2 v.Trace_reader.runs;
  Alcotest.(check bool) "events seen" true (v.Trace_reader.events > 0)

let test_validate_catches_violations () =
  (* Each contract clause trips on a hand-built bad trace. *)
  let path = Filename.temp_file "rota-trace-bad" ".jsonl" in
  Fun.protect ~finally:(fun () -> Sys.remove path) @@ fun () ->
  let oc = open_out path in
  let line seq run sim kind extra =
    Printf.fprintf oc
      "{\"seq\":%d,\"run\":%d,\"sim\":%s,\"wall_s\":1.0,\"kind\":%S%s}\n" seq
      run sim kind extra
  in
  line 1 1 "0" "run-started" ",\"label\":\"engine policy=rota\"";
  line 1 1 "5" "completed" ",\"id\":\"c1\"";  (* seq not increasing *)
  line 3 1 "2" "completed" ",\"id\":\"c2\"";  (* sim goes backwards *)
  line 4 1 "null" "martian" "";  (* unknown kind is strict-invalid *)
  (* span whose parent id never appears *)
  line 5 1 "null" "span"
    ",\"name\":\"x\",\"id\":9,\"parent\":77,\"depth\":0,\"begin_s\":0.5,\"duration_s\":0.1";
  (* second span reusing id 9 *)
  line 6 1 "null" "span"
    ",\"name\":\"y\",\"id\":9,\"depth\":0,\"begin_s\":0.6,\"duration_s\":0.1";
  close_out oc;
  let v = Trace_reader.validate_file path in
  let expect_substring sub =
    Alcotest.(check bool)
      (Printf.sprintf "an error mentions %S" sub)
      true
      (List.exists (contains ~sub) v.Trace_reader.errors)
  in
  expect_substring "seq";
  expect_substring "sim time";
  expect_substring "unknown event kind";
  expect_substring "parent id 77";
  expect_substring "duplicate span id 9";
  Alcotest.(check bool) "invalid" false (Trace_reader.valid v)

(* Decision provenance in the trace: every admit/reject verdict has a
   matching decision record, strict-parseable, whose embedded certificate
   decodes and is internally well-formed (the full replay audit lives in
   test_audit.ml). *)
let test_e2e_decision_records () =
  with_smoke_jsonl @@ fun path _ ->
  let events = read_events path in
  let decisions, verdicts =
    List.fold_left
      (fun (ds, vs) (e : Events.t) ->
        match e.Events.payload with
        | Events.Decision { id; policy; action; slug; certificate; cid = _ } ->
            ((id, policy, action, slug, certificate) :: ds, vs)
        | Events.Admitted _ | Events.Rejected _ -> (ds, vs + 1)
        | _ -> (ds, vs))
      ([], 0) events
  in
  Alcotest.(check int) "one decision per admit/reject verdict" verdicts
    (List.length decisions);
  Alcotest.(check bool) "decisions present" true (decisions <> []);
  List.iter
    (fun (id, _policy, action, slug, certificate) ->
      (match action with
      | "admit" | "reject" -> ()
      | _ -> Alcotest.failf "unexpected action %S" action);
      Alcotest.(check bool) "slug non-empty" true (slug <> "");
      match Rota.Certificate.of_json certificate with
      | Error msg -> Alcotest.failf "%s: certificate: %s" id msg
      | Ok cert -> (
          match Rota.Certificate.well_formed cert with
          | Ok () -> ()
          | Error msg -> Alcotest.failf "%s: ill-formed certificate: %s" id msg))
    decisions;
  (* Rota backs its verdicts with theorem evidence; the optimistic
     baseline's certificates record that nothing was checked. *)
  let theorems policy =
    List.filter_map
      (fun (_, p, _, _, certificate) ->
        if p = policy then
          match Rota.Certificate.of_json certificate with
          | Ok c -> Some (Rota.Certificate.theorem_name c.Rota.Certificate.theorem)
          | Error _ -> None
        else None)
      decisions
  in
  Alcotest.(check bool) "rota cites T4" true (List.mem "T4" (theorems "rota"));
  Alcotest.(check bool) "optimistic checks nothing" true
    (List.for_all (( = ) "unchecked") (theorems "optimistic"));
  (* The Chrome export renders decisions as instants. *)
  match Chrome.export events with
  | Json.List entries ->
      let decision_instants =
        List.filter
          (fun e ->
            match Json.member "name" e with
            | Some (Json.String n) ->
                String.length n >= 8 && String.sub n 0 8 = "decision"
            | _ -> false)
          entries
      in
      Alcotest.(check int) "decision instants exported"
        (List.length decisions)
        (List.length decision_instants)
  | _ -> Alcotest.fail "export is not a JSON array"

let test_e2e_summary_matches_reports () =
  with_smoke_jsonl @@ fun path reports ->
  let s = Summary.of_events (read_events path) in
  Alcotest.(check int) "one summary run per engine run" (List.length reports)
    (List.length s.Summary.runs);
  List.iter2
    (fun (policy, (r : Engine.report)) (sr : Summary.run) ->
      let name = Admission.policy_name policy in
      Alcotest.(check string) (name ^ " policy parsed") name sr.Summary.policy;
      Alcotest.(check int) (name ^ " offered") r.Engine.offered
        (Summary.offered sr);
      Alcotest.(check int) (name ^ " admitted") r.Engine.admitted
        sr.Summary.admitted;
      Alcotest.(check int) (name ^ " missed") r.Engine.missed_deadlines
        sr.Summary.killed)
    reports s.Summary.runs;
  (* The E6 claim, read straight off the trace: rota-admitted
     computations never miss; optimistic over-admits and pays in kills. *)
  let agg p =
    List.find
      (fun (g : Summary.agg) -> g.Summary.agg_policy = p)
      (Summary.by_policy s)
  in
  Alcotest.(check int) "rota misses nothing" 0 (agg "rota").Summary.agg_killed;
  Alcotest.(check bool) "optimistic admits everything offered" true
    (Summary.agg_admit_rate (agg "optimistic") = 1.);
  Alcotest.(check bool) "optimistic pays with deadline kills" true
    ((agg "optimistic").Summary.agg_killed > (agg "rota").Summary.agg_killed);
  (* Span self-time attribution: engine/run's self time excludes its
     children, so it is strictly below its total but still positive. *)
  match
    List.find_opt
      (fun (st : Summary.span_stat) -> st.Summary.span_name = "engine/run")
      s.Summary.span_stats
  with
  | None -> Alcotest.fail "no engine/run span rollup"
  | Some st ->
      Alcotest.(check bool) "self < total for a parent span" true
        (st.Summary.self_s < st.Summary.total_s);
      Alcotest.(check bool) "self time positive" true (st.Summary.self_s > 0.)

let test_e2e_metric_series () =
  with_smoke_jsonl @@ fun path _ ->
  let s = Summary.of_events (read_events path) in
  match
    List.find_opt
      (fun (se : Summary.series) -> se.Summary.series_name = "engine/ticks")
      s.Summary.series
  with
  | None -> Alcotest.fail "no engine/ticks series sampled"
  | Some se ->
      (* Period 10 over a 40-tick horizon, two runs: 4 samples each. *)
      Alcotest.(check int) "sample count" 8 (List.length se.Summary.samples);
      let values = List.map snd se.Summary.samples in
      Alcotest.(check bool) "counter series nondecreasing" true
        (List.for_all2 ( <= )
           (List.filteri (fun i _ -> i < List.length values - 1) values)
           (List.tl values))

let test_e2e_timeline () =
  with_smoke_jsonl @@ fun path _ ->
  let out = Timeline.render ~width:40 (read_events path) in
  List.iter
    (fun sub ->
      Alcotest.(check bool)
        (Printf.sprintf "timeline mentions %S" sub)
        true (contains ~sub out))
    [ "run 1"; "run 2"; "capacity"; "c1"; "c4"; "legend" ];
  (* The optimistic run over-admits and kills: an X must appear in some
     computation row. *)
  Alcotest.(check bool) "a kill is drawn" true (String.contains out 'X')

let test_e2e_chrome_export () =
  with_smoke_jsonl @@ fun path _ ->
  let events = read_events path in
  let json = Chrome.export events in
  match json with
  | Json.List entries ->
      Alcotest.(check bool) "non-empty" true (entries <> []);
      (* Round-trip through the Json codec: the export is valid JSON. *)
      (match Json.parse (Chrome.to_string events) with
      | Ok (Json.List reparsed) ->
          Alcotest.(check int) "array form round-trips" (List.length entries)
            (List.length reparsed)
      | Ok _ -> Alcotest.fail "export did not reparse as an array"
      | Error msg -> Alcotest.failf "export is not valid JSON: %s" msg);
      (* Every span slice carries the id/parent linkage, and parents
         resolve within the export. *)
      let member name j = Json.member name j in
      let spans =
        List.filter
          (fun e -> member "ph" e = Some (Json.String "X"))
          entries
      in
      Alcotest.(check bool) "spans exported" true (spans <> []);
      let ids =
        List.filter_map
          (fun e ->
            Option.bind (member "args" e) (fun args ->
                match member "id" args with
                | Some (Json.Int i) -> Some i
                | _ -> None))
          spans
      in
      Alcotest.(check int) "every span has an id" (List.length spans)
        (List.length ids);
      List.iter
        (fun e ->
          match Option.bind (member "args" e) (member "parent") with
          | Some (Json.Int p) ->
              Alcotest.(check bool)
                (Printf.sprintf "parent %d resolves" p)
                true (List.mem p ids)
          | Some Json.Null | None -> ()
          | Some _ -> Alcotest.fail "parent is neither int nor null")
        spans
  | _ -> Alcotest.fail "export is not a JSON array"

(* --- crash-cut traces -------------------------------------------------------- *)

(* A trace whose final line was cut mid-write (no newline, unparseable
   fragment) must yield every complete line plus a structured
   [Truncated] tail — not a parse error — while the validator flags the
   cut as a contract violation.  Dropping only the newline keeps the
   line parseable, so nothing is lost and the tail stays [Complete]. *)
let test_truncated_final_line () =
  with_smoke_jsonl @@ fun path _ ->
  let full = In_channel.with_open_bin path In_channel.input_all in
  let complete = read_events path in
  let n = List.length complete in
  let cut = Filename.temp_file "rota-truncated" ".jsonl" in
  Fun.protect ~finally:(fun () -> Sys.remove cut) @@ fun () ->
  let write_prefix len =
    Out_channel.with_open_bin cut (fun oc ->
        Out_channel.output_string oc (String.sub full 0 len))
  in
  (* Chop the newline and the line's closing bytes: a crash mid-write. *)
  write_prefix (String.length full - 10);
  (match Trace_reader.read_file cut with
  | Ok (events, Trace_reader.Truncated { line; bytes }) ->
      Alcotest.(check int) "every complete line delivered" (n - 1)
        (List.length events);
      Alcotest.(check int) "fragment is the final line" n line;
      Alcotest.(check bool) "fragment length reported" true (bytes > 0)
  | Ok (_, Trace_reader.Complete) -> Alcotest.fail "cut line not detected"
  | Error e ->
      Alcotest.failf "crash-cut trace must still read: %s"
        (Format.asprintf "%a" Trace_reader.pp_error e));
  let v = Trace_reader.validate_file cut in
  Alcotest.(check bool) "validate flags the cut" true
    (List.exists (contains ~sub:"truncated final line") v.Trace_reader.errors);
  (* Missing newline alone loses nothing: the line still parses. *)
  write_prefix (String.length full - 1);
  match Trace_reader.read_file cut with
  | Ok (events, Trace_reader.Complete) ->
      Alcotest.(check int) "unterminated final line still parsed" n
        (List.length events)
  | Ok (_, Trace_reader.Truncated _) ->
      Alcotest.fail "parseable final line must not count as truncated"
  | Error e ->
      Alcotest.failf "read_file: %s" (Format.asprintf "%a" Trace_reader.pp_error e)

(* The follow cursor only ever parses completed lines: a partial final
   line stays buffered across polls and is delivered once its remaining
   bytes (and newline) land. *)
let test_follow_partial_lines () =
  let path = Filename.temp_file "rota-follow" ".jsonl" in
  Fun.protect ~finally:(fun () -> Sys.remove path) @@ fun () ->
  let oc = open_out_bin path in
  Fun.protect ~finally:(fun () -> close_out_noerr oc) @@ fun () ->
  let line i =
    Printf.sprintf
      "{\"seq\":%d,\"run\":1,\"sim\":%d,\"wall_s\":1.0,\"kind\":\"completed\",\"id\":\"c%d\"}"
      i i i
  in
  let cursor =
    match Trace_reader.Follow.open_file path with
    | Ok c -> c
    | Error e ->
        Alcotest.failf "open_file: %s"
          (Format.asprintf "%a" Trace_reader.pp_error e)
  in
  Fun.protect ~finally:(fun () -> Trace_reader.Follow.close cursor)
  @@ fun () ->
  let poll () =
    match Trace_reader.Follow.poll cursor with
    | Ok events -> List.map (fun (e : Events.t) -> e.Events.seq) events
    | Error e ->
        Alcotest.failf "poll: %s" (Format.asprintf "%a" Trace_reader.pp_error e)
  in
  Alcotest.(check (list int)) "empty file, nothing yet" [] (poll ());
  (* One complete line plus the first half of the next. *)
  output_string oc (line 1);
  output_char oc '\n';
  let l2 = line 2 in
  output_string oc (String.sub l2 0 12);
  flush oc;
  Alcotest.(check (list int)) "only the completed line" [ 1 ] (poll ());
  Alcotest.(check bool) "partial line buffered" true
    (Trace_reader.Follow.pending_bytes cursor > 0);
  Alcotest.(check (list int)) "re-poll mid-write yields nothing" [] (poll ());
  (* The writer finishes the line: it is delivered exactly once. *)
  output_string oc (String.sub l2 12 (String.length l2 - 12));
  output_char oc '\n';
  output_string oc (line 3);
  output_char oc '\n';
  flush oc;
  Alcotest.(check (list int)) "resumed line and its successor" [ 2; 3 ] (poll ());
  Alcotest.(check int) "no pending bytes after the newline" 0
    (Trace_reader.Follow.pending_bytes cursor)

(* --- buffered file sink ----------------------------------------------------- *)

let test_buffered_sink () =
  Tracer.reset ();
  let path = Filename.temp_file "rota-buffered" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> Tracer.reset (); Sys.remove path)
  @@ fun () ->
  Tracer.install (Sink.jsonl_file ~flush_every:64 path);
  for i = 1 to 10 do
    Tracer.emit ~sim:i (Events.Completed { id = Printf.sprintf "c%d" i })
  done;
  (* Fewer events than the buffer: close (via uninstall) must flush. *)
  Tracer.uninstall ();
  let events = read_events path in
  Alcotest.(check int) "all events on disk after close" 10 (List.length events);
  Alcotest.check_raises "flush_every must be positive"
    (Invalid_argument "Sink.jsonl: flush_every must be >= 1") (fun () ->
      ignore (Sink.jsonl ~flush_every:0 stdout))

(* --------------------------------------------------------------------------- *)

let () =
  Alcotest.run "trace-tools"
    [
      ( "contract",
        [
          Alcotest.test_case "E6 smoke validates" `Quick test_e2e_validate;
          Alcotest.test_case "violations are caught" `Quick
            test_validate_catches_violations;
          Alcotest.test_case "decision records carry certificates" `Quick
            test_e2e_decision_records;
        ] );
      ( "analysis",
        [
          Alcotest.test_case "summary matches engine reports" `Quick
            test_e2e_summary_matches_reports;
          Alcotest.test_case "metric time series" `Quick test_e2e_metric_series;
          Alcotest.test_case "timeline renders lifecycles" `Quick
            test_e2e_timeline;
          Alcotest.test_case "chrome export: valid, linked" `Quick
            test_e2e_chrome_export;
        ] );
      ( "crash-cut",
        [
          Alcotest.test_case "truncated final line tolerated, flagged" `Quick
            test_truncated_final_line;
          Alcotest.test_case "follow never parses a partial line" `Quick
            test_follow_partial_lines;
        ] );
      ( "sink",
        [ Alcotest.test_case "buffered flush" `Quick test_buffered_sink ] );
    ]
