(* The serve daemon's replicated core, tested without sockets: wire
   codec round-trips, the shedding policy's bounded-delay arithmetic,
   replica snapshots, and the central durability property — truncating
   the WAL at ANY byte offset and recovering yields exactly the state
   the surviving prefix proves (residual digest and ledger contents),
   which is what makes an acknowledged decision crash-proof. *)

module Interval = Rota_interval.Interval
module Resource_set = Rota_resource.Resource_set
module Computation = Rota_actor.Computation
module Certificate = Rota.Certificate
module Admission = Rota_scheduler.Admission
module Calendar = Rota_scheduler.Calendar
module Trace = Rota_sim.Trace
module Scenario = Rota_workload.Scenario
module Json = Rota_obs.Json
module Binary = Rota_obs.Binary
module Wire = Rota_server.Wire
module Shed = Rota_server.Shed
module Replica = Rota_server.Replica
module Wal = Rota_server.Wal

let temp_dir prefix =
  let path = Filename.temp_file prefix "" in
  Sys.remove path;
  Unix.mkdir path 0o755;
  path

let rec rm_rf path =
  if Sys.is_directory path then begin
    Array.iter (fun f -> rm_rf (Filename.concat path f)) (Sys.readdir path);
    Unix.rmdir path
  end
  else Sys.remove path

let params ~seed =
  {
    Scenario.default_params with
    seed;
    locations = 2;
    horizon = 120;
    arrivals = 14;
    churn_joins = 4;
  }

(* A workload exercising every event kind the daemon logs: joins and
   admits from the scenario trace, then a mid-horizon revocation of the
   first joined slice (evictions, fault terms) and a couple of
   releases. *)
let ops_of ~seed =
  let p = params ~seed in
  let trace = Scenario.trace p in
  let base =
    List.filter_map
      (fun (at, ev) ->
        match ev with
        | Trace.Join theta ->
            Some (Wire.Join { now = at; terms = Certificate.rects_of_set theta })
        | Trace.Arrive computation ->
            Some (Wire.Admit { now = at; computation; budget_ms = None })
        | Trace.Arrive_session _ -> None)
      (Trace.events trace)
  in
  let horizon = Trace.horizon trace in
  let revoke =
    match Trace.joins trace with
    | (_, theta) :: _ ->
        [ Wire.Revoke
            { now = horizon / 2; terms = Certificate.rects_of_set theta } ]
    | [] -> []
  in
  let releases =
    match Trace.arrivals trace with
    | (_, c0) :: (_, c1) :: _ ->
        [
          Wire.Release { now = (horizon / 2) + 1; id = c0.Computation.id };
          Wire.Release { now = (horizon / 2) + 2; id = c1.Computation.id };
        ]
    | _ -> []
  in
  base @ revoke @ releases

(* Drive [ops] through a live replica exactly as the daemon does:
   apply, append the payloads, sync.  Returns the replica with the WAL
   on disk in [dir]. *)
let build_wal ~dir ~policy ops =
  match Wal.recover ~dir ~policy () with
  | Error m -> failwith ("build_wal: " ^ m)
  | Ok r ->
      let replica = r.Wal.replica and w = r.Wal.writer in
      List.iter
        (fun op ->
          let payloads, _reply = Replica.apply replica op in
          if payloads <> [] then
            ignore (Wal.append w ~sim:(Replica.now replica) payloads))
        ops;
      Wal.sync w;
      Wal.close w;
      replica

(* The specification side of the truncation property: replay the
   complete records of [path] into a fresh replica, by hand. *)
let replay_prefix ~path ~policy =
  let replica = Replica.create policy in
  let ic = open_in_bin path in
  Fun.protect ~finally:(fun () -> close_in_noerr ic) @@ fun () ->
  (match Binary.read_header ic with
  | Ok () -> ()
  | Error m -> failwith ("replay_prefix: " ^ m));
  let rec loop n =
    match Binary.read_item ic with
    | Binary.Event e -> (
        match Replica.replay replica e with
        | Ok () -> loop (n + 1)
        | Error m -> failwith (Printf.sprintf "replay_prefix: seq %d: %s" e.Rota_obs.Events.seq m))
    | Binary.Eof | Binary.Cut _ -> n
    | Binary.Malformed m -> failwith ("replay_prefix: malformed: " ^ m)
  in
  let n = loop 0 in
  (replica, n)

let entries_summary replica =
  List.map
    (fun (e : Calendar.entry) -> (e.Calendar.computation, e.Calendar.reservation))
    (Calendar.entries (Admission.calendar (Replica.controller replica)))

let demands_summary replica =
  Admission.admitted_demands (Replica.controller replica)

let same_state a b =
  String.equal (Replica.residual_digest a) (Replica.residual_digest b)
  && List.equal
       (fun (ida, ra) (idb, rb) ->
         String.equal ida idb && Resource_set.equal ra rb)
       (entries_summary a) (entries_summary b)
  && demands_summary a = demands_summary b

(* --- the truncation property ------------------------------------------------ *)

let prop_truncation_recovers =
  QCheck.Test.make ~count:40
    ~name:"wal: recovery after truncation at any byte = replay of the prefix"
    QCheck.(pair (int_bound 1000) (int_bound 10_000))
    (fun (seed, cut_raw) ->
      let build = temp_dir "rota-wal-build" in
      let crash = temp_dir "rota-wal-crash" in
      Fun.protect ~finally:(fun () -> rm_rf build; rm_rf crash)
      @@ fun () ->
      let policy = Admission.Rota in
      let _live = build_wal ~dir:build ~policy (ops_of ~seed) in
      let full =
        In_channel.with_open_bin (Wal.wal_path ~dir:build)
          In_channel.input_all
      in
      let header = String.length Binary.header in
      let len = String.length full in
      (* Any offset from just-past-the-header to the full file. *)
      let cut = header + (cut_raw mod (len - header + 1)) in
      Out_channel.with_open_bin (Wal.wal_path ~dir:crash) (fun oc ->
          Out_channel.output_string oc (String.sub full 0 cut));
      match Wal.recover ~dir:crash ~policy () with
      | Error m -> QCheck.Test.fail_reportf "recover at cut %d: %s" cut m
      | Ok r ->
          Wal.close r.Wal.writer;
          (* Recovery must have truncated the dangling tail on disk. *)
          let spec, complete_records =
            replay_prefix ~path:(Wal.wal_path ~dir:crash) ~policy
          in
          if complete_records <> r.Wal.scanned then
            QCheck.Test.fail_reportf
              "cut %d: %d records on disk after recovery, %d scanned" cut
              complete_records r.Wal.scanned;
          if not (same_state r.Wal.replica spec) then
            QCheck.Test.fail_reportf
              "cut %d: recovered state differs from the prefix's (digest %s \
               vs %s)"
              cut
              (Replica.residual_digest r.Wal.replica)
              (Replica.residual_digest spec);
          true)

(* Snapshot-assisted recovery agrees with the from-scratch replay, and a
   snapshot past the surviving prefix is abandoned for the WAL. *)
let test_snapshot_recovery () =
  let dir = temp_dir "rota-wal-snap" in
  Fun.protect ~finally:(fun () -> rm_rf dir) @@ fun () ->
  let policy = Admission.Rota in
  let ops = ops_of ~seed:42 in
  let n = List.length ops in
  let live =
    match Wal.recover ~dir ~policy () with
    | Error m -> Alcotest.failf "recover: %s" m
    | Ok r ->
        let replica = r.Wal.replica and w = r.Wal.writer in
        List.iteri
          (fun i op ->
            let payloads, _ = Replica.apply replica op in
            if payloads <> [] then
              ignore (Wal.append w ~sim:(Replica.now replica) payloads);
            if i = n / 2 then begin
              Wal.sync w;
              match Wal.save_snapshot ~path:(Wal.snapshot_path ~dir) w replica with
              | Ok () -> ()
              | Error m -> Alcotest.failf "save_snapshot: %s" m
            end)
          ops;
        Wal.sync w;
        Wal.close w;
        replica
  in
  (match Wal.recover ~dir ~policy () with
  | Error m -> Alcotest.failf "recover with snapshot: %s" m
  | Ok r ->
      Wal.close r.Wal.writer;
      Alcotest.(check bool) "snapshot was used" true r.Wal.from_snapshot;
      Alcotest.(check bool)
        "tail shorter than stream" true
        (r.Wal.replayed < r.Wal.scanned);
      Alcotest.(check string) "digest agrees with the live state"
        (Replica.residual_digest live)
        r.Wal.digest;
      Alcotest.(check bool) "ledger agrees" true (same_state live r.Wal.replica));
  (* Cut the WAL back to before the snapshot point: recovery must fall
     back to the from-scratch replay of the surviving prefix. *)
  let full = In_channel.with_open_bin (Wal.wal_path ~dir) In_channel.input_all in
  Out_channel.with_open_bin (Wal.wal_path ~dir) (fun oc ->
      Out_channel.output_string oc
        (String.sub full 0 (String.length full / 4)));
  match Wal.recover ~dir ~policy () with
  | Error m -> Alcotest.failf "recover past-snapshot cut: %s" m
  | Ok r ->
      Wal.close r.Wal.writer;
      Alcotest.(check bool) "snapshot abandoned" false r.Wal.from_snapshot;
      let spec, _ = replay_prefix ~path:(Wal.wal_path ~dir) ~policy in
      Alcotest.(check bool) "prefix state recovered" true
        (same_state spec r.Wal.replica)

(* --- the shedding policy ----------------------------------------------------- *)

(* The two checkpoints enforce the invariant the daemon advertises: an
   accepted request's queue delay never exceeds its budget, and the
   queue cannot grow past the point where the predicted delay blows the
   default budget. *)
let test_shed_bounded_delay () =
  let s = Shed.create ~default_budget_s:0.05 ~max_queue:10 () in
  Shed.observe s 0.02;
  Alcotest.(check (float 1e-9)) "first sample seeds the estimate" 0.02
    (Shed.estimate_s s);
  (match Shed.on_enqueue s ~queue_len:0 ~budget_ms:None with
  | Shed.Accept -> ()
  | Shed.Reject { message; _ } ->
      Alcotest.failf "empty queue must accept: %s" message);
  (match Shed.on_enqueue s ~queue_len:4 ~budget_ms:None with
  | Shed.Reject _ -> ()
  | Shed.Accept ->
      Alcotest.fail "5 queued x 20ms estimate > 50ms budget must shed");
  (match Shed.on_enqueue s ~queue_len:4 ~budget_ms:(Some 1000.) with
  | Shed.Accept -> ()
  | Shed.Reject { message; _ } ->
      Alcotest.failf "generous budget must accept: %s" message);
  (match Shed.on_enqueue s ~queue_len:10 ~budget_ms:(Some 1e9) with
  | Shed.Reject _ -> ()
  | Shed.Accept -> Alcotest.fail "full queue must shed regardless of budget");
  (match Shed.on_dequeue s ~waited_s:0.06 ~budget_ms:None with
  | Shed.Reject _ -> ()
  | Shed.Accept -> Alcotest.fail "blown budget at dequeue must shed");
  match Shed.on_dequeue s ~waited_s:0.01 ~budget_ms:None with
  | Shed.Accept -> ()
  | Shed.Reject { message; _ } ->
      Alcotest.failf "in-budget wait must be decided: %s" message

(* Whatever latency history, a request the dequeue checkpoint lets
   through has waited at most its budget: the p99-bounding argument is
   this inequality, not the estimator. *)
let prop_dequeue_bounds_wait =
  QCheck.Test.make ~count:200 ~name:"shed: accepted wait <= budget"
    QCheck.(triple (list (QCheck.float_bound_inclusive 1.0))
              (QCheck.float_bound_inclusive 1.0)
              (QCheck.float_bound_inclusive 0.5))
    (fun (samples, waited, budget) ->
      QCheck.assume (budget > 0.);
      let s = Shed.create ~default_budget_s:budget () in
      List.iter (Shed.observe s) samples;
      match Shed.on_dequeue s ~waited_s:waited ~budget_ms:None with
      | Shed.Accept -> waited <= budget
      | Shed.Reject _ -> waited > budget)

(* --- wire codec -------------------------------------------------------------- *)

let roundtrip_request r =
  match Wire.request_of_line (Wire.request_to_line r) with
  | Ok r' -> r' = r
  | Error m -> Alcotest.failf "request did not parse back: %s" m

let test_wire_roundtrip () =
  let computations = Scenario.computations (params ~seed:9) in
  Alcotest.(check bool) "some computations generated" true (computations <> []);
  List.iter
    (fun c ->
      match Wire.computation_of_json (Wire.computation_to_json c) with
      | Ok c' ->
          Alcotest.(check bool)
            (Printf.sprintf "computation %s round-trips" c.Computation.id)
            true (c' = c)
      | Error m -> Alcotest.failf "computation codec: %s" m)
    computations;
  let slice = Scenario.capacity_of (params ~seed:9) in
  let requests =
    [
      { Wire.tag = Json.Null;
        op = Wire.Admit
            { now = 3; computation = List.hd computations; budget_ms = Some 40. } };
      { Wire.tag = Json.Int 7;
        op = Wire.Join { now = 0; terms = Certificate.rects_of_set slice } };
      { Wire.tag = Json.String "r1";
        op = Wire.Revoke { now = 9; terms = Certificate.rects_of_set slice } };
      { Wire.tag = Json.Null; op = Wire.Release { now = 4; id = "c01" } };
      { Wire.tag = Json.Null; op = Wire.Query "residual-digest" };
      { Wire.tag = Json.Null; op = Wire.Ping };
      { Wire.tag = Json.Null; op = Wire.Shutdown };
    ]
  in
  List.iter
    (fun r ->
      Alcotest.(check bool) "request round-trips" true (roundtrip_request r))
    requests;
  let responses =
    [
      { Wire.tag = Json.Null;
        cid = None;
        reply =
          Wire.Decided
            { id = "c1"; action = "admit"; slug = "committed";
              reason = "fits"; digest = "abc123" } };
      { Wire.tag = Json.Int 7;
        cid = None;
        reply = Wire.Shed { id = "c2"; reason = "queue full" } };
      { Wire.tag = Json.Null; cid = None;
        reply = Wire.Released { id = "c3"; existed = true } };
      { Wire.tag = Json.Null;
        cid = None;
        reply = Wire.Revoked { quantity = 12; evicted = [ "a"; "b" ] } };
      { Wire.tag = Json.Null; cid = None; reply = Wire.Joined { quantity = 5 } };
      { Wire.tag = Json.Null;
        cid = None;
        reply = Wire.Info [ ("digest", Json.String "ff") ] };
      { Wire.tag = Json.Null; cid = None; reply = Wire.Pong };
      { Wire.tag = Json.Null; cid = None; reply = Wire.Draining };
      { Wire.tag = Json.Null; cid = None; reply = Wire.Failed "nope" };
    ]
  in
  List.iter
    (fun r ->
      match Wire.response_of_line (Wire.response_to_line r) with
      | Ok r' ->
          Alcotest.(check bool) "response round-trips" true (r' = r)
      | Error m -> Alcotest.failf "response did not parse back: %s" m)
    responses;
  (* A shed response is, on the wire, a reject carrying the shed slug. *)
  match
    Json.parse
      (Wire.response_to_line
         { Wire.tag = Json.Null;
           cid = None;
           reply = Wire.Shed { id = "x"; reason = "late" } })
  with
  | Ok json ->
      Alcotest.(check bool) "shed slug on the wire" true
        (Json.member "slug" json = Some (Json.String Wire.shed_slug))
  | Error m -> Alcotest.failf "shed response unparsable: %s" m

(* --- correlation ids ---------------------------------------------------------- *)

(* The daemon's cid travels two ways: echoed in the reply envelope (and
   as the tag for untagged requests) and stamped into the WAL decision
   record — so a client log line, a scrape, and a WAL entry can be
   joined on one key. *)
let test_wire_cid_echo () =
  let with_cid =
    { Wire.tag = Json.Int 3; cid = Some "r42-7"; reply = Wire.Pong }
  in
  (match Wire.response_of_line (Wire.response_to_line with_cid) with
  | Ok r -> Alcotest.(check bool) "cid round-trips" true (r = with_cid)
  | Error m -> Alcotest.failf "cid response did not parse: %s" m);
  (match Json.parse (Wire.response_to_line with_cid) with
  | Ok json ->
      Alcotest.(check bool) "cid on the wire" true
        (Json.member "cid" json = Some (Json.String "r42-7"))
  | Error m -> Alcotest.failf "cid response unparsable: %s" m);
  let without =
    { Wire.tag = Json.Null; cid = None; reply = Wire.Draining }
  in
  (match Wire.response_of_line (Wire.response_to_line without) with
  | Ok r -> Alcotest.(check bool) "absent cid is None" true (r = without)
  | Error m -> Alcotest.failf "cid-less response did not parse: %s" m);
  let snapshot =
    { Wire.tag = Json.Null;
      cid = Some "r1-1";
      reply =
        Wire.Metrics_snapshot
          { exposition = "# EOF\n";
            samples =
              [ Json.Obj [ ("kind", Json.String "metric-sample") ] ] } }
  in
  match Wire.response_of_line (Wire.response_to_line snapshot) with
  | Ok r -> Alcotest.(check bool) "metrics snapshot round-trips" true (r = snapshot)
  | Error m -> Alcotest.failf "metrics snapshot did not parse: %s" m

let test_cid_stamped_in_decision () =
  let replica = Replica.create Admission.Rota in
  let computation = List.hd (Scenario.computations (params ~seed:9)) in
  let payloads, _reply =
    Replica.apply ~cid:"r9-1" replica
      (Wire.Admit { now = 0; computation; budget_ms = None })
  in
  let cids =
    List.filter_map
      (function
        | Rota_obs.Events.Decision { cid; _ } -> Some cid
        | _ -> None)
      payloads
  in
  Alcotest.(check bool) "decision carries the cid" true
    (cids <> [] && List.for_all (( = ) (Some "r9-1")) cids)

(* --- the scrape surface ------------------------------------------------------- *)

module Telemetry = Rota_server.Telemetry
module Metrics = Rota_obs.Metrics
module Openmetrics = Rota_obs.Openmetrics

let contains ~sub s =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

(* The exposition a live daemon serves: lint-clean, and the family set
   is stable — every family the daemon can ever touch is present from
   the first scrape, zero-valued or not. *)
let test_scrape_families () =
  Metrics.set_enabled true;
  Fun.protect ~finally:(fun () -> Metrics.set_enabled false) @@ fun () ->
  Telemetry.count_request "admit";
  Telemetry.count_shed "queue-full";
  Metrics.observe Telemetry.rtt 0.004;
  Metrics.observe Telemetry.admit_slack 12.;
  Telemetry.set_burn Telemetry.burn_5m 1.25;
  let body = Openmetrics.render (Metrics.snapshot ()) in
  (match Openmetrics.lint body with
  | Ok () -> ()
  | Error e -> Alcotest.failf "exposition does not lint: %s" e);
  List.iter
    (fun sub ->
      Alcotest.(check bool) (sub ^ " present") true (contains ~sub body))
    [
      "# TYPE server_rtt_s histogram";
      "# TYPE server_queue_wait_s histogram";
      "# TYPE server_fsync_s histogram";
      "# TYPE server_admit_slack histogram";
      "# TYPE server_queue_depth gauge";
      "# TYPE server_connections gauge";
      "# TYPE server_wal_bytes counter";
      "server_requests_total{slug=\"admit\"} 1";
      "server_requests_total{slug=\"ping\"} 0";
      "server_shed_total{slug=\"queue-full\"} 1";
      "server_shed_total{slug=\"predicted-delay\"} 0";
      "slo_burn_5m 1250";
      "slo_burn_1h 0";
      "# EOF";
    ]

(* Deadline slack read off a constructive certificate: deadline minus
   the latest schedule-step stop. *)
let test_admit_slack_bound () =
  let step stop =
    { Certificate.index = 0;
      need = [];
      subwindow = Interval.of_pair 0 stop;
      allocation = [] }
  in
  let part stops =
    { Certificate.actor = "a";
      window = Interval.of_pair 0 100;
      breakpoints = [];
      steps = List.map step stops }
  in
  let cert evidence = { Certificate.theorem = Certificate.T2; digest = ""; evidence } in
  (match
     Telemetry.completion_bound (cert (Certificate.Schedules [ part [ 4; 9 ] ]))
   with
  | Some 9 -> ()
  | Some other -> Alcotest.failf "schedules bound %d, want 9" other
  | None -> Alcotest.fail "schedules evidence must bound completion");
  (match Telemetry.completion_bound (cert Certificate.Infeasible) with
  | None -> ()
  | Some _ -> Alcotest.fail "reject evidence has no completion bound");
  match
    Telemetry.completion_bound
      (cert
         (Certificate.Aggregate_fit
            { window = Interval.of_pair 2 17; rows = []; fits = true }))
  with
  | Some 17 -> ()
  | _ -> Alcotest.fail "aggregate fit bounds at the window stop"

(* --- replica snapshots -------------------------------------------------------- *)

let test_replica_snapshot_roundtrip () =
  let dir = temp_dir "rota-replica-snap" in
  Fun.protect ~finally:(fun () -> rm_rf dir) @@ fun () ->
  let live = build_wal ~dir ~policy:Admission.Rota (ops_of ~seed:4) in
  match Replica.restore (Replica.snapshot live) with
  | Error m -> Alcotest.failf "restore: %s" m
  | Ok back ->
      Alcotest.(check bool) "snapshot round-trips the ledger" true
        (same_state live back);
      Alcotest.(check int) "clock preserved" (Replica.now live)
        (Replica.now back)

(* A tampered snapshot (one reservation quantity nudged) must be
   refused by the digest check, not silently adopted. *)
let test_snapshot_tamper_refused () =
  let dir = temp_dir "rota-replica-tamper" in
  Fun.protect ~finally:(fun () -> rm_rf dir) @@ fun () ->
  let live = build_wal ~dir ~policy:Admission.Rota (ops_of ~seed:4) in
  let json = Replica.snapshot live in
  let rec tamper json =
    match json with
    | Json.Obj fields ->
        Json.Obj (List.map (fun (k, v) -> (k, tamper v)) fields)
    | Json.List items -> Json.List (List.map tamper items)
    | Json.String s when String.length s = 16 && s <> "" ->
        (* Digest-shaped strings get one nibble flipped. *)
        Json.String
          (String.mapi (fun i c -> if i = 0 then (if c = '0' then '1' else '0') else c) s)
    | other -> other
  in
  match Replica.restore (tamper json) with
  | Ok _ -> Alcotest.fail "tampered snapshot must be refused"
  | Error _ -> ()

let () =
  Alcotest.run "server"
    [
      ( "wal",
        QCheck_alcotest.to_alcotest prop_truncation_recovers
        :: [
             Alcotest.test_case "snapshot-assisted recovery" `Quick
               test_snapshot_recovery;
           ] );
      ( "shed",
        [
          Alcotest.test_case "bounded queue delay" `Quick
            test_shed_bounded_delay;
        ]
        @ [ QCheck_alcotest.to_alcotest prop_dequeue_bounds_wait ] );
      ( "wire",
        [
          Alcotest.test_case "codec round-trips" `Quick test_wire_roundtrip;
          Alcotest.test_case "cid echo round-trips" `Quick test_wire_cid_echo;
          Alcotest.test_case "cid stamped into decisions" `Quick
            test_cid_stamped_in_decision;
        ] );
      ( "scrape",
        [
          Alcotest.test_case "stable lint-clean families" `Quick
            test_scrape_families;
          Alcotest.test_case "admit slack completion bound" `Quick
            test_admit_slack_bound;
        ] );
      ( "snapshot",
        [
          Alcotest.test_case "replica snapshot round-trips" `Quick
            test_replica_snapshot_roundtrip;
          Alcotest.test_case "tampered snapshot refused" `Quick
            test_snapshot_tamper_refused;
        ] );
    ]
