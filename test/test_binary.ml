(* The ROTB binary trace codec's contract, property-tested: a trace of
   random events of every kind must survive JSONL -> binary -> JSONL
   unchanged (the exact pipeline `--trace-format=binary` plus
   `rota trace convert` runs), and a crash-cut binary file must read
   back as a clean prefix plus a structured [Truncated] tail, mirroring
   the JSONL crash-cut behaviour tested in test_trace_tools.ml. *)

module Events = Rota_obs.Events
module Json = Rota_obs.Json
module Binary = Rota_obs.Binary
module Sink = Rota_obs.Sink
module Trace_reader = Rota_obs.Trace_reader

let contains ~sub s =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

(* --- generators ------------------------------------------------------------- *)

(* Strings exercise the JSON escaper: quotes, backslashes, newlines and
   raw control bytes all appear. *)
let gen_string =
  QCheck.Gen.(
    string_size ~gen:
      (frequency
         [
           (8, char_range 'a' 'z');
           (2, char_range '0' '9');
           (2, oneofl [ '/'; '-'; '_'; '.'; ' '; '@' ]);
           (1, oneofl [ '"'; '\\'; '\n'; '\t'; '\001' ]);
         ])
      (int_bound 12))

(* Finite floats across many magnitudes, integral values included (the
   two rendering branches of the JSON float writer). *)
let gen_float =
  QCheck.Gen.(
    map2
      (fun m e -> Float.ldexp (float_of_int m) (e - 20))
      (int_range (-1_000_000) 1_000_000)
      (int_bound 40))

let gen_json =
  let open QCheck.Gen in
  let leaf =
    oneof
      [
        return Json.Null;
        map (fun b -> Json.Bool b) bool;
        map (fun i -> Json.Int i) small_signed_int;
        map (fun f -> Json.Float f) gen_float;
        map (fun s -> Json.String s) gen_string;
      ]
  in
  fix
    (fun self depth ->
      if depth <= 0 then leaf
      else
        frequency
          [
            (3, leaf);
            (1, map (fun l -> Json.List l)
                  (list_size (int_bound 3) (self (depth - 1))));
            ( 1,
              map (fun kvs -> Json.Obj kvs)
                (list_size (int_bound 3)
                   (pair (oneofl [ "rect"; "q"; "w"; "why" ])
                      (self (depth - 1)))) );
          ])
    2

(* Every payload constructor, including the forward-compat [Unknown]
   carrier (whose kind and field names must stay off the envelope's). *)
let gen_payload =
  let open QCheck.Gen in
  let s = gen_string in
  let unknown =
    let* kind = oneofl [ "x-custom"; "future-thing" ] in
    let* n = int_bound 2 in
    let keys = List.filteri (fun i _ -> i < n) [ "note"; "extra"; "payload" ] in
    let* values = flatten_l (List.map (fun _ -> gen_json) keys) in
    return (Events.Unknown { kind; fields = List.combine keys values })
  in
  oneof
    [
      map (fun label -> Events.Run_started { label }) s;
      map2
        (fun quantity terms -> Events.Capacity_joined { quantity; terms })
        small_nat gen_json;
      map3 (fun id policy reason -> Events.Admitted { id; policy; reason }) s s s;
      map3 (fun id policy reason -> Events.Rejected { id; policy; reason }) s s s;
      (let* id = s and* policy = s and* slug = s in
       let* action = oneofl [ "admit"; "reject"; "evict"; "repair" ] in
       let* certificate = gen_json in
       let* cid = opt s in
       return (Events.Decision { id; policy; action; slug; certificate; cid }));
      map3 (fun id slug reason -> Events.Shed { id; slug; reason }) s s s;
      map (fun id -> Events.Completed { id }) s;
      map2 (fun id owed -> Events.Killed { id; owed }) s small_nat;
      (let* fault = s and* quantity = small_signed_int and* terms = gen_json in
       return (Events.Fault_injected { fault; quantity; terms }));
      map2
        (fun id quantity -> Events.Commitment_revoked { id; quantity })
        s small_nat;
      map3
        (fun id extra released ->
          Events.Commitment_degraded { id; extra; released })
        s small_nat bool;
      (let* id = s and* rung = oneofl [ "reaccommodate"; "migrate" ] in
       let* attempt = int_bound 3 and* certificate = gen_json in
       return (Events.Repaired { id; rung; attempt; certificate }));
      map2 (fun id owed -> Events.Preempted { id; owed }) s small_nat;
      map2 (fun id reason -> Events.Anomaly { id; reason }) s s;
      (let* name = s and* id = int_range 1 1000 in
       let* parent = opt (int_range 1 1000) and* depth = int_bound 5 in
       let* begin_s = gen_float and* duration_s = gen_float in
       return (Events.Span { name; id; parent; depth; begin_s; duration_s }));
      (let* name = s in
       let* value = gen_float in
       let* family = opt (oneofl [ "counter"; "gauge" ]) in
       return (Events.Metric_sample { name; value; family }));
      (let* name = s and* count = small_nat and* sum = gen_float in
       let* min_v = gen_float and* max_v = gen_float in
       let* p50 = gen_float and* p95 = gen_float and* p99 = gen_float in
       return
         (Events.Hist_sample { name; count; sum; min_v; max_v; p50; p95; p99 }));
      (let* id = s and* message = s and* of_seq = small_nat in
       let* action = oneofl [ "admit"; "reject"; "evict"; "repair" ] in
       return (Events.Audit_divergence { id; action; of_seq; message }));
      unknown;
    ]

let gen_event =
  QCheck.Gen.(
    let* run = small_nat and* sim = opt small_nat in
    let* wall_s = gen_float and* payload = gen_payload in
    return { Events.seq = 0; run; sim; wall_s; payload })

let gen_trace =
  QCheck.Gen.(
    map
      (List.mapi (fun i e -> { e with Events.seq = i + 1 }))
      (list_size (int_range 1 25) gen_event))

let arb_trace = QCheck.make ~print:(fun es ->
    String.concat "\n" (List.map Events.to_line es))
    gen_trace

(* --- round-trip properties -------------------------------------------------- *)

(* Per-event: encode + decode is the identity (the check `rota trace
   validate` runs on every binary record). *)
let prop_binary_roundtrip =
  QCheck.Test.make ~count:200 ~name:"binary codec: encode/decode identity"
    (QCheck.make ~print:Events.to_line gen_event) (fun e ->
      match Binary.roundtrip e with
      | Ok e' -> e' = e
      | Error msg -> QCheck.Test.fail_reportf "roundtrip: %s" msg)

let read_all path =
  match Trace_reader.read_file path with
  | Ok (events, Trace_reader.Complete) -> events
  | Ok (_, Trace_reader.Truncated { line; bytes }) ->
      QCheck.Test.fail_reportf "unexpected truncation at %d (%d bytes)" line
        bytes
  | Error e ->
      QCheck.Test.fail_reportf "read_file: %s"
        (Format.asprintf "%a" Trace_reader.pp_error e)

let with_temp_files k =
  let jsonl = Filename.temp_file "rota-binary-prop" ".jsonl" in
  let rotb = Filename.temp_file "rota-binary-prop" ".rotb" in
  let back = Filename.temp_file "rota-binary-prop" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> List.iter Sys.remove [ jsonl; rotb; back ])
    (fun () -> k jsonl rotb back)

let write_jsonl path events =
  Out_channel.with_open_bin path (fun oc ->
      List.iter
        (fun e ->
          Out_channel.output_string oc (Events.to_line e);
          Out_channel.output_char oc '\n')
        events)

let write_binary path events =
  let sink = Sink.binary_file path in
  List.iter sink.Sink.emit events;
  sink.Sink.close ()

(* Whole-trace pipeline: JSONL file -> reader -> binary file -> reader
   -> JSONL file -> reader, every leg the identity.  This is exactly
   what a binary-traced run followed by `rota trace convert` does, with
   the reader's format auto-detection in the middle. *)
let prop_pipeline_roundtrip =
  QCheck.Test.make ~count:50
    ~name:"trace pipeline: JSONL -> binary -> JSONL identity" arb_trace
    (fun events ->
      with_temp_files @@ fun jsonl rotb back ->
      write_jsonl jsonl events;
      let from_jsonl = read_all jsonl in
      if from_jsonl <> events then
        QCheck.Test.fail_report "JSONL leg is not the identity";
      if Binary.file_is_binary jsonl then
        QCheck.Test.fail_report "JSONL misdetected as binary";
      write_binary rotb from_jsonl;
      if not (Binary.file_is_binary rotb) then
        QCheck.Test.fail_report "binary file not detected by magic";
      let from_binary = read_all rotb in
      if from_binary <> events then
        QCheck.Test.fail_report "binary leg is not the identity";
      write_jsonl back from_binary;
      read_all back = events)

(* --- the flight recorder ---------------------------------------------------- *)

module Flight = Rota_obs.Flight

(* Like the daemon's stream: span ids are allocator-unique, parents may
   point anywhere (often at records the ring has since evicted), and no
   [Unknown] carriers — the daemon only emits kinds it knows, and the
   validator rejects unknown ones by design. *)
let gen_flight_stream =
  QCheck.Gen.(
    let* raw = list_size (int_range 1 60) gen_event in
    let _, rev =
      List.fold_left
        (fun (i, acc) ev ->
          match ev.Events.payload with
          | Events.Span s ->
              ( i + 1,
                { ev with
                  Events.payload = Events.Span { s with id = 50_000 + i } }
                :: acc )
          | Events.Unknown _ ->
              ( i,
                { ev with
                  Events.payload =
                    Events.Anomaly { id = "gen"; reason = "stand-in" } }
                :: acc )
          | _ -> (i, ev :: acc))
        (0, []) raw
    in
    return (List.rev rev))

(* A dump taken after ANY event sequence is a standalone valid trace
   holding exactly the last-[capacity] suffix — payloads verbatim except
   the documented repairs (evicted span parents dropped, backward
   simulated-time steps clamped forward). *)
let prop_flight_dump =
  QCheck.Test.make ~count:100
    ~name:"flight recorder: dump = valid trace of the last-N suffix"
    (QCheck.make
       ~print:(fun es -> String.concat "\n" (List.map Events.to_line es))
       gen_flight_stream)
    (fun stream ->
      let capacity = 16 in
      let f = Flight.create ~capacity () in
      List.iter (Flight.record f) stream;
      let path = Filename.temp_file "rota-flight" ".rotb" in
      Fun.protect
        ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
      @@ fun () ->
      match Flight.dump f path with
      | Error m -> QCheck.Test.fail_reportf "dump: %s" m
      | Ok n ->
          let len = List.length stream in
          let expect = min capacity len in
          if n <> expect then
            QCheck.Test.fail_reportf "dumped %d events, want %d" n expect;
          if Flight.recorded f <> expect then
            QCheck.Test.fail_reportf "ring holds %d, want %d"
              (Flight.recorded f) expect;
          let v = Trace_reader.validate_file path in
          if not (Trace_reader.valid v) then
            QCheck.Test.fail_reportf "dump does not validate: %s"
              (String.concat "; " v.Trace_reader.errors);
          let dumped = read_all path in
          let suffix = List.filteri (fun i _ -> i >= len - expect) stream in
          List.iter2
            (fun (d : Events.t) (s : Events.t) ->
              if d.Events.run <> s.Events.run then
                QCheck.Test.fail_report "run not preserved";
              if d.Events.wall_s <> s.Events.wall_s then
                QCheck.Test.fail_report "wall_s not preserved";
              (match (d.Events.sim, s.Events.sim) with
              | None, None -> ()
              | Some d', Some s' when d' >= s' -> ()  (* clamp is forward *)
              | _ -> QCheck.Test.fail_report "sim not preserved-or-clamped");
              match (d.Events.payload, s.Events.payload) with
              | Events.Span dsp, Events.Span ssp ->
                  if
                    dsp.name <> ssp.name || dsp.id <> ssp.id
                    || dsp.depth <> ssp.depth
                    || dsp.begin_s <> ssp.begin_s
                    || dsp.duration_s <> ssp.duration_s
                    || (dsp.parent <> ssp.parent && dsp.parent <> None)
                  then QCheck.Test.fail_report "span changed beyond repair"
              | dp, sp ->
                  if dp <> sp then
                    QCheck.Test.fail_report "payload not preserved verbatim")
            dumped suffix;
          true)

(* --- non-finite floats ------------------------------------------------------ *)

(* JSON cannot say nan/inf, but the binary format carries the raw IEEE
   bits: the codec must preserve them exactly. *)
let test_nonfinite_floats () =
  List.iter
    (fun value ->
      let e =
        {
          Events.seq = 1;
          run = 0;
          sim = None;
          wall_s = 0.5;
          payload = Events.Metric_sample { name = "m"; value; family = None };
        }
      in
      match Binary.roundtrip e with
      | Error msg -> Alcotest.failf "roundtrip: %s" msg
      | Ok { Events.payload = Events.Metric_sample { value = v; _ }; _ } ->
          Alcotest.(check int64)
            (Printf.sprintf "bits of %h preserved" value)
            (Int64.bits_of_float value) (Int64.bits_of_float v)
      | Ok _ -> Alcotest.fail "payload shape changed")
    [ Float.nan; Float.infinity; Float.neg_infinity; -0.0 ]

(* --- crash-cut binary traces ------------------------------------------------ *)

let sample_events n =
  List.init n (fun i ->
      {
        Events.seq = i + 1;
        run = 1;
        sim = Some i;
        wall_s = float_of_int i *. 0.25;
        payload = Events.Completed { id = Printf.sprintf "c%d" i };
      })

(* A binary trace cut mid final record must yield every complete record
   plus a [Truncated] tail with the 1-based record ordinal, and the
   validator must flag the cut. *)
let test_truncated_final_record () =
  let n = 10 in
  let path = Filename.temp_file "rota-binary-cut" ".rotb" in
  let cut = Filename.temp_file "rota-binary-cut" ".rotb" in
  Fun.protect ~finally:(fun () -> Sys.remove path; Sys.remove cut)
  @@ fun () ->
  write_binary path (sample_events n);
  let full = In_channel.with_open_bin path In_channel.input_all in
  (* Chop a few bytes off the last record: a write cut short by a crash. *)
  Out_channel.with_open_bin cut (fun oc ->
      Out_channel.output_string oc (String.sub full 0 (String.length full - 3)));
  (match Trace_reader.read_file cut with
  | Ok (events, Trace_reader.Truncated { line; bytes }) ->
      Alcotest.(check int) "every complete record delivered" (n - 1)
        (List.length events);
      Alcotest.(check int) "tail names the final record" n line;
      Alcotest.(check bool) "dangling byte count reported" true (bytes > 0)
  | Ok (_, Trace_reader.Complete) -> Alcotest.fail "cut record not detected"
  | Error e ->
      Alcotest.failf "crash-cut binary trace must still read: %s"
        (Format.asprintf "%a" Trace_reader.pp_error e));
  let v = Trace_reader.validate_file cut in
  Alcotest.(check bool) "validate flags the cut" true
    (List.exists (contains ~sub:"truncated final record") v.Trace_reader.errors);
  Alcotest.(check bool) "cut trace is invalid" false (Trace_reader.valid v)

(* The intact file, for contrast, validates clean end to end. *)
let test_intact_file_validates () =
  let path = Filename.temp_file "rota-binary-ok" ".rotb" in
  Fun.protect ~finally:(fun () -> Sys.remove path) @@ fun () ->
  write_binary path
    ({
       Events.seq = 0;
       run = 1;
       sim = Some 0;
       wall_s = 0.0;
       payload = Events.Run_started { label = "engine policy=rota" };
     }
     :: List.map
          (fun e -> { e with Events.seq = e.Events.seq + 1 })
          (sample_events 5));
  let v = Trace_reader.validate_file path in
  Alcotest.(check (list string)) "no violations" [] v.Trace_reader.errors;
  Alcotest.(check int) "events counted" 6 v.Trace_reader.events

(* Tailing a binary trace: complete records stream out as they are
   appended, a record cut mid-write stays pending (with its dangling
   byte count) until the rest of its bytes arrive. *)
let test_follow_tails_binary () =
  let path = Filename.temp_file "rota-binary-follow" ".rotb" in
  Fun.protect ~finally:(fun () -> Sys.remove path) @@ fun () ->
  write_binary path (sample_events 3);
  match Trace_reader.Follow.open_file path with
  | Error { Trace_reader.message; _ } ->
      Alcotest.failf "binary trace must open for tailing: %s" message
  | Ok c ->
      Fun.protect ~finally:(fun () -> Trace_reader.Follow.close c)
      @@ fun () ->
      (match Trace_reader.Follow.poll c with
      | Ok events ->
          Alcotest.(check int) "existing records delivered" 3
            (List.length events)
      | Error { Trace_reader.line; message } ->
          Alcotest.failf "poll: record %d: %s" line message);
      (* Append one whole record and the first half of another: only the
         whole one may come out, the half must be reported pending. *)
      let next = sample_events 5 |> List.filteri (fun i _ -> i >= 3) in
      let buf = Buffer.create 256 in
      List.iter (Binary.encode buf) next;
      let tail = Buffer.contents buf in
      let whole =
        (* First record's length: re-encode it alone. *)
        let b = Buffer.create 64 in
        Binary.encode b (List.hd next);
        Buffer.length b
      in
      let oc = Out_channel.open_gen [ Open_append; Open_binary ] 0o644 path in
      Out_channel.output_string oc (String.sub tail 0 (whole + 4));
      Out_channel.close oc;
      (match Trace_reader.Follow.poll c with
      | Ok events ->
          Alcotest.(check int) "only the complete record" 1
            (List.length events);
          Alcotest.(check int) "dangling bytes pending" 4
            (Trace_reader.Follow.pending_bytes c)
      | Error { Trace_reader.line; message } ->
          Alcotest.failf "poll: record %d: %s" line message);
      (* The rest of the cut record arrives: it completes. *)
      let oc = Out_channel.open_gen [ Open_append; Open_binary ] 0o644 path in
      Out_channel.output_string oc
        (String.sub tail (whole + 4) (String.length tail - whole - 4));
      Out_channel.close oc;
      (match Trace_reader.Follow.poll c with
      | Ok events ->
          Alcotest.(check int) "cut record completes" 1 (List.length events);
          Alcotest.(check int) "nothing pending" 0
            (Trace_reader.Follow.pending_bytes c)
      | Error { Trace_reader.line; message } ->
          Alcotest.failf "poll: record %d: %s" line message)

(* --------------------------------------------------------------------------- *)

let () =
  Alcotest.run "binary-codec"
    [
      ( "round-trip",
        List.map QCheck_alcotest.to_alcotest
          [ prop_binary_roundtrip; prop_pipeline_roundtrip; prop_flight_dump ]
        @ [
            Alcotest.test_case "non-finite floats keep their bits" `Quick
              test_nonfinite_floats;
          ] );
      ( "crash-cut",
        [
          Alcotest.test_case "truncated final record tolerated, flagged"
            `Quick test_truncated_final_record;
          Alcotest.test_case "intact binary trace validates" `Quick
            test_intact_file_validates;
          Alcotest.test_case "follow tails binary" `Quick
            test_follow_tails_binary;
        ] );
    ]
