(* The independent offline auditor, end to end: traced engine runs must
   re-verify 100% of their decision certificates from the trace file
   alone, and a tampered certificate must surface as a divergence naming
   the offending decision. *)

open Rota_scheduler
open Rota_sim
module Scenario = Rota_workload.Scenario
module Events = Rota_obs.Events
module Sink = Rota_obs.Sink
module Tracer = Rota_obs.Tracer
module Audit = Rota_audit.Audit
module Live = Audit.Live
module Watchdog = Rota_audit.Watchdog

let () = Calendar.set_self_check true

(* Trace whatever [run] does into a fresh JSONL file, then hand the path
   to [k]; tracer state and the file are cleaned up afterwards. *)
let with_traced run k =
  Tracer.reset ();
  let path = Filename.temp_file "rota-audit-test" ".jsonl" in
  Fun.protect
    ~finally:(fun () ->
      Tracer.reset ();
      Sys.remove path)
  @@ fun () ->
  Tracer.install (Sink.jsonl_file path);
  run ();
  Tracer.uninstall ();
  k path

let audit path =
  match Audit.audit_file path with
  | Ok report -> report
  | Error e ->
      Alcotest.failf "audit_file: %s"
        (Format.asprintf "%a" Rota_obs.Trace_reader.pp_error e)

let check_full_coverage name (r : Audit.report) =
  Alcotest.(check bool) (name ^ ": decisions recorded") true (r.Audit.decisions > 0);
  Alcotest.(check int)
    (name ^ ": every decision re-verified")
    r.Audit.decisions r.Audit.verified;
  Alcotest.(check int) (name ^ ": nothing skipped") 0 r.Audit.skipped;
  Alcotest.(check int)
    (name ^ ": no divergences")
    0
    (List.length r.Audit.divergences);
  Alcotest.(check bool) (name ^ ": ok") true (Audit.ok r)

let params ~seed =
  { Scenario.default_params with seed; horizon = 120; arrivals = 10; locations = 2 }

(* --- clean traces audit clean ------------------------------------------- *)

(* E6 shape: the same workload under every admission policy, no faults —
   covers T4 schedule/infeasible, T1 aggregate tables, optimistic
   unchecked, stale and duplicate evidence. *)
let test_audit_all_policies () =
  let p = params ~seed:42 in
  let trace = Scenario.trace p in
  with_traced
    (fun () ->
      List.iter
        (fun policy -> ignore (Engine.run ~policy trace))
        Admission.all_policies)
  @@ fun path ->
  let r = audit path in
  Alcotest.(check int) "one audited run per policy"
    (List.length Admission.all_policies)
    r.Audit.runs;
  check_full_coverage "all policies" r

(* E11 shape: fault storms with the repair ladder on — covers eviction
   and repair (T3) certificates plus capacity reconstruction through
   revocations, slowdowns and rejoins. *)
let test_audit_faulted_run () =
  let p = params ~seed:17 in
  let trace = Scenario.trace p in
  let faults = Scenario.fault_plan ~fault_seed:3 ~intensity:1.5 p in
  with_traced (fun () ->
      ignore (Engine.run ~faults ~repair:true ~policy:Admission.Rota trace))
  @@ fun path -> check_full_coverage "faulted run" (audit path)

(* QCheck: whatever workload and fault plan the generators produce, the
   auditor re-verifies every certificate with zero divergences — the
   checker (Accommodation.check_schedule on a reconstructed ledger) and
   the greedy decider never disagree. *)
let prop_audit_verifies_everything =
  QCheck.Test.make ~count:25
    ~name:"audit: every decision in a random traced run re-verifies"
    QCheck.(pair (int_bound 1000) (int_bound 100))
    (fun (seed, fault_seed) ->
      let p = params ~seed in
      let trace = Scenario.trace p in
      let faults = Scenario.fault_plan ~fault_seed ~intensity:1.5 p in
      with_traced (fun () ->
          ignore (Engine.run ~faults ~repair:true ~policy:Admission.Rota trace);
          ignore (Engine.run ~policy:Admission.Aggregate trace))
      @@ fun path ->
      let r = audit path in
      if not (Audit.ok r && r.Audit.skipped = 0 && r.Audit.verified = r.Audit.decisions)
      then
        QCheck.Test.fail_reportf
          "audit diverged: %d decisions, %d verified, %d skipped, %d divergent"
          r.Audit.decisions r.Audit.verified r.Audit.skipped
          (List.length r.Audit.divergences);
      true)

(* --- live watchdog ≡ offline audit --------------------------------------- *)

let verdict_key = function
  | Live.Verified -> "verified"
  | Live.Skipped m -> "skipped: " ^ m
  | Live.Diverged ms -> "diverged: " ^ String.concat "; " ms

(* QCheck: the watchdog riding the emitting engine and [audit_file]
   replaying the finished trace are two drivers over the same
   [Live.step], so their verdict sequences must be identical — same
   decisions, same order, same verdicts — on any workload and fault
   plan the generators produce. *)
let prop_watchdog_matches_offline =
  QCheck.Test.make ~count:15
    ~name:"watchdog: live verdict sequence equals the offline audit"
    QCheck.(pair (int_bound 1000) (int_bound 100))
    (fun (seed, fault_seed) ->
      let p = params ~seed in
      let trace = Scenario.trace p in
      let faults = Scenario.fault_plan ~fault_seed ~intensity:1.5 p in
      let seen = ref [] in
      let wd =
        Watchdog.create
          ~on_outcome:(fun (o : Live.outcome) ->
            seen := (o.Live.id, o.Live.action, verdict_key o.Live.verdict) :: !seen)
          ()
      in
      Tracer.reset ();
      let path = Filename.temp_file "rota-wd-equiv" ".jsonl" in
      Fun.protect
        ~finally:(fun () ->
          Tracer.reset ();
          Sys.remove path)
      @@ fun () ->
      Tracer.install (Sink.tee (Sink.jsonl_file path) (Watchdog.sink wd));
      ignore (Engine.run ~faults ~repair:true ~policy:Admission.Rota trace);
      Tracer.uninstall ();
      let live = List.rev !seen in
      let offline =
        match
          Audit.fold_decisions path ~init:[] ~f:(fun acc (o : Live.outcome) ->
              (o.Live.id, o.Live.action, verdict_key o.Live.verdict) :: acc)
        with
        | Ok (acc, _, _) -> List.rev acc
        | Error e ->
            QCheck.Test.fail_reportf "offline audit failed: %s"
              (Format.asprintf "%a" Rota_obs.Trace_reader.pp_error e)
      in
      if live = [] then QCheck.Test.fail_report "watchdog saw no decisions";
      if live <> offline then
        QCheck.Test.fail_reportf
          "live (%d outcomes) and offline (%d outcomes) verdict sequences differ"
          (List.length live) (List.length offline);
      true)

(* The engine snapshots the installed watchdog around each run, so every
   report carries exactly the stats delta its own run contributed. *)
let test_engine_reports_watchdog_delta () =
  let p = params ~seed:42 in
  let trace = Scenario.trace p in
  Tracer.reset ();
  Fun.protect
    ~finally:(fun () ->
      Watchdog.uninstall ();
      Tracer.reset ())
  @@ fun () ->
  let wd = Watchdog.create () in
  Tracer.install (Watchdog.sink wd);
  Watchdog.install wd;
  let r1 = Engine.run ~policy:Admission.Rota trace in
  let r2 = Engine.run ~policy:Admission.Aggregate trace in
  let total = Watchdog.stats wd in
  let get = function
    | Some s -> s
    | None -> Alcotest.fail "report lacks watchdog stats"
  in
  let s1 = get r1.Engine.watchdog and s2 = get r2.Engine.watchdog in
  Alcotest.(check bool) "run 1 saw decisions" true (s1.Watchdog.decisions > 0);
  Alcotest.(check int) "run 1 re-verified everything" s1.Watchdog.decisions
    s1.Watchdog.verified;
  Alcotest.(check int) "run 1 clean" 0 s1.Watchdog.divergences;
  Alcotest.(check int) "per-run deltas sum to the watchdog total"
    total.Watchdog.decisions
    (s1.Watchdog.decisions + s2.Watchdog.decisions);
  Watchdog.uninstall ();
  let r3 = Engine.run ~policy:Admission.Rota trace in
  Alcotest.(check bool) "no watchdog, no stats block" true
    (r3.Engine.watchdog = None)

(* --- tampering is caught ------------------------------------------------- *)

let contains ~sub s =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

(* Find the first decision line carrying a non-empty digest, flip one
   digest character, and return the mutated trace plus the decision's id. *)
let corrupt_first_digest ~src ~dst =
  let needle = "\"digest\":\"" in
  let mutated = ref None in
  let ic = open_in src and oc = open_out dst in
  (try
     while true do
       let line = input_line ic in
       let line =
         match !mutated with
         | Some _ -> line
         | None -> (
             match
               if contains ~sub:"\"kind\":\"decision\"" line then
                 Rota_obs.Json.parse line
               else Error "not a decision"
             with
             | Error _ -> line
             | Ok _ -> (
                 (* locate the digest value inside the raw line *)
                 let rec find i =
                   if i + String.length needle > String.length line then None
                   else if String.sub line i (String.length needle) = needle then
                     Some (i + String.length needle)
                   else find (i + 1)
                 in
                 match find 0 with
                 | Some at when line.[at] <> '"' ->
                     (match Events.of_line ~strict:true line with
                     | Ok { Events.payload = Events.Decision { id; _ }; _ } ->
                         mutated := Some id
                     | _ -> Alcotest.fail "decision line failed to parse");
                     let b = Bytes.of_string line in
                     Bytes.set b at (if line.[at] = '0' then 'f' else '0');
                     Bytes.to_string b
                 | _ -> line))
       in
       output_string oc line;
       output_char oc '\n'
     done
   with End_of_file -> ());
  close_in ic;
  close_out oc;
  match !mutated with
  | Some id -> id
  | None -> Alcotest.fail "no decision with a digest found to corrupt"

let test_audit_catches_tampering () =
  let p = params ~seed:42 in
  let trace = Scenario.trace p in
  with_traced (fun () -> ignore (Engine.run ~policy:Admission.Rota trace))
  @@ fun path ->
  let bad = Filename.temp_file "rota-audit-bad" ".jsonl" in
  Fun.protect ~finally:(fun () -> Sys.remove bad) @@ fun () ->
  let victim = corrupt_first_digest ~src:path ~dst:bad in
  let r = audit bad in
  Alcotest.(check bool) "tampered audit fails" false (Audit.ok r);
  match r.Audit.divergences with
  | [] -> Alcotest.fail "no divergence reported"
  | d :: _ ->
      (* The first divergence names the decision whose digest was flipped. *)
      Alcotest.(check string) "divergence names the decision" victim d.Audit.id;
      Alcotest.(check bool) "message mentions the digest" true
        (contains ~sub:"digest" d.Audit.message)

(* A fail-fast watchdog re-observing the tampered stream must trip
   mid-stream — at the flipped decision, before the trailing events —
   naming the offending decision (the CLI maps {!Watchdog.Trip} to a
   nonzero exit carrying the same seq/id/message). *)
let test_watchdog_trips_on_tampering () =
  let p = params ~seed:42 in
  let trace = Scenario.trace p in
  with_traced (fun () -> ignore (Engine.run ~policy:Admission.Rota trace))
  @@ fun path ->
  let bad = Filename.temp_file "rota-wd-bad" ".jsonl" in
  Fun.protect ~finally:(fun () -> Sys.remove bad) @@ fun () ->
  let victim = corrupt_first_digest ~src:path ~dst:bad in
  let events =
    match Rota_obs.Trace_reader.read_file bad with
    | Ok (es, _) -> es
    | Error _ -> Alcotest.fail "tampered trace unreadable"
  in
  let wd = Watchdog.create ~mode:Watchdog.Fail_fast () in
  let consumed = ref 0 in
  let tripped =
    try
      List.iter
        (fun e ->
          incr consumed;
          Watchdog.observe wd e)
        events;
      None
    with Watchdog.Trip { id; message; _ } -> Some (id, message)
  in
  match tripped with
  | None -> Alcotest.fail "fail-fast watchdog did not trip"
  | Some (id, message) ->
      Alcotest.(check string) "trip names the tampered decision" victim id;
      Alcotest.(check bool) "trip message mentions the digest" true
        (contains ~sub:"digest" message);
      Alcotest.(check bool) "tripped mid-stream, not at the end" true
        (!consumed < List.length events);
      let s = Watchdog.stats wd in
      Alcotest.(check bool) "divergence counted" true (s.Watchdog.divergences > 0)

(* rota explain: the decision's story renders with the auditor verdict. *)
let test_explain_renders_decision () =
  let p = params ~seed:42 in
  let trace = Scenario.trace p in
  with_traced (fun () -> ignore (Engine.run ~policy:Admission.Rota trace))
  @@ fun path ->
  (* Pick any decided id off the trace. *)
  let events =
    match Rota_obs.Trace_reader.read_file path with
    | Ok (es, _) -> es
    | Error _ -> Alcotest.fail "trace unreadable"
  in
  let id =
    match
      List.find_map
        (fun (e : Events.t) ->
          match e.Events.payload with
          | Events.Decision { id; _ } -> Some id
          | _ -> None)
        events
    with
    | Some id -> id
    | None -> Alcotest.fail "no decision in trace"
  in
  match Audit.explain_file path ~id with
  | Error _ -> Alcotest.fail "explain_file failed"
  | Ok [] -> Alcotest.failf "no explanation for %s" id
  | Ok (block :: _ as blocks) ->
      Alcotest.(check bool) "names the id" true (contains ~sub:id block);
      Alcotest.(check bool) "carries an auditor verdict" true
        (List.exists (contains ~sub:"auditor:") blocks);
      (* Unknown ids yield the empty list, not an error. *)
      (match Audit.explain_file path ~id:"no-such-id" with
      | Ok [] -> ()
      | Ok _ -> Alcotest.fail "unknown id must yield no blocks"
      | Error _ -> Alcotest.fail "unknown id must not be a read error")

let () =
  Alcotest.run "audit"
    [
      ( "clean",
        [
          Alcotest.test_case "all policies re-verify" `Quick
            test_audit_all_policies;
          Alcotest.test_case "faulted run re-verifies" `Quick
            test_audit_faulted_run;
          QCheck_alcotest.to_alcotest prop_audit_verifies_everything;
        ] );
      ( "watchdog",
        [
          QCheck_alcotest.to_alcotest prop_watchdog_matches_offline;
          Alcotest.test_case "engine reports per-run stats delta" `Quick
            test_engine_reports_watchdog_delta;
        ] );
      ( "tampering",
        [
          Alcotest.test_case "flipped digest is caught" `Quick
            test_audit_catches_tampering;
          Alcotest.test_case "fail-fast watchdog trips mid-stream" `Quick
            test_watchdog_trips_on_tampering;
        ] );
      ( "explain",
        [
          Alcotest.test_case "decision story renders" `Quick
            test_explain_renders_decision;
        ] );
    ]
