(* Tests for the scheduler library: Calendar (commitment ledger) and
   Admission (ROTA vs baseline policies). *)

open Rota_interval
open Rota_resource
open Rota_actor
open Rota_scheduler

(* Every calendar mutation in this binary re-verifies the cached
   committed/residual sets against a from-scratch recomputation. *)
let () = Calendar.set_self_check true

let iv a b = Interval.of_pair a b
let l1 = Location.make "l1"
let l2 = Location.make "l2"
let cpu1 = Located_type.cpu l1
let net12 = Located_type.network ~src:l1 ~dst:l2
let a1 = Actor_name.make "a1"
let rset = Resource_set.of_terms

let one_actor_job ~id ~start ~deadline actions =
  Computation.make ~id ~start ~deadline [ Program.make ~name:a1 ~home:l1 actions ]

(* A schedule certificate occupying [window] at [rate] on cpu1. *)
let entry ~id ~window ~rate =
  let reservation = rset [ Term.v rate window cpu1 ] in
  {
    Calendar.computation = id;
    window;
    reservation;
    schedules = [];
  }

(* --- Calendar ---------------------------------------------------------- *)

let test_calendar_commit_release () =
  let c = Calendar.create (rset [ Term.v 2 (iv 0 10) cpu1 ]) in
  Alcotest.(check int) "full residual" 20
    (Resource_set.integrate (Calendar.residual c) cpu1 (iv 0 10));
  let c =
    Result.get_ok (Calendar.commit c (entry ~id:"x" ~window:(iv 0 5) ~rate:1))
  in
  Alcotest.(check int) "residual shrank" 15
    (Resource_set.integrate (Calendar.residual c) cpu1 (iv 0 10));
  Alcotest.(check int) "committed" 5 (Calendar.committed_quantity c cpu1 (iv 0 10));
  Alcotest.(check bool) "find" true
    (Option.is_some (Calendar.find c ~computation:"x"));
  (* Duplicate ids rejected. *)
  (match Calendar.commit c (entry ~id:"x" ~window:(iv 5 6) ~rate:1) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "duplicate commit must fail");
  (* Overcommit rejected. *)
  (match Calendar.commit c (entry ~id:"y" ~window:(iv 0 5) ~rate:2) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "overcommit must fail");
  let c = Calendar.release c ~computation:"x" in
  Alcotest.(check int) "released" 20
    (Resource_set.integrate (Calendar.residual c) cpu1 (iv 0 10));
  (* Releasing an unknown id is a no-op. *)
  let c' = Calendar.release c ~computation:"nope" in
  Alcotest.(check int) "no-op release" 20
    (Resource_set.integrate (Calendar.residual c') cpu1 (iv 0 10))

let test_calendar_advance_and_capacity () =
  let c = Calendar.create (rset [ Term.v 2 (iv 0 10) cpu1 ]) in
  let c =
    Result.get_ok (Calendar.commit c (entry ~id:"x" ~window:(iv 0 6) ~rate:1))
  in
  let c = Calendar.advance c 4 in
  Alcotest.(check int) "capacity truncated" 12
    (Calendar.capacity_quantity c cpu1 (iv 0 10));
  Alcotest.(check int) "reservation truncated" 2
    (Calendar.committed_quantity c cpu1 (iv 0 10));
  let c = Calendar.add_capacity c (rset [ Term.v 1 (iv 6 12) cpu1 ]) in
  Alcotest.(check int) "capacity joined" 18
    (Calendar.capacity_quantity c cpu1 (iv 0 12))

(* --- Calendar: invariant-violation reports ------------------------------ *)

let contains ~sub s =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

(* Regression: a drifted committed cache (simulated via the test-only
   with_caches_unchecked) must surface from [release] as a structured
   invariant-violation report naming the operation and the computation —
   not as a bare [assert false]. *)
let test_calendar_release_reports_drift () =
  let c = Calendar.create (rset [ Term.v 2 (iv 0 10) cpu1 ]) in
  let c =
    Result.get_ok (Calendar.commit c (entry ~id:"x" ~window:(iv 0 5) ~rate:1))
  in
  let drifted =
    Calendar.with_caches_unchecked c ~committed:Resource_set.empty
      ~residual:(Calendar.capacity c)
  in
  match Calendar.release drifted ~computation:"x" with
  | exception Invalid_argument msg ->
      Alcotest.(check bool) "names operation and id" true
        (contains ~sub:"calendar: invariant violation: release x" msg)
  | _ -> Alcotest.fail "release on a drifted ledger must raise"

(* Regression: [remove_capacity] already has an error channel, so cache
   drift there must come back as a structured [Error] — again naming the
   operation — rather than raising. *)
let test_calendar_remove_capacity_reports_drift () =
  let c = Calendar.create (rset [ Term.v 2 (iv 0 10) cpu1 ]) in
  let drifted =
    (* Residual inflated past capacity: the slice passes the residual
       check but capacity cannot cover it. *)
    Calendar.with_caches_unchecked c ~committed:Resource_set.empty
      ~residual:(rset [ Term.v 5 (iv 0 10) cpu1 ])
  in
  match Calendar.remove_capacity drifted (rset [ Term.v 4 (iv 0 10) cpu1 ]) with
  | Error msg ->
      Alcotest.(check bool) "names the operation" true
        (contains ~sub:"calendar: invariant violation: remove_capacity" msg)
  | Ok _ -> Alcotest.fail "remove_capacity on a drifted ledger must error"

(* --- Calendar: cached-residual property --------------------------------- *)

(* Random ledger workloads: after every operation the incrementally
   maintained committed/residual caches must equal what a from-scratch
   fold over the entries produces. *)

type cal_op =
  | Commit of int * int * int * int  (* id slot, start, duration, rate *)
  | Release of int
  | Advance of int
  | Add_capacity of int * int * int
  | Remove_capacity of int * int * int

let pp_cal_op = function
  | Commit (k, a, d, r) -> Printf.sprintf "commit c%d [%d,%d)@%d" k a (a + d) r
  | Release k -> Printf.sprintf "release c%d" k
  | Advance t -> Printf.sprintf "advance %d" t
  | Add_capacity (a, d, r) -> Printf.sprintf "add [%d,%d)@%d" a (a + d) r
  | Remove_capacity (a, d, r) -> Printf.sprintf "remove [%d,%d)@%d" a (a + d) r

let cal_op_gen =
  QCheck.Gen.(
    let slot = int_range 0 5 in
    let seg =
      let* a = int_range 0 30 in
      let* d = int_range 1 8 in
      let* r = int_range 1 4 in
      return (a, d, r)
    in
    frequency
      [
        (4, map2 (fun k (a, d, r) -> Commit (k, a, d, r)) slot seg);
        (2, map (fun k -> Release k) slot);
        (1, map (fun t -> Advance t) (int_range 0 40));
        (2, map (fun (a, d, r) -> Add_capacity (a, d, r)) seg);
        (1, map (fun (a, d, r) -> Remove_capacity (a, d, r)) seg);
      ])

let arbitrary_cal_ops =
  QCheck.make
    ~print:(fun ops -> String.concat "; " (List.map pp_cal_op ops))
    QCheck.Gen.(list_size (int_range 1 40) cal_op_gen)

let recomputed_residual cal =
  let committed =
    List.fold_left
      (fun acc (e : Calendar.entry) -> Resource_set.union acc e.Calendar.reservation)
      Resource_set.empty (Calendar.entries cal)
  in
  Result.get_ok (Resource_set.diff (Calendar.capacity cal) committed)

let apply_cal_op cal = function
  | Commit (k, a, d, r) -> (
      let window = iv a (a + d) in
      let e =
        {
          Calendar.computation = Printf.sprintf "c%d" k;
          window;
          reservation = rset [ Term.v r window cpu1 ];
          schedules = [];
        }
      in
      match Calendar.commit cal e with Ok cal -> cal | Error _ -> cal)
  | Release k -> Calendar.release cal ~computation:(Printf.sprintf "c%d" k)
  | Advance t -> Calendar.advance cal t
  | Add_capacity (a, d, r) ->
      Calendar.add_capacity cal (rset [ Term.v r (iv a (a + d)) cpu1 ])
  | Remove_capacity (a, d, r) -> (
      match Calendar.remove_capacity cal (rset [ Term.v r (iv a (a + d)) cpu1 ]) with
      | Ok cal -> cal
      | Error _ -> cal)

let prop_calendar_residual_cache =
  QCheck.Test.make ~name:"calendar cached residual = recomputation" ~count:300
    arbitrary_cal_ops (fun ops ->
      let cal = Calendar.create (rset [ Term.v 5 (iv 0 40) cpu1 ]) in
      let _ =
        List.fold_left
          (fun cal op ->
            let cal = apply_cal_op cal op in
            (match Calendar.self_check cal with
            | Ok () -> ()
            | Error e -> QCheck.Test.fail_report e);
            if not (Resource_set.equal (Calendar.residual cal) (recomputed_residual cal))
            then QCheck.Test.fail_report "residual differs from recomputation";
            cal)
          cal ops
      in
      true)

(* --- Admission: ROTA policy --------------------------------------------- *)

let test_admission_rota_admits_and_reserves () =
  let ctrl = Admission.create Admission.Rota (rset [ Term.v 1 (iv 0 20) cpu1 ]) in
  (* evaluate(1) = 8 cpu; ready = 1 cpu; merged to 9 cpu. *)
  let job = one_actor_job ~id:"j1" ~start:0 ~deadline:12 [ Action.evaluate 1; Action.ready ] in
  let ctrl, outcome = Admission.request ctrl ~now:0 job in
  Alcotest.(check bool) "admitted" true outcome.Admission.admitted;
  Alcotest.(check bool) "has certificate" true
    (Option.is_some outcome.Admission.schedules);
  Alcotest.(check int) "residual shrank by 9" 11
    (Resource_set.integrate (Admission.residual ctrl) cpu1 (iv 0 20));
  (* A second 9-cpu job with deadline 12 cannot fit the remaining 3 ticks
     before 12. *)
  let job2 = one_actor_job ~id:"j2" ~start:0 ~deadline:12 [ Action.evaluate 1; Action.ready ] in
  let ctrl, outcome2 = Admission.request ctrl ~now:0 job2 in
  Alcotest.(check bool) "second rejected" false outcome2.Admission.admitted;
  (* With a later deadline it fits after the first. *)
  let job3 = one_actor_job ~id:"j3" ~start:0 ~deadline:20 [ Action.evaluate 1; Action.ready ] in
  let ctrl, outcome3 = Admission.request ctrl ~now:0 job3 in
  Alcotest.(check bool) "third admitted" true outcome3.Admission.admitted;
  (* Completion releases the reservation. *)
  let ctrl = Admission.complete ctrl ~computation:"j1" in
  Alcotest.(check int) "released" 11
    (Resource_set.integrate (Admission.residual ctrl) cpu1 (iv 0 20))

let test_admission_deadline_passed () =
  List.iter
    (fun policy ->
      let ctrl = Admission.create policy (rset [ Term.v 9 (iv 0 30) cpu1 ]) in
      let job = one_actor_job ~id:"late" ~start:0 ~deadline:5 [ Action.ready ] in
      let _, outcome = Admission.request ctrl ~now:5 job in
      Alcotest.(check bool)
        (Admission.policy_name policy ^ " rejects past deadline")
        false outcome.Admission.admitted)
    Admission.all_policies

let test_admission_aggregate_ignores_order () =
  (* cpu early, net early; job needs cpu then net — sequentially impossible
     (net is gone by the time cpu finishes), but aggregate quantities fit. *)
  let capacity = rset [ Term.v 1 (iv 0 8) cpu1; Term.v 1 (iv 0 9) net12 ] in
  (* evaluate(1) -> 8 cpu@l1, then send to a peer at l2 -> 4 net. *)
  let peer = Actor_name.make "peer" in
  let job =
    Computation.make ~id:"ordered" ~start:0 ~deadline:9
      [
        Program.make ~name:a1 ~home:l1
          [ Action.evaluate 1; Action.send ~dest:peer ~size:1 ];
        Program.make ~name:peer ~home:l2 [];
      ]
  in
  let rota = Admission.create Admission.Rota capacity in
  let _, rota_outcome = Admission.request rota ~now:0 job in
  Alcotest.(check bool) "rota rejects (order infeasible)" false
    rota_outcome.Admission.admitted;
  let agg = Admission.create Admission.Aggregate capacity in
  let _, agg_outcome = Admission.request agg ~now:0 job in
  Alcotest.(check bool) "aggregate admits (quantities fit)" true
    agg_outcome.Admission.admitted

let test_admission_aggregate_ledger () =
  let capacity = rset [ Term.v 1 (iv 0 20) cpu1 ] in
  let agg = Admission.create Admission.Aggregate capacity in
  let job1 = one_actor_job ~id:"g1" ~start:0 ~deadline:20 [ Action.evaluate 1; Action.ready ] in
  let agg, o1 = Admission.request agg ~now:0 job1 in
  Alcotest.(check bool) "first admitted" true o1.Admission.admitted;
  Alcotest.(check int) "ledger has one" 1
    (List.length (Admission.admitted_demands agg));
  (* 9 + 9 = 18 <= 20 still fits; a third 9 does not. *)
  let job2 = one_actor_job ~id:"g2" ~start:0 ~deadline:20 [ Action.evaluate 1; Action.ready ] in
  let agg, o2 = Admission.request agg ~now:0 job2 in
  Alcotest.(check bool) "second admitted" true o2.Admission.admitted;
  let job3 = one_actor_job ~id:"g3" ~start:0 ~deadline:20 [ Action.evaluate 1; Action.ready ] in
  let agg, o3 = Admission.request agg ~now:0 job3 in
  Alcotest.(check bool) "third rejected" false o3.Admission.admitted;
  (* Completion frees ledger space. *)
  let agg = Admission.complete agg ~computation:"g1" in
  let _, o4 = Admission.request agg ~now:0 job3 in
  Alcotest.(check bool) "fits after completion" true o4.Admission.admitted

let test_admission_optimistic () =
  let ctrl = Admission.create Admission.Optimistic Resource_set.empty in
  let job = one_actor_job ~id:"any" ~start:0 ~deadline:4 [ Action.evaluate 3 ] in
  let _, outcome = Admission.request ctrl ~now:0 job in
  Alcotest.(check bool) "admits with zero capacity" true
    outcome.Admission.admitted

let test_admission_rota_unmerged_conservative () =
  (* Unmerged steps force a breakpoint between the two cpu actions; with a
     one-tick window per unit that costs nothing here, but with capacity
     that only just fits, both variants agree; this test pins the variant
     dispatch works and is at most as permissive. *)
  let capacity = rset [ Term.v 1 (iv 0 9) cpu1 ] in
  let job = one_actor_job ~id:"m" ~start:0 ~deadline:9 [ Action.evaluate 1; Action.ready ] in
  let merged = Admission.create Admission.Rota capacity in
  let unmerged = Admission.create Admission.Rota_unmerged capacity in
  let _, om = Admission.request merged ~now:0 job in
  let _, ou = Admission.request unmerged ~now:0 job in
  Alcotest.(check bool) "merged admits" true om.Admission.admitted;
  Alcotest.(check bool) "unmerged admits too" true ou.Admission.admitted

let test_admission_add_capacity_unlocks () =
  let ctrl = Admission.create Admission.Rota (rset [ Term.v 1 (iv 0 5) cpu1 ]) in
  let job = one_actor_job ~id:"k" ~start:0 ~deadline:10 [ Action.evaluate 1; Action.ready ] in
  let ctrl, o1 = Admission.request ctrl ~now:0 job in
  Alcotest.(check bool) "rejected at first" false o1.Admission.admitted;
  let ctrl = Admission.add_capacity ctrl (rset [ Term.v 1 (iv 5 10) cpu1 ]) in
  let _, o2 = Admission.request ctrl ~now:0 job in
  Alcotest.(check bool) "admitted after join" true o2.Admission.admitted

(* Regression: a re-submitted id must be rejected by every policy with a
   proper reason — not double-counted (Optimistic/Aggregate) or bounced
   with an "internal: calendar ..." message (Rota). *)
let test_admission_duplicate_rejected () =
  List.iter
    (fun policy ->
      let name = Admission.policy_name policy in
      let ctrl = Admission.create policy (rset [ Term.v 9 (iv 0 30) cpu1 ]) in
      let job =
        one_actor_job ~id:"dup" ~start:0 ~deadline:30
          [ Action.evaluate 1; Action.ready ]
      in
      let ctrl, o1 = Admission.request ctrl ~now:0 job in
      Alcotest.(check bool) (name ^ " first admitted") true o1.Admission.admitted;
      Alcotest.(check int) (name ^ " one record") 1 (Admission.ledger_size ctrl);
      let ctrl, o2 = Admission.request ctrl ~now:0 job in
      Alcotest.(check bool) (name ^ " duplicate rejected") false
        o2.Admission.admitted;
      Alcotest.(check string)
        (name ^ " duplicate reason")
        "dup is already admitted" o2.Admission.reason;
      Alcotest.(check int)
        (name ^ " not double-counted")
        1 (Admission.ledger_size ctrl))
    Admission.all_policies

(* Regression: an all-punctuation reject reason must not produce the
   dangling counter name "admission/reject_reason.". *)
let test_reject_reason_slug () =
  Alcotest.(check string) "all punctuation" "other" (Admission.Obs.slug "!?!");
  Alcotest.(check string) "empty" "other" (Admission.Obs.slug "");
  Alcotest.(check string) "normal text" "deadline-already-passed"
    (Admission.Obs.slug "Deadline already passed!")

(* Advancing prunes demand records whose windows have fully expired, so
   the aggregate/optimistic ledgers stop scanning dead demands. *)
let test_admission_advance_prunes_demands () =
  let ctrl = Admission.create Admission.Optimistic Resource_set.empty in
  let early = one_actor_job ~id:"early" ~start:0 ~deadline:5 [ Action.ready ] in
  let late = one_actor_job ~id:"late" ~start:0 ~deadline:20 [ Action.ready ] in
  let ctrl, _ = Admission.request ctrl ~now:0 early in
  let ctrl, _ = Admission.request ctrl ~now:0 late in
  Alcotest.(check int) "two records" 2 (Admission.ledger_size ctrl);
  let ctrl = Admission.advance ctrl 10 in
  Alcotest.(check int) "expired pruned" 1 (Admission.ledger_size ctrl);
  Alcotest.(check (list string)) "survivor" [ "late" ]
    (List.map (fun (id, _, _) -> id) (Admission.admitted_demands ctrl))

let () =
  Alcotest.run "rota_scheduler"
    [
      ( "calendar",
        [
          Alcotest.test_case "commit/release" `Quick test_calendar_commit_release;
          Alcotest.test_case "advance/capacity" `Quick
            test_calendar_advance_and_capacity;
          QCheck_alcotest.to_alcotest prop_calendar_residual_cache;
          Alcotest.test_case "release reports cache drift" `Quick
            test_calendar_release_reports_drift;
          Alcotest.test_case "remove_capacity reports cache drift" `Quick
            test_calendar_remove_capacity_reports_drift;
        ] );
      ( "admission",
        [
          Alcotest.test_case "rota admits and reserves" `Quick
            test_admission_rota_admits_and_reserves;
          Alcotest.test_case "deadline passed" `Quick test_admission_deadline_passed;
          Alcotest.test_case "aggregate ignores order" `Quick
            test_admission_aggregate_ignores_order;
          Alcotest.test_case "aggregate ledger" `Quick test_admission_aggregate_ledger;
          Alcotest.test_case "optimistic" `Quick test_admission_optimistic;
          Alcotest.test_case "rota unmerged" `Quick
            test_admission_rota_unmerged_conservative;
          Alcotest.test_case "capacity join unlocks" `Quick
            test_admission_add_capacity_unlocks;
          Alcotest.test_case "duplicate admission rejected" `Quick
            test_admission_duplicate_rejected;
          Alcotest.test_case "reject reason slug" `Quick test_reject_reason_slug;
          Alcotest.test_case "advance prunes demands" `Quick
            test_admission_advance_prunes_demands;
        ] );
    ]
