(* Tests for the extension modules implementing the paper's future-work
   directions: Stn (metric temporal constraints), Precedence + Session
   (interacting actors), Pool (CyberOrgs encapsulations), Planner
   (stay-or-migrate choices). *)

open Rota_interval
open Rota_resource
open Rota_actor
open Rota
open Rota_scheduler

let iv a b = Interval.of_pair a b
let l1 = Location.make "l1"
let l2 = Location.make "l2"
let l3 = Location.make "l3"
let cpu1 = Located_type.cpu l1
let cpu2 = Located_type.cpu l2
let rset = Resource_set.of_terms
let amount = Requirement.amount
let a_name = Actor_name.make "alice"
let b_name = Actor_name.make "bob"

let complex steps window = Requirement.make_complex ~steps ~window

(* --- Stn ------------------------------------------------------------------ *)

let test_stn_basics () =
  let stn = Stn.create 3 in
  Alcotest.(check int) "size" 3 (Stn.size stn);
  Alcotest.(check bool) "empty consistent" true (Stn.consistent stn);
  Stn.before stn ~gap:2 0 1;
  (* p1 >= p0 + 2 *)
  Stn.before stn ~gap:3 1 2;
  (* p2 >= p1 + 3 *)
  Alcotest.(check bool) "chain consistent" true (Stn.consistent stn);
  Alcotest.(check (option int)) "earliest p1" (Some 2) (Stn.earliest stn 1);
  Alcotest.(check (option int)) "earliest p2" (Some 5) (Stn.earliest stn 2);
  Alcotest.(check (option int)) "p2 unbounded above" (Some max_int)
    (Stn.latest stn 2)

let test_stn_window_and_pin () =
  let stn = Stn.create 2 in
  Stn.window stn 1 ~lo:4 ~hi:9;
  Alcotest.(check (option int)) "earliest" (Some 4) (Stn.earliest stn 1);
  Alcotest.(check (option int)) "latest" (Some 9) (Stn.latest stn 1);
  Stn.at stn 1 6;
  Alcotest.(check (option int)) "pinned earliest" (Some 6) (Stn.earliest stn 1);
  Alcotest.(check (option int)) "pinned latest" (Some 6) (Stn.latest stn 1);
  (* Pinning outside the window is inconsistent. *)
  let bad = Stn.create 2 in
  Stn.window bad 1 ~lo:4 ~hi:9;
  Stn.at bad 1 10;
  Alcotest.(check bool) "inconsistent" false (Stn.consistent bad);
  Alcotest.(check (option int)) "earliest on inconsistent" None
    (Stn.earliest bad 1)

let test_stn_negative_cycle () =
  let stn = Stn.create 2 in
  Stn.before stn ~gap:3 0 1;
  Stn.before stn ~gap:1 1 0;
  Alcotest.(check bool) "cycle detected" false (Stn.consistent stn)

let test_stn_distance () =
  let stn = Stn.create 3 in
  Stn.add_constraint stn ~hi:5 0 1;
  Stn.add_constraint stn ~hi:7 1 2;
  Alcotest.(check (option int)) "transitive bound" (Some 12) (Stn.distance stn 0 2);
  Alcotest.(check (option int)) "unconstrained" (Some max_int)
    (Stn.distance stn 2 0)

let test_stn_schedule_and_copy () =
  let stn = Stn.create 4 in
  Stn.before stn ~gap:1 0 1;
  Stn.before stn ~gap:2 1 2;
  Stn.before stn ~gap:1 1 3;
  (match Stn.schedule stn with
  | None -> Alcotest.fail "consistent network should schedule"
  | Some p ->
      Alcotest.(check int) "origin at 0" 0 p.(0);
      Alcotest.(check bool) "respects 0->1" true (p.(1) - p.(0) >= 1);
      Alcotest.(check bool) "respects 1->2" true (p.(2) - p.(1) >= 2);
      Alcotest.(check bool) "respects 1->3" true (p.(3) - p.(1) >= 1));
  let copy = Stn.copy stn in
  Stn.before stn ~gap:100 0 3;
  Alcotest.(check (option int)) "copy unaffected" (Some 2) (Stn.earliest copy 3);
  Alcotest.(check (option int)) "original tightened" (Some 100)
    (Stn.earliest stn 3)

(* Random STNs: if consistent, the earliest schedule satisfies every
   constraint that was added. *)
let prop_stn_schedule_valid =
  let open QCheck in
  let constraint_gen =
    Gen.(
      let* i = int_range 0 4 in
      let* j = int_range 0 4 in
      let* lo = int_range (-3) 5 in
      let* width = int_range 0 6 in
      return (i, j, lo, lo + width))
  in
  Test.make ~name:"stn schedules satisfy all constraints" ~count:300
    (make
       ~print:(fun cs ->
         String.concat ";"
           (List.map (fun (i, j, lo, hi) -> Printf.sprintf "%d<=p%d-p%d<=%d" lo j i hi) cs))
       Gen.(list_size (int_range 0 8) constraint_gen))
    (fun constraints ->
      let stn = Stn.create 5 in
      List.iter (fun (i, j, lo, hi) -> Stn.add_constraint stn ~lo ~hi i j) constraints;
      match Stn.schedule stn with
      | None -> not (Stn.consistent stn)
      | Some p ->
          Stn.consistent stn
          && List.for_all
               (fun (i, j, lo, hi) ->
                 let d = p.(j) - p.(i) in
                 lo <= d && d <= hi)
               constraints)

(* --- Precedence -------------------------------------------------------------- *)

let node id ?(deps = []) steps window =
  { Precedence.id; requirement = complex steps window; deps }

let test_precedence_chain () =
  let theta = rset [ Term.v 1 (iv 0 12) cpu1 ] in
  let w = iv 0 12 in
  let nodes =
    [
      node "a" [ [ amount cpu1 3 ] ] w;
      node "b" ~deps:[ "a" ] [ [ amount cpu1 3 ] ] w;
      node "c" ~deps:[ "b" ] [ [ amount cpu1 3 ] ] w;
    ]
  in
  match Precedence.schedule theta nodes with
  | Error e -> Alcotest.failf "chain: %s" (Format.asprintf "%a" Precedence.pp_error e)
  | Ok placements ->
      (match placements with
      | [ pa; pb; pc ] ->
          Alcotest.(check int) "a finishes" 3 pa.Precedence.finished;
          Alcotest.(check int) "b starts after a" 3 pb.Precedence.started;
          Alcotest.(check int) "b finishes" 6 pb.Precedence.finished;
          Alcotest.(check int) "c finishes" 9 pc.Precedence.finished
      | _ -> Alcotest.fail "three placements");
      Alcotest.(check int) "makespan" 9 (Precedence.finish_time placements)

let test_precedence_diamond () =
  (* a -> {b, c} -> d on two independent cpus: b and c run in parallel. *)
  let theta = rset [ Term.v 1 (iv 0 20) cpu1; Term.v 1 (iv 0 20) cpu2 ] in
  let w = iv 0 20 in
  let nodes =
    [
      node "a" [ [ amount cpu1 2 ] ] w;
      node "b" ~deps:[ "a" ] [ [ amount cpu1 4 ] ] w;
      node "c" ~deps:[ "a" ] [ [ amount cpu2 4 ] ] w;
      node "d" ~deps:[ "b"; "c" ] [ [ amount cpu1 2 ] ] w;
    ]
  in
  match Precedence.schedule theta nodes with
  | Error _ -> Alcotest.fail "diamond should fit"
  | Ok placements ->
      let find id =
        List.find (fun p -> String.equal p.Precedence.node id) placements
      in
      Alcotest.(check int) "b finishes" 6 (find "b").Precedence.finished;
      Alcotest.(check int) "c finishes" 6 (find "c").Precedence.finished;
      Alcotest.(check int) "d starts at 6" 6 (find "d").Precedence.started;
      Alcotest.(check int) "makespan" 8 (Precedence.finish_time placements)

let test_precedence_errors () =
  let w = iv 0 10 in
  let dup = [ node "a" [] w; node "a" [] w ] in
  (match Precedence.schedule Resource_set.empty dup with
  | Error (Precedence.Duplicate_node "a") -> ()
  | _ -> Alcotest.fail "expected duplicate");
  let unknown = [ node "a" ~deps:[ "ghost" ] [] w ] in
  (match Precedence.schedule Resource_set.empty unknown with
  | Error (Precedence.Unknown_dependency { node = "a"; dependency = "ghost" }) -> ()
  | _ -> Alcotest.fail "expected unknown dependency");
  let cyclic = [ node "a" ~deps:[ "b" ] [] w; node "b" ~deps:[ "a" ] [] w ] in
  (match Precedence.schedule Resource_set.empty cyclic with
  | Error (Precedence.Cycle ids) ->
      Alcotest.(check (list string)) "cycle members" [ "a"; "b" ]
        (List.sort compare ids)
  | _ -> Alcotest.fail "expected cycle");
  let starved = [ node "a" [ [ amount cpu1 5 ] ] w ] in
  match Precedence.schedule Resource_set.empty starved with
  | Error (Precedence.Infeasible "a") -> ()
  | _ -> Alcotest.fail "expected infeasible"

let test_precedence_sync_node () =
  (* An empty node acts as a pure synchronization point. *)
  let theta = rset [ Term.v 1 (iv 0 10) cpu1 ] in
  let w = iv 0 10 in
  let nodes =
    [
      node "work" [ [ amount cpu1 4 ] ] w;
      node "sync" ~deps:[ "work" ] [] w;
      node "after" ~deps:[ "sync" ] [ [ amount cpu1 2 ] ] w;
    ]
  in
  match Precedence.schedule theta nodes with
  | Error _ -> Alcotest.fail "sync chain should fit"
  | Ok placements ->
      let find id =
        List.find (fun p -> String.equal p.Precedence.node id) placements
      in
      Alcotest.(check int) "sync takes no time" 4 (find "sync").Precedence.finished;
      Alcotest.(check int) "after starts at 4" 4 (find "after").Precedence.started

let prop_precedence_respects_deps =
  let open QCheck in
  Test.make ~name:"precedence placements respect dependencies" ~count:100
    (pair (int_range 0 1000) (int_range 2 5))
    (fun (seed, n) ->
      let prng = Rota_workload.Prng.create seed in
      let w = iv 0 60 in
      (* A random DAG over n nodes: node i may depend on any j < i. *)
      let nodes =
        List.init n (fun i ->
            let deps =
              List.filter
                (fun _j -> Rota_workload.Prng.bool prng)
                (List.init i Fun.id)
              |> List.map string_of_int
            in
            node (string_of_int i) ~deps
              [ [ amount cpu1 (1 + Rota_workload.Prng.int prng 4) ] ]
              w)
      in
      let theta = rset [ Term.v 1 (iv 0 60) cpu1 ] in
      match Precedence.schedule theta nodes with
      | Error _ -> true (* infeasibility is allowed; ordering is the claim *)
      | Ok placements ->
          let finish_of id =
            (List.find (fun p -> String.equal p.Precedence.node id) placements)
              .Precedence.finished
          in
          List.for_all
            (fun n ->
              let p =
                List.find
                  (fun p -> String.equal p.Precedence.node n.Precedence.id)
                  placements
              in
              List.for_all
                (fun d -> p.Precedence.started >= finish_of d)
                n.Precedence.deps)
            nodes)

(* --- Session ------------------------------------------------------------------ *)

let ping_pong ~deadline =
  (* alice computes, sends to bob, awaits bob's reply, computes again;
     bob awaits alice, computes, replies. *)
  Session.make ~id:"ping-pong" ~start:0 ~deadline
    [
      Session.participant ~name:a_name ~home:l1
        [
          Session.Act (Action.evaluate 1);
          Session.Act (Action.send ~dest:b_name ~size:1);
          Session.Await b_name;
          Session.Act (Action.evaluate 1);
        ];
      Session.participant ~name:b_name ~home:l2
        [
          Session.Await a_name;
          Session.Act (Action.evaluate 1);
          Session.Act (Action.send ~dest:a_name ~size:1);
        ];
    ]

let session_capacity stop =
  rset
    [
      Term.v 1 (iv 0 stop) cpu1;
      Term.v 1 (iv 0 stop) cpu2;
      Term.v 2 (iv 0 stop) (Located_type.network ~src:l1 ~dst:l2);
      Term.v 2 (iv 0 stop) (Located_type.network ~src:l2 ~dst:l1);
    ]

let test_session_validation () =
  (match ping_pong ~deadline:60 with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "valid session rejected: %s" e);
  (* Deadline before start. *)
  (match Session.make ~id:"bad" ~start:5 ~deadline:5 [] with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "empty window accepted");
  (* Awaiting an unknown participant. *)
  (match
     Session.make ~id:"bad" ~start:0 ~deadline:10
       [ Session.participant ~name:a_name ~home:l1 [ Session.Await b_name ] ]
   with
  | Error e ->
      Alcotest.(check bool) "mentions unknown" true
        (String.length e > 0)
  | Ok _ -> Alcotest.fail "unknown awaited participant accepted");
  (* Self-await. *)
  (match
     Session.make ~id:"bad" ~start:0 ~deadline:10
       [ Session.participant ~name:a_name ~home:l1 [ Session.Await a_name ] ]
   with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "self-await accepted");
  (* More awaits than sends. *)
  match
    Session.make ~id:"bad" ~start:0 ~deadline:10
      [
        Session.participant ~name:a_name ~home:l1
          [ Session.Await b_name; Session.Await b_name ];
        Session.participant ~name:b_name ~home:l2
          [ Session.Act (Action.send ~dest:a_name ~size:1) ];
      ]
  with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "unmatched await accepted"

let test_session_nodes () =
  let session = Result.get_ok (ping_pong ~deadline:60) in
  let nodes = Session.to_nodes Rota_actor.Cost_model.default session in
  let ids = List.map (fun n -> n.Precedence.id) nodes in
  Alcotest.(check (list string)) "segment ids"
    [ "alice#0"; "alice#1"; "bob#0"; "bob#1" ]
    (List.sort compare ids);
  let deps_of id =
    (List.find (fun n -> String.equal n.Precedence.id id) nodes).Precedence.deps
    |> List.sort compare
  in
  Alcotest.(check (list string)) "alice#0 independent" [] (deps_of "alice#0");
  (* bob's first segment is the empty prefix before his await. *)
  Alcotest.(check (list string)) "bob#1 waits for alice's send segment"
    [ "alice#0"; "bob#0" ] (deps_of "bob#1");
  Alcotest.(check (list string)) "alice#1 waits for bob's reply segment"
    [ "alice#0"; "bob#1" ] (deps_of "alice#1")

let test_session_meets_deadline () =
  let session = Result.get_ok (ping_pong ~deadline:60) in
  (match
     Session.meets_deadline Rota_actor.Cost_model.default (session_capacity 60)
       session
   with
  | Ok placements ->
      (* alice#0: 8 cpu then 4 net at rate 2 -> done by 10; bob#1: 8 cpu
         then 4 net from 10 -> done by 20; alice#1: 8 cpu from 20 -> 28. *)
      Alcotest.(check int) "makespan" 28 (Precedence.finish_time placements)
  | Error e ->
      Alcotest.failf "should fit: %s" (Format.asprintf "%a" Precedence.pp_error e));
  (* Too tight: the dependency chain cannot compress below 28. *)
  let tight = Result.get_ok (ping_pong ~deadline:27) in
  match
    Session.meets_deadline Rota_actor.Cost_model.default (session_capacity 27)
      tight
  with
  | Error (Precedence.Infeasible _) -> ()
  | Error e ->
      Alcotest.failf "unexpected error: %s"
        (Format.asprintf "%a" Precedence.pp_error e)
  | Ok _ -> Alcotest.fail "27 ticks cannot carry the 28-tick chain"

let test_session_deadlock () =
  (* Each awaits the other before sending: a static deadlock. *)
  let session =
    Result.get_ok
      (Session.make ~id:"deadlock" ~start:0 ~deadline:50
         [
           Session.participant ~name:a_name ~home:l1
             [ Session.Await b_name; Session.Act (Action.send ~dest:b_name ~size:1) ];
           Session.participant ~name:b_name ~home:l2
             [ Session.Await a_name; Session.Act (Action.send ~dest:a_name ~size:1) ];
         ])
  in
  match
    Session.meets_deadline Rota_actor.Cost_model.default (session_capacity 50)
      session
  with
  | Error (Precedence.Cycle ids) ->
      Alcotest.(check bool) "cycle involves both" true (List.length ids >= 2)
  | _ -> Alcotest.fail "expected a deadlock cycle"

(* --- Pool --------------------------------------------------------------------- *)

let one_actor_job ~id ~deadline ~home actions =
  Computation.make ~id ~start:0 ~deadline
    [ Program.make ~name:a_name ~home actions ]

let test_pool_subdivide_and_isolation () =
  let capacity = rset [ Term.v 2 (iv 0 20) cpu1; Term.v 2 (iv 0 20) cpu2 ] in
  let tree = Pool.root ~name:"root" capacity in
  let tree =
    Result.get_ok
      (Pool.subdivide tree ~parent:"root" ~name:"org1"
         ~slice:(rset [ Term.v 2 (iv 0 20) cpu1 ]))
  in
  Alcotest.(check (list string)) "names" [ "root"; "org1" ] (Pool.names tree);
  (* Root no longer holds cpu1. *)
  let root_residual = Pool.residual (Option.get (Pool.find tree "root")) in
  Alcotest.(check int) "root lost cpu1" 0
    (Resource_set.integrate root_residual cpu1 (iv 0 20));
  Alcotest.(check int) "root kept cpu2" 40
    (Resource_set.integrate root_residual cpu2 (iv 0 20));
  (* Total capacity is conserved. *)
  Alcotest.(check bool) "conservation" true
    (Resource_set.equal (Pool.total_capacity tree) capacity);
  (* A job needing cpu1 is admitted in org1 but rejected in root. *)
  let job = one_actor_job ~id:"j" ~deadline:20 ~home:l1 [ Action.evaluate 1 ] in
  (match Pool.admit tree ~pool:"org1" ~now:0 job with
  | Ok (_, outcome) ->
      Alcotest.(check bool) "org1 admits" true outcome.Admission.admitted
  | Error e -> Alcotest.failf "admit: %s" e);
  match Pool.admit tree ~pool:"root" ~now:0 job with
  | Ok (_, outcome) ->
      Alcotest.(check bool) "root rejects (no cpu1)" false
        outcome.Admission.admitted
  | Error e -> Alcotest.failf "admit: %s" e

(* Regression: subdivision must thread the parent's cost model into the
   child controller — a default model there silently changes admission
   decisions inside the slice. *)
let test_pool_subdivide_inherits_cost_model () =
  let cheap = Cost_model.uniform 1 in
  let capacity = rset [ Term.v 2 (iv 0 10) cpu1 ] in
  let tree = Pool.root ~cost_model:cheap ~name:"root" capacity in
  let tree =
    Result.get_ok
      (Pool.subdivide tree ~parent:"root" ~name:"child"
         ~slice:(rset [ Term.v 1 (iv 0 10) cpu1 ]))
  in
  let child = Option.get (Pool.find tree "child") in
  Alcotest.(check bool) "child inherits cost model" true
    (Admission.cost_model child.Pool.controller = cheap);
  (* Behavioural check: evaluate(3) is 3 cpu under the cheap model but 24
     under the default, which the 10-quantity slice cannot carry. *)
  let job = one_actor_job ~id:"j" ~deadline:10 ~home:l1 [ Action.evaluate 3 ] in
  match Pool.admit tree ~pool:"child" ~now:0 job with
  | Ok (_, outcome) ->
      Alcotest.(check bool) "admitted under parent's model" true
        outcome.Admission.admitted
  | Error e -> Alcotest.failf "admit: %s" e

let test_pool_subdivide_errors () =
  let tree = Pool.root ~name:"root" (rset [ Term.v 1 (iv 0 10) cpu1 ]) in
  (match
     Pool.subdivide tree ~parent:"nope" ~name:"x"
       ~slice:(rset [ Term.v 1 (iv 0 10) cpu1 ])
   with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "unknown parent accepted");
  (match
     Pool.subdivide tree ~parent:"root" ~name:"root"
       ~slice:(rset [ Term.v 1 (iv 0 10) cpu1 ])
   with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "duplicate name accepted");
  match
    Pool.subdivide tree ~parent:"root" ~name:"x"
      ~slice:(rset [ Term.v 2 (iv 0 10) cpu1 ])
  with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "overdraw accepted"

let test_pool_assimilate () =
  let capacity = rset [ Term.v 2 (iv 0 20) cpu1 ] in
  let tree = Pool.root ~name:"root" capacity in
  let tree =
    Result.get_ok
      (Pool.subdivide tree ~parent:"root" ~name:"org1"
         ~slice:(rset [ Term.v 1 (iv 0 20) cpu1 ]))
  in
  (* Commit a job inside the child, then assimilate. *)
  let job = one_actor_job ~id:"j" ~deadline:20 ~home:l1 [ Action.evaluate 1 ] in
  let tree, outcome =
    Result.get_ok (Pool.admit tree ~pool:"org1" ~now:0 job)
  in
  Alcotest.(check bool) "admitted in child" true outcome.Admission.admitted;
  let tree = Result.get_ok (Pool.assimilate tree ~child:"org1") in
  Alcotest.(check (list string)) "child gone" [ "root" ] (Pool.names tree);
  let root = Option.get (Pool.find tree "root") in
  (* Full capacity returned; the job's 8-unit reservation carried over. *)
  Alcotest.(check bool) "capacity restored" true
    (Resource_set.equal (Pool.capacity root) capacity);
  Alcotest.(check int) "reservation survives" 32
    (Resource_set.integrate (Pool.residual root) cpu1 (iv 0 20));
  (* Errors. *)
  (match Pool.assimilate tree ~child:"root" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "assimilating root accepted");
  match Pool.assimilate tree ~child:"ghost" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "unknown child accepted"

let test_pool_assimilate_non_leaf () =
  let tree = Pool.root ~name:"root" (rset [ Term.v 3 (iv 0 10) cpu1 ]) in
  let tree =
    Result.get_ok
      (Pool.subdivide tree ~parent:"root" ~name:"mid"
         ~slice:(rset [ Term.v 2 (iv 0 10) cpu1 ]))
  in
  let tree =
    Result.get_ok
      (Pool.subdivide tree ~parent:"mid" ~name:"leaf"
         ~slice:(rset [ Term.v 1 (iv 0 10) cpu1 ]))
  in
  (match Pool.assimilate tree ~child:"mid" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "non-leaf assimilation accepted");
  (* Leaf first, then mid. *)
  let tree = Result.get_ok (Pool.assimilate tree ~child:"leaf") in
  let tree = Result.get_ok (Pool.assimilate tree ~child:"mid") in
  Alcotest.(check (list string)) "flat again" [ "root" ] (Pool.names tree);
  Alcotest.(check int) "all capacity home" 30
    (Resource_set.integrate (Pool.residual (Option.get (Pool.find tree "root"))) cpu1 (iv 0 10))

(* --- Planner ------------------------------------------------------------------- *)

let test_planner_strategies () =
  let strategies = Planner.strategies ~home:l1 ~sites:[ l1; l2; l3 ] in
  Alcotest.(check int) "stay + 2x2 away" 5 (List.length strategies);
  let only_home = Planner.strategies ~home:l1 ~sites:[ l1 ] in
  Alcotest.(check int) "home only" 1 (List.length only_home)

let test_planner_prefers_migration () =
  (* Home is a trickle; remote is fast: the round trip wins. *)
  let window = iv 0 30 in
  let theta =
    rset
      [
        Term.v 1 window cpu1;
        Term.v 2 window cpu2;
        Term.v 3 window (Located_type.network ~src:l1 ~dst:l2);
        Term.v 3 window (Located_type.network ~src:l2 ~dst:l1);
      ]
  in
  let work = [ Action.evaluate 2; Action.evaluate 2; Action.ready ] in
  match
    Planner.best theta ~window ~name:a_name ~home:l1 ~sites:[ l2 ] ~work
  with
  | None -> Alcotest.fail "some plan should fit"
  | Some v ->
      (match v.Planner.strategy with
      | Planner.Relocate site | Planner.Round_trip site ->
          Alcotest.(check bool) "migrates to l2" true (Location.equal site l2)
      | Planner.Stay -> Alcotest.fail "stay cannot fit 33 cpu in 30 ticks");
      Alcotest.(check bool) "finishes inside window" true
        (v.Planner.finish <= 30)

let test_planner_prefers_stay_when_cheap () =
  (* Plenty of cpu at home: staying avoids migration overhead. *)
  let window = iv 0 30 in
  let theta =
    rset
      [
        Term.v 4 window cpu1;
        Term.v 4 window cpu2;
        Term.v 4 window (Located_type.network ~src:l1 ~dst:l2);
        Term.v 4 window (Located_type.network ~src:l2 ~dst:l1);
      ]
  in
  let work = [ Action.evaluate 1; Action.ready ] in
  match
    Planner.best theta ~window ~name:a_name ~home:l1 ~sites:[ l2 ] ~work
  with
  | Some { Planner.strategy = Planner.Stay; _ } -> ()
  | Some v ->
      Alcotest.failf "expected stay, got %s"
        (Format.asprintf "%a" Planner.pp_strategy v.Planner.strategy)
  | None -> Alcotest.fail "stay should fit"

(* Planning against a live controller: only the residual is offered,
   priced with the controller's own cost model. *)
let test_planner_on_controller () =
  let window = iv 0 30 in
  let cheap = Cost_model.uniform 1 in
  let ctrl =
    Admission.create ~cost_model:cheap Admission.Rota
      (rset [ Term.v 2 window cpu1 ])
  in
  let ctrl =
    Result.get_ok
      (Admission.adopt ctrl
         {
           Calendar.computation = "tenant";
           window;
           reservation = rset [ Term.v 1 window cpu1 ];
           schedules = [];
         })
  in
  let work = [ Action.evaluate 2 ] in
  match Planner.best_on ctrl ~window ~name:a_name ~home:l1 ~sites:[] ~work with
  | None -> Alcotest.fail "stay should fit on the residual"
  | Some v ->
      (* 2 cpu (cheap model) at the residual's rate 1: finishes at 2.  A
         planner reading full capacity would finish at 1; one using the
         default cost model would need 16 cpu and finish at 16. *)
      Alcotest.(check int) "residual rate and controller cost model" 2
        v.Planner.finish

let test_planner_all_infeasible () =
  let window = iv 0 3 in
  let theta = rset [ Term.v 1 window cpu1 ] in
  let work = [ Action.evaluate 3 ] in
  Alcotest.(check bool) "no plan" true
    (Planner.best theta ~window ~name:a_name ~home:l1 ~sites:[ l2 ] ~work
    = None)

let test_planner_verdicts_sorted () =
  let window = iv 0 60 in
  let theta =
    rset
      [
        Term.v 2 window cpu1;
        Term.v 2 window cpu2;
        Term.v 3 window (Located_type.network ~src:l1 ~dst:l2);
        Term.v 3 window (Located_type.network ~src:l2 ~dst:l1);
      ]
  in
  let work = [ Action.evaluate 2; Action.ready ] in
  let verdicts =
    Planner.evaluate theta ~window ~name:a_name ~home:l1 ~sites:[ l2 ] ~work
  in
  Alcotest.(check bool) "several feasible" true (List.length verdicts >= 2);
  let finishes = List.map (fun v -> v.Planner.finish) verdicts in
  Alcotest.(check (list int)) "sorted by finish"
    (List.sort compare finishes) finishes;
  (* Every verdict's schedule certifies against its own requirement. *)
  List.iter
    (fun v ->
      let req =
        Rota_actor.Program.to_complex Rota_actor.Cost_model.default
          ~locate:(fun _ -> None)
          ~window v.Planner.program
      in
      match Accommodation.check_schedule theta req v.Planner.schedule with
      | Ok () -> ()
      | Error e -> Alcotest.failf "certificate rejected: %s" e)
    verdicts

(* Pool capacity is conserved under random subdivide/assimilate storms. *)
let prop_pool_conservation =
  QCheck.Test.make ~name:"pool capacity conserved" ~count:60
    QCheck.(int_range 0 10_000)
    (fun seed ->
      let prng = Rota_workload.Prng.create seed in
      let capacity = rset [ Term.v 8 (iv 0 40) cpu1; Term.v 8 (iv 0 40) cpu2 ] in
      let tree = ref (Pool.root ~name:"root" capacity) in
      let created = ref [ "root" ] in
      for i = 0 to 9 do
        if Rota_workload.Prng.bool prng then begin
          (* Try a subdivide from a random existing pool. *)
          let parent = Rota_workload.Prng.choose prng !created in
          let name = Printf.sprintf "p%d" i in
          let slice =
            rset [ Term.v 1 (iv 0 40) (if Rota_workload.Prng.bool prng then cpu1 else cpu2) ]
          in
          match Pool.subdivide !tree ~parent ~name ~slice with
          | Ok t ->
              tree := t;
              created := name :: !created
          | Error _ -> ()
        end
        else begin
          (* Try to assimilate a random non-root pool. *)
          match List.filter (fun n -> n <> "root") !created with
          | [] -> ()
          | children -> (
              let child = Rota_workload.Prng.choose prng children in
              match Pool.assimilate !tree ~child with
              | Ok t ->
                  tree := t;
                  created := List.filter (fun n -> n <> child) !created
              | Error _ -> ())
        end
      done;
      Resource_set.equal (Pool.total_capacity !tree) capacity)

(* Random sessions compile to well-formed dependency graphs: scheduling
   either succeeds or reports Infeasible/Cycle — never malformed nodes. *)
let prop_session_nodes_well_formed =
  QCheck.Test.make ~name:"session nodes are well-formed" ~count:100
    QCheck.(int_range 0 10_000)
    (fun seed ->
      let prng = Rota_workload.Prng.create seed in
      let world = Rota_workload.Gen.world ~locations:2 () in
      let session =
        Rota_workload.Gen.random_session prng world ~id:"s" ~start:0
          ~participants:(2, 3) ~exchanges:(1, 4) ~slack:2.0 ~rate_hint:2
      in
      let nodes = Session.to_nodes Rota_actor.Cost_model.default session in
      let theta =
        rset
          [ Term.v 2 (iv 0 session.Session.deadline) cpu1 ]
      in
      match Precedence.schedule theta nodes with
      | Ok _ | Error (Precedence.Infeasible _) | Error (Precedence.Cycle _) ->
          true
      | Error (Precedence.Duplicate_node _)
      | Error (Precedence.Unknown_dependency _) ->
          false)

let properties =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_stn_schedule_valid;
      prop_precedence_respects_deps;
      prop_pool_conservation;
      prop_session_nodes_well_formed;
    ]

let () =
  Alcotest.run "rota_extensions"
    [
      ( "stn",
        [
          Alcotest.test_case "basics" `Quick test_stn_basics;
          Alcotest.test_case "window/pin" `Quick test_stn_window_and_pin;
          Alcotest.test_case "negative cycle" `Quick test_stn_negative_cycle;
          Alcotest.test_case "distance" `Quick test_stn_distance;
          Alcotest.test_case "schedule/copy" `Quick test_stn_schedule_and_copy;
        ] );
      ( "precedence",
        [
          Alcotest.test_case "chain" `Quick test_precedence_chain;
          Alcotest.test_case "diamond" `Quick test_precedence_diamond;
          Alcotest.test_case "errors" `Quick test_precedence_errors;
          Alcotest.test_case "sync node" `Quick test_precedence_sync_node;
        ] );
      ( "session",
        [
          Alcotest.test_case "validation" `Quick test_session_validation;
          Alcotest.test_case "compilation to nodes" `Quick test_session_nodes;
          Alcotest.test_case "meets deadline" `Quick test_session_meets_deadline;
          Alcotest.test_case "deadlock detection" `Quick test_session_deadlock;
        ] );
      ( "pool",
        [
          Alcotest.test_case "subdivide/isolation" `Quick
            test_pool_subdivide_and_isolation;
          Alcotest.test_case "subdivide errors" `Quick test_pool_subdivide_errors;
          Alcotest.test_case "subdivide inherits cost model" `Quick
            test_pool_subdivide_inherits_cost_model;
          Alcotest.test_case "assimilate" `Quick test_pool_assimilate;
          Alcotest.test_case "assimilate non-leaf" `Quick
            test_pool_assimilate_non_leaf;
        ] );
      ( "planner",
        [
          Alcotest.test_case "strategies" `Quick test_planner_strategies;
          Alcotest.test_case "prefers migration" `Quick
            test_planner_prefers_migration;
          Alcotest.test_case "prefers stay" `Quick
            test_planner_prefers_stay_when_cheap;
          Alcotest.test_case "all infeasible" `Quick test_planner_all_infeasible;
          Alcotest.test_case "plans on controller residual" `Quick
            test_planner_on_controller;
          Alcotest.test_case "verdicts sorted + certified" `Quick
            test_planner_verdicts_sorted;
        ] );
      ("properties", properties);
    ]
