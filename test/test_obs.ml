(* Tests for the telemetry layer (Rota_obs): metrics registry semantics,
   span nesting, the JSONL codec, and the engine's event stream through
   an installed sink. *)

open Rota_interval
open Rota_resource
open Rota_actor
open Rota_scheduler
open Rota_sim
module Metrics = Rota_obs.Metrics
module Events = Rota_obs.Events
module Json = Rota_obs.Json
module Sink = Rota_obs.Sink
module Tracer = Rota_obs.Tracer

(* Metrics and the tracer are process-global; every test starts from a
   clean slate and leaves recording off. *)
let with_metrics f =
  Metrics.reset ();
  Metrics.set_enabled true;
  Fun.protect f ~finally:(fun () ->
      Metrics.set_enabled false;
      Metrics.reset ())

let with_tracer f =
  Tracer.reset ();
  Fun.protect f ~finally:Tracer.reset

(* --- Counters & gauges ----------------------------------------------------- *)

let test_counter_semantics () =
  with_metrics @@ fun () ->
  let c = Metrics.counter "test/counter" in
  Alcotest.(check int) "starts at zero" 0 (Metrics.counter_value c);
  Metrics.incr c;
  Metrics.add c 4;
  Alcotest.(check int) "incr + add" 5 (Metrics.counter_value c);
  (* Interned: same name, same cell. *)
  Metrics.incr (Metrics.counter "test/counter");
  Alcotest.(check int) "interned by name" 6 (Metrics.counter_value c);
  (* Disabled mutations are dropped. *)
  Metrics.set_enabled false;
  Metrics.incr c;
  Metrics.add c 100;
  Alcotest.(check int) "disabled is a no-op" 6 (Metrics.counter_value c);
  Metrics.set_enabled true;
  Metrics.reset ();
  Alcotest.(check int) "reset zeroes, handle survives" 0 (Metrics.counter_value c)

let test_gauge_semantics () =
  with_metrics @@ fun () ->
  let g = Metrics.gauge "test/gauge" in
  Metrics.set g 7;
  Metrics.set g 3;
  Alcotest.(check int) "last write wins" 3 (Metrics.gauge_value g);
  Metrics.set_enabled false;
  Metrics.set g 99;
  Alcotest.(check int) "disabled set dropped" 3 (Metrics.gauge_value g)

(* --- Histograms ------------------------------------------------------------ *)

let test_histogram_basic () =
  with_metrics @@ fun () ->
  let h = Metrics.histogram ~buckets:[| 1.; 2.; 4. |] "test/hist-basic" in
  Alcotest.(check int) "empty count" 0 (Metrics.hist_count h);
  Alcotest.(check (float 0.)) "empty mean" 0. (Metrics.hist_mean h);
  Alcotest.(check (float 0.)) "empty quantile" 0. (Metrics.quantile h 0.5);
  List.iter (Metrics.observe h) [ 0.5; 1.0; 2.0; 4.0 ];
  Alcotest.(check int) "count" 4 (Metrics.hist_count h);
  Alcotest.(check (float 1e-9)) "sum" 7.5 (Metrics.hist_sum h);
  Alcotest.(check (float 1e-9)) "mean" 1.875 (Metrics.hist_mean h);
  Metrics.set_enabled false;
  Metrics.observe h 100.;
  Alcotest.(check int) "disabled observe dropped" 4 (Metrics.hist_count h)

let test_histogram_quantile_boundaries () =
  with_metrics @@ fun () ->
  let h = Metrics.histogram ~buckets:[| 1.; 2.; 4. |] "test/hist-bounds" in
  (* Cells: (0,1] gets 0.5 and 1.0; (1,2] gets 2.0; (2,4] gets 4.0. *)
  List.iter (Metrics.observe h) [ 0.5; 1.0; 2.0; 4.0 ];
  let q p = Metrics.quantile h p in
  (* Ranks landing exactly on a cumulative-count boundary return the
     bucket's upper bound exactly — no interpolation fuzz. *)
  Alcotest.(check (float 0.)) "q0.5 on bucket boundary" 1.0 (q 0.5);
  Alcotest.(check (float 0.)) "q0.75 on bucket boundary" 2.0 (q 0.75);
  Alcotest.(check (float 0.)) "q1.0 is the max" 4.0 (q 1.0);
  (* Interior ranks interpolate linearly inside the covering bucket. *)
  Alcotest.(check (float 1e-9)) "q0.25 interpolates" 0.5 (q 0.25);
  Alcotest.(check (float 0.)) "q0 is the min" 0.5 (q 0.)

let test_histogram_overflow_and_clamp () =
  with_metrics @@ fun () ->
  let h = Metrics.histogram ~buckets:[| 1.; 2.; 4. |] "test/hist-over" in
  (* Past the last bucket: the overflow cell reports the true maximum. *)
  Metrics.observe h 100.;
  Alcotest.(check (float 0.)) "overflow reports true max" 100.
    (Metrics.quantile h 0.9);
  Metrics.reset ();
  (* A single observation low in a wide bucket: interpolation would
     reach toward the bucket's upper bound; clamping caps it at the
     observed max. *)
  Metrics.observe h 2.5;
  Alcotest.(check (float 0.)) "estimate clamped to observed max" 2.5
    (Metrics.quantile h 0.9)

let test_histogram_validation () =
  Alcotest.check_raises "empty buckets"
    (Invalid_argument "Metrics.histogram: empty bucket array") (fun () ->
      ignore (Metrics.histogram ~buckets:[||] "test/hist-empty"));
  Alcotest.check_raises "unsorted buckets"
    (Invalid_argument "Metrics.histogram: buckets must be strictly ascending")
    (fun () -> ignore (Metrics.histogram ~buckets:[| 2.; 1. |] "test/hist-bad"))

let test_histogram_bucket_mismatch () =
  (* Regression: re-registering a name with different buckets used to
     silently return the old histogram, dropping the caller's buckets. *)
  let h = Metrics.histogram ~buckets:[| 1.; 2.; 4. |] "test/hist-rereg" in
  Alcotest.check_raises "different buckets raise"
    (Invalid_argument
       "Metrics.histogram: \"test/hist-rereg\" re-registered with different \
        buckets") (fun () ->
      ignore (Metrics.histogram ~buckets:[| 1.; 3. |] "test/hist-rereg"));
  (* Same buckets and bucket-less lookups still intern. *)
  Alcotest.(check bool) "same buckets ok" true
    (h == Metrics.histogram ~buckets:[| 1.; 2.; 4. |] "test/hist-rereg");
  Alcotest.(check bool) "no buckets finds existing" true
    (h == Metrics.histogram "test/hist-rereg")

let test_time_records_duration () =
  with_metrics @@ fun () ->
  let h = Metrics.histogram "test/hist-time" in
  let x = Metrics.time h (fun () -> 41 + 1) in
  Alcotest.(check int) "thunk result" 42 x;
  Alcotest.(check int) "one observation" 1 (Metrics.hist_count h);
  Alcotest.(check bool) "nonnegative duration" true (Metrics.hist_sum h >= 0.);
  (* Observes even when the thunk raises. *)
  (try Metrics.time h (fun () -> failwith "boom") with Failure _ -> ());
  Alcotest.(check int) "observed on raise too" 2 (Metrics.hist_count h)

(* --- Spans ------------------------------------------------------------------ *)

let test_span_nesting () =
  with_tracer @@ fun () ->
  let sink, captured = Sink.memory () in
  Tracer.install sink;
  let r =
    Tracer.with_span "outer" (fun () ->
        Tracer.with_span ~sim:3 "inner" (fun () -> "done"))
  in
  Alcotest.(check string) "value passes through" "done" r;
  match captured () with
  | [ e_inner; e_outer ] -> (
      Alcotest.(check bool) "seq increases" true (e_inner.Events.seq < e_outer.Events.seq);
      Alcotest.(check (option int)) "inner sim time" (Some 3) e_inner.Events.sim;
      match (e_inner.Events.payload, e_outer.Events.payload) with
      | ( Events.Span
            {
              name = "inner";
              depth = 1;
              duration_s = d_in;
              id = id_in;
              parent = p_in;
              begin_s = b_in;
            },
          Events.Span
            {
              name = "outer";
              depth = 0;
              duration_s = d_out;
              id = id_out;
              parent = p_out;
              begin_s = b_out;
            } ) ->
          Alcotest.(check bool) "outer spans at least as long" true (d_out >= d_in);
          (* The id/parent linkage reconstructs the nesting regardless of
             emission order (parents are emitted after children). *)
          Alcotest.(check (option int)) "inner's parent is outer" (Some id_out) p_in;
          Alcotest.(check (option int)) "outer has no parent" None p_out;
          Alcotest.(check bool) "ids distinct and positive" true
            (id_in > 0 && id_out > 0 && id_in <> id_out);
          Alcotest.(check bool) "outer begins first" true (b_out <= b_in)
      | _ -> Alcotest.fail "expected inner (depth 1) then outer (depth 0)")
  | es -> Alcotest.failf "expected 2 span events, got %d" (List.length es)

let test_span_without_sink () =
  with_tracer @@ fun () ->
  Alcotest.(check bool) "no sink" false (Tracer.active ());
  Alcotest.(check int) "with_span is the thunk" 9
    (Tracer.with_span "quiet" (fun () -> 9))

(* --- JSONL codec ------------------------------------------------------------ *)

(* A serialized certificate as the engine would attach it; the codec
   carries it verbatim, so any JSON object exercises the path. *)
let cert_json =
  Json.Obj
    [
      ("theorem", Json.String "T4");
      ("digest", Json.String "4909ae3863d70ea6");
      ("evidence", Json.Obj [ ("kind", Json.String "infeasible") ]);
    ]

let rects_json =
  Json.List
    [
      Json.Obj
        [
          ("type", Json.String "cpu@l1");
          ("start", Json.Int 0);
          ("stop", Json.Int 40);
          ("rate", Json.Int 2);
        ];
    ]

let all_payloads =
  [
    Events.Run_started { label = "engine policy=rota" };
    Events.Capacity_joined { quantity = 120; terms = Json.Null };
    Events.Capacity_joined { quantity = 80; terms = rects_json };
    Events.Admitted { id = "c001"; policy = "rota"; reason = "reservation committed" };
    Events.Rejected { id = "c002"; policy = "rota"; reason = "no accommodating schedule" };
    Events.Decision
      {
        id = "c002";
        policy = "rota";
        action = "reject";
        slug = "no-accommodating-schedule";
        certificate = cert_json;
        cid = None;
      };
    Events.Decision
      {
        id = "c009";
        policy = "optimistic";
        action = "admit";
        slug = "admitted-without-schedule-check";
        certificate = Json.Null;
        cid = Some "s-42";
      };
    Events.Shed
      {
        id = "c010";
        slug = "queue-full";
        reason = "queue full (64 outstanding)";
      };
    Events.Completed { id = "c001" };
    Events.Killed { id = "c003"; owed = 7 };
    Events.Fault_injected { fault = "revocation"; quantity = 30; terms = rects_json };
    Events.Fault_injected { fault = "slowdown"; quantity = 0; terms = Json.Null };
    Events.Commitment_revoked { id = "c004"; quantity = 12 };
    Events.Commitment_degraded { id = "c005"; extra = 4; released = true };
    Events.Commitment_degraded { id = "c006"; extra = 2; released = false };
    Events.Repaired { id = "c004"; rung = "migrate"; attempt = 1; certificate = cert_json };
    Events.Preempted { id = "c007"; owed = 3 };
    Events.Anomaly { id = "c008"; reason = "repair pass skipped" };
    Events.Span
      {
        name = "engine/run";
        id = 4;
        parent = Some 2;
        depth = 0;
        begin_s = 1754499999.5;
        duration_s = 0.001953125;
      };
    Events.Metric_sample { name = "engine/ticks"; value = 160.; family = None };
    Events.Metric_sample
      { name = "engine/runs"; value = 1.; family = Some "counter" };
    Events.Hist_sample
      {
        name = "admission/decision_s.rota";
        count = 42;
        sum = 0.001953125;
        min_v = 6.103515625e-05;
        max_v = 0.000244140625;
        p50 = 0.0001220703125;
        p95 = 0.000244140625;
        p99 = 0.000244140625;
      };
  ]

let test_jsonl_roundtrip () =
  List.iteri
    (fun i payload ->
      let sim = if i mod 2 = 0 then Some (i * 5) else None in
      let e =
        { Events.seq = i + 1; run = 1; sim; wall_s = 1754500000.0625; payload }
      in
      match Events.of_line ~strict:true (Events.to_line e) with
      | Ok e' ->
          Alcotest.(check bool)
            (Printf.sprintf "%s round-trips" (Events.kind payload))
            true (e = e')
      | Error msg ->
          Alcotest.failf "%s failed to parse: %s" (Events.kind payload) msg)
    all_payloads

let test_jsonl_rejects_garbage () =
  let bad s =
    match Events.of_line s with
    | Ok _ -> Alcotest.failf "accepted %S" s
    | Error _ -> ()
  in
  bad "";
  bad "not json";
  bad "{\"seq\":1}";
  (* An unknown kind is only an error in strict mode. *)
  (match
     Events.of_line ~strict:true
       "{\"seq\":1,\"run\":0,\"sim\":null,\"wall_s\":0.0,\"kind\":\"martian\"}"
   with
  | Ok _ -> Alcotest.fail "strict mode accepted an unknown kind"
  | Error _ -> ())

let test_unknown_kind_forward_compat () =
  (* A trace written by a newer binary parses leniently to Unknown and
     re-serializes with its payload fields intact. *)
  let line =
    "{\"seq\":7,\"run\":2,\"sim\":9,\"wall_s\":1.5,\"kind\":\"martian\",\
     \"temp\":3,\"tag\":\"x\"}"
  in
  match Events.of_line line with
  | Error msg -> Alcotest.failf "lenient parse failed: %s" msg
  | Ok e -> (
      (match e.Events.payload with
      | Events.Unknown { kind = "martian"; fields } ->
          Alcotest.(check int) "payload fields preserved" 2 (List.length fields)
      | _ -> Alcotest.fail "expected Unknown payload");
      Alcotest.(check int) "envelope seq" 7 e.Events.seq;
      Alcotest.(check (option int)) "envelope sim" (Some 9) e.Events.sim;
      (* Round-trip: the re-serialized line parses back to the same event. *)
      match Events.of_line (Events.to_line e) with
      | Ok e' -> Alcotest.(check bool) "unknown round-trips" true (e = e')
      | Error msg -> Alcotest.failf "re-parse failed: %s" msg)

let test_legacy_span_defaults () =
  (* Span lines written before the linkage fields existed still parse,
     with id 0, no parent, and begin inferred from the emission time. *)
  let line =
    "{\"seq\":1,\"run\":1,\"sim\":null,\"wall_s\":10.5,\"kind\":\"span\",\
     \"name\":\"engine/run\",\"depth\":0,\"duration_s\":0.5}"
  in
  match Events.of_line ~strict:true line with
  | Error msg -> Alcotest.failf "legacy span failed to parse: %s" msg
  | Ok e -> (
      match e.Events.payload with
      | Events.Span { id = 0; parent = None; begin_s; duration_s = 0.5; _ } ->
          Alcotest.(check (float 1e-9)) "begin inferred" 10.0 begin_s
      | _ -> Alcotest.fail "expected a legacy span with defaults")

let test_jsonl_file_sink () =
  with_tracer @@ fun () ->
  let path = Filename.temp_file "rota-obs-test" ".jsonl" in
  Fun.protect ~finally:(fun () -> Sys.remove path) @@ fun () ->
  Tracer.install (Sink.jsonl_file path);
  ignore (Tracer.new_run ~sim:0 "test run");
  Tracer.emit ~sim:2 (Events.Admitted { id = "a"; policy = "rota"; reason = "ok" });
  Tracer.emit ~sim:5 (Events.Completed { id = "a" });
  Tracer.uninstall ();
  let ic = open_in path in
  let lines = ref [] in
  (try
     while true do
       lines := input_line ic :: !lines
     done
   with End_of_file -> close_in ic);
  let events =
    List.rev_map
      (fun line ->
        match Events.of_line line with
        | Ok e -> e
        | Error msg -> Alcotest.failf "bad line %S: %s" line msg)
      !lines
  in
  Alcotest.(check int) "three lines" 3 (List.length events);
  (match List.map (fun e -> Events.kind e.Events.payload) events with
  | [ "run-started"; "admitted"; "completed" ] -> ()
  | ks -> Alcotest.failf "unexpected kinds: %s" (String.concat "," ks));
  let sims = List.filter_map (fun e -> e.Events.sim) events in
  Alcotest.(check (list int)) "sim times" [ 0; 2; 5 ] sims

(* --- Engine event stream (E6-style smoke) ----------------------------------- *)

let iv a b = Interval.of_pair a b
let l1 = Location.make "l1"
let cpu1 = Located_type.cpu l1
let a1 = Actor_name.make "a1"

let job ~id ~start ~deadline =
  Computation.make ~id ~start ~deadline
    [ Program.make ~name:a1 ~home:l1 [ Action.evaluate 1; Action.ready ] ]

let smoke_trace =
  lazy
    (Trace.of_events
       ((0, Trace.Join (Resource_set.of_terms [ Term.v 1 (iv 0 40) cpu1 ]))
       :: List.map
            (fun (j : Computation.t) -> (j.Computation.start, Trace.Arrive j))
            [
              job ~id:"c1" ~start:0 ~deadline:12;
              job ~id:"c2" ~start:0 ~deadline:12;
              job ~id:"c3" ~start:14 ~deadline:30;
            ]))

let test_engine_stream_ordered () =
  (* An E6-style smoke run: several policies over one workload, all
     through one installed sink.  Within each engine run the simulated
     timestamps must be nondecreasing, and the stream must agree with
     the engine's own report. *)
  with_tracer @@ fun () ->
  let sink, captured = Sink.memory () in
  Tracer.install sink;
  let reports =
    List.map
      (fun policy -> Engine.run ~policy (Lazy.force smoke_trace))
      [ Admission.Rota; Admission.Optimistic; Admission.Aggregate ]
  in
  let events = captured () in
  Alcotest.(check bool) "stream is non-empty" true (events <> []);
  (* Every run announces itself, once per policy. *)
  let starts =
    List.filter
      (fun e ->
        match e.Events.payload with Events.Run_started _ -> true | _ -> false)
      events
  in
  Alcotest.(check int) "one run-started per policy" 3 (List.length starts);
  (* Simulated time is nondecreasing within each run (spans are emitted
     at exit and carry no ordering promise; everything else does). *)
  let by_run = Hashtbl.create 4 in
  List.iter
    (fun e ->
      match (e.Events.payload, e.Events.sim) with
      | Events.Span _, _ | _, None -> ()
      | _, Some t ->
          let prev = Option.value ~default:0 (Hashtbl.find_opt by_run e.Events.run) in
          if t < prev then
            Alcotest.failf "run %d: sim time went backwards (%d after %d)"
              e.Events.run t prev;
          Hashtbl.replace by_run e.Events.run t)
    events;
  (* The stream agrees with the reports, in aggregate. *)
  let count p = List.length (List.filter p events) in
  let total f = List.fold_left (fun acc r -> acc + f r) 0 reports in
  Alcotest.(check int) "admitted events match reports"
    (total (fun r -> r.Engine.admitted))
    (count (fun e ->
         match e.Events.payload with Events.Admitted _ -> true | _ -> false));
  Alcotest.(check int) "rejected events match reports"
    (total (fun r -> r.Engine.rejected))
    (count (fun e ->
         match e.Events.payload with Events.Rejected _ -> true | _ -> false));
  (* Conservation: every admitted computation either completes or is
     killed at its deadline. *)
  Alcotest.(check int) "completions + kills = admissions"
    (total (fun r -> r.Engine.admitted))
    (count (fun e ->
         match e.Events.payload with
         | Events.Completed _ | Events.Killed _ -> true
         | _ -> false))

let test_engine_metrics_counters () =
  with_tracer @@ fun () ->
  with_metrics @@ fun () ->
  let report = Engine.run ~policy:Admission.Rota (Lazy.force smoke_trace) in
  let c name = Metrics.counter_value (Metrics.counter name) in
  Alcotest.(check int) "engine/runs" 1 (c "engine/runs");
  Alcotest.(check int) "engine/completions" report.Engine.completed_on_time
    (c "engine/completions");
  Alcotest.(check int) "admission admit counter" report.Engine.admitted
    (c "admission/admitted.rota");
  Alcotest.(check int) "admission reject counter" report.Engine.rejected
    (c "admission/rejected.rota");
  Alcotest.(check bool) "solver was exercised" true
    (c "accommodation/schedule_concurrent" > 0)

(* --- Metrics report -------------------------------------------------------- *)

let test_metrics_report_sections () =
  with_metrics @@ fun () ->
  Metrics.incr (Metrics.counter "test/report-counter");
  Metrics.observe (Metrics.histogram "test/report_s") 0.002;
  Metrics.observe
    (Metrics.histogram ~buckets:[| 1.; 10.; 100. |] "test/report-size")
    5.;
  let titles =
    List.map fst (Rota_experiments.Metrics_report.tables (Metrics.snapshot ()))
  in
  List.iter
    (fun t ->
      Alcotest.(check bool) (t ^ " section present") true (List.mem t titles))
    [ "counters"; "latency histograms (us)"; "value histograms" ]

(* --- SLO burn-rate windows -------------------------------------------------- *)

module Slo = Rota_obs.Slo

(* The burn rate is (bad fraction in the trailing window) / budget:
   burning at exactly 1.0 means the error budget is being consumed
   precisely as fast as it accrues. *)
let test_slo_burn_arithmetic () =
  let s = Slo.create ~budget:0.1 () in
  Alcotest.(check (float 1e-9)) "empty window burns nothing" 0.
    (Slo.burn s ~now:1000. ~window_s:300);
  for _ = 1 to 9 do
    Slo.record s ~now:1000.2 ~good:true
  done;
  Slo.record s ~now:1000.7 ~good:false;
  Alcotest.(check (float 1e-9)) "1 bad in 10 at 10% budget = burn 1.0" 1.0
    (Slo.burn s ~now:1000.9 ~window_s:300);
  Alcotest.(check (float 1e-9)) "half the bad fraction, half the burn" 0.5
    (let s = Slo.create ~budget:0.1 () in
     for _ = 1 to 19 do
       Slo.record s ~now:50.0 ~good:true
     done;
     Slo.record s ~now:50.5 ~good:false;
     Slo.burn s ~now:51. ~window_s:60)

(* Multi-window semantics: a burst leaves the short window as time
   passes but stays visible in the long one — the basis for paging on
   (burn_5m high AND burn_1h high) style alerts. *)
let test_slo_windows_slide () =
  let s = Slo.create ~budget:0.5 () in
  Slo.record s ~now:100.0 ~good:false;
  Slo.record s ~now:100.0 ~good:true;
  Alcotest.(check (float 1e-9)) "burst visible in the 10s window" 1.0
    (Slo.burn s ~now:105. ~window_s:10);
  Alcotest.(check (float 1e-9)) "burst aged out of a 3s window" 0.
    (Slo.burn s ~now:105. ~window_s:3);
  Alcotest.(check (float 1e-9)) "still visible one hour-window wide" 1.0
    (Slo.burn s ~now:105. ~window_s:3600);
  (* Sub-second timestamps share the floor second's bucket. *)
  let g, b = Slo.totals s ~now:100.9 ~window_s:1 in
  Alcotest.(check (pair int int)) "one-second bucket holds both" (1, 1) (g, b)

(* Circular-slot aliasing: an observation landing a whole horizon later
   reuses the same slot; the stale counts must not leak into the new
   second's totals. *)
let test_slo_slot_reuse () =
  let s = Slo.create ~budget:0.01 ~horizon_s:60 () in
  Slo.record s ~now:10. ~good:false;
  Alcotest.(check (float 1e-9)) "bad burst burns" 100.
    (Slo.burn s ~now:10. ~window_s:5);
  (* 60 seconds later the same slot is written: old tallies reset. *)
  Slo.record s ~now:70. ~good:true;
  Alcotest.(check (float 1e-9)) "aliased slot was reset" 0.
    (Slo.burn s ~now:70. ~window_s:5);
  let g, b = Slo.totals s ~now:70. ~window_s:60 in
  Alcotest.(check (pair int int)) "horizon-wide totals see only the fresh second"
    (1, 0) (g, b);
  (* Windows are clamped to the horizon. *)
  let g', b' = Slo.totals s ~now:70. ~window_s:10_000 in
  Alcotest.(check (pair int int)) "oversized window clamps" (g, b) (g', b')

(* --------------------------------------------------------------------------- *)

let () =
  Alcotest.run "obs"
    [
      ( "slo",
        [
          Alcotest.test_case "burn arithmetic" `Quick test_slo_burn_arithmetic;
          Alcotest.test_case "windows slide" `Quick test_slo_windows_slide;
          Alcotest.test_case "slot reuse resets" `Quick test_slo_slot_reuse;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "counter semantics" `Quick test_counter_semantics;
          Alcotest.test_case "gauge semantics" `Quick test_gauge_semantics;
          Alcotest.test_case "histogram basics" `Quick test_histogram_basic;
          Alcotest.test_case "quantiles at bucket boundaries" `Quick
            test_histogram_quantile_boundaries;
          Alcotest.test_case "overflow and clamping" `Quick
            test_histogram_overflow_and_clamp;
          Alcotest.test_case "bucket validation" `Quick test_histogram_validation;
          Alcotest.test_case "bucket mismatch on re-registration" `Quick
            test_histogram_bucket_mismatch;
          Alcotest.test_case "time records duration" `Quick
            test_time_records_duration;
        ] );
      ( "tracing",
        [
          Alcotest.test_case "span nesting" `Quick test_span_nesting;
          Alcotest.test_case "no sink, no cost" `Quick test_span_without_sink;
        ] );
      ( "jsonl",
        [
          Alcotest.test_case "every kind round-trips" `Quick test_jsonl_roundtrip;
          Alcotest.test_case "garbage rejected" `Quick test_jsonl_rejects_garbage;
          Alcotest.test_case "unknown kinds forward-compatible" `Quick
            test_unknown_kind_forward_compat;
          Alcotest.test_case "legacy span defaults" `Quick
            test_legacy_span_defaults;
          Alcotest.test_case "file sink round-trip" `Quick test_jsonl_file_sink;
        ] );
      ( "engine stream",
        [
          Alcotest.test_case "E6 smoke: ordered events" `Quick
            test_engine_stream_ordered;
          Alcotest.test_case "engine + admission counters" `Quick
            test_engine_metrics_counters;
        ] );
      ( "report",
        [
          Alcotest.test_case "table sections" `Quick test_metrics_report_sections;
        ] );
    ]
