(* Integration smoke tests: every experiment of the suite runs to
   completion (their tables go to the captured test log), and the engine's
   event observer reports a consistent story. *)

open Rota_interval
open Rota_resource
open Rota_actor
open Rota_scheduler
open Rota_sim

let test_experiment id () =
  match Rota_experiments.Experiments.run ~seed:123 id with
  | Ok () -> ()
  | Error e -> Alcotest.failf "experiment %s failed: %s" id e

let test_unknown_experiment () =
  match Rota_experiments.Experiments.run "e99" with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "unknown id accepted"

let test_descriptions () =
  List.iter
    (fun id ->
      match Rota_experiments.Experiments.description id with
      | Some d -> Alcotest.(check bool) (id ^ " described") true (String.length d > 0)
      | None -> Alcotest.failf "no description for %s" id)
    Rota_experiments.Experiments.all_ids;
  Alcotest.(check int) "eleven experiments" 11
    (List.length Rota_experiments.Experiments.all_ids)

(* --- Engine observer -------------------------------------------------------- *)

let test_engine_observer () =
  let l1 = Location.make "l1" in
  let cpu1 = Located_type.cpu l1 in
  let job ~id ~deadline =
    Computation.make ~id ~start:0 ~deadline
      [ Program.make ~name:(Actor_name.make (id ^ ".a")) ~home:l1
          [ Action.evaluate 1; Action.ready ] ]
  in
  let trace =
    Trace.of_events
      [
        (0, Trace.Join (Resource_set.of_terms [ Term.v 1 (Interval.of_pair 0 20) cpu1 ]));
        (0, Trace.Arrive (job ~id:"fits" ~deadline:12));
        (0, Trace.Arrive (job ~id:"nope" ~deadline:12));
      ]
  in
  let events = ref [] in
  let r =
    Engine.run ~observer:(fun e -> events := e :: !events)
      ~policy:Admission.Rota trace
  in
  let events = List.rev !events in
  Alcotest.(check int) "report matches story" 1 r.Engine.completed_on_time;
  let count pred = List.length (List.filter pred events) in
  Alcotest.(check int) "one join" 1
    (count (function Engine.Capacity_joined _ -> true | _ -> false));
  Alcotest.(check int) "one admit" 1
    (count (function Engine.Admitted _ -> true | _ -> false));
  Alcotest.(check int) "one reject" 1
    (count (function Engine.Rejected _ -> true | _ -> false));
  Alcotest.(check int) "one completion" 1
    (count (function Engine.Completed _ -> true | _ -> false));
  Alcotest.(check int) "no kills" 0
    (count (function Engine.Killed _ -> true | _ -> false));
  (* Events are in simulated-time order and printable. *)
  let times =
    List.map
      (function
        | Engine.Capacity_joined { at; _ }
        | Engine.Admitted { at; _ }
        | Engine.Rejected { at; _ }
        | Engine.Completed { at; _ }
        | Engine.Killed { at; _ } ->
            at)
      events
  in
  Alcotest.(check (list int)) "time ordered" (List.sort compare times) times;
  List.iter
    (fun e ->
      Alcotest.(check bool) "printable" true
        (String.length (Format.asprintf "%a" Engine.pp_event e) > 0))
    events

let test_engine_observer_kill () =
  let l1 = Location.make "l1" in
  let cpu1 = Located_type.cpu l1 in
  let job =
    Computation.make ~id:"doomed" ~start:0 ~deadline:5
      [ Program.make ~name:(Actor_name.make "a") ~home:l1 [ Action.evaluate 3 ] ]
  in
  let trace =
    Trace.of_events
      [
        (0, Trace.Join (Resource_set.of_terms [ Term.v 1 (Interval.of_pair 0 10) cpu1 ]));
        (0, Trace.Arrive job);
      ]
  in
  let kills = ref [] in
  let _ =
    Engine.run
      ~observer:(function
        | Engine.Killed { at; owed; _ } -> kills := (at, owed) :: !kills
        | _ -> ())
      ~policy:Admission.Optimistic trace
  in
  match !kills with
  | [ (at, owed) ] ->
      (* 24 cpu demanded, 5 consumed by the deadline: 19 owed. *)
      Alcotest.(check int) "killed at the deadline" 5 at;
      Alcotest.(check int) "owed" 19 owed
  | other -> Alcotest.failf "expected one kill, got %d" (List.length other)

let () =
  Alcotest.run "rota_experiments"
    [
      ( "experiments",
        List.map
          (fun id -> Alcotest.test_case id `Slow (test_experiment id))
          Rota_experiments.Experiments.all_ids
        @ [
            Alcotest.test_case "unknown id" `Quick test_unknown_experiment;
            Alcotest.test_case "descriptions" `Quick test_descriptions;
          ] );
      ( "observer",
        [
          Alcotest.test_case "event story" `Quick test_engine_observer;
          Alcotest.test_case "kill event" `Quick test_engine_observer_kill;
        ] );
    ]
