(* Tests for the live telemetry plane: OpenMetrics rendering and
   linting, the trace-sampled histogram snapshots (hist-sample), the
   runtime sampler, and the [rota top] dashboard fold. *)

module Metrics = Rota_obs.Metrics
module Events = Rota_obs.Events
module Tracer = Rota_obs.Tracer
module Sink = Rota_obs.Sink
module Openmetrics = Rota_obs.Openmetrics
module Summary = Rota_obs.Summary
module Top = Rota_obs.Top
module Runtime_sampler = Rota_obs.Runtime_sampler

(* Metrics and the tracer are process-global; every test starts from a
   clean slate and leaves recording off. *)
let with_metrics f =
  Metrics.reset ();
  Metrics.set_enabled true;
  Fun.protect f ~finally:(fun () ->
      Metrics.set_enabled false;
      Metrics.reset ())

let with_tracer f =
  Tracer.reset ();
  Fun.protect f ~finally:Tracer.reset

let event ?sim ?(seq = 1) ?(run = 1) payload =
  { Events.seq; run; sim; wall_s = 1754500000.0625; payload }

let count_true hay needle =
  let n = String.length needle in
  let found = ref false in
  for i = 0 to String.length hay - n do
    if String.sub hay i n = needle then found := true
  done;
  !found

let check_lints what text =
  match Openmetrics.lint text with
  | Ok () -> ()
  | Error msg -> Alcotest.failf "%s failed lint: %s\n%s" what msg text

(* --- OpenMetrics rendering ------------------------------------------------- *)

(* The full rendering contract in one golden string: name sanitisation
   (['/'] and spaces to ['_'], leading digits prefixed), the trailing
   [.slug] to a label with value escaping, counter [_total] suffixes,
   and cumulative histogram buckets ending in +Inf == _count.  Values
   are dyadic so the float formatting is exact. *)
let test_render_golden () =
  with_metrics @@ fun () ->
  Metrics.add (Metrics.counter "engine/runs") 3;
  Metrics.incr (Metrics.counter "test/esc.a\"b\\c");
  Metrics.set (Metrics.gauge "9queue depth") 7;
  let h = Metrics.histogram ~buckets:[| 0.25; 2. |] "test/decide_s.rota" in
  List.iter (Metrics.observe h) [ 0.125; 0.5; 4.0 ];
  let expected =
    "# TYPE engine_runs counter\n"
    ^ "engine_runs_total 3\n"
    ^ "# TYPE test_esc counter\n"
    ^ "test_esc_total{slug=\"a\\\"b\\\\c\"} 1\n"
    ^ "# TYPE _9queue_depth gauge\n"
    ^ "_9queue_depth 7\n"
    ^ "# TYPE test_decide_s histogram\n"
    ^ "test_decide_s_bucket{slug=\"rota\",le=\"0.25\"} 1\n"
    ^ "test_decide_s_bucket{slug=\"rota\",le=\"2\"} 2\n"
    ^ "test_decide_s_bucket{slug=\"rota\",le=\"+Inf\"} 3\n"
    ^ "test_decide_s_sum{slug=\"rota\"} 4.625\n"
    ^ "test_decide_s_count{slug=\"rota\"} 3\n"
    ^ "# EOF\n"
  in
  let out = Openmetrics.render (Metrics.snapshot ()) in
  Alcotest.(check string) "golden render" expected out;
  check_lints "golden" out

let test_render_empty_registry () =
  (* A literal empty view: the process registry keeps registrations
     alive across tests, so an in-registry check would be order
     dependent. *)
  let out =
    Openmetrics.render { Metrics.counters = []; gauges = []; histograms = [] }
  in
  Alcotest.(check string) "empty registry" "# EOF\n" out;
  check_lints "empty" out

let test_render_slug_family_sharing () =
  (* Per-policy series share one family: two slugs, one # TYPE. *)
  with_metrics @@ fun () ->
  Metrics.incr (Metrics.counter "admission/admitted.rota");
  Metrics.add (Metrics.counter "admission/admitted.optimistic") 2;
  let out = Openmetrics.render (Metrics.snapshot ()) in
  let count_substr needle hay =
    let n = String.length needle in
    let found = ref 0 in
    for i = 0 to String.length hay - n do
      if String.sub hay i n = needle then incr found
    done;
    !found
  in
  Alcotest.(check int) "one family declaration" 1
    (count_substr "# TYPE admission_admitted counter" out);
  Alcotest.(check int) "two slug samples" 2
    (count_substr "admission_admitted_total{slug=" out);
  check_lints "slug sharing" out

let test_render_type_collision_renames () =
  (* A counter and a gauge collapsing onto one family name: the later
     family is renamed so no family is declared twice, and the result
     still lints. *)
  with_metrics @@ fun () ->
  Metrics.incr (Metrics.counter "test/clash");
  Metrics.set (Metrics.gauge "test/clash") 4;
  let out = Openmetrics.render (Metrics.snapshot ()) in
  Alcotest.(check bool) "renamed gauge family present" true
    (count_true out "# TYPE test_clash_gauge gauge");
  check_lints "type collision" out

(* --- lint rejects what scrapers reject ------------------------------------- *)

let test_lint_rejections () =
  let bad what text =
    match Openmetrics.lint text with
    | Ok () -> Alcotest.failf "lint accepted %s:\n%s" what text
    | Error _ -> ()
  in
  bad "missing EOF" "# TYPE a counter\na_total 1\n";
  bad "content after EOF" "# EOF\na 1\n";
  bad "blank line" "\n# EOF\n";
  bad "invalid name" "2bad 1\n# EOF\n";
  bad "family declared twice" "# TYPE a counter\n# TYPE a counter\n# EOF\n";
  bad "unterminated labels" "a{x=\"y\" 1\n# EOF\n";
  bad "missing value" "a\n# EOF\n";
  bad "decreasing buckets"
    ("# TYPE h histogram\n" ^ "h_bucket{le=\"1\"} 5\n"
   ^ "h_bucket{le=\"2\"} 3\n" ^ "h_bucket{le=\"+Inf\"} 5\n" ^ "h_sum 1\n"
   ^ "h_count 5\n" ^ "# EOF\n");
  bad "+Inf bucket missing"
    ("# TYPE h histogram\n" ^ "h_bucket{le=\"1\"} 5\n" ^ "h_sum 1\n"
   ^ "h_count 5\n" ^ "# EOF\n");
  bad "+Inf <> count"
    ("# TYPE h histogram\n" ^ "h_bucket{le=\"1\"} 2\n"
   ^ "h_bucket{le=\"+Inf\"} 4\n" ^ "h_sum 1\n" ^ "h_count 5\n" ^ "# EOF\n")

(* QCheck: whatever ends up in the registry, the render lints.  Names
   draw from a pool that exercises slug splitting, sanitisation, and
   family collisions; values are arbitrary. *)
let name_pool =
  [
    "a";
    "9starts/with digit";
    "test/clash";
    "test/clash.rota";
    "test/clash.opt\"imistic";
    "weird name.with\\slug";
    "x_s.rota";
    "x_s";
    "...";
  ]

let prop_render_always_lints =
  let gen =
    QCheck.(
      small_list
        (triple (int_range 0 (List.length name_pool - 1)) (int_range 0 2)
           (float_range 0. 10.)))
  in
  QCheck.Test.make ~name:"every registry snapshot renders lint-clean" ~count:200
    gen (fun ops ->
      with_metrics @@ fun () ->
      List.iter
        (fun (name_i, kind, v) ->
          let name = List.nth name_pool name_i in
          match kind with
          | 0 -> Metrics.add (Metrics.counter name) (int_of_float v)
          | 1 -> Metrics.set (Metrics.gauge name) (int_of_float v)
          | _ -> Metrics.observe (Metrics.histogram name) v)
        ops;
      match Openmetrics.lint (Openmetrics.render (Metrics.snapshot ())) with
      | Ok () -> true
      | Error msg -> QCheck.Test.fail_reportf "lint: %s" msg)

(* --- trace reconstruction -------------------------------------------------- *)

let test_render_events () =
  let events =
    [
      event ~seq:1
        (Events.Metric_sample
           { name = "engine/ticks"; value = 100.; family = Some "counter" });
      (* Later sample wins. *)
      event ~seq:2
        (Events.Metric_sample
           { name = "engine/ticks"; value = 160.; family = Some "counter" });
      (* Untagged (old trace) renders as a gauge. *)
      event ~seq:3
        (Events.Metric_sample
           { name = "legacy/level"; value = 5.; family = None });
      event ~seq:4
        (Events.Hist_sample
           {
             name = "test/decide_s.rota";
             count = 8;
             sum = 0.5;
             min_v = 0.015625;
             max_v = 0.25;
             p50 = 0.03125;
             p95 = 0.125;
             p99 = 0.25;
           });
    ]
  in
  let out = Openmetrics.render_events events in
  let has needle = count_true out needle in
  Alcotest.(check bool) "counter typed from family tag" true
    (has "# TYPE engine_ticks counter" && has "engine_ticks_total 160");
  Alcotest.(check bool) "untagged sample is a gauge" true
    (has "# TYPE legacy_level gauge" && has "legacy_level 5");
  (* No bucket bounds in the trace: histograms come back as summaries. *)
  Alcotest.(check bool) "hist-sample renders as summary" true
    (has "# TYPE test_decide_s summary"
    && has "test_decide_s{slug=\"rota\",quantile=\"0.5\"} 0.03125"
    && has "test_decide_s_count{slug=\"rota\"} 8");
  check_lints "render_events" out

(* --- sampling plumbing ----------------------------------------------------- *)

let test_sampler_emits_hist_samples () =
  with_tracer @@ fun () ->
  with_metrics @@ fun () ->
  let sink, captured = Sink.memory () in
  Tracer.install sink;
  Metrics.add (Metrics.counter "test/c") 2;
  Metrics.set (Metrics.gauge "test/g") 9;
  let h = Metrics.histogram ~buckets:[| 1.; 2. |] "test/h_s" in
  Metrics.observe h 0.5;
  Metrics.observe h 1.5;
  (* An empty histogram must not produce a hist-sample. *)
  ignore (Metrics.histogram ~buckets:[| 1. |] "test/empty_s");
  Tracer.sample_metrics ~sim:42 ();
  let events = captured () in
  let find p = List.filter_map (fun e -> p e.Events.payload) events in
  (match
     find (function
       | Events.Metric_sample { name = "test/c"; value; family } ->
           Some (value, family)
       | _ -> None)
   with
  | [ (2., Some "counter") ] -> ()
  | _ -> Alcotest.fail "counter sample missing or mistagged");
  (match
     find (function
       | Events.Metric_sample { name = "test/g"; value; family } ->
           Some (value, family)
       | _ -> None)
   with
  | [ (9., Some "gauge") ] -> ()
  | _ -> Alcotest.fail "gauge sample missing or mistagged");
  (match
     find (function
       | Events.Hist_sample { name = "test/h_s"; count; sum; p50; _ } ->
           Some (count, sum, p50)
       | _ -> None)
   with
  | [ (2, 2.0, p50) ] ->
      Alcotest.(check bool) "p50 within observed range" true
        (p50 >= 0.5 && p50 <= 1.5)
  | _ -> Alcotest.fail "hist-sample missing or wrong");
  Alcotest.(check int) "empty histogram skipped" 0
    (List.length
       (find (function
         | Events.Hist_sample { name = "test/empty_s"; _ } -> Some ()
         | _ -> None)));
  (* Every sampled event carries the sim stamp. *)
  List.iter
    (fun e ->
      match e.Events.payload with
      | Events.Metric_sample _ | Events.Hist_sample _ ->
          Alcotest.(check (option int)) "sim stamp" (Some 42) e.Events.sim
      | _ -> ())
    events

let test_summary_hist_series () =
  let hist ~seq ~sim ~count ~p95 =
    event ~seq ~sim
      (Events.Hist_sample
         {
           name = "test/h_s";
           count;
           sum = float_of_int count;
           min_v = 0.5;
           max_v = 2.;
           p50 = 1.;
           p95;
           p99 = 2.;
         })
  in
  let s =
    Summary.of_events
      [
        event ~seq:1 ~sim:0 (Events.Run_started { label = "engine policy=rota" });
        hist ~seq:2 ~sim:10 ~count:3 ~p95:1.5;
        hist ~seq:3 ~sim:20 ~count:7 ~p95:1.75;
      ]
  in
  match s.Summary.hist_series with
  | [ { Summary.hist_name = "test/h_s"; points = [ p1; p2 ] } ] ->
      Alcotest.(check (option int)) "first sim" (Some 10) p1.Summary.hp_sim;
      Alcotest.(check int) "first count" 3 p1.Summary.hp_count;
      Alcotest.(check (float 0.)) "first p95" 1.5 p1.Summary.hp_p95;
      Alcotest.(check int) "second count" 7 p2.Summary.hp_count;
      Alcotest.(check (float 0.)) "second p95" 1.75 p2.Summary.hp_p95
  | hs ->
      Alcotest.failf "expected one series with two points, got %d series"
        (List.length hs)

let test_metric_sample_backward_compat () =
  (* A metric-sample line written before the family tag existed: parses
     with [family = None] and re-serializes byte-identically. *)
  let old_line =
    "{\"seq\":3,\"run\":1,\"sim\":40,\"wall_s\":1.5,\"kind\":\"metric-sample\",\
     \"name\":\"engine/ticks\",\"value\":160.0}"
  in
  (match Events.of_line ~strict:true old_line with
  | Error msg -> Alcotest.failf "old line failed to parse: %s" msg
  | Ok e -> (
      (match e.Events.payload with
      | Events.Metric_sample { name = "engine/ticks"; value = 160.; family } ->
          Alcotest.(check (option string)) "family defaults to None" None family
      | _ -> Alcotest.fail "expected a metric-sample payload");
      Alcotest.(check string) "old line reserializes byte-identically" old_line
        (Events.to_line e)));
  (* And a new untagged event never invents a family field. *)
  let line =
    Events.to_line
      (event
         (Events.Metric_sample
            { name = "engine/ticks"; value = 160.; family = None }))
  in
  let contains hay needle = count_true hay needle in
  Alcotest.(check bool) "no family field when untagged" false
    (contains line "family")

(* --- runtime sampler ------------------------------------------------------- *)

let test_runtime_sampler_series () =
  with_metrics @@ fun () ->
  Runtime_sampler.reset ();
  Runtime_sampler.update ~sim:0 ();
  (* Allocate enough to move the minor-words counter. *)
  let junk = ref [] in
  for i = 0 to 50_000 do
    junk := (i, float_of_int i) :: !junk
  done;
  ignore (Sys.opaque_identity !junk);
  Runtime_sampler.update ~sim:100 ();
  let c name = Metrics.counter_value (Metrics.counter name) in
  let g name = Metrics.gauge_value (Metrics.gauge name) in
  Alcotest.(check bool) "minor words counted" true
    (c "runtime/minor_words" > 0);
  Alcotest.(check bool) "heap gauge set" true (g "runtime/heap_words" > 0);
  Alcotest.(check bool) "drift gauge nonnegative" true
    (g "runtime/wall_us_per_tick" >= 0)

let test_runtime_sampler_disabled_is_silent () =
  Metrics.reset ();
  Metrics.set_enabled false;
  Runtime_sampler.reset ();
  Runtime_sampler.update ~sim:0 ();
  Runtime_sampler.update ~sim:10 ();
  Metrics.set_enabled true;
  Fun.protect
    ~finally:(fun () ->
      Metrics.set_enabled false;
      Metrics.reset ())
    (fun () ->
      Alcotest.(check int) "no words recorded while disabled" 0
        (Metrics.counter_value (Metrics.counter "runtime/minor_words")))

(* --- snapshot sink --------------------------------------------------------- *)

let test_snapshot_sink_writes_periodically () =
  with_metrics @@ fun () ->
  Metrics.add (Metrics.counter "test/snap") 1;
  let path = Filename.temp_file "rota-om-test" ".prom" in
  Fun.protect ~finally:(fun () -> if Sys.file_exists path then Sys.remove path)
  @@ fun () ->
  Sys.remove path;
  let sink = Openmetrics.snapshot_sink ~every:2 path in
  let e = event (Events.Completed { id = "c1" }) in
  sink.Sink.emit e;
  Alcotest.(check bool) "below threshold, no write yet" false
    (Sys.file_exists path);
  sink.Sink.emit e;
  Alcotest.(check bool) "written after every-th event" true
    (Sys.file_exists path);
  Metrics.add (Metrics.counter "test/snap") 9;
  sink.Sink.close ();
  let ic = open_in path in
  let len = in_channel_length ic in
  let contents = really_input_string ic len in
  close_in ic;
  Alcotest.(check bool) "close refreshes the snapshot" true
    (count_true contents "test_snap_total 10");
  check_lints "snapshot file" contents

(* --- rota top -------------------------------------------------------------- *)

let test_top_frame () =
  let t = Top.create ~source:"e11.jsonl" () in
  let feed seq sim payload = Top.step t (event ~seq ~sim payload) in
  feed 1 0 (Events.Run_started { label = "engine policy=rota horizon=160" });
  feed 2 1 (Events.Admitted { id = "c1"; policy = "rota"; reason = "ok" });
  feed 3 1 (Events.Admitted { id = "c2"; policy = "rota"; reason = "ok" });
  feed 4 2
    (Events.Rejected { id = "c3"; policy = "rota"; reason = "no schedule" });
  feed 5 8 (Events.Completed { id = "c1" });
  feed 6 12 (Events.Killed { id = "c2"; owed = 3 });
  feed 7 20
    (Events.Metric_sample
       { name = "audit/verified"; value = 11.; family = Some "counter" });
  feed 8 20
    (Events.Metric_sample
       { name = "audit/lag"; value = 2.; family = Some "gauge" });
  feed 9 20
    (Events.Hist_sample
       {
         name = "admission/decision_s.rota";
         count = 3;
         sum = 0.000732421875;
         min_v = 6.103515625e-05;
         max_v = 0.00048828125;
         p50 = 0.0001220703125;
         p95 = 0.00048828125;
         p99 = 0.00048828125;
       });
  feed 10 30
    (Events.Audit_divergence
       { id = "c9"; action = "admit"; of_seq = 4; message = "certificate lies" });
  let frame = Top.render ~width:72 ~following:false t in
  let has needle =
    Alcotest.(check bool) (needle ^ " in frame") true (count_true frame needle)
  in
  has "e11.jsonl";
  has "once";
  has "engine policy=rota horizon=160";
  has "admitted 2";
  has "rejected 1";
  has "completed 1";
  has "killed 1";
  has "divergent 1";
  has "verified 11";
  has "lag 2";
  has "admission/decision_s.rota";
  has "audit/lag";
  (* Identical events, identical frame — the --once/live equivalence the
     module promises. *)
  Alcotest.(check string) "render is pure" frame
    (Top.render ~width:72 ~following:false t)

(* --------------------------------------------------------------------------- *)

let () =
  Alcotest.run "telemetry"
    [
      ( "openmetrics",
        [
          Alcotest.test_case "golden render" `Quick test_render_golden;
          Alcotest.test_case "empty registry" `Quick test_render_empty_registry;
          Alcotest.test_case "slugs share a family" `Quick
            test_render_slug_family_sharing;
          Alcotest.test_case "type collisions rename" `Quick
            test_render_type_collision_renames;
          Alcotest.test_case "lint rejections" `Quick test_lint_rejections;
          QCheck_alcotest.to_alcotest prop_render_always_lints;
        ] );
      ( "trace reconstruction",
        [
          Alcotest.test_case "render_events" `Quick test_render_events;
          Alcotest.test_case "sampler emits hist-samples" `Quick
            test_sampler_emits_hist_samples;
          Alcotest.test_case "summary hist series" `Quick
            test_summary_hist_series;
          Alcotest.test_case "metric-sample backward compat" `Quick
            test_metric_sample_backward_compat;
        ] );
      ( "runtime sampler",
        [
          Alcotest.test_case "gc series" `Quick test_runtime_sampler_series;
          Alcotest.test_case "disabled is silent" `Quick
            test_runtime_sampler_disabled_is_silent;
        ] );
      ( "export",
        [
          Alcotest.test_case "snapshot sink" `Quick
            test_snapshot_sink_writes_periodically;
        ] );
      ( "top",
        [ Alcotest.test_case "dashboard frame" `Quick test_top_frame ] );
    ]
