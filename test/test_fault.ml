(* Robustness tests: fault injection, the commitment-repair ladder, and
   the failure paths hardened in this area — Calendar.revoke, Pool's
   assimilate error propagation, and the crash-safe file sink. *)

open Rota_interval
open Rota_resource
open Rota_actor
open Rota_scheduler
open Rota_sim
open Rota_obs
module Scenario = Rota_workload.Scenario

let () = Calendar.set_self_check true

let iv a b = Interval.of_pair a b
let l1 = Location.make "l1"
let l2 = Location.make "l2"
let cpu1 = Located_type.cpu l1
let cpu2 = Located_type.cpu l2
let net12 = Located_type.network ~src:l1 ~dst:l2
let a1 = Actor_name.make "a1"
let rset = Resource_set.of_terms

let entry ~id ~window ~rate =
  let reservation = rset [ Term.v rate window cpu1 ] in
  { Calendar.computation = id; window; reservation; schedules = [] }

let cpu_step ?(at = cpu1) q = [ Requirement.amount at q ]

let victim ~id ~window quantities =
  {
    Repair.computation = id;
    window;
    parts = [ (a1, List.map (fun q -> cpu_step q) quantities) ];
  }

(* --- resource algebra under revocation --------------------------------- *)

let test_sub_clamped () =
  let p = rset [ Term.v 3 (iv 0 10) cpu1 ] in
  let q = rset [ Term.v 2 (iv 5 15) cpu1 ] in
  let d = Resource_set.diff_clamped p q in
  Alcotest.(check int) "untouched prefix" 3
    (Profile.rate_at (Resource_set.find cpu1 d) 0);
  Alcotest.(check int) "overlap clamps" 1
    (Profile.rate_at (Resource_set.find cpu1 d) 7);
  Alcotest.(check int) "past the end" 0
    (Profile.rate_at (Resource_set.find cpu1 d) 12);
  (* Over-revocation clamps at zero instead of going negative. *)
  let d = Resource_set.diff_clamped p (rset [ Term.v 5 (iv 0 10) cpu1 ]) in
  Alcotest.(check int) "clamped at zero" 0 (Resource_set.total d)

let test_meet () =
  let p = rset [ Term.v 3 (iv 0 10) cpu1 ] in
  let q = rset [ Term.v 2 (iv 5 20) cpu1; Term.v 9 (iv 0 20) cpu2 ] in
  let m = Resource_set.meet p q in
  Alcotest.(check int) "pointwise min" 2
    (Profile.rate_at (Resource_set.find cpu1 m) 7);
  Alcotest.(check int) "outside both" 0
    (Profile.rate_at (Resource_set.find cpu1 m) 2);
  (* meet never exceeds the left operand's domain. *)
  Alcotest.(check int) "absent type" 0
    (Profile.total (Resource_set.find cpu2 m))

(* --- Calendar.revoke ---------------------------------------------------- *)

let test_revoke_empty_calendar () =
  (* Revoking from an empty calendar (no capacity, no entries) is a
     no-op, not a crash. *)
  let c = Calendar.create Resource_set.empty in
  let c, evicted = Calendar.revoke c (rset [ Term.v 2 (iv 0 10) cpu1 ]) in
  Alcotest.(check int) "no evictions" 0 (List.length evicted);
  Alcotest.(check bool) "capacity still empty" true
    (Resource_set.is_empty (Calendar.capacity c))

let test_revoke_keeps_unaffected () =
  let c = Calendar.create (rset [ Term.v 4 (iv 0 20) cpu1 ]) in
  let c = Result.get_ok (Calendar.commit c (entry ~id:"keep" ~window:(iv 0 10) ~rate:1)) in
  let c = Result.get_ok (Calendar.commit c (entry ~id:"lose" ~window:(iv 0 10) ~rate:2)) in
  (* Losing rate 3 leaves 1: only "keep" still fits. *)
  let c, evicted = Calendar.revoke c (rset [ Term.v 3 (iv 0 20) cpu1 ]) in
  Alcotest.(check (list string)) "evicted" [ "lose" ]
    (List.map (fun (e : Calendar.entry) -> e.Calendar.computation) evicted);
  (match Calendar.find c ~computation:"keep" with
  | Some e ->
      (* Non-interference: the survivor's reservation is untouched. *)
      Alcotest.(check bool) "reservation unchanged" true
        (Resource_set.equal e.Calendar.reservation
           (rset [ Term.v 1 (iv 0 10) cpu1 ]))
  | None -> Alcotest.fail "keep must survive");
  Alcotest.(check int) "capacity shrank" 20
    (Resource_set.total (Calendar.capacity c))

(* --- the repair ladder, rung by rung ------------------------------------ *)

let controller terms = Admission.create Admission.Rota (rset terms)

let test_rung1_reaccommodate () =
  let ctrl = controller [ Term.v 2 (iv 0 20) cpu1 ] in
  match Repair.attempt ctrl ~now:5 (victim ~id:"v" ~window:(iv 0 20) [ 10 ]) with
  | Repair.Repaired r ->
      Alcotest.(check string) "rung" "reaccommodate" (Repair.rung_name r.Repair.rung);
      (* The rescue is committed under the same id. *)
      Alcotest.(check bool) "committed" true
        (Option.is_some
           (Calendar.find (Admission.calendar r.Repair.controller) ~computation:"v"))
  | o -> Alcotest.failf "expected Repaired, got %a" Repair.pp_outcome o

let test_rung2_migrate () =
  (* Not enough cpu@l1 left to finish, but enough to pack; plenty at l2
     and a link to get there. *)
  let ctrl =
    controller
      [
        Term.v 1 (iv 0 10) cpu1;
        Term.v 2 (iv 0 30) cpu2;
        Term.v 1 (iv 0 30) net12;
      ]
  in
  match Repair.attempt ctrl ~now:0 (victim ~id:"v" ~window:(iv 0 30) [ 20 ]) with
  | Repair.Repaired r -> (
      match r.Repair.rung with
      | Repair.Migrate site ->
          Alcotest.(check string) "to l2" "l2" (Location.name site);
          (* The committed steps start with the migration legs. *)
          let _, steps = List.hd r.Repair.parts in
          Alcotest.(check int) "legs prepended" 4 (List.length steps)
      | Repair.Reaccommodate -> Alcotest.fail "expected a migration")
  | o -> Alcotest.failf "expected Repaired, got %a" Repair.pp_outcome o

let test_rung3_backoff_retry () =
  (* Nothing left anywhere: the ladder schedules a capped-exponential
     retry rather than giving up while the deadline is far. *)
  let ctrl = controller [] in
  (match Repair.attempt ctrl ~now:5 (victim ~id:"v" ~window:(iv 0 100) [ 10 ]) with
  | Repair.Retry { at; attempt } ->
      Alcotest.(check int) "first delay" 6 at;
      Alcotest.(check int) "attempt" 1 attempt
  | o -> Alcotest.failf "expected Retry, got %a" Repair.pp_outcome o);
  (match Repair.attempt ~attempt:2 ctrl ~now:10 (victim ~id:"v" ~window:(iv 0 100) [ 10 ]) with
  | Repair.Retry { at; attempt } ->
      Alcotest.(check int) "doubled delay" 14 at;
      Alcotest.(check int) "attempt" 3 attempt
  | o -> Alcotest.failf "expected Retry, got %a" Repair.pp_outcome o);
  let b = Repair.default_backoff in
  Alcotest.(check (list int)) "delays are capped-exponential" [ 1; 2; 4; 8; 8 ]
    (List.map (fun attempt -> Repair.delay b ~attempt) [ 0; 1; 2; 3; 4 ])

let test_rung4_preempt () =
  let ctrl = controller [] in
  (* Attempts exhausted. *)
  (match
     Repair.attempt ~attempt:3 ctrl ~now:5 (victim ~id:"v" ~window:(iv 0 100) [ 10 ])
   with
  | Repair.Preempted _ -> ()
  | o -> Alcotest.failf "expected Preempted, got %a" Repair.pp_outcome o);
  (* Deadline already passed. *)
  (match Repair.attempt ctrl ~now:30 (victim ~id:"v" ~window:(iv 0 20) [ 10 ]) with
  | Repair.Preempted _ -> ()
  | o -> Alcotest.failf "expected Preempted, got %a" Repair.pp_outcome o);
  (* No retry window left before the deadline. *)
  match Repair.attempt ctrl ~now:19 (victim ~id:"v" ~window:(iv 0 20) [ 1 ]) with
  | Repair.Preempted _ -> ()
  | o -> Alcotest.failf "expected Preempted, got %a" Repair.pp_outcome o

(* --- the engine's fault path -------------------------------------------- *)

let params ~seed =
  { Scenario.default_params with seed; horizon = 120; arrivals = 10; locations = 2 }

let test_empty_plan_is_identity () =
  let p = params ~seed:7 in
  let trace = Scenario.trace p in
  let plain = Engine.run ~policy:Admission.Rota trace in
  let with_empty = Engine.run ~faults:[] ~policy:Admission.Rota trace in
  Alcotest.(check bool) "same outcomes" true
    (plain.Engine.outcomes = with_empty.Engine.outcomes);
  Alcotest.(check int) "no fault stats" 0 with_empty.Engine.faults.Engine.injected;
  Alcotest.(check bool) "stats are the zero record" true
    (with_empty.Engine.faults = Engine.no_faults)

let test_duplicate_revocation_is_noop () =
  (* Revoke everything at l1, twice: the duplicate must clip to nothing
     rather than double-subtract (or drive availability negative). *)
  let p = params ~seed:11 in
  let trace = Scenario.trace p in
  let slice = rset [ Term.v p.Scenario.cpu_rate (iv 30 120) cpu1 ] in
  let once = [ { Fault.at = 30; kind = Fault.Revoke slice } ] in
  let twice =
    [
      { Fault.at = 30; kind = Fault.Revoke slice };
      { Fault.at = 31; kind = Fault.Revoke slice };
    ]
  in
  let r1 = Engine.run ~faults:once ~policy:Admission.Rota trace in
  let r2 = Engine.run ~faults:twice ~policy:Admission.Rota trace in
  Alcotest.(check int) "same quantity lost" r1.Engine.faults.Engine.revoked_quantity
    r2.Engine.faults.Engine.revoked_quantity;
  Alcotest.(check bool) "same outcomes" true
    (r1.Engine.outcomes = r2.Engine.outcomes)

let test_slowdown_degrades () =
  let p = params ~seed:13 in
  let trace = Scenario.trace p in
  (* Slow every computation down; at least one must be running at t=40. *)
  let faults =
    List.init 10 (fun i ->
        {
          Fault.at = 40;
          kind = Fault.Slowdown { computation = Printf.sprintf "c%03d" i; factor = 2 };
        })
  in
  let r = Engine.run ~faults ~policy:Admission.Rota trace in
  Alcotest.(check bool) "someone degraded" true (r.Engine.faults.Engine.degraded > 0);
  Alcotest.(check bool) "degraded outcomes are flagged" true
    (List.exists (fun (o : Engine.outcome) -> o.Engine.faulted) r.Engine.outcomes)

let test_repair_beats_no_repair () =
  let p = params ~seed:17 in
  let trace = Scenario.trace p in
  let misses ~repair ~fault_seed =
    let faults = Scenario.fault_plan ~fault_seed ~intensity:1.5 p in
    (Engine.run ~faults ~repair ~policy:Admission.Rota trace).Engine.missed_deadlines
  in
  let total repair =
    List.fold_left (fun acc fault_seed -> acc + misses ~repair ~fault_seed) 0
      [ 0; 1; 2; 3; 4 ]
  in
  let with_repair = total true and without = total false in
  Alcotest.(check bool)
    (Printf.sprintf "repair (%d misses) <= no-repair (%d)" with_repair without)
    true
    (with_repair <= without && without > 0)

(* QCheck: Theorem 4's non-interference discipline under fault storms —
   an admitted computation no fault ever touched runs exactly as
   committed, so it never misses its deadline, whatever the repair
   ladder does for the victims around it. *)
let prop_non_interference =
  QCheck.Test.make ~count:40
    ~name:"fault storm: unaffected admitted computations never miss"
    QCheck.(pair (int_bound 1000) (int_bound 100))
    (fun (seed, fault_seed) ->
      let p = params ~seed in
      let trace = Scenario.trace p in
      let faults = Scenario.fault_plan ~fault_seed ~intensity:1.5 p in
      let r = Engine.run ~faults ~policy:Admission.Rota trace in
      r.Engine.anomalies = []
      && List.for_all
           (fun (o : Engine.outcome) ->
             (not o.Engine.admitted) || o.Engine.faulted || Engine.on_time o)
           r.Engine.outcomes)

(* --- Pool: assimilate id conflict propagates (was: assert false) -------- *)

let job ~id =
  Computation.make ~id ~start:0 ~deadline:40
    [ Program.make ~name:a1 ~home:l1 [ Action.evaluate 1 ] ]

let test_pool_assimilate_conflict () =
  let capacity = rset [ Term.v 8 (iv 0 60) cpu1 ] in
  let tree = Pool.root ~name:"root" capacity in
  let tree =
    Result.get_ok
      (Pool.subdivide tree ~parent:"root" ~name:"child"
         ~slice:(rset [ Term.v 2 (iv 0 60) cpu1 ]))
  in
  (* The same computation id admitted in both pools. *)
  let admit tree pool =
    match Pool.admit tree ~pool ~now:0 (job ~id:"dup") with
    | Ok (tree, outcome) ->
        Alcotest.(check bool) (pool ^ " admits") true outcome.Admission.admitted;
        tree
    | Error e -> Alcotest.fail e
  in
  let tree = admit (admit tree "root") "child" in
  (match Pool.assimilate tree ~child:"child" with
  | Error e ->
      Alcotest.(check bool) "error names the conflict" true
        (String.length e > 0
        && Option.is_some (String.index_opt e 'd')) (* mentions "dup" *)
  | Ok _ -> Alcotest.fail "conflicting assimilate must fail");
  (* The failed assimilate left the tree unchanged. *)
  Alcotest.(check (list string)) "tree unchanged" [ "root"; "child" ]
    (Pool.names tree)

(* --- crash-safe file sink ----------------------------------------------- *)

exception Boom

let test_sink_survives_raising_observer () =
  let path = Filename.temp_file "rota_fault_sink" ".jsonl" in
  (* A large buffer, so nothing reaches disk until a flush — the crash
     path must not lose the tail. *)
  Tracer.install (Sink.jsonl_file ~flush_every:10_000 path);
  let p = params ~seed:23 in
  let trace = Scenario.trace p in
  let observer = function
    | Engine.Admitted _ -> raise Boom
    | _ -> ()
  in
  (match Engine.run ~observer ~policy:Admission.Rota trace with
  | exception Boom -> ()
  | _ -> Alcotest.fail "observer must raise out of the run");
  (* The process unwinds without a clean shutdown; uninstall stands in
     for the sink's at_exit hook (same close function, same idempotence
     guard).  Everything emitted before the crash must parse cleanly. *)
  Tracer.uninstall ();
  Tracer.uninstall ();
  let ic = open_in path in
  let lines = ref 0 in
  (try
     while true do
       let line = input_line ic in
       (match Events.of_line ~strict:true line with
       | Ok _ -> ()
       | Error e -> Alcotest.failf "torn line after crash: %s" e);
       incr lines
     done
   with End_of_file -> ());
  close_in ic;
  Sys.remove path;
  Alcotest.(check bool) "events reached disk" true (!lines > 0)

let () =
  Alcotest.run "fault"
    [
      ( "algebra",
        [
          Alcotest.test_case "sub_clamped" `Quick test_sub_clamped;
          Alcotest.test_case "meet" `Quick test_meet;
        ] );
      ( "revoke",
        [
          Alcotest.test_case "empty calendar" `Quick test_revoke_empty_calendar;
          Alcotest.test_case "keeps unaffected entries" `Quick
            test_revoke_keeps_unaffected;
        ] );
      ( "ladder",
        [
          Alcotest.test_case "rung 1: reaccommodate" `Quick test_rung1_reaccommodate;
          Alcotest.test_case "rung 2: migrate" `Quick test_rung2_migrate;
          Alcotest.test_case "rung 3: backoff retry" `Quick test_rung3_backoff_retry;
          Alcotest.test_case "rung 4: preempt" `Quick test_rung4_preempt;
        ] );
      ( "engine",
        [
          Alcotest.test_case "empty plan is identity" `Quick
            test_empty_plan_is_identity;
          Alcotest.test_case "duplicate revocation is a no-op" `Quick
            test_duplicate_revocation_is_noop;
          Alcotest.test_case "slowdown degrades and flags" `Quick
            test_slowdown_degrades;
          Alcotest.test_case "repair beats no-repair" `Quick
            test_repair_beats_no_repair;
          QCheck_alcotest.to_alcotest prop_non_interference;
        ] );
      ( "hardening",
        [
          Alcotest.test_case "pool assimilate conflict" `Quick
            test_pool_assimilate_conflict;
          Alcotest.test_case "sink survives raising observer" `Quick
            test_sink_survives_raising_observer;
        ] );
    ]
