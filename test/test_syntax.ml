(* Tests for the scenario language: lexer, parser, semantics, and the
   print/parse round-trip. *)

open Rota_interval
open Rota_resource
open Rota_actor
open Rota_syntax

let example =
  {|
# three nodes and a link
resource cpu@l1 rate 2 from 0 to 30
resource cpu@l2 rate 1 from 0 to 30
resource memory@l1 rate 8 from 0 to 30
resource gpu@l2 rate 1 from 0 to 20
resource network l1 -> l2 rate 1 from 0 to 30
resource cpu@l3 rate 2 from 5 to 25 join 5   # a volunteer

computation job1 start 0 deadline 30
  actor a1 at l1
    evaluate 2
    send a2 size 1
    ready
  actor a2 at l2
    evaluate 1
    migrate l1
    create helper

computation job2 start 4 deadline 12
  actor solo at l2
    evaluate 1
|}

(* --- Lexer ----------------------------------------------------------------- *)

let test_lexer_tokens () =
  match Lexer.tokenize "resource cpu@l1 rate -2 from 0 to 30 # hi\nnext" with
  | Error e -> Alcotest.failf "lex error: %s" (Format.asprintf "%a" Lexer.pp_error e)
  | Ok tokens ->
      let show =
        List.map
          (fun t -> Format.asprintf "%a" Lexer.pp_token t.Lexer.token)
          tokens
      in
      Alcotest.(check (list string)) "tokens"
        [ "resource"; "cpu"; "@"; "l1"; "rate"; "-2"; "from"; "0"; "to"; "30";
          "<newline>"; "next"; "<newline>" ]
        show;
      (* Line numbers. *)
      let lines = List.map (fun (t : Lexer.located) -> t.Lexer.line) tokens in
      Alcotest.(check (list int)) "lines"
        [ 1; 1; 1; 1; 1; 1; 1; 1; 1; 1; 1; 2; 2 ]
        lines

let test_lexer_arrow_and_blank () =
  match Lexer.tokenize "a -> b\n\n\n  # only a comment\nc" with
  | Error _ -> Alcotest.fail "should lex"
  | Ok tokens ->
      let show =
        List.map (fun t -> Format.asprintf "%a" Lexer.pp_token t.Lexer.token) tokens
      in
      Alcotest.(check (list string)) "blank lines vanish"
        [ "a"; "->"; "b"; "<newline>"; "c"; "<newline>" ]
        show

let test_lexer_error () =
  match Lexer.tokenize "ok\n\twhat?!" with
  | Error e ->
      Alcotest.(check int) "error line" 2 e.Lexer.line
  | Ok _ -> Alcotest.fail "expected lex error on '?!'"

(* --- Parser ------------------------------------------------------------------ *)

let test_parse_example () =
  match Document.parse example with
  | Error e -> Alcotest.failf "parse failed: %s" e
  | Ok doc ->
      Alcotest.(check int) "resources" 6 (List.length doc.Document.resources);
      Alcotest.(check int) "computations" 2
        (List.length doc.Document.computations);
      (* The volunteer joins at 5. *)
      let volunteer = List.nth doc.Document.resources 5 in
      Alcotest.(check int) "join at" 5 volunteer.Document.join_at;
      (* Capacity aggregates all terms. *)
      let cap = Document.capacity doc in
      let cpu1 = Located_type.cpu (Location.make "l1") in
      Alcotest.(check int) "cpu@l1 quantity" 60
        (Resource_set.integrate cap cpu1 (Interval.of_pair 0 30));
      let gpu = Located_type.custom "gpu" (Location.make "l2") in
      Alcotest.(check bool) "custom kind parsed" true (Resource_set.mem gpu cap);
      (* Programs parsed in order with their actions. *)
      let job1 = List.hd doc.Document.computations in
      Alcotest.(check string) "id" "job1" job1.Computation.id;
      (match job1.Computation.programs with
      | [ p1; p2 ] ->
          Alcotest.(check int) "a1 actions" 3 (Program.length p1);
          Alcotest.(check int) "a2 actions" 3 (Program.length p2);
          (match p2.Program.actions with
          | [ _; Action.Migrate { dest }; Action.Create _ ] ->
              Alcotest.(check string) "migrate target" "l1" (Location.name dest)
          | _ -> Alcotest.fail "a2 actions shape")
      | _ -> Alcotest.fail "two actors");
      (* Trace: 6 joins + 2 arrivals, arrivals at start times. *)
      let trace = Document.to_trace doc in
      Alcotest.(check int) "trace events" 8 (Rota_sim.Trace.length trace);
      match Rota_sim.Trace.arrivals trace with
      | [ (0, _); (4, _) ] -> ()
      | _ -> Alcotest.fail "arrival times"

let check_parse_error input fragment =
  match Document.parse input with
  | Ok _ -> Alcotest.failf "expected a parse error mentioning %S" fragment
  | Error e ->
      let contains s sub =
        let n = String.length s and m = String.length sub in
        let rec scan i = i + m <= n && (String.sub s i m = sub || scan (i + 1)) in
        m = 0 || scan 0
      in
      if not (contains e fragment) then
        Alcotest.failf "error %S does not mention %S" e fragment

let test_parse_errors () =
  check_parse_error "nonsense here\n" "resource";
  check_parse_error "resource cpu@l1 rate 0 from 0 to 5\n" "rate must be positive";
  check_parse_error "resource cpu@l1 rate 1 from 5 to 5\n" "empty interval";
  check_parse_error "resource cpu l1 rate 1 from 0 to 5\n" "@";
  check_parse_error "resource network l1 l2 rate 1 from 0 to 5\n" "->";
  check_parse_error "computation c start 5 deadline 5\n" "deadline";
  check_parse_error
    "computation c start 0 deadline 5\n  actor a at l1\n    explode 3\n"
    "resource";
  (* duplicate actor names *)
  check_parse_error
    "computation c start 0 deadline 9\n  actor a at l1\n  actor a at l2\n"
    "duplicate";
  (* error line numbers are reported *)
  match Document.parse "resource cpu@l1 rate 1 from 0 to 5\nresource cpu@l1 rate 0 from 0 to 5\n" with
  | Error e ->
      Alcotest.(check bool) "mentions line 2" true
        (String.length e >= 6 && String.sub e 0 6 = "line 2")
  | Ok _ -> Alcotest.fail "expected error"

let test_roundtrip_example () =
  let doc = Result.get_ok (Document.parse example) in
  let printed = Document.print doc in
  match Document.parse printed with
  | Error e -> Alcotest.failf "reparse failed: %s" e
  | Ok doc2 ->
      Alcotest.(check int) "same resources"
        (List.length doc.Document.resources)
        (List.length doc2.Document.resources);
      List.iter2
        (fun (a : Document.resource) (b : Document.resource) ->
          Alcotest.(check bool) "term equal" true (Term.equal a.Document.term b.Document.term);
          Alcotest.(check int) "join equal" a.Document.join_at b.Document.join_at)
        doc.Document.resources doc2.Document.resources;
      List.iter2
        (fun a b ->
          Alcotest.(check bool) "computation equal" true (Computation.equal a b))
        doc.Document.computations doc2.Document.computations

let session_example =
  {|
resource cpu@l1 rate 1 from 0 to 40
resource cpu@l2 rate 1 from 0 to 40
resource network l1 -> l2 rate 2 from 0 to 40
resource network l2 -> l1 rate 2 from 0 to 40

session rpc start 0 deadline 40
  actor client at l1
    evaluate 1
    send server size 1
    await server
    ready
  actor server at l2
    await client
    evaluate 1
    send client size 1
|}

let test_parse_session () =
  match Document.parse session_example with
  | Error e -> Alcotest.failf "parse failed: %s" e
  | Ok doc ->
      Alcotest.(check int) "one session" 1 (List.length doc.Document.sessions);
      let s = List.hd doc.Document.sessions in
      Alcotest.(check string) "id" "rpc" s.Rota.Session.id;
      Alcotest.(check int) "deadline" 40 s.Rota.Session.deadline;
      (match s.Rota.Session.participants with
      | [ client; server ] ->
          Alcotest.(check int) "client events" 4
            (List.length client.Rota.Session.events);
          (match List.nth server.Rota.Session.events 0 with
          | Rota.Session.Await who ->
              Alcotest.(check string) "server awaits client" "client"
                (Actor_name.name who)
          | Rota.Session.Act _ -> Alcotest.fail "first server event is an await")
      | _ -> Alcotest.fail "two participants");
      (* The trace carries the session arrival. *)
      let trace = Document.to_trace doc in
      Alcotest.(check int) "session arrival" 1
        (List.length (Rota_sim.Trace.sessions trace));
      (* Round-trip. *)
      let printed = Document.print doc in
      (match Document.parse printed with
      | Ok doc2 ->
          Alcotest.(check int) "session survives roundtrip" 1
            (List.length doc2.Document.sessions);
          let s2 = List.hd doc2.Document.sessions in
          Alcotest.(check int) "participants preserved"
            (List.length s.Rota.Session.participants)
            (List.length s2.Rota.Session.participants)
      | Error e -> Alcotest.failf "reparse failed: %s" e);
      (* And the session is actually runnable end to end. *)
      let report =
        Rota_sim.Engine.run ~policy:Rota_scheduler.Admission.Rota trace
      in
      Alcotest.(check int) "admitted and on time" 1
        report.Rota_sim.Engine.completed_on_time

let test_parse_session_errors () =
  (* An await in a plain computation block is rejected. *)
  check_parse_error
    "computation c start 0 deadline 9\n  actor a at l1\n    await b\n"
    "resource";
  (* Session-level validation errors surface with the session's line. *)
  check_parse_error
    "session s start 0 deadline 9\n  actor a at l1\n    await b\n"
    "unknown participant"

(* Random documents round-trip: generate computations with the workload
   generators and resources with the scenario capacity. *)
let prop_roundtrip =
  QCheck.Test.make ~name:"print/parse roundtrip" ~count:100
    QCheck.(int_range 0 10_000)
    (fun seed ->
      let params =
        { Rota_workload.Scenario.default_params with seed; arrivals = 4; horizon = 60 }
      in
      let resources =
        Resource_set.to_terms (Rota_workload.Scenario.capacity_of params)
        |> List.map (fun term -> { Document.term; join_at = 0 })
      in
      let computations = Rota_workload.Scenario.computations params in
      let doc = { Document.resources; computations; sessions = []; faults = [] } in
      match Document.parse (Document.print doc) with
      | Error _ -> false
      | Ok doc2 ->
          List.length doc2.Document.resources = List.length resources
          && List.for_all2 Computation.equal computations
               doc2.Document.computations)

(* Printing is idempotent: print (parse (print d)) = print d. *)
let prop_print_idempotent =
  QCheck.Test.make ~name:"printer idempotent" ~count:60
    QCheck.(int_range 0 10_000)
    (fun seed ->
      let params =
        { Rota_workload.Scenario.default_params with seed; arrivals = 3; horizon = 50 }
      in
      let resources =
        Resource_set.to_terms (Rota_workload.Scenario.capacity_of params)
        |> List.map (fun term -> { Document.term; join_at = 0 })
      in
      let doc =
        { Document.resources;
          computations = Rota_workload.Scenario.computations params;
          sessions = [];
          faults = [] }
      in
      let once = Document.print doc in
      match Document.parse once with
      | Error _ -> false
      | Ok doc2 -> String.equal once (Document.print doc2))

let properties =
  List.map QCheck_alcotest.to_alcotest [ prop_roundtrip; prop_print_idempotent ]

let () =
  Alcotest.run "rota_syntax"
    [
      ( "lexer",
        [
          Alcotest.test_case "tokens" `Quick test_lexer_tokens;
          Alcotest.test_case "arrow/blank" `Quick test_lexer_arrow_and_blank;
          Alcotest.test_case "error" `Quick test_lexer_error;
        ] );
      ( "parser",
        [
          Alcotest.test_case "example" `Quick test_parse_example;
          Alcotest.test_case "errors" `Quick test_parse_errors;
          Alcotest.test_case "roundtrip" `Quick test_roundtrip_example;
          Alcotest.test_case "session block" `Quick test_parse_session;
          Alcotest.test_case "session errors" `Quick test_parse_session_errors;
        ] );
      ("properties", properties);
    ]
