(* Tests for the core ROTA library: State, Transition, Formula, Path,
   Semantics, Accommodation — the transition rules and the four theorems. *)

open Rota_interval
open Rota_resource
open Rota_actor
open Rota

let iv a b = Interval.of_pair a b
let l1 = Location.make "l1"
let l2 = Location.make "l2"
let cpu1 = Located_type.cpu l1
let cpu2 = Located_type.cpu l2
let net12 = Located_type.network ~src:l1 ~dst:l2
let a1 = Actor_name.make "a1"
let a2 = Actor_name.make "a2"
let amount = Requirement.amount
let rset = Resource_set.of_terms
let profile_testable = Alcotest.testable Profile.pp Profile.equal
let rset_testable = Alcotest.testable Resource_set.pp Resource_set.equal

let state_testable = Alcotest.testable State.pp State.equal

let simple amounts window = Requirement.make_simple ~amounts ~window
let complex steps window = Requirement.make_complex ~steps ~window

let concurrent parts window = Requirement.make_concurrent ~parts ~window

(* A one-actor computation whose program is a plain list of actions. *)
let computation ?(id = "c") ?(start = 0) ~deadline actions =
  Computation.make ~id ~start ~deadline
    [ Program.make ~name:a1 ~home:l1 actions ]

(* --- State ---------------------------------------------------------------- *)

let test_state_make () =
  let theta = rset [ Term.v 2 (iv 0 5) cpu1 ] in
  let s = State.make ~available:theta ~now:0 in
  Alcotest.(check bool) "idle" true (State.is_idle s);
  Alcotest.(check int) "now" 0 s.State.now;
  (* Past availability is dropped at construction. *)
  let late = State.make ~available:theta ~now:3 in
  Alcotest.(check int) "expired past" 4
    (Resource_set.integrate late.State.available cpu1 (iv 0 5))

let test_state_acquire () =
  let s = State.make ~available:Resource_set.empty ~now:2 in
  let s = State.acquire s (rset [ Term.v 3 (iv 0 6) cpu1 ]) in
  (* The joining resources are clipped to the present. *)
  Alcotest.check profile_testable "clipped join"
    (Profile.constant (iv 2 6) 3)
    (Resource_set.find cpu1 s.State.available)

let test_state_accommodate () =
  let s = State.make ~available:Resource_set.empty ~now:0 in
  let c = computation ~deadline:10 [ Action.evaluate 1; Action.ready ] in
  (match State.accommodate s Cost_model.default c with
  | Error e -> Alcotest.failf "accommodate failed: %s" e
  | Ok s' ->
      Alcotest.(check int) "one pending" 1 (List.length s'.State.pending);
      Alcotest.(check (list string)) "computations" [ "c" ]
        (State.computations s');
      (* evaluate(8 cpu) then ready(1 cpu) merge into one 9-cpu step. *)
      let p = List.hd s'.State.pending in
      Alcotest.(check int) "merged steps" 1 (List.length p.State.steps);
      (* Double accommodation is rejected. *)
      (match State.accommodate s' Cost_model.default c with
      | Error _ -> ()
      | Ok _ -> Alcotest.fail "expected duplicate-id error"));
  (* Deadline already passed. *)
  let late = State.make ~available:Resource_set.empty ~now:10 in
  match State.accommodate late Cost_model.default c with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "expected deadline-passed error"

let test_state_accommodate_no_merge () =
  let s = State.make ~available:Resource_set.empty ~now:0 in
  let c = computation ~deadline:10 [ Action.evaluate 1; Action.ready ] in
  match State.accommodate ~merge:false s Cost_model.default c with
  | Error e -> Alcotest.failf "accommodate failed: %s" e
  | Ok s' ->
      let p = List.hd s'.State.pending in
      Alcotest.(check int) "unmerged steps" 2 (List.length p.State.steps)

let test_state_leave () =
  let s = State.make ~available:Resource_set.empty ~now:0 in
  let c = computation ~start:3 ~deadline:10 [ Action.ready ] in
  let s = Result.get_ok (State.accommodate s Cost_model.default c) in
  (match State.leave s ~computation:"c" with
  | Ok s' -> Alcotest.(check bool) "left" true (State.is_idle s')
  | Error e -> Alcotest.failf "leave failed: %s" e);
  (* After the start time the computation may not leave. *)
  let s_started = State.tick (State.tick (State.tick s)) in
  (match State.leave s_started ~computation:"c" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "expected already-started error");
  match State.leave s ~computation:"nope" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "expected unknown-computation error"

let test_state_consume_primitives () =
  let s = State.make ~available:Resource_set.empty ~now:0 in
  let s =
    Result.get_ok
      (State.accommodate_parts s ~id:"c" ~window:(iv 0 10)
         [ (a1, [ [ amount cpu1 3 ]; [ amount net12 2 ] ]) ])
  in
  let s1 = State.consume_in_head s ~computation:"c" ~actor:a1 [ (cpu1, 2) ] in
  let p = List.hd s1.State.pending in
  Alcotest.(check int) "still two steps" 2 (List.length p.State.steps);
  (* Draining the head pops it. *)
  let s2 = State.consume_in_head s1 ~computation:"c" ~actor:a1 [ (cpu1, 1) ] in
  let p2 = List.hd s2.State.pending in
  Alcotest.(check int) "head popped" 1 (List.length p2.State.steps);
  (* Draining everything removes the pending. *)
  let s3 = State.consume_in_head s2 ~computation:"c" ~actor:a1 [ (net12, 5) ] in
  Alcotest.(check bool) "drained" true (State.is_idle s3);
  (* Clock advance expires past availability. *)
  let s4 =
    State.tick (State.acquire s3 (rset [ Term.v 1 (iv 0 2) cpu1 ]))
  in
  Alcotest.(check int) "tick" 1 s4.State.now;
  Alcotest.(check int) "one tick left" 1
    (Resource_set.integrate s4.State.available cpu1 (iv 0 5))

(* --- Transition ------------------------------------------------------------ *)

let busy_state () =
  let s =
    State.make ~available:(rset [ Term.v 2 (iv 0 6) cpu1; Term.v 1 (iv 0 6) net12 ]) ~now:0
  in
  Result.get_ok
    (State.accommodate_parts s ~id:"c" ~window:(iv 0 6)
       [ (a1, [ [ amount cpu1 4 ]; [ amount net12 2 ] ]) ])

let test_transition_consumable () =
  let s = busy_state () in
  (* Only cpu1 is wanted by the current (head) step. *)
  match Transition.consumable s with
  | [ (xi, [ (comp, actor) ]) ] ->
      Alcotest.(check bool) "cpu1" true (Located_type.equal xi cpu1);
      Alcotest.(check string) "comp" "c" comp;
      Alcotest.(check bool) "actor" true (Actor_name.equal actor a1)
  | other ->
      Alcotest.failf "unexpected consumable set (%d entries)"
        (List.length other)

let test_transition_labels () =
  let s = busy_state () in
  Alcotest.(check int) "two labels (expire | fuel)" 2
    (List.length (Transition.labels s));
  Alcotest.(check int) "label_count agrees" 2 (Transition.label_count s)

let test_transition_apply_sequential_rule () =
  let s = busy_state () in
  let label =
    [ { Transition.ltype = cpu1; computation = "c"; actor = a1 } ]
  in
  let s' = Transition.apply s label in
  Alcotest.(check int) "time advanced" 1 s'.State.now;
  (* Requirement decreased by rate (2) x dt. *)
  let p = List.hd s'.State.pending in
  (match p.State.steps with
  | [ head; _ ] ->
      Alcotest.(check int) "remaining cpu" 2
        (List.fold_left
           (fun acc (a : Requirement.amount) -> acc + a.Requirement.quantity)
           0 head)
  | steps -> Alcotest.failf "expected 2 remaining steps, got %d" (List.length steps));
  (* Availability slides forward: the [0,1) slice is gone. *)
  Alcotest.(check int) "cpu availability after tick" 10
    (Resource_set.integrate s'.State.available cpu1 (iv 0 6))

let test_transition_expire_rule () =
  let s = busy_state () in
  let s' = Transition.apply s [] in
  (* Nothing consumed: pendings unchanged, resources expired. *)
  let p = List.hd s'.State.pending in
  Alcotest.(check int) "untouched requirement" 4
    (List.fold_left
       (fun acc (a : Requirement.amount) -> acc + a.Requirement.quantity)
       0 (List.hd p.State.steps));
  let expired = Transition.expired_slice s [] in
  Alcotest.(check int) "expired cpu slice" 2
    (Resource_set.integrate expired cpu1 (iv 0 1));
  Alcotest.(check int) "expired net slice" 1
    (Resource_set.integrate expired net12 (iv 0 1))

let test_transition_expired_slice_partial () =
  let s = busy_state () in
  let label =
    [ { Transition.ltype = cpu1; computation = "c"; actor = a1 } ]
  in
  let expired = Transition.expired_slice s label in
  (* cpu fully consumed (rate 2 <= remaining 4): only net expires. *)
  Alcotest.(check int) "no cpu expired" 0
    (Resource_set.integrate expired cpu1 (iv 0 1));
  Alcotest.(check int) "net expired" 1
    (Resource_set.integrate expired net12 (iv 0 1))

let test_transition_clamps_overshoot () =
  (* Rate 5 against a remaining need of 1: only 1 is transferred. *)
  let s = State.make ~available:(rset [ Term.v 5 (iv 0 3) cpu1 ]) ~now:0 in
  let s =
    Result.get_ok
      (State.accommodate_parts s ~id:"c" ~window:(iv 0 3)
         [ (a1, [ [ amount cpu1 1 ]; [ amount cpu1 4 ] ]) ])
  in
  let label = [ { Transition.ltype = cpu1; computation = "c"; actor = a1 } ] in
  let s' = Transition.apply s label in
  let p = List.hd s'.State.pending in
  Alcotest.(check int) "head popped, next step intact" 4
    (List.fold_left
       (fun acc (a : Requirement.amount) -> acc + a.Requirement.quantity)
       0 (List.hd p.State.steps));
  (* The surplus 4 of that tick expired. *)
  let expired = Transition.expired_slice s label in
  Alcotest.(check int) "surplus expired" 4
    (Resource_set.integrate expired cpu1 (iv 0 1))

let test_transition_window_gates_consumption () =
  (* An actor neither consumes before its start nor after its deadline. *)
  let s = State.make ~available:(rset [ Term.v 1 (iv 0 10) cpu1 ]) ~now:0 in
  let s =
    Result.get_ok
      (State.accommodate_parts s ~id:"c" ~window:(iv 2 4)
         [ (a1, [ [ amount cpu1 9 ] ]) ])
  in
  Alcotest.(check int) "not started: nothing consumable" 0
    (List.length (Transition.consumable s));
  let s2 = Transition.apply (Transition.apply s []) [] in
  Alcotest.(check int) "started" 1 (List.length (Transition.consumable s2))

let test_transition_greedy_run () =
  let s = busy_state () in
  let final = Transition.run_greedy s ~horizon:6 in
  Alcotest.(check int) "time" 6 final.State.now;
  (* 4 cpu at rate 2 takes 2 ticks, then 2 net at rate 1 takes 2: done. *)
  Alcotest.(check bool) "drained" true (State.is_idle final)

let test_transition_duplicate_type_rejected () =
  let s = busy_state () in
  let label =
    [
      { Transition.ltype = cpu1; computation = "c"; actor = a1 };
      { Transition.ltype = cpu1; computation = "c"; actor = a1 };
    ]
  in
  Alcotest.check_raises "duplicate type"
    (Invalid_argument "Transition.apply: a resource type is assigned twice")
    (fun () -> ignore (Transition.apply s label))

(* --- Formula ---------------------------------------------------------------- *)

let test_formula_basics () =
  let atom = Formula.satisfy_simple (simple [ amount cpu1 2 ] (iv 0 5)) in
  Alcotest.(check bool) "neg collapses" true
    (Formula.equal (Formula.neg (Formula.neg atom)) atom);
  Alcotest.(check bool) "neg true" true
    (Formula.equal (Formula.neg Formula.tt) Formula.ff);
  Alcotest.(check (option int)) "horizon" (Some 5)
    (Formula.horizon (Formula.eventually (Formula.neg atom)));
  Alcotest.(check (option int)) "no atoms no horizon" None
    (Formula.horizon (Formula.always Formula.tt));
  Alcotest.(check int) "size" 3
    (Formula.size (Formula.eventually (Formula.neg atom)));
  let printed = Format.asprintf "%a" Formula.pp (Formula.always (Formula.neg atom)) in
  Alcotest.(check bool) "pp mentions box" true
    (String.length printed > 2 && String.sub printed 0 2 = "[]")

(* --- Accommodation: Theorems 1 and 2 --------------------------------------- *)

let test_thm1_single_action () =
  let theta = rset [ Term.v 2 (iv 0 5) cpu1 ] in
  Alcotest.(check bool) "fits" true
    (Accommodation.single_action theta (simple [ amount cpu1 10 ] (iv 0 5)));
  Alcotest.(check bool) "too much" false
    (Accommodation.single_action theta (simple [ amount cpu1 11 ] (iv 0 5)))

let test_thm2_order_matters () =
  (* Both resources total enough over the window, but the net capacity
     exists only before the cpu step can finish: the aggregate test passes,
     the sequential test must fail. *)
  let theta = rset [ Term.v 2 (iv 0 2) cpu1; Term.v 2 (iv 0 2) net12 ] in
  let c = complex [ [ amount cpu1 4 ]; [ amount net12 4 ] ] (iv 0 6) in
  Alcotest.(check bool) "aggregate passes" true
    (Accommodation.single_action theta (Requirement.simple_of_complex c));
  Alcotest.(check bool) "sequential fails" false
    (Accommodation.sequential_feasible theta c);
  Alcotest.(check bool) "exhaustive agrees" false
    (Accommodation.sequential_feasible_exhaustive theta c);
  (* With net early and cpu late, only the swapped order is feasible. *)
  let theta' = rset [ Term.v 2 (iv 0 2) net12; Term.v 1 (iv 2 6) cpu1 ] in
  let c_bad = complex [ [ amount cpu1 4 ]; [ amount net12 4 ] ] (iv 0 6) in
  let c_good = complex [ [ amount net12 4 ]; [ amount cpu1 4 ] ] (iv 0 6) in
  Alcotest.(check bool) "wrong order infeasible" false
    (Accommodation.sequential_feasible theta' c_bad);
  Alcotest.(check bool) "right order feasible" true
    (Accommodation.sequential_feasible theta' c_good);
  Alcotest.(check bool) "exhaustive agrees on both" true
    (Accommodation.sequential_feasible_exhaustive theta' c_good
    && not (Accommodation.sequential_feasible_exhaustive theta' c_bad))

let test_thm2_certificate () =
  let theta = rset [ Term.v 2 (iv 0 4) cpu1; Term.v 1 (iv 4 8) net12 ] in
  let c = complex [ [ amount cpu1 4 ]; [ amount net12 3 ] ] (iv 0 8) in
  match Accommodation.schedule_sequential theta c with
  | None -> Alcotest.fail "expected a schedule"
  | Some schedule ->
      (match Accommodation.check_schedule theta c schedule with
      | Ok () -> ()
      | Error e -> Alcotest.failf "certificate rejected: %s" e);
      (* cpu 4 at rate 2 finishes at t=2; the net step's subwindow then
         starts at 2 even though net capacity only exists from 4. *)
      Alcotest.(check (list int)) "breakpoints" [ 2 ]
        schedule.Accommodation.breakpoints

let test_thm2_breakpoints_greedy () =
  let theta = rset [ Term.v 2 (iv 0 4) cpu1; Term.v 1 (iv 2 8) net12 ] in
  let c = complex [ [ amount cpu1 4 ]; [ amount net12 3 ] ] (iv 0 8) in
  match Accommodation.schedule_sequential theta c with
  | None -> Alcotest.fail "expected a schedule"
  | Some schedule ->
      Alcotest.(check (list int)) "earliest breakpoint" [ 2 ]
        schedule.Accommodation.breakpoints;
      (match schedule.Accommodation.steps with
      | [ s1; s2 ] ->
          Alcotest.(check bool) "step1 window" true
            (Interval.equal s1.Accommodation.subwindow (iv 0 2));
          Alcotest.(check bool) "step2 window" true
            (Interval.equal s2.Accommodation.subwindow (iv 2 5))
      | _ -> Alcotest.fail "expected two step allocations");
      match Accommodation.check_schedule theta c schedule with
      | Ok () -> ()
      | Error e -> Alcotest.failf "certificate rejected: %s" e

let test_thm2_multi_type_step () =
  (* A migrate-like step needing three types at once. *)
  let theta =
    rset
      [ Term.v 1 (iv 0 6) cpu1; Term.v 3 (iv 2 5) net12; Term.v 1 (iv 0 6) cpu2 ]
  in
  let c =
    complex
      [ [ amount cpu1 3; amount net12 9; amount cpu2 3 ] ]
      (iv 0 6)
  in
  Alcotest.(check bool) "feasible" true (Accommodation.sequential_feasible theta c);
  let c_tight =
    complex [ [ amount cpu1 3; amount net12 10; amount cpu2 3 ] ] (iv 0 6)
  in
  Alcotest.(check bool) "net short" false
    (Accommodation.sequential_feasible theta c_tight)

let test_thm2_empty_requirement () =
  let c = complex [] (iv 0 4) in
  match Accommodation.schedule_sequential Resource_set.empty c with
  | Some schedule ->
      Alcotest.(check (list int)) "no breakpoints" []
        schedule.Accommodation.breakpoints;
      Alcotest.(check bool) "empty reservation" true
        (Resource_set.is_empty schedule.Accommodation.reservation)
  | None -> Alcotest.fail "empty requirement is trivially schedulable"

(* Greedy equals exhaustive search on random small instances. *)
let prop_thm2_greedy_exact =
  let open QCheck in
  let gen =
    Gen.(
      let* cpu_rects =
        list_size (int_range 0 3)
          (let* a = int_range 0 6 in
           let* d = int_range 1 3 in
           let* r = int_range 1 3 in
           return (iv a (a + d), r))
      in
      let* net_rects =
        list_size (int_range 0 3)
          (let* a = int_range 0 6 in
           let* d = int_range 1 3 in
           let* r = int_range 1 3 in
           return (iv a (a + d), r))
      in
      let* steps =
        list_size (int_range 1 3)
          (let* q1 = int_range 0 4 in
           let* q2 = int_range 0 4 in
           return [ amount cpu1 q1; amount net12 q2 ])
      in
      return (cpu_rects, net_rects, steps))
  in
  Test.make ~name:"thm2: greedy = exhaustive" ~count:300
    (make
       ~print:(fun (c, n, steps) ->
         Format.asprintf "cpu=%a net=%a steps=%a" Profile.pp
           (Profile.of_segments c) Profile.pp (Profile.of_segments n)
           Requirement.pp_complex
           (complex steps (iv 0 9)))
       gen)
    (fun (cpu_rects, net_rects, steps) ->
      let theta =
        Resource_set.union
          (Resource_set.of_terms
             (Profile.to_terms ~ltype:cpu1 (Profile.of_segments cpu_rects)))
          (Resource_set.of_terms
             (Profile.to_terms ~ltype:net12 (Profile.of_segments net_rects)))
      in
      let c = complex steps (iv 0 9) in
      Accommodation.sequential_feasible theta c
      = Accommodation.sequential_feasible_exhaustive theta c)

(* Every schedule the greedy procedure emits passes certificate checking. *)
let prop_thm2_certificates_check =
  let open QCheck in
  let gen =
    Gen.(
      let* rects =
        list_size (int_range 0 4)
          (let* a = int_range 0 8 in
           let* d = int_range 1 4 in
           let* r = int_range 1 4 in
           return (iv a (a + d), r))
      in
      let* steps =
        list_size (int_range 1 4) (map (fun q -> [ amount cpu1 q ]) (int_range 0 5))
      in
      return (rects, steps))
  in
  Test.make ~name:"thm2: schedules validate" ~count:300
    (make ~print:(fun _ -> "instance") gen)
    (fun (rects, steps) ->
      let theta =
        Resource_set.of_terms
          (Profile.to_terms ~ltype:cpu1 (Profile.of_segments rects))
      in
      let c = complex steps (iv 0 12) in
      match Accommodation.schedule_sequential theta c with
      | None -> true
      | Some schedule ->
          Result.is_ok (Accommodation.check_schedule theta c schedule))

(* --- Accommodation: Theorems 3 and 4 --------------------------------------- *)

let test_thm3_meets_deadline () =
  let job deadline =
    Computation.make ~id:"job" ~start:0 ~deadline
      [
        Program.make ~name:a1 ~home:l1
          [ Action.evaluate 1; Action.send ~dest:a2 ~size:1; Action.ready ];
        Program.make ~name:a2 ~home:l2 [ Action.evaluate 1 ];
      ]
  in
  (* a1 needs 9 cpu@l1 and 4 net l1->l2; a2 needs 8 cpu@l2. *)
  let theta stop =
    rset
      [
        Term.v 1 (iv 0 stop) cpu1;
        Term.v 1 (iv 0 stop) net12;
        Term.v 1 (iv 0 stop) cpu2;
      ]
  in
  (match Accommodation.meets_deadline Cost_model.default (theta 20) (job 20) with
  | None -> Alcotest.fail "should fit"
  | Some schedules ->
      Alcotest.(check int) "two actors" 2 (List.length schedules));
  (* a1 alone needs 9 cpu@l1 at unit rate: an 8-tick deadline cannot fit. *)
  match Accommodation.meets_deadline Cost_model.default (theta 8) (job 8) with
  | None -> ()
  | Some _ -> Alcotest.fail "9 cpu in 8 unit-rate ticks cannot fit"

let test_thm4_incremental_reservation () =
  (* One resource pool, two successive admissions: the second sees only the
     residual. *)
  let theta = rset [ Term.v 1 (iv 0 10) cpu1 ] in
  let part q = complex [ [ amount cpu1 q ] ] (iv 0 10) in
  let both = concurrent [ part 6; part 4 ] (iv 0 10) in
  (match Accommodation.schedule_concurrent theta both with
  | None -> Alcotest.fail "10 units in 10 unit-rate ticks fit"
  | Some schedules ->
      let reservation = Accommodation.reservation_of_schedules schedules in
      Alcotest.(check int) "all reserved" 10
        (Resource_set.integrate reservation cpu1 (iv 0 10));
      (* The two reservations are disjoint in time. *)
      (match schedules with
      | [ s1; s2 ] ->
          Alcotest.(check bool) "disjoint" true
            (Resource_set.dominates theta
               (Resource_set.union s1.Accommodation.reservation
                  s2.Accommodation.reservation))
      | _ -> Alcotest.fail "expected two schedules"));
  let too_much = concurrent [ part 6; part 5 ] (iv 0 10) in
  Alcotest.(check bool) "11 in 10 fails" false
    (Accommodation.concurrent_feasible theta too_much)

let test_thm4_order_heuristics () =
  (* A case where placing the small part first starves the big one on a
     short window, while most-work-first fits both. *)
  let theta = rset [ Term.v 1 (iv 0 4) cpu1; Term.v 1 (iv 0 8) net12 ] in
  let big =
    complex [ [ amount cpu1 4 ]; [ amount net12 4 ] ] (iv 0 8)
  in
  let small = complex [ [ amount net12 4 ] ] (iv 0 8) in
  let conc = concurrent [ small; big ] (iv 0 8) in
  (* Given order: small grabs net [0,4), big's cpu [0,4) then needs net in
     [4,8) - available.  Actually both succeed here; build a real conflict:
     small takes net early, big needs net early too after fast cpu. *)
  Alcotest.(check bool) "most-work-first fits" true
    (Option.is_some
       (Accommodation.schedule_concurrent ~order:Accommodation.Order.Most_work_first
          theta conc));
  Alcotest.(check bool) "some order fits" true
    (Accommodation.concurrent_feasible theta conc)

(* --- Semantics --------------------------------------------------------------- *)

let test_semantics_constants () =
  let s = State.make ~available:Resource_set.empty ~now:0 in
  Alcotest.(check bool) "true holds" true
    (Semantics.exists_path s Formula.tt = Semantics.Holds);
  Alcotest.(check bool) "false fails" true
    (Semantics.exists_path s Formula.ff = Semantics.Fails);
  Alcotest.(check bool) "forall true" true
    (Semantics.forall_paths s Formula.tt = Semantics.Holds)

let test_semantics_satisfy_idle () =
  (* An idle system lets everything expire: the expiring resources are all
     of Theta, so satisfiable requirements are satisfied on every path. *)
  let s = State.make ~available:(rset [ Term.v 2 (iv 0 4) cpu1 ]) ~now:0 in
  let atom = Formula.satisfy_simple (simple [ amount cpu1 6 ] (iv 0 4)) in
  Alcotest.(check bool) "exists" true (Semantics.exists_path s atom = Semantics.Holds);
  Alcotest.(check bool) "forall" true (Semantics.forall_paths s atom = Semantics.Holds);
  let too_much = Formula.satisfy_simple (simple [ amount cpu1 9 ] (iv 0 4)) in
  Alcotest.(check bool) "too much fails" true
    (Semantics.exists_path s too_much = Semantics.Fails)

let test_semantics_satisfy_contended () =
  (* With a committed computation, some paths feed it (leaving nothing to
     expire) and the all-expire path leaves everything: exists holds,
     forall fails. *)
  let s = State.make ~available:(rset [ Term.v 1 (iv 0 4) cpu1 ]) ~now:0 in
  let s =
    Result.get_ok
      (State.accommodate_parts s ~id:"busy" ~window:(iv 0 4)
         [ (a1, [ [ amount cpu1 4 ] ]) ])
  in
  let atom = Formula.satisfy_simple (simple [ amount cpu1 4 ] (iv 0 4)) in
  Alcotest.(check bool) "exists (all-expire path)" true
    (Semantics.exists_path s atom = Semantics.Holds);
  Alcotest.(check bool) "not on all paths" true
    (Semantics.forall_paths s atom = Semantics.Fails)

let test_semantics_eventually_always () =
  let s = State.make ~available:(rset [ Term.v 1 (iv 2 5) cpu1 ]) ~now:0 in
  (* At t=0 the window [0,2) has nothing; after it opens, expirations start
     to accumulate: eventually the atom over [2,5) holds. *)
  let atom = Formula.satisfy_simple (simple [ amount cpu1 3 ] (iv 2 5)) in
  Alcotest.(check bool) "eventually" true
    (Semantics.exists_path s (Formula.eventually atom) = Semantics.Holds);
  (* Always true holds; always of a time-limited atom fails (after d the
     clipped window is empty). *)
  Alcotest.(check bool) "always tt" true
    (Semantics.forall_paths s (Formula.always Formula.tt) = Semantics.Holds);
  Alcotest.(check bool) "always of dated atom fails" true
    (Semantics.exists_path s (Formula.always atom) = Semantics.Fails)

let test_semantics_duality () =
  (* []psi = !<>!psi on the bounded tree. *)
  let s = State.make ~available:(rset [ Term.v 1 (iv 0 3) cpu1 ]) ~now:0 in
  let s =
    Result.get_ok
      (State.accommodate_parts s ~id:"c" ~window:(iv 0 3)
         [ (a1, [ [ amount cpu1 2 ] ]) ])
  in
  let atom = Formula.satisfy_simple (simple [ amount cpu1 1 ] (iv 0 3)) in
  let box = Formula.always atom in
  let dual = Formula.neg (Formula.eventually (Formula.neg atom)) in
  List.iter
    (fun psi ->
      Alcotest.(check bool) "same verdict" true
        (Semantics.exists_path s psi = Semantics.exists_path s dual))
    [ box ];
  ignore dual

let test_semantics_budget () =
  (* A absurdly small budget must surface as Unknown, not a wrong answer. *)
  let s = State.make ~available:(rset [ Term.v 1 (iv 0 6) cpu1 ]) ~now:0 in
  let s =
    Result.get_ok
      (State.accommodate_parts s ~id:"c" ~window:(iv 0 6)
         [ (a1, [ [ amount cpu1 3 ] ]) ])
  in
  let atom = Formula.satisfy_simple (simple [ amount cpu1 3 ] (iv 0 6)) in
  match Semantics.exists_path ~budget:2 s atom with
  | Semantics.Unknown _ -> ()
  | v ->
      Alcotest.failf "expected Unknown, got %s"
        (Format.asprintf "%a" Semantics.pp_verdict v)

let test_completion_path () =
  let s = State.make ~available:(rset [ Term.v 1 (iv 0 10) cpu1 ]) ~now:0 in
  let s =
    Result.get_ok
      (State.accommodate_parts s ~id:"c" ~window:(iv 0 10)
         [ (a1, [ [ amount cpu1 4 ] ]) ])
  in
  (match Semantics.completion_path s ~computation:"c" with
  | Semantics.Impossible | Semantics.Budget_exhausted _ ->
      Alcotest.fail "drainable in 10 ticks"
  | Semantics.Completed path ->
      Alcotest.(check bool) "tip drained" true
        (State.pending_of (Path.tip path) ~computation:"c" = []);
      Alcotest.(check bool) "within deadline" true
        ((Path.tip path).State.now <= 10));
  (* Impossible when the deadline is too tight. *)
  let s2 = State.make ~available:(rset [ Term.v 1 (iv 0 3) cpu1 ]) ~now:0 in
  let s2 =
    Result.get_ok
      (State.accommodate_parts s2 ~id:"c" ~window:(iv 0 3)
         [ (a1, [ [ amount cpu1 4 ] ]) ])
  in
  (match Semantics.completion_path s2 ~computation:"c" with
  | Semantics.Impossible -> ()
  | Semantics.Completed _ ->
      Alcotest.fail "4 units in 3 unit ticks cannot drain"
  | Semantics.Budget_exhausted _ ->
      Alcotest.fail "tiny instance should not exhaust the default budget");
  (* A starved budget must surface as a structured outcome, not raise. *)
  let s3 = State.make ~available:(rset [ Term.v 1 (iv 0 10) cpu1 ]) ~now:0 in
  let s3 =
    Result.get_ok
      (State.accommodate_parts s3 ~id:"c" ~window:(iv 0 10)
         [ (a1, [ [ amount cpu1 4 ] ]) ])
  in
  match Semantics.completion_path ~budget:1 s3 ~computation:"c" with
  | Semantics.Budget_exhausted { budget } ->
      Alcotest.(check int) "reports the starved budget" 1 budget
  | Semantics.Completed _ | Semantics.Impossible ->
      Alcotest.fail "budget 1 cannot finish a 4-unit drain"

(* Cross-validation of Theorem 3: the profile-based scheduler and the
   transition-tree search agree on unit-rate single-actor scenarios. *)
let prop_thm3_lts_agrees =
  let open QCheck in
  let gen =
    Gen.(
      let* rects =
        list_size (int_range 1 3)
          (let* a = int_range 0 5 in
           let* d = int_range 1 4 in
           return (iv a (a + d), 1))
      in
      let* quantities = list_size (int_range 1 3) (int_range 1 3) in
      let* deadline = int_range 4 9 in
      return (rects, quantities, deadline))
  in
  Test.make ~name:"thm3: scheduler = transition tree (unit rates)" ~count:120
    (make ~print:(fun _ -> "instance") gen)
    (fun (rects, quantities, deadline) ->
      (* Unit-rate cpu profile; a single actor with one step per quantity. *)
      let profile = Profile.of_segments rects in
      (* Clamp rates to 1 by rebuilding the support at rate 1. *)
      let unit_profile =
        Rota_interval.Interval_set.fold
          (fun i acc -> Profile.add acc (Profile.constant i 1))
          (Profile.support profile) Profile.empty
      in
      let theta =
        Resource_set.of_terms (Profile.to_terms ~ltype:cpu1 unit_profile)
      in
      let window = iv 0 deadline in
      let steps = List.map (fun q -> [ amount cpu1 q ]) quantities in
      let c = complex steps window in
      let scheduler_says =
        Accommodation.sequential_feasible
          (Resource_set.restrict theta window)
          c
      in
      let s0 = State.make ~available:theta ~now:0 in
      let s0 =
        Result.get_ok
          (State.accommodate_parts s0 ~id:"c" ~window
             [ (a1, steps) ])
      in
      let lts_says =
        match Semantics.completion_path s0 ~computation:"c" with
        | Semantics.Completed _ -> true
        | Semantics.Impossible | Semantics.Budget_exhausted _ -> false
      in
      scheduler_says = lts_says)

(* Concurrent schedules: reservations fit inside the availability jointly
   (no double-booking) and each part's reservation stays in the window. *)
let prop_thm4_reservations_sound =
  let open QCheck in
  let gen =
    Gen.(
      let* rects =
        list_size (int_range 1 4)
          (let* a = int_range 0 10 in
           let* d = int_range 1 6 in
           let* r = int_range 1 3 in
           return (iv a (a + d), r))
      in
      let* parts =
        list_size (int_range 1 4)
          (list_size (int_range 1 3) (map (fun q -> [ amount cpu1 q ]) (int_range 1 4)))
      in
      return (rects, parts))
  in
  Test.make ~name:"thm4: reservations jointly covered and windowed" ~count:200
    (make ~print:(fun _ -> "instance") gen)
    (fun (rects, parts) ->
      let theta =
        Resource_set.of_terms
          (Profile.to_terms ~ltype:cpu1 (Profile.of_segments rects))
      in
      let window = iv 0 16 in
      let conc =
        concurrent (List.map (fun steps -> complex steps window) parts) window
      in
      match Accommodation.schedule_concurrent theta conc with
      | None -> true
      | Some schedules ->
          let union = Accommodation.reservation_of_schedules schedules in
          Resource_set.dominates theta union
          && List.for_all
               (fun (s : Accommodation.schedule) ->
                 Resource_set.equal
                   (Resource_set.restrict s.Accommodation.reservation window)
                   s.Accommodation.reservation)
               schedules)

let properties =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_thm2_greedy_exact;
      prop_thm2_certificates_check;
      prop_thm3_lts_agrees;
      prop_thm4_reservations_sound;
    ]

let () =
  ignore state_testable;
  ignore rset_testable;
  Alcotest.run "rota_core"
    [
      ( "state",
        [
          Alcotest.test_case "make" `Quick test_state_make;
          Alcotest.test_case "acquire rule" `Quick test_state_acquire;
          Alcotest.test_case "accommodate rule" `Quick test_state_accommodate;
          Alcotest.test_case "accommodate unmerged" `Quick
            test_state_accommodate_no_merge;
          Alcotest.test_case "leave rule" `Quick test_state_leave;
          Alcotest.test_case "consume/tick primitives" `Quick
            test_state_consume_primitives;
        ] );
      ( "transition",
        [
          Alcotest.test_case "consumable" `Quick test_transition_consumable;
          Alcotest.test_case "labels" `Quick test_transition_labels;
          Alcotest.test_case "sequential rule" `Quick
            test_transition_apply_sequential_rule;
          Alcotest.test_case "expiration rule" `Quick test_transition_expire_rule;
          Alcotest.test_case "general rule (partial expiry)" `Quick
            test_transition_expired_slice_partial;
          Alcotest.test_case "clamped overshoot" `Quick
            test_transition_clamps_overshoot;
          Alcotest.test_case "window gates consumption" `Quick
            test_transition_window_gates_consumption;
          Alcotest.test_case "greedy run" `Quick test_transition_greedy_run;
          Alcotest.test_case "duplicate type rejected" `Quick
            test_transition_duplicate_type_rejected;
        ] );
      ("formula", [ Alcotest.test_case "basics" `Quick test_formula_basics ]);
      ( "thm1_thm2",
        [
          Alcotest.test_case "thm1 single action" `Quick test_thm1_single_action;
          Alcotest.test_case "thm2 order matters" `Quick test_thm2_order_matters;
          Alcotest.test_case "thm2 certificate" `Quick test_thm2_certificate;
          Alcotest.test_case "thm2 greedy breakpoints" `Quick
            test_thm2_breakpoints_greedy;
          Alcotest.test_case "thm2 multi-type step" `Quick
            test_thm2_multi_type_step;
          Alcotest.test_case "thm2 empty requirement" `Quick
            test_thm2_empty_requirement;
        ] );
      ( "thm3_thm4",
        [
          Alcotest.test_case "thm3 meets deadline" `Quick test_thm3_meets_deadline;
          Alcotest.test_case "thm4 incremental reservation" `Quick
            test_thm4_incremental_reservation;
          Alcotest.test_case "thm4 order heuristics" `Quick
            test_thm4_order_heuristics;
        ] );
      ( "semantics",
        [
          Alcotest.test_case "constants" `Quick test_semantics_constants;
          Alcotest.test_case "satisfy on idle system" `Quick
            test_semantics_satisfy_idle;
          Alcotest.test_case "satisfy under contention" `Quick
            test_semantics_satisfy_contended;
          Alcotest.test_case "eventually/always" `Quick
            test_semantics_eventually_always;
          Alcotest.test_case "duality" `Quick test_semantics_duality;
          Alcotest.test_case "budget -> unknown" `Quick test_semantics_budget;
          Alcotest.test_case "completion path" `Quick test_completion_path;
        ] );
      ("properties", properties);
    ]
