(* Deeper cross-module tests: Path accounting, transition contention,
   semantics corner cases, engine dispatch ablations, and failure
   injection. *)

open Rota_interval
open Rota_resource
open Rota_actor
open Rota
open Rota_scheduler
open Rota_sim

let iv a b = Interval.of_pair a b
let l1 = Location.make "l1"
let l2 = Location.make "l2"
let cpu1 = Located_type.cpu l1
let cpu2 = Located_type.cpu l2
let rset = Resource_set.of_terms
let amount = Requirement.amount
let a1 = Actor_name.make "a1"
let a2 = Actor_name.make "a2"

(* --- Path ------------------------------------------------------------------ *)

let test_path_accounting () =
  let s0 = State.make ~available:(rset [ Term.v 2 (iv 0 4) cpu1 ]) ~now:0 in
  let s0 =
    Result.get_ok
      (State.accommodate_parts s0 ~id:"c" ~window:(iv 0 4)
         [ (a1, [ [ amount cpu1 4 ] ]) ])
  in
  let path = Path.init s0 in
  Alcotest.(check int) "zero steps" 0 (Path.length path);
  Alcotest.(check bool) "root = tip" true (State.equal (Path.root path) (Path.tip path));
  (* One consuming step, one expiring step. *)
  let consume = [ { Transition.ltype = cpu1; computation = "c"; actor = a1 } ] in
  let path = Path.extend path consume in
  let path = Path.extend path [] in
  Alcotest.(check int) "two steps" 2 (Path.length path);
  Alcotest.(check int) "labels recorded" 2 (List.length (Path.labels path));
  Alcotest.(check int) "three states" 3 (List.length (Path.states path));
  Alcotest.(check int) "tip time" 2 (Path.tip path).State.now;
  (* state_at finds intermediate states. *)
  (match Path.state_at path 1 with
  | Some s -> Alcotest.(check int) "state at t1" 1 s.State.now
  | None -> Alcotest.fail "state at 1 exists");
  Alcotest.(check bool) "state at 9 absent" true (Path.state_at path 9 = None);
  (* Expired accounting: tick 0 consumed fully (rate 2 into need 4), tick 1
     expired entirely (rate 2). *)
  let expired = Path.expired path in
  Alcotest.(check int) "nothing expired at t0" 0
    (Resource_set.integrate expired cpu1 (iv 0 1));
  Alcotest.(check int) "rate 2 expired at t1" 2
    (Resource_set.integrate expired cpu1 (iv 1 2));
  Alcotest.(check int) "windowed view" 2
    (Resource_set.integrate (Path.expired_within path (iv 1 4)) cpu1 (iv 0 4))

let test_path_greedy_extension () =
  let s0 = State.make ~available:(rset [ Term.v 1 (iv 0 3) cpu1 ]) ~now:0 in
  let s0 =
    Result.get_ok
      (State.accommodate_parts s0 ~id:"c" ~window:(iv 0 3)
         [ (a1, [ [ amount cpu1 3 ] ]) ])
  in
  let path = Path.extend_greedy (Path.extend_greedy (Path.extend_greedy (Path.init s0))) in
  Alcotest.(check bool) "drained by greedy" true (State.is_idle (Path.tip path));
  Alcotest.(check bool) "nothing expired" true
    (Resource_set.is_empty (Path.expired path))

(* --- Transition: contention ---------------------------------------------- *)

let test_transition_contention_labels () =
  (* Two actors want the same cpu: labels = expire | ->a1 | ->a2. *)
  let s = State.make ~available:(rset [ Term.v 1 (iv 0 6) cpu1 ]) ~now:0 in
  let s =
    Result.get_ok
      (State.accommodate_parts s ~id:"x" ~window:(iv 0 6)
         [ (a1, [ [ amount cpu1 2 ] ]); (a2, [ [ amount cpu1 2 ] ]) ])
  in
  Alcotest.(check int) "three labels" 3 (List.length (Transition.labels s));
  Alcotest.(check int) "label_count agrees" 3 (Transition.label_count s);
  (* Greedy assigns the type to exactly one of them. *)
  match Transition.greedy_label s with
  | [ assignment ] ->
      Alcotest.(check bool) "assigned to a pending actor" true
        (Actor_name.equal assignment.Transition.actor a1
        || Actor_name.equal assignment.Transition.actor a2)
  | other -> Alcotest.failf "expected 1 assignment, got %d" (List.length other)

let test_transition_greedy_edf () =
  (* Greedy prefers the earlier deadline. *)
  let s = State.make ~available:(rset [ Term.v 1 (iv 0 20) cpu1 ]) ~now:0 in
  let s =
    Result.get_ok
      (State.accommodate_parts s ~id:"late" ~window:(iv 0 20)
         [ (a1, [ [ amount cpu1 2 ] ]) ])
  in
  let s =
    Result.get_ok
      (State.accommodate_parts s ~id:"soon" ~window:(iv 0 5)
         [ (a2, [ [ amount cpu1 2 ] ]) ])
  in
  match Transition.greedy_label s with
  | [ assignment ] ->
      Alcotest.(check string) "EDF picks the tight one" "soon"
        assignment.Transition.computation
  | _ -> Alcotest.fail "one assignment expected"

let test_transition_two_types_independent () =
  (* Two types, each with one candidate: 2x2 = 4 labels. *)
  let s =
    State.make ~available:(rset [ Term.v 1 (iv 0 6) cpu1; Term.v 1 (iv 0 6) cpu2 ]) ~now:0
  in
  let s =
    Result.get_ok
      (State.accommodate_parts s ~id:"x" ~window:(iv 0 6)
         [ (a1, [ [ amount cpu1 2 ] ]); (a2, [ [ amount cpu2 2 ] ]) ])
  in
  Alcotest.(check int) "four labels" 4 (List.length (Transition.labels s));
  (* Greedy assigns both (the paper's concurrent rule). *)
  Alcotest.(check int) "greedy assigns both" 2
    (List.length (Transition.greedy_label s))

(* --- Semantics corner cases ------------------------------------------------ *)

let test_semantics_window_clipping () =
  (* Evaluating satisfy at a time inside the window uses only the
     remainder [max(s,t), d). *)
  let theta = rset [ Term.v 1 (iv 0 6) cpu1 ] in
  let s0 = State.make ~available:theta ~now:0 in
  let atom q = Formula.satisfy_simple
      (Requirement.make_simple ~amounts:[ amount cpu1 q ] ~window:(iv 0 6))
  in
  (* <> of a 6-unit demand: at t=0 the full window supplies 6, but at any
     strictly later t' only 6-t' remain, so eventually (strict future)
     fails for q=6 and holds for q<=5. *)
  Alcotest.(check bool) "eventually 5 holds" true
    (Semantics.exists_path s0 (Formula.eventually (atom 5)) = Semantics.Holds);
  Alcotest.(check bool) "eventually 6 fails" true
    (Semantics.exists_path s0 (Formula.eventually (atom 6)) = Semantics.Fails);
  (* At the evaluation time itself q=6 holds. *)
  Alcotest.(check bool) "now 6 holds" true
    (Semantics.exists_path s0 (atom 6) = Semantics.Holds)

let test_semantics_degenerate_window () =
  (* A satisfy atom whose window is entirely in the past is false. *)
  let theta = rset [ Term.v 1 (iv 0 10) cpu1 ] in
  let s = State.make ~available:theta ~now:5 in
  let past =
    Formula.satisfy_simple
      (Requirement.make_simple ~amounts:[ amount cpu1 1 ] ~window:(iv 0 4))
  in
  Alcotest.(check bool) "past atom fails" true
    (Semantics.exists_path s past = Semantics.Fails);
  (* But its negation holds everywhere. *)
  Alcotest.(check bool) "negation holds" true
    (Semantics.forall_paths s (Formula.neg past) = Semantics.Holds)

let test_completion_path_multi_actor () =
  (* Two actors, two types: the LTS must interleave both to drain. *)
  let theta = rset [ Term.v 1 (iv 0 8) cpu1; Term.v 1 (iv 0 8) cpu2 ] in
  let s = State.make ~available:theta ~now:0 in
  let s =
    Result.get_ok
      (State.accommodate_parts s ~id:"c" ~window:(iv 0 8)
         [ (a1, [ [ amount cpu1 3 ] ]); (a2, [ [ amount cpu2 3 ] ]) ])
  in
  match Semantics.completion_path s ~computation:"c" with
  | Semantics.Completed path ->
      Alcotest.(check bool) "drained" true
        (State.pending_of (Path.tip path) ~computation:"c" = [])
  | Semantics.Impossible | Semantics.Budget_exhausted _ ->
      Alcotest.fail "drainable"

(* --- Engine dispatch ablations --------------------------------------------- *)

let job ~id ~start ~deadline =
  Computation.make ~id ~start ~deadline
    [ Program.make ~name:a1 ~home:l1 [ Action.evaluate 1; Action.ready ] ]

let trace_of jobs rate stop =
  Trace.of_events
    ((0, Trace.Join (rset [ Term.v rate (iv 0 stop) cpu1 ]))
    :: List.map
         (fun (j : Computation.t) -> (j.Computation.start, Trace.Arrive j))
         jobs)

let test_engine_auto_dispatch () =
  let t = trace_of [ job ~id:"j" ~start:0 ~deadline:12 ] 1 20 in
  let rota = Engine.run ~policy:Admission.Rota t in
  Alcotest.(check bool) "rota uses reservation" true
    (rota.Engine.dispatch_used = Engine.Reservation);
  let agg = Engine.run ~policy:Admission.Aggregate t in
  Alcotest.(check bool) "aggregate uses shared" true
    (agg.Engine.dispatch_used = Engine.Shared)

let test_engine_rota_under_shared_dispatch () =
  (* Forcing shared dispatch under ROTA admission: the admitted set is
     feasible, and with a single job nothing contends, so it still lands
     on time. *)
  let t = trace_of [ job ~id:"j" ~start:0 ~deadline:12 ] 1 20 in
  let r = Engine.run ~policy:Admission.Rota ~dispatch:Engine.Shared t in
  Alcotest.(check bool) "shared dispatch used" true
    (r.Engine.dispatch_used = Engine.Shared);
  Alcotest.(check int) "still on time" 1 r.Engine.completed_on_time

let test_engine_outcome_helpers () =
  let t =
    trace_of
      [ job ~id:"ok" ~start:0 ~deadline:12; job ~id:"no" ~start:0 ~deadline:12 ]
      1 20
  in
  let r = Engine.run ~policy:Admission.Optimistic t in
  List.iter
    (fun (o : Engine.outcome) ->
      (* on_time and missed partition admitted outcomes. *)
      if o.Engine.admitted then
        Alcotest.(check bool) "partition" true (Engine.on_time o <> Engine.missed o)
      else begin
        Alcotest.(check bool) "not on time" false (Engine.on_time o);
        Alcotest.(check bool) "not missed" false (Engine.missed o)
      end)
    r.Engine.outcomes

let test_engine_zero_capacity () =
  let t =
    Trace.of_events [ (0, Trace.Arrive (job ~id:"j" ~start:0 ~deadline:5)) ]
  in
  let rota = Engine.run ~policy:Admission.Rota t in
  Alcotest.(check int) "rejected" 1 rota.Engine.rejected;
  Alcotest.(check int) "no capacity counted" 0 rota.Engine.capacity_total;
  let opt = Engine.run ~policy:Admission.Optimistic t in
  Alcotest.(check int) "optimistic admits anyway" 1 opt.Engine.admitted;
  Alcotest.(check int) "and misses" 1 opt.Engine.missed_deadlines;
  Alcotest.(check (float 0.001)) "utilization zero" 0. (Engine.utilization opt)

let test_engine_late_join_counted_once () =
  (* Capacity joining mid-run is clipped to [join, horizon). *)
  let t =
    Trace.of_events
      [
        (0, Trace.Join (rset [ Term.v 1 (iv 0 10) cpu1 ]));
        (4, Trace.Join (rset [ Term.v 1 (iv 0 10) cpu1 ]));
        (0, Trace.Arrive (job ~id:"j" ~start:0 ~deadline:10));
      ]
  in
  let r = Engine.run ~policy:Admission.Rota t in
  (* First join: 10 units; second join at t=4 clipped to [4,10): 6. *)
  Alcotest.(check int) "capacity" 16 r.Engine.capacity_total

(* --- Failure injection: calendars and admission under misuse --------------- *)

let test_admission_complete_unknown () =
  let ctrl = Admission.create Admission.Rota (rset [ Term.v 1 (iv 0 9) cpu1 ]) in
  (* Completing an unknown computation is a no-op, not a crash. *)
  let ctrl = Admission.complete ctrl ~computation:"ghost" in
  Alcotest.(check int) "residual intact" 9
    (Resource_set.integrate (Admission.residual ctrl) cpu1 (iv 0 9))

let test_admission_advance_expires_reservations () =
  let ctrl = Admission.create Admission.Rota (rset [ Term.v 1 (iv 0 20) cpu1 ]) in
  let j = job ~id:"j" ~start:0 ~deadline:20 in
  let ctrl, o = Admission.request ctrl ~now:0 j in
  Alcotest.(check bool) "admitted" true o.Admission.admitted;
  (* Advancing past the whole window leaves nothing. *)
  let ctrl = Admission.advance ctrl 20 in
  Alcotest.(check bool) "all expired" true
    (Resource_set.is_empty (Admission.residual ctrl))

let test_calendar_find_released () =
  let cal = Calendar.create (rset [ Term.v 1 (iv 0 9) cpu1 ]) in
  let entry =
    {
      Calendar.computation = "x";
      window = iv 0 3;
      reservation = rset [ Term.v 1 (iv 0 3) cpu1 ];
      schedules = [];
    }
  in
  let cal = Result.get_ok (Calendar.commit cal entry) in
  let cal = Calendar.release cal ~computation:"x" in
  Alcotest.(check bool) "released entries gone" true
    (Calendar.find cal ~computation:"x" = None)

(* --- Newest API additions ---------------------------------------------------- *)

let test_semantics_witness () =
  let theta = rset [ Term.v 2 (iv 0 4) cpu1 ] in
  let s = State.make ~available:theta ~now:0 in
  let atom =
    Formula.satisfy_simple
      (Requirement.make_simple ~amounts:[ amount cpu1 6 ] ~window:(iv 0 4))
  in
  (match Semantics.witness s atom with
  | Some path ->
      (* The witness itself certifies: the atom holds on it. *)
      Alcotest.(check bool) "atom holds on witness" true
        (Semantics.on_path path ~at:0 atom)
  | None -> Alcotest.fail "witness exists");
  let impossible =
    Formula.satisfy_simple
      (Requirement.make_simple ~amounts:[ amount cpu1 9 ] ~window:(iv 0 4))
  in
  Alcotest.(check bool) "no witness for the impossible" true
    (Semantics.witness s impossible = None)

let test_engine_type_stats () =
  let net12 = Located_type.network ~src:l1 ~dst:l2 in
  let t =
    Trace.of_events
      [
        (0, Trace.Join (rset [ Term.v 1 (iv 0 20) cpu1; Term.v 1 (iv 0 20) net12 ]));
        (0, Trace.Arrive (job ~id:"j" ~start:0 ~deadline:12));
      ]
  in
  let r = Engine.run ~policy:Admission.Rota t in
  (match r.Engine.type_stats with
  | [ cpu_stat; net_stat ] ->
      Alcotest.(check bool) "cpu first in type order" true
        (Located_type.equal cpu_stat.Engine.ltype cpu1);
      Alcotest.(check int) "cpu capacity" 20 cpu_stat.Engine.capacity;
      Alcotest.(check int) "cpu consumed (evaluate+ready)" 9
        cpu_stat.Engine.consumed;
      Alcotest.(check int) "net untouched" 0 net_stat.Engine.consumed
  | other -> Alcotest.failf "expected 2 type stats, got %d" (List.length other));
  (* Per-type numbers sum to the totals. *)
  let sum f = List.fold_left (fun acc s -> acc + f s) 0 r.Engine.type_stats in
  Alcotest.(check int) "capacity sums" r.Engine.capacity_total
    (sum (fun (s : Engine.type_stat) -> s.Engine.capacity));
  Alcotest.(check int) "consumed sums" r.Engine.consumed_total
    (sum (fun (s : Engine.type_stat) -> s.Engine.consumed));
  Alcotest.(check bool) "pp_type_stats prints" true
    (String.length (Format.asprintf "%a" Engine.pp_type_stats r) > 0)

let test_admission_withdraw () =
  let ctrl = Admission.create Admission.Rota (rset [ Term.v 1 (iv 0 20) cpu1 ]) in
  let j =
    Computation.make ~id:"j" ~start:5 ~deadline:20
      [ Program.make ~name:a1 ~home:l1 [ Action.evaluate 1 ] ]
  in
  let ctrl, o = Admission.request ctrl ~now:0 j in
  Alcotest.(check bool) "admitted" true o.Admission.admitted;
  (* Before the start time, leaving is allowed and frees the reservation. *)
  (match Admission.withdraw ctrl ~now:3 ~computation:"j" with
  | Ok ctrl' ->
      Alcotest.(check int) "reservation freed" 20
        (Resource_set.integrate (Admission.residual ctrl') cpu1 (iv 0 20))
  | Error e -> Alcotest.failf "withdraw before start: %s" e);
  (* At/after the start time it is refused. *)
  (match Admission.withdraw ctrl ~now:5 ~computation:"j" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "withdraw after start accepted");
  match Admission.withdraw ctrl ~now:0 ~computation:"ghost" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "withdraw of unknown accepted"

let test_stn_of_ia_scenario () =
  (* Realize a qualitative scenario metrically and check the relations. *)
  let ivs = [| iv 0 3; iv 1 2; iv 3 6 |] in
  let n = Array.length ivs in
  let scenario =
    Array.init n (fun i -> Array.init n (fun j -> Allen.relate ivs.(i) ivs.(j)))
  in
  let stn = Stn.of_ia_scenario scenario in
  Alcotest.(check bool) "consistent" true (Stn.consistent stn);
  (match Stn.schedule stn with
  | None -> Alcotest.fail "schedulable"
  | Some p ->
      let realized =
        Array.init n (fun i -> iv p.((2 * i) + 1) p.((2 * i) + 2))
      in
      for i = 0 to n - 1 do
        for j = 0 to n - 1 do
          Alcotest.(check bool)
            (Printf.sprintf "relation %d-%d preserved" i j)
            true
            (Allen.relate realized.(i) realized.(j) = scenario.(i).(j))
        done
      done);
  (* An impossible triangle — a before b, b before c, yet a after c — is
     inconsistent.  (Only the upper triangle of the matrix is read.) *)
  let bad =
    [|
      [| Allen.Equals; Allen.Before; Allen.After |];
      [| Allen.After; Allen.Equals; Allen.Before |];
      [| Allen.Before; Allen.After; Allen.Equals |];
    |]
  in
  Alcotest.(check bool) "impossible scenario" false
    (Stn.consistent (Stn.of_ia_scenario bad))

(* Conservation: in every engine run, consumed <= capacity. *)
let prop_engine_conservation =
  QCheck.Test.make ~name:"engine consumes at most the capacity" ~count:40
    QCheck.(pair (int_range 0 500) (int_range 1 3))
    (fun (seed, loc) ->
      let params =
        {
          Rota_workload.Scenario.default_params with
          seed;
          locations = loc;
          horizon = 80;
          arrivals = 10;
        }
      in
      let trace = Rota_workload.Scenario.trace params in
      List.for_all
        (fun policy ->
          let r = Engine.run ~policy trace in
          r.Engine.consumed_total <= r.Engine.capacity_total)
        Admission.all_policies)

(* Agreement: Rota_given_order is at most as permissive as Rota (which
   tries heuristic orders), never more. *)
let prop_given_order_conservative =
  QCheck.Test.make ~name:"rota-given-order admits a subset" ~count:25
    QCheck.(int_range 0 500)
    (fun seed ->
      let params =
        {
          Rota_workload.Scenario.default_params with
          seed;
          horizon = 80;
          arrivals = 12;
          locations = 2;
        }
      in
      let trace = Rota_workload.Scenario.trace params in
      let r1 = Engine.run ~policy:Admission.Rota_given_order trace in
      let r2 = Engine.run ~policy:Admission.Rota trace in
      (* Not a strict subset guarantee computation-by-computation (earlier
         rejections free capacity later), but neither may ever miss. *)
      r1.Engine.missed_deadlines = 0 && r2.Engine.missed_deadlines = 0)

let properties =
  List.map QCheck_alcotest.to_alcotest
    [ prop_engine_conservation; prop_given_order_conservative ]

let () =
  Alcotest.run "rota_more"
    [
      ( "path",
        [
          Alcotest.test_case "accounting" `Quick test_path_accounting;
          Alcotest.test_case "greedy extension" `Quick test_path_greedy_extension;
        ] );
      ( "transition",
        [
          Alcotest.test_case "contention labels" `Quick
            test_transition_contention_labels;
          Alcotest.test_case "greedy EDF" `Quick test_transition_greedy_edf;
          Alcotest.test_case "independent types" `Quick
            test_transition_two_types_independent;
        ] );
      ( "semantics",
        [
          Alcotest.test_case "window clipping" `Quick
            test_semantics_window_clipping;
          Alcotest.test_case "degenerate window" `Quick
            test_semantics_degenerate_window;
          Alcotest.test_case "multi-actor completion" `Quick
            test_completion_path_multi_actor;
        ] );
      ( "engine",
        [
          Alcotest.test_case "auto dispatch" `Quick test_engine_auto_dispatch;
          Alcotest.test_case "rota under shared" `Quick
            test_engine_rota_under_shared_dispatch;
          Alcotest.test_case "outcome helpers" `Quick test_engine_outcome_helpers;
          Alcotest.test_case "zero capacity" `Quick test_engine_zero_capacity;
          Alcotest.test_case "late join accounting" `Quick
            test_engine_late_join_counted_once;
        ] );
      ( "additions",
        [
          Alcotest.test_case "semantics witness" `Quick test_semantics_witness;
          Alcotest.test_case "engine type stats" `Quick test_engine_type_stats;
          Alcotest.test_case "admission withdraw" `Quick test_admission_withdraw;
          Alcotest.test_case "stn of ia scenario" `Quick test_stn_of_ia_scenario;
        ] );
      ( "failure_injection",
        [
          Alcotest.test_case "complete unknown" `Quick test_admission_complete_unknown;
          Alcotest.test_case "advance expires" `Quick
            test_admission_advance_expires_reservations;
          Alcotest.test_case "calendar release" `Quick test_calendar_find_released;
        ] );
      ("properties", properties);
    ]
