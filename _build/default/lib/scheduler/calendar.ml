open Import

type entry = {
  computation : string;
  window : Interval.t;
  reservation : Resource_set.t;
  schedules : (Actor_name.t * Accommodation.schedule) list;
}

type t = { capacity : Resource_set.t; entries : entry list }

let create capacity = { capacity; entries = [] }
let capacity c = c.capacity
let entries c = c.entries

let committed c =
  List.fold_left
    (fun acc e -> Resource_set.union acc e.reservation)
    Resource_set.empty c.entries

let residual c =
  match Resource_set.diff c.capacity (committed c) with
  | Ok r -> r
  | Error _ ->
      (* [commit] never lets commitments exceed capacity. *)
      assert false

let commit c entry =
  if List.exists (fun e -> String.equal e.computation entry.computation) c.entries
  then Error (Printf.sprintf "calendar: %s already committed" entry.computation)
  else if not (Resource_set.dominates (residual c) entry.reservation) then
    Error
      (Printf.sprintf
         "calendar: reservation for %s exceeds the residual capacity"
         entry.computation)
  else Ok { c with entries = entry :: c.entries }

let release c ~computation =
  {
    c with
    entries =
      List.filter (fun e -> not (String.equal e.computation computation)) c.entries;
  }

let find c ~computation =
  List.find_opt (fun e -> String.equal e.computation computation) c.entries

let add_capacity c theta = { c with capacity = Resource_set.union c.capacity theta }

let remove_capacity c slice =
  if not (Resource_set.dominates (residual c) slice) then
    Error "calendar: cannot withdraw committed or absent capacity"
  else
    match Resource_set.diff c.capacity slice with
    | Ok capacity -> Ok { c with capacity }
    | Error _ ->
        (* [slice] is dominated by the residual, a subset of capacity. *)
        assert false

let advance c now =
  {
    capacity = Resource_set.truncate_before c.capacity now;
    entries =
      List.map
        (fun e ->
          { e with reservation = Resource_set.truncate_before e.reservation now })
        c.entries;
  }

let committed_quantity c xi w = Resource_set.integrate (committed c) xi w
let capacity_quantity c xi w = Resource_set.integrate c.capacity xi w

let pp ppf c =
  Format.fprintf ppf "@[<v>calendar: capacity %a@ %d entries, residual %a@]"
    Resource_set.pp c.capacity (List.length c.entries) Resource_set.pp
    (residual c)
