lib/scheduler/pool.mli: Admission Computation Cost_model Format Import Resource_set Time
