lib/scheduler/admission.mli: Accommodation Actor_name Calendar Computation Cost_model Format Import Interval Located_type Resource_set Session Time
