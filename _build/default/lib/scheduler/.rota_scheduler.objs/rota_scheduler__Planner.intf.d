lib/scheduler/planner.mli: Accommodation Action Actor_name Cost_model Format Import Interval Location Program Resource_set Time
