lib/scheduler/calendar.ml: Accommodation Actor_name Format Import Interval List Printf Resource_set String
