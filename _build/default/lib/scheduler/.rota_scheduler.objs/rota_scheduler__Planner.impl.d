lib/scheduler/planner.ml: Accommodation Action Cost_model Format Import Int Interval List Location Program Time
