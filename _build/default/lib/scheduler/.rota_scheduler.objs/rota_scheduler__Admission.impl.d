lib/scheduler/admission.ml: Accommodation Actor_name Calendar Computation Cost_model Format Import Interval List Located_type Map Option Precedence Printf Program Requirement Result Session String
