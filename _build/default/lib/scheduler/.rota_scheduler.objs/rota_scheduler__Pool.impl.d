lib/scheduler/pool.ml: Admission Calendar Format Import List Option Printf Resource_set String
