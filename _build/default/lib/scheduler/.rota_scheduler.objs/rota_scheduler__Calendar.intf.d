lib/scheduler/calendar.mli: Accommodation Actor_name Format Import Interval Located_type Resource_set Time
