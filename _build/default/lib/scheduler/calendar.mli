open Import

(** The commitment ledger.

    A calendar tracks the system's capacity (all acquired resources, as a
    resource set over time) and the reservations committed to admitted
    computations.  Its {!residual} — capacity minus commitments — is
    exactly the paper's "resources which will expire unless new
    computations requiring them enter the system": the availability that
    Theorem 4 lets a new computation claim without disturbing anyone. *)

type entry = {
  computation : string;
  window : Interval.t;
  reservation : Resource_set.t;
      (** Exactly which resources, and when, this computation will use. *)
  schedules : (Actor_name.t * Accommodation.schedule) list;
      (** The per-actor certificates behind the reservation. *)
}

type t = private {
  capacity : Resource_set.t;
  entries : entry list;  (** Most recently committed first. *)
}

val create : Resource_set.t -> t

val capacity : t -> Resource_set.t

val entries : t -> entry list

val committed : t -> Resource_set.t
(** Union of all reservations. *)

val residual : t -> Resource_set.t
(** Capacity minus commitments — the expiring resources offered to new
    computations.  An invariant of {!commit} is that this is always
    well-defined (commitments never exceed capacity). *)

val commit : t -> entry -> (t, string) result
(** Adds an entry; fails when its reservation is not covered by the current
    residual (which would disturb existing commitments). *)

val release : t -> computation:string -> t
(** Drops a computation's entry (on completion, cancellation or deadline
    kill); its unused reservation returns to the residual.  Unknown ids are
    ignored. *)

val find : t -> computation:string -> entry option

val add_capacity : t -> Resource_set.t -> t
(** Resources joining the system. *)

val remove_capacity : t -> Resource_set.t -> (t, string) result
(** Withdraws capacity — used when delegating a slice to a child
    encapsulation (see [Pool]).  Fails when the slice is not covered by
    the {e residual} (committed resources cannot be withdrawn). *)

val advance : t -> Time.t -> t
(** Expires capacity and reservations strictly before the given tick. *)

val committed_quantity : t -> Located_type.t -> Interval.t -> int

val capacity_quantity : t -> Located_type.t -> Interval.t -> int

val pp : Format.formatter -> t -> unit
