open Import

type 'a entry = { time : Time.t; seq : int; payload : 'a }

type 'a t = {
  mutable heap : 'a entry array;
  (* [heap] is a binary min-heap on [(time, seq)] in [heap.(0..size-1)];
     [seq] breaks ties FIFO. *)
  mutable size : int;
  mutable next_seq : int;
}

let create () = { heap = [||]; size = 0; next_seq = 0 }
let length q = q.size
let is_empty q = q.size = 0

let entry_before a b =
  match Time.compare a.time b.time with
  | 0 -> a.seq < b.seq
  | c -> c < 0

let swap q i j =
  let tmp = q.heap.(i) in
  q.heap.(i) <- q.heap.(j);
  q.heap.(j) <- tmp

let rec sift_up q i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if entry_before q.heap.(i) q.heap.(parent) then begin
      swap q i parent;
      sift_up q parent
    end
  end

let rec sift_down q i =
  let left = (2 * i) + 1 and right = (2 * i) + 2 in
  let smallest = ref i in
  if left < q.size && entry_before q.heap.(left) q.heap.(!smallest) then
    smallest := left;
  if right < q.size && entry_before q.heap.(right) q.heap.(!smallest) then
    smallest := right;
  if !smallest <> i then begin
    swap q i !smallest;
    sift_down q !smallest
  end

let grow q =
  let capacity = max 8 (2 * Array.length q.heap) in
  let heap = Array.make capacity q.heap.(0) in
  Array.blit q.heap 0 heap 0 q.size;
  q.heap <- heap

let add q ~time payload =
  let entry = { time; seq = q.next_seq; payload } in
  q.next_seq <- q.next_seq + 1;
  if q.size = 0 && Array.length q.heap = 0 then q.heap <- Array.make 8 entry;
  if q.size = Array.length q.heap then grow q;
  q.heap.(q.size) <- entry;
  q.size <- q.size + 1;
  sift_up q (q.size - 1)

let peek_time q = if q.size = 0 then None else Some q.heap.(0).time

let pop q =
  if q.size = 0 then None
  else begin
    let top = q.heap.(0) in
    q.size <- q.size - 1;
    if q.size > 0 then begin
      q.heap.(0) <- q.heap.(q.size);
      sift_down q 0
    end;
    Some (top.time, top.payload)
  end

let pop_until q t =
  let rec loop acc =
    match peek_time q with
    | Some time when time <= t -> (
        match pop q with Some e -> loop (e :: acc) | None -> acc)
    | Some _ | None -> acc
  in
  List.rev (loop [])

let of_list events =
  let q = create () in
  List.iter (fun (time, payload) -> add q ~time payload) events;
  q

let to_sorted_list q =
  let copy = { heap = Array.copy q.heap; size = q.size; next_seq = q.next_seq } in
  let rec drain acc =
    match pop copy with None -> List.rev acc | Some e -> drain (e :: acc)
  in
  drain []
