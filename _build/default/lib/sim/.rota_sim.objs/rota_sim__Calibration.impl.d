lib/sim/calibration.ml: Computation Cost_model Engine Format Import List Located_type Precedence Requirement Session String Trace
