lib/sim/calibration.mli: Admission Cost_model Engine Format Import Trace
