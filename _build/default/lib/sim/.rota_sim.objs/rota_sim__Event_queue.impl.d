lib/sim/event_queue.ml: Array Import List Time
