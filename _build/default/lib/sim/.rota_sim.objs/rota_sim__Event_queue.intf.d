lib/sim/event_queue.mli: Import Time
