lib/sim/engine.mli: Admission Cost_model Format Import Located_type Time Trace
