lib/sim/import.ml: Rota Rota_actor Rota_interval Rota_resource Rota_scheduler
