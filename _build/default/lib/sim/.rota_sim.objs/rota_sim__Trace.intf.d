lib/sim/trace.mli: Computation Format Import Resource_set Rota Time
