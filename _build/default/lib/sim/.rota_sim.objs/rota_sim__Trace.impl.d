lib/sim/trace.ml: Computation Format Import List Option Resource_set Rota Time
