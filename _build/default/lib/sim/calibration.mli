open Import

(** Cost-model calibration.

    The paper's footnote on [Phi] anticipates imperfect pricing: "at the
    cost of some inefficiency, estimates could be used and revised as
    necessary".  This module is the revision loop: run the system with a
    {e believed} cost model while execution follows the {e true} one
    ([Engine.run ~cost_model ~true_cost_model]), compare what admission
    believed the admitted work would cost with what the runtime actually
    consumed, and scale the believed model accordingly.

    Calibration is per resource {b kind} (CPU-priced fields vs
    network-priced fields): coarse, robust, and enough to restore the
    deadline-assurance property in a few iterations (experiment E10). *)

type ratios = {
  cpu : float;  (** actual / believed for CPU-priced work. *)
  network : float;  (** actual / believed for network-priced work. *)
}

val believed_demand :
  Cost_model.t -> Trace.t -> admitted:(string -> bool) -> int * int
(** [(cpu, network)] totals that the given model prices for the trace's
    admitted computations and sessions ([admitted] selects by id). *)

val actual_consumption : Engine.report -> int * int
(** [(cpu, network)] totals actually consumed in a run, from the report's
    per-type stats (custom and memory kinds count as CPU-side work). *)

val ratios_of_run : believed:Cost_model.t -> Trace.t -> Engine.report -> ratios
(** Actual-over-believed per kind, from one run.  A kind with no believed
    demand keeps ratio [1.0].  Note the estimate is conservative when
    deadline kills truncate actual consumption — iterate. *)

val scale : Cost_model.t -> ratios -> Cost_model.t
(** Scales the model's CPU-priced fields by [cpu] and network-priced
    fields by [network], rounding up, with every field at least [1]
    (a zero-cost action cannot be learned back). *)

val calibrate :
  ?iterations:int ->
  policy:Admission.policy ->
  believed:Cost_model.t ->
  true_model:Cost_model.t ->
  Trace.t ->
  (Cost_model.t * Engine.report) list
(** The closed loop: run, measure, rescale, repeat ([iterations] times,
    default 3).  Returns the believed model used and the report of each
    iteration, first iteration first. *)

val pp_ratios : Format.formatter -> ratios -> unit
