open Import

type event =
  | Join of Resource_set.t
  | Arrive of Computation.t
  | Arrive_session of Rota.Session.t

type t = (Time.t * event) list

let of_events events =
  List.stable_sort (fun (t1, _) (t2, _) -> Time.compare t1 t2) events

let events t = t
let merge a b = of_events (a @ b)
let length = List.length

let arrivals t =
  List.filter_map
    (function
      | time, Arrive c -> Some (time, c)
      | _, (Join _ | Arrive_session _) -> None)
    t

let joins t =
  List.filter_map
    (function
      | time, Join r -> Some (time, r)
      | _, (Arrive _ | Arrive_session _) -> None)
    t

let sessions t =
  List.filter_map
    (function
      | time, Arrive_session s -> Some (time, s)
      | _, (Join _ | Arrive _) -> None)
    t

let horizon t =
  List.fold_left
    (fun acc (time, event) ->
      let event_horizon =
        match event with
        | Join r -> Option.value (Resource_set.horizon r) ~default:time
        | Arrive c -> c.Computation.deadline
        | Arrive_session s -> s.Rota.Session.deadline
      in
      Time.max acc (Time.max (Time.succ time) event_horizon))
    0 t

let initial_capacity theta = [ (0, Join theta) ]

let pp ppf t =
  let pp_event ppf (time, event) =
    match event with
    | Join r -> Format.fprintf ppf "%a join %a" Time.pp time Resource_set.pp r
    | Arrive c -> Format.fprintf ppf "%a arrive %a" Time.pp time Computation.pp c
    | Arrive_session s ->
        Format.fprintf ppf "%a arrive %a" Time.pp time Rota.Session.pp s
  in
  Format.pp_print_list pp_event ppf t
