open Import

(** Open-system traces.

    A trace is the environment of an open distributed system: resources
    joining (each bringing terms that say when they leave again — the
    paper's "if a resource is going to leave ... the time of leaving must
    be explicitly specified at the time of joining"), and computations
    arriving and requesting admission. *)

type event =
  | Join of Resource_set.t  (** Resources joining at this instant. *)
  | Arrive of Computation.t  (** A computation requesting admission. *)
  | Arrive_session of Rota.Session.t
      (** An interacting-actor session requesting admission. *)

type t
(** A time-sorted sequence of events (stable for equal times). *)

val of_events : (Time.t * event) list -> t
(** Sorts by time, keeping the given order among simultaneous events. *)

val events : t -> (Time.t * event) list

val merge : t -> t -> t

val length : t -> int

val arrivals : t -> (Time.t * Computation.t) list

val joins : t -> (Time.t * Resource_set.t) list

val sessions : t -> (Time.t * Rota.Session.t) list

val horizon : t -> Time.t
(** One past the last instant anything happens: the max of event times,
    joined availability horizons and computation deadlines.  [0] for the
    empty trace. *)

val initial_capacity : Resource_set.t -> t
(** A single [Join] at time 0 — the closed-system special case. *)

val pp : Format.formatter -> t -> unit
