open Import

(** A time-ordered event queue (binary min-heap).

    Events popped in non-decreasing time order; events with equal times
    come out in insertion (FIFO) order, which keeps simulations
    deterministic. *)

type 'a t

val create : unit -> 'a t

val length : 'a t -> int

val is_empty : 'a t -> bool

val add : 'a t -> time:Time.t -> 'a -> unit

val peek_time : 'a t -> Time.t option
(** Time of the next event without removing it. *)

val pop : 'a t -> (Time.t * 'a) option
(** Earliest event (FIFO among equals). *)

val pop_until : 'a t -> Time.t -> (Time.t * 'a) list
(** All events with [time <= t], earliest first. *)

val of_list : (Time.t * 'a) list -> 'a t

val to_sorted_list : 'a t -> (Time.t * 'a) list
(** Drains a copy of the queue; the queue itself is unchanged. *)
