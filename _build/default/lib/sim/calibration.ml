open Import

type ratios = { cpu : float; network : float }

let kind_of xi =
  match (xi : Located_type.t) with
  | Located_type.Network _ -> `Network
  | Located_type.Cpu _ | Located_type.Memory _ | Located_type.Custom _ -> `Cpu

let demand_of_parts parts =
  List.fold_left
    (fun (cpu, net) part ->
      List.fold_left
        (fun (cpu, net) (xi, q) ->
          match kind_of xi with
          | `Cpu -> (cpu + q, net)
          | `Network -> (cpu, net + q))
        (cpu, net)
        (Requirement.demand_complex part))
    (0, 0) parts

let believed_demand model trace ~admitted =
  let from_computations =
    List.fold_left
      (fun (cpu, net) (_, (c : Computation.t)) ->
        if admitted c.Computation.id then begin
          let conc = Computation.to_concurrent model c in
          let dc, dn = demand_of_parts conc.Requirement.parts in
          (cpu + dc, net + dn)
        end
        else (cpu, net))
      (0, 0) (Trace.arrivals trace)
  in
  List.fold_left
    (fun (cpu, net) (_, (s : Session.t)) ->
      if admitted s.Session.id then
        let nodes = Session.to_nodes model s in
        let dc, dn =
          demand_of_parts
            (List.map (fun (n : Precedence.node) -> n.Precedence.requirement) nodes)
        in
        (cpu + dc, net + dn)
      else (cpu, net))
    from_computations (Trace.sessions trace)

let actual_consumption (report : Engine.report) =
  List.fold_left
    (fun (cpu, net) (s : Engine.type_stat) ->
      match kind_of s.Engine.ltype with
      | `Cpu -> (cpu + s.Engine.consumed, net)
      | `Network -> (cpu, net + s.Engine.consumed))
    (0, 0) report.Engine.type_stats

let ratios_of_run ~believed trace (report : Engine.report) =
  let admitted id =
    List.exists
      (fun (o : Engine.outcome) ->
        String.equal o.Engine.computation id && o.Engine.admitted)
      report.Engine.outcomes
  in
  let believed_cpu, believed_net = believed_demand believed trace ~admitted in
  let consumed_cpu, consumed_net = actual_consumption report in
  (* Work still owed at deadline kills completes the picture: consumed +
     unfinished is exactly the true demand of the admitted work. *)
  let owed_cpu, owed_net =
    List.fold_left
      (fun (cpu, net) (o : Engine.outcome) ->
        List.fold_left
          (fun (cpu, net) (xi, q) ->
            match kind_of xi with
            | `Cpu -> (cpu + q, net)
            | `Network -> (cpu, net + q))
          (cpu, net) o.Engine.unfinished)
      (0, 0) report.Engine.outcomes
  in
  let ratio believed actual =
    if believed <= 0 then 1.0 else float_of_int actual /. float_of_int believed
  in
  {
    cpu = ratio believed_cpu (consumed_cpu + owed_cpu);
    network = ratio believed_net (consumed_net + owed_net);
  }

let scale (m : Cost_model.t) r =
  let up factor v = max 1 (int_of_float (ceil (float_of_int v *. factor))) in
  {
    Cost_model.evaluate_cost = up r.cpu m.Cost_model.evaluate_cost;
    send_cost = up r.network m.Cost_model.send_cost;
    create_cost = up r.cpu m.Cost_model.create_cost;
    ready_cost = up r.cpu m.Cost_model.ready_cost;
    migrate_pack_cost = up r.cpu m.Cost_model.migrate_pack_cost;
    migrate_transfer_cost = up r.network m.Cost_model.migrate_transfer_cost;
    migrate_unpack_cost = up r.cpu m.Cost_model.migrate_unpack_cost;
  }

let calibrate ?(iterations = 3) ~policy ~believed ~true_model trace =
  let rec loop believed i acc =
    if i = 0 then List.rev acc
    else
      let report =
        Engine.run ~cost_model:believed ~true_cost_model:true_model ~policy trace
      in
      let revised = scale believed (ratios_of_run ~believed trace report) in
      loop revised (i - 1) ((believed, report) :: acc)
  in
  loop believed iterations []

let pp_ratios ppf r =
  Format.fprintf ppf "{cpu=%.2f; network=%.2f}" r.cpu r.network
