type t = { header : string list; rows : string list list }

let make ~header rows = { header; rows }

let render t =
  let all = t.header :: t.rows in
  let columns = List.fold_left (fun acc r -> max acc (List.length r)) 0 all in
  let pad row = row @ List.init (columns - List.length row) (fun _ -> "") in
  let all = List.map pad all in
  let widths =
    List.init columns (fun i ->
        List.fold_left (fun acc row -> max acc (String.length (List.nth row i))) 0 all)
  in
  let trim_right s =
    let n = ref (String.length s) in
    while !n > 0 && s.[!n - 1] = ' ' do
      decr n
    done;
    String.sub s 0 !n
  in
  let render_row row =
    String.concat "  "
      (List.mapi
         (fun i cell -> cell ^ String.make (List.nth widths i - String.length cell) ' ')
         row)
    |> trim_right
  in
  let rule =
    String.concat "  " (List.map (fun w -> String.make w '-') widths)
  in
  String.concat "\n"
    (render_row (pad t.header) :: rule :: List.map render_row t.rows)

let print t =
  print_string (render t);
  print_newline ();
  print_newline ()

let cell_int = string_of_int
let cell_float ?(decimals = 2) f = Printf.sprintf "%.*f" decimals f
