(** Plain-text table rendering for experiment reports. *)

type t

val make : header:string list -> string list list -> t
(** Rows of cells; ragged rows are padded with empty cells. *)

val render : t -> string
(** Column-aligned ASCII rendering with a header rule. *)

val print : t -> unit
(** [render] to stdout, followed by a blank line. *)

val cell_int : int -> string

val cell_float : ?decimals:int -> float -> string
