(** The experiment suite (see DESIGN.md section 4 and EXPERIMENTS.md).

    The paper has no evaluation section; these experiments make every
    formal element of it executable and measurable:

    - {b E1} regenerates Table I (the interval-algebra relations) from the
      implementation and validates the composition table exhaustively.
    - {b E2} replays the Section III worked examples of the resource
      algebra and checks its laws on random instances.
    - {b E3} demonstrates every satisfaction clause of Figure 1 on
      concrete models.
    - {b E4} measures the Theorem-2 sequential-accommodation procedure:
      greedy-vs-exhaustive agreement and scaling in steps and horizon.
    - {b E5} measures Theorem-4 incremental admission as commitments grow.
    - {b E6} is the end-to-end deadline-assurance comparison: ROTA vs the
      aggregate-quantity and optimistic baselines across load levels.
    - {b E7} quantifies the paper's CyberOrgs scoping remark: reasoning
      cost with one global resource pool vs per-encapsulation pools.

    Each experiment prints its tables to stdout and is deterministic for a
    given seed. *)

val run : ?seed:int -> string -> (unit, string) result
(** [run id] executes one experiment ([e1] .. [e7]) or all of them
    ([all]).  Unknown ids report an error. *)

val all_ids : string list

val description : string -> string option
(** One-line description of an experiment id. *)
