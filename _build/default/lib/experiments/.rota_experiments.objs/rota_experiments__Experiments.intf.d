lib/experiments/experiments.mli:
