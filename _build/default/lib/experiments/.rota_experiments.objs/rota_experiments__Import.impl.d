lib/experiments/import.ml: Rota Rota_actor Rota_interval Rota_resource Rota_scheduler Rota_sim Rota_workload
