lib/experiments/table.mli:
