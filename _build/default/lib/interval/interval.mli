(** Time intervals.

    A ROTA resource term is defined over a time interval.  The paper writes
    intervals as pairs [(t_start, t_end)]; we represent them as {b half-open}
    ranges [\[start, stop)] of discrete ticks, which makes Allen's {i meets}
    relation ([stop1 = start2]), interval partitioning, and step-function
    arithmetic exact.

    Intervals are always {b non-empty} ([start < stop]): the paper notes that
    "resources are only defined during non-empty time intervals", so the
    empty interval is ruled out at construction time.  Operations that can
    produce emptiness (intersection, difference) return options or lists. *)

type t = private { start : Time.t; stop : Time.t }
(** An interval [\[start, stop)] with [start < stop].  The constructor is
    private: use {!make} or {!of_pair}. *)

val make : start:Time.t -> stop:Time.t -> t option
(** [make ~start ~stop] is the interval [\[start, stop)], or [None] when
    [start >= stop]. *)

val of_pair : Time.t -> Time.t -> t
(** [of_pair start stop] is like {!make} but raises [Invalid_argument] on an
    empty range.  Intended for literals; prefer {!make} on untrusted data. *)

val start : t -> Time.t

val stop : t -> Time.t

val duration : t -> int
(** [duration i] is the number of ticks in [i]; always positive. *)

val equal : t -> t -> bool

val compare : t -> t -> int
(** Lexicographic on [(start, stop)]; a total order convenient for sorting
    segment lists. *)

val mem : Time.t -> t -> bool
(** [mem t i] is [true] when tick [t] lies inside [i] (i.e.
    [start <= t < stop]). *)

val subset : t -> t -> bool
(** [subset i j] is [true] when every tick of [i] lies in [j].  This is the
    paper's "tau1 during-or-equal tau2" side condition used by the resource
    term order. *)

val overlaps : t -> t -> bool
(** [overlaps i j] is [true] when [i] and [j] share at least one tick. *)

val adjacent : t -> t -> bool
(** [adjacent i j] is [true] when one interval ends exactly where the other
    starts (Allen's {i meets} in either direction). *)

val inter : t -> t -> t option
(** Intersection, [None] when disjoint. *)

val hull : t -> t -> t
(** Smallest interval containing both arguments. *)

val union : t -> t -> t option
(** [union i j] is the single interval covering both when they overlap or
    are adjacent, and [None] otherwise (the union is not an interval). *)

val diff : t -> t -> t list
(** [diff i j] is [i] minus [j] as 0, 1 or 2 disjoint intervals, in
    ascending order. *)

val split : t -> Time.t -> (t * t) option
(** [split i t] cuts [i] at tick [t] into [(\[start,t), \[t,stop))] when [t]
    lies strictly inside [i]. *)

val shift : t -> int -> t
(** [shift i d] translates [i] by [d] ticks. *)

val clamp : within:t -> t -> t option
(** [clamp ~within i] is the part of [i] inside [within], if any — an alias
    for [inter within i] with self-documenting argument order. *)

val ticks : t -> Time.t list
(** [ticks i] enumerates the ticks of [i] in increasing order.  Linear in
    the duration; meant for small intervals in tests and exhaustive
    checks. *)

val pp : Format.formatter -> t -> unit
(** Prints as [\[a,b)]. *)

val to_string : t -> string
