type t = int

let origin = 0
let dt = 1
let compare = Int.compare
let equal = Int.equal
let min = Stdlib.min
let max = Stdlib.max
let add t d = t + d
let diff t u = t - u
let succ t = t + dt
let pred t = t - dt
let pp ppf t = Format.fprintf ppf "t%d" t
let to_string t = Format.asprintf "%a" pp t
