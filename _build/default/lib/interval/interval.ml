type t = { start : Time.t; stop : Time.t }

let make ~start ~stop = if start < stop then Some { start; stop } else None

let of_pair start stop =
  match make ~start ~stop with
  | Some i -> i
  | None ->
      invalid_arg
        (Printf.sprintf "Interval.of_pair: empty interval [%d,%d)" start stop)

let start i = i.start
let stop i = i.stop
let duration i = i.stop - i.start
let equal i j = i.start = j.start && i.stop = j.stop

let compare i j =
  match Time.compare i.start j.start with
  | 0 -> Time.compare i.stop j.stop
  | c -> c

let mem t i = i.start <= t && t < i.stop
let subset i j = j.start <= i.start && i.stop <= j.stop
let overlaps i j = i.start < j.stop && j.start < i.stop
let adjacent i j = i.stop = j.start || j.stop = i.start

let inter i j =
  let start = Time.max i.start j.start and stop = Time.min i.stop j.stop in
  make ~start ~stop

let hull i j =
  { start = Time.min i.start j.start; stop = Time.max i.stop j.stop }

let union i j = if overlaps i j || adjacent i j then Some (hull i j) else None

let diff i j =
  let left = make ~start:i.start ~stop:(Time.min i.stop j.start)
  and right = make ~start:(Time.max i.start j.stop) ~stop:i.stop in
  List.filter_map Fun.id [ left; right ]

let split i t =
  match (make ~start:i.start ~stop:t, make ~start:t ~stop:i.stop) with
  | Some a, Some b -> Some (a, b)
  | _ -> None

let shift i d = { start = i.start + d; stop = i.stop + d }
let clamp ~within i = inter within i

let ticks i =
  let rec loop t acc = if t < i.start then acc else loop (t - 1) (t :: acc) in
  loop (i.stop - 1) []

let pp ppf i = Format.fprintf ppf "[%d,%d)" i.start i.stop
let to_string i = Format.asprintf "%a" pp i
