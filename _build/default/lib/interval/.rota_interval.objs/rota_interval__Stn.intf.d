lib/interval/stn.mli: Allen Format
