lib/interval/allen.ml: Array Format Int Interval Lazy List String Time
