lib/interval/interval.ml: Format Fun List Printf Time
