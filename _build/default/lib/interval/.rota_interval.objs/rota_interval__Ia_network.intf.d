lib/interval/ia_network.mli: Allen Format Interval
