lib/interval/allen.mli: Format Interval
