lib/interval/time.ml: Format Int Stdlib
