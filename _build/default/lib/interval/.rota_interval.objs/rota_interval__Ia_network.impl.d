lib/interval/ia_network.ml: Allen Array Format Fun Hashtbl Interval List Printf Queue
