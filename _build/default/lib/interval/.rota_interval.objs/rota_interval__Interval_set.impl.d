lib/interval/interval_set.ml: Format Interval List
