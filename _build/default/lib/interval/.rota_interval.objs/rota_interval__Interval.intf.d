lib/interval/interval.mli: Format Time
