lib/interval/time.mli: Format
