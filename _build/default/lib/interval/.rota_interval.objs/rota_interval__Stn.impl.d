lib/interval/stn.ml: Allen Array Format Hashtbl List Option Printf
