(** Simple Temporal Networks.

    The quantitative companion to the qualitative {!Ia_network}: variables
    are time {e points} and constraints are bounds on differences,
    [lo <= p_j - p_i <= hi].  ROTA's breakpoint reasoning is naturally
    metric — "step 2 must start at least 4 ticks after step 1 and finish
    by the deadline" — and an STN decides such constraint systems exactly
    in polynomial time (shortest paths on the distance graph, Bellman–Ford
    with negative-cycle detection).

    Variables are dense integers [0 .. size-1], with variable [0]
    conventionally the temporal origin (anchor constraints to it to pin
    absolute times). *)

type t
(** A mutable constraint store over time-point variables. *)

val create : int -> t
(** [create n] is the unconstrained STN on [n] variables.  Raises
    [Invalid_argument] when [n < 1]. *)

val size : t -> int

val add_constraint : t -> ?lo:int -> ?hi:int -> int -> int -> unit
(** [add_constraint stn ~lo ~hi i j] requires [lo <= p_j - p_i <= hi]
    (either bound may be omitted).  Bounds accumulate: adding tightens.
    Raises [Invalid_argument] on out-of-range variables. *)

val before : t -> ?gap:int -> int -> int -> unit
(** [before stn ~gap i j] requires [p_j - p_i >= gap] (default [gap = 0],
    i.e. [i] not after [j]). *)

val at : t -> int -> int -> unit
(** [at stn i v] pins [p_i - p_0 = v]: variable [i] happens exactly [v]
    ticks after the origin. *)

val window : t -> int -> lo:int -> hi:int -> unit
(** [window stn i ~lo ~hi] requires [lo <= p_i - p_0 <= hi]. *)

val consistent : t -> bool
(** Whether some assignment satisfies all constraints (no negative cycle
    in the distance graph).  Runs Bellman–Ford; the result is cached until
    the next constraint is added. *)

val earliest : t -> int -> int option
(** [earliest stn i] is the minimal feasible value of [p_i - p_0], or
    [None] when the network is inconsistent.  A variable with no
    constraint path to the origin is unbounded below; for those the value
    in {!schedule}'s canonical assignment is reported. *)

val latest : t -> int -> int option
(** Maximal feasible value of [p_i - p_0]; [None] when inconsistent,
    [Some max_int] when unbounded above. *)

val schedule : t -> int array option
(** A consistent assignment for all variables, with the origin at 0
    (shortest-path potentials), or [None] when inconsistent. *)

val distance : t -> int -> int -> int option
(** [distance stn i j] is the tightest implied upper bound on
    [p_j - p_i], [Some max_int] when unconstrained, [None] when the
    network is inconsistent. *)

val of_ia_scenario : Allen.relation array array -> t
(** Encodes an atomic interval-algebra scenario over [n] intervals as an
    STN over [2n + 1] points: variable [0] is the origin, [2i + 1] and
    [2i + 2] are interval [i]'s start and stop.  Every start precedes its
    stop by at least one tick and nothing precedes the origin, so
    {!schedule} of a consistent encoding realizes the scenario with
    concrete intervals — the metric counterpart of
    [Ia_network.realize]. *)

val copy : t -> t

val pp : Format.formatter -> t -> unit
