(* Distance-graph representation: a constraint [p_j - p_i <= w] is an edge
   [i -> j] with weight [w]; shortest paths give the tightest implied
   bounds, and a negative cycle means inconsistency. *)

type t = {
  n : int;
  edges : (int * int, int) Hashtbl.t;  (** (i, j) -> min weight. *)
  mutable dirty : bool;
  mutable consistent_cache : bool;
}

let infinity_w = max_int / 4

let create n =
  if n < 1 then invalid_arg "Stn.create: need at least the origin variable";
  { n; edges = Hashtbl.create 16; dirty = true; consistent_cache = true }

let size stn = stn.n

let check_var stn i =
  if i < 0 || i >= stn.n then
    invalid_arg (Printf.sprintf "Stn: variable %d out of range" i)

let add_edge stn i j w =
  let key = (i, j) in
  let current =
    match Hashtbl.find_opt stn.edges key with Some w -> w | None -> infinity_w
  in
  if w < current then begin
    Hashtbl.replace stn.edges key w;
    stn.dirty <- true
  end

let add_constraint stn ?lo ?hi i j =
  check_var stn i;
  check_var stn j;
  (match hi with Some hi -> add_edge stn i j hi | None -> ());
  match lo with Some lo -> add_edge stn j i (-lo) | None -> ()

let before stn ?(gap = 0) i j = add_constraint stn ~lo:gap i j
let at stn i v = add_constraint stn ~lo:v ~hi:v 0 i
let window stn i ~lo ~hi = add_constraint stn ~lo ~hi 0 i

(* Bellman–Ford from [source]; [None] when a negative cycle is reachable.
   With [virtual_source] every variable is reachable at distance 0, which
   turns reachable-negative-cycle detection into global consistency. *)
let bellman_ford stn ~source ~reversed ~virtual_source =
  let dist = Array.make stn.n infinity_w in
  (if virtual_source then Array.fill dist 0 stn.n 0
   else dist.(source) <- 0);
  let edges =
    Hashtbl.fold
      (fun (i, j) w acc -> if reversed then (j, i, w) :: acc else (i, j, w) :: acc)
      stn.edges []
  in
  let changed = ref true in
  let rounds = ref 0 in
  while !changed && !rounds <= stn.n do
    changed := false;
    incr rounds;
    List.iter
      (fun (i, j, w) ->
        if dist.(i) < infinity_w && dist.(i) + w < dist.(j) then begin
          dist.(j) <- dist.(i) + w;
          changed := true
        end)
      edges
  done;
  if !changed then None else Some dist

let consistent stn =
  if stn.dirty then begin
    stn.consistent_cache <-
      Option.is_some (bellman_ford stn ~source:0 ~reversed:false ~virtual_source:true);
    stn.dirty <- false
  end;
  stn.consistent_cache

let distance stn i j =
  check_var stn i;
  check_var stn j;
  if not (consistent stn) then None
  else
    match bellman_ford stn ~source:i ~reversed:false ~virtual_source:false with
    | None -> None
    | Some dist -> Some (if dist.(j) >= infinity_w then max_int else dist.(j))

(* A feasible assignment: shortest-path potentials from a virtual source
   satisfy every difference constraint; normalizing puts the origin at 0. *)
let potentials stn =
  if not (consistent stn) then None
  else
    match bellman_ford stn ~source:0 ~reversed:false ~virtual_source:true with
    | None -> None
    | Some dist -> Some (Array.map (fun d -> d - dist.(0)) dist)

let earliest stn i =
  check_var stn i;
  if not (consistent stn) then None
  else
    (* The true infimum of [p_i - p_0] is [-d(i, 0)]; variables with no
       path to the origin are unbounded below, for which we report the
       value of the canonical feasible assignment. *)
    match bellman_ford stn ~source:0 ~reversed:true ~virtual_source:false with
    | None -> None
    | Some dist ->
        if dist.(i) < infinity_w then Some (-dist.(i))
        else Option.map (fun p -> p.(i)) (potentials stn)

let latest stn i =
  check_var stn i;
  if not (consistent stn) then None
  else
    match bellman_ford stn ~source:0 ~reversed:false ~virtual_source:false with
    | None -> None
    | Some dist -> Some (if dist.(i) >= infinity_w then max_int else dist.(i))

let schedule stn = potentials stn

let of_ia_scenario scenario =
  let n = Array.length scenario in
  let stn = create ((2 * n) + 1) in
  let start_of i = (2 * i) + 1 and stop_of i = (2 * i) + 2 in
  for i = 0 to n - 1 do
    (* Non-empty intervals in the non-negative half-line. *)
    add_constraint stn ~lo:1 (start_of i) (stop_of i);
    add_constraint stn ~lo:0 0 (start_of i)
  done;
  let lt a b = add_constraint stn ~lo:1 a b in
  let eq a b = add_constraint stn ~lo:0 ~hi:0 a b in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      let si = start_of i and ei = stop_of i in
      let sj = start_of j and ej = stop_of j in
      match scenario.(i).(j) with
      | Allen.Before -> lt ei sj
      | Allen.After -> lt ej si
      | Allen.Meets -> eq ei sj
      | Allen.Met_by -> eq ej si
      | Allen.Overlaps ->
          lt si sj;
          lt sj ei;
          lt ei ej
      | Allen.Overlapped_by ->
          lt sj si;
          lt si ej;
          lt ej ei
      | Allen.Starts ->
          eq si sj;
          lt ei ej
      | Allen.Started_by ->
          eq si sj;
          lt ej ei
      | Allen.During ->
          lt sj si;
          lt ei ej
      | Allen.Contains ->
          lt si sj;
          lt ej ei
      | Allen.Finishes ->
          eq ei ej;
          lt sj si
      | Allen.Finished_by ->
          eq ei ej;
          lt si sj
      | Allen.Equals ->
          eq si sj;
          eq ei ej
    done
  done;
  stn

let copy stn =
  {
    n = stn.n;
    edges = Hashtbl.copy stn.edges;
    dirty = stn.dirty;
    consistent_cache = stn.consistent_cache;
  }

let pp ppf stn =
  Format.fprintf ppf "stn(%d vars, %d constraints, %s)" stn.n
    (Hashtbl.length stn.edges)
    (if consistent stn then "consistent" else "inconsistent")
