(** Discrete time for ROTA.

    ROTA's transition rules advance the system in steps of the smallest
    accountable time slice [dt] (the paper's delta-t).  We fix [dt = 1] and
    represent time points as plain integers ("ticks").  All temporal
    quantities in the library — interval endpoints, durations, deadlines —
    are expressed in ticks, which keeps every computation exact (no
    floating point anywhere in the logic). *)

type t = int
(** A time point, in ticks.  Time points may be negative (useful for
    expressing windows relative to an origin), but all ROTA system
    evolutions start at a concrete tick and move forward. *)

val origin : t
(** [origin] is tick [0], the conventional start of system time. *)

val dt : t
(** [dt] is the smallest time slice the system can account for; every
    transition rule advances the clock by exactly [dt].  Fixed to [1]. *)

val compare : t -> t -> int
(** Total order on time points. *)

val equal : t -> t -> bool

val min : t -> t -> t

val max : t -> t -> t

val add : t -> t -> t
(** [add t d] is the time point [d] ticks after [t]. *)

val diff : t -> t -> t
(** [diff t u] is the signed number of ticks from [u] to [t], i.e.
    [t - u]. *)

val succ : t -> t
(** [succ t] is [add t dt]. *)

val pred : t -> t

val pp : Format.formatter -> t -> unit
(** Prints a time point as [t<n>], e.g. [t42]. *)

val to_string : t -> string
