(** Qualitative interval-algebra constraint networks.

    ROTA grounds its temporal reasoning in Allen's Interval Algebra; this
    module provides the standard reasoning machinery over that algebra: a
    network of interval variables with relation-set constraints, closed
    under composition by {b path consistency} (Allen's original propagation
    algorithm).  The scheduler uses it to reason about qualitative orderings
    of requirement windows before committing to concrete breakpoints, and it
    serves as the executable counterpart of the paper's Table I.

    Path consistency is sound (it never removes a feasible base relation)
    and, while incomplete for full IA in general, it is exact for the
    pointizable fragment that ROTA's window constraints fall into. *)

type t
(** A constraint network over interval variables [0 .. size-1].  Mutable:
    constraint tightening updates the network in place. *)

val create : int -> t
(** [create n] is the fully unconstrained network on [n] variables (every
    edge labelled with the full relation set).  The self-relation of every
    variable is [Equals]. *)

val size : t -> int

val get : t -> int -> int -> Allen.Set.t
(** [get net i j] is the current constraint between variables [i] and
    [j]. *)

val constrain : t -> int -> int -> Allen.Set.t -> unit
(** [constrain net i j s] intersects the edge [i -> j] with [s] (and
    [j -> i] with the inverse of [s]).  Raises [Invalid_argument] on
    out-of-range variables. *)

val constrain_relation : t -> int -> int -> Allen.relation -> unit
(** Convenience: constrain an edge to a single base relation. *)

val propagate : t -> bool
(** [propagate net] runs path consistency to a fixpoint: for every triple
    [(i,k,j)], the label of [i -> j] is intersected with the composition of
    [i -> k] and [k -> j].  Returns [false] when an edge becomes empty —
    the network is inconsistent — and [true] otherwise. *)

val consistent_scenario : t -> Allen.relation array array option
(** [consistent_scenario net] searches for an atomic refinement (a single
    base relation per edge) that is path-consistent, by backtracking over
    the current labels.  Returns [None] when none exists.  Exponential in
    the worst case; intended for the small networks ROTA manipulates. *)

val realize : Allen.relation array array -> Interval.t array option
(** [realize scenario] constructs concrete intervals witnessing an atomic
    scenario ([scenario.(i).(j)] holding between intervals [i] and [j]), or
    [None] if the scenario is unsatisfiable.  Endpoints are produced on a
    compact integer range. *)

val copy : t -> t

val pp : Format.formatter -> t -> unit
