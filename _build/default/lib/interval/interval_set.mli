(** Normalized finite unions of intervals.

    The paper makes the usual set operations — union, intersection,
    relative complement — "also available for time intervals"; their results
    are in general not single intervals but finite unions.  This module
    maintains such unions in a canonical form: a sorted list of pairwise
    disjoint, non-adjacent intervals.  Canonical form makes structural
    equality coincide with set equality. *)

type t
(** A set of ticks, as a canonical union of intervals. *)

val empty : t

val is_empty : t -> bool

val of_interval : Interval.t -> t

val of_list : Interval.t list -> t
(** Builds the union of arbitrary (possibly overlapping, unsorted)
    intervals. *)

val intervals : t -> Interval.t list
(** The canonical decomposition: sorted, disjoint, non-adjacent. *)

val mem : Time.t -> t -> bool

val measure : t -> int
(** Total number of ticks covered. *)

val union : t -> t -> t

val inter : t -> t -> t

val diff : t -> t -> t
(** Relative complement. *)

val add : Interval.t -> t -> t

val remove : Interval.t -> t -> t

val subset : t -> t -> bool

val equal : t -> t -> bool

val compare : t -> t -> int

val hull : t -> Interval.t option
(** Smallest single interval covering the set, or [None] if empty. *)

val restrict : Interval.t -> t -> t
(** [restrict w s] keeps only the part of [s] inside the window [w]. *)

val first : t -> Time.t option
(** Earliest covered tick. *)

val last : t -> Time.t option
(** Latest covered tick. *)

val fold : (Interval.t -> 'a -> 'a) -> t -> 'a -> 'a
(** Folds over the canonical intervals, leftmost first. *)

val pp : Format.formatter -> t -> unit
(** Prints as [[0,3) u [5,7)], or [{}] when empty. *)
