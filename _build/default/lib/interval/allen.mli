(** Allen's Interval Algebra.

    ROTA formalizes relations between time intervals using Interval Algebra
    (Allen 1983) — the paper's Table I lists the seven base relations and
    notes that counting inverses there are thirteen.  This module implements
    the full algebra: classification of a pair of concrete intervals,
    inverses, and the 13x13 composition table, plus compact relation {i sets}
    used by the {!Ia_network} qualitative constraint solver.

    All relations are interpreted over the half-open intervals of
    {!Interval}; e.g. [i] {i meets} [j] iff [stop i = start j]. *)

type relation =
  | Before  (** [i] ends strictly before [j] starts (paper: [tau1 < tau2]). *)
  | After  (** Inverse of [Before] (paper: [tau1 > tau2]). *)
  | Meets  (** [j] starts immediately after [i] ends. *)
  | Met_by  (** Inverse of [Meets]. *)
  | Overlaps  (** [i] starts first, they overlap, [j] ends last. *)
  | Overlapped_by  (** Inverse of [Overlaps]. *)
  | Starts  (** [i] and [j] start together and [i] ends first. *)
  | Started_by  (** Inverse of [Starts]. *)
  | During  (** [i] lies strictly inside [j] (paper: [tau1 in tau2]). *)
  | Contains  (** Inverse of [During]. *)
  | Finishes  (** [i] and [j] end together and [j] starts first. *)
  | Finished_by  (** Inverse of [Finishes]. *)
  | Equals  (** Identical intervals. *)

val all : relation list
(** The thirteen relations, in the declaration order above. *)

val relate : Interval.t -> Interval.t -> relation
(** [relate i j] is the unique base relation holding between [i] and [j].
    Exactly one relation always holds — the algebra is jointly exhaustive
    and pairwise disjoint. *)

val holds : relation -> Interval.t -> Interval.t -> bool
(** [holds r i j] is [true] iff [relate i j = r]. *)

val inverse : relation -> relation
(** [inverse r] is the relation holding between [j] and [i] whenever [r]
    holds between [i] and [j].  An involution. *)

val compose : relation -> relation -> relation list
(** [compose r1 r2] is the set of relations possibly holding between [a] and
    [c] given [relate a b = r1] and [relate b c = r2] — the standard Allen
    composition table.  Results are in {!all} order. *)

val is_base_index : relation -> int
(** Stable index of a relation in [0..12], following {!all}. *)

val to_symbol : relation -> string
(** Short standard abbreviation: ["b"], ["bi"], ["m"], ["mi"], ["o"],
    ["oi"], ["s"], ["si"], ["d"], ["di"], ["f"], ["fi"], ["eq"]. *)

val of_symbol : string -> relation option
(** Inverse of {!to_symbol}. *)

val interpretation : relation -> string
(** The plain-English reading used in the paper's Table I, e.g.
    [interpretation During = "tau1 during tau2"]. *)

val equal : relation -> relation -> bool

val compare : relation -> relation -> int

val pp : Format.formatter -> relation -> unit
(** Prints the abbreviation of {!to_symbol}. *)

(** Sets of Allen relations, represented as 13-bit masks.

    A relation set expresses qualitative uncertainty ("[i] is before or
    meets [j]"); these are the constraint labels of an interval-algebra
    network.  The representation is a plain [int] bitmask, so all set
    operations are O(1). *)
module Set : sig
  type t = private int
  (** A subset of the thirteen relations. *)

  val empty : t
  (** The inconsistent constraint (no relation possible). *)

  val full : t
  (** The vacuous constraint (all thirteen relations possible). *)

  val singleton : relation -> t

  val of_list : relation list -> t

  val to_list : t -> relation list
  (** Members in {!all} order. *)

  val mem : relation -> t -> bool

  val add : relation -> t -> t

  val inter : t -> t -> t

  val union : t -> t -> t

  val equal : t -> t -> bool

  val is_empty : t -> bool

  val cardinal : t -> int

  val inverse : t -> t
  (** Element-wise {!val:Allen.inverse}. *)

  val compose : t -> t -> t
  (** [compose s1 s2] is the union of the pairwise compositions — the lift
    of the composition table to relation sets, as used by path
    consistency. *)

  val subset : t -> t -> bool

  val pp : Format.formatter -> t -> unit
  (** Prints as [{b,m,o}]. *)
end
