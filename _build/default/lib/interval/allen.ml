type relation =
  | Before
  | After
  | Meets
  | Met_by
  | Overlaps
  | Overlapped_by
  | Starts
  | Started_by
  | During
  | Contains
  | Finishes
  | Finished_by
  | Equals

let all =
  [
    Before;
    After;
    Meets;
    Met_by;
    Overlaps;
    Overlapped_by;
    Starts;
    Started_by;
    During;
    Contains;
    Finishes;
    Finished_by;
    Equals;
  ]

let relate (i : Interval.t) (j : Interval.t) =
  if Interval.stop i < Interval.start j then Before
  else if Interval.stop i = Interval.start j then Meets
  else if Interval.stop j < Interval.start i then After
  else if Interval.stop j = Interval.start i then Met_by
  else
    (* The intervals share at least one tick: classify by endpoints. *)
    let cs = Time.compare (Interval.start i) (Interval.start j)
    and ce = Time.compare (Interval.stop i) (Interval.stop j) in
    if cs < 0 then if ce < 0 then Overlaps else if ce = 0 then Finished_by else Contains
    else if cs = 0 then if ce < 0 then Starts else if ce = 0 then Equals else Started_by
    else if ce < 0 then During
    else if ce = 0 then Finishes
    else Overlapped_by

let holds r i j = relate i j = r

let inverse = function
  | Before -> After
  | After -> Before
  | Meets -> Met_by
  | Met_by -> Meets
  | Overlaps -> Overlapped_by
  | Overlapped_by -> Overlaps
  | Starts -> Started_by
  | Started_by -> Starts
  | During -> Contains
  | Contains -> During
  | Finishes -> Finished_by
  | Finished_by -> Finishes
  | Equals -> Equals

let is_base_index = function
  | Before -> 0
  | After -> 1
  | Meets -> 2
  | Met_by -> 3
  | Overlaps -> 4
  | Overlapped_by -> 5
  | Starts -> 6
  | Started_by -> 7
  | During -> 8
  | Contains -> 9
  | Finishes -> 10
  | Finished_by -> 11
  | Equals -> 12

let to_symbol = function
  | Before -> "b"
  | After -> "bi"
  | Meets -> "m"
  | Met_by -> "mi"
  | Overlaps -> "o"
  | Overlapped_by -> "oi"
  | Starts -> "s"
  | Started_by -> "si"
  | During -> "d"
  | Contains -> "di"
  | Finishes -> "f"
  | Finished_by -> "fi"
  | Equals -> "eq"

let of_symbol = function
  | "b" -> Some Before
  | "bi" -> Some After
  | "m" -> Some Meets
  | "mi" -> Some Met_by
  | "o" -> Some Overlaps
  | "oi" -> Some Overlapped_by
  | "s" -> Some Starts
  | "si" -> Some Started_by
  | "d" -> Some During
  | "di" -> Some Contains
  | "f" -> Some Finishes
  | "fi" -> Some Finished_by
  | "eq" -> Some Equals
  | _ -> None

let interpretation = function
  | Before -> "tau1 before tau2"
  | After -> "tau1 after tau2"
  | Meets -> "tau1 meets tau2"
  | Met_by -> "tau1 met by tau2"
  | Overlaps -> "tau1 overlaps tau2"
  | Overlapped_by -> "tau1 overlapped by tau2"
  | Starts -> "tau1 starts tau2"
  | Started_by -> "tau1 started by tau2"
  | During -> "tau1 during tau2"
  | Contains -> "tau1 contains tau2"
  | Finishes -> "tau1 finishes tau2"
  | Finished_by -> "tau1 finished by tau2"
  | Equals -> "tau1 equals tau2"

let equal (a : relation) (b : relation) = a = b
let compare a b = Int.compare (is_base_index a) (is_base_index b)
let pp ppf r = Format.pp_print_string ppf (to_symbol r)

(* The Allen composition table (Allen 1983, table 1), transcribed by hand
   and verified exhaustively against the concrete semantics of [relate] by
   the test suite.  [compose r1 r2] lists the relations possibly holding
   between [a] and [c] when [r1] holds between [a] and [b] and [r2] between
   [b] and [c]. *)
let compose r1 r2 =
  let b = Before
  and bi = After
  and m = Meets
  and mi = Met_by
  and o = Overlaps
  and oi = Overlapped_by
  and s = Starts
  and si = Started_by
  and d = During
  and di = Contains
  and f = Finishes
  and fi = Finished_by
  and eq = Equals in
  let full = all in
  let concur = [ o; oi; s; si; d; di; f; fi; eq ] in
  match (r1, r2) with
  | Equals, r | r, Equals -> [ r ]
  | Before, Before -> [ b ]
  | Before, After -> full
  | Before, Meets -> [ b ]
  | Before, Met_by -> [ b; m; o; d; s ]
  | Before, Overlaps -> [ b ]
  | Before, Overlapped_by -> [ b; m; o; d; s ]
  | Before, Starts -> [ b ]
  | Before, Started_by -> [ b ]
  | Before, During -> [ b; m; o; d; s ]
  | Before, Contains -> [ b ]
  | Before, Finishes -> [ b; m; o; d; s ]
  | Before, Finished_by -> [ b ]
  | After, Before -> full
  | After, After -> [ bi ]
  | After, Meets -> [ bi; mi; oi; d; f ]
  | After, Met_by -> [ bi ]
  | After, Overlaps -> [ bi; mi; oi; d; f ]
  | After, Overlapped_by -> [ bi ]
  | After, Starts -> [ bi; mi; oi; d; f ]
  | After, Started_by -> [ bi ]
  | After, During -> [ bi; mi; oi; d; f ]
  | After, Contains -> [ bi ]
  | After, Finishes -> [ bi ]
  | After, Finished_by -> [ bi ]
  | Meets, Before -> [ b ]
  | Meets, After -> [ bi; mi; oi; si; di ]
  | Meets, Meets -> [ b ]
  | Meets, Met_by -> [ f; fi; eq ]
  | Meets, Overlaps -> [ b ]
  | Meets, Overlapped_by -> [ o; s; d ]
  | Meets, Starts -> [ m ]
  | Meets, Started_by -> [ m ]
  | Meets, During -> [ o; s; d ]
  | Meets, Contains -> [ b ]
  | Meets, Finishes -> [ o; s; d ]
  | Meets, Finished_by -> [ b ]
  | Met_by, Before -> [ b; m; o; di; fi ]
  | Met_by, After -> [ bi ]
  | Met_by, Meets -> [ s; si; eq ]
  | Met_by, Met_by -> [ bi ]
  | Met_by, Overlaps -> [ oi; d; f ]
  | Met_by, Overlapped_by -> [ bi ]
  | Met_by, Starts -> [ oi; d; f ]
  | Met_by, Started_by -> [ bi ]
  | Met_by, During -> [ oi; d; f ]
  | Met_by, Contains -> [ bi ]
  | Met_by, Finishes -> [ mi ]
  | Met_by, Finished_by -> [ mi ]
  | Overlaps, Before -> [ b ]
  | Overlaps, After -> [ bi; mi; oi; si; di ]
  | Overlaps, Meets -> [ b ]
  | Overlaps, Met_by -> [ oi; si; di ]
  | Overlaps, Overlaps -> [ b; m; o ]
  | Overlaps, Overlapped_by -> concur
  | Overlaps, Starts -> [ o ]
  | Overlaps, Started_by -> [ o; di; fi ]
  | Overlaps, During -> [ o; s; d ]
  | Overlaps, Contains -> [ b; m; o; di; fi ]
  | Overlaps, Finishes -> [ o; s; d ]
  | Overlaps, Finished_by -> [ b; m; o ]
  | Overlapped_by, Before -> [ b; m; o; di; fi ]
  | Overlapped_by, After -> [ bi ]
  | Overlapped_by, Meets -> [ o; di; fi ]
  | Overlapped_by, Met_by -> [ bi ]
  | Overlapped_by, Overlaps -> concur
  | Overlapped_by, Overlapped_by -> [ bi; mi; oi ]
  | Overlapped_by, Starts -> [ oi; d; f ]
  | Overlapped_by, Started_by -> [ bi; mi; oi ]
  | Overlapped_by, During -> [ oi; d; f ]
  | Overlapped_by, Contains -> [ bi; mi; oi; si; di ]
  | Overlapped_by, Finishes -> [ oi ]
  | Overlapped_by, Finished_by -> [ oi; si; di ]
  | Starts, Before -> [ b ]
  | Starts, After -> [ bi ]
  | Starts, Meets -> [ b ]
  | Starts, Met_by -> [ mi ]
  | Starts, Overlaps -> [ b; m; o ]
  | Starts, Overlapped_by -> [ oi; d; f ]
  | Starts, Starts -> [ s ]
  | Starts, Started_by -> [ s; si; eq ]
  | Starts, During -> [ d ]
  | Starts, Contains -> [ b; m; o; di; fi ]
  | Starts, Finishes -> [ d ]
  | Starts, Finished_by -> [ b; m; o ]
  | Started_by, Before -> [ b; m; o; di; fi ]
  | Started_by, After -> [ bi ]
  | Started_by, Meets -> [ o; di; fi ]
  | Started_by, Met_by -> [ mi ]
  | Started_by, Overlaps -> [ o; di; fi ]
  | Started_by, Overlapped_by -> [ oi ]
  | Started_by, Starts -> [ s; si; eq ]
  | Started_by, Started_by -> [ si ]
  | Started_by, During -> [ oi; d; f ]
  | Started_by, Contains -> [ di ]
  | Started_by, Finishes -> [ oi ]
  | Started_by, Finished_by -> [ di ]
  | During, Before -> [ b ]
  | During, After -> [ bi ]
  | During, Meets -> [ b ]
  | During, Met_by -> [ bi ]
  | During, Overlaps -> [ b; m; o; s; d ]
  | During, Overlapped_by -> [ bi; mi; oi; d; f ]
  | During, Starts -> [ d ]
  | During, Started_by -> [ bi; mi; oi; d; f ]
  | During, During -> [ d ]
  | During, Contains -> full
  | During, Finishes -> [ d ]
  | During, Finished_by -> [ b; m; o; s; d ]
  | Contains, Before -> [ b; m; o; di; fi ]
  | Contains, After -> [ bi; mi; oi; si; di ]
  | Contains, Meets -> [ o; di; fi ]
  | Contains, Met_by -> [ oi; si; di ]
  | Contains, Overlaps -> [ o; di; fi ]
  | Contains, Overlapped_by -> [ oi; si; di ]
  | Contains, Starts -> [ o; di; fi ]
  | Contains, Started_by -> [ di ]
  | Contains, During -> concur
  | Contains, Contains -> [ di ]
  | Contains, Finishes -> [ oi; si; di ]
  | Contains, Finished_by -> [ di ]
  | Finishes, Before -> [ b ]
  | Finishes, After -> [ bi ]
  | Finishes, Meets -> [ m ]
  | Finishes, Met_by -> [ bi ]
  | Finishes, Overlaps -> [ o; s; d ]
  | Finishes, Overlapped_by -> [ bi; mi; oi ]
  | Finishes, Starts -> [ d ]
  | Finishes, Started_by -> [ bi; mi; oi ]
  | Finishes, During -> [ d ]
  | Finishes, Contains -> [ bi; mi; oi; si; di ]
  | Finishes, Finishes -> [ f ]
  | Finishes, Finished_by -> [ f; fi; eq ]
  | Finished_by, Before -> [ b ]
  | Finished_by, After -> [ bi; mi; oi; si; di ]
  | Finished_by, Meets -> [ m ]
  | Finished_by, Met_by -> [ oi; si; di ]
  | Finished_by, Overlaps -> [ o ]
  | Finished_by, Overlapped_by -> [ oi; si; di ]
  | Finished_by, Starts -> [ o ]
  | Finished_by, Started_by -> [ di ]
  | Finished_by, During -> [ o; s; d ]
  | Finished_by, Contains -> [ di ]
  | Finished_by, Finishes -> [ f; fi; eq ]
  | Finished_by, Finished_by -> [ fi ]

module Set = struct
  type t = int

  let empty = 0
  let full = (1 lsl 13) - 1
  let singleton r = 1 lsl is_base_index r
  let mem r s = s land singleton r <> 0
  let add r s = s lor singleton r
  let of_list rs = List.fold_left (fun s r -> add r s) empty rs
  let to_list s = List.filter (fun r -> mem r s) all
  let inter a b = a land b
  let union a b = a lor b
  let equal (a : t) (b : t) = a = b
  let is_empty s = s = 0

  let cardinal s =
    let rec loop s n = if s = 0 then n else loop (s lsr 1) (n + (s land 1)) in
    loop s 0

  let inverse s =
    List.fold_left (fun acc r -> add (inverse r) acc) empty (to_list s)

  (* Compositions of all 169 base-relation pairs, precomputed as masks. *)
  let compose_table =
    lazy
      (let table = Array.make (13 * 13) 0 in
       let fill r1 =
         let i = is_base_index r1 in
         let fill_one r2 =
           table.((i * 13) + is_base_index r2) <- of_list (compose r1 r2)
         in
         List.iter fill_one all
       in
       List.iter fill all;
       table)

  let compose a b =
    let table = Lazy.force compose_table in
    let combine acc r1 =
      let row = is_base_index r1 * 13 in
      List.fold_left
        (fun acc r2 -> union acc table.(row + is_base_index r2))
        acc (to_list b)
    in
    List.fold_left combine empty (to_list a)

  let subset a b = a land lnot b = 0

  let pp ppf s =
    let syms = List.map to_symbol (to_list s) in
    Format.fprintf ppf "{%s}" (String.concat "," syms)
end
