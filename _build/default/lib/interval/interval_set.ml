(* Invariant: intervals sorted by start, pairwise disjoint and non-adjacent
   (each gap is at least one tick), so the representation is canonical. *)
type t = Interval.t list

let empty = []
let is_empty s = s = []
let of_interval i = [ i ]
let intervals s = s

(* Merge a sorted-by-start list, coalescing overlapping/adjacent runs. *)
let normalize sorted =
  let flush acc = function None -> acc | Some i -> i :: acc in
  let step (acc, cur) i =
    match cur with
    | None -> (acc, Some i)
    | Some c ->
        if Interval.overlaps c i || Interval.adjacent c i then
          (acc, Some (Interval.hull c i))
        else (c :: acc, Some i)
  in
  let acc, cur = List.fold_left step ([], None) sorted in
  List.rev (flush acc cur)

let of_list is = normalize (List.sort Interval.compare is)
let mem t s = List.exists (Interval.mem t) s
let measure s = List.fold_left (fun n i -> n + Interval.duration i) 0 s

let union a b = of_list (a @ b)

let inter a b =
  let with_a acc i =
    List.fold_left
      (fun acc j ->
        match Interval.inter i j with Some k -> k :: acc | None -> acc)
      acc b
  in
  of_list (List.fold_left with_a [] a)

let diff a b =
  let subtract_all i =
    List.fold_left
      (fun pieces j -> List.concat_map (fun p -> Interval.diff p j) pieces)
      [ i ] b
  in
  of_list (List.concat_map subtract_all a)

let add i s = union [ i ] s
let remove i s = diff s [ i ]
let subset a b = is_empty (diff a b)
let equal a b = List.equal Interval.equal a b
let compare a b = List.compare Interval.compare a b

let hull = function
  | [] -> None
  | first :: _ as s ->
      let last = List.nth s (List.length s - 1) in
      Some (Interval.hull first last)

let restrict w s = inter [ w ] s
let first = function [] -> None | i :: _ -> Some (Interval.start i)

let last s =
  match List.rev s with [] -> None | i :: _ -> Some (Interval.stop i - 1)

let fold f s init = List.fold_left (fun acc i -> f i acc) init s

let pp ppf = function
  | [] -> Format.pp_print_string ppf "{}"
  | s ->
      Format.pp_print_list
        ~pp_sep:(fun ppf () -> Format.pp_print_string ppf " u ")
        Interval.pp ppf s
