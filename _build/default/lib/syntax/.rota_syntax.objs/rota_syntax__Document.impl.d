lib/syntax/document.ml: Action Actor_name Array Buffer Computation Format Import Interval Lexer List Located_type Location Printf Program Resource_set Session String Term Time Trace
