lib/syntax/document.mli: Computation Format Import Resource_set Session Term Time Trace
