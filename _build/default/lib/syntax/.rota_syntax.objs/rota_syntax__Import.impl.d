lib/syntax/import.ml: Rota Rota_actor Rota_interval Rota_resource Rota_sim
