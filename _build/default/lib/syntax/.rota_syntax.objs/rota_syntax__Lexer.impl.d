lib/syntax/lexer.ml: Format List Printf String
