lib/syntax/lexer.mli: Format
