(** Tokenizer for the scenario language. *)

type token =
  | Ident of string  (** Keywords and names; the parser disambiguates. *)
  | Int of int
  | At_sign  (** [@] *)
  | Arrow  (** [->] *)
  | Newline  (** Significant: the grammar is line-oriented. *)

type located = { token : token; line : int }
(** A token with its 1-based source line. *)

type error = { message : string; line : int }

val tokenize : string -> (located list, error) result
(** Splits the input into tokens.  [#] starts a comment running to the end
    of the line; blank lines produce no tokens; every non-blank line is
    terminated by a [Newline] token.  Negative integer literals are
    supported ([-3]). *)

val pp_token : Format.formatter -> token -> unit

val pp_error : Format.formatter -> error -> unit
