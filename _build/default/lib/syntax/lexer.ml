type token = Ident of string | Int of int | At_sign | Arrow | Newline

type located = { token : token; line : int }

type error = { message : string; line : int }

let is_ident_char c =
  (c >= 'a' && c <= 'z')
  || (c >= 'A' && c <= 'Z')
  || (c >= '0' && c <= '9')
  || c = '_' || c = '.' || c = '#'

let is_digit c = c >= '0' && c <= '9'

let tokenize input =
  let n = String.length input in
  let tokens = ref [] in
  let line = ref 1 in
  let line_had_tokens = ref false in
  let emit token =
    tokens := { token; line = !line } :: !tokens;
    line_had_tokens := true
  in
  let error message = Error { message; line = !line } in
  let rec loop i =
    if i >= n then begin
      if !line_had_tokens then emit Newline;
      Ok (List.rev !tokens)
    end
    else
      let c = input.[i] in
      if c = '\n' then begin
        if !line_had_tokens then begin
          tokens := { token = Newline; line = !line } :: !tokens;
          line_had_tokens := false
        end;
        incr line;
        loop (i + 1)
      end
      else if c = ' ' || c = '\t' || c = '\r' then loop (i + 1)
      else if c = '#' then
        (* Comment to end of line. *)
        let rec skip j = if j < n && input.[j] <> '\n' then skip (j + 1) else j in
        loop (skip i)
      else if c = '@' then begin
        emit At_sign;
        loop (i + 1)
      end
      else if c = '-' && i + 1 < n && input.[i + 1] = '>' then begin
        emit Arrow;
        loop (i + 2)
      end
      else if is_digit c || (c = '-' && i + 1 < n && is_digit input.[i + 1])
      then begin
        let start = i in
        let i = if c = '-' then i + 1 else i in
        let rec scan j = if j < n && is_digit input.[j] then scan (j + 1) else j in
        let stop = scan i in
        emit (Int (int_of_string (String.sub input start (stop - start))));
        loop stop
      end
      else if is_ident_char c then begin
        let rec scan j =
          if j < n && is_ident_char input.[j] then scan (j + 1) else j
        in
        let stop = scan i in
        emit (Ident (String.sub input i (stop - i)));
        loop stop
      end
      else error (Printf.sprintf "unexpected character %C" c)
  in
  loop 0

let pp_token ppf = function
  | Ident s -> Format.fprintf ppf "%s" s
  | Int n -> Format.fprintf ppf "%d" n
  | At_sign -> Format.pp_print_string ppf "@"
  | Arrow -> Format.pp_print_string ppf "->"
  | Newline -> Format.pp_print_string ppf "<newline>"

let pp_error ppf e = Format.fprintf ppf "line %d: %s" e.line e.message
