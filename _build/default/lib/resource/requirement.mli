open Import

(** Resource requirements — the paper's [rho].

    A computation is represented by the resources it needs.  Three levels:

    - a {b simple} requirement [rho(gamma, s, d)]: the amounts a single
      actor action needs, anywhere within the window [(s, d)];
    - a {b complex} requirement [rho(Gamma, s, d)]: an ordered sequence of
      steps, each with its own amounts — the resources must arrive in
      order ("the right resources are required at the right time");
    - a {b concurrent} requirement [rho(Lambda, s, d)]: a bag of complex
      requirements sharing the window, one per independent actor.

    The function {!satisfied_simple} is the paper's boolean function [f];
    order-sensitive satisfaction of complex/concurrent requirements is
    decided by the theorem procedures in the core library
    ([Rota.Accommodation]), which also produce schedule certificates. *)

type amount = { ltype : Located_type.t; quantity : int }
(** [quantity] units of resource type [ltype]; quantities are positive
    (zero amounts — like the paper's [{0}] network charge for a local
    migrate — are dropped at construction). *)

val amount : Located_type.t -> int -> amount
(** Raises [Invalid_argument] on a negative quantity; zero amounts are
    legal inputs to the [make_*] builders below but are filtered there. *)

type simple = private { amounts : amount list; window : Interval.t }
(** The total amounts required within the window, normalized: types are
    distinct, sorted, quantities positive. *)

type step = amount list
(** One subcomputation's amounts. *)

type complex = private { steps : step list; window : Interval.t }
(** Ordered steps to be completed within the window.  Steps are normalized
    like simple amounts; steps that require nothing are dropped. *)

type concurrent = private { parts : complex list; window : Interval.t }
(** Independent actors' complex requirements over a common window. *)

val make_simple : amounts:amount list -> window:Interval.t -> simple
(** Aggregates duplicate types and drops zero quantities. *)

val make_complex : steps:step list -> window:Interval.t -> complex

val make_concurrent : parts:complex list -> window:Interval.t -> concurrent
(** The parts' own windows are overridden by the common window, mirroring
    the paper's [rho(Lambda,s,d) = U_i rho(Gamma_i, s, d)]. *)

val simple_of_complex : complex -> simple
(** Forgets ordering: the aggregate amounts over the whole window.  Used by
    the aggregate baseline (and as a necessary condition). *)

val complex_of_simple : simple -> complex
(** A one-step complex requirement. *)

val satisfied_simple : Resource_set.t -> simple -> bool
(** The paper's [f(Theta, rho(gamma, s, d))]: for every required amount,
    the total availability of its type within the window reaches the
    quantity. *)

val unsatisfied_amounts : Resource_set.t -> simple -> amount list
(** The amounts (with residual quantities) that {!satisfied_simple} finds
    missing; empty iff satisfied. *)

val demand_simple : simple -> (Located_type.t * int) list
(** Type-to-quantity view of a simple requirement. *)

val demand_complex : complex -> (Located_type.t * int) list
(** Aggregate demand per type across all steps. *)

val total_quantity_complex : complex -> int
(** Sum of all quantities over all steps (a work-size measure). *)

val step_count : complex -> int

val equal_simple : simple -> simple -> bool

val equal_complex : complex -> complex -> bool

val equal_concurrent : concurrent -> concurrent -> bool

val compare_complex : complex -> complex -> int

val pp_amount : Format.formatter -> amount -> unit

val pp_simple : Format.formatter -> simple -> unit

val pp_complex : Format.formatter -> complex -> unit

val pp_concurrent : Format.formatter -> concurrent -> unit
