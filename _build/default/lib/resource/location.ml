type t = string

let make name =
  if String.length name = 0 then invalid_arg "Location.make: empty name"
  else name

let name l = l
let equal = String.equal
let compare = String.compare
let hash = Hashtbl.hash
let pp = Format.pp_print_string
let to_string l = l
