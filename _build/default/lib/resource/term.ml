open Import

type t = { rate : int; interval : Interval.t; ltype : Located_type.t }

let make ~rate ~interval ~ltype =
  if rate < 1 then None else Some { rate; interval; ltype }

let v rate interval ltype =
  match make ~rate ~interval ~ltype with
  | Some t -> t
  | None -> invalid_arg (Printf.sprintf "Term.v: non-positive rate %d" rate)

let rate t = t.rate
let interval t = t.interval
let ltype t = t.ltype
let quantity t = t.rate * Interval.duration t.interval

let compare a b =
  match Located_type.compare a.ltype b.ltype with
  | 0 -> (
      match Interval.compare a.interval b.interval with
      | 0 -> Int.compare a.rate b.rate
      | c -> c)
  | c -> c

let equal a b = compare a b = 0

let ge a b =
  Located_type.equal a.ltype b.ltype
  && a.rate >= b.rate
  && Interval.subset b.interval a.interval

let gt a b = ge a b && a.rate > b.rate

let pp ppf t =
  Format.fprintf ppf "{%d}^%a_%a" t.rate Interval.pp t.interval Located_type.pp
    t.ltype

let to_string t = Format.asprintf "%a" pp t
