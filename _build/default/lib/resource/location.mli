(** Locations of resources and actors.

    A location names a node of the open distributed system ([l1], [l2], ...
    in the paper).  Locations are opaque atoms with a total order; the
    resource layer only ever compares them. *)

type t

val make : string -> t
(** [make name] is the location called [name].  Raises [Invalid_argument] on
    the empty string. *)

val name : t -> string

val equal : t -> t -> bool

val compare : t -> t -> int

val hash : t -> int

val pp : Format.formatter -> t -> unit

val to_string : t -> string
