(** Located resource types.

    The paper writes a located type [xi] as the pair of a resource type and
    the place where the resource resides: [<cpu, l1>] for processor cycles
    on node [l1], [<network, l1 -> l2>] for communication capacity from [l1]
    to [l2].  We add [Memory] and an extensible [Custom] kind so the library
    can model resources beyond the paper's two examples (storage, GPU,
    licenses, ...) without changing the algebra. *)

type t =
  | Cpu of Location.t  (** Processor capacity at a node. *)
  | Memory of Location.t  (** Memory capacity at a node. *)
  | Network of Location.t * Location.t
      (** Directed link capacity from a source to a destination node. *)
  | Custom of string * Location.t
      (** Any other named resource kind residing at a node. *)

val cpu : Location.t -> t

val memory : Location.t -> t

val network : src:Location.t -> dst:Location.t -> t

val custom : string -> Location.t -> t

val equal : t -> t -> bool

val compare : t -> t -> int
(** Total order (used as map key). *)

val hash : t -> int

val kind : t -> string
(** ["cpu"], ["memory"], ["network"], or the custom kind name. *)

val locations : t -> Location.t list
(** The node(s) the resource involves: one for node resources, source then
    destination for network resources. *)

val pp : Format.formatter -> t -> unit
(** Prints in the paper's notation, e.g. [<cpu,l1>] or [<network,l1->l2>]. *)

val to_string : t -> string
