type t =
  | Cpu of Location.t
  | Memory of Location.t
  | Network of Location.t * Location.t
  | Custom of string * Location.t

let cpu l = Cpu l
let memory l = Memory l
let network ~src ~dst = Network (src, dst)
let custom kind l = Custom (kind, l)

let rank = function
  | Cpu _ -> 0
  | Memory _ -> 1
  | Network _ -> 2
  | Custom _ -> 3

let compare a b =
  match (a, b) with
  | Cpu la, Cpu lb | Memory la, Memory lb -> Location.compare la lb
  | Network (sa, da), Network (sb, db) -> (
      match Location.compare sa sb with
      | 0 -> Location.compare da db
      | c -> c)
  | Custom (ka, la), Custom (kb, lb) -> (
      match String.compare ka kb with 0 -> Location.compare la lb | c -> c)
  | (Cpu _ | Memory _ | Network _ | Custom _), _ ->
      Int.compare (rank a) (rank b)

let equal a b = compare a b = 0
let hash = Hashtbl.hash

let kind = function
  | Cpu _ -> "cpu"
  | Memory _ -> "memory"
  | Network _ -> "network"
  | Custom (k, _) -> k

let locations = function
  | Cpu l | Memory l | Custom (_, l) -> [ l ]
  | Network (src, dst) -> [ src; dst ]

let pp ppf = function
  | Cpu l -> Format.fprintf ppf "<cpu,%a>" Location.pp l
  | Memory l -> Format.fprintf ppf "<memory,%a>" Location.pp l
  | Network (src, dst) ->
      Format.fprintf ppf "<network,%a->%a>" Location.pp src Location.pp dst
  | Custom (k, l) -> Format.fprintf ppf "<%s,%a>" k Location.pp l

let to_string xi = Format.asprintf "%a" pp xi
