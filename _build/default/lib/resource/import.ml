(* Short aliases for the temporal substrate used throughout this library. *)
module Time = Rota_interval.Time
module Interval = Rota_interval.Interval
module Interval_set = Rota_interval.Interval_set
module Allen = Rota_interval.Allen
