lib/resource/term.ml: Format Import Int Interval Located_type Printf
