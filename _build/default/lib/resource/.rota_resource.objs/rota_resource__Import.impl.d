lib/resource/import.ml: Rota_interval
