lib/resource/located_type.ml: Format Hashtbl Int Location String
