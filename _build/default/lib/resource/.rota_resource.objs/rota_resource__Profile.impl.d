lib/resource/profile.ml: Format Import Int Interval Interval_set List Result Term Time
