lib/resource/location.mli: Format
