lib/resource/resource_set.ml: Format Import List Located_type Map Profile Result Term Time
