lib/resource/resource_set.mli: Format Import Interval Located_type Profile Term Time
