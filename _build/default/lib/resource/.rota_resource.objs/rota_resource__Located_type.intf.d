lib/resource/located_type.mli: Format Location
