lib/resource/requirement.ml: Format Import Int Interval List Located_type Map Option Resource_set
