lib/resource/location.ml: Format Hashtbl String
