lib/resource/term.mli: Format Import Interval Located_type
