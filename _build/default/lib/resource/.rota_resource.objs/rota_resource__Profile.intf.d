lib/resource/profile.mli: Format Import Interval Interval_set Located_type Term Time
