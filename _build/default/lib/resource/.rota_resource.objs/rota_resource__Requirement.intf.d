lib/resource/requirement.mli: Format Import Interval Located_type Resource_set
