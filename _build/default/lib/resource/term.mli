open Import

(** Resource terms.

    The paper's central representation: a resource term [{r}^tau_xi] says
    that resource of located type [xi] is available at rate [r] throughout
    the time interval [tau].  The product [r * duration tau] is the total
    quantity available over the course of the interval.

    Rates are strictly positive integers: the paper rules out negative
    resource terms, and a zero-rate term is the null resource, which "is
    only defined during non-empty time intervals" — i.e. not a term at
    all. *)

type t = private {
  rate : int;  (** Availability rate [r]; always [>= 1]. *)
  interval : Interval.t;  (** The interval [tau] of existence. *)
  ltype : Located_type.t;  (** The located type [xi]. *)
}

val make : rate:int -> interval:Interval.t -> ltype:Located_type.t -> t option
(** [make ~rate ~interval ~ltype] is the resource term, or [None] when
    [rate < 1]. *)

val v : int -> Interval.t -> Located_type.t -> t
(** [v rate interval ltype] is like {!make} but raises [Invalid_argument] on
    a non-positive rate.  Intended for literals. *)

val rate : t -> int

val interval : t -> Interval.t

val ltype : t -> Located_type.t

val quantity : t -> int
(** [quantity term] is the total amount available over the term's interval:
    [rate * duration] (the paper's footnote 1). *)

val equal : t -> t -> bool

val compare : t -> t -> int

val gt : t -> t -> bool
(** The paper's resource-term inequality: [gt t1 t2] iff both have the same
    located type, [rate t1 > rate t2], and the interval of [t2] is contained
    in that of [t1].  A computation needing [t2] can then use [t1] instead,
    with some to spare.  Note this is deliberately {e not} a comparison of
    total quantities: quantity outside the needed window does not help. *)

val ge : t -> t -> bool
(** Like {!gt} but admits equal rates: sufficient (not surplus)
    availability. *)

val pp : Format.formatter -> t -> unit
(** Prints in the paper's notation, e.g. [{5}^[0,3)_<cpu,l1>]. *)

val to_string : t -> string
