open Import

(** Computation paths (Definition 2).

    A computation path is one branch of the tree that the transition
    relation produces: a start state and a sequence of labelled steps.  The
    tree of all paths "represents all the possible evolutions of the
    system"; the Figure-1 semantics evaluates formulas on one path at a
    time, and the theorems quantify existentially over paths
    ([Semantics.exists_path]).

    Besides the visited states, a path determines which resources {b
    expire unused} along it — the [Theta_expire] that the satisfy clauses
    consult: expired-but-unwanted resources are exactly the capacity
    available for accommodating {e new} computations. *)

type t
(** A non-empty finite path. *)

val init : State.t -> t
(** The single-state path. *)

val extend : t -> Transition.label -> t
(** Appends one transition step ([Transition.apply] of the tip). *)

val extend_greedy : t -> t
(** Appends the maximal-progress step. *)

val root : t -> State.t

val tip : t -> State.t
(** The latest state. *)

val length : t -> int
(** Number of steps (states minus one). *)

val states : t -> State.t list
(** Root first. *)

val labels : t -> Transition.label list
(** Step labels, root-side first; [length t] elements. *)

val state_at : t -> Time.t -> State.t option
(** The path's state whose clock equals the given tick, if the path covers
    it. *)

val expired : t -> Resource_set.t
(** All resources that expired unused along the path — the union of each
    step's {!Transition.expired_slice}.  Its availability at tick [u] is
    exactly what the path's computations left unconsumed at [u]. *)

val expired_within : t -> Interval.t -> Resource_set.t
(** {!expired} restricted to a window. *)

val pp : Format.formatter -> t -> unit
