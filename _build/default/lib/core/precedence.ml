open Import

type node = {
  id : string;
  requirement : Requirement.complex;
  deps : string list;
}

type placement = {
  node : string;
  started : Time.t;
  finished : Time.t;
  schedule : Accommodation.schedule;
}

type error =
  | Duplicate_node of string
  | Unknown_dependency of { node : string; dependency : string }
  | Cycle of string list
  | Infeasible of string

let validate nodes =
  let tbl = Hashtbl.create 16 in
  let rec check = function
    | [] -> Ok ()
    | n :: rest ->
        if Hashtbl.mem tbl n.id then Error (Duplicate_node n.id)
        else begin
          Hashtbl.add tbl n.id n;
          check rest
        end
  in
  match check nodes with
  | Error _ as e -> e
  | Ok () ->
      let missing =
        List.find_map
          (fun n ->
            List.find_map
              (fun d ->
                if Hashtbl.mem tbl d then None
                else Some (Unknown_dependency { node = n.id; dependency = d }))
              n.deps)
          nodes
      in
      (match missing with Some e -> Error e | None -> Ok ())

(* Kahn's algorithm; on a cycle, the nodes that never became ready. *)
let topological nodes =
  let remaining = Hashtbl.create 16 in
  List.iter (fun n -> Hashtbl.replace remaining n.id n) nodes;
  let finished_deps n =
    List.for_all (fun d -> not (Hashtbl.mem remaining d)) n.deps
  in
  let rec loop acc =
    if Hashtbl.length remaining = 0 then Ok (List.rev acc)
    else
      let ready =
        List.filter (fun n -> Hashtbl.mem remaining n.id && finished_deps n) nodes
      in
      match ready with
      | [] ->
          let stuck =
            List.filter_map
              (fun n -> if Hashtbl.mem remaining n.id then Some n.id else None)
              nodes
          in
          Error (Cycle stuck)
      | _ ->
          (* Most work first among simultaneously ready nodes, mirroring
             the concurrent accommodation heuristic. *)
          let ready =
            List.stable_sort
              (fun a b ->
                Int.compare
                  (Requirement.total_quantity_complex b.requirement)
                  (Requirement.total_quantity_complex a.requirement))
              ready
          in
          List.iter (fun n -> Hashtbl.remove remaining n.id) ready;
          loop (List.rev_append ready acc)
  in
  loop []

let finish_of_schedule ~default (s : Accommodation.schedule) =
  List.fold_left
    (fun acc (a : Accommodation.step_allocation) ->
      Time.max acc (Interval.stop a.Accommodation.subwindow))
    default s.Accommodation.steps

let schedule theta nodes =
  match validate nodes with
  | Error e -> Error e
  | Ok () -> (
      match topological nodes with
      | Error e -> Error e
      | Ok ordered -> (
          let finishes : (string, Time.t) Hashtbl.t = Hashtbl.create 16 in
          let place (residual, acc) n =
            let window = n.requirement.Requirement.window in
            let earliest_start =
              List.fold_left
                (fun acc d -> Time.max acc (Hashtbl.find finishes d))
                (Interval.start window) n.deps
            in
            match
              Interval.make ~start:earliest_start ~stop:(Interval.stop window)
            with
            | None -> Error (Infeasible n.id)
            | Some effective -> (
                let clipped =
                  Requirement.make_complex ~steps:n.requirement.Requirement.steps
                    ~window:effective
                in
                match Accommodation.schedule_sequential residual clipped with
                | None -> Error (Infeasible n.id)
                | Some schedule -> (
                    let finished =
                      finish_of_schedule ~default:earliest_start schedule
                    in
                    Hashtbl.replace finishes n.id finished;
                    match
                      Resource_set.diff residual schedule.Accommodation.reservation
                    with
                    | Error _ ->
                        (* The reservation was carved from the residual. *)
                        assert false
                    | Ok residual ->
                        Ok
                          ( residual,
                            {
                              node = n.id;
                              started = earliest_start;
                              finished;
                              schedule;
                            }
                            :: acc )))
          in
          let rec run state = function
            | [] -> Ok state
            | n :: rest -> (
                match place state n with
                | Error e -> Error e
                | Ok state -> run state rest)
          in
          match run (theta, []) ordered with
          | Error e -> Error e
          | Ok (_, placements) ->
              (* Restore the caller's node order. *)
              let by_id = Hashtbl.create 16 in
              List.iter (fun p -> Hashtbl.replace by_id p.node p) placements;
              Ok (List.map (fun n -> Hashtbl.find by_id n.id) nodes)))

let feasible theta nodes = Result.is_ok (schedule theta nodes)

let finish_time placements =
  List.fold_left (fun acc p -> Time.max acc p.finished) min_int placements

let pp_error ppf = function
  | Duplicate_node id -> Format.fprintf ppf "duplicate node %s" id
  | Unknown_dependency { node; dependency } ->
      Format.fprintf ppf "node %s depends on unknown node %s" node dependency
  | Cycle ids ->
      Format.fprintf ppf "dependency cycle (deadlock) among: %s"
        (String.concat ", " ids)
  | Infeasible id -> Format.fprintf ppf "node %s cannot be placed" id
