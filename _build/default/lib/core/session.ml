open Import

type event = Act of Action.t | Await of Actor_name.t

type participant = {
  name : Actor_name.t;
  home : Location.t;
  events : event list;
}

type t = {
  id : string;
  start : Time.t;
  deadline : Time.t;
  participants : participant list;
}

let participant ~name ~home events = { name; home; events }

let sends_to ~sender ~receiver =
  List.filter
    (fun e ->
      match e with
      | Act (Action.Send { dest; _ }) -> Actor_name.equal dest receiver
      | Act (Action.Evaluate _ | Action.Create _ | Action.Ready | Action.Migrate _)
      | Await _ ->
          false)
    sender.events

let awaits_on ~receiver ~sender =
  List.filter
    (fun e ->
      match e with
      | Await s -> Actor_name.equal s sender
      | Act _ -> false)
    receiver.events

let make ~id ~start ~deadline participants =
  let fail fmt = Format.kasprintf (fun m -> Error m) fmt in
  if deadline <= start then
    fail "session %s: deadline %d <= start %d" id deadline start
  else
    let names = List.map (fun p -> p.name) participants in
    let distinct = List.sort_uniq Actor_name.compare names in
    if List.length distinct <> List.length names then
      fail "session %s: duplicate participant names" id
    else
      let find name =
        List.find_opt (fun p -> Actor_name.equal p.name name) participants
      in
      let problem =
        List.find_map
          (fun p ->
            List.find_map
              (fun e ->
                match e with
                | Act _ -> None
                | Await sender ->
                    if Actor_name.equal sender p.name then
                      Some
                        (Format.asprintf "%a awaits itself" Actor_name.pp p.name)
                    else (
                      match find sender with
                      | None ->
                          Some
                            (Format.asprintf "%a awaits unknown participant %a"
                               Actor_name.pp p.name Actor_name.pp sender)
                      | Some s ->
                          let awaits = List.length (awaits_on ~receiver:p ~sender:s.name) in
                          let sends = List.length (sends_to ~sender:s ~receiver:p.name) in
                          if awaits > sends then
                            Some
                              (Format.asprintf
                                 "%a awaits %d message(s) from %a, which sends only %d"
                                 Actor_name.pp p.name awaits Actor_name.pp sender
                                 sends)
                          else None))
              p.events)
          participants
      in
      match problem with
      | Some msg -> fail "session %s: %s" id msg
      | None -> Ok { id; start; deadline; participants }

(* Split a participant's events into segments at awaits, threading the
   actor's location.  Returns, per segment: the step list (one step per
   action) and the await that opened it (None for the first). *)
let segments_of cost_model ~locate p =
  let rec loop here pending_await current acc = function
    | [] -> List.rev ((pending_await, List.rev current) :: acc)
    | Await sender :: rest ->
        loop here (Some sender)
          []
          ((pending_await, List.rev current) :: acc)
          rest
    | Act action :: rest ->
        let step = Cost_model.phi cost_model ~locate ~self_location:here action in
        let here =
          match (action : Action.t) with
          | Action.Migrate { dest } -> dest
          | Action.Evaluate _ | Action.Send _ | Action.Create _ | Action.Ready ->
              here
        in
        loop here pending_await (step :: current) acc rest
  in
  loop p.home None [] [] p.events

(* Which segment of [sender] contains its [k]-th send to [receiver]
   (0-based)?  Returns the segment index. *)
let segment_of_send sender ~receiver ~k =
  let segment = ref 0 and seen = ref 0 and found = ref None in
  List.iter
    (fun e ->
      match e with
      | Await _ -> incr segment
      | Act (Action.Send { dest; _ }) when Actor_name.equal dest receiver ->
          if !seen = k && !found = None then found := Some !segment;
          incr seen
      | Act
          ( Action.Send _ | Action.Evaluate _ | Action.Create _ | Action.Ready
          | Action.Migrate _ ) ->
          ())
    sender.events;
  !found

let node_id name k = Format.asprintf "%a#%d" Actor_name.pp name k

let to_nodes cost_model session =
  let window = Interval.of_pair session.start session.deadline in
  let locate name =
    List.find_map
      (fun p -> if Actor_name.equal p.name name then Some p.home else None)
      session.participants
  in
  List.concat_map
    (fun p ->
      let segments = segments_of cost_model ~locate p in
      (* Count, per sender, how many awaits we've consumed so far, to pair
         FIFO. *)
      let await_counts : (string, int) Hashtbl.t = Hashtbl.create 4 in
      List.mapi
        (fun k (opened_by, steps) ->
          let sequencing = if k = 0 then [] else [ node_id p.name (k - 1) ] in
          let await_dep =
            match opened_by with
            | None -> []
            | Some sender -> (
                let key = Actor_name.to_string sender in
                let idx =
                  match Hashtbl.find_opt await_counts key with
                  | Some n -> n
                  | None -> 0
                in
                Hashtbl.replace await_counts key (idx + 1);
                let sender_p =
                  List.find
                    (fun q -> Actor_name.equal q.name sender)
                    session.participants
                in
                match segment_of_send sender_p ~receiver:p.name ~k:idx with
                | Some seg -> [ node_id sender seg ]
                | None ->
                    (* [make] guarantees a matching send exists. *)
                    assert false)
          in
          {
            Precedence.id = node_id p.name k;
            requirement = Requirement.make_complex ~steps ~window;
            deps = sequencing @ await_dep;
          })
        segments)
    session.participants

let meets_deadline cost_model theta session =
  Precedence.schedule theta (to_nodes cost_model session)

let pp ppf session =
  Format.fprintf ppf "(session %s: %d participants, s=%a, d=%a)" session.id
    (List.length session.participants)
    Time.pp session.start Time.pp session.deadline
