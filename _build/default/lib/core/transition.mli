open Import

(** The labelled transition rules.

    The paper drives system evolution with one family of rules over
    [S = (Theta, rho, t)]:

    - the {b sequential rule}: one resource type fuels one actor's current
      action for [dt];
    - the {b concurrent rule}: several types fuel several actors in the
      same [dt];
    - the {b expiration rules}: types available during [dt] that fuel
      nobody expire;
    - the {b general rule}: any mixture of the above — some types are
      consumed, the rest expire.

    All are instances of one parameterized step: choose an assignment of
    currently-available resource types to actors whose {e possible action}
    (head step) requires them — at most one actor per type, possibly
    several types per actor — then advance the clock by [dt].  A type
    assigned to an actor transfers [min(rate, remaining)] units out of the
    actor's requirement; unassigned availability in the elapsed slice
    expires. *)

type assignment = {
  ltype : Located_type.t;
  computation : string;
  actor : Actor_name.t;
}
(** "[xi -> a]": one resource type fuelling one actor for this step. *)

type label = assignment list
(** A transition label; [\[\]] is a pure expiration step. *)

val consumable : State.t -> (Located_type.t * (string * Actor_name.t) list) list
(** For each resource type with positive rate at the current tick, the
    pendings whose current step still requires it {e and} whose window
    contains the current tick (a computation neither starts before [s] nor
    consumes after [d]). *)

val labels : State.t -> label list
(** Every label enabled at the state: the cartesian product, over
    consumable types, of "expire or fuel one of the candidate actors".
    The list always contains the empty (all-expire) label and grows
    exponentially with contention — intended for the bounded model checker
    on small states; use {!greedy_label} for a canonical single choice. *)

val label_count : State.t -> int
(** [List.length (labels s)] computed without materializing the list. *)

val greedy_label : State.t -> label
(** Maximal progress with an earliest-deadline-first tie-break: every
    consumable type is assigned, to the candidate whose window ends
    soonest (ties by computation id, then actor name). *)

val apply : State.t -> label -> State.t
(** One step of the general rule: perform the label's transfers, advance
    the clock, expire the elapsed slice.  Raises [Invalid_argument] when
    the label assigns a type twice. *)

val expired_slice : State.t -> label -> Resource_set.t
(** The resources that expire {e unused} during the step: the elapsed
    slice [\[now, now+dt)] of availability minus what the label consumes.
    These are the [Theta_expire] building blocks of the Figure-1
    semantics: unwanted resources that could have accommodated new
    computations. *)

val step_greedy : State.t -> State.t
(** [apply s (greedy_label s)]. *)

val run_greedy : State.t -> horizon:Time.t -> State.t
(** Iterates {!step_greedy} until the clock reaches [horizon]. *)

val pp_label : Format.formatter -> label -> unit
