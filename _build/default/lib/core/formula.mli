open Import

(** Well-formed formulas of ROTA.

    The paper's grammar (Section V-B):

    {v psi ::= true | false | satisfy(rho(gamma,s,d))
             | satisfy(rho(Gamma,s,d)) | satisfy(rho(Lambda,s,d))
             | not psi | eventually psi | always psi v}

    Atomic propositions are the constants and the three [satisfy] forms —
    on a simple, complex or concurrent resource requirement; the only
    connective is negation, plus the two temporal operators.  We keep the
    AST exactly that grammar; conjunction/disjunction are not part of
    ROTA. *)

type t =
  | True
  | False
  | Satisfy_simple of Requirement.simple
      (** Can the expiring resources accommodate this single action? *)
  | Satisfy_complex of Requirement.complex
      (** ... this sequential actor computation? *)
  | Satisfy_concurrent of Requirement.concurrent
      (** ... this multi-actor computation? *)
  | Not of t
  | Eventually of t  (** The paper's diamond. *)
  | Always of t  (** The paper's box. *)

val tt : t

val ff : t

val satisfy_simple : Requirement.simple -> t

val satisfy_complex : Requirement.complex -> t

val satisfy_concurrent : Requirement.concurrent -> t

val neg : t -> t
(** Negation, collapsing double negations and constants. *)

val eventually : t -> t

val always : t -> t

val horizon : t -> Time.t option
(** The largest deadline mentioned by any [satisfy] atom — the natural
    exploration bound for the model checker ([None] for formulas with no
    atoms, which are time-bounded by construction). *)

val size : t -> int
(** Number of AST nodes. *)

val equal : t -> t -> bool

val pp : Format.formatter -> t -> unit
(** Prints with [!], [<>], [\[\]] for not/eventually/always. *)
