open Import

type t =
  | True
  | False
  | Satisfy_simple of Requirement.simple
  | Satisfy_complex of Requirement.complex
  | Satisfy_concurrent of Requirement.concurrent
  | Not of t
  | Eventually of t
  | Always of t

let tt = True
let ff = False
let satisfy_simple r = Satisfy_simple r
let satisfy_complex r = Satisfy_complex r
let satisfy_concurrent r = Satisfy_concurrent r

let neg = function
  | True -> False
  | False -> True
  | Not psi -> psi
  | psi -> Not psi

let eventually psi = Eventually psi
let always psi = Always psi

let rec horizon = function
  | True | False -> None
  | Satisfy_simple r -> Some (Interval.stop r.Requirement.window)
  | Satisfy_complex r -> Some (Interval.stop r.Requirement.window)
  | Satisfy_concurrent r -> Some (Interval.stop r.Requirement.window)
  | Not psi | Eventually psi | Always psi -> horizon psi

let rec size = function
  | True | False | Satisfy_simple _ | Satisfy_complex _ | Satisfy_concurrent _
    ->
      1
  | Not psi | Eventually psi | Always psi -> 1 + size psi

let rec equal a b =
  match (a, b) with
  | True, True | False, False -> true
  | Satisfy_simple x, Satisfy_simple y -> Requirement.equal_simple x y
  | Satisfy_complex x, Satisfy_complex y -> Requirement.equal_complex x y
  | Satisfy_concurrent x, Satisfy_concurrent y ->
      Requirement.equal_concurrent x y
  | Not x, Not y | Eventually x, Eventually y | Always x, Always y ->
      equal x y
  | ( ( True | False | Satisfy_simple _ | Satisfy_complex _
      | Satisfy_concurrent _ | Not _ | Eventually _ | Always _ ),
      _ ) ->
      false

let rec pp ppf = function
  | True -> Format.pp_print_string ppf "true"
  | False -> Format.pp_print_string ppf "false"
  | Satisfy_simple r ->
      Format.fprintf ppf "satisfy(%a)" Requirement.pp_simple r
  | Satisfy_complex r ->
      Format.fprintf ppf "satisfy(%a)" Requirement.pp_complex r
  | Satisfy_concurrent r ->
      Format.fprintf ppf "satisfy(%a)" Requirement.pp_concurrent r
  | Not psi -> Format.fprintf ppf "!%a" pp_atomish psi
  | Eventually psi -> Format.fprintf ppf "<>%a" pp_atomish psi
  | Always psi -> Format.fprintf ppf "[]%a" pp_atomish psi

and pp_atomish ppf psi =
  match psi with
  | True | False | Satisfy_simple _ | Satisfy_complex _ | Satisfy_concurrent _
    ->
      pp ppf psi
  | Not _ | Eventually _ | Always _ -> Format.fprintf ppf "(%a)" pp psi
