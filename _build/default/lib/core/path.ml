(* Stored tip-first so extension is O(1); accessors reverse. *)
open Import

type t = {
  root : State.t;
  steps : (Transition.label * State.t) list;  (** Most recent first. *)
  expired : Resource_set.t;  (** Accumulated unused expirations. *)
}

let init state = { root = state; steps = []; expired = Resource_set.empty }

let tip p = match p.steps with [] -> p.root | (_, s) :: _ -> s

let extend p label =
  let before = tip p in
  let after = Transition.apply before label in
  {
    p with
    steps = (label, after) :: p.steps;
    expired =
      Resource_set.union p.expired (Transition.expired_slice before label);
  }

let extend_greedy p = extend p (Transition.greedy_label (tip p))

let root p = p.root
let length p = List.length p.steps
let states p = p.root :: List.rev_map snd p.steps
let labels p = List.rev_map fst p.steps

let state_at p t =
  List.find_opt (fun (s : State.t) -> Time.equal s.State.now t) (states p)

let expired p = p.expired
let expired_within p w = Resource_set.restrict (expired p) w

let pp ppf p =
  Format.fprintf ppf "@[<v>path (%d steps)@ %a@]" (length p)
    (Format.pp_print_list (fun ppf (s : State.t) -> State.pp ppf s))
    (states p)
