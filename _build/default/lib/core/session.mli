open Import

(** Interacting actor computations.

    The paper's concurrency model keeps actors independent; its stated
    future work is to handle actors that {e wait} for messages, by
    breaking each actor's computation "into sequences of independent
    computations separated by states in which it is waiting to hear back".
    This module implements exactly that decomposition.

    A {b session} is a computation whose participants may, between
    actions, {b await} a message from a named peer.  Awaits pair with
    sends in FIFO order: participant [b]'s [k]-th await on [a] matches
    [a]'s [k]-th send to [b].  Compilation splits every participant's
    event sequence into {b segments} at its awaits and emits one
    {!Precedence.node} per segment, where a segment that follows an await
    depends on the {e sender's segment containing the matching send}
    (a safe over-approximation of "after the send completes": the segment
    finishes no earlier than the send does).

    Cyclic waiting — each of two actors awaiting the other first — becomes
    a dependency cycle, which {!Precedence.schedule} reports as a
    deadlock. *)

type event =
  | Act of Action.t  (** A plain action. *)
  | Await of Actor_name.t
      (** Block until the next unmatched message from this peer arrives. *)

type participant = private {
  name : Actor_name.t;
  home : Location.t;
  events : event list;
}

type t = private {
  id : string;
  start : Time.t;
  deadline : Time.t;
  participants : participant list;
}

val participant :
  name:Actor_name.t -> home:Location.t -> event list -> participant

val make :
  id:string ->
  start:Time.t ->
  deadline:Time.t ->
  participant list ->
  (t, string) result
(** Validates: [deadline > start]; distinct participant names; every await
    names a participant of the session; every await has a matching send
    (an unmatched await could never be satisfied). *)

val to_nodes : Cost_model.t -> t -> Precedence.node list
(** One node per segment, each with its requirement over the session
    window (Phi-priced, locations threaded through migrations) and its
    await-induced dependencies.  Node ids are ["<actor>#<segment>"]. *)

val meets_deadline :
  Cost_model.t ->
  Resource_set.t ->
  t ->
  (Precedence.placement list, Precedence.error) result
(** Theorem 3 lifted to interacting actors: placements proving every
    segment — in dependency order — completes before the deadline, or why
    not (including [Cycle] for deadlocks). *)

val pp : Format.formatter -> t -> unit
