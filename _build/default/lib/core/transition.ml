open Import

type assignment = {
  ltype : Located_type.t;
  computation : string;
  actor : Actor_name.t;
}

type label = assignment list

let head_amounts (p : State.pending) =
  match p.State.steps with [] -> [] | head :: _ -> head

let wants p xi =
  List.exists
    (fun (a : Requirement.amount) -> Located_type.equal a.ltype xi)
    (head_amounts p)

let remaining_for p xi =
  List.fold_left
    (fun acc (a : Requirement.amount) ->
      if Located_type.equal a.ltype xi then acc + a.quantity else acc)
    0 (head_amounts p)

let active_pendings (s : State.t) =
  List.filter (fun (p : State.pending) -> Interval.mem s.State.now p.State.window)
    s.State.pending

let consumable (s : State.t) =
  let active = active_pendings s in
  Resource_set.fold
    (fun xi profile acc ->
      if Profile.rate_at profile s.State.now <= 0 then acc
      else
        let candidates =
          List.filter_map
            (fun (p : State.pending) ->
              if wants p xi then Some (p.State.computation, p.State.actor)
              else None)
            active
        in
        if candidates = [] then acc else (xi, candidates) :: acc)
    s.State.available []
  |> List.rev

let labels s =
  let choices = consumable s in
  (* Cartesian product over types of (expire | fuel candidate). *)
  let extend partial (xi, candidates) =
    partial
    @ List.concat_map
        (fun label ->
          List.map
            (fun (computation, actor) ->
              { ltype = xi; computation; actor } :: label)
            candidates)
        partial
  in
  (* Seed with the all-expire label; note [extend] keeps the unassigned
     alternative by including [partial] itself. *)
  List.fold_left (fun acc choice -> extend acc choice) [ [] ] choices
  |> List.map List.rev

let label_count s =
  List.fold_left
    (fun acc (_, candidates) -> acc * (1 + List.length candidates))
    1 (consumable s)

let greedy_label (s : State.t) =
  let deadline_of computation actor =
    match
      List.find_opt
        (fun (p : State.pending) ->
          String.equal p.State.computation computation
          && Actor_name.equal p.State.actor actor)
        s.State.pending
    with
    | Some p -> Interval.stop p.State.window
    | None -> max_int
  in
  let pick (xi, candidates) =
    let best =
      List.sort
        (fun (c1, a1) (c2, a2) ->
          match Int.compare (deadline_of c1 a1) (deadline_of c2 a2) with
          | 0 -> (
              match String.compare c1 c2 with
              | 0 -> Actor_name.compare a1 a2
              | c -> c)
          | c -> c)
        candidates
    in
    match best with
    | (computation, actor) :: _ -> Some { ltype = xi; computation; actor }
    | [] -> None
  in
  List.filter_map pick (consumable s)

let check_label label =
  let types = List.map (fun a -> a.ltype) label in
  let distinct = List.sort_uniq Located_type.compare types in
  if List.length distinct <> List.length types then
    invalid_arg "Transition.apply: a resource type is assigned twice"

let transfers (s : State.t) label =
  List.map
    (fun a ->
      let rate = Profile.rate_at (Resource_set.find a.ltype s.State.available) s.State.now in
      let remaining =
        match
          List.find_opt
            (fun (p : State.pending) ->
              String.equal p.State.computation a.computation
              && Actor_name.equal p.State.actor a.actor)
            s.State.pending
        with
        | Some p -> remaining_for p a.ltype
        | None -> 0
      in
      (a, min rate remaining))
    label

let apply s label =
  check_label label;
  let s' =
    List.fold_left
      (fun acc (a, quantity) ->
        if quantity <= 0 then acc
        else
          State.consume_in_head acc ~computation:a.computation ~actor:a.actor
            [ (a.ltype, quantity) ])
      s (transfers s label)
  in
  State.tick s'

let expired_slice (s : State.t) label =
  let now = s.State.now in
  let slice = Interval.of_pair now (Time.succ now) in
  let consumed_of xi =
    List.fold_left
      (fun acc (a, q) -> if Located_type.equal a.ltype xi then acc + q else acc)
      0 (transfers s label)
  in
  Resource_set.fold
    (fun xi profile acc ->
      let rate = Profile.rate_at profile now in
      let left = rate - consumed_of xi in
      if left > 0 then
        Resource_set.union acc
          (Resource_set.singleton (Term.v left slice xi))
      else acc)
    s.State.available Resource_set.empty

let step_greedy s = apply s (greedy_label s)

let rec run_greedy (s : State.t) ~horizon =
  if s.State.now >= horizon then s
  else
    let next = step_greedy s in
    run_greedy next ~horizon

let pp_label ppf = function
  | [] -> Format.pp_print_string ppf "expire"
  | label ->
      let pp_assignment ppf a =
        Format.fprintf ppf "%a->%a" Located_type.pp a.ltype Actor_name.pp
          a.actor
      in
      Format.pp_print_list
        ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
        pp_assignment ppf label
