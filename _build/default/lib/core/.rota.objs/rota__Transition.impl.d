lib/core/transition.ml: Actor_name Format Import Int Interval List Located_type Profile Requirement Resource_set State String Term Time
