lib/core/path.ml: Format Import List Resource_set State Time Transition
