lib/core/session.ml: Action Actor_name Cost_model Format Hashtbl Import Interval List Location Precedence Requirement Time
