lib/core/accommodation.ml: Computation Format Import Int Interval List Option Profile Program Requirement Resource_set Time
