lib/core/state.ml: Actor_name Computation Format Import Int Interval List Located_type Printf Program Requirement Resource_set String Time
