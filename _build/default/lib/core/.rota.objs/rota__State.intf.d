lib/core/state.mli: Actor_name Computation Cost_model Format Import Interval Located_type Requirement Resource_set Time
