lib/core/precedence.ml: Accommodation Format Hashtbl Import Int Interval List Requirement Resource_set Result String Time
