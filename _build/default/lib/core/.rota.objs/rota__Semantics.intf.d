lib/core/semantics.mli: Format Formula Import Path State Time
