lib/core/formula.ml: Format Import Interval Requirement
