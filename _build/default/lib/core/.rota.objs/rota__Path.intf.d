lib/core/path.mli: Format Import Interval Resource_set State Time Transition
