lib/core/semantics.ml: Accommodation Format Formula Fun Import Interval List Path Printf Requirement Resource_set Set State Time Transition
