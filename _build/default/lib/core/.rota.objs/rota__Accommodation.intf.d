lib/core/accommodation.mli: Actor_name Computation Cost_model Format Import Interval Requirement Resource_set Time
