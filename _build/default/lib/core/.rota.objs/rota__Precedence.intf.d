lib/core/precedence.mli: Accommodation Format Import Requirement Resource_set Time
