lib/core/transition.mli: Actor_name Format Import Located_type Resource_set State Time
