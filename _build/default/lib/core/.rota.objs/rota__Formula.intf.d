lib/core/formula.mli: Format Import Requirement Time
