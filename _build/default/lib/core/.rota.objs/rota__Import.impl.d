lib/core/import.ml: Rota_actor Rota_interval Rota_resource
