lib/core/session.mli: Action Actor_name Cost_model Format Import Location Precedence Resource_set Time
