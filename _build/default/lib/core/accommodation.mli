open Import

(** Decision procedures for the paper's four theorems.

    - {b Theorem 1} (single action): an action's simple requirement is
      accommodated iff [f(Theta, rho)] holds — {!single_action}.
    - {b Theorem 2} (sequential computation): a complex requirement is
      accommodated iff breakpoints [t_1 < ... < t_{m-1}] exist splitting
      the window so each step's simple requirement holds on its
      subinterval — {!schedule_sequential} decides this and returns the
      breakpoints together with a concrete resource reservation
      (a {e certificate}, checkable with {!check_schedule}).
    - {b Theorem 3} (meet deadline): a computation on otherwise-idle
      resources completes by its deadline iff a computation path drains
      its requirements in time — decided constructively by
      {!schedule_concurrent} / {!meets_deadline}.
    - {b Theorem 4} (accommodate an additional computation): a new
      computation fits without disturbing existing commitments iff the
      resources that would otherwise expire — the availability {e minus}
      the committed reservations — satisfy its requirement; the caller
      supplies that residual (see [Rota_scheduler.Calendar]) and
      {!schedule_sequential}/{!schedule_concurrent} decide it.

    The sequential procedure is a greedy earliest-finish scan.  For
    cumulative per-type availability greedy is exact (finishing a step
    earlier never hurts later steps because availability integrals over
    suffix windows only grow); the test suite cross-validates it against
    {!sequential_feasible_exhaustive}.  The concurrent procedure reserves
    parts one at a time against the shrinking residual — exactly the
    paper's "accommodate one more actor computation at a time" strategy —
    and is complete at tick granularity for unit rates, while in general a
    failing order may hide a feasible interleaving; {!Order} heuristics
    mitigate this. *)

type step_allocation = {
  step_index : int;  (** Position of the step in the complex requirement. *)
  subwindow : Interval.t;
      (** [\[t_i-1, t_i)] — where this step executes. *)
  allocation : Resource_set.t;  (** Exactly what it consumes, and when. *)
}

type schedule = {
  window : Interval.t;
  breakpoints : Time.t list;
      (** The interior breakpoints [t_1 < ... < t_{m-1}]. *)
  steps : step_allocation list;
  reservation : Resource_set.t;
      (** Union of all allocations; dominated by the input [Theta]. *)
}

val single_action : Resource_set.t -> Requirement.simple -> bool
(** Theorem 1's criterion: the function [f].  (Equals
    {!Requirement.satisfied_simple}; restated here so the theorem has a
    named decision procedure.) *)

val schedule_sequential :
  Resource_set.t -> Requirement.complex -> schedule option
(** Theorem 2, constructively: earliest-finish breakpoints and a concrete
    earliest-fit reservation, or [None] when no breakpoints exist. *)

val sequential_feasible : Resource_set.t -> Requirement.complex -> bool
(** [Option.is_some (schedule_sequential ...)]. *)

val sequential_feasible_exhaustive :
  Resource_set.t -> Requirement.complex -> bool
(** Reference implementation of Theorem 2: searches {e all} breakpoint
    tuples within the window.  Exponential; used to validate the greedy
    procedure on small instances. *)

val check_schedule :
  Resource_set.t -> Requirement.complex -> schedule -> (unit, string) result
(** Validates a certificate: breakpoints strictly increase inside the
    window, subwindows tile it in order, each step's allocation lies
    inside its subwindow and covers its amounts there, and the total
    reservation is dominated by availability. *)

(** Part orderings for incremental concurrent reservation. *)
module Order : sig
  type t =
    | Given  (** The order the parts were listed in. *)
    | Most_work_first
        (** Largest total quantity first (most constrained first). *)
    | Least_work_first

  val all : t list

  val pp : Format.formatter -> t -> unit
end

val schedule_concurrent :
  ?order:Order.t ->
  Resource_set.t ->
  Requirement.concurrent ->
  schedule list option
(** Theorems 3/4, constructively: reserve each part in turn against the
    residual availability.  Returns per-part schedules in the {e original}
    part order, or [None] if some part cannot be placed.  With
    [?order] (default [Most_work_first]) parts are {e placed} in heuristic
    order. *)

val concurrent_feasible :
  ?try_orders:Order.t list ->
  Resource_set.t ->
  Requirement.concurrent ->
  bool
(** Tries each heuristic order (default: all) until one fits. *)

val meets_deadline :
  ?merge:bool ->
  Cost_model.t ->
  Resource_set.t ->
  Computation.t ->
  (Actor_name.t * schedule) list option
(** Theorem 3 for a whole computation [(Lambda, s, d)] on resources
    [Theta]: per-actor schedules proving every actor drains before [d],
    or [None]. *)

val reservation_of_schedules : schedule list -> Resource_set.t
(** Union of the schedules' reservations — what a ledger should commit. *)

val pp_schedule : Format.formatter -> schedule -> unit
