open Import

(** Accommodation with precedence constraints.

    The paper's concurrent model assumes independent actors; its stated
    future work is "the wider range of actor computations where actors can
    interact", by breaking an actor's computation "into sequences of
    independent computations separated by states in which it is waiting to
    hear back".  This module provides the scheduling half of that
    extension: a set of requirement {b nodes} with {e finish-before-start}
    dependencies, placed incrementally on shared resources.

    Each node carries its own complex requirement; a node may not start
    consuming before all of its dependencies have finished, so its
    effective window is its own window clipped at its dependencies'
    completion times.  Scheduling processes nodes in topological order
    (most work first among ready nodes) against the shrinking residual,
    exactly like [Accommodation.schedule_concurrent] but
    dependency-aware. *)

type node = {
  id : string;
  requirement : Requirement.complex;
  deps : string list;  (** Ids of nodes that must finish first. *)
}

type placement = {
  node : string;
  started : Time.t;  (** Start of its effective window. *)
  finished : Time.t;  (** When its last step completes. *)
  schedule : Accommodation.schedule;
}

type error =
  | Duplicate_node of string
  | Unknown_dependency of { node : string; dependency : string }
  | Cycle of string list
      (** Nodes involved in a dependency cycle — e.g. two actors each
          awaiting the other: a deadlock, detected statically. *)
  | Infeasible of string  (** First node that could not be placed. *)

val schedule : Resource_set.t -> node list -> (placement list, error) result
(** Placements in the order nodes were given.  The union of the placements'
    reservations is dominated by the input resources. *)

val feasible : Resource_set.t -> node list -> bool

val finish_time : placement list -> Time.t
(** Latest completion over the placements ([min_int] for the empty list). *)

val pp_error : Format.formatter -> error -> unit
