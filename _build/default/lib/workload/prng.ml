type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create seed =
  { state = Int64.mul (Int64.of_int (seed + 1)) 0x2545F4914F6CDD1DL }

let copy g = { state = g.state }

let next_int64 g =
  g.state <- Int64.add g.state golden_gamma;
  let z = g.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let split g = { state = next_int64 g }

let int g bound =
  if bound <= 0 then invalid_arg "Prng.int: bound <= 0"
  else
    (* Drop to 62 bits so the value stays non-negative in OCaml's 63-bit
       native int. *)
    let r = Int64.to_int (Int64.shift_right_logical (next_int64 g) 2) in
    r mod bound

let int_range g lo hi =
  if hi < lo then invalid_arg "Prng.int_range: hi < lo"
  else lo + int g (hi - lo + 1)

let bool g = Int64.logand (next_int64 g) 1L = 1L

let float g bound =
  let r = Int64.to_float (Int64.shift_right_logical (next_int64 g) 11) in
  bound *. r /. 9007199254740992. (* 2^53 *)

let choose g = function
  | [] -> invalid_arg "Prng.choose: empty list"
  | l -> List.nth l (int g (List.length l))

let shuffle g l =
  let a = Array.of_list l in
  for i = Array.length a - 1 downto 1 do
    let j = int g (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done;
  Array.to_list a
