(** Deterministic pseudo-random numbers (SplitMix64).

    Every workload in this repository is generated from an explicit seed so
    experiments and property counterexamples reproduce exactly.  SplitMix64
    is tiny, fast, passes BigCrush, and — unlike [Stdlib.Random] — its
    stream is stable across OCaml versions. *)

type t
(** A generator; mutable state, so pass it along explicitly. *)

val create : int -> t
(** A generator seeded from an integer. *)

val copy : t -> t

val split : t -> t
(** A statistically independent child generator; the parent advances. *)

val next_int64 : t -> int64
(** Uniform over all 64-bit values. *)

val int : t -> int -> int
(** [int g bound] is uniform in [0, bound).  Raises [Invalid_argument] when
    [bound <= 0]. *)

val int_range : t -> int -> int -> int
(** [int_range g lo hi] is uniform in [lo, hi] inclusive. *)

val bool : t -> bool

val float : t -> float -> float
(** [float g bound] is uniform in [0, bound). *)

val choose : t -> 'a list -> 'a
(** Uniform element.  Raises [Invalid_argument] on the empty list. *)

val shuffle : t -> 'a list -> 'a list
(** Fisher–Yates. *)
