lib/workload/gen.mli: Actor_name Computation Cost_model Import Location Prng Program Resource_set Session Time
