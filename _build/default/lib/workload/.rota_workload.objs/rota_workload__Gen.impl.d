lib/workload/gen.ml: Action Actor_name Array Computation Cost_model Import Interval List Located_type Location Printf Prng Program Requirement Resource_set Rota Session Term
