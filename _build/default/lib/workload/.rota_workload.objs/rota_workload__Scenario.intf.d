lib/workload/scenario.mli: Computation Gen Import Resource_set Time Trace
