lib/workload/prng.mli:
