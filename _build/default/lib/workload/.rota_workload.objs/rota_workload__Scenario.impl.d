lib/workload/scenario.ml: Action Computation Fun Gen Import List Located_type Location Printf Prng Profile Program Resource_set Session Time Trace
