type t = string

let make name =
  if String.length name = 0 then invalid_arg "Actor_name.make: empty name"
  else name

let name a = a
let equal = String.equal
let compare = String.compare
let hash = Hashtbl.hash
let pp = Format.pp_print_string
let to_string a = a
