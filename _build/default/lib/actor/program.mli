open Import

(** Actor programs — the paper's [Gamma].

    A program is one actor's behaviour: its name, its home (initial)
    location, and the sequence of actions it will take.  "An individual
    actor's computation is sequential": actions happen in order, and an
    action is {i possible} only when all earlier actions have completed
    (Definition 1).

    The program's location changes as it executes [migrate] actions; costs
    are charged where the actor is when it takes each action (the migrate
    itself is charged at the pre-move location plus the unpack cost at the
    destination, per {!Cost_model.phi}). *)

type t = private {
  name : Actor_name.t;
  home : Location.t;
  actions : Action.t list;
}

val make : name:Actor_name.t -> home:Location.t -> Action.t list -> t

val length : t -> int
(** Number of actions. *)

val is_possible : t -> completed:int -> int -> bool
(** [is_possible p ~completed i] implements Definition 1: action [i] is
    possible iff it is the next action after the [completed] prefix
    ([i = completed]) and lies within the program. *)

val location_trace : t -> (Action.t * Location.t) list
(** Each action paired with the actor's location when it takes it. *)

val final_location : t -> Location.t
(** Where the actor ends up after all actions. *)

val locations_visited : t -> Location.t list
(** Home plus every migration target, in order, without duplicates removed. *)

val steps :
  Cost_model.t ->
  locate:(Actor_name.t -> Location.t option) ->
  t ->
  Requirement.step list
(** One requirement step per action: [Phi(a, gamma_i)] evaluated at the
    actor's location at that point.  Steps of actions with no cost (all
    amounts zero) are kept as empty lists here so indices align with
    actions; {!to_complex} drops them. *)

val to_complex :
  ?merge:bool ->
  Cost_model.t ->
  locate:(Actor_name.t -> Location.t option) ->
  window:Interval.t ->
  t ->
  Requirement.complex
(** The complex resource requirement [rho(Gamma, s, d)] of this program
    over the window.

    When [merge] is [true] (the default), consecutive steps that demand a
    single amount of the {e same} located type are coalesced into one step
    with the summed quantity — the paper's observation that a run of
    actions needing one identical resource type "need not be broken down
    into multiple subcomputations".  Pass [~merge:false] to keep one step
    per action (the ablation benchmarks compare both). *)

val equal : t -> t -> bool

val pp : Format.formatter -> t -> unit
