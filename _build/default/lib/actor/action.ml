open Import

type t =
  | Evaluate of { complexity : int }
  | Send of { dest : Actor_name.t; size : int }
  | Create of { child : Actor_name.t }
  | Ready
  | Migrate of { dest : Location.t }

let evaluate complexity =
  if complexity < 1 then invalid_arg "Action.evaluate: complexity < 1"
  else Evaluate { complexity }

let send ~dest ~size =
  if size < 1 then invalid_arg "Action.send: size < 1" else Send { dest; size }

let create child = Create { child }
let ready = Ready
let migrate dest = Migrate { dest }

let kind = function
  | Evaluate _ -> "evaluate"
  | Send _ -> "send"
  | Create _ -> "create"
  | Ready -> "ready"
  | Migrate _ -> "migrate"

let compare a b =
  match (a, b) with
  | Evaluate x, Evaluate y -> Int.compare x.complexity y.complexity
  | Send x, Send y -> (
      match Actor_name.compare x.dest y.dest with
      | 0 -> Int.compare x.size y.size
      | c -> c)
  | Create x, Create y -> Actor_name.compare x.child y.child
  | Ready, Ready -> 0
  | Migrate x, Migrate y -> Location.compare x.dest y.dest
  | Evaluate _, (Send _ | Create _ | Ready | Migrate _) -> -1
  | Send _, (Create _ | Ready | Migrate _) -> -1
  | Create _, (Ready | Migrate _) -> -1
  | Ready, Migrate _ -> -1
  | (Send _ | Create _ | Ready | Migrate _), Evaluate _ -> 1
  | (Create _ | Ready | Migrate _), Send _ -> 1
  | (Ready | Migrate _), Create _ -> 1
  | Migrate _, Ready -> 1

let equal a b = compare a b = 0

let pp ppf = function
  | Evaluate { complexity } -> Format.fprintf ppf "evaluate(%d)" complexity
  | Send { dest; size } ->
      Format.fprintf ppf "send(%a,%d)" Actor_name.pp dest size
  | Create { child } -> Format.fprintf ppf "create(%a)" Actor_name.pp child
  | Ready -> Format.pp_print_string ppf "ready"
  | Migrate { dest } -> Format.fprintf ppf "migrate(%a)" Location.pp dest

let to_string a = Format.asprintf "%a" pp a
