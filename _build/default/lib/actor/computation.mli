open Import

(** Distributed computations — the paper's triple [(Lambda, s, d)].

    A computation is a bag of independent actor programs [Lambda], an
    earliest start time [s], and a deadline [d]: it "does not seek to begin
    before [s] and seeks to be completed before [d]".  Following the
    paper's concurrency model, all actors are created en masse at the start
    and never wait for each other. *)

type t = private {
  id : string;  (** A label for ledgers, logs and experiment tables. *)
  programs : Program.t list;
  start : Time.t;  (** [s] — earliest start. *)
  deadline : Time.t;  (** [d] — completion deadline (exclusive). *)
}

val make :
  id:string -> start:Time.t -> deadline:Time.t -> Program.t list -> t
(** Raises [Invalid_argument] when [deadline <= start] or two programs
    share an actor name. *)

val window : t -> Interval.t
(** The interval [(s, d)] as [\[s, d)]. *)

val actor_count : t -> int

val locate : t -> Actor_name.t -> Location.t option
(** Resolves an actor of [Lambda] to its {e home} location.  (The paper
    assumes actors "do not migrate for acquiring resources" and interacting
    destinations are looked up by their home; unknown actors resolve to
    [None], which {!Cost_model.phi} treats as local delivery.) *)

val to_concurrent :
  ?merge:bool -> Cost_model.t -> t -> Requirement.concurrent
(** The concurrent resource requirement [rho(Lambda, s, d)]: one complex
    requirement per program over the common window.  [merge] as in
    {!Program.to_complex}. *)

val total_work : Cost_model.t -> t -> int
(** Total quantity over all programs and steps, a size measure. *)

val equal : t -> t -> bool

val pp : Format.formatter -> t -> unit
