open Import

(** Actor actions.

    An actor's behaviour is a sequence of the five primitive actions of the
    paper's actor model: evaluate an expression, send a message, create a
    new actor, become ready for the next message, or migrate to another
    location.  Each action consumes processor and/or network resources,
    quantified by {!Cost_model}. *)

type t =
  | Evaluate of { complexity : int }
      (** Evaluate an expression; [complexity >= 1] scales the processor
          cost. *)
  | Send of { dest : Actor_name.t; size : int }
      (** Send a message to [dest]; [size >= 1] scales the network cost.
          The network's located type runs from the sender's current
          location to the destination actor's location. *)
  | Create of { child : Actor_name.t }
      (** Create a new actor with a predefined behaviour, at the creator's
          current location. *)
  | Ready
      (** Change state and become ready to process the next message. *)
  | Migrate of { dest : Location.t }
      (** Serialize, transfer to [dest] over the network, deserialize and
          resume there. *)

val evaluate : int -> t
(** [evaluate complexity].  Raises [Invalid_argument] when
    [complexity < 1]. *)

val send : dest:Actor_name.t -> size:int -> t
(** Raises [Invalid_argument] when [size < 1]. *)

val create : Actor_name.t -> t

val ready : t

val migrate : Location.t -> t

val kind : t -> string
(** ["evaluate"], ["send"], ["create"], ["ready"] or ["migrate"]. *)

val equal : t -> t -> bool

val compare : t -> t -> int

val pp : Format.formatter -> t -> unit
(** Prints e.g. [send(a2,1)], [evaluate(3)], [migrate(l2)]. *)

val to_string : t -> string
