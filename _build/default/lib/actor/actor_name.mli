(** Globally unique actor names.

    Actors "have globally unique names"; the logic only ever compares them
    and uses them to look up locations, so names are opaque atoms. *)

type t

val make : string -> t
(** Raises [Invalid_argument] on the empty string. *)

val name : t -> string

val equal : t -> t -> bool

val compare : t -> t -> int

val hash : t -> int

val pp : Format.formatter -> t -> unit

val to_string : t -> string
