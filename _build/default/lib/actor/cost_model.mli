open Import

(** The cost function [Phi].

    [Phi] maps an actor's action to the set of resource amounts required to
    complete it.  The paper treats [Phi] as a modelling device ("estimates
    could be used and revised as necessary"); here it is a configurable
    table whose defaults are the paper's illustrative constants from
    Section IV:

    - [Phi(a1, send(a2, m))      = {4}_<network, l(a1)->l(a2)>]
    - [Phi(a1, evaluate(e))      = {8}_<cpu, l(a1)>]
    - [Phi(a1, create(b))        = {5}_<cpu, l(a1)>]
    - [Phi(a1, ready(b))         = {1}_<cpu, l(a1)>]
    - [Phi(a1, migrate(l2))      = {3}_<cpu, l(a1)>, {9}_<network, l(a1)->l2>,
                                   {3}_<cpu, l2>]

    (The paper's text prints the migrate transfer cost as [{0}]; we default
    it to [9] — a zero transfer cost is expressible by configuration, and
    zero amounts vanish from requirements either way.)

    [Evaluate] and [Send] costs scale linearly with the action's
    [complexity] / [size] parameter, with the table value as the per-unit
    cost. *)

type t = {
  evaluate_cost : int;  (** CPU per unit of complexity (default 8). *)
  send_cost : int;  (** Network per unit of message size (default 4). *)
  create_cost : int;  (** CPU to create an actor (default 5). *)
  ready_cost : int;  (** CPU to become ready (default 1). *)
  migrate_pack_cost : int;  (** CPU at the source to serialize (default 3). *)
  migrate_transfer_cost : int;  (** Network for the transfer (default 9). *)
  migrate_unpack_cost : int;
      (** CPU at the destination to deserialize (default 3). *)
}

val default : t
(** The paper's constants, as listed above. *)

val uniform : int -> t
(** [uniform c] charges [c] for every table entry — useful for isolating
    structural effects in experiments. *)

val phi :
  t ->
  locate:(Actor_name.t -> Location.t option) ->
  self_location:Location.t ->
  Action.t ->
  Requirement.amount list
(** [phi model ~locate ~self_location action] is [Phi(a, action)] for an
    actor currently at [self_location].  [locate] resolves the current
    location of other actors (message destinations); an unresolvable
    destination defaults to the sender's location, modelling local
    delivery.  Amounts of quantity zero are dropped (they require
    nothing). *)

val pp : Format.formatter -> t -> unit
