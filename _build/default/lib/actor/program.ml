open Import

type t = { name : Actor_name.t; home : Location.t; actions : Action.t list }

let make ~name ~home actions = { name; home; actions }
let length p = List.length p.actions

let is_possible p ~completed i = i = completed && i < length p

let location_trace p =
  let step (loc, acc) action =
    let next =
      match (action : Action.t) with Migrate { dest } -> dest | _ -> loc
    in
    (next, (action, loc) :: acc)
  in
  let _, acc = List.fold_left step (p.home, []) p.actions in
  List.rev acc

let final_location p =
  List.fold_left
    (fun loc action ->
      match (action : Action.t) with Migrate { dest } -> dest | _ -> loc)
    p.home p.actions

let locations_visited p =
  p.home
  :: List.filter_map
       (fun action ->
         match (action : Action.t) with
         | Migrate { dest } -> Some dest
         | _ -> None)
       p.actions

let steps model ~locate p =
  List.map
    (fun (action, loc) -> Cost_model.phi model ~locate ~self_location:loc action)
    (location_trace p)

(* Coalesce runs of consecutive single-amount steps of identical located
   type: the paper's merge optimization. *)
let merge_steps steps =
  let step acc s =
    match (acc, s) with
    | ( [ (prev : Requirement.amount) ] :: rest,
        [ (cur : Requirement.amount) ] )
      when Located_type.equal prev.ltype cur.ltype ->
        [ Requirement.amount prev.ltype (prev.quantity + cur.quantity) ] :: rest
    | _ -> s :: acc
  in
  List.rev (List.fold_left step [] steps)

let to_complex ?(merge = true) model ~locate ~window p =
  let steps = steps model ~locate p in
  let steps = if merge then merge_steps steps else steps in
  Requirement.make_complex ~steps ~window

let equal a b =
  Actor_name.equal a.name b.name
  && Location.equal a.home b.home
  && List.equal Action.equal a.actions b.actions

let pp ppf p =
  Format.fprintf ppf "%a@%a: [%a]" Actor_name.pp p.name Location.pp p.home
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf "; ")
       Action.pp)
    p.actions
