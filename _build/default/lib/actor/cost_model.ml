open Import

type t = {
  evaluate_cost : int;
  send_cost : int;
  create_cost : int;
  ready_cost : int;
  migrate_pack_cost : int;
  migrate_transfer_cost : int;
  migrate_unpack_cost : int;
}

let default =
  {
    evaluate_cost = 8;
    send_cost = 4;
    create_cost = 5;
    ready_cost = 1;
    migrate_pack_cost = 3;
    migrate_transfer_cost = 9;
    migrate_unpack_cost = 3;
  }

let uniform c =
  {
    evaluate_cost = c;
    send_cost = c;
    create_cost = c;
    ready_cost = c;
    migrate_pack_cost = c;
    migrate_transfer_cost = c;
    migrate_unpack_cost = c;
  }

let phi model ~locate ~self_location action =
  let cpu_here q = Requirement.amount (Located_type.cpu self_location) q in
  let amounts =
    match (action : Action.t) with
    | Evaluate { complexity } -> [ cpu_here (model.evaluate_cost * complexity) ]
    | Send { dest; size } ->
        let dst = Option.value (locate dest) ~default:self_location in
        [
          Requirement.amount
            (Located_type.network ~src:self_location ~dst)
            (model.send_cost * size);
        ]
    | Create _ -> [ cpu_here model.create_cost ]
    | Ready -> [ cpu_here model.ready_cost ]
    | Migrate { dest } ->
        [
          cpu_here model.migrate_pack_cost;
          Requirement.amount
            (Located_type.network ~src:self_location ~dst:dest)
            model.migrate_transfer_cost;
          Requirement.amount (Located_type.cpu dest) model.migrate_unpack_cost;
        ]
  in
  List.filter (fun (a : Requirement.amount) -> a.quantity > 0) amounts

let pp ppf m =
  Format.fprintf ppf
    "{evaluate=%d; send=%d; create=%d; ready=%d; migrate=%d/%d/%d}"
    m.evaluate_cost m.send_cost m.create_cost m.ready_cost m.migrate_pack_cost
    m.migrate_transfer_cost m.migrate_unpack_cost
