lib/actor/computation.ml: Actor_name Format Import Interval List Printf Program Requirement String Time
