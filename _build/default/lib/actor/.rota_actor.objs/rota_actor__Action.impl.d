lib/actor/action.ml: Actor_name Format Import Int Location
