lib/actor/actor_name.ml: Format Hashtbl String
