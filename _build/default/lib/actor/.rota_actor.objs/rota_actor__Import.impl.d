lib/actor/import.ml: Rota_interval Rota_resource
