lib/actor/computation.mli: Actor_name Cost_model Format Import Interval Location Program Requirement Time
