lib/actor/program.ml: Action Actor_name Cost_model Format Import List Located_type Location Requirement
