lib/actor/action.mli: Actor_name Format Import Location
