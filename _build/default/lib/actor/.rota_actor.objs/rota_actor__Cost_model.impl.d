lib/actor/cost_model.ml: Action Format Import List Located_type Option Requirement
