lib/actor/cost_model.mli: Action Actor_name Format Import Location Requirement
