lib/actor/actor_name.mli: Format
