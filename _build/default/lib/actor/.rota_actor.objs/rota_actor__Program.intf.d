lib/actor/program.mli: Action Actor_name Cost_model Format Import Interval Location Requirement
