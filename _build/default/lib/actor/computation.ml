open Import

type t = {
  id : string;
  programs : Program.t list;
  start : Time.t;
  deadline : Time.t;
}

let make ~id ~start ~deadline programs =
  if deadline <= start then
    invalid_arg
      (Printf.sprintf "Computation.make %s: deadline %d <= start %d" id
         deadline start);
  let names = List.map (fun (p : Program.t) -> p.name) programs in
  let distinct = List.sort_uniq Actor_name.compare names in
  if List.length distinct <> List.length names then
    invalid_arg (Printf.sprintf "Computation.make %s: duplicate actor names" id);
  { id; programs; start; deadline }

let window c = Interval.of_pair c.start c.deadline
let actor_count c = List.length c.programs

let locate c name =
  List.find_map
    (fun (p : Program.t) ->
      if Actor_name.equal p.name name then Some p.home else None)
    c.programs

let to_concurrent ?merge model c =
  let window = window c in
  let locate = locate c in
  let parts =
    List.map (fun p -> Program.to_complex ?merge model ~locate ~window p)
      c.programs
  in
  Requirement.make_concurrent ~parts ~window

let total_work model c =
  let conc = to_concurrent model c in
  List.fold_left
    (fun acc part -> acc + Requirement.total_quantity_complex part)
    0 conc.Requirement.parts

let equal a b =
  String.equal a.id b.id
  && Time.equal a.start b.start
  && Time.equal a.deadline b.deadline
  && List.equal Program.equal a.programs b.programs

let pp ppf c =
  Format.fprintf ppf "(%s: |Lambda|=%d, s=%a, d=%a)" c.id
    (List.length c.programs) Time.pp c.start Time.pp c.deadline
