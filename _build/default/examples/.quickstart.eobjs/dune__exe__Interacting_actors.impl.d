examples/interacting_actors.ml: Format List Result Rota Rota_actor Rota_interval Rota_resource
