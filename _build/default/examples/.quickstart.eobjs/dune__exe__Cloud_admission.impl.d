examples/cloud_admission.ml: Format List Rota_actor Rota_interval Rota_resource Rota_scheduler
