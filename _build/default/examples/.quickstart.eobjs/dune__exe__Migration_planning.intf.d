examples/migration_planning.mli:
