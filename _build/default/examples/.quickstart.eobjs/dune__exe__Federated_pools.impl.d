examples/federated_pools.ml: Format List Option Result Rota_actor Rota_interval Rota_resource Rota_scheduler String
