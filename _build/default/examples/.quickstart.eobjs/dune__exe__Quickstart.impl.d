examples/quickstart.ml: Format List Rota Rota_actor Rota_interval Rota_resource
