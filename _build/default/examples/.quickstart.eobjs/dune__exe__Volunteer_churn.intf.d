examples/volunteer_churn.mli:
