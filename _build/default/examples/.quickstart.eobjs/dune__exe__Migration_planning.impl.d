examples/migration_planning.ml: Format List Rota Rota_actor Rota_interval Rota_resource
