examples/quickstart.mli:
