examples/interacting_actors.mli:
