examples/volunteer_churn.ml: Format List Rota_scheduler Rota_sim Rota_workload
