examples/cloud_admission.mli:
