examples/federated_pools.mli:
