(* Federated resource encapsulations (CyberOrgs-style).

   The paper leans on CyberOrgs for its complexity story: reasoning "only
   needs to concern itself with resources available inside the
   encapsulation".  The Pool module makes encapsulations first-class: a
   tree of pools, each owning a capacity slice with its own ROTA admission
   controller.  Subdividing delegates residual capacity to a child;
   assimilating a child returns its capacity and transfers its live
   reservations to the parent.

   Here a provider splits its cluster between two tenant organizations,
   each admitting its own jobs against only its own slice; one tenant is
   later dissolved back into the provider.

   Run with: dune exec examples/federated_pools.exe *)

module Interval = Rota_interval.Interval
module Location = Rota_resource.Location
module Located_type = Rota_resource.Located_type
module Term = Rota_resource.Term
module Resource_set = Rota_resource.Resource_set
module Actor_name = Rota_actor.Actor_name
module Action = Rota_actor.Action
module Program = Rota_actor.Program
module Computation = Rota_actor.Computation
module Admission = Rota_scheduler.Admission
module Pool = Rota_scheduler.Pool

let () =
  let n1 = Location.make "n1" and n2 = Location.make "n2" in
  let span = Interval.of_pair 0 80 in
  let capacity =
    Resource_set.of_terms
      [ Term.v 4 span (Located_type.cpu n1); Term.v 4 span (Located_type.cpu n2) ]
  in
  let tree = Pool.root ~name:"provider" capacity in
  Format.printf "Provider capacity: %a@.@." Resource_set.pp capacity;

  (* Delegate half of each node to tenant A, a quarter to tenant B. *)
  let slice rate =
    Resource_set.of_terms
      [ Term.v rate span (Located_type.cpu n1); Term.v rate span (Located_type.cpu n2) ]
  in
  let tree =
    Result.get_ok (Pool.subdivide tree ~parent:"provider" ~name:"tenantA" ~slice:(slice 2))
  in
  let tree =
    Result.get_ok (Pool.subdivide tree ~parent:"provider" ~name:"tenantB" ~slice:(slice 1))
  in
  Format.printf "Pools: %s@." (String.concat ", " (Pool.names tree));
  Format.printf "Provider residual after delegation: %a@.@." Resource_set.pp
    (Pool.residual (Option.get (Pool.find tree "provider")));

  (* Each tenant admits its own jobs, seeing only its slice. *)
  let job ~id ~home ~evals ~deadline =
    Computation.make ~id ~start:0 ~deadline
      [
        Program.make ~name:(Actor_name.make (id ^ ".w")) ~home
          (List.init evals (fun _ -> Action.evaluate 1) @ [ Action.ready ]);
      ]
  in
  let requests =
    [
      ("tenantA", job ~id:"a-batch" ~home:n1 ~evals:3 ~deadline:40);
      ("tenantA", job ~id:"a-rush" ~home:n2 ~evals:2 ~deadline:12);
      ("tenantB", job ~id:"b-batch" ~home:n1 ~evals:3 ~deadline:40);
      (* Tenant B's slice (rate 1) cannot carry this in time. *)
      ("tenantB", job ~id:"b-rush" ~home:n2 ~evals:2 ~deadline:12);
    ]
  in
  let tree =
    List.fold_left
      (fun tree (pool, c) ->
        match Pool.admit tree ~pool ~now:0 c with
        | Ok (tree, outcome) ->
            Format.printf "%-8s in %-8s -> %a@." c.Computation.id pool
              Admission.pp_outcome outcome;
            tree
        | Error e ->
            Format.printf "%-8s in %-8s -> error: %s@." c.Computation.id pool e;
            tree)
      tree requests
  in

  (* Dissolve tenant B: its capacity and its live reservations move back
     into the provider, which can now serve B's rejected job itself. *)
  let tree = Result.get_ok (Pool.assimilate tree ~child:"tenantB") in
  Format.printf "@.After assimilating tenantB: pools = %s@."
    (String.concat ", " (Pool.names tree));
  (match Pool.admit tree ~pool:"provider" ~now:0 (job ~id:"b-rush2" ~home:n2 ~evals:2 ~deadline:12) with
  | Ok (_, outcome) ->
      Format.printf "b-rush2  in provider -> %a@." Admission.pp_outcome outcome
  | Error e -> Format.printf "error: %s@." e);
  Format.printf "@.Provider residual now: %a@." Resource_set.pp
    (Pool.residual (Option.get (Pool.find tree "provider")))
