(* Cloud admission control.

   A small "cloud" of three nodes receives a stream of deadline-constrained
   jobs.  A ROTA admission controller answers each request with Theorem 4:
   admit — and commit a concrete reservation — only if the resources that
   would otherwise expire can carry the job to its deadline without
   touching any existing commitment.

   The example prints each decision, the reservation ledger as it evolves,
   and finishes by showing the residual capacity left for latecomers.

   Run with: dune exec examples/cloud_admission.exe *)

module Interval = Rota_interval.Interval
module Location = Rota_resource.Location
module Located_type = Rota_resource.Located_type
module Term = Rota_resource.Term
module Resource_set = Rota_resource.Resource_set
module Actor_name = Rota_actor.Actor_name
module Action = Rota_actor.Action
module Program = Rota_actor.Program
module Computation = Rota_actor.Computation
module Calendar = Rota_scheduler.Calendar
module Admission = Rota_scheduler.Admission

let () =
  let nodes = List.map Location.make [ "n1"; "n2"; "n3" ] in
  let horizon = Interval.of_pair 0 60 in
  let capacity =
    Resource_set.of_terms
      (List.map (fun n -> Term.v 2 horizon (Located_type.cpu n)) nodes
      @ List.concat_map
          (fun src ->
            List.map
              (fun dst -> Term.v 2 horizon (Located_type.network ~src ~dst))
              nodes)
          nodes)
  in
  let ctrl = ref (Admission.create Admission.Rota capacity) in

  (* A pipeline job: compute at [src], ship the result, finish at [dst]. *)
  let pipeline ~id ~src ~dst ~start ~deadline =
    let producer = Actor_name.make (id ^ ".producer") in
    let consumer = Actor_name.make (id ^ ".consumer") in
    Computation.make ~id ~start ~deadline
      [
        Program.make ~name:producer ~home:src
          [ Action.evaluate 2; Action.send ~dest:consumer ~size:2; Action.ready ];
        Program.make ~name:consumer ~home:dst [ Action.evaluate 1; Action.ready ];
      ]
  in
  let n1, n2, n3 =
    match nodes with [ a; b; c ] -> (a, b, c) | _ -> assert false
  in
  let requests =
    [
      pipeline ~id:"batch-A" ~src:n1 ~dst:n2 ~start:0 ~deadline:30;
      pipeline ~id:"batch-B" ~src:n1 ~dst:n3 ~start:0 ~deadline:30;
      (* Same nodes as batch-A with a tight deadline: contends for n1's cpu. *)
      pipeline ~id:"rush-C" ~src:n1 ~dst:n2 ~start:0 ~deadline:14;
      pipeline ~id:"late-D" ~src:n2 ~dst:n3 ~start:20 ~deadline:55;
      (* Asks for more than the residual can give. *)
      pipeline ~id:"greedy-E" ~src:n1 ~dst:n2 ~start:0 ~deadline:10;
    ]
  in
  List.iter
    (fun (c : Computation.t) ->
      let next, outcome = Admission.request !ctrl ~now:0 c in
      ctrl := next;
      Format.printf "%-9s [%d,%d): %a@." c.Computation.id c.Computation.start
        c.Computation.deadline Admission.pp_outcome outcome)
    requests;

  let calendar = Admission.calendar !ctrl in
  Format.printf "@.Committed reservations:@.";
  List.iter
    (fun (e : Calendar.entry) ->
      Format.printf "  %-9s on %a: %a@." e.Calendar.computation Interval.pp
        e.Calendar.window Resource_set.pp e.Calendar.reservation)
    (Calendar.entries calendar);
  Format.printf "@.Residual capacity for latecomers:@.  %a@." Resource_set.pp
    (Admission.residual !ctrl)
