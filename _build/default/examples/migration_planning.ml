(* Migration planning with ROTA.

   The paper's conclusion sketches the choice it wants computations to be
   able to make: "an actor could continue to execute at its current
   location or migrate elsewhere, carry out part of its computation, and
   then return".  ROTA makes the comparison concrete: express each course
   of action as a program, derive its resource requirements, and ask
   Theorem 2 which plans the available resources can actually carry —
   avoiding "attempting infeasible pursuits".

   Here the actor's home node is busy (little CPU left), while a remote
   node has idle CPU but costs a round trip over the network.

   Run with: dune exec examples/migration_planning.exe *)

module Interval = Rota_interval.Interval
module Location = Rota_resource.Location
module Located_type = Rota_resource.Located_type
module Term = Rota_resource.Term
module Resource_set = Rota_resource.Resource_set
module Requirement = Rota_resource.Requirement
module Actor_name = Rota_actor.Actor_name
module Action = Rota_actor.Action
module Cost_model = Rota_actor.Cost_model
module Program = Rota_actor.Program
module Accommodation = Rota.Accommodation

let () =
  let home = Location.make "home" and remote = Location.make "remote" in
  let window = Interval.of_pair 0 30 in
  (* The home node is nearly saturated — a 1 cpu/tick trickle — while the
     remote node has 2 cpu/tick idle.  Links run at 3/tick both ways. *)
  let theta =
    Resource_set.of_terms
      [
        Term.v 1 window (Located_type.cpu home);
        Term.v 2 window (Located_type.cpu remote);
        Term.v 3 window (Located_type.network ~src:home ~dst:remote);
        Term.v 3 window (Located_type.network ~src:remote ~dst:home);
      ]
  in
  Format.printf "Resources:@.  %a@.@." Resource_set.pp theta;

  let worker = Actor_name.make "worker" in
  (* Plan 1: stay home and grind through the work (two big evaluations:
     32 cpu, plus 1 to become ready — 33 ticks at the trickle rate). *)
  let stay_home =
    Program.make ~name:worker ~home
      [ Action.evaluate 2; Action.evaluate 2; Action.ready ]
  in
  (* Plan 2: migrate to the idle node, compute there at double rate, and
     come back. *)
  let migrate_out =
    Program.make ~name:worker ~home
      [
        Action.migrate remote;
        Action.evaluate 2;
        Action.evaluate 2;
        Action.migrate home;
        Action.ready;
      ]
  in
  let locate _ = None in
  let judge name program =
    let c =
      Program.to_complex Cost_model.default ~locate ~window program
    in
    Format.printf "%s:@.  requirement %a@." name Requirement.pp_complex c;
    match Accommodation.schedule_sequential theta c with
    | Some schedule ->
        let finish =
          List.fold_left
            (fun acc (s : Accommodation.step_allocation) ->
              max acc (Interval.stop s.Accommodation.subwindow))
            0 schedule.Accommodation.steps
        in
        Format.printf "  FEASIBLE — finishes by t=%d@.  %a@.@." finish
          Accommodation.pp_schedule schedule
    | None -> Format.printf "  INFEASIBLE within %a@.@." Interval.pp window
  in
  judge "Plan 1: stay at the busy home node" stay_home;
  judge "Plan 2: migrate to the idle node and return" migrate_out
