(* Interacting actors: request/response workflows under deadlines.

   The paper's future work asks for "the wider range of actor computations
   where actors can interact", breaking an actor's computation into
   independent stretches "separated by states in which it is waiting to
   hear back".  The Session module implements exactly that: participants
   may Await messages, awaits pair with sends, and the schedule respects
   the induced dependencies — or reports a deadlock.

   Here a client calls two services; service B additionally consults
   service A before replying.

   Run with: dune exec examples/interacting_actors.exe *)

module Interval = Rota_interval.Interval
module Location = Rota_resource.Location
module Located_type = Rota_resource.Located_type
module Term = Rota_resource.Term
module Resource_set = Rota_resource.Resource_set
module Actor_name = Rota_actor.Actor_name
module Action = Rota_actor.Action
module Cost_model = Rota_actor.Cost_model
module Session = Rota.Session
module Precedence = Rota.Precedence

let () =
  let l_client = Location.make "client" in
  let l_a = Location.make "svcA" in
  let l_b = Location.make "svcB" in
  let window = Interval.of_pair 0 120 in
  let locations = [ l_client; l_a; l_b ] in
  let theta =
    Resource_set.of_terms
      (List.map (fun l -> Term.v 1 window (Located_type.cpu l)) locations
      @ List.concat_map
          (fun src ->
            List.filter_map
              (fun dst ->
                if Location.equal src dst then None
                else Some (Term.v 2 window (Located_type.network ~src ~dst)))
              locations)
          locations)
  in

  let client = Actor_name.make "client" in
  let svc_a = Actor_name.make "svcA" in
  let svc_b = Actor_name.make "svcB" in

  (* client -> A and client -> B in parallel; B consults A; client joins
     both replies. *)
  let workflow deadline =
    Session.make ~id:"fan-out" ~start:0 ~deadline
      [
        Session.participant ~name:client ~home:l_client
          [
            Session.Act (Action.evaluate 1);
            Session.Act (Action.send ~dest:svc_a ~size:1);
            Session.Act (Action.send ~dest:svc_b ~size:1);
            Session.Await svc_a;
            Session.Await svc_b;
            Session.Act (Action.evaluate 1);
            Session.Act Action.ready;
          ];
        Session.participant ~name:svc_a ~home:l_a
          [
            Session.Await client;
            Session.Act (Action.evaluate 1);
            Session.Act (Action.send ~dest:client ~size:1);
            Session.Await svc_b;
            Session.Act (Action.evaluate 1);
            Session.Act (Action.send ~dest:svc_b ~size:1);
          ];
        Session.participant ~name:svc_b ~home:l_b
          [
            Session.Await client;
            Session.Act (Action.evaluate 1);
            Session.Act (Action.send ~dest:svc_a ~size:1);
            Session.Await svc_a;
            Session.Act (Action.evaluate 1);
            Session.Act (Action.send ~dest:client ~size:1);
          ];
      ]
  in
  let session = Result.get_ok (workflow 120) in
  Format.printf "%a@.@." Session.pp session;
  (match Session.meets_deadline Cost_model.default theta session with
  | Ok placements ->
      Format.printf "Feasible; per-segment schedule:@.";
      List.iter
        (fun (p : Precedence.placement) ->
          Format.printf "  %-9s runs [%d, %d)@." p.Precedence.node
            p.Precedence.started p.Precedence.finished)
        placements;
      Format.printf "  makespan: t=%d@.@." (Precedence.finish_time placements)
  | Error e -> Format.printf "Infeasible: %a@.@." Precedence.pp_error e);

  (* The same workflow with a deadline below the dependency chain's length
     is refused with a reason. *)
  let tight = Result.get_ok (workflow 20) in
  (match Session.meets_deadline Cost_model.default theta tight with
  | Ok _ -> Format.printf "Unexpectedly feasible at deadline 20@."
  | Error e -> Format.printf "At deadline 20: %a@.@." Precedence.pp_error e);

  (* And a deadlocked variant: A and B each await the other's message
     before sending their own.  Detected statically, before any resource
     is committed. *)
  let deadlocked =
    Result.get_ok
      (Session.make ~id:"deadlock" ~start:0 ~deadline:120
         [
           Session.participant ~name:svc_a ~home:l_a
             [ Session.Await svc_b; Session.Act (Action.send ~dest:svc_b ~size:1) ];
           Session.participant ~name:svc_b ~home:l_b
             [ Session.Await svc_a; Session.Act (Action.send ~dest:svc_a ~size:1) ];
         ])
  in
  match Session.meets_deadline Cost_model.default theta deadlocked with
  | Ok _ -> Format.printf "Deadlock missed!@."
  | Error e -> Format.printf "Deadlocked variant: %a@." Precedence.pp_error e
