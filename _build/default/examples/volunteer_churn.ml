(* Volunteer computing under churn.

   An open system in the paper's sense: peers donate CPU for bounded
   stretches of time (declaring on arrival when they will leave), while
   deadline-constrained work keeps arriving.  We replay one randomly
   generated trace under three admission policies and compare what the
   paper predicts:

   - rota       admits only what the expiring resources can carry: zero
                deadline misses, by construction;
   - aggregate  checks only total quantities, so it sometimes admits work
                whose resources arrive in the wrong order — misses;
   - optimistic admits everything and lets processor sharing sort it out —
                the most admissions and the most misses.

   Run with: dune exec examples/volunteer_churn.exe *)

module Scenario = Rota_workload.Scenario
module Trace = Rota_sim.Trace
module Engine = Rota_sim.Engine
module Admission = Rota_scheduler.Admission

let () =
  let params =
    {
      Scenario.default_params with
      seed = 7;
      locations = 4;
      horizon = 240;
      arrivals = 60;
      slack = 1.8;
      cpu_rate = 2;
      net_rate = 2;
      churn_joins = 25;
      churn_rate = (1, 2);
      churn_duration = (15, 50);
    }
  in
  let trace = Scenario.trace params in
  Format.printf
    "Trace: %d events (%d volunteer joins, %d job arrivals), horizon %d@.@."
    (Trace.length trace)
    (List.length (Trace.joins trace))
    (List.length (Trace.arrivals trace))
    (Trace.horizon trace);
  List.iter
    (fun policy ->
      let report = Engine.run ~policy trace in
      Format.printf "%a@." Engine.pp_report report)
    [ Admission.Rota; Admission.Aggregate; Admission.Optimistic ];
  Format.printf
    "@.Note how rota trades admissions for certainty: it admits less than@.\
     optimistic but everything it admits finishes on time.@."
