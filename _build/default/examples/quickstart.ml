(* Quickstart: the paper's core question, end to end.

   "Can we know at time T whether a distributed multi-agent computation A
   can complete its execution by deadline D?"

   We build a two-node system, describe a small actor computation by its
   actions, derive its resource requirements with the paper's cost
   function Phi, and ask ROTA's Theorem-3 procedure for a verdict — with a
   concrete schedule as the certificate when the answer is yes.

   Run with: dune exec examples/quickstart.exe *)

module Interval = Rota_interval.Interval
module Location = Rota_resource.Location
module Located_type = Rota_resource.Located_type
module Term = Rota_resource.Term
module Resource_set = Rota_resource.Resource_set
module Actor_name = Rota_actor.Actor_name
module Action = Rota_actor.Action
module Cost_model = Rota_actor.Cost_model
module Program = Rota_actor.Program
module Computation = Rota_actor.Computation
module Accommodation = Rota.Accommodation

let () =
  (* Two nodes, with CPU at each and a network link between them. *)
  let l1 = Location.make "l1" and l2 = Location.make "l2" in
  let window = Interval.of_pair 0 30 in
  let theta =
    Resource_set.of_terms
      [
        Term.v 1 window (Located_type.cpu l1);
        Term.v 1 window (Located_type.cpu l2);
        Term.v 1 window (Located_type.network ~src:l1 ~dst:l2);
      ]
  in
  Format.printf "Available resources:@.  %a@.@." Resource_set.pp theta;

  (* A two-actor computation: a1 computes at l1 and sends its result to
     a2 at l2, which processes the message. *)
  let a1 = Actor_name.make "a1" and a2 = Actor_name.make "a2" in
  let job deadline =
    Computation.make ~id:"quickstart" ~start:0 ~deadline
      [
        Program.make ~name:a1 ~home:l1
          [ Action.evaluate 1; Action.send ~dest:a2 ~size:1; Action.ready ];
        Program.make ~name:a2 ~home:l2 [ Action.evaluate 1; Action.ready ];
      ]
  in

  (* Phi prices each action (defaults are the paper's constants):
     a1 needs 8+1 cpu@l1 and 4 network l1->l2; a2 needs 8+1 cpu@l2. *)
  let ask deadline =
    let c = job deadline in
    Format.printf "Can %a finish by t=%d?@." Computation.pp c deadline;
    match Accommodation.meets_deadline Cost_model.default theta c with
    | Some schedules ->
        Format.printf "  YES — certified by this schedule:@.";
        List.iter
          (fun (actor, schedule) ->
            Format.printf "  actor %a:@.    %a@." Actor_name.pp actor
              Accommodation.pp_schedule schedule)
          schedules
    | None -> Format.printf "  NO — no breakpoint assignment exists.@."
  in
  ask 30;
  Format.printf "@.";
  (* a1's 9 cpu units at rate 1 cannot finish before t=9, plus the send
     and a2's work: a deadline of 12 is not enough. *)
  ask 12
