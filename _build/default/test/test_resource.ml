(* Tests for the resource algebra: Location, Located_type, Term, Profile,
   Resource_set, Requirement.  Includes the paper's Section III worked
   examples verbatim. *)

open Rota_interval
open Rota_resource

let iv a b = Interval.of_pair a b
let l1 = Location.make "l1"
let l2 = Location.make "l2"
let l3 = Location.make "l3"
let cpu1 = Located_type.cpu l1
let cpu2 = Located_type.cpu l2
let net12 = Located_type.network ~src:l1 ~dst:l2

let profile_testable = Alcotest.testable Profile.pp Profile.equal
let rset_testable = Alcotest.testable Resource_set.pp Resource_set.equal
let ltype_testable = Alcotest.testable Located_type.pp Located_type.equal

(* --- Location / Located_type ------------------------------------------- *)

let test_location () =
  Alcotest.(check string) "name" "l1" (Location.name l1);
  Alcotest.(check bool) "equal" true (Location.equal l1 (Location.make "l1"));
  Alcotest.(check bool) "distinct" false (Location.equal l1 l2);
  Alcotest.(check string) "pp" "l1" (Location.to_string l1);
  Alcotest.check_raises "empty name" (Invalid_argument "Location.make: empty name")
    (fun () -> ignore (Location.make ""))

let test_located_type () =
  Alcotest.(check string) "cpu pp" "<cpu,l1>" (Located_type.to_string cpu1);
  Alcotest.(check string) "network pp" "<network,l1->l2>"
    (Located_type.to_string net12);
  Alcotest.(check string) "memory pp" "<memory,l2>"
    (Located_type.to_string (Located_type.memory l2));
  Alcotest.(check string) "custom pp" "<gpu,l3>"
    (Located_type.to_string (Located_type.custom "gpu" l3));
  Alcotest.(check bool) "equal" true
    (Located_type.equal cpu1 (Located_type.cpu (Location.make "l1")));
  Alcotest.(check bool) "cpu <> memory" false
    (Located_type.equal cpu1 (Located_type.memory l1));
  Alcotest.(check bool) "network direction matters" false
    (Located_type.equal net12 (Located_type.network ~src:l2 ~dst:l1));
  Alcotest.(check string) "kind" "network" (Located_type.kind net12);
  Alcotest.(check (list string)) "locations of network" [ "l1"; "l2" ]
    (List.map Location.name (Located_type.locations net12));
  Alcotest.(check (list string)) "locations of cpu" [ "l1" ]
    (List.map Location.name (Located_type.locations cpu1));
  (* The order is total and antisymmetric across kinds. *)
  let types =
    [ cpu1; cpu2; Located_type.memory l1; net12; Located_type.custom "gpu" l1 ]
  in
  List.iter
    (fun a ->
      List.iter
        (fun b ->
          let c1 = Located_type.compare a b and c2 = Located_type.compare b a in
          Alcotest.(check bool) "antisymmetric" true (compare c1 0 = compare 0 c2))
        types)
    types

(* --- Term ---------------------------------------------------------------- *)

let test_term_basics () =
  let t = Term.v 5 (iv 0 3) cpu1 in
  Alcotest.(check int) "rate" 5 (Term.rate t);
  Alcotest.(check int) "quantity" 15 (Term.quantity t);
  Alcotest.(check string) "pp" "{5}^[0,3)_<cpu,l1>" (Term.to_string t);
  Alcotest.(check bool) "make zero rate" true
    (Option.is_none (Term.make ~rate:0 ~interval:(iv 0 3) ~ltype:cpu1));
  Alcotest.check_raises "v zero rate"
    (Invalid_argument "Term.v: non-positive rate 0") (fun () ->
      ignore (Term.v 0 (iv 0 3) cpu1))

let test_term_order () =
  (* gt: same type, strictly greater rate, containing interval. *)
  let big = Term.v 5 (iv 0 10) cpu1 in
  Alcotest.(check bool) "gt" true (Term.gt big (Term.v 3 (iv 2 5) cpu1));
  Alcotest.(check bool) "ge equal rate" true
    (Term.ge big (Term.v 5 (iv 2 5) cpu1));
  Alcotest.(check bool) "gt equal rate" false
    (Term.gt big (Term.v 5 (iv 2 5) cpu1));
  Alcotest.(check bool) "different type" false
    (Term.gt big (Term.v 3 (iv 2 5) cpu2));
  (* The paper's caveat: larger total quantity is NOT sufficient — the
     interval must contain the needed window. *)
  let plentiful_late = Term.v 100 (iv 5 50) cpu1 in
  let needed_early = Term.v 1 (iv 0 2) cpu1 in
  Alcotest.(check bool) "quantity outside window does not help" false
    (Term.gt plentiful_late needed_early)

(* --- Profile ------------------------------------------------------------- *)

let test_profile_basics () =
  let p = Profile.constant (iv 0 3) 5 in
  Alcotest.(check int) "rate inside" 5 (Profile.rate_at p 1);
  Alcotest.(check int) "rate outside" 0 (Profile.rate_at p 3);
  Alcotest.(check int) "total" 15 (Profile.total p);
  Alcotest.(check bool) "zero constant is empty" true
    (Profile.is_empty (Profile.constant (iv 0 3) 0));
  Alcotest.check_raises "negative constant"
    (Invalid_argument "Profile.constant: negative rate") (fun () ->
      ignore (Profile.constant (iv 0 3) (-1)));
  Alcotest.(check string) "pp empty" "0" (Format.asprintf "%a" Profile.pp Profile.empty);
  Alcotest.(check string) "pp" "5@[0,3)" (Format.asprintf "%a" Profile.pp p)

(* Paper Section III, second worked example:
   {5}^(0,3)_cpu  u  {5}^(0,5)_cpu  =  {10}^(0,3)_cpu , {5}^(3,5)_cpu *)
let test_profile_union_paper_example () =
  let p = Profile.add (Profile.constant (iv 0 3) 5) (Profile.constant (iv 0 5) 5) in
  Alcotest.check profile_testable "aggregated"
    (Profile.of_segments [ (iv 0 3, 10); (iv 3 5, 5) ])
    p;
  let segs = Profile.segments p in
  Alcotest.(check int) "two segments" 2 (List.length segs)

(* Paper Section III, third worked example:
   {5}^(0,3)_cpu \ {3}^(1,2)_cpu = {5}^(0,1) , {2}^(1,2) , {5}^(2,3) *)
let test_profile_sub_paper_example () =
  match Profile.sub (Profile.constant (iv 0 3) 5) (Profile.constant (iv 1 2) 3) with
  | Error _ -> Alcotest.fail "subtraction should be defined"
  | Ok p ->
      Alcotest.check profile_testable "relative complement"
        (Profile.of_segments [ (iv 0 1, 5); (iv 1 2, 2); (iv 2 3, 5) ])
        p;
      Alcotest.(check int) "three segments" 3 (List.length (Profile.segments p))

let test_profile_sub_deficit () =
  match Profile.sub (Profile.constant (iv 0 3) 2) (Profile.constant (iv 2 5) 3) with
  | Ok _ -> Alcotest.fail "expected a deficit"
  | Error d ->
      Alcotest.(check int) "at" 2 d.Profile.at;
      Alcotest.(check int) "available" 2 d.Profile.available;
      Alcotest.(check int) "required" 3 d.Profile.required

let test_profile_coalesce () =
  (* Equal-rate segments that meet reduce to one term (paper's reduction
     remark). *)
  let p = Profile.of_segments [ (iv 0 2, 4); (iv 2 5, 4) ] in
  Alcotest.(check int) "coalesced" 1 (List.length (Profile.segments p));
  Alcotest.check profile_testable "same as constant" (Profile.constant (iv 0 5) 4) p

let test_profile_queries () =
  let p = Profile.of_segments [ (iv 0 3, 5); (iv 5 8, 2) ] in
  Alcotest.(check int) "integrate across gap" 21 (Profile.integrate p (iv 0 8));
  Alcotest.(check int) "integrate window" 9 (Profile.integrate p (iv 2 7));
  Alcotest.(check int) "min_rate gap" 0 (Profile.min_rate p (iv 0 8));
  Alcotest.(check int) "min_rate covered" 5 (Profile.min_rate p (iv 0 3));
  Alcotest.(check int) "max_rate" 5 (Profile.max_rate p);
  Alcotest.(check (option int)) "first" (Some 0) (Profile.first p);
  Alcotest.(check (option int)) "last" (Some 7) (Profile.last p);
  Alcotest.(check (option int)) "horizon" (Some 8) (Profile.horizon p);
  Alcotest.(check (option int)) "empty horizon" None (Profile.horizon Profile.empty);
  Alcotest.check profile_testable "restrict"
    (Profile.of_segments [ (iv 2 3, 5); (iv 5 6, 2) ])
    (Profile.restrict p (iv 2 6));
  Alcotest.check profile_testable "truncate_before"
    (Profile.of_segments [ (iv 2 3, 5); (iv 5 8, 2) ])
    (Profile.truncate_before p 2);
  Alcotest.check profile_testable "shift"
    (Profile.of_segments [ (iv 10 13, 5); (iv 15 18, 2) ])
    (Profile.shift p 10)

let test_profile_completion_time () =
  let p = Profile.of_segments [ (iv 0 3, 5); (iv 5 8, 2) ] in
  (* 5+5 >= 10 after two ticks. *)
  Alcotest.(check (option int)) "fast" (Some 2)
    (Profile.completion_time p ~window:(iv 0 8) ~quantity:10);
  (* 15 from the first segment, then 2 per tick: 15+2 >= 16 at tick 6. *)
  Alcotest.(check (option int)) "across gap" (Some 6)
    (Profile.completion_time p ~window:(iv 0 8) ~quantity:16);
  Alcotest.(check (option int)) "exact capacity" (Some 8)
    (Profile.completion_time p ~window:(iv 0 8) ~quantity:21);
  Alcotest.(check (option int)) "too much" None
    (Profile.completion_time p ~window:(iv 0 8) ~quantity:22);
  Alcotest.(check (option int)) "zero quantity immediate" (Some 0)
    (Profile.completion_time p ~window:(iv 0 8) ~quantity:0);
  Alcotest.(check (option int)) "window restricts" None
    (Profile.completion_time p ~window:(iv 1 3) ~quantity:11)

let test_profile_consume () =
  let p = Profile.of_segments [ (iv 0 3, 5); (iv 5 8, 2) ] in
  (match Profile.consume p ~window:(iv 0 8) ~quantity:7 with
  | None -> Alcotest.fail "consume should succeed"
  | Some (remaining, allocation) ->
      Alcotest.(check int) "allocation quantity" 7 (Profile.total allocation);
      Alcotest.check profile_testable "conservation" p
        (Profile.add remaining allocation);
      (* Greedy: one full tick of 5, then 2 on the second tick. *)
      Alcotest.check profile_testable "greedy shape"
        (Profile.of_segments [ (iv 0 1, 5); (iv 1 2, 2) ])
        allocation);
  Alcotest.(check bool) "consume too much" true
    (Option.is_none (Profile.consume p ~window:(iv 0 8) ~quantity:22));
  (match Profile.consume p ~window:(iv 0 8) ~quantity:0 with
  | Some (remaining, allocation) ->
      Alcotest.check profile_testable "zero leaves all" p remaining;
      Alcotest.(check bool) "zero allocation" true (Profile.is_empty allocation)
  | None -> Alcotest.fail "zero consume succeeds")

let test_profile_terms_roundtrip () =
  let p = Profile.of_segments [ (iv 0 3, 5); (iv 5 8, 2) ] in
  let terms = Profile.to_terms ~ltype:cpu1 p in
  Alcotest.(check int) "two terms" 2 (List.length terms);
  Alcotest.check profile_testable "roundtrip" p (Profile.of_terms terms)

(* --- Profile properties -------------------------------------------------- *)

let rectangles_gen =
  QCheck.Gen.(
    list_size (int_range 0 6)
      (let* a = int_range 0 20 in
       let* d = int_range 1 6 in
       let* r = int_range 1 9 in
       return (iv a (a + d), r)))

let arbitrary_profile =
  QCheck.make
    ~print:(fun rects ->
      Format.asprintf "%a" Profile.pp (Profile.of_segments rects))
    rectangles_gen

let prop_profile_model =
  (* of_segments is extensionally the pointwise sum of rectangles. *)
  QCheck.Test.make ~name:"profile of_segments = pointwise sum" ~count:300
    arbitrary_profile (fun rects ->
      let p = Profile.of_segments rects in
      let expect t =
        List.fold_left
          (fun acc (i, r) -> if Interval.mem t i then acc + r else acc)
          0 rects
      in
      List.for_all (fun t -> Profile.rate_at p t = expect t)
        (List.init 30 Fun.id))

let prop_profile_add_commutative =
  QCheck.Test.make ~name:"profile add commutative" ~count:200
    (QCheck.pair arbitrary_profile arbitrary_profile) (fun (xs, ys) ->
      let p = Profile.of_segments xs and q = Profile.of_segments ys in
      Profile.equal (Profile.add p q) (Profile.add q p))

let prop_profile_add_associative =
  QCheck.Test.make ~name:"profile add associative" ~count:200
    (QCheck.triple arbitrary_profile arbitrary_profile arbitrary_profile)
    (fun (xs, ys, zs) ->
      let p = Profile.of_segments xs
      and q = Profile.of_segments ys
      and r = Profile.of_segments zs in
      Profile.equal
        (Profile.add (Profile.add p q) r)
        (Profile.add p (Profile.add q r)))

let prop_profile_sub_inverse =
  (* (p + q) - q = p: union then relative complement restores the set. *)
  QCheck.Test.make ~name:"profile (p+q)-q = p" ~count:300
    (QCheck.pair arbitrary_profile arbitrary_profile) (fun (xs, ys) ->
      let p = Profile.of_segments xs and q = Profile.of_segments ys in
      match Profile.sub (Profile.add p q) q with
      | Ok r -> Profile.equal r p
      | Error _ -> false)

let prop_profile_dominates_iff_pointwise =
  QCheck.Test.make ~name:"dominates iff pointwise >=" ~count:300
    (QCheck.pair arbitrary_profile arbitrary_profile) (fun (xs, ys) ->
      let p = Profile.of_segments xs and q = Profile.of_segments ys in
      let pointwise =
        List.for_all
          (fun t -> Profile.rate_at p t >= Profile.rate_at q t)
          (List.init 30 Fun.id)
      in
      Profile.dominates p q = pointwise)

let prop_profile_integrate_additive =
  QCheck.Test.make ~name:"integrate additive over add" ~count:200
    (QCheck.pair arbitrary_profile arbitrary_profile) (fun (xs, ys) ->
      let p = Profile.of_segments xs and q = Profile.of_segments ys in
      let w = iv 0 30 in
      Profile.integrate (Profile.add p q) w
      = Profile.integrate p w + Profile.integrate q w)

let prop_profile_consume_invariants =
  QCheck.Test.make ~name:"consume conserves and allocates in window"
    ~count:300
    (QCheck.pair arbitrary_profile (QCheck.int_range 0 40))
    (fun (xs, quantity) ->
      let p = Profile.of_segments xs in
      let window = iv 0 30 in
      match Profile.consume p ~window ~quantity with
      | None ->
          (* Only fails when the window genuinely lacks capacity. *)
          Profile.integrate p window < quantity
      | Some (remaining, allocation) ->
          Profile.equal (Profile.add remaining allocation) p
          && Profile.total allocation = quantity
          && Profile.equal allocation (Profile.restrict allocation window))

let prop_profile_completion_monotone =
  (* completion_time is the earliest satisfying tick: integrating up to one
     tick earlier falls short. *)
  QCheck.Test.make ~name:"completion_time minimal" ~count:300
    (QCheck.pair arbitrary_profile (QCheck.int_range 1 40))
    (fun (xs, quantity) ->
      let p = Profile.of_segments xs in
      let window = iv 0 30 in
      match Profile.completion_time p ~window ~quantity with
      | None -> Profile.integrate p window < quantity
      | Some u ->
          let upto t =
            match Interval.make ~start:0 ~stop:t with
            | None -> 0
            | Some w -> Profile.integrate p w
          in
          upto u >= quantity && upto (Time.pred u) < quantity)

(* --- Resource_set --------------------------------------------------------- *)

(* Paper Section III, first worked example: terms of different located types
   stay separate under union. *)
let test_rset_union_different_types () =
  let theta =
    Resource_set.of_terms
      [ Term.v 5 (iv 0 3) cpu1; Term.v 5 (iv 0 5) net12 ]
  in
  Alcotest.(check int) "two types" 2 (List.length (Resource_set.domain theta));
  Alcotest.(check int) "cpu quantity" 15 (Resource_set.integrate theta cpu1 (iv 0 5));
  Alcotest.(check int) "network quantity" 25
    (Resource_set.integrate theta net12 (iv 0 5))

let test_rset_union_same_type () =
  let theta =
    Resource_set.of_terms [ Term.v 5 (iv 0 3) cpu1; Term.v 5 (iv 0 5) cpu1 ]
  in
  Alcotest.check profile_testable "simplified profile"
    (Profile.of_segments [ (iv 0 3, 10); (iv 3 5, 5) ])
    (Resource_set.find cpu1 theta);
  (* to_terms exposes the simplification as terms. *)
  Alcotest.(check int) "two terms" 2 (List.length (Resource_set.to_terms theta))

let test_rset_diff () =
  let theta = Resource_set.singleton (Term.v 5 (iv 0 3) cpu1) in
  (match Resource_set.diff theta (Resource_set.singleton (Term.v 3 (iv 1 2) cpu1)) with
  | Error _ -> Alcotest.fail "diff should be defined"
  | Ok rest ->
      Alcotest.check profile_testable "paper example"
        (Profile.of_segments [ (iv 0 1, 5); (iv 1 2, 2); (iv 2 3, 5) ])
        (Resource_set.find cpu1 rest));
  (match Resource_set.diff theta (Resource_set.singleton (Term.v 6 (iv 1 2) cpu1)) with
  | Ok _ -> Alcotest.fail "expected deficit"
  | Error d ->
      Alcotest.check ltype_testable "deficit type" cpu1 d.Resource_set.ltype;
      Alcotest.(check int) "deficit amount" 6 d.Resource_set.deficit.Profile.required);
  (* Subtracting a type that is absent entirely. *)
  match Resource_set.diff theta (Resource_set.singleton (Term.v 1 (iv 0 1) cpu2)) with
  | Ok _ -> Alcotest.fail "expected deficit on absent type"
  | Error d -> Alcotest.check ltype_testable "absent type" cpu2 d.Resource_set.ltype

let test_rset_exact_diff_empties () =
  let theta = Resource_set.singleton (Term.v 5 (iv 0 3) cpu1) in
  match Resource_set.diff theta theta with
  | Ok rest -> Alcotest.(check bool) "empty" true (Resource_set.is_empty rest)
  | Error _ -> Alcotest.fail "self diff defined"

let test_rset_queries () =
  let theta =
    Resource_set.of_terms
      [ Term.v 5 (iv 0 3) cpu1; Term.v 2 (iv 5 8) cpu1; Term.v 4 (iv 2 6) net12 ]
  in
  Alcotest.(check int) "total" 15 (Resource_set.integrate theta cpu1 (iv 0 4));
  Alcotest.(check int) "overall total" 37 (Resource_set.total theta);
  Alcotest.(check (option int)) "horizon" (Some 8) (Resource_set.horizon theta);
  Alcotest.(check bool) "mem" true (Resource_set.mem net12 theta);
  Alcotest.(check bool) "not mem" false (Resource_set.mem cpu2 theta);
  let truncated = Resource_set.truncate_before theta 5 in
  Alcotest.(check int) "truncated cpu" 6
    (Resource_set.integrate truncated cpu1 (iv 0 10));
  Alcotest.(check int) "truncated net" 4
    (Resource_set.integrate truncated net12 (iv 0 10));
  let restricted = Resource_set.restrict theta (iv 0 3) in
  Alcotest.(check (option int)) "restricted horizon" (Some 3)
    (Resource_set.horizon restricted);
  Alcotest.(check bool) "empty pp" true
    (String.equal "{}" (Format.asprintf "%a" Resource_set.pp Resource_set.empty))

let test_rset_union_operator () =
  let a = Resource_set.singleton (Term.v 5 (iv 0 3) cpu1) in
  let b = Resource_set.singleton (Term.v 5 (iv 0 5) cpu1) in
  let u = Resource_set.union a b in
  Alcotest.check rset_testable "union = of_terms"
    (Resource_set.of_terms [ Term.v 5 (iv 0 3) cpu1; Term.v 5 (iv 0 5) cpu1 ])
    u

(* --- Requirement ----------------------------------------------------------- *)

let test_requirement_normalization () =
  let s =
    Requirement.make_simple
      ~amounts:
        [
          Requirement.amount cpu1 3;
          Requirement.amount cpu1 2;
          Requirement.amount net12 0;
          Requirement.amount cpu2 1;
        ]
      ~window:(iv 0 5)
  in
  Alcotest.(check int) "distinct types" 2 (List.length s.Requirement.amounts);
  Alcotest.(check (list (pair ltype_testable int))) "aggregated"
    [ (cpu1, 5); (cpu2, 1) ]
    (Requirement.demand_simple s);
  Alcotest.check_raises "negative amount"
    (Invalid_argument "Requirement.amount: negative quantity") (fun () ->
      ignore (Requirement.amount cpu1 (-1)))

let test_requirement_satisfied_simple () =
  let theta =
    Resource_set.of_terms [ Term.v 5 (iv 0 3) cpu1; Term.v 4 (iv 0 5) net12 ]
  in
  let need amounts window =
    Requirement.make_simple ~amounts ~window
  in
  Alcotest.(check bool) "satisfiable" true
    (Requirement.satisfied_simple theta
       (need [ Requirement.amount cpu1 10; Requirement.amount net12 8 ] (iv 0 5)));
  Alcotest.(check bool) "cpu too much" false
    (Requirement.satisfied_simple theta
       (need [ Requirement.amount cpu1 16 ] (iv 0 5)));
  (* Quantity exists but not inside the window. *)
  Alcotest.(check bool) "window matters" false
    (Requirement.satisfied_simple theta
       (need [ Requirement.amount cpu1 10 ] (iv 2 5)));
  Alcotest.(check bool) "empty requirement trivially satisfied" true
    (Requirement.satisfied_simple Resource_set.empty (need [] (iv 0 5)))

let test_requirement_unsatisfied_amounts () =
  let theta = Resource_set.singleton (Term.v 2 (iv 0 3) cpu1) in
  let s =
    Requirement.make_simple
      ~amounts:[ Requirement.amount cpu1 10; Requirement.amount net12 4 ]
      ~window:(iv 0 3)
  in
  match Requirement.unsatisfied_amounts theta s with
  | [ a; b ] ->
      Alcotest.check ltype_testable "first missing" cpu1 a.Requirement.ltype;
      Alcotest.(check int) "cpu residual" 4 a.Requirement.quantity;
      Alcotest.check ltype_testable "second missing" net12 b.Requirement.ltype;
      Alcotest.(check int) "net residual" 4 b.Requirement.quantity
  | other -> Alcotest.failf "expected 2 missing amounts, got %d" (List.length other)

let test_requirement_complex () =
  let c =
    Requirement.make_complex
      ~steps:
        [
          [ Requirement.amount cpu1 8 ];
          [];
          [ Requirement.amount net12 4 ];
          [ Requirement.amount cpu2 3; Requirement.amount cpu2 2 ];
        ]
      ~window:(iv 0 10)
  in
  Alcotest.(check int) "empty step dropped" 3 (Requirement.step_count c);
  Alcotest.(check int) "total quantity" 17 (Requirement.total_quantity_complex c);
  Alcotest.(check (list (pair ltype_testable int))) "aggregate demand"
    [ (cpu1, 8); (cpu2, 5); (net12, 4) ]
    (Requirement.demand_complex c);
  let s = Requirement.simple_of_complex c in
  Alcotest.(check bool) "simple forgets order" true
    (Requirement.equal_simple s
       (Requirement.make_simple
          ~amounts:
            [
              Requirement.amount cpu1 8;
              Requirement.amount cpu2 5;
              Requirement.amount net12 4;
            ]
          ~window:(iv 0 10)));
  let back = Requirement.complex_of_simple s in
  Alcotest.(check int) "one step" 1 (Requirement.step_count back)

let test_requirement_concurrent () =
  let part window =
    Requirement.make_complex ~steps:[ [ Requirement.amount cpu1 2 ] ] ~window
  in
  let conc =
    Requirement.make_concurrent
      ~parts:[ part (iv 0 3); part (iv 5 9) ]
      ~window:(iv 0 10)
  in
  (* Part windows are overridden by the common window. *)
  List.iter
    (fun (p : Requirement.complex) ->
      Alcotest.(check bool) "window overridden" true
        (Interval.equal p.Requirement.window (iv 0 10)))
    conc.Requirement.parts

(* Monotonicity: adding resources never falsifies satisfaction. *)
let prop_requirement_monotone =
  QCheck.Test.make ~name:"satisfied_simple monotone in Theta" ~count:300
    (QCheck.triple arbitrary_profile arbitrary_profile (QCheck.int_range 0 30))
    (fun (xs, ys, quantity) ->
      let theta = Resource_set.of_terms
          (Profile.to_terms ~ltype:cpu1 (Profile.of_segments xs))
      in
      let extra = Resource_set.of_terms
          (Profile.to_terms ~ltype:cpu1 (Profile.of_segments ys))
      in
      let s =
        Requirement.make_simple
          ~amounts:[ Requirement.amount cpu1 quantity ]
          ~window:(iv 0 30)
      in
      (* If satisfied with fewer resources, still satisfied with more. *)
      (not (Requirement.satisfied_simple theta s))
      || Requirement.satisfied_simple (Resource_set.union theta extra) s)

let properties =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_profile_model;
      prop_profile_add_commutative;
      prop_profile_add_associative;
      prop_profile_sub_inverse;
      prop_profile_dominates_iff_pointwise;
      prop_profile_integrate_additive;
      prop_profile_consume_invariants;
      prop_profile_completion_monotone;
      prop_requirement_monotone;
    ]

let () =
  Alcotest.run "rota_resource"
    [
      ( "location",
        [
          Alcotest.test_case "location" `Quick test_location;
          Alcotest.test_case "located_type" `Quick test_located_type;
        ] );
      ( "term",
        [
          Alcotest.test_case "basics" `Quick test_term_basics;
          Alcotest.test_case "order" `Quick test_term_order;
        ] );
      ( "profile",
        [
          Alcotest.test_case "basics" `Quick test_profile_basics;
          Alcotest.test_case "union (paper ex. 2)" `Quick
            test_profile_union_paper_example;
          Alcotest.test_case "sub (paper ex. 3)" `Quick
            test_profile_sub_paper_example;
          Alcotest.test_case "sub deficit" `Quick test_profile_sub_deficit;
          Alcotest.test_case "coalesce" `Quick test_profile_coalesce;
          Alcotest.test_case "queries" `Quick test_profile_queries;
          Alcotest.test_case "completion_time" `Quick test_profile_completion_time;
          Alcotest.test_case "consume" `Quick test_profile_consume;
          Alcotest.test_case "terms roundtrip" `Quick test_profile_terms_roundtrip;
        ] );
      ( "resource_set",
        [
          Alcotest.test_case "union across types (paper ex. 1)" `Quick
            test_rset_union_different_types;
          Alcotest.test_case "union same type (paper ex. 2)" `Quick
            test_rset_union_same_type;
          Alcotest.test_case "diff (paper ex. 3)" `Quick test_rset_diff;
          Alcotest.test_case "self diff empties" `Quick test_rset_exact_diff_empties;
          Alcotest.test_case "queries" `Quick test_rset_queries;
          Alcotest.test_case "union operator" `Quick test_rset_union_operator;
        ] );
      ( "requirement",
        [
          Alcotest.test_case "normalization" `Quick test_requirement_normalization;
          Alcotest.test_case "satisfied_simple (f)" `Quick
            test_requirement_satisfied_simple;
          Alcotest.test_case "unsatisfied_amounts" `Quick
            test_requirement_unsatisfied_amounts;
          Alcotest.test_case "complex" `Quick test_requirement_complex;
          Alcotest.test_case "concurrent" `Quick test_requirement_concurrent;
        ] );
      ("properties", properties);
    ]
