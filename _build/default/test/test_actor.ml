(* Tests for the actor layer: actions, the cost function Phi (paper
   Section IV's constants), programs with location threading and the
   consecutive-same-type merge, and computations (Lambda, s, d). *)

open Rota_interval
open Rota_resource
open Rota_actor

let iv a b = Interval.of_pair a b
let l1 = Location.make "l1"
let l2 = Location.make "l2"
let l3 = Location.make "l3"
let cpu l = Located_type.cpu l
let net src dst = Located_type.network ~src ~dst
let a1 = Actor_name.make "a1"
let a2 = Actor_name.make "a2"
let ltype_testable = Alcotest.testable Located_type.pp Located_type.equal

let amounts_testable =
  Alcotest.(list (pair ltype_testable int))

let amounts l =
  List.map (fun (a : Requirement.amount) -> (a.Requirement.ltype, a.Requirement.quantity)) l

(* --- Actor_name / Action ----------------------------------------------- *)

let test_actor_name () =
  Alcotest.(check string) "name" "a1" (Actor_name.name a1);
  Alcotest.(check bool) "equal" true (Actor_name.equal a1 (Actor_name.make "a1"));
  Alcotest.(check bool) "distinct" false (Actor_name.equal a1 a2);
  Alcotest.check_raises "empty" (Invalid_argument "Actor_name.make: empty name")
    (fun () -> ignore (Actor_name.make ""))

let test_action_constructors () =
  Alcotest.(check string) "evaluate pp" "evaluate(2)"
    (Action.to_string (Action.evaluate 2));
  Alcotest.(check string) "send pp" "send(a2,3)"
    (Action.to_string (Action.send ~dest:a2 ~size:3));
  Alcotest.(check string) "create pp" "create(a2)"
    (Action.to_string (Action.create a2));
  Alcotest.(check string) "ready pp" "ready" (Action.to_string Action.ready);
  Alcotest.(check string) "migrate pp" "migrate(l2)"
    (Action.to_string (Action.migrate l2));
  Alcotest.check_raises "zero complexity"
    (Invalid_argument "Action.evaluate: complexity < 1") (fun () ->
      ignore (Action.evaluate 0));
  Alcotest.check_raises "zero size" (Invalid_argument "Action.send: size < 1")
    (fun () -> ignore (Action.send ~dest:a2 ~size:0));
  Alcotest.(check string) "kind" "migrate" (Action.kind (Action.migrate l2));
  (* compare is a total order with equal = 0. *)
  let actions =
    [ Action.evaluate 1; Action.send ~dest:a2 ~size:1; Action.create a2;
      Action.ready; Action.migrate l2 ]
  in
  List.iter
    (fun a ->
      List.iter
        (fun b ->
          let c1 = Action.compare a b and c2 = Action.compare b a in
          Alcotest.(check bool) "antisymmetric" true (compare c1 0 = compare 0 c2);
          Alcotest.(check bool) "equal iff zero" (Action.equal a b) (c1 = 0))
        actions)
    actions

(* --- Cost_model: the paper's Section IV constants ------------------------ *)

let locate_a2_at_l2 name = if Actor_name.equal name a2 then Some l2 else None

let phi action =
  amounts (Cost_model.phi Cost_model.default ~locate:locate_a2_at_l2 ~self_location:l1 action)

let test_phi_paper_constants () =
  (* Phi(a1, send(a2, m)) = {4}_<network, l(a1)->l(a2)> *)
  Alcotest.check amounts_testable "send" [ (net l1 l2, 4) ]
    (phi (Action.send ~dest:a2 ~size:1));
  (* Phi(a1, evaluate(e)) = {8}_<cpu, l(a1)> *)
  Alcotest.check amounts_testable "evaluate" [ (cpu l1, 8) ]
    (phi (Action.evaluate 1));
  (* Phi(a1, create(b)) = {5}_<cpu, l(a1)> *)
  Alcotest.check amounts_testable "create" [ (cpu l1, 5) ]
    (phi (Action.create a2));
  (* Phi(a1, ready(b)) = {1}_<cpu, l(a1)> *)
  Alcotest.check amounts_testable "ready" [ (cpu l1, 1) ] (phi Action.ready);
  (* Phi(a1, migrate(l2)) = {3}_cpu@l1, {9}_net l1->l2, {3}_cpu@l2 *)
  Alcotest.check amounts_testable "migrate"
    [ (cpu l1, 3); (net l1 l2, 9); (cpu l2, 3) ]
    (phi (Action.migrate l2))

let test_phi_scaling_and_defaults () =
  Alcotest.check amounts_testable "evaluate scales" [ (cpu l1, 24) ]
    (phi (Action.evaluate 3));
  Alcotest.check amounts_testable "send scales" [ (net l1 l2, 8) ]
    (phi (Action.send ~dest:a2 ~size:2));
  (* Unknown destination defaults to local delivery. *)
  let unknown = Actor_name.make "ghost" in
  Alcotest.check amounts_testable "unknown dest is local"
    [ (net l1 l1, 4) ]
    (phi (Action.send ~dest:unknown ~size:1));
  (* Zero-cost entries vanish. *)
  let free = { (Cost_model.uniform 1) with Cost_model.migrate_transfer_cost = 0 } in
  let a = Cost_model.phi free ~locate:locate_a2_at_l2 ~self_location:l1 (Action.migrate l2) in
  Alcotest.(check int) "zero amounts dropped" 2 (List.length a);
  (* uniform sets every field. *)
  let u = Cost_model.uniform 7 in
  Alcotest.(check int) "uniform" 7 u.Cost_model.evaluate_cost;
  Alcotest.(check int) "uniform send" 7 u.Cost_model.send_cost;
  Alcotest.(check bool) "pp prints" true
    (String.length (Format.asprintf "%a" Cost_model.pp u) > 0)

(* --- Program ------------------------------------------------------------- *)

let roaming =
  Program.make ~name:a1 ~home:l1
    [
      Action.evaluate 1;
      Action.migrate l2;
      Action.evaluate 1;
      Action.migrate l3;
      Action.ready;
    ]

let test_program_location_threading () =
  Alcotest.(check int) "length" 5 (Program.length roaming);
  let trace = Program.location_trace roaming in
  let locs = List.map (fun (_, l) -> Location.name l) trace in
  (* Each action is charged where the actor is when it takes it: the
     migrate itself is charged at the pre-move location. *)
  Alcotest.(check (list string)) "locations" [ "l1"; "l1"; "l2"; "l2"; "l3" ] locs;
  Alcotest.(check string) "final" "l3" (Location.name (Program.final_location roaming));
  Alcotest.(check (list string)) "visited" [ "l1"; "l2"; "l3" ]
    (List.map Location.name (Program.locations_visited roaming))

let test_program_possible_action () =
  (* Definition 1: an action is possible iff all its predecessors are
     complete — i.e. it is exactly the next one. *)
  Alcotest.(check bool) "first is possible" true
    (Program.is_possible roaming ~completed:0 0);
  Alcotest.(check bool) "later is not" false
    (Program.is_possible roaming ~completed:0 2);
  Alcotest.(check bool) "next after two" true
    (Program.is_possible roaming ~completed:2 2);
  Alcotest.(check bool) "already done is not" false
    (Program.is_possible roaming ~completed:3 2);
  Alcotest.(check bool) "past the end is not" false
    (Program.is_possible roaming ~completed:5 5)

let test_program_steps_and_merge () =
  let p =
    Program.make ~name:a1 ~home:l1
      [ Action.evaluate 1; Action.ready; Action.send ~dest:a2 ~size:1;
        Action.evaluate 1 ]
  in
  let locate = locate_a2_at_l2 in
  let unmerged =
    Program.to_complex ~merge:false Cost_model.default ~locate ~window:(iv 0 50) p
  in
  Alcotest.(check int) "one step per action" 4 (Requirement.step_count unmerged);
  let merged =
    Program.to_complex Cost_model.default ~locate ~window:(iv 0 50) p
  in
  (* evaluate+ready (both cpu@l1) merge; send and the last evaluate stay. *)
  Alcotest.(check int) "merged steps" 3 (Requirement.step_count merged);
  (match merged.Requirement.steps with
  | first :: _ ->
      Alcotest.check amounts_testable "merged quantities" [ (cpu l1, 9) ]
        (amounts first)
  | [] -> Alcotest.fail "steps expected");
  (* Merging never changes the aggregate demand. *)
  Alcotest.(check amounts_testable) "same totals"
    (Requirement.demand_complex unmerged)
    (Requirement.demand_complex merged);
  (* A migrate step (multiple types) never merges with its neighbours. *)
  let m =
    Program.to_complex Cost_model.default ~locate ~window:(iv 0 50) roaming
  in
  Alcotest.(check int) "migrates kept separate" 5 (Requirement.step_count m)

(* --- Computation ----------------------------------------------------------- *)

let test_computation_validation () =
  Alcotest.check_raises "empty window"
    (Invalid_argument "Computation.make c: deadline 5 <= start 5") (fun () ->
      ignore (Computation.make ~id:"c" ~start:5 ~deadline:5 []));
  Alcotest.check_raises "duplicate actors"
    (Invalid_argument "Computation.make c: duplicate actor names") (fun () ->
      ignore
        (Computation.make ~id:"c" ~start:0 ~deadline:5
           [ Program.make ~name:a1 ~home:l1 []; Program.make ~name:a1 ~home:l2 [] ]))

let test_computation_locate_and_requirements () =
  let c =
    Computation.make ~id:"c" ~start:2 ~deadline:20
      [
        Program.make ~name:a1 ~home:l1 [ Action.send ~dest:a2 ~size:1 ];
        Program.make ~name:a2 ~home:l2 [ Action.evaluate 1 ];
      ]
  in
  Alcotest.(check int) "actors" 2 (Computation.actor_count c);
  Alcotest.(check (option string)) "locate a2" (Some "l2")
    (Option.map Location.name (Computation.locate c a2));
  Alcotest.(check (option string)) "locate unknown" None
    (Option.map Location.name (Computation.locate c (Actor_name.make "zz")));
  let conc = Computation.to_concurrent Cost_model.default c in
  Alcotest.(check int) "two parts" 2 (List.length conc.Requirement.parts);
  (* The send is priced across the actual homes. *)
  (match conc.Requirement.parts with
  | [ p1; _ ] ->
      Alcotest.check amounts_testable "a1's send" [ (net l1 l2, 4) ]
        (List.map (fun (xi, q) -> (xi, q)) (Requirement.demand_complex p1))
  | _ -> Alcotest.fail "two parts");
  Alcotest.(check int) "total work" 12 (Computation.total_work Cost_model.default c);
  Alcotest.(check bool) "window" true
    (Interval.equal (Computation.window c) (iv 2 20));
  Alcotest.(check bool) "equal reflexive" true (Computation.equal c c)

(* Phi is deterministic and positive on every action/location pair. *)
let prop_phi_positive =
  QCheck.Test.make ~name:"phi yields positive amounts" ~count:300
    QCheck.(int_range 0 10_000)
    (fun seed ->
      let prng = Rota_workload.Prng.create seed in
      let world = Rota_workload.Gen.world ~locations:3 () in
      let p =
        Rota_workload.Gen.random_program prng world ~name:a1 ~peers:[ a2 ]
          ~actions:5
      in
      List.for_all
        (fun (action, here) ->
          List.for_all
            (fun (a : Requirement.amount) -> a.Requirement.quantity > 0)
            (Cost_model.phi Cost_model.default
               ~locate:(fun _ -> None)
               ~self_location:here action))
        (Program.location_trace p))

let properties = List.map QCheck_alcotest.to_alcotest [ prop_phi_positive ]

let () =
  Alcotest.run "rota_actor"
    [
      ( "names_actions",
        [
          Alcotest.test_case "actor names" `Quick test_actor_name;
          Alcotest.test_case "actions" `Quick test_action_constructors;
        ] );
      ( "cost_model",
        [
          Alcotest.test_case "paper constants (Section IV)" `Quick
            test_phi_paper_constants;
          Alcotest.test_case "scaling and defaults" `Quick
            test_phi_scaling_and_defaults;
        ] );
      ( "program",
        [
          Alcotest.test_case "location threading" `Quick
            test_program_location_threading;
          Alcotest.test_case "possible action (Definition 1)" `Quick
            test_program_possible_action;
          Alcotest.test_case "steps and merge" `Quick test_program_steps_and_merge;
        ] );
      ( "computation",
        [
          Alcotest.test_case "validation" `Quick test_computation_validation;
          Alcotest.test_case "locate and requirements" `Quick
            test_computation_locate_and_requirements;
        ] );
      ("properties", properties);
    ]
