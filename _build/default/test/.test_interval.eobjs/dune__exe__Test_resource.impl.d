test/test_resource.ml: Alcotest Format Fun Interval List Located_type Location Option Profile QCheck QCheck_alcotest Requirement Resource_set Rota_interval Rota_resource String Term Time
