test/test_actor.mli:
