test/test_interval.ml: Alcotest Allen Array Format Gen Hashtbl Ia_network Int Interval Interval_set List Option Printf QCheck QCheck_alcotest Rota_interval String Test Time
