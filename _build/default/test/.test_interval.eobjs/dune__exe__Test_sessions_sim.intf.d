test/test_sessions_sim.mli:
