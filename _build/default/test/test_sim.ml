(* Tests for the simulator: Event_queue, Trace, Engine — including the
   headline deadline-assurance invariant: computations admitted by the ROTA
   policy never miss their deadlines. *)

open Rota_interval
open Rota_resource
open Rota_actor
open Rota_scheduler
open Rota_sim

let iv a b = Interval.of_pair a b
let l1 = Location.make "l1"
let l2 = Location.make "l2"
let cpu1 = Located_type.cpu l1
let rset = Resource_set.of_terms
let a1 = Actor_name.make "a1"

let one_actor_job ~id ~start ~deadline actions =
  Computation.make ~id ~start ~deadline [ Program.make ~name:a1 ~home:l1 actions ]

(* --- Event_queue ------------------------------------------------------- *)

let test_eq_order () =
  let q = Event_queue.create () in
  Alcotest.(check bool) "empty" true (Event_queue.is_empty q);
  Event_queue.add q ~time:5 "e5";
  Event_queue.add q ~time:1 "e1";
  Event_queue.add q ~time:3 "e3a";
  Event_queue.add q ~time:3 "e3b";
  Alcotest.(check int) "length" 4 (Event_queue.length q);
  Alcotest.(check (option int)) "peek" (Some 1) (Event_queue.peek_time q);
  let drained = Event_queue.to_sorted_list q in
  Alcotest.(check (list (pair int string))) "sorted, FIFO ties"
    [ (1, "e1"); (3, "e3a"); (3, "e3b"); (5, "e5") ]
    drained;
  Alcotest.(check int) "queue untouched" 4 (Event_queue.length q);
  Alcotest.(check (list (pair int string))) "pop_until 3"
    [ (1, "e1"); (3, "e3a"); (3, "e3b") ]
    (Event_queue.pop_until q 3);
  Alcotest.(check int) "one left" 1 (Event_queue.length q);
  Alcotest.(check (option (pair int string))) "pop last" (Some (5, "e5"))
    (Event_queue.pop q);
  Alcotest.(check (option (pair int string))) "pop empty" None (Event_queue.pop q)

let prop_eq_sorted =
  QCheck.Test.make ~name:"event_queue drains sorted and stable" ~count:300
    QCheck.(list (pair (int_range 0 50) small_nat))
    (fun events ->
      let q = Event_queue.of_list events in
      let out = Event_queue.to_sorted_list q in
      let expected =
        List.stable_sort (fun (t1, _) (t2, _) -> compare t1 t2) events
      in
      out = expected)

(* --- Trace -------------------------------------------------------------- *)

let test_trace_basics () =
  let c = one_actor_job ~id:"c" ~start:4 ~deadline:9 [ Action.ready ] in
  let t =
    Trace.of_events
      [
        (4, Trace.Arrive c);
        (0, Trace.Join (rset [ Term.v 1 (iv 0 12) cpu1 ]));
      ]
  in
  Alcotest.(check int) "length" 2 (Trace.length t);
  (match Trace.events t with
  | (0, Trace.Join _) :: (4, Trace.Arrive _) :: [] -> ()
  | _ -> Alcotest.fail "events not sorted");
  Alcotest.(check int) "one arrival" 1 (List.length (Trace.arrivals t));
  Alcotest.(check int) "one join" 1 (List.length (Trace.joins t));
  (* Horizon covers both the join's availability and the deadline. *)
  Alcotest.(check int) "horizon" 12 (Trace.horizon t);
  Alcotest.(check int) "empty horizon" 0 (Trace.horizon (Trace.of_events []));
  let t2 = Trace.merge t (Trace.initial_capacity (rset [ Term.v 1 (iv 0 20) cpu1 ])) in
  Alcotest.(check int) "merged" 3 (Trace.length t2);
  Alcotest.(check int) "merged horizon" 20 (Trace.horizon t2)

(* --- Engine: hand-built scenarios ----------------------------------------- *)

(* evaluate(1); ready = 9 cpu total at l1. *)
let job ~id ~start ~deadline =
  one_actor_job ~id ~start ~deadline [ Action.evaluate 1; Action.ready ]

let capacity rate stop = rset [ Term.v rate (iv 0 stop) cpu1 ]

let run_jobs ~policy ~rate ~stop jobs =
  let events =
    (0, Trace.Join (capacity rate stop))
    :: List.map
         (fun (j : Computation.t) -> (j.Computation.start, Trace.Arrive j))
         jobs
  in
  Engine.run ~policy (Trace.of_events events)

let test_engine_single_job () =
  let report = run_jobs ~policy:Admission.Rota ~rate:1 ~stop:20 [ job ~id:"j" ~start:0 ~deadline:12 ] in
  Alcotest.(check int) "offered" 1 report.Engine.offered;
  Alcotest.(check int) "admitted" 1 report.Engine.admitted;
  Alcotest.(check int) "on time" 1 report.Engine.completed_on_time;
  Alcotest.(check int) "missed" 0 report.Engine.missed_deadlines;
  (match report.Engine.outcomes with
  | [ o ] ->
      Alcotest.(check (option int)) "finished at 9" (Some 9) o.Engine.finished
  | _ -> Alcotest.fail "one outcome expected");
  Alcotest.(check int) "consumed the 9 units" 9 report.Engine.consumed_total

let test_engine_rota_rejects_overload () =
  (* Two 9-unit jobs, both deadline 12, rate 1: only one fits. *)
  let jobs = [ job ~id:"j1" ~start:0 ~deadline:12; job ~id:"j2" ~start:0 ~deadline:12 ] in
  let report = run_jobs ~policy:Admission.Rota ~rate:1 ~stop:20 jobs in
  Alcotest.(check int) "one admitted" 1 report.Engine.admitted;
  Alcotest.(check int) "one rejected" 1 report.Engine.rejected;
  Alcotest.(check int) "no misses" 0 report.Engine.missed_deadlines;
  Alcotest.(check int) "one on time" 1 report.Engine.completed_on_time

let test_engine_optimistic_misses () =
  (* The same overload under optimistic admission: both admitted, shared
     dispatch splits the single cpu, neither finishes 9 units by 12 ...
     actually each gets ~4.5/9 by t=9; both miss. *)
  let jobs = [ job ~id:"j1" ~start:0 ~deadline:12; job ~id:"j2" ~start:0 ~deadline:12 ] in
  let report = run_jobs ~policy:Admission.Optimistic ~rate:1 ~stop:20 jobs in
  Alcotest.(check int) "both admitted" 2 report.Engine.admitted;
  Alcotest.(check bool) "misses happen" true (report.Engine.missed_deadlines >= 1)

let test_engine_aggregate_order_miss () =
  (* Aggregate admits an order-infeasible job (cpu then net, net early
     only); it must then miss at runtime. *)
  let peer = Actor_name.make "peer" in
  let net12 = Located_type.network ~src:l1 ~dst:l2 in
  let c =
    Computation.make ~id:"ordered" ~start:0 ~deadline:9
      [
        Program.make ~name:a1 ~home:l1
          [ Action.evaluate 1; Action.send ~dest:peer ~size:1 ];
        Program.make ~name:peer ~home:l2 [];
      ]
  in
  let cap = rset [ Term.v 1 (iv 0 8) cpu1; Term.v 1 (iv 0 9) net12 ] in
  let trace = Trace.of_events [ (0, Trace.Join cap); (0, Trace.Arrive c) ] in
  let agg = Engine.run ~policy:Admission.Aggregate trace in
  Alcotest.(check int) "aggregate admits" 1 agg.Engine.admitted;
  Alcotest.(check int) "and misses" 1 agg.Engine.missed_deadlines;
  let rota = Engine.run ~policy:Admission.Rota trace in
  Alcotest.(check int) "rota rejects" 1 rota.Engine.rejected;
  Alcotest.(check int) "rota never misses" 0 rota.Engine.missed_deadlines

let test_engine_churn_join_enables () =
  (* The job only fits thanks to a later resource join. *)
  let j = job ~id:"late-cap" ~start:5 ~deadline:20 in
  let trace =
    Trace.of_events
      [
        (0, Trace.Join (rset [ Term.v 1 (iv 0 4) cpu1 ]));
        (5, Trace.Join (rset [ Term.v 1 (iv 5 20) cpu1 ]));
        (5, Trace.Arrive j);
      ]
  in
  let report = Engine.run ~policy:Admission.Rota trace in
  Alcotest.(check int) "admitted" 1 report.Engine.admitted;
  Alcotest.(check int) "on time" 1 report.Engine.completed_on_time

let test_engine_workless_job () =
  let c = Computation.make ~id:"empty" ~start:0 ~deadline:5 [] in
  let trace = Trace.of_events [ (0, Trace.Arrive c) ] in
  let report = Engine.run ~policy:Admission.Rota trace in
  Alcotest.(check int) "admitted" 1 report.Engine.admitted;
  Alcotest.(check int) "on time" 1 report.Engine.completed_on_time

let test_engine_report_helpers () =
  let report = run_jobs ~policy:Admission.Rota ~rate:1 ~stop:20 [ job ~id:"j" ~start:0 ~deadline:12 ] in
  Alcotest.(check bool) "utilization in (0,1]" true
    (Engine.utilization report > 0. && Engine.utilization report <= 1.);
  Alcotest.(check (float 0.0001)) "goodput" 1.0 (Engine.goodput report);
  let line = Format.asprintf "%a" Engine.pp_report report in
  Alcotest.(check bool) "report line mentions policy" true
    (String.length line > 0)

(* --- The deadline-assurance invariant -------------------------------------- *)

(* For any random open-system scenario, the ROTA policies admit only what
   they can schedule, and the reservation-driven runtime finishes every
   admitted computation by its deadline. *)
let prop_rota_deadline_assurance =
  let open QCheck in
  Test.make ~name:"rota admissions never miss deadlines" ~count:25
    (pair (int_range 0 1000) (int_range 1 4))
    (fun (seed, load_quarters) ->
      let params =
        {
          Rota_workload.Scenario.default_params with
          seed;
          horizon = 100;
          arrivals = 8 * load_quarters;
          locations = 2;
        }
      in
      let trace = Rota_workload.Scenario.trace params in
      List.for_all
        (fun policy ->
          let report = Engine.run ~policy trace in
          report.Engine.missed_deadlines = 0)
        [ Admission.Rota; Admission.Rota_unmerged; Admission.Rota_given_order ])

(* Baselines admit at least as much as ROTA (they skip the ordering check),
   and optimistic admits everything not yet expired. *)
let prop_baselines_admit_more =
  let open QCheck in
  Test.make ~name:"optimistic admits a superset" ~count:15
    (int_range 0 1000)
    (fun seed ->
      let params =
        {
          Rota_workload.Scenario.default_params with
          seed;
          horizon = 80;
          arrivals = 12;
          locations = 2;
        }
      in
      let trace = Rota_workload.Scenario.trace params in
      let rota = Engine.run ~policy:Admission.Rota trace in
      let opt = Engine.run ~policy:Admission.Optimistic trace in
      opt.Engine.admitted >= rota.Engine.admitted)

let properties =
  List.map QCheck_alcotest.to_alcotest
    [ prop_eq_sorted; prop_rota_deadline_assurance; prop_baselines_admit_more ]

let () =
  Alcotest.run "rota_sim"
    [
      ("event_queue", [ Alcotest.test_case "order" `Quick test_eq_order ]);
      ("trace", [ Alcotest.test_case "basics" `Quick test_trace_basics ]);
      ( "engine",
        [
          Alcotest.test_case "single job" `Quick test_engine_single_job;
          Alcotest.test_case "rota rejects overload" `Quick
            test_engine_rota_rejects_overload;
          Alcotest.test_case "optimistic misses" `Quick
            test_engine_optimistic_misses;
          Alcotest.test_case "aggregate order miss" `Quick
            test_engine_aggregate_order_miss;
          Alcotest.test_case "churn join enables" `Quick
            test_engine_churn_join_enables;
          Alcotest.test_case "workless job" `Quick test_engine_workless_job;
          Alcotest.test_case "report helpers" `Quick test_engine_report_helpers;
        ] );
      ("properties", properties);
    ]
