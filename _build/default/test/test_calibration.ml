(* Tests for cost-model calibration: mispriced admission misses deadlines,
   the consumed+owed signal recovers the exact ratio, and the closed loop
   converges. *)

open Rota_interval
open Rota_resource
open Rota_actor
open Rota_scheduler
open Rota_sim

let iv a b = Interval.of_pair a b
let l1 = Location.make "l1"
let cpu1 = Located_type.cpu l1
let rset = Resource_set.of_terms
let a1 = Actor_name.make "a1"

let job ~id ~deadline =
  Computation.make ~id ~start:0 ~deadline
    [ Program.make ~name:a1 ~home:l1 [ Action.evaluate 1; Action.ready ] ]

let trace ~stop jobs =
  Trace.of_events
    ((0, Trace.Join (rset [ Term.v 1 (iv 0 stop) cpu1 ]))
    :: List.map (fun j -> (0, Trace.Arrive j)) jobs)

(* Uniformly double every CPU-priced field: the per-kind model class the
   estimator fits exactly.  (A non-uniform error — say only [evaluate]
   doubled — calibrates approximately, not exactly: the learned ratio is a
   blend over the action mix.) *)
let double_cpu (m : Cost_model.t) =
  {
    m with
    Cost_model.evaluate_cost = 2 * m.Cost_model.evaluate_cost;
    create_cost = 2 * m.Cost_model.create_cost;
    ready_cost = 2 * m.Cost_model.ready_cost;
    migrate_pack_cost = 2 * m.Cost_model.migrate_pack_cost;
    migrate_unpack_cost = 2 * m.Cost_model.migrate_unpack_cost;
  }

let test_mispricing_misses () =
  (* Believed: 9 cpu; true: 18 cpu.  The 9-unit reservation drains and the
     job is killed owing 9. *)
  let t = trace ~stop:30 [ job ~id:"j" ~deadline:20 ] in
  let r =
    Engine.run ~cost_model:Cost_model.default
      ~true_cost_model:(double_cpu Cost_model.default)
      ~policy:Admission.Rota t
  in
  Alcotest.(check int) "admitted" 1 r.Engine.admitted;
  Alcotest.(check int) "missed" 1 r.Engine.missed_deadlines;
  Alcotest.(check int) "consumed only the reservation" 9 r.Engine.consumed_total;
  match r.Engine.outcomes with
  | [ o ] ->
      let owed =
        List.fold_left (fun acc (_, q) -> acc + q) 0 o.Engine.unfinished
      in
      Alcotest.(check int) "owes the unpriced half" 9 owed
  | _ -> Alcotest.fail "one outcome"

let test_accurate_pricing_no_unfinished () =
  let t = trace ~stop:30 [ job ~id:"j" ~deadline:20 ] in
  let r = Engine.run ~policy:Admission.Rota t in
  (match r.Engine.outcomes with
  | [ o ] ->
      Alcotest.(check bool) "nothing owed" true (o.Engine.unfinished = [])
  | _ -> Alcotest.fail "one outcome");
  Alcotest.(check int) "no misses" 0 r.Engine.missed_deadlines

let test_ratios_exact () =
  let t = trace ~stop:40 [ job ~id:"j" ~deadline:20 ] in
  let believed = Cost_model.default in
  let r =
    Engine.run ~cost_model:believed ~true_cost_model:(double_cpu believed)
      ~policy:Admission.Rota t
  in
  let ratios = Calibration.ratios_of_run ~believed t r in
  (* Believed cpu demand 9; true demand 18: ratio = 2. *)
  Alcotest.(check (float 0.0001)) "cpu ratio" 2.0 ratios.Calibration.cpu;
  Alcotest.(check (float 0.0001)) "network untouched" 1.0
    ratios.Calibration.network

let test_scale_fields () =
  let scaled =
    Calibration.scale Cost_model.default
      { Calibration.cpu = 2.0; network = 3.0 }
  in
  Alcotest.(check int) "evaluate x2" 16 scaled.Cost_model.evaluate_cost;
  Alcotest.(check int) "ready x2" 2 scaled.Cost_model.ready_cost;
  Alcotest.(check int) "send x3" 12 scaled.Cost_model.send_cost;
  Alcotest.(check int) "transfer x3" 27 scaled.Cost_model.migrate_transfer_cost;
  (* Fields never collapse to zero. *)
  let shrunk =
    Calibration.scale (Cost_model.uniform 1)
      { Calibration.cpu = 0.01; network = 0.01 }
  in
  Alcotest.(check int) "floored at 1" 1 shrunk.Cost_model.evaluate_cost

let test_calibrate_converges () =
  let believed = Cost_model.default in
  let true_model = double_cpu believed in
  let params =
    { Rota_workload.Scenario.default_params with seed = 7; horizon = 160;
      arrivals = 16; locations = 2; slack = 2.5 }
  in
  let t = Rota_workload.Scenario.trace params in
  let iterations =
    Calibration.calibrate ~iterations:3 ~policy:Admission.Rota ~believed
      ~true_model t
  in
  Alcotest.(check int) "three iterations" 3 (List.length iterations);
  let _, first = List.hd iterations in
  let last_model, last = List.nth iterations 2 in
  Alcotest.(check bool) "mispriced run misses" true
    (first.Engine.missed_deadlines > 0);
  Alcotest.(check int) "calibrated run does not" 0 last.Engine.missed_deadlines;
  Alcotest.(check int) "learned the true evaluate cost"
    true_model.Cost_model.evaluate_cost last_model.Cost_model.evaluate_cost

(* With an accurate model the loop is a fixpoint: ratios 1.0, no drift. *)
let prop_accurate_model_fixpoint =
  QCheck.Test.make ~name:"calibration is a fixpoint for accurate models"
    ~count:15
    QCheck.(int_range 0 500)
    (fun seed ->
      let params =
        { Rota_workload.Scenario.default_params with seed; horizon = 100;
          arrivals = 10; locations = 2 }
      in
      let t = Rota_workload.Scenario.trace params in
      let believed = Cost_model.default in
      let r = Engine.run ~cost_model:believed ~policy:Admission.Rota t in
      let ratios = Calibration.ratios_of_run ~believed t r in
      abs_float (ratios.Calibration.cpu -. 1.0) < 0.0001
      && abs_float (ratios.Calibration.network -. 1.0) < 0.0001)

let properties = List.map QCheck_alcotest.to_alcotest [ prop_accurate_model_fixpoint ]

let () =
  Alcotest.run "rota_calibration"
    [
      ( "calibration",
        [
          Alcotest.test_case "mispricing misses" `Quick test_mispricing_misses;
          Alcotest.test_case "accurate pricing owes nothing" `Quick
            test_accurate_pricing_no_unfinished;
          Alcotest.test_case "ratios exact" `Quick test_ratios_exact;
          Alcotest.test_case "scale fields" `Quick test_scale_fields;
          Alcotest.test_case "loop converges" `Quick test_calibrate_converges;
        ] );
      ("properties", properties);
    ]
