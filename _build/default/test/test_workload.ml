(* Tests for the workload library: Prng, Gen, Scenario. *)

open Rota_interval
open Rota_resource
open Rota_actor
open Rota_workload

let iv a b = Interval.of_pair a b

(* --- Prng ---------------------------------------------------------------- *)

let test_prng_determinism () =
  let g1 = Prng.create 7 and g2 = Prng.create 7 in
  let seq g = List.init 20 (fun _ -> Prng.int g 1000) in
  Alcotest.(check (list int)) "same seed, same stream" (seq g1) (seq g2);
  let g3 = Prng.create 8 in
  Alcotest.(check bool) "different seed, different stream" true
    (seq (Prng.create 7) <> seq g3)

let test_prng_ranges () =
  let g = Prng.create 3 in
  for _ = 1 to 500 do
    let v = Prng.int g 10 in
    if v < 0 || v >= 10 then Alcotest.failf "int out of range: %d" v;
    let r = Prng.int_range g 5 9 in
    if r < 5 || r > 9 then Alcotest.failf "int_range out of range: %d" r;
    let f = Prng.float g 2.0 in
    if f < 0. || f >= 2. then Alcotest.failf "float out of range: %f" f
  done;
  Alcotest.check_raises "bad bound" (Invalid_argument "Prng.int: bound <= 0")
    (fun () -> ignore (Prng.int g 0))

let test_prng_copy_split () =
  let g = Prng.create 11 in
  ignore (Prng.next_int64 g);
  let c = Prng.copy g in
  Alcotest.(check int64) "copy continues identically" (Prng.next_int64 g)
    (Prng.next_int64 c);
  let child = Prng.split g in
  Alcotest.(check bool) "split diverges" true
    (Prng.next_int64 child <> Prng.next_int64 g)

let test_prng_choose_shuffle () =
  let g = Prng.create 5 in
  let l = [ 1; 2; 3; 4; 5 ] in
  for _ = 1 to 50 do
    Alcotest.(check bool) "choose member" true (List.mem (Prng.choose g l) l)
  done;
  let shuffled = Prng.shuffle g l in
  Alcotest.(check (list int)) "permutation" l (List.sort compare shuffled);
  Alcotest.check_raises "empty choose"
    (Invalid_argument "Prng.choose: empty list") (fun () ->
      ignore (Prng.choose g []))

(* --- Gen ------------------------------------------------------------------ *)

let test_gen_world () =
  let w = Gen.world ~locations:3 () in
  Alcotest.(check int) "3 locations" 3 (List.length w.Gen.locations);
  Alcotest.(check (list string)) "names" [ "l1"; "l2"; "l3" ]
    (List.map Location.name w.Gen.locations);
  Alcotest.check_raises "zero locations"
    (Invalid_argument "Gen.world: need at least one location") (fun () ->
      ignore (Gen.world ~locations:0 ()))

let test_gen_steady_capacity () =
  let w = Gen.world ~locations:2 () in
  let theta = Gen.steady_capacity w ~horizon:10 ~cpu_rate:3 ~net_rate:2 in
  (* 2 cpu types + 4 ordered pairs (including loopback). *)
  Alcotest.(check int) "types" 6 (List.length (Resource_set.domain theta));
  Alcotest.(check int) "cpu quantity" 30
    (Resource_set.integrate theta (Located_type.cpu (Location.make "l1")) (iv 0 10));
  let no_net = Gen.steady_capacity w ~horizon:10 ~cpu_rate:3 ~net_rate:0 in
  Alcotest.(check int) "no net types" 2 (List.length (Resource_set.domain no_net))

let test_gen_random_program_threads_locations () =
  let w = Gen.world ~locations:3 () in
  let g = Prng.create 17 in
  for i = 0 to 30 do
    let p =
      Gen.random_program g w
        ~name:(Actor_name.make (Printf.sprintf "a%d" i))
        ~peers:[] ~actions:6
    in
    Alcotest.(check int) "action count" 6 (Program.length p);
    (* No self-migrations: each migrate changes the current location. *)
    List.iter
      (fun ((action : Action.t), here) ->
        match action with
        | Action.Migrate { dest } ->
            Alcotest.(check bool) "no self migrate" false
              (Location.equal dest here)
        | _ -> ())
      (Program.location_trace p)
  done

let test_gen_random_computation () =
  let w = Gen.world ~locations:2 () in
  let g = Prng.create 23 in
  for i = 0 to 20 do
    let c =
      Gen.random_computation g w
        ~id:(Printf.sprintf "c%d" i)
        ~start:5 ~actors:(1, 3) ~actions:(1, 4) ~slack:2.0 ~rate_hint:4
    in
    Alcotest.(check bool) "deadline after start" true
      (c.Computation.deadline > c.Computation.start);
    let n = Computation.actor_count c in
    Alcotest.(check bool) "actor count in range" true (n >= 1 && n <= 3)
  done

let test_gen_churn () =
  let w = Gen.world ~locations:2 () in
  let g = Prng.create 31 in
  let joins = Gen.churn_joins g w ~horizon:50 ~joins:20 ~rate:(1, 3) ~duration:(5, 10) in
  Alcotest.(check bool) "some joins" true (List.length joins > 0);
  List.iter
    (fun (t, r) ->
      Alcotest.(check bool) "time in horizon" true (t >= 0 && t < 50);
      match Resource_set.horizon r with
      | Some h -> Alcotest.(check bool) "clipped" true (h <= 50)
      | None -> Alcotest.fail "empty join")
    joins

(* --- Scenario ---------------------------------------------------------------- *)

let test_scenario_trace_deterministic () =
  let p = { Scenario.default_params with arrivals = 10; horizon = 80 } in
  let t1 = Scenario.trace p and t2 = Scenario.trace p in
  Alcotest.(check int) "same length" (Rota_sim.Trace.length t1)
    (Rota_sim.Trace.length t2);
  let ids t =
    List.map (fun (_, (c : Computation.t)) -> c.Computation.id)
      (Rota_sim.Trace.arrivals t)
  in
  Alcotest.(check (list string)) "same computations" (ids t1) (ids t2);
  (* All arrivals respect their computations' start times. *)
  List.iter
    (fun (t, (c : Computation.t)) ->
      Alcotest.(check int) "arrival at start" c.Computation.start t)
    (Rota_sim.Trace.arrivals t1)

let test_scenario_load_scaling () =
  let p = { Scenario.default_params with arrivals = 10 } in
  Alcotest.(check int) "double load" 20 (Scenario.with_load p 2.0).Scenario.arrivals;
  Alcotest.(check int) "tiny load floors at 1" 1
    (Scenario.with_load p 0.01).Scenario.arrivals

let test_scenario_pooled_disjoint () =
  let capacity, tagged = Scenario.pooled ~seed:1 ~pools:3 ~per_pool:4 ~horizon:60 in
  Alcotest.(check bool) "computations exist" true (List.length tagged > 0);
  (* Each pool's capacity slice is disjoint from the others'. *)
  let slices =
    List.init 3 (fun i -> Scenario.pool_capacity ~seed:1 ~pools:3 ~horizon:60 i)
  in
  List.iteri
    (fun i si ->
      List.iteri
        (fun j sj ->
          if i < j then
            List.iter
              (fun xi ->
                Alcotest.(check bool) "disjoint domains" false
                  (Resource_set.mem xi sj))
              (Resource_set.domain si))
        slices)
    slices;
  (* The union of slices is the global capacity. *)
  let union =
    List.fold_left Resource_set.union Resource_set.empty slices
  in
  Alcotest.(check bool) "union = capacity" true (Resource_set.equal union capacity);
  (* Every computation's demand falls inside its own pool's slice. *)
  List.iter
    (fun (pool, (c : Computation.t)) ->
      let slice = List.nth slices pool in
      let conc = Computation.to_concurrent Cost_model.default c in
      List.iter
        (fun part ->
          List.iter
            (fun (xi, _) ->
              Alcotest.(check bool)
                (Printf.sprintf "%s demand within pool %d" c.Computation.id pool)
                true
                (Resource_set.mem xi slice))
            (Requirement.demand_complex part))
        conc.Requirement.parts)
    tagged

let () =
  Alcotest.run "rota_workload"
    [
      ( "prng",
        [
          Alcotest.test_case "determinism" `Quick test_prng_determinism;
          Alcotest.test_case "ranges" `Quick test_prng_ranges;
          Alcotest.test_case "copy/split" `Quick test_prng_copy_split;
          Alcotest.test_case "choose/shuffle" `Quick test_prng_choose_shuffle;
        ] );
      ( "gen",
        [
          Alcotest.test_case "world" `Quick test_gen_world;
          Alcotest.test_case "steady capacity" `Quick test_gen_steady_capacity;
          Alcotest.test_case "program locations" `Quick
            test_gen_random_program_threads_locations;
          Alcotest.test_case "random computation" `Quick test_gen_random_computation;
          Alcotest.test_case "churn" `Quick test_gen_churn;
        ] );
      ( "scenario",
        [
          Alcotest.test_case "deterministic trace" `Quick
            test_scenario_trace_deterministic;
          Alcotest.test_case "load scaling" `Quick test_scenario_load_scaling;
          Alcotest.test_case "pooled disjoint" `Quick test_scenario_pooled_disjoint;
        ] );
    ]
