(* End-to-end tests for interacting-actor sessions in the simulator:
   admission, dependency-gated execution, deadline kills, and the
   deadline-assurance invariant extended to sessions. *)

open Rota_interval
open Rota_resource
open Rota_actor
open Rota
open Rota_scheduler
open Rota_sim

let iv a b = Interval.of_pair a b
let l1 = Location.make "l1"
let l2 = Location.make "l2"
let cpu1 = Located_type.cpu l1
let rset = Resource_set.of_terms
let alice = Actor_name.make "alice"
let bob = Actor_name.make "bob"

let capacity stop =
  rset
    [
      Term.v 1 (iv 0 stop) cpu1;
      Term.v 1 (iv 0 stop) (Located_type.cpu l2);
      Term.v 2 (iv 0 stop) (Located_type.network ~src:l1 ~dst:l2);
      Term.v 2 (iv 0 stop) (Located_type.network ~src:l2 ~dst:l1);
    ]

(* alice computes, sends, awaits the reply, computes; bob replies.  The
   dependency chain takes 28 unit-rate ticks (see test_extensions). *)
let ping_pong ~deadline =
  Result.get_ok
    (Session.make ~id:"pp" ~start:0 ~deadline
       [
         Session.participant ~name:alice ~home:l1
           [
             Session.Act (Action.evaluate 1);
             Session.Act (Action.send ~dest:bob ~size:1);
             Session.Await bob;
             Session.Act (Action.evaluate 1);
           ];
         Session.participant ~name:bob ~home:l2
           [
             Session.Await alice;
             Session.Act (Action.evaluate 1);
             Session.Act (Action.send ~dest:alice ~size:1);
           ];
       ])

let deadlocked ~deadline =
  Result.get_ok
    (Session.make ~id:"dl" ~start:0 ~deadline
       [
         Session.participant ~name:alice ~home:l1
           [ Session.Await bob; Session.Act (Action.send ~dest:bob ~size:1) ];
         Session.participant ~name:bob ~home:l2
           [ Session.Await alice; Session.Act (Action.send ~dest:alice ~size:1) ];
       ])

let trace_of ~stop events =
  Trace.of_events ((0, Trace.Join (capacity stop)) :: events)

let test_session_rota_on_time () =
  let t = trace_of ~stop:40 [ (0, Trace.Arrive_session (ping_pong ~deadline:40)) ] in
  let r = Engine.run ~policy:Admission.Rota t in
  Alcotest.(check int) "admitted" 1 r.Engine.admitted;
  Alcotest.(check int) "on time" 1 r.Engine.completed_on_time;
  Alcotest.(check int) "no misses" 0 r.Engine.missed_deadlines;
  (match r.Engine.outcomes with
  | [ o ] -> (
      match o.Engine.finished with
      | Some f ->
          (* The dependency chain needs exactly 28 ticks at unit rates. *)
          Alcotest.(check int) "finished at the makespan" 28 f
      | None -> Alcotest.fail "should have finished")
  | _ -> Alcotest.fail "one outcome");
  (* The session consumed exactly its priced work: 3x8 cpu + 2x4 net. *)
  Alcotest.(check int) "consumed" 32 r.Engine.consumed_total

let test_session_rota_rejects_tight () =
  let t = trace_of ~stop:27 [ (0, Trace.Arrive_session (ping_pong ~deadline:27)) ] in
  let r = Engine.run ~policy:Admission.Rota t in
  Alcotest.(check int) "rejected" 1 r.Engine.rejected;
  Alcotest.(check int) "no misses" 0 r.Engine.missed_deadlines

let test_session_optimistic_deadlock_misses () =
  (* Optimistic admits the deadlocked session; no segment with work is
     ever released, so it is killed at its deadline. *)
  let t = trace_of ~stop:30 [ (0, Trace.Arrive_session (deadlocked ~deadline:20)) ] in
  let r = Engine.run ~policy:Admission.Optimistic t in
  Alcotest.(check int) "admitted" 1 r.Engine.admitted;
  Alcotest.(check int) "missed" 1 r.Engine.missed_deadlines;
  Alcotest.(check int) "nothing consumed" 0 r.Engine.consumed_total

let test_session_rota_rejects_deadlock () =
  let t = trace_of ~stop:30 [ (0, Trace.Arrive_session (deadlocked ~deadline:20)) ] in
  let r = Engine.run ~policy:Admission.Rota t in
  Alcotest.(check int) "rejected statically" 1 r.Engine.rejected;
  (match (List.hd r.Engine.outcomes).Engine.reject_reason with
  | Some reason ->
      Alcotest.(check bool) "mentions cycle" true
        (String.length reason > 0)
  | None -> Alcotest.fail "reason recorded")

let test_session_contends_with_computation () =
  (* A plain computation and a session sharing cpu@l1 under ROTA: both
     admitted only if reservations fit; whatever is admitted finishes. *)
  let job =
    Computation.make ~id:"job" ~start:0 ~deadline:40
      [ Program.make ~name:(Actor_name.make "solo") ~home:l1
          [ Action.evaluate 1; Action.ready ] ]
  in
  let t =
    trace_of ~stop:40
      [
        (0, Trace.Arrive_session (ping_pong ~deadline:40));
        (0, Trace.Arrive job);
      ]
  in
  let r = Engine.run ~policy:Admission.Rota t in
  Alcotest.(check int) "no misses" 0 r.Engine.missed_deadlines;
  Alcotest.(check int) "everything admitted finishes on time"
    r.Engine.admitted r.Engine.completed_on_time

let test_session_aggregate_runs_shared () =
  (* Aggregate admits the ping-pong on totals; shared dispatch with
     dependency gating still finishes it (no contention here). *)
  let t = trace_of ~stop:60 [ (0, Trace.Arrive_session (ping_pong ~deadline:60)) ] in
  let r = Engine.run ~policy:Admission.Aggregate t in
  Alcotest.(check int) "admitted" 1 r.Engine.admitted;
  Alcotest.(check int) "on time" 1 r.Engine.completed_on_time

let test_mixed_trace_smoke () =
  let params =
    { Rota_workload.Scenario.default_params with seed = 3; arrivals = 6; horizon = 120;
      locations = 2 }
  in
  let t = Rota_workload.Scenario.trace_with_sessions params ~sessions:4 in
  Alcotest.(check bool) "sessions present" true
    (List.length (Trace.sessions t) > 0);
  let r = Engine.run ~policy:Admission.Rota t in
  Alcotest.(check int) "offered = arrivals + sessions"
    (List.length (Trace.arrivals t) + List.length (Trace.sessions t))
    r.Engine.offered;
  Alcotest.(check int) "no misses" 0 r.Engine.missed_deadlines

(* The deadline-assurance invariant extended to interacting sessions. *)
let prop_sessions_deadline_assurance =
  QCheck.Test.make ~name:"rota sessions never miss deadlines" ~count:20
    QCheck.(int_range 0 1000)
    (fun seed ->
      let params =
        {
          Rota_workload.Scenario.default_params with
          seed;
          horizon = 120;
          arrivals = 16;
          locations = 2;
          slack = 1.6;
        }
      in
      let trace = Rota_workload.Scenario.trace_with_sessions params ~sessions:10 in
      List.for_all
        (fun policy ->
          (Engine.run ~policy trace).Engine.missed_deadlines = 0)
        [ Admission.Rota; Admission.Rota_unmerged ])

let properties =
  List.map QCheck_alcotest.to_alcotest [ prop_sessions_deadline_assurance ]

let () =
  Alcotest.run "rota_sessions_sim"
    [
      ( "engine",
        [
          Alcotest.test_case "rota on time" `Quick test_session_rota_on_time;
          Alcotest.test_case "rota rejects tight" `Quick
            test_session_rota_rejects_tight;
          Alcotest.test_case "optimistic deadlock misses" `Quick
            test_session_optimistic_deadlock_misses;
          Alcotest.test_case "rota rejects deadlock" `Quick
            test_session_rota_rejects_deadlock;
          Alcotest.test_case "contention with computation" `Quick
            test_session_contends_with_computation;
          Alcotest.test_case "aggregate shared dispatch" `Quick
            test_session_aggregate_runs_shared;
          Alcotest.test_case "mixed trace smoke" `Quick test_mixed_trace_smoke;
        ] );
      ("properties", properties);
    ]
