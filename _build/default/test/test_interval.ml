(* Tests for the temporal substrate: Time, Interval, Allen, Interval_set,
   Ia_network.  The Allen composition table is verified exhaustively against
   the concrete semantics of [relate]. *)

open Rota_interval

let iv a b = Interval.of_pair a b

let interval_testable =
  Alcotest.testable Interval.pp Interval.equal

let relation_testable = Alcotest.testable Allen.pp Allen.equal

(* Every interval on the point universe [0..hi]. *)
let universe hi =
  let is = ref [] in
  for a = 0 to hi do
    for b = a + 1 to hi do
      is := iv a b :: !is
    done
  done;
  !is

(* --- Time ------------------------------------------------------------- *)

let test_time_basics () =
  Alcotest.(check int) "origin" 0 Time.origin;
  Alcotest.(check int) "dt" 1 Time.dt;
  Alcotest.(check int) "add" 7 (Time.add 3 4);
  Alcotest.(check int) "diff" (-1) (Time.diff 3 4);
  Alcotest.(check int) "succ" 4 (Time.succ 3);
  Alcotest.(check int) "pred" 2 (Time.pred 3);
  Alcotest.(check string) "pp" "t42" (Time.to_string 42);
  Alcotest.(check bool) "equal" true (Time.equal 5 5);
  Alcotest.(check int) "min" 2 (Time.min 5 2);
  Alcotest.(check int) "max" 5 (Time.max 5 2)

(* --- Interval ---------------------------------------------------------- *)

let test_interval_make () =
  Alcotest.(check bool) "valid" true (Option.is_some (Interval.make ~start:0 ~stop:1));
  Alcotest.(check bool) "empty" true (Option.is_none (Interval.make ~start:3 ~stop:3));
  Alcotest.(check bool) "reversed" true (Option.is_none (Interval.make ~start:4 ~stop:2));
  Alcotest.check_raises "of_pair empty"
    (Invalid_argument "Interval.of_pair: empty interval [5,5)") (fun () ->
      ignore (iv 5 5))

let test_interval_accessors () =
  let i = iv 2 7 in
  Alcotest.(check int) "start" 2 (Interval.start i);
  Alcotest.(check int) "stop" 7 (Interval.stop i);
  Alcotest.(check int) "duration" 5 (Interval.duration i);
  Alcotest.(check string) "pp" "[2,7)" (Interval.to_string i)

let test_interval_mem () =
  let i = iv 2 5 in
  Alcotest.(check bool) "below" false (Interval.mem 1 i);
  Alcotest.(check bool) "at start" true (Interval.mem 2 i);
  Alcotest.(check bool) "inside" true (Interval.mem 4 i);
  Alcotest.(check bool) "at stop (exclusive)" false (Interval.mem 5 i)

let test_interval_relations () =
  Alcotest.(check bool) "subset" true (Interval.subset (iv 2 4) (iv 1 5));
  Alcotest.(check bool) "subset refl" true (Interval.subset (iv 2 4) (iv 2 4));
  Alcotest.(check bool) "not subset" false (Interval.subset (iv 0 4) (iv 1 5));
  Alcotest.(check bool) "overlaps" true (Interval.overlaps (iv 0 3) (iv 2 5));
  Alcotest.(check bool) "adjacent no overlap" false
    (Interval.overlaps (iv 0 2) (iv 2 4));
  Alcotest.(check bool) "adjacent" true (Interval.adjacent (iv 0 2) (iv 2 4));
  Alcotest.(check bool) "not adjacent" false (Interval.adjacent (iv 0 2) (iv 3 4))

let test_interval_inter () =
  Alcotest.(check (option interval_testable)) "overlap"
    (Some (iv 2 3))
    (Interval.inter (iv 0 3) (iv 2 5));
  Alcotest.(check (option interval_testable)) "disjoint" None
    (Interval.inter (iv 0 2) (iv 3 5));
  Alcotest.(check (option interval_testable)) "adjacent empty" None
    (Interval.inter (iv 0 2) (iv 2 5))

let test_interval_union_hull () =
  Alcotest.(check (option interval_testable)) "overlapping union"
    (Some (iv 0 5))
    (Interval.union (iv 0 3) (iv 2 5));
  Alcotest.(check (option interval_testable)) "adjacent union"
    (Some (iv 0 5))
    (Interval.union (iv 0 2) (iv 2 5));
  Alcotest.(check (option interval_testable)) "disjoint union" None
    (Interval.union (iv 0 2) (iv 3 5));
  Alcotest.check interval_testable "hull" (iv 0 5)
    (Interval.hull (iv 0 2) (iv 3 5))

let test_interval_diff () =
  let check name expected i j =
    Alcotest.(check (list interval_testable)) name expected (Interval.diff i j)
  in
  check "carve middle" [ iv 0 2; iv 4 6 ] (iv 0 6) (iv 2 4);
  check "carve left" [ iv 3 6 ] (iv 0 6) (iv 0 3);
  check "carve right" [ iv 0 3 ] (iv 0 6) (iv 3 6);
  check "carve all" [] (iv 0 6) (iv 0 6);
  check "disjoint" [ iv 0 6 ] (iv 0 6) (iv 7 9);
  check "superset erases" [] (iv 2 4) (iv 0 6)

let test_interval_split () =
  (match Interval.split (iv 0 6) 2 with
  | Some (a, b) ->
      Alcotest.check interval_testable "left" (iv 0 2) a;
      Alcotest.check interval_testable "right" (iv 2 6) b
  | None -> Alcotest.fail "split inside should succeed");
  Alcotest.(check bool) "split at start" true
    (Option.is_none (Interval.split (iv 0 6) 0));
  Alcotest.(check bool) "split at stop" true
    (Option.is_none (Interval.split (iv 0 6) 6))

let test_interval_shift_ticks () =
  Alcotest.check interval_testable "shift" (iv 3 5) (Interval.shift (iv 1 3) 2);
  Alcotest.(check (list int)) "ticks" [ 2; 3; 4 ] (Interval.ticks (iv 2 5))

(* --- Allen: classification --------------------------------------------- *)

let test_allen_relate_examples () =
  let check name r i j =
    Alcotest.check relation_testable name r (Allen.relate i j)
  in
  check "before" Allen.Before (iv 0 2) (iv 3 5);
  check "after" Allen.After (iv 3 5) (iv 0 2);
  check "meets" Allen.Meets (iv 0 2) (iv 2 5);
  check "met_by" Allen.Met_by (iv 2 5) (iv 0 2);
  check "overlaps" Allen.Overlaps (iv 0 3) (iv 2 5);
  check "overlapped_by" Allen.Overlapped_by (iv 2 5) (iv 0 3);
  check "starts" Allen.Starts (iv 0 2) (iv 0 5);
  check "started_by" Allen.Started_by (iv 0 5) (iv 0 2);
  check "during" Allen.During (iv 2 3) (iv 0 5);
  check "contains" Allen.Contains (iv 0 5) (iv 2 3);
  check "finishes" Allen.Finishes (iv 3 5) (iv 0 5);
  check "finished_by" Allen.Finished_by (iv 0 5) (iv 3 5);
  check "equals" Allen.Equals (iv 1 4) (iv 1 4)

(* Table I: exactly one of the thirteen relations holds for any pair. *)
let test_allen_exhaustive_disjoint () =
  let is = universe 6 in
  List.iter
    (fun i ->
      List.iter
        (fun j ->
          let holding = List.filter (fun r -> Allen.holds r i j) Allen.all in
          Alcotest.(check int)
            (Format.asprintf "unique relation for %a %a" Interval.pp i
               Interval.pp j)
            1 (List.length holding))
        is)
    is

let test_allen_inverse () =
  List.iter
    (fun r ->
      Alcotest.check relation_testable
        (Allen.to_symbol r ^ " involution")
        r
        (Allen.inverse (Allen.inverse r)))
    Allen.all;
  let is = universe 6 in
  List.iter
    (fun i ->
      List.iter
        (fun j ->
          Alcotest.check relation_testable "inverse semantics"
            (Allen.inverse (Allen.relate i j))
            (Allen.relate j i))
        is)
    is

let test_allen_symbols () =
  List.iter
    (fun r ->
      Alcotest.(check (option relation_testable))
        (Allen.to_symbol r ^ " roundtrip")
        (Some r)
        (Allen.of_symbol (Allen.to_symbol r)))
    Allen.all;
  Alcotest.(check (option relation_testable)) "unknown" None (Allen.of_symbol "zz");
  (* Thirteen distinct symbols, thirteen distinct indices. *)
  let symbols = List.sort_uniq String.compare (List.map Allen.to_symbol Allen.all) in
  Alcotest.(check int) "13 symbols" 13 (List.length symbols);
  let indexes =
    List.sort_uniq Int.compare (List.map Allen.is_base_index Allen.all)
  in
  Alcotest.(check (list int)) "indices 0..12"
    [ 0; 1; 2; 3; 4; 5; 6; 7; 8; 9; 10; 11; 12 ]
    indexes

(* The heart of Table I verification: the hand-written composition table is
   checked for soundness *and* completeness against enumeration over a
   concrete universe.  Three intervals involve at most six endpoints, so the
   universe [0..6] realizes every consistent endpoint ordering. *)
let test_allen_composition_exhaustive () =
  let is = universe 6 in
  let observed = Hashtbl.create 512 in
  List.iter
    (fun a ->
      List.iter
        (fun b ->
          List.iter
            (fun c ->
              let key = (Allen.relate a b, Allen.relate b c) in
              let seen =
                try Hashtbl.find observed key with Not_found -> Allen.Set.empty
              in
              Hashtbl.replace observed key
                (Allen.Set.add (Allen.relate a c) seen))
            is)
        is)
    is;
  List.iter
    (fun r1 ->
      List.iter
        (fun r2 ->
          let expected =
            try Hashtbl.find observed (r1, r2)
            with Not_found ->
              Alcotest.failf "no witness for pair (%s, %s)"
                (Allen.to_symbol r1) (Allen.to_symbol r2)
          in
          let table = Allen.Set.of_list (Allen.compose r1 r2) in
          if not (Allen.Set.equal expected table) then
            Alcotest.failf "compose %s %s: table %a, semantics %a"
              (Allen.to_symbol r1) (Allen.to_symbol r2) Allen.Set.pp table
              Allen.Set.pp expected)
        Allen.all)
    Allen.all

let test_allen_composition_identities () =
  List.iter
    (fun r ->
      Alcotest.(check (list relation_testable))
        ("eq neutral left " ^ Allen.to_symbol r)
        [ r ]
        (Allen.compose Allen.Equals r);
      Alcotest.(check (list relation_testable))
        ("eq neutral right " ^ Allen.to_symbol r)
        [ r ]
        (Allen.compose r Allen.Equals))
    Allen.all

(* Composition respects inversion: (r1 . r2)^-1 = r2^-1 . r1^-1. *)
let test_allen_composition_inverse_law () =
  List.iter
    (fun r1 ->
      List.iter
        (fun r2 ->
          let lhs =
            Allen.Set.inverse (Allen.Set.of_list (Allen.compose r1 r2))
          in
          let rhs =
            Allen.Set.of_list
              (Allen.compose (Allen.inverse r2) (Allen.inverse r1))
          in
          if not (Allen.Set.equal lhs rhs) then
            Alcotest.failf "inverse law fails at (%s, %s)" (Allen.to_symbol r1)
              (Allen.to_symbol r2))
        Allen.all)
    Allen.all

(* --- Allen.Set ---------------------------------------------------------- *)

let test_allen_set_basics () =
  let s = Allen.Set.of_list [ Allen.Before; Allen.Meets ] in
  Alcotest.(check bool) "mem b" true (Allen.Set.mem Allen.Before s);
  Alcotest.(check bool) "mem o" false (Allen.Set.mem Allen.Overlaps s);
  Alcotest.(check int) "cardinal" 2 (Allen.Set.cardinal s);
  Alcotest.(check int) "full" 13 (Allen.Set.cardinal Allen.Set.full);
  Alcotest.(check bool) "empty" true (Allen.Set.is_empty Allen.Set.empty);
  Alcotest.(check bool) "subset" true (Allen.Set.subset s Allen.Set.full);
  Alcotest.(check bool) "not subset" false (Allen.Set.subset Allen.Set.full s);
  let t = Allen.Set.of_list [ Allen.Meets; Allen.Overlaps ] in
  Alcotest.(check int) "inter" 1 (Allen.Set.cardinal (Allen.Set.inter s t));
  Alcotest.(check int) "union" 3 (Allen.Set.cardinal (Allen.Set.union s t));
  Alcotest.(check string) "pp" "{b,m}" (Format.asprintf "%a" Allen.Set.pp s)

let test_allen_set_inverse_compose () =
  let s = Allen.Set.of_list [ Allen.Before; Allen.Starts ] in
  let inv = Allen.Set.inverse s in
  Alcotest.(check bool) "inv mem bi" true (Allen.Set.mem Allen.After inv);
  Alcotest.(check bool) "inv mem si" true (Allen.Set.mem Allen.Started_by inv);
  Alcotest.(check int) "inv cardinal" 2 (Allen.Set.cardinal inv);
  (* Set composition distributes over union of singletons. *)
  let a = Allen.Set.of_list [ Allen.Before; Allen.Meets ] in
  let b = Allen.Set.of_list [ Allen.During ] in
  let via_set = Allen.Set.compose a b in
  let via_base =
    Allen.Set.union
      (Allen.Set.of_list (Allen.compose Allen.Before Allen.During))
      (Allen.Set.of_list (Allen.compose Allen.Meets Allen.During))
  in
  Alcotest.(check bool) "set compose = union of base" true
    (Allen.Set.equal via_set via_base)

(* --- Interval_set -------------------------------------------------------- *)

let iset l = Interval_set.of_list l

let intervalset_testable = Alcotest.testable Interval_set.pp Interval_set.equal

let test_iset_normalize () =
  Alcotest.check intervalset_testable "merge overlap"
    (iset [ iv 0 5 ])
    (iset [ iv 0 3; iv 2 5 ]);
  Alcotest.check intervalset_testable "merge adjacent"
    (iset [ iv 0 5 ])
    (iset [ iv 0 2; iv 2 5 ]);
  Alcotest.check intervalset_testable "keep gap"
    (iset [ iv 0 2; iv 3 5 ])
    (iset [ iv 3 5; iv 0 2 ]);
  Alcotest.(check int) "canonical pieces" 2
    (List.length (Interval_set.intervals (iset [ iv 0 2; iv 3 5; iv 4 5 ])))

let test_iset_ops () =
  let a = iset [ iv 0 4; iv 6 9 ] and b = iset [ iv 2 7 ] in
  Alcotest.check intervalset_testable "union"
    (iset [ iv 0 9 ])
    (Interval_set.union a b);
  Alcotest.check intervalset_testable "inter"
    (iset [ iv 2 4; iv 6 7 ])
    (Interval_set.inter a b);
  Alcotest.check intervalset_testable "diff"
    (iset [ iv 0 2; iv 7 9 ])
    (Interval_set.diff a b);
  Alcotest.(check int) "measure" 7 (Interval_set.measure a);
  Alcotest.(check bool) "mem" true (Interval_set.mem 6 a);
  Alcotest.(check bool) "not mem" false (Interval_set.mem 5 a);
  Alcotest.(check bool) "subset" true
    (Interval_set.subset (iset [ iv 1 3 ]) a);
  Alcotest.(check bool) "not subset" false (Interval_set.subset b a)

let test_iset_queries () =
  let a = iset [ iv 2 4; iv 6 9 ] in
  Alcotest.(check (option int)) "first" (Some 2) (Interval_set.first a);
  Alcotest.(check (option int)) "last" (Some 8) (Interval_set.last a);
  Alcotest.(check (option interval_testable)) "hull" (Some (iv 2 9))
    (Interval_set.hull a);
  Alcotest.check intervalset_testable "restrict"
    (iset [ iv 3 4; iv 6 7 ])
    (Interval_set.restrict (iv 3 7) a);
  Alcotest.(check (option int)) "empty first" None
    (Interval_set.first Interval_set.empty);
  Alcotest.(check string) "pp empty" "{}"
    (Format.asprintf "%a" Interval_set.pp Interval_set.empty);
  Alcotest.(check string) "pp" "[2,4) u [6,9)" (Format.asprintf "%a" Interval_set.pp a)

(* Model-based property tests: an interval set is extensionally the set of
   its member ticks. *)
let ticks_of_set s =
  List.concat_map Interval.ticks (Interval_set.intervals s)

let arbitrary_iset =
  let open QCheck in
  let interval_gen =
    Gen.(
      let* a = int_range 0 20 in
      let* d = int_range 1 6 in
      Gen.return (iv a (a + d)))
  in
  make
    ~print:(fun s -> Format.asprintf "%a" Interval_set.pp (iset s))
    Gen.(list_size (int_range 0 6) interval_gen)

let prop_iset_union_model =
  QCheck.Test.make ~name:"interval_set union = tick-set union" ~count:300
    (QCheck.pair arbitrary_iset arbitrary_iset) (fun (xs, ys) ->
      let a = iset xs and b = iset ys in
      let u = Interval_set.union a b in
      let expected =
        List.sort_uniq Int.compare (ticks_of_set a @ ticks_of_set b)
      in
      ticks_of_set u = expected)

let prop_iset_diff_model =
  QCheck.Test.make ~name:"interval_set diff = tick-set diff" ~count:300
    (QCheck.pair arbitrary_iset arbitrary_iset) (fun (xs, ys) ->
      let a = iset xs and b = iset ys in
      let d = Interval_set.diff a b in
      let bt = ticks_of_set b in
      let expected =
        List.filter (fun t -> not (List.mem t bt)) (ticks_of_set a)
      in
      ticks_of_set d = expected)

let prop_iset_inter_model =
  QCheck.Test.make ~name:"interval_set inter = tick-set inter" ~count:300
    (QCheck.pair arbitrary_iset arbitrary_iset) (fun (xs, ys) ->
      let a = iset xs and b = iset ys in
      let i = Interval_set.inter a b in
      let bt = ticks_of_set b in
      let expected = List.filter (fun t -> List.mem t bt) (ticks_of_set a) in
      ticks_of_set i = expected)

let prop_iset_canonical =
  QCheck.Test.make ~name:"interval_set canonical form" ~count:300
    arbitrary_iset (fun xs ->
      let s = iset xs in
      let rec disjoint_sorted = function
        | [] | [ _ ] -> true
        | a :: (b :: _ as rest) ->
            Interval.stop a < Interval.start b && disjoint_sorted rest
      in
      disjoint_sorted (Interval_set.intervals s))

(* --- Ia_network ---------------------------------------------------------- *)

let test_ia_trivial () =
  let net = Ia_network.create 2 in
  Alcotest.(check int) "size" 2 (Ia_network.size net);
  Alcotest.(check bool) "unconstrained consistent" true
    (Ia_network.propagate net);
  Alcotest.(check int) "full edge" 13
    (Allen.Set.cardinal (Ia_network.get net 0 1))

let test_ia_inverse_maintained () =
  let net = Ia_network.create 2 in
  Ia_network.constrain_relation net 0 1 Allen.Before;
  Alcotest.(check bool) "edge 1->0 is inverse" true
    (Allen.Set.equal
       (Ia_network.get net 1 0)
       (Allen.Set.singleton Allen.After))

let test_ia_propagation_chain () =
  (* 0 before 1, 1 before 2 forces 0 before 2. *)
  let net = Ia_network.create 3 in
  Ia_network.constrain_relation net 0 1 Allen.Before;
  Ia_network.constrain_relation net 1 2 Allen.Before;
  Alcotest.(check bool) "consistent" true (Ia_network.propagate net);
  Alcotest.(check bool) "0 before 2" true
    (Allen.Set.equal
       (Ia_network.get net 0 2)
       (Allen.Set.singleton Allen.Before))

let test_ia_inconsistency () =
  (* 0 before 1, 1 before 2, 2 before 0 is a cycle. *)
  let net = Ia_network.create 3 in
  Ia_network.constrain_relation net 0 1 Allen.Before;
  Ia_network.constrain_relation net 1 2 Allen.Before;
  Ia_network.constrain_relation net 2 0 Allen.Before;
  Alcotest.(check bool) "inconsistent" false (Ia_network.propagate net)

let test_ia_scenario_and_realize () =
  let net = Ia_network.create 3 in
  Ia_network.constrain net 0 1 (Allen.Set.of_list [ Allen.Before; Allen.Meets ]);
  Ia_network.constrain_relation net 1 2 Allen.During;
  match Ia_network.consistent_scenario net with
  | None -> Alcotest.fail "expected a consistent scenario"
  | Some scenario -> (
      match Ia_network.realize scenario with
      | None -> Alcotest.fail "scenario should be realizable"
      | Some ivs ->
          Alcotest.(check int) "three intervals" 3 (Array.length ivs);
          for i = 0 to 2 do
            for j = 0 to 2 do
              Alcotest.check relation_testable
                (Printf.sprintf "realized relation %d-%d" i j)
                scenario.(i).(j)
                (Allen.relate ivs.(i) ivs.(j))
            done
          done)

let test_ia_scenario_none () =
  let net = Ia_network.create 3 in
  Ia_network.constrain_relation net 0 1 Allen.Before;
  Ia_network.constrain_relation net 1 2 Allen.Before;
  Ia_network.constrain_relation net 2 0 Allen.Before;
  Alcotest.(check bool) "no scenario" true
    (Option.is_none (Ia_network.consistent_scenario net))

(* Random scenario realization: constrain a random consistent set of
   relations derived from concrete intervals, then check the network finds a
   scenario realizable back into intervals with the same relations. *)
let prop_ia_roundtrip =
  let open QCheck in
  let interval_gen =
    Gen.(
      let* a = int_range 0 10 in
      let* d = int_range 1 5 in
      Gen.return (iv a (a + d)))
  in
  Test.make ~name:"ia_network realizes relations of concrete intervals"
    ~count:60
    (make
       ~print:(fun l ->
         String.concat ";" (List.map Interval.to_string l))
       Gen.(list_size (return 4) interval_gen))
    (fun ivs ->
      let ivs = Array.of_list ivs in
      let n = Array.length ivs in
      let net = Ia_network.create n in
      for i = 0 to n - 1 do
        for j = i + 1 to n - 1 do
          Ia_network.constrain_relation net i j (Allen.relate ivs.(i) ivs.(j))
        done
      done;
      match Ia_network.consistent_scenario net with
      | None -> false
      | Some scenario -> (
          match Ia_network.realize scenario with
          | None -> false
          | Some out ->
              let ok = ref true in
              for i = 0 to n - 1 do
                for j = 0 to n - 1 do
                  if Allen.relate out.(i) out.(j) <> Allen.relate ivs.(i) ivs.(j)
                  then ok := false
                done
              done;
              !ok))

let properties =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_iset_union_model;
      prop_iset_diff_model;
      prop_iset_inter_model;
      prop_iset_canonical;
      prop_ia_roundtrip;
    ]

let () =
  Alcotest.run "rota_interval"
    [
      ( "time",
        [ Alcotest.test_case "basics" `Quick test_time_basics ] );
      ( "interval",
        [
          Alcotest.test_case "make" `Quick test_interval_make;
          Alcotest.test_case "accessors" `Quick test_interval_accessors;
          Alcotest.test_case "mem" `Quick test_interval_mem;
          Alcotest.test_case "relations" `Quick test_interval_relations;
          Alcotest.test_case "inter" `Quick test_interval_inter;
          Alcotest.test_case "union/hull" `Quick test_interval_union_hull;
          Alcotest.test_case "diff" `Quick test_interval_diff;
          Alcotest.test_case "split" `Quick test_interval_split;
          Alcotest.test_case "shift/ticks" `Quick test_interval_shift_ticks;
        ] );
      ( "allen",
        [
          Alcotest.test_case "relate examples (Table I)" `Quick
            test_allen_relate_examples;
          Alcotest.test_case "jointly exhaustive, pairwise disjoint" `Quick
            test_allen_exhaustive_disjoint;
          Alcotest.test_case "inverse" `Quick test_allen_inverse;
          Alcotest.test_case "symbols" `Quick test_allen_symbols;
          Alcotest.test_case "composition table vs semantics" `Slow
            test_allen_composition_exhaustive;
          Alcotest.test_case "composition identities" `Quick
            test_allen_composition_identities;
          Alcotest.test_case "composition inverse law" `Quick
            test_allen_composition_inverse_law;
        ] );
      ( "allen_set",
        [
          Alcotest.test_case "basics" `Quick test_allen_set_basics;
          Alcotest.test_case "inverse/compose" `Quick
            test_allen_set_inverse_compose;
        ] );
      ( "interval_set",
        [
          Alcotest.test_case "normalize" `Quick test_iset_normalize;
          Alcotest.test_case "ops" `Quick test_iset_ops;
          Alcotest.test_case "queries" `Quick test_iset_queries;
        ] );
      ( "ia_network",
        [
          Alcotest.test_case "trivial" `Quick test_ia_trivial;
          Alcotest.test_case "inverse maintained" `Quick
            test_ia_inverse_maintained;
          Alcotest.test_case "propagation chain" `Quick
            test_ia_propagation_chain;
          Alcotest.test_case "inconsistency" `Quick test_ia_inconsistency;
          Alcotest.test_case "scenario + realize" `Quick
            test_ia_scenario_and_realize;
          Alcotest.test_case "no scenario" `Quick test_ia_scenario_none;
        ] );
      ("properties", properties);
    ]
