(* Perf-regression gate: diff fresh `bench --json` snapshots against the
   committed baseline and fail on a real slowdown.

   Rules (see the benchmark-harness note in EXPERIMENTS.md):
   - Only rows whose *baseline* estimate is trustworthy (r^2 >= 0.5 and
     not tagged "unstable") can gate; the rest are listed as SKIP so a
     noisy baseline is visible rather than silently trusted.
   - A gating row must exist in the fresh run — a vanished row fails the
     gate (a renamed bench must refresh the baseline in the same commit).
   - A fresh measurement that is itself unstable is a SKIP too: a noisy
     number can neither prove nor disprove a regression, and hiding the
     skip is exactly the failure mode this gate exists to kill.
   - Otherwise the row fails if ns/run grew by more than the threshold
     (default 20%, --threshold to override).

   Two defences against shared-machine noise:

   1. Every snapshot carries a machine-speed anchor (metadata
      "spin_ns_per_iter": a fixed integer spin loop priced at snapshot
      time, minimum of several trials).  Fresh rows are rescaled by the
      ratio of their anchor to the baseline's before the threshold
      applies, so a VM that is uniformly 2x slower today does not fail
      every row — the spin loop touches no rota code, so a real
      regression cannot hide behind the rescaling.  Snapshots without
      the anchor compare raw, and the gate says which it did.

   2. Several FRESH files may be given (the Makefile measures twice):
      each is rescaled by its own anchor and the gate takes the per-row
      minimum across runs, preferring stable measurements.  Contention
      only ever adds time, so the minimum over repeated runs estimates
      the code's true cost — one bursty neighbour during one run no
      longer fails the build.  `--merge` builds the committed baseline
      with the same estimator (see the Makefile's refresh recipe), so
      both sides of the comparison estimate the same floor. *)

module Json = Rota_obs.Json

let read_file path =
  let ic = open_in_bin path in
  Fun.protect ~finally:(fun () -> close_in_noerr ic) @@ fun () ->
  really_input_string ic (in_channel_length ic)

type row = { ns : float option; r2 : float option; unstable : bool }

let float_member name json =
  match Json.member name json with
  | Some (Json.Float f) -> Some f
  | Some (Json.Int n) -> Some (float_of_int n)
  | _ -> None

type snapshot = {
  calibration : float option;
  metadata : Json.t;
  (* (group, test name, row), file order. *)
  rows : (string * string * row) list;
}

let snapshot_of_file path =
  match Json.parse (read_file path) with
  | Error msg -> Error (Printf.sprintf "%s: %s" path msg)
  | Ok json -> (
      match Json.member "schema" json with
      | Some (Json.String "rota-bench-1") -> (
          match Json.member "groups" json with
          | Some (Json.Obj groups) ->
              Ok
                {
                  calibration =
                    Option.bind (Json.member "metadata" json)
                      (float_member "spin_ns_per_iter");
                  metadata =
                    Option.value
                      (Json.member "metadata" json)
                      ~default:(Json.Obj []);
                  rows =
                    List.concat_map
                      (fun (group, tests) ->
                        match tests with
                        | Json.Obj tests ->
                            List.map
                              (fun (name, entry) ->
                                ( group,
                                  name,
                                  {
                                    ns = float_member "ns_per_run" entry;
                                    r2 = float_member "r_square" entry;
                                    unstable =
                                      Json.member "unstable" entry
                                      = Some (Json.Bool true);
                                  } ))
                              tests
                        | _ -> [])
                      groups;
                }
          | _ -> Error (path ^ ": no \"groups\" object"))
      | Some (Json.String s) ->
          Error (Printf.sprintf "%s: unsupported schema %S" path s)
      | _ -> Error (path ^ ": not a rota-bench-1 snapshot"))

(* Is [r] a better estimate of a row's cost than [prev]?  Stable beats
   unstable; among equals, smaller ns wins (contention only adds time). *)
let better (prev : row) (r : row) =
  match ((prev.unstable, prev.ns), (r.unstable, r.ns)) with
  | (_, None), (_, Some _) -> true
  | (true, Some _), (false, Some _) -> true
  | (false, _), (true, _) | (_, Some _), (_, None) -> false
  | (pu, Some p), (ru, Some n) when pu = ru -> n < p
  | _ -> false

(* Per-row best across runs, first-run order preserved. *)
let merge_rows runs =
  List.fold_left
    (fun acc run ->
      List.fold_left
        (fun acc (group, name, (r : row)) ->
          match
            List.find_opt (fun (_, n2, _) -> n2 = name) acc
          with
          | None -> acc @ [ (group, name, r) ]
          | Some (_, _, prev) ->
              if better prev r then
                List.map
                  (fun ((g2, n2, _) as kept) ->
                    if n2 = name then (g2, n2, r) else kept)
                  acc
              else acc)
        acc run)
    [] runs

let json_of_row (r : row) =
  let field name = function Some f -> [ (name, Json.Float f) ] | None -> [] in
  Json.Obj
    (field "ns_per_run" r.ns @ field "r_square" r.r2
    @ if r.unstable then [ ("unstable", Json.Bool true) ] else [])

let usage () =
  prerr_endline
    "usage: gate [--threshold PCT] BASELINE.json FRESH.json [FRESH.json ...]\n\
    \       gate --merge RUN.json [RUN.json ...]\n\
     The gate form fails when any trustworthy baseline row regressed by \n\
     more than PCT percent; with several fresh runs, each row's best \n\
     measurement (stable preferred, then minimum) is what gates.  The \n\
     --merge form prints a snapshot built from the per-row best across \n\
     the given runs — how the committed baseline is refreshed.";
  exit 2

let load path =
  match snapshot_of_file path with
  | Ok s -> s
  | Error m ->
      prerr_endline ("bench-gate: " ^ m);
      exit 2

(* --- merge mode ------------------------------------------------------------- *)

let run_merge paths =
  let snaps = List.map load paths in
  let calibration =
    List.filter_map (fun s -> s.calibration) snaps
    |> function [] -> None | cals -> Some (List.fold_left Float.min infinity cals)
  in
  (* Express every run at the merged (fastest-observed) machine speed
     before taking minima — the same anchor-ratio rescaling the gate
     applies at compare time, so the merged floor is self-consistent. *)
  let rescaled =
    List.map
      (fun s ->
        match (calibration, s.calibration) with
        | Some m, Some c when c > 0. && m > 0. && c <> m ->
            List.map
              (fun (g, n, (r : row)) ->
                (g, n, { r with ns = Option.map (fun ns -> ns *. m /. c) r.ns }))
              s.rows
        | _ -> s.rows)
      snaps
  in
  let rows = merge_rows rescaled in
  let metadata =
    (* First run's metadata, with the anchor replaced by the fastest
       observed one — consistent with taking per-row minima. *)
    match ((List.hd snaps).metadata, calibration) with
    | Json.Obj fields, Some cal ->
        Json.Obj
          (List.map
             (fun (k, v) ->
               if k = "spin_ns_per_iter" then (k, Json.Float cal) else (k, v))
             fields)
    | m, _ -> m
  in
  let groups =
    List.fold_left
      (fun acc (group, name, r) ->
        let entry = (name, json_of_row r) in
        match List.assoc_opt group acc with
        | Some tests -> (group, tests @ [ entry ]) :: List.remove_assoc group acc
        | None -> acc @ [ (group, [ entry ]) ])
      [] rows
    |> List.map (fun (g, tests) -> (g, Json.Obj tests))
  in
  print_endline
    (Json.to_string
       (Json.Obj
          [
            ("schema", Json.String "rota-bench-1");
            ("metadata", metadata);
            ("groups", Json.Obj groups);
          ]))

(* --- gate mode -------------------------------------------------------------- *)

let run_gate ~threshold base_path fresh_paths =
  let base_snap = load base_path in
  let base = List.map (fun (_, n, r) -> (n, r)) base_snap.rows in
  Printf.printf "bench-gate: %s vs %s (threshold +%.0f%%)\n" base_path
    (String.concat ", " fresh_paths)
    threshold;
  (* Each fresh run, rescaled by the machine-speed ratio of its anchor
     to the baseline's when both are present. *)
  let fresh_runs =
    List.map
      (fun path ->
        let snap = load path in
        match (base_snap.calibration, snap.calibration) with
        | Some b, Some f when b > 0. && f > 0. ->
            Printf.printf
              "calibration: %s at %.3f ns/iter vs baseline %.3f — machine \
               %.2fx %s; rescaling by %.3f\n"
              path f b
              (if f >= b then f /. b else b /. f)
              (if f >= b then "slower" else "faster")
              (b /. f);
            List.map
              (fun (g, name, (r : row)) ->
                (g, name, { r with ns = Option.map (fun ns -> ns *. b /. f) r.ns }))
              snap.rows
        | _ ->
            Printf.printf
              "calibration: no spin_ns_per_iter for %s; comparing raw ns\n"
              path;
            snap.rows)
      fresh_paths
  in
  let fresh = List.map (fun (_, n, r) -> (n, r)) (merge_rows fresh_runs) in
  Printf.printf "%-46s %12s %12s %8s  %s\n" "row" "base ns" "fresh ns" "delta"
    "verdict";
  Printf.printf "%s\n" (String.make 92 '-');
  let failures = ref 0 and skips = ref 0 and gated = ref 0 in
  let pp_ns = function Some ns -> Printf.sprintf "%.1f" ns | None -> "-" in
  List.iter
    (fun (name, (b : row)) ->
      let fresh_row = List.assoc_opt name fresh in
      let fresh_ns = Option.bind fresh_row (fun r -> r.ns) in
      let verdict =
        match (b.ns, b.r2) with
        | None, _ ->
            incr skips;
            "SKIP (no baseline estimate)"
        | Some _, _ when b.unstable ->
            incr skips;
            Printf.sprintf "SKIP (unstable baseline, r^2=%s)"
              (match b.r2 with
              | Some r2 -> Printf.sprintf "%.3f" r2
              | None -> "nan")
        | Some _, Some r2 when r2 < 0.5 ->
            incr skips;
            Printf.sprintf "SKIP (baseline r^2=%.3f < 0.5)" r2
        | Some _, None ->
            incr skips;
            "SKIP (baseline r^2 unknown)"
        | Some base_ns, Some _ -> (
            match fresh_row with
            | None ->
                incr failures;
                "FAIL (row missing from fresh run)"
            | Some f when f.unstable ->
                incr skips;
                Printf.sprintf "SKIP (unstable fresh measurement, r^2=%s)"
                  (match f.r2 with
                  | Some r2 -> Printf.sprintf "%.3f" r2
                  | None -> "nan")
            | Some { ns = None; _ } ->
                incr failures;
                "FAIL (fresh run has no estimate)"
            | Some { ns = Some fresh_ns; _ } ->
                incr gated;
                let delta = (fresh_ns -. base_ns) /. base_ns *. 100. in
                if delta > threshold then begin
                  incr failures;
                  Printf.sprintf "FAIL (+%.1f%% > +%.0f%%)" delta threshold
                end
                else "ok")
      in
      let delta =
        match (b.ns, fresh_ns) with
        | Some b_ns, Some f_ns when b_ns > 0. ->
            Printf.sprintf "%+.1f%%" ((f_ns -. b_ns) /. b_ns *. 100.)
        | _ -> "-"
      in
      Printf.printf "%-46s %12s %12s %8s  %s\n" name (pp_ns b.ns)
        (pp_ns fresh_ns) delta verdict)
    base;
  (* Rows the fresh run has but the baseline does not are fine (new
     benches land before their baseline refresh) — but say so, so a
     stale baseline is visible. *)
  List.iter
    (fun (name, _) ->
      if List.assoc_opt name base = None then
        Printf.printf "note: %s not in baseline (refresh it to gate this row)\n"
          name)
    fresh;
  Printf.printf "%s\n" (String.make 92 '-');
  Printf.printf "bench-gate: %d gated, %d skipped, %d failed\n" !gated !skips
    !failures;
  if !failures > 0 then exit 1

let () =
  let threshold = ref 20.0 in
  let merge = ref false in
  let positional = ref [] in
  let rec parse = function
    | [] -> ()
    | "--merge" :: rest ->
        merge := true;
        parse rest
    | "--threshold" :: v :: rest -> (
        match float_of_string_opt v with
        | Some t when t > 0. ->
            threshold := t;
            parse rest
        | _ -> usage ())
    | arg :: rest
      when String.length arg >= 12 && String.sub arg 0 12 = "--threshold=" -> (
        match float_of_string_opt (String.sub arg 12 (String.length arg - 12)) with
        | Some t when t > 0. ->
            threshold := t;
            parse rest
        | _ -> usage ())
    | arg :: _ when String.length arg > 0 && arg.[0] = '-' -> usage ()
    | arg :: rest ->
        positional := arg :: !positional;
        parse rest
  in
  parse (List.tl (Array.to_list Sys.argv));
  match (!merge, List.rev !positional) with
  | true, (_ :: _ as paths) -> run_merge paths
  | false, base :: (_ :: _ as fresh) -> run_gate ~threshold:!threshold base fresh
  | _ -> usage ()
