(* Benchmark harness: one bechamel test (or indexed family) per experiment
   of EXPERIMENTS.md.  Prints OLS estimates (ns/run) per benchmark.

   Run with: dune exec bench/main.exe *)

open Bechamel
open Toolkit

module Interval = Rota_interval.Interval
module Allen = Rota_interval.Allen
module Ia_network = Rota_interval.Ia_network
module Location = Rota_resource.Location
module Located_type = Rota_resource.Located_type
module Term = Rota_resource.Term
module Profile = Rota_resource.Profile
module Resource_set = Rota_resource.Resource_set
module Requirement = Rota_resource.Requirement
module Actor_name = Rota_actor.Actor_name
module Action = Rota_actor.Action
module Program = Rota_actor.Program
module Computation = Rota_actor.Computation
module Calendar = Rota_scheduler.Calendar
module State = Rota.State
module Formula = Rota.Formula
module Semantics = Rota.Semantics
module Accommodation = Rota.Accommodation
module Admission = Rota_scheduler.Admission
module Engine = Rota_sim.Engine
module Trace = Rota_sim.Trace
module Prng = Rota_workload.Prng
module Scenario = Rota_workload.Scenario

let iv = Interval.of_pair
let l1 = Location.make "l1"
let cpu1 = Located_type.cpu l1
let amount = Requirement.amount

(* --- E1: interval algebra ------------------------------------------------ *)

let bench_allen_compose =
  Test.make ~name:"e1/allen-compose-13x13"
    (Staged.stage (fun () ->
         List.iter
           (fun r1 ->
             List.iter (fun r2 -> ignore (Allen.compose r1 r2)) Allen.all)
           Allen.all))

let bench_allen_set_compose =
  Test.make ~name:"e1/allen-set-compose"
    (Staged.stage (fun () ->
         ignore (Allen.Set.compose Allen.Set.full Allen.Set.full)))

let bench_ia_propagate =
  Test.make_indexed ~name:"e1/ia-propagate" ~args:[ 4; 8; 12 ] (fun n ->
      Staged.stage (fun () ->
          let prng = Prng.create n in
          let net = Ia_network.create n in
          for i = 0 to n - 1 do
            for j = i + 1 to n - 1 do
              if Prng.bool prng then
                Ia_network.constrain_relation net i j
                  (Prng.choose prng Allen.all)
            done
          done;
          ignore (Ia_network.propagate net)))

(* --- E2: resource algebra ------------------------------------------------- *)

let random_segments seed n =
  let prng = Prng.create seed in
  List.init n (fun _ ->
      let a = Prng.int prng 200 in
      let d = Prng.int_range prng 1 10 in
      (iv a (a + d), Prng.int_range prng 1 9))

let bench_profile_union =
  Test.make_indexed ~name:"e2/profile-union" ~args:[ 4; 16; 64; 256 ] (fun n ->
      let p = Profile.of_segments (random_segments 1 n) in
      let q = Profile.of_segments (random_segments 2 n) in
      Staged.stage (fun () -> ignore (Profile.add p q)))

let bench_profile_sub =
  Test.make_indexed ~name:"e2/profile-complement" ~args:[ 4; 16; 64 ] (fun n ->
      let q = Profile.of_segments (random_segments 3 n) in
      let p = Profile.add (Profile.of_segments (random_segments 4 n)) q in
      Staged.stage (fun () -> ignore (Profile.sub p q)))

let bench_rset_union =
  Test.make ~name:"e2/resource-set-union"
    (Staged.stage
       (let a =
          Resource_set.of_terms
            (Profile.to_terms ~ltype:cpu1 (Profile.of_segments (random_segments 5 32)))
        in
        let b =
          Resource_set.of_terms
            (Profile.to_terms ~ltype:cpu1 (Profile.of_segments (random_segments 6 32)))
        in
        fun () -> ignore (Resource_set.union a b)))

(* --- E3: semantics --------------------------------------------------------- *)

let bench_semantics_exists =
  Test.make ~name:"e3/exists-path"
    (Staged.stage
       (let theta = Resource_set.singleton (Term.v 2 (iv 0 6) cpu1) in
        let idle = State.make ~available:theta ~now:0 in
        let busy =
          Result.get_ok
            (State.accommodate_parts idle ~id:"busy" ~window:(iv 0 6)
               [ (Actor_name.make "a1", [ [ amount cpu1 8 ] ]) ])
        in
        let psi =
          Formula.satisfy_simple
            (Requirement.make_simple ~amounts:[ amount cpu1 4 ] ~window:(iv 0 6))
        in
        fun () -> ignore (Semantics.exists_path busy psi)))

(* --- E4: sequential accommodation ------------------------------------------ *)

let bench_schedule_sequential =
  Test.make_indexed ~name:"e4/schedule-sequential" ~args:[ 4; 16; 64; 256 ]
    (fun n ->
      let window = iv 0 (4 * n) in
      let theta = Resource_set.singleton (Term.v 2 window cpu1) in
      let c =
        Requirement.make_complex
          ~steps:(List.init n (fun _ -> [ amount cpu1 6 ]))
          ~window
      in
      Staged.stage (fun () -> ignore (Accommodation.schedule_sequential theta c)))

(* --- E5: admission vs commitments ------------------------------------------- *)

let controller_with_commitments n =
  let params =
    { Scenario.default_params with seed = 5; arrivals = n; horizon = 40 * (n + 1);
      slack = 4.0; locations = 2 }
  in
  let ctrl = ref (Admission.create Admission.Rota (Scenario.capacity_of params)) in
  List.iter
    (fun c ->
      let next, _ = Admission.request !ctrl ~now:0 c in
      ctrl := next)
    (Scenario.computations params);
  (!ctrl, params)

let bench_admission =
  Test.make_indexed ~name:"e5/admit-one-more" ~args:[ 0; 8; 32; 64 ] (fun n ->
      let ctrl, params = controller_with_commitments n in
      let probe =
        List.hd
          (Scenario.computations
             { params with seed = 99; arrivals = 1 })
      in
      Staged.stage (fun () -> ignore (Admission.request ctrl ~now:0 probe)))

(* --- scheduler: admission at ledger scale ------------------------------------ *)

(* The incremental-ledger contract: one decision against a controller
   carrying n live commitments must cost flat-to-logarithmic in n (the
   cached residual replaces the O(n) re-fold).  Reservations all share
   one window so the residual stays a single segment and only the
   ledger's own bookkeeping varies with n. *)
let controller_at_scale n =
  let window = iv 0 100 in
  let capacity = Resource_set.singleton (Term.v (n + 16) window cpu1) in
  let ctrl = ref (Admission.create Admission.Rota capacity) in
  for i = 0 to n - 1 do
    let entry =
      {
        Calendar.computation = Printf.sprintf "c%04d" i;
        window;
        reservation = Resource_set.singleton (Term.v 1 window cpu1);
        schedules = [];
      }
    in
    match Admission.adopt !ctrl entry with
    | Ok next -> ctrl := next
    | Error e -> failwith e
  done;
  !ctrl

let bench_admission_scale =
  let probe =
    Computation.make ~id:"probe" ~start:0 ~deadline:100
      [
        Program.make ~name:(Actor_name.make "a1") ~home:l1
          [ Action.evaluate 1; Action.ready ];
      ]
  in
  Test.make_grouped ~name:"scheduler/admission-scale"
    [
      Test.make_indexed ~name:"decide" ~args:[ 10; 100; 1000 ] (fun n ->
          let ctrl = controller_at_scale n in
          Staged.stage (fun () ->
              ignore (Admission.request ctrl ~now:0 probe)));
      Test.make_indexed ~name:"residual" ~args:[ 10; 100; 1000 ] (fun n ->
          let ctrl = controller_at_scale n in
          Staged.stage (fun () -> ignore (Admission.residual ctrl)));
      Test.make_indexed ~name:"commit-release" ~args:[ 10; 100; 1000 ]
        (fun n ->
          let ctrl = controller_at_scale n in
          let entry =
            {
              Calendar.computation = "one-more";
              window = iv 0 100;
              reservation = Resource_set.singleton (Term.v 1 (iv 0 100) cpu1);
              schedules = [];
            }
          in
          Staged.stage (fun () ->
              match Admission.adopt ctrl entry with
              | Ok next ->
                  ignore (Admission.complete next ~computation:"one-more")
              | Error e -> failwith e));
    ]

(* --- server: the daemon's decide path ------------------------------------------ *)

(* The serve daemon's per-request cost with the socket and the fsync
   taken out: parse the wire line, decide through the replica, encode
   the WAL records, frame the response.  The fsync is deliberately
   excluded — group commit amortizes it across a batch, so the
   per-request cost the daemon's RTT is built from is exactly this
   path.  Each decide iteration admits and then releases the same
   probe, so the warmed ledger returns to its starting size and every
   iteration measures the identical transition. *)
let bench_server_decide =
  let module Wire = Rota_server.Wire in
  let module Replica = Rota_server.Replica in
  let module Events = Rota_obs.Events in
  let module Binary = Rota_obs.Binary in
  let module Certificate = Rota.Certificate in
  let params =
    { Scenario.default_params with seed = 31; arrivals = 24; horizon = 400;
      locations = 2; slack = 3.0 }
  in
  let warmed () =
    let r = Replica.create Admission.Rota in
    ignore
      (Replica.apply r
         (Wire.Join
            { now = 0;
              terms = Certificate.rects_of_set (Scenario.capacity_of params) }));
    List.iter
      (fun c ->
        ignore
          (Replica.apply r (Wire.Admit { now = 0; computation = c; budget_ms = None })))
      (Scenario.computations params);
    r
  in
  let probe =
    List.hd (Scenario.computations { params with seed = 77; arrivals = 1 })
  in
  let admit_op = Wire.Admit { now = 0; computation = probe; budget_ms = None } in
  let release_op = Wire.Release { now = 0; id = probe.Computation.id } in
  let admit_line =
    Wire.request_to_line { Wire.tag = Rota_obs.Json.Null; op = admit_op }
  in
  let stamp payload =
    { Events.seq = 1; run = 1; sim = Some 0; wall_s = 0.; payload }
  in
  Test.make_grouped ~name:"server/decide-rtt"
    [
      Test.make ~name:"parse"
        (Staged.stage (fun () -> ignore (Wire.request_of_line admit_line)));
      Test.make ~name:"decide"
        (Staged.stage
           (let r = warmed () in
            fun () ->
              ignore (Replica.apply r admit_op);
              ignore (Replica.apply r release_op)));
      Test.make ~name:"encode-wal"
        (Staged.stage
           (let r = warmed () in
            let payloads, _ = Replica.apply r admit_op in
            let events = List.map stamp payloads in
            let buf = Buffer.create 1024 in
            fun () ->
              Buffer.clear buf;
              List.iter (Binary.encode buf) events));
      Test.make ~name:"full-path"
        (Staged.stage
           (let r = warmed () in
            let buf = Buffer.create 1024 in
            fun () ->
              match Wire.request_of_line admit_line with
              | Error e -> failwith e
              | Ok { Wire.op; _ } ->
                  let payloads, reply = Replica.apply r op in
                  Buffer.clear buf;
                  List.iter (fun p -> Binary.encode buf (stamp p)) payloads;
                  ignore
                    (Wire.response_to_line { Wire.tag = Rota_obs.Json.Null; cid = None; reply });
                  ignore (Replica.apply r release_op)));
    ]

(* --- server: telemetry overhead ------------------------------------------------ *)

(* The cost of the observability plane on the daemon's per-request path:
   the identical decide transition run with the metrics registry enabled
   (counters, latency histograms, admit-slack observation — what `rota
   serve` does by default) and disabled (`--no-telemetry`).  The gate
   holds the instrumented run within 10% of bare: telemetry must stay a
   rounding error next to the decision itself. *)
let bench_telemetry_overhead =
  let module Wire = Rota_server.Wire in
  let module Replica = Rota_server.Replica in
  let module Telemetry = Rota_server.Telemetry in
  let module Metrics = Rota_obs.Metrics in
  let module Events = Rota_obs.Events in
  let module Binary = Rota_obs.Binary in
  let module Certificate = Rota.Certificate in
  let params =
    { Scenario.default_params with seed = 31; arrivals = 24; horizon = 400;
      locations = 2; slack = 3.0 }
  in
  let warmed () =
    let r = Replica.create Admission.Rota in
    ignore
      (Replica.apply r
         (Wire.Join
            { now = 0;
              terms = Certificate.rects_of_set (Scenario.capacity_of params) }));
    List.iter
      (fun c ->
        ignore
          (Replica.apply r (Wire.Admit { now = 0; computation = c; budget_ms = None })))
      (Scenario.computations params);
    r
  in
  let probe =
    List.hd (Scenario.computations { params with seed = 77; arrivals = 1 })
  in
  let admit_op = Wire.Admit { now = 0; computation = probe; budget_ms = None } in
  let release_op = Wire.Release { now = 0; id = probe.Computation.id } in
  let stamp payload =
    { Events.seq = 1; run = 1; sim = Some 0; wall_s = 0.; payload }
  in
  (* One request exactly as the daemon runs it; [enabled] is flipped
     inside the measured closure so both arms pay the same flag cost. *)
  let request_path enabled =
    let r = warmed () in
    let buf = Buffer.create 1024 in
    fun () ->
      Metrics.set_enabled enabled;
      Telemetry.count_request "admit";
      let t0 = Unix.gettimeofday () in
      let payloads, _reply = Replica.apply ~cid:"bench-1" r admit_op in
      let t1 = Unix.gettimeofday () in
      Metrics.observe Telemetry.queue_wait 1e-4;
      (match admit_op with
      | Wire.Admit { computation; _ } ->
          List.iter
            (function
              | Events.Decision { certificate; _ } ->
                  Telemetry.observe_admit_slack
                    ~deadline:computation.Computation.deadline certificate
              | _ -> ())
            payloads
      | _ -> ());
      Buffer.clear buf;
      List.iter (fun p -> Binary.encode buf (stamp p)) payloads;
      Metrics.observe Telemetry.rtt (t1 -. t0);
      ignore (Replica.apply r release_op);
      Metrics.set_enabled false
  in
  Test.make_grouped ~name:"server/telemetry-overhead"
    [
      Test.make ~name:"bare" (Staged.stage (request_path false));
      Test.make ~name:"instrumented" (Staged.stage (request_path true));
    ]

(* --- E6: end-to-end engine --------------------------------------------------- *)

let small_trace =
  Scenario.trace
    { Scenario.default_params with seed = 9; arrivals = 12; horizon = 100; locations = 2 }

let bench_engine =
  Test.make_grouped ~name:"e6/engine"
    [
      Test.make ~name:"rota"
        (Staged.stage (fun () ->
             ignore (Engine.run ~policy:Admission.Rota small_trace)));
      Test.make ~name:"aggregate"
        (Staged.stage (fun () ->
             ignore (Engine.run ~policy:Admission.Aggregate small_trace)));
      Test.make ~name:"optimistic"
        (Staged.stage (fun () ->
             ignore (Engine.run ~policy:Admission.Optimistic small_trace)));
    ]

(* --- E11: fault repair --------------------------------------------------------- *)

let bench_fault_repair =
  let fault_params =
    { Scenario.default_params with seed = 9; arrivals = 12; horizon = 100; locations = 2 }
  in
  let plan = Scenario.fault_plan ~intensity:1.0 fault_params in
  Test.make_grouped ~name:"sim/fault-repair"
    [
      Test.make ~name:"no-faults"
        (Staged.stage (fun () ->
             ignore (Engine.run ~policy:Admission.Rota small_trace)));
      Test.make ~name:"faults-repair"
        (Staged.stage (fun () ->
             ignore (Engine.run ~faults:plan ~policy:Admission.Rota small_trace)));
      Test.make ~name:"faults-no-repair"
        (Staged.stage (fun () ->
             ignore
               (Engine.run ~faults:plan ~repair:false ~policy:Admission.Rota
                  small_trace)));
    ]

(* --- E7: scoping -------------------------------------------------------------- *)

let bench_scoping =
  let pools = 4 in
  let horizon = 120 in
  let global, tagged = Scenario.pooled ~seed:3 ~pools ~per_pool:4 ~horizon in
  let slice = Scenario.pool_capacity ~seed:3 ~pools ~horizon 0 in
  let c = snd (List.hd tagged) in
  Test.make_grouped ~name:"e7/scoping"
    [
      Test.make ~name:"admit-on-global"
        (Staged.stage (fun () ->
             let ctrl = Admission.create Admission.Rota global in
             ignore (Admission.request ctrl ~now:0 c)));
      Test.make ~name:"admit-on-pool-slice"
        (Staged.stage (fun () ->
             let ctrl = Admission.create Admission.Rota slice in
             ignore (Admission.request ctrl ~now:0 c)));
    ]

(* --- E7b: observability overhead ------------------------------------------------ *)

(* The telemetry layer's contract is that instrumentation left in hot
   paths costs one load-and-branch while recording is off.  The
   [-disabled] benchmarks run with the registry off (the process
   default); the [-enabled]/[-traced] ones toggle the flag (or install a
   sink) inside the measured closure, which adds two stores — noise at
   the profile/engine scale being measured. *)
let bench_obs_overhead =
  let module Metrics = Rota_obs.Metrics in
  let module Tracer = Rota_obs.Tracer in
  let c = Metrics.counter "bench/counter" in
  let h = Metrics.histogram "bench/hist" in
  let p = Profile.of_segments (random_segments 7 64) in
  let q = Profile.of_segments (random_segments 8 64) in
  Test.make_grouped ~name:"e7/obs-overhead"
    [
      Test.make ~name:"counter-incr-disabled"
        (Staged.stage (fun () -> Metrics.incr c));
      Test.make ~name:"histogram-observe-disabled"
        (Staged.stage (fun () -> Metrics.observe h 1e-6));
      Test.make ~name:"with-span-no-sink"
        (Staged.stage (fun () -> Tracer.with_span "bench" (fun () -> ())));
      Test.make ~name:"profile-add-disabled"
        (Staged.stage (fun () -> ignore (Profile.add p q)));
      Test.make ~name:"profile-add-enabled"
        (Staged.stage (fun () ->
             Metrics.set_enabled true;
             let r = Profile.add p q in
             Metrics.set_enabled false;
             ignore r));
      Test.make ~name:"engine-run-metrics-off"
        (Staged.stage (fun () ->
             ignore (Engine.run ~policy:Admission.Rota small_trace)));
      Test.make ~name:"engine-run-metrics-on"
        (Staged.stage (fun () ->
             Metrics.set_enabled true;
             let r = Engine.run ~policy:Admission.Rota small_trace in
             Metrics.set_enabled false;
             ignore r));
      Test.make ~name:"engine-run-traced-null-sink"
        (Staged.stage (fun () ->
             Tracer.install Rota_obs.Sink.null;
             let r = Engine.run ~policy:Admission.Rota small_trace in
             Tracer.uninstall ();
             ignore r));
      (* The buffered-flush option: one flush syscall per event vs one
         per 256 events, measured on the same sink machinery (writing to
         /dev/null so the disk does not participate). *)
      (let devnull = open_out "/dev/null" in
       let ev =
         {
           Rota_obs.Events.seq = 1;
           run = 1;
           sim = Some 7;
           wall_s = 1754500000.0625;
           payload =
             Rota_obs.Events.Admitted
               { id = "c001"; policy = "rota"; reason = "reservation committed" };
         }
       in
       let per_line = Rota_obs.Sink.jsonl devnull in
       let buffered = Rota_obs.Sink.jsonl ~flush_every:256 devnull in
       Test.make_grouped ~name:"jsonl-sink"
         [
           Test.make ~name:"flush-per-line"
             (Staged.stage (fun () -> per_line.Rota_obs.Sink.emit ev));
           Test.make ~name:"flush-every-256"
             (Staged.stage (fun () -> buffered.Rota_obs.Sink.emit ev));
         ]);
    ]

(* --- obs: live audit watchdog overhead ------------------------------------------ *)

(* The watchdog's contract is that live re-verification rides the trace
   stream at a cost proportional to the decision count, not the event
   count.  Both benchmarks pay the same sink-installation and teeing
   cost inside the measured closure; the difference between the pair is
   the price of [Live.step] over every event plus a
   [Accommodation.check_schedule] per decision. *)
let bench_audit_overhead =
  let module Tracer = Rota_obs.Tracer in
  let module Sink = Rota_obs.Sink in
  let module Watchdog = Rota_audit.Watchdog in
  Test.make_grouped ~name:"obs/audit-overhead"
    [
      Test.make ~name:"engine-run-watchdog-off"
        (Staged.stage (fun () ->
             Tracer.install (Sink.tee Sink.null Sink.null);
             let r = Engine.run ~policy:Admission.Rota small_trace in
             Tracer.uninstall ();
             ignore r));
      Test.make ~name:"engine-run-watchdog-on"
        (Staged.stage (fun () ->
             let w = Watchdog.create () in
             Tracer.install (Sink.tee Sink.null (Watchdog.sink w));
             let r = Engine.run ~policy:Admission.Rota small_trace in
             Tracer.uninstall ();
             ignore r));
    ]

(* --- obs: OpenMetrics export overhead -------------------------------------------- *)

(* What --metrics-out adds to a sampled run: both benchmarks pay for
   metrics recording and the periodic sampler (sample period 16); the
   [-on] one also tees the snapshot sink, which renders and atomically
   rewrites the scrape file every [every] observed events.  The pair
   prices the render+write, not the sampling. *)
let bench_export_overhead =
  let module Metrics = Rota_obs.Metrics in
  let module Tracer = Rota_obs.Tracer in
  let module Sink = Rota_obs.Sink in
  let scrape = Filename.temp_file "rota-bench-scrape" ".prom" in
  let sampled_run extra_sink =
    Metrics.set_enabled true;
    Tracer.set_sample_period 16;
    let sink =
      match extra_sink with
      | None -> Sink.null
      | Some s -> Sink.tee Sink.null s
    in
    Tracer.install sink;
    let r = Engine.run ~policy:Admission.Rota small_trace in
    Tracer.uninstall ();
    Tracer.set_sample_period 0;
    Metrics.set_enabled false;
    ignore r
  in
  Test.make_grouped ~name:"obs/export-overhead"
    [
      Test.make ~name:"sampled-run-export-off"
        (Staged.stage (fun () -> sampled_run None));
      Test.make ~name:"sampled-run-export-on"
        (Staged.stage (fun () ->
             sampled_run
               (Some (Rota_obs.Openmetrics.snapshot_sink ~every:64 scrape))));
    ]

(* --- E8: extensions ------------------------------------------------------------- *)

let bench_stn =
  Test.make_indexed ~name:"ext/stn-consistency" ~args:[ 8; 32; 128 ] (fun n ->
      Staged.stage (fun () ->
          let stn = Rota_interval.Stn.create n in
          for i = 0 to n - 2 do
            Rota_interval.Stn.before stn ~gap:1 i (i + 1)
          done;
          Rota_interval.Stn.window stn (n - 1) ~lo:0 ~hi:(4 * n);
          ignore (Rota_interval.Stn.schedule stn)))

let bench_precedence =
  Test.make_indexed ~name:"ext/precedence-chain" ~args:[ 4; 16; 64 ] (fun n ->
      let w = iv 0 (8 * n) in
      let theta = Resource_set.singleton (Term.v 1 w cpu1) in
      let nodes =
        List.init n (fun i ->
            {
              Rota.Precedence.id = string_of_int i;
              requirement =
                Requirement.make_complex ~steps:[ [ amount cpu1 3 ] ] ~window:w;
              deps = (if i = 0 then [] else [ string_of_int (i - 1) ]);
            })
      in
      Staged.stage (fun () -> ignore (Rota.Precedence.schedule theta nodes)))

let bench_session =
  Test.make ~name:"ext/session-compile+schedule"
    (Staged.stage
       (let l2 = Location.make "l2" in
        let alice = Actor_name.make "alice" and bob = Actor_name.make "bob" in
        let session =
          Result.get_ok
            (Rota.Session.make ~id:"bench" ~start:0 ~deadline:200
               [
                 Rota.Session.participant ~name:alice ~home:l1
                   [
                     Rota.Session.Act (Rota_actor.Action.evaluate 1);
                     Rota.Session.Act (Rota_actor.Action.send ~dest:bob ~size:1);
                     Rota.Session.Await bob;
                     Rota.Session.Act (Rota_actor.Action.evaluate 1);
                   ];
                 Rota.Session.participant ~name:bob ~home:l2
                   [
                     Rota.Session.Await alice;
                     Rota.Session.Act (Rota_actor.Action.evaluate 1);
                     Rota.Session.Act (Rota_actor.Action.send ~dest:alice ~size:1);
                   ];
               ])
        in
        let theta =
          Resource_set.of_terms
            [
              Term.v 1 (iv 0 200) cpu1;
              Term.v 1 (iv 0 200) (Located_type.cpu l2);
              Term.v 2 (iv 0 200) (Located_type.network ~src:l1 ~dst:l2);
              Term.v 2 (iv 0 200) (Located_type.network ~src:l2 ~dst:l1);
            ]
        in
        fun () ->
          ignore
            (Rota.Session.meets_deadline Rota_actor.Cost_model.default theta
               session)))

let bench_planner =
  Test.make ~name:"ext/planner-evaluate"
    (Staged.stage
       (let remote = Location.make "remote" in
        let window = iv 0 60 in
        let theta =
          Resource_set.of_terms
            [
              Term.v 1 window cpu1;
              Term.v 2 window (Located_type.cpu remote);
              Term.v 3 window (Located_type.network ~src:l1 ~dst:remote);
              Term.v 3 window (Located_type.network ~src:remote ~dst:l1);
            ]
        in
        let work =
          [ Rota_actor.Action.evaluate 2; Rota_actor.Action.evaluate 2 ]
        in
        fun () ->
          ignore
            (Rota_scheduler.Planner.evaluate theta ~window
               ~name:(Actor_name.make "w") ~home:l1 ~sites:[ remote ] ~work)))

let scenario_text =
  let params =
    { Scenario.default_params with seed = 11; arrivals = 8; horizon = 80 }
  in
  let resources =
    Resource_set.to_terms (Scenario.capacity_of params)
    |> List.map (fun term -> { Rota_syntax.Document.term; join_at = 0 })
  in
  Rota_syntax.Document.print
    { Rota_syntax.Document.resources; computations = Scenario.computations params; sessions = []; faults = [] }

let bench_parse =
  Test.make ~name:"ext/scenario-parse"
    (Staged.stage (fun () -> ignore (Rota_syntax.Document.parse scenario_text)))

let bench_session_engine =
  Test.make ~name:"ext/engine-mixed-sessions"
    (Staged.stage
       (let trace =
          Scenario.trace_with_sessions
            { Scenario.default_params with seed = 21; arrivals = 8; horizon = 100;
              locations = 2 }
            ~sessions:6
        in
        fun () -> ignore (Engine.run ~policy:Admission.Rota trace)))

let bench_calibration =
  Test.make ~name:"ext/calibration-iteration"
    (Staged.stage
       (let believed = Rota_actor.Cost_model.default in
        let true_model =
          { believed with Rota_actor.Cost_model.evaluate_cost = 16 }
        in
        let trace =
          Scenario.trace
            { Scenario.default_params with seed = 23; arrivals = 10; horizon = 100;
              locations = 2 }
        in
        fun () ->
          ignore
            (Rota_sim.Calibration.calibrate ~iterations:1 ~policy:Admission.Rota
               ~believed ~true_model trace)))

(* --- runner -------------------------------------------------------------------- *)

(* Named registry so a CLI argument can select a subset: any argument
   that is a substring of a suite name keeps that suite (used by `make
   bench-smoke` to exercise just scheduler/admission-scale in CI). *)
let suites =
  [
    ("e1/allen-compose", bench_allen_compose);
    ("e1/allen-set-compose", bench_allen_set_compose);
    ("e1/ia-propagate", bench_ia_propagate);
    ("e2/profile-union", bench_profile_union);
    ("e2/profile-complement", bench_profile_sub);
    ("e2/resource-set-union", bench_rset_union);
    ("e3/exists-path", bench_semantics_exists);
    ("e4/schedule-sequential", bench_schedule_sequential);
    ("e5/admit-one-more", bench_admission);
    ("scheduler/admission-scale", bench_admission_scale);
    ("server/decide-rtt", bench_server_decide);
    ("server/telemetry-overhead", bench_telemetry_overhead);
    ("e6/engine", bench_engine);
    ("sim/fault-repair", bench_fault_repair);
    ("e7/scoping", bench_scoping);
    ("e7/obs-overhead", bench_obs_overhead);
    ("obs/audit-overhead", bench_audit_overhead);
    ("obs/export-overhead", bench_export_overhead);
    ("ext/stn-consistency", bench_stn);
    ("ext/precedence-chain", bench_precedence);
    ("ext/session-compile", bench_session);
    ("ext/planner-evaluate", bench_planner);
    ("ext/scenario-parse", bench_parse);
    ("ext/engine-mixed-sessions", bench_session_engine);
    ("ext/calibration-iteration", bench_calibration);
  ]

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  nn = 0 || go 0

(* --- machine-readable output ----------------------------------------------- *)

(* BENCH_<n>.json: group -> test -> ns/run, plus enough metadata to
   compare numbers across commits (schema "rota-bench-1").  Committed
   snapshots let a later change diff its perf claims against the repo's
   recorded baseline instead of a hand-copied table. *)
module Json = Rota_obs.Json

(* Bechamel reports NaN when a suite produced no usable estimate; JSON
   has no NaN literal, so encode it (and infinities) as null. *)
let json_float x = if Float.is_finite x then Json.Float x else Json.Null

(* Machine-speed anchor: ns per iteration of a fixed integer spin loop,
   minimum over several trials (the minimum is robust to preemption on
   a shared machine).  Two snapshots' anchors give the perf gate a
   machine-speed ratio to rescale by before applying its threshold —
   the loop touches no rota code, so a real regression cannot hide
   behind the rescaling, while a VM that is simply running 2x slower
   today no longer fails every row. *)
let spin_iters = 2_000_000

let spin () =
  let x = ref 0 in
  for i = 1 to spin_iters do
    x := !x lxor i
  done;
  Sys.opaque_identity !x

let spin_ns_per_iter () =
  let best = ref infinity in
  for _ = 1 to 7 do
    let t0 = Unix.gettimeofday () in
    ignore (spin ());
    let dt = Unix.gettimeofday () -. t0 in
    best := Float.min !best (dt *. 1e9 /. float_of_int spin_iters)
  done;
  !best

let json_results ~filters ~chosen ~quota_s ~limit rows =
  (* Attribute each measured row back to its registry suite: row names
     are "rota/<suite...>", so the longest suite name that is a
     substring wins (suite names never overlap in practice, but indexed
     rows append ":<arg>" and grouped rows insert subtest segments). *)
  let group_of name =
    List.fold_left
      (fun best (suite, _) ->
        if contains name suite then
          match best with
          | Some b when String.length b >= String.length suite -> best
          | _ -> Some suite
        else best)
      None chosen
    |> Option.value ~default:"other"
  in
  let groups =
    List.fold_left
      (fun acc (name, ns, r2) ->
        let g = group_of name in
        let entry =
          (* A row whose OLS fit explains less than half the variance is
             tagged so downstream consumers (the perf gate) skip it
             loudly instead of trusting a noise-dominated estimate. *)
          let unstable =
            if Float.is_finite r2 && r2 >= 0.5 then []
            else [ ("unstable", Json.Bool true) ]
          in
          Json.Obj
            ([ ("ns_per_run", json_float ns); ("r_square", json_float r2) ]
            @ unstable)
        in
        match List.assoc_opt g acc with
        | Some tests -> (g, (name, entry) :: tests) :: List.remove_assoc g acc
        | None -> (g, [ (name, entry) ]) :: acc)
      [] rows
    |> List.rev_map (fun (g, tests) -> (g, Json.Obj (List.rev tests)))
  in
  Json.Obj
    [
      ("schema", Json.String "rota-bench-1");
      ( "metadata",
        Json.Obj
          [
            ("ocaml", Json.String Sys.ocaml_version);
            ("word_size", Json.Int Sys.word_size);
            ("quota_s", Json.Float quota_s);
            ("limit", Json.Int limit);
            ("spin_ns_per_iter", json_float (spin_ns_per_iter ()));
            ("filters", Json.List (List.map (fun f -> Json.String f) filters));
          ] );
      ("groups", Json.Obj groups);
    ]

let () =
  let requested = List.tl (Array.to_list Sys.argv) in
  (* --json PATH, --quota SECS, and --limit N (with --flag=value forms)
     are the harness's own flags; everything else is a suite-name
     filter.  The default quota is fine for the broad sweep, but a
     baseline worth gating on needs enough samples per row for the OLS
     fit to be trustworthy — bump --quota until r^2 stops complaining. *)
  let json_out = ref None
  and quota_s = ref 0.25
  and limit = ref 1000 in
  let requested =
    let split_eq arg =
      match String.index_opt arg '=' with
      | Some i when String.length arg > 2 && arg.[0] = '-' ->
          Some
            ( String.sub arg 0 i,
              String.sub arg (i + 1) (String.length arg - i - 1) )
      | _ -> None
    in
    let set flag value =
      match flag with
      | "--json" -> json_out := Some value
      | "--quota" -> (
          match float_of_string_opt value with
          | Some q when q > 0. -> quota_s := q
          | _ -> failwith (flag ^ ": expected a positive number of seconds"))
      | "--limit" -> (
          match int_of_string_opt value with
          | Some n when n > 0 -> limit := n
          | _ -> failwith (flag ^ ": expected a positive sample count"))
      | _ -> failwith ("unknown flag " ^ flag)
    in
    let rec go acc = function
      | [] -> List.rev acc
      | ("--json" | "--quota" | "--limit") :: ([] as rest) ->
          ignore rest;
          failwith "flag needs a value"
      | (("--json" | "--quota" | "--limit") as flag) :: value :: rest ->
          set flag value;
          go acc rest
      | arg :: rest -> (
          match split_eq arg with
          | Some (flag, value) ->
              set flag value;
              go acc rest
          | None -> go (arg :: acc) rest)
    in
    go [] requested
  in
  let json_out = !json_out
  and quota_s = !quota_s
  and limit = !limit in
  let chosen =
    if requested = [] then suites
    else
      List.filter
        (fun (name, _) -> List.exists (contains name) requested)
        suites
  in
  if chosen = [] then begin
    Printf.eprintf "no benchmark matches %s; known suites:\n"
      (String.concat " " requested);
    List.iter (fun (name, _) -> Printf.eprintf "  %s\n" name) suites;
    exit 1
  end;
  let tests = Test.make_grouped ~name:"rota" (List.map snd chosen) in
  let cfg = Benchmark.cfg ~limit ~quota:(Time.second quota_s) ~kde:None () in
  let raw = Benchmark.all cfg [ Instance.monotonic_clock ] tests in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let rows =
    Hashtbl.fold
      (fun name ols acc ->
        let ns =
          match Analyze.OLS.estimates ols with
          | Some [ x ] -> x
          | Some _ | None -> nan
        in
        let r2 = Option.value (Analyze.OLS.r_square ols) ~default:nan in
        (name, ns, r2) :: acc)
      results []
    |> List.sort (fun (a, _, _) (b, _, _) -> String.compare a b)
  in
  Printf.printf "%-44s %16s %8s\n" "benchmark" "ns/run" "r^2";
  Printf.printf "%s\n" (String.make 70 '-');
  List.iter
    (fun (name, ns, r2) -> Printf.printf "%-44s %16.1f %8.3f\n" name ns r2)
    rows;
  (* A low r^2 means the OLS fit barely explains the samples — the
     ns/run figure is noise-dominated and should not back a perf claim
     without a longer quota or a quieter machine. *)
  let low_confidence =
    List.filter (fun (_, _, r2) -> Float.is_finite r2 && r2 < 0.5) rows
  in
  if low_confidence <> [] then begin
    Printf.printf "\nwarning: %d benchmark(s) with r^2 < 0.5 (estimate unreliable):\n"
      (List.length low_confidence);
    List.iter
      (fun (name, _, r2) -> Printf.printf "  %s (r^2 = %.3f)\n" name r2)
      low_confidence
  end;
  match json_out with
  | None -> ()
  | Some path ->
      let oc = open_out path in
      Fun.protect
        ~finally:(fun () -> close_out oc)
        (fun () ->
          output_string oc
            (Json.to_string
               (json_results ~filters:requested ~chosen ~quota_s ~limit rows));
          output_char oc '\n');
      Printf.printf "json written to %s\n" path
