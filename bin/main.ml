(* The rota command-line tool: run experiments, simulate open-system
   traces under different admission policies, and check single admission
   questions with certificates. *)

module Interval = Rota_interval.Interval
module Term = Rota_resource.Term
module Located_type = Rota_resource.Located_type
module Location = Rota_resource.Location
module Resource_set = Rota_resource.Resource_set
module Accommodation = Rota.Accommodation
module Admission = Rota_scheduler.Admission
module Engine = Rota_sim.Engine
module Trace = Rota_sim.Trace
module Scenario = Rota_workload.Scenario
module Computation = Rota_actor.Computation
module Cost_model = Rota_actor.Cost_model
module Document = Rota_syntax.Document

open Cmdliner

let seed_arg =
  let doc = "Random seed for workload generation." in
  Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc)

let file_arg =
  let doc =
    "Read the scenario (resources and computations) from a file in the \
     scenario language instead of generating one (see examples/*.rota)."
  in
  Arg.(value & opt (some file) None & info [ "file"; "f" ] ~docv:"FILE" ~doc)

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let load_document path =
  match Document.parse (read_file path) with
  | Ok doc -> Ok doc
  | Error e -> Error (Printf.sprintf "%s: %s" path e)

(* --- telemetry flags ----------------------------------------------------- *)

let trace_arg =
  let doc =
    "Write telemetry (engine events and spans) to $(docv), one JSON object \
     per line.  Schema: doc/observability.md."
  in
  Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"FILE.jsonl" ~doc)

let metrics_arg =
  let doc =
    "Record counters and latency histograms during the run and print a \
     summary table at exit."
  in
  Arg.(value & flag & info [ "metrics" ] ~doc)

let sample_every_arg =
  let doc =
    "With $(b,--trace): emit a metric-sample event for every counter and \
     gauge each $(docv) simulated ticks, so registry series become time \
     series inside the trace.  0 disables sampling."
  in
  Arg.(value & opt int 25 & info [ "sample-every" ] ~docv:"TICKS" ~doc)

let trace_buffer_arg =
  let doc =
    "With $(b,--trace): flush the trace file every $(docv) events instead \
     of after each one.  The default (1) survives interruption with every \
     completed event on disk; larger values amortize the flush syscall for \
     high-rate tracing."
  in
  Arg.(value & opt int 1 & info [ "trace-buffer" ] ~docv:"N" ~doc)

let trace_format_arg =
  let doc =
    "With $(b,--trace): wire format to write — $(b,jsonl) (one JSON object \
     per line, the default) or $(b,binary) (the compact length-prefixed \
     ROTB format, roughly a third the bytes; record layout in \
     doc/observability.md).  Every $(b,rota trace) tool auto-detects the \
     format on read; $(b,rota trace convert) rewrites a binary trace as \
     JSONL for line-oriented tooling."
  in
  Arg.(
    value
    & opt (enum [ ("jsonl", `Jsonl); ("binary", `Binary) ]) `Jsonl
    & info [ "trace-format" ] ~docv:"FORMAT" ~doc)

let watchdog_arg =
  let doc =
    "Run the live audit watchdog next to the run: every decision \
     certificate is re-verified through the independent validator as it \
     is emitted, divergences are written back into the trace as \
     audit-divergence events, and a summary line is printed at exit.  \
     $(docv) is $(b,warn) (default: report and keep going) or \
     $(b,fail-fast) (abort at the first divergence with a nonzero exit \
     naming the decision)."
  in
  Arg.(
    value
    & opt
        ~vopt:(Some Rota_audit.Watchdog.Warn)
        (some
           (enum
              [
                ("warn", Rota_audit.Watchdog.Warn);
                ("fail-fast", Rota_audit.Watchdog.Fail_fast);
              ]))
        None
    & info [ "watchdog" ] ~docv:"MODE" ~doc)

let metrics_out_arg =
  let doc =
    "Write an OpenMetrics/Prometheus text snapshot of the metrics registry \
     to $(docv) (atomically, write-then-rename): refreshed during the run \
     every $(b,--metrics-every) telemetry events, and once more at exit.  \
     Implies metrics recording.  This file is the scrape surface a \
     monitoring agent (or the future serve daemon) reads."
  in
  Arg.(
    value
    & opt (some string) None
    & info [ "metrics-out" ] ~docv:"FILE" ~doc)

let metrics_every_arg =
  let doc =
    "With $(b,--metrics-out): rewrite the snapshot after every $(docv) \
     telemetry events observed (clamped to >= 1)."
  in
  Arg.(value & opt int 1000 & info [ "metrics-every" ] ~docv:"N" ~doc)

type obs_opts = {
  trace : string option;
  metrics : bool;
  sample_every : int;
  trace_buffer : int;
  trace_format : [ `Jsonl | `Binary ];
  watchdog : Rota_audit.Watchdog.mode option;
  metrics_out : string option;
  metrics_every : int;
}

let obs_args =
  Term.(
    const (fun trace metrics sample_every trace_buffer trace_format watchdog
              metrics_out metrics_every ->
        {
          trace;
          metrics;
          sample_every;
          trace_buffer;
          trace_format;
          watchdog;
          metrics_out;
          metrics_every;
        })
    $ trace_arg $ metrics_arg $ sample_every_arg $ trace_buffer_arg
    $ trace_format_arg $ watchdog_arg $ metrics_out_arg $ metrics_every_arg)

exception Interrupted of int
(* Raised out of the SIGTERM/SIGINT handlers [with_obs] installs; the
   payload is the conventional exit code (143/130). *)

(* Install the requested sinks/registry around [f], and tear them down
   (flushing files, printing the metrics tables) afterwards — also on
   exceptions and on SIGTERM/SIGINT, so a failed or interrupted run
   still leaves a valid trace prefix. *)
let with_obs ?(console = false)
    {
      trace;
      metrics;
      sample_every;
      trace_buffer;
      trace_format;
      watchdog;
      metrics_out;
      metrics_every;
    } f =
  let file_sink_for =
    match trace_format with
    | `Jsonl -> Rota_obs.Sink.jsonl_file
    | `Binary -> Rota_obs.Sink.binary_file
  in
  match
    Option.map
      (fun path ->
        try Ok (file_sink_for ~flush_every:(max 1 trace_buffer) path)
        with Sys_error msg -> Error msg)
      trace
  with
  | Some (Error msg) ->
      Printf.eprintf "rota: cannot open trace file: %s\n" msg;
      1
  | (None | Some (Ok _)) as file_sink ->
  let wd = Option.map (fun mode -> Rota_audit.Watchdog.create ~mode ()) watchdog in
  let sinks =
    List.filter_map Fun.id
      [
        (match file_sink with Some (Ok s) -> Some s | _ -> None);
        (if console then Some (Rota_obs.Sink.console Format.std_formatter)
         else None);
        (* The snapshot writer only counts events (and rewrites the
           OpenMetrics file at its cadence plus once on close). *)
        Option.map
          (fun path ->
            Rota_obs.Openmetrics.snapshot_sink ~every:metrics_every path)
          metrics_out;
        (* The watchdog tees last, so the trace file already holds the
           decision line the verdict is about when it is re-verified. *)
        Option.map Rota_audit.Watchdog.sink wd;
      ]
  in
  (match sinks with
  | [] -> ()
  | first :: rest ->
      Rota_obs.Tracer.install (List.fold_left Rota_obs.Sink.tee first rest));
  Option.iter Rota_audit.Watchdog.install wd;
  Rota_obs.Tracer.set_sample_period (if trace = None then 0 else sample_every);
  (* Sampling and the snapshot writer read the registry, so a traced
     run with sampling on — or any run with --metrics-out — records
     metrics even without --metrics (which only controls the printed
     report). *)
  let record_metrics =
    metrics || metrics_out <> None || (trace <> None && sample_every > 0)
  in
  if record_metrics then Rota_obs.Metrics.set_enabled true;
  let finally () =
    Rota_obs.Tracer.uninstall ();
    Rota_audit.Watchdog.uninstall ();
    Rota_obs.Tracer.set_sample_period 0;
    if record_metrics then Rota_obs.Metrics.set_enabled false;
    Option.iter
      (fun w ->
        Format.printf "%a@." Rota_audit.Watchdog.pp_stats
          (Rota_audit.Watchdog.stats w))
      wd;
    if metrics then begin
      print_newline ();
      Rota_experiments.Metrics_report.print ()
    end
  in
  (* SIGTERM/SIGINT land as an exception at the next safe point, so the
     [finally] above — sink teardown, trace flush, metrics snapshot —
     runs on an interrupted run exactly as on a completed one; [at_exit]
     alone would miss buffered tail events on some sinks.  Previous
     handlers are restored so nested uses (e.g. the serve daemon, which
     installs its own drain handlers) are unaffected. *)
  let previous =
    List.filter_map
      (fun (signal, code) ->
        match
          Sys.signal signal
            (Sys.Signal_handle (fun _ -> raise (Interrupted code)))
        with
        | old -> Some (signal, old)
        | exception (Invalid_argument _ | Sys_error _) -> None)
      [ (Sys.sigterm, 143); (Sys.sigint, 130) ]
  in
  let restore () =
    List.iter
      (fun (signal, old) ->
        try Sys.set_signal signal old with Invalid_argument _ | Sys_error _ -> ())
      previous
  in
  Fun.protect ~finally @@ fun () ->
  match f () with
  | code ->
      restore ();
      code
  | exception Interrupted code ->
      restore ();
      Format.eprintf "rota: interrupted; telemetry flushed@.";
      code
  | exception Rota_audit.Watchdog.Trip { seq; id; message } ->
      restore ();
      Format.eprintf
        "rota: watchdog tripped (fail-fast) at seq %d on decision %s: %s@." seq
        id message;
      1

(* --- rota experiment --------------------------------------------------- *)

let run_experiment seed id obs =
  with_obs obs (fun () ->
      match Rota_experiments.Experiments.run ~seed id with
      | Ok () -> 0
      | Error msg ->
          prerr_endline msg;
          1)

let experiment_cmd =
  let id_arg =
    let doc =
      Printf.sprintf "Experiment to run: %s, or $(b,all)."
        (String.concat ", " Rota_experiments.Experiments.all_ids)
    in
    Arg.(value & pos 0 string "all" & info [] ~docv:"ID" ~doc)
  in
  let run seed id obs = run_experiment seed id obs in
  let doc = "Run the experiment suite (see EXPERIMENTS.md)." in
  Cmd.v (Cmd.info "experiment" ~doc)
    Term.(const run $ seed_arg $ id_arg $ obs_args)

(* One top-level alias per experiment, so [rota e6 --trace run.jsonl
   --metrics] works without the [experiment] prefix. *)
let experiment_alias_cmds =
  List.map
    (fun id ->
      let doc =
        Option.value
          (Rota_experiments.Experiments.description id)
          ~default:"Run this experiment."
      in
      Cmd.v (Cmd.info id ~doc)
        Term.(const (fun seed obs -> run_experiment seed id obs)
              $ seed_arg $ obs_args))
    Rota_experiments.Experiments.all_ids

(* --- rota simulate ------------------------------------------------------ *)

let policy_conv =
  let parse s =
    match
      List.find_opt
        (fun p -> String.equal (Admission.policy_name p) s)
        Admission.all_policies
    with
    | Some p -> Ok p
    | None ->
        Error
          (`Msg
            (Printf.sprintf "unknown policy %S (expected %s)" s
               (String.concat ", "
                  (List.map Admission.policy_name Admission.all_policies))))
  in
  let print ppf p = Format.pp_print_string ppf (Admission.policy_name p) in
  Arg.conv (parse, print)

let simulate_cmd =
  let policy_arg =
    let doc = "Admission policy (or $(b,all) via repeated runs)." in
    Arg.(
      value
      & opt (some policy_conv) None
      & info [ "policy" ] ~docv:"POLICY" ~doc)
  in
  let arrivals_arg =
    Arg.(value & opt int 30 & info [ "arrivals" ] ~docv:"N"
           ~doc:"Number of computations offered.")
  in
  let horizon_arg =
    Arg.(value & opt int 200 & info [ "horizon" ] ~docv:"T"
           ~doc:"Trace horizon in ticks.")
  in
  let locations_arg =
    Arg.(value & opt int 3 & info [ "locations" ] ~docv:"K"
           ~doc:"Number of nodes.")
  in
  let slack_arg =
    Arg.(value & opt float 2.0 & info [ "slack" ] ~docv:"S"
           ~doc:"Deadline slack factor (1.0 = just feasible in isolation).")
  in
  let verbose_arg =
    Arg.(value & flag & info [ "verbose"; "v" ]
           ~doc:"Print one line per engine event (admission decisions, \
                 completions, deadline kills) as it happens, in \
                 simulated-time order.")
  in
  let faults_arg =
    Arg.(value & opt float 0.0 & info [ "faults" ] ~docv:"INTENSITY"
           ~doc:"Inject a generated fault plan of this intensity \
                 (roughly 8*INTENSITY unannounced revocations, blackouts, \
                 slowdowns and rejoins; 0 disables).  With $(b,--file), \
                 the document's own fault stanzas are used instead.")
  in
  let fault_seed_arg =
    Arg.(value & opt int 0 & info [ "fault-seed" ] ~docv:"SEED"
           ~doc:"Vary the generated fault plan without disturbing the \
                 workload.")
  in
  let no_repair_arg =
    Arg.(value & flag & info [ "no-repair" ]
           ~doc:"Disable the commitment-repair ladder: broken commitments \
                 stall and die at their deadlines.")
  in
  let run seed policy arrivals horizon locations slack verbose intensity
      fault_seed no_repair file obs =
    let inputs_result =
      match file with
      | Some path ->
          Result.map
            (fun doc -> (Document.to_trace doc, doc.Document.faults))
            (load_document path)
      | None ->
          let params =
            {
              Scenario.default_params with
              seed;
              arrivals;
              horizon;
              locations;
              slack;
            }
          in
          Ok (Scenario.trace params, Scenario.fault_plan ~fault_seed ~intensity params)
    in
    match inputs_result with
    | Error e ->
        prerr_endline e;
        1
    | Ok (trace, faults) ->
    let policies =
      match policy with Some p -> [ p ] | None -> Admission.all_policies
    in
    (* Outcome narration goes through the telemetry sink (the console
       sink when --verbose): one ordered stream of simulated-time events
       instead of a second, post-hoc rendering of the report. *)
    with_obs ~console:verbose obs (fun () ->
        List.iter
          (fun policy ->
            let report = Engine.run ~faults ~repair:(not no_repair) ~policy trace in
            Format.printf "%a@." Engine.pp_report report)
          policies;
        0)
  in
  let doc = "Simulate an open-system trace under admission policies." in
  Cmd.v
    (Cmd.info "simulate" ~doc)
    Term.(
      const run $ seed_arg $ policy_arg $ arrivals_arg $ horizon_arg
      $ locations_arg $ slack_arg $ verbose_arg $ faults_arg $ fault_seed_arg
      $ no_repair_arg $ file_arg $ obs_args)

(* --- rota check ---------------------------------------------------------- *)

let check_cmd =
  let arrivals_arg =
    Arg.(value & opt int 8 & info [ "arrivals" ] ~docv:"N"
           ~doc:"Number of generated computations to check one by one.")
  in
  let run seed arrivals file obs =
    with_obs obs @@ fun () ->
    let inputs =
      match file with
      | Some path ->
          Result.map
            (fun doc ->
              ( Document.capacity doc,
                doc.Document.computations,
                doc.Document.sessions ))
            (load_document path)
      | None ->
          let params =
            { Scenario.default_params with seed; arrivals; horizon = 150 }
          in
          Ok (Scenario.capacity_of params, Scenario.computations params, [])
    in
    match inputs with
    | Error e ->
        prerr_endline e;
        1
    | Ok (capacity, computations, sessions) ->
        let ctrl = ref (Admission.create Admission.Rota capacity) in
        Format.printf "capacity: %a@.@." Resource_set.pp capacity;
        let print_schedules outcome =
          match outcome.Admission.schedules with
          | Some schedules ->
              List.iter
                (fun (actor, schedule) ->
                  Format.printf "  %a: %a@." Rota_actor.Actor_name.pp actor
                    Accommodation.pp_schedule schedule)
                schedules
          | None -> ()
        in
        List.iter
          (fun (c : Computation.t) ->
            let next, outcome = Admission.request !ctrl ~now:0 c in
            ctrl := next;
            Format.printf "%a -> %a@." Computation.pp c Admission.pp_outcome
              outcome;
            print_schedules outcome)
          computations;
        List.iter
          (fun (s : Rota.Session.t) ->
            let next, outcome = Admission.request_session !ctrl ~now:0 s in
            ctrl := next;
            Format.printf "%a -> %a@." Rota.Session.pp s Admission.pp_outcome
              outcome;
            print_schedules outcome)
          sessions;
        0
  in
  let doc =
    "Ask the Theorem-4 question for a stream of computations, printing \
     admission decisions and schedule certificates."
  in
  Cmd.v (Cmd.info "check" ~doc)
    Term.(const run $ seed_arg $ arrivals_arg $ file_arg $ obs_args)

(* --- rota plan ------------------------------------------------------------ *)

let plan_cmd =
  let home_rate_arg =
    Arg.(value & opt int 1 & info [ "home-rate" ] ~docv:"R"
           ~doc:"CPU rate at the home node.")
  in
  let remote_rate_arg =
    Arg.(value & opt int 2 & info [ "remote-rate" ] ~docv:"R"
           ~doc:"CPU rate at the remote node.")
  in
  let net_rate_arg =
    Arg.(value & opt int 3 & info [ "net-rate" ] ~docv:"R"
           ~doc:"Link rate between the nodes, both ways.")
  in
  let work_arg =
    Arg.(value & opt int 2 & info [ "evaluations" ] ~docv:"N"
           ~doc:"Number of complexity-2 evaluations in the work body.")
  in
  let window_arg =
    Arg.(value & opt int 60 & info [ "window" ] ~docv:"T"
           ~doc:"Deadline window in ticks.")
  in
  let run home_rate remote_rate net_rate evaluations window_stop =
    let home = Location.make "home" and remote = Location.make "remote" in
    let window = Interval.of_pair 0 window_stop in
    let theta =
      Resource_set.of_terms
        (List.filter_map Fun.id
           [
             Rota_resource.Term.make ~rate:home_rate ~interval:window
               ~ltype:(Located_type.cpu home);
             Rota_resource.Term.make ~rate:remote_rate ~interval:window
               ~ltype:(Located_type.cpu remote);
             Rota_resource.Term.make ~rate:net_rate ~interval:window
               ~ltype:(Located_type.network ~src:home ~dst:remote);
             Rota_resource.Term.make ~rate:net_rate ~interval:window
               ~ltype:(Located_type.network ~src:remote ~dst:home);
           ])
    in
    let work =
      List.init evaluations (fun _ -> Rota_actor.Action.evaluate 2)
      @ [ Rota_actor.Action.ready ]
    in
    Format.printf "resources: %a@.@." Resource_set.pp theta;
    let verdicts =
      Rota_scheduler.Planner.evaluate theta ~window
        ~name:(Rota_actor.Actor_name.make "worker")
        ~home ~sites:[ remote ] ~work
    in
    if verdicts = [] then begin
      Format.printf "no feasible plan within %a@." Interval.pp window;
      1
    end
    else begin
      List.iteri
        (fun i v ->
          Format.printf "%d. %a%s@." (i + 1) Rota_scheduler.Planner.pp_verdict v
            (if i = 0 then "   <- best" else ""))
        verdicts;
      0
    end
  in
  let doc =
    "Compare stay-or-migrate strategies for a body of work (the paper's      future-work planning question), ranked by certified completion time."
  in
  Cmd.v
    (Cmd.info "plan" ~doc)
    Term.(
      const run $ home_rate_arg $ remote_rate_arg $ net_rate_arg $ work_arg
      $ window_arg)

(* --- rota calibrate --------------------------------------------------------- *)

let calibrate_cmd =
  let factor_arg =
    Arg.(value & opt float 2.0 & info [ "error" ] ~docv:"F"
           ~doc:"How much the world's true CPU cost exceeds the believed one.")
  in
  let iterations_arg =
    Arg.(value & opt int 3 & info [ "iterations" ] ~docv:"N"
           ~doc:"Calibration iterations.")
  in
  let arrivals_arg =
    Arg.(value & opt int 24 & info [ "arrivals" ] ~docv:"N"
           ~doc:"Number of computations offered.")
  in
  let run seed factor iterations arrivals obs =
    with_obs obs @@ fun () ->
    let believed = Cost_model.default in
    let scale v = max 1 (int_of_float (ceil (float_of_int v *. factor))) in
    let true_model =
      {
        believed with
        Cost_model.evaluate_cost = scale believed.Cost_model.evaluate_cost;
        create_cost = scale believed.Cost_model.create_cost;
        ready_cost = scale believed.Cost_model.ready_cost;
        migrate_pack_cost = scale believed.Cost_model.migrate_pack_cost;
        migrate_unpack_cost = scale believed.Cost_model.migrate_unpack_cost;
      }
    in
    let params =
      { Scenario.default_params with seed; horizon = 200; arrivals;
        locations = 2; slack = 2.5 }
    in
    let trace = Scenario.trace params in
    Format.printf "believed %a@.true     %a@.@." Cost_model.pp believed
      Cost_model.pp true_model;
    List.iteri
      (fun i (model, report) ->
        Format.printf "iteration %d: believed evaluate=%d -> %a@." (i + 1)
          model.Cost_model.evaluate_cost Rota_sim.Engine.pp_report report)
      (Rota_sim.Calibration.calibrate ~iterations ~policy:Admission.Rota
         ~believed ~true_model trace);
    0
  in
  let doc =
    "Demonstrate the cost-estimate revision loop: run with a mispriced      cost model, learn the true prices from consumed plus owed work, and      converge back to zero deadline misses."
  in
  Cmd.v
    (Cmd.info "calibrate" ~doc)
    Term.(
      const run $ seed_arg $ factor_arg $ iterations_arg $ arrivals_arg
      $ obs_args)

(* --- rota trace ------------------------------------------------------------ *)

module Trace_reader = Rota_obs.Trace_reader
module Trace_summary = Rota_obs.Summary

let trace_pos ?(idx = 0) ~docv () =
  Arg.(required & pos idx (some file) None & info [] ~docv
         ~doc:"A telemetry trace written with --trace (JSONL or binary; \
               the format is auto-detected).")

(* Load a whole trace leniently (unknown kinds pass through), reporting
   the first malformed line on stderr. *)
let with_trace_events path k =
  match Trace_reader.read_file path with
  | Ok (events, tail) ->
      (match tail with
      | Trace_reader.Complete -> ()
      | Trace_reader.Truncated _ ->
          Format.eprintf "rota trace: %s: warning: %a (crash-interrupted \
                          write); using everything before the cut@."
            path Trace_reader.pp_tail tail);
      k events
  | Error e ->
      Format.eprintf "rota trace: %s: %a@." path Trace_reader.pp_error e;
      1

let trace_validate_cmd =
  let run file =
    let v = Trace_reader.validate_file file in
    if Trace_reader.valid v then begin
      Printf.printf "ok: %d events, %d runs\n" v.Trace_reader.events
        v.Trace_reader.runs;
      0
    end
    else begin
      List.iter (Printf.eprintf "%s: %s\n" file) v.Trace_reader.errors;
      Printf.eprintf "invalid: %d events, %d runs\n" v.Trace_reader.events
        v.Trace_reader.runs;
      1
    end
  in
  let doc =
    "Check the trace contract: every line parses strictly and round-trips, \
     seq strictly increases, per-run simulated time is nondecreasing, and \
     span parent ids resolve."
  in
  Cmd.v (Cmd.info "validate" ~doc)
    Term.(const run $ trace_pos ~docv:"TRACE" ())

let trace_summarize_cmd =
  let top_arg =
    Arg.(value & opt int 10 & info [ "top" ] ~docv:"N"
           ~doc:"How many individual slowest spans — and sampled \
                 latency-series rows — to list.")
  in
  let run file top =
    with_trace_events file @@ fun events ->
    Rota_experiments.Trace_report.print_summary ~top
      (Trace_summary.of_events ~top events);
    0
  in
  let doc =
    "Per-run admit/reject/kill breakdown by policy, span self/total time \
     rollups, the slowest spans, metric time-series extents, and sampled \
     latency series."
  in
  Cmd.v (Cmd.info "summarize" ~doc)
    Term.(const run $ trace_pos ~docv:"TRACE" () $ top_arg)

let trace_timeline_cmd =
  let width_arg =
    Arg.(value & opt int 60 & info [ "width" ] ~docv:"COLS"
           ~doc:"Columns the simulated horizon is scaled onto.")
  in
  let run file width =
    with_trace_events file @@ fun events ->
    print_string (Rota_obs.Timeline.render ~width events);
    0
  in
  let doc =
    "ASCII Gantt of computation lifecycles (arrival, admit, run, \
     complete/kill) and capacity joins against simulated time."
  in
  Cmd.v (Cmd.info "timeline" ~doc)
    Term.(const run $ trace_pos ~docv:"TRACE" () $ width_arg)

let trace_diff_cmd =
  let run file_a file_b =
    with_trace_events file_a @@ fun events_a ->
    with_trace_events file_b @@ fun events_b ->
    Rota_experiments.Trace_report.print_diff ~label_a:file_a ~label_b:file_b
      (Trace_summary.of_events events_a)
      (Trace_summary.of_events events_b);
    0
  in
  let doc =
    "Policy-vs-policy deltas between two traces: admit rate, deadline \
     misses, and latency quantiles (the paper's E6 comparison)."
  in
  Cmd.v (Cmd.info "diff" ~doc)
    Term.(
      const run
      $ trace_pos ~docv:"TRACE_A" ()
      $ trace_pos ~idx:1 ~docv:"TRACE_B" ())

let trace_export_cmd =
  let format_arg =
    let doc = "Output format; $(b,chrome) is Chrome trace-event JSON \
               (array form), loadable in Perfetto or chrome://tracing." in
    Arg.(value & opt (enum [ ("chrome", `Chrome) ]) `Chrome
           & info [ "format" ] ~docv:"FORMAT" ~doc)
  in
  let out_arg =
    Arg.(value & opt string "-" & info [ "o"; "output" ] ~docv:"FILE"
           ~doc:"Where to write the export; - is stdout.")
  in
  let run file `Chrome out =
    with_trace_events file @@ fun events ->
    let payload = Rota_obs.Chrome.to_string events in
    match out with
    | "-" -> print_endline payload; 0
    | path -> (
        try
          let oc = open_out path in
          Fun.protect ~finally:(fun () -> close_out oc) (fun () ->
              output_string oc payload;
              output_char oc '\n');
          0
        with Sys_error msg ->
          Printf.eprintf "rota trace export: %s\n" msg;
          1)
  in
  let doc = "Convert a trace for an external viewer (Perfetto)." in
  Cmd.v (Cmd.info "export" ~doc)
    Term.(const run $ trace_pos ~docv:"TRACE" () $ format_arg $ out_arg)

let trace_convert_cmd =
  let out_arg =
    Arg.(value & opt string "-" & info [ "o"; "output" ] ~docv:"FILE"
           ~doc:"Where to write the JSONL; - is stdout.")
  in
  let run file out =
    with_trace_events file @@ fun events ->
    let write oc =
      List.iter
        (fun e ->
          output_string oc (Rota_obs.Events.to_line e);
          output_char oc '\n')
        events
    in
    match out with
    | "-" ->
        write stdout;
        flush stdout;
        0
    | path -> (
        try
          let oc = open_out_bin path in
          Fun.protect ~finally:(fun () -> close_out oc) (fun () -> write oc);
          0
        with Sys_error msg ->
          Printf.eprintf "rota trace convert: %s\n" msg;
          1)
  in
  let doc =
    "Rewrite a trace as JSONL — the escape hatch from \
     $(b,--trace-format=binary) back to line-oriented tooling (grep, jq, \
     $(b,rota audit --follow)).  JSONL input passes through re-serialized, \
     so the command also normalizes a trace to the current schema."
  in
  Cmd.v (Cmd.info "convert" ~doc)
    Term.(const run $ trace_pos ~docv:"TRACE" () $ out_arg)

let trace_cmd =
  let doc =
    "Analyse telemetry traces (JSONL or binary): validate, summarize, \
     timeline, diff, convert, export."
  in
  Cmd.group (Cmd.info "trace" ~doc)
    [
      trace_validate_cmd; trace_summarize_cmd; trace_timeline_cmd;
      trace_diff_cmd; trace_convert_cmd; trace_export_cmd;
    ]

(* --- rota metrics ---------------------------------------------------------- *)

let metrics_export_cmd =
  let out_arg =
    Arg.(value & opt string "-" & info [ "o"; "output" ] ~docv:"FILE"
           ~doc:"Where to write the exposition; - is stdout.")
  in
  let run file out =
    with_trace_events file @@ fun events ->
    let payload = Rota_obs.Openmetrics.render_events events in
    match out with
    | "-" ->
        print_string payload;
        0
    | path -> (
        try
          Rota_obs.Openmetrics.write_file path payload;
          0
        with Sys_error msg ->
          Printf.eprintf "rota metrics export: %s\n" msg;
          1)
  in
  let doc =
    "Render a finished trace's sampled series in OpenMetrics/Prometheus \
     text format: the last metric-sample per counter/gauge and the last \
     hist-sample per histogram (as a quantile summary — the trace carries \
     no bucket boundaries).  For bucketed histograms of a live registry, \
     use $(b,--metrics-out) on the run itself."
  in
  Cmd.v (Cmd.info "export" ~doc)
    Term.(const run $ trace_pos ~docv:"TRACE" () $ out_arg)

let metrics_lint_cmd =
  let file_pos =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE"
           ~doc:"An OpenMetrics text file (e.g. written by --metrics-out).")
  in
  let run file =
    match Rota_obs.Openmetrics.lint (read_file file) with
    | Ok () ->
        Printf.printf "ok: %s\n" file;
        0
    | Error e ->
        Printf.eprintf "rota metrics lint: %s: %s\n" file e;
        1
    | exception Sys_error msg ->
        Printf.eprintf "rota metrics lint: %s\n" msg;
        1
  in
  let doc =
    "Validate an OpenMetrics text file: line grammar, one TYPE per family, \
     the EOF terminator, cumulative bucket monotonicity, and +Inf == _count."
  in
  Cmd.v (Cmd.info "lint" ~doc) Term.(const run $ file_pos)

(* An endpoint the user typed: HOST:PORT if the suffix parses as a
   port, otherwise a Unix socket path.  (A path containing a colon can
   always be written ./path:with:colon — the heuristic only misfires on
   bare relative paths that end in :<digits>.) *)
let parse_endpoint s =
  match String.rindex_opt s ':' with
  | Some i -> (
      let host = String.sub s 0 i
      and port = String.sub s (i + 1) (String.length s - i - 1) in
      match int_of_string_opt port with
      | Some p when p > 0 && p < 65536 ->
          Rota_server.Daemon.Tcp ((if host = "" then "127.0.0.1" else host), p)
      | _ -> Rota_server.Daemon.Unix_socket s)
  | None -> Rota_server.Daemon.Unix_socket s

let connect_endpoint address =
  match address with
  | Rota_server.Daemon.Unix_socket path ->
      let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      Unix.connect fd (Unix.ADDR_UNIX path);
      fd
  | Rota_server.Daemon.Tcp (host, port) ->
      let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
      let addr =
        try (Unix.gethostbyname host).Unix.h_addr_list.(0)
        with Not_found -> Unix.inet_addr_of_string host
      in
      Unix.connect fd (Unix.ADDR_INET (addr, port));
      fd

(* Minimal HTTP/1.0 GET against the daemon's --metrics-listen endpoint:
   send the request, read to EOF, return the body. *)
let http_scrape address =
  match connect_endpoint address with
  | exception Unix.Unix_error (e, _, s) ->
      Error (Printf.sprintf "connect %s: %s" s (Unix.error_message e))
  | fd -> (
      Fun.protect ~finally:(fun () ->
          try Unix.close fd with Unix.Unix_error _ -> ())
      @@ fun () ->
      let req = "GET /metrics HTTP/1.0\r\nHost: rota\r\n\r\n" in
      let rec send pos =
        if pos < String.length req then
          send (pos + Unix.write_substring fd req pos (String.length req - pos))
      in
      send 0;
      let buf = Buffer.create 4096 in
      let bytes = Bytes.create 8192 in
      let rec recv () =
        match Unix.read fd bytes 0 8192 with
        | 0 -> ()
        | n ->
            Buffer.add_subbytes buf bytes 0 n;
            recv ()
      in
      (try recv ()
       with Unix.Unix_error (e, _, _) ->
         if Buffer.length buf = 0 then raise (Sys_error (Unix.error_message e)));
      let raw = Buffer.contents buf in
      let find_substring sep =
        let n = String.length sep and len = String.length raw in
        let rec go i =
          if i + n > len then None
          else if String.sub raw i n = sep then Some i
          else go (i + 1)
        in
        go 0
      in
      let body_at sep =
        Option.map
          (fun i -> String.sub raw (i + String.length sep)
              (String.length raw - i - String.length sep))
          (find_substring sep)
      in
      match body_at "\r\n\r\n" with
      | Some body -> Ok body
      | None -> (
          match body_at "\n\n" with
          | Some body -> Ok body
          | None -> Error "malformed HTTP response (no header terminator)"))

let metrics_scrape_cmd =
  let addr_pos =
    Arg.(required & pos 0 (some string) None
         & info [] ~docv:"ADDR"
             ~doc:
               "The daemon's $(b,--metrics-listen) endpoint: a Unix socket \
                path or HOST:PORT.")
  in
  let out_arg =
    Arg.(value & opt string "-" & info [ "o"; "out" ] ~docv:"FILE"
           ~doc:"Write the exposition to $(docv) (atomically) instead of \
                 stdout.")
  in
  let run addr out =
    match http_scrape (parse_endpoint addr) with
    | Error m | (exception Sys_error m) ->
        Printf.eprintf "rota metrics scrape: %s\n" m;
        1
    | Ok body -> (
        match out with
        | "-" ->
            print_string body;
            0
        | path -> (
            try
              Rota_obs.Openmetrics.write_file path body;
              0
            with Sys_error m ->
              Printf.eprintf "rota metrics scrape: %s\n" m;
              1))
  in
  let doc =
    "Fetch one OpenMetrics exposition from a running daemon's \
     $(b,--metrics-listen) endpoint (a curl-free HTTP GET), for piping \
     into $(b,rota metrics lint) or a file-based collector."
  in
  Cmd.v (Cmd.info "scrape" ~doc) Term.(const run $ addr_pos $ out_arg)

let metrics_cmd =
  let doc =
    "Work with OpenMetrics expositions: export a finished trace's series, \
     scrape a live daemon, lint a snapshot file."
  in
  Cmd.group (Cmd.info "metrics" ~doc)
    [ metrics_export_cmd; metrics_scrape_cmd; metrics_lint_cmd ]

(* --- rota top --------------------------------------------------------------- *)

let top_cmd =
  let once_arg =
    Arg.(value & flag
         & info [ "once" ]
             ~doc:
               "Read the whole trace, print a single dashboard frame (plain \
                text, no redraw), and exit.")
  in
  let interval_arg =
    Arg.(value & opt float 0.5 & info [ "interval" ] ~docv:"SECS"
           ~doc:"Seconds between polls/redraws when following.")
  in
  let idle_exit_arg =
    Arg.(value & opt float 0. & info [ "idle-exit" ] ~docv:"SECS"
           ~doc:
             "Exit after $(docv) seconds without new events.  0 follows \
              forever (quit with q+Enter or Ctrl-C).")
  in
  let width_arg =
    Arg.(value & opt int 80 & info [ "width" ] ~docv:"COLS"
           ~doc:"Frame width (bounds the throughput sparkline).")
  in
  let connect_arg =
    Arg.(value & opt (some string) None & info [ "connect" ] ~docv:"ADDR"
           ~doc:
             "Drive the dashboard from a running daemon instead of a trace \
              file: poll the wire $(b,metrics) verb on $(docv) (the \
              daemon's $(b,--socket)/$(b,--tcp) address) every \
              $(b,--interval) seconds and render the returned samples.")
  in
  let run_connected ~addr ~once ~interval ~idle_exit:_ ~width ~quit_requested =
    match connect_endpoint (parse_endpoint addr) with
    | exception Unix.Unix_error (e, _, s) ->
        Format.eprintf "rota top: connect %s: %s@." s (Unix.error_message e);
        1
    | fd ->
        let ic = Unix.in_channel_of_descr fd in
        Fun.protect ~finally:(fun () ->
            try Unix.close fd with Unix.Unix_error _ -> ())
        @@ fun () ->
        let st = Rota_obs.Top.create ~source:("live " ^ addr) () in
        let line =
          Rota_server.Wire.request_to_line
            { Rota_server.Wire.tag = Rota_obs.Json.Null;
              op = Rota_server.Wire.Metrics }
          ^ "\n"
        in
        let scrape () =
          let rec send pos =
            if pos < String.length line then
              send
                (pos
                + Unix.write_substring fd line pos (String.length line - pos))
          in
          send 0;
          match Rota_server.Wire.response_of_line (input_line ic) with
          | Error m -> Error ("bad response: " ^ m)
          | Ok { Rota_server.Wire.reply = Rota_server.Wire.Metrics_snapshot
                     { samples; _ }; _ } ->
              List.iter
                (fun j ->
                  match Rota_obs.Events.of_json j with
                  | Ok e -> Rota_obs.Top.step st e
                  | Error _ -> ())
                samples;
              Ok ()
          | Ok _ -> Error "daemon did not answer the metrics verb"
        in
        let redraw ~following =
          if following then print_string "\027[H\027[2J";
          print_string (Rota_obs.Top.render ~width ~following st);
          if following then print_string "\n[q+Enter or Ctrl-C to quit]\n";
          flush stdout
        in
        if once then (
          match scrape () with
          | Error m ->
              Format.eprintf "rota top: %s@." m;
              1
          | Ok () ->
              redraw ~following:false;
              0)
        else begin
          let interval = Float.max 0.05 interval in
          let rec loop () =
            if quit_requested () then 0
            else
              match scrape () with
              | Error m ->
                  Format.eprintf "rota top: %s@." m;
                  1
              | exception End_of_file ->
                  (* Daemon drained: leave the last frame standing. *)
                  0
              | Ok () ->
                  redraw ~following:true;
                  Unix.sleepf interval;
                  loop ()
          in
          loop ()
        end
  in
  let run file connect once interval idle_exit width =
    match (connect, file) with
    | Some _, Some _ ->
        Format.eprintf "rota top: TRACE and --connect are mutually exclusive@.";
        2
    | None, None ->
        Format.eprintf "rota top: a TRACE file or --connect is required@.";
        2
    | Some addr, None ->
        let quit_requested () =
          match Unix.select [ Unix.stdin ] [] [] 0. with
          | [ _ ], _, _ -> (
              let buf = Bytes.create 64 in
              match Unix.read Unix.stdin buf 0 64 with
              | 0 -> true
              | n ->
                  Bytes.exists
                    (fun c -> c = 'q' || c = 'Q')
                    (Bytes.sub buf 0 n)
              | exception Unix.Unix_error _ -> false)
          | _ -> false
        in
        run_connected ~addr ~once ~interval ~idle_exit ~width ~quit_requested
    | None, Some file ->
    if once then
      with_trace_events file @@ fun events ->
      let st = Rota_obs.Top.create ~source:file () in
      List.iter (Rota_obs.Top.step st) events;
      print_string (Rota_obs.Top.render ~width st);
      0
    else
      match Trace_reader.Follow.open_file file with
      | Error e ->
          Format.eprintf "rota top: %s: %a@." file Trace_reader.pp_error e;
          1
      | Ok cursor ->
          Fun.protect ~finally:(fun () -> Trace_reader.Follow.close cursor)
          @@ fun () ->
          let st = Rota_obs.Top.create ~source:file () in
          let interval = Float.max 0.05 interval in
          let redraw () =
            (* Home + clear: each frame fully repaints the screen. *)
            print_string "\027[H\027[2J";
            print_string (Rota_obs.Top.render ~width ~following:true st);
            print_string "\n[q+Enter or Ctrl-C to quit]\n";
            flush stdout
          in
          (* Line-buffered key handling — no raw terminal mode, so the
             dashboard is safe to pipe and cannot wedge the tty. *)
          let quit_requested () =
            match Unix.select [ Unix.stdin ] [] [] 0. with
            | [ _ ], _, _ -> (
                let buf = Bytes.create 64 in
                match Unix.read Unix.stdin buf 0 64 with
                | 0 -> true (* EOF: non-interactive stdin drained *)
                | n ->
                    Bytes.exists
                      (fun c -> c = 'q' || c = 'Q')
                      (Bytes.sub buf 0 n)
                | exception Unix.Unix_error _ -> false)
            | _ -> false
          in
          redraw ();
          let rec loop idle =
            if quit_requested () then 0
            else
              match Trace_reader.Follow.poll cursor with
              | Error e ->
                  Format.eprintf "rota top: %s: %a@." file
                    Trace_reader.pp_error e;
                  1
              | Ok [] ->
                  if idle_exit > 0. && idle >= idle_exit then begin
                    redraw ();
                    0
                  end
                  else begin
                    Unix.sleepf interval;
                    loop (idle +. interval)
                  end
              | Ok events ->
                  List.iter (Rota_obs.Top.step st) events;
                  redraw ();
                  Unix.sleepf interval;
                  loop 0.
          in
          loop 0.
  in
  let doc =
    "Live terminal dashboard over a (possibly still growing) trace: \
     lifecycle counters, audit watchdog verified/divergent tallies, \
     sampled latency quantiles (p50/p95/p99), counter/gauge last values, \
     and a completions-per-tick sparkline.  Tails the file like \
     $(b,rota audit --follow); with $(b,--once) renders a single frame \
     from a finished trace.  With $(b,--connect) the same dashboard runs \
     against a live daemon, fed by periodic wire-protocol metric scrapes \
     instead of a trace file."
  in
  let trace_opt_pos =
    Arg.(value & pos 0 (some file) None
         & info [] ~docv:"TRACE"
             ~doc:
               "A telemetry trace written with --trace (JSONL or binary; \
                the format is auto-detected).  Omit with $(b,--connect).")
  in
  Cmd.v (Cmd.info "top" ~doc)
    Term.(
      const run $ trace_opt_pos $ connect_arg $ once_arg $ interval_arg
      $ idle_exit_arg $ width_arg)

(* --- rota audit / rota explain --------------------------------------------- *)

(* Tail a growing trace with the same incremental core the offline
   audit drives: poll for completed lines, step the auditor, print each
   verdict's complaints as they land.  A partial last line is buffered
   by the cursor, never parsed, so racing the writer is safe. *)
let follow_audit ~idle_exit file =
  match Trace_reader.Follow.open_file file with
  | Error e ->
      Format.eprintf "rota audit: %s: %a@." file Trace_reader.pp_error e;
      1
  | Ok cursor ->
      Fun.protect ~finally:(fun () -> Trace_reader.Follow.close cursor)
      @@ fun () ->
      let module Live = Rota_audit.Audit.Live in
      let live = Live.create () in
      let divergences = ref 0 in
      let on_outcome (o : Live.outcome) =
        match o.Live.verdict with
        | Live.Verified | Live.Skipped _ -> ()
        | Live.Diverged msgs ->
            divergences := !divergences + List.length msgs;
            List.iter
              (fun m ->
                Format.printf "seq %d (run %d, %s %s): DIVERGENCE: %s@."
                  o.Live.seq o.Live.run o.Live.action o.Live.id m)
              msgs
      in
      let finish () =
        Format.printf
          "%d events across %d runs: %d decisions, %d verified, %d skipped, \
           %d divergent@."
          (Live.events live) (Live.runs live) (Live.decisions live)
          (Live.verified live) (Live.skipped live) !divergences;
        if !divergences > 0 then 1 else 0
      in
      let tick = 0.2 in
      let rec loop idle =
        match Trace_reader.Follow.poll cursor with
        | Error e ->
            Format.eprintf "rota audit: %s: %a@." file Trace_reader.pp_error e;
            1
        | Ok [] ->
            if idle_exit > 0. && idle >= idle_exit then finish ()
            else begin
              Unix.sleepf tick;
              loop (idle +. tick)
            end
        | Ok events ->
            List.iter
              (fun e ->
                match Live.step live e with
                | Some o -> on_outcome o
                | None -> ())
              events;
            loop 0.
      in
      loop 0.

let audit_cmd =
  let max_div_arg =
    Arg.(value & opt int 100 & info [ "max-divergences" ] ~docv:"N"
           ~doc:"How many divergences to report before summarizing the rest.")
  in
  let follow_arg =
    Arg.(value & flag
         & info [ "follow" ]
             ~doc:
               "Tail a trace that is still being written: audit events as \
                their lines complete, printing divergences as they happen, \
                until interrupted (or idle past $(b,--idle-exit)).  A \
                crash-cut partial last line is waited on, not an error.")
  in
  let idle_exit_arg =
    Arg.(value & opt float 0. & info [ "idle-exit" ] ~docv:"SECS"
           ~doc:
             "With $(b,--follow): exit (with the audit summary and verdict) \
              after $(docv) seconds without new events.  0 follows forever.")
  in
  let run file max_divergences follow idle_exit =
    if follow then follow_audit ~idle_exit file
    else
      match Rota_audit.Audit.audit_file ~max_divergences file with
      | Error e ->
          Format.eprintf "rota audit: %s: %a@." file Trace_reader.pp_error e;
          1
      | Ok report ->
          Format.printf "%a@." Rota_audit.Audit.pp_report report;
          if Rota_audit.Audit.ok report then 0 else 1
  in
  let doc =
    "Independently re-verify every decision certificate in a trace: replay \
     the trace, reconstruct capacity and the commitment ledger from prior \
     events alone, and re-check each certificate through the validator \
     (never the decision procedure).  Exits non-zero on any divergence.  \
     With $(b,--follow), tails a growing trace live."
  in
  Cmd.v (Cmd.info "audit" ~doc)
    Term.(
      const run $ trace_pos ~docv:"TRACE" () $ max_div_arg $ follow_arg
      $ idle_exit_arg)

let explain_cmd =
  let id_arg =
    Arg.(required & pos 1 (some string) None & info [] ~docv:"ID"
           ~doc:"A computation or session id appearing in the trace.")
  in
  let run file id =
    match Rota_audit.Audit.explain_file file ~id with
    | Error e ->
        Format.eprintf "rota explain: %s: %a@." file Trace_reader.pp_error e;
        1
    | Ok [] ->
        Printf.eprintf "rota explain: no decision about %s in %s\n" id file;
        1
    | Ok blocks ->
        List.iteri
          (fun i b ->
            if i > 0 then print_newline ();
            print_endline b)
          blocks;
        0
  in
  let doc =
    "Explain why a computation was admitted, rejected, evicted, or \
     repaired: its decision records with the theorem consulted, the \
     breakpoint timeline of the certified schedule, and the auditor's \
     verdict."
  in
  Cmd.v (Cmd.info "explain" ~doc)
    Term.(const run $ trace_pos ~docv:"TRACE" () $ id_arg)

(* --- rota serve / rota load ---------------------------------------------- *)

let address_args =
  let socket_arg =
    let doc = "Listen on (or connect to) a Unix-domain socket at $(docv)." in
    Arg.(value & opt (some string) None & info [ "socket" ] ~docv:"PATH" ~doc)
  in
  let tcp_arg =
    let doc = "Listen on (or connect to) TCP $(docv) (HOST:PORT)." in
    Arg.(value & opt (some string) None & info [ "tcp" ] ~docv:"ADDR" ~doc)
  in
  let combine socket tcp =
    match (socket, tcp) with
    | Some _, Some _ -> Error "--socket and --tcp are mutually exclusive"
    | Some path, None -> Ok (Rota_server.Daemon.Unix_socket path)
    | None, Some addr -> (
        match String.rindex_opt addr ':' with
        | None -> Error (Printf.sprintf "bad --tcp %S (expected HOST:PORT)" addr)
        | Some i -> (
            let host = String.sub addr 0 i
            and port = String.sub addr (i + 1) (String.length addr - i - 1) in
            match int_of_string_opt port with
            | Some p when p > 0 && p < 65536 ->
                Ok (Rota_server.Daemon.Tcp (host, p))
            | _ -> Error (Printf.sprintf "bad --tcp port %S" port)))
    | None, None -> Error "one of --socket or --tcp is required"
  in
  Term.(const combine $ socket_arg $ tcp_arg)

let serve_cmd =
  let dir_arg =
    let doc = "State directory: the WAL ($(b,wal.rotb), a valid binary \
               trace — every trace tool reads it) and snapshots live here." in
    Arg.(required & opt (some string) None & info [ "dir" ] ~docv:"DIR" ~doc)
  in
  let policy_arg =
    Arg.(value & opt policy_conv Admission.Rota
         & info [ "policy" ] ~docv:"POLICY" ~doc:"Admission policy.")
  in
  let max_queue_arg =
    Arg.(value & opt int 512 & info [ "max-queue" ] ~docv:"N"
           ~doc:"Bounded request queue size; beyond it the accept loop \
                 backpressures and admits are shed.")
  in
  let budget_arg =
    Arg.(value & opt float 250. & info [ "budget-ms" ] ~docv:"MS"
           ~doc:"Default decision-latency budget for requests that carry \
                 none; a request whose queue delay would exceed its budget \
                 is rejected fast with the $(b,shed) slug.")
  in
  let snapshot_every_arg =
    Arg.(value & opt int 512 & info [ "snapshot-every" ] ~docv:"N"
           ~doc:"Snapshot admission state every $(docv) decided requests \
                 (and on graceful shutdown).")
  in
  let decide_delay_arg =
    Arg.(value & opt float 0. & info [ "decide-delay-ms" ] ~docv:"MS"
           ~doc:"Testing: add artificial latency to every decision, to \
                 provoke overload deterministically.")
  in
  let metrics_listen_arg =
    Arg.(value & opt (some string) None
         & info [ "metrics-listen" ] ~docv:"ADDR"
             ~doc:
               "Answer HTTP scrapes with the OpenMetrics exposition on \
                $(docv) (a Unix socket path or HOST:PORT), served from the \
                same select loop as the wire protocol.  Pair with \
                $(b,rota metrics scrape) or any Prometheus-style agent.")
  in
  let serve_metrics_out_arg =
    Arg.(value & opt (some string) None
         & info [ "metrics-out" ] ~docv:"FILE"
             ~doc:
               "Atomically rewrite an OpenMetrics snapshot of the daemon's \
                registry to $(docv) every $(b,--metrics-every) observed \
                events, and once at drain.")
  in
  let serve_metrics_every_arg =
    Arg.(value & opt int 256 & info [ "metrics-every" ] ~docv:"N"
           ~doc:"With $(b,--metrics-out): events between rewrites.")
  in
  let no_telemetry_arg =
    Arg.(value & flag
         & info [ "no-telemetry" ]
             ~doc:
               "Switch the observability plane off entirely: no metric \
                recording, no request spans, no live audit watchdog, no \
                flight recorder.  The decide path is otherwise identical — \
                the $(b,server/telemetry-overhead) bench pair measures \
                exactly this flag.")
  in
  let slo_budget_arg =
    Arg.(value & opt float 0.01 & info [ "slo-budget" ] ~docv:"FRACTION"
           ~doc:
             "Deadline-assurance error budget: the fraction of requests \
              allowed to go bad (shed, or contradicted by the live audit) \
              before the $(b,slo/burn_*) gauges exceed 1000 (= burning at \
              exactly budget).")
  in
  let flight_capacity_arg =
    Arg.(value & opt int 4096 & info [ "flight-capacity" ] ~docv:"N"
           ~doc:
             "Flight-recorder ring size: the last $(docv) events are kept \
              in memory and dumped to $(b,DIR/flight-<pid>.rotb) — a valid \
              binary trace — on SIGQUIT, the first audit divergence, a \
              shed storm, or a fatal error.")
  in
  let run address_r dir policy max_queue budget_ms snapshot_every
      decide_delay_ms metrics_listen metrics_out metrics_every no_telemetry
      slo_budget flight_capacity =
    match address_r with
    | Error m ->
        prerr_endline ("rota serve: " ^ m);
        2
    | Ok address -> (
        let metrics_listen = Option.map parse_endpoint metrics_listen in
        let cfg =
          Rota_server.Daemon.config ~max_queue ~default_budget_ms:budget_ms
            ~snapshot_every ~decide_delay_ms:decide_delay_ms
            ~telemetry:(not no_telemetry) ?metrics_listen ?metrics_out
            ~metrics_every ~slo_budget ~flight_capacity ~dir ~address policy
        in
        let on_ready (r : Rota_server.Wal.recovery) =
          Printf.printf
            "rota serve: listening (policy %s, wal seq %d%s%s)\n%!"
            (Admission.policy_name policy)
            r.Rota_server.Wal.scanned
            (if r.Rota_server.Wal.from_snapshot then ", from snapshot" else "")
            (if r.Rota_server.Wal.truncated > 0 then
               Printf.sprintf ", %d dangling bytes truncated"
                 r.Rota_server.Wal.truncated
             else "");
          if r.Rota_server.Wal.scanned > 0 then
            Printf.printf
              "rota serve: recovered %d records (%d replayed, %d decisions \
               re-verified, %d diverged), residual digest %s\n%!"
              r.Rota_server.Wal.scanned r.Rota_server.Wal.replayed
              r.Rota_server.Wal.verified r.Rota_server.Wal.diverged
              r.Rota_server.Wal.digest;
          match cfg.Rota_server.Daemon.metrics_listen with
          | Some (Rota_server.Daemon.Unix_socket p) ->
              Printf.printf "rota serve: metrics on %s\n%!" p
          | Some (Rota_server.Daemon.Tcp (h, p)) ->
              Printf.printf "rota serve: metrics on %s:%d\n%!" h p
          | None -> ()
        in
        match Rota_server.Daemon.run ~on_ready cfg with
        | Ok () ->
            print_endline "rota serve: drained";
            0
        | Error m ->
            prerr_endline ("rota serve: " ^ m);
            1)
  in
  let doc =
    "Run the admission daemon: decide admit/release/revoke/query requests \
     (JSONL over a socket) through the admission controller, write-ahead \
     logging every decided request to a binary trace before replying, with \
     digest-verified crash recovery and deadline-aware load shedding."
  in
  Cmd.v (Cmd.info "serve" ~doc)
    Term.(
      const run $ address_args $ dir_arg $ policy_arg $ max_queue_arg
      $ budget_arg $ snapshot_every_arg $ decide_delay_arg
      $ metrics_listen_arg $ serve_metrics_out_arg $ serve_metrics_every_arg
      $ no_telemetry_arg $ slo_budget_arg $ flight_capacity_arg)

let load_cmd =
  let connections_arg =
    Arg.(value & opt int 2 & info [ "connections" ] ~docv:"C"
           ~doc:"Client connections.")
  in
  let pipeline_arg =
    Arg.(value & opt int 8 & info [ "pipeline" ] ~docv:"P"
           ~doc:"Outstanding requests per connection (closed loop).")
  in
  let budget_arg =
    Arg.(value & opt (some float) None & info [ "budget-ms" ] ~docv:"MS"
           ~doc:"Decision-latency budget attached to every admit request.")
  in
  let arrivals_arg =
    Arg.(value & opt int 100 & info [ "arrivals" ] ~docv:"N"
           ~doc:"Number of computations offered (generated workload).")
  in
  let horizon_arg =
    Arg.(value & opt int 400 & info [ "horizon" ] ~docv:"T"
           ~doc:"Workload horizon in ticks.")
  in
  let locations_arg =
    Arg.(value & opt int 3 & info [ "locations" ] ~docv:"K"
           ~doc:"Number of nodes in the generated workload.")
  in
  let slack_arg =
    Arg.(value & opt float 2.0 & info [ "slack" ] ~docv:"S"
           ~doc:"Deadline slack factor of the generated workload.")
  in
  let load_trace_arg =
    Arg.(value & opt (some string) None
         & info [ "trace" ] ~docv:"FILE"
             ~doc:
               "Record the load test's RTT histogram into $(docv) as \
                periodic hist-sample events (binary ROTB if $(docv) ends \
                in $(b,.rotb), JSONL otherwise), so $(b,rota trace \
                summarize) and $(b,rota top) render client-side latency \
                the same way they render engine latency.")
  in
  let run address_r seed connections pipeline budget_ms arrivals horizon
      locations slack trace file =
    match address_r with
    | Error m ->
        prerr_endline ("rota load: " ^ m);
        2
    | Ok address -> (
        let trace_r =
          match file with
          | Some path -> Result.map Document.to_trace (load_document path)
          | None ->
              Ok
                (Scenario.trace
                   {
                     Scenario.default_params with
                     seed;
                     arrivals;
                     horizon;
                     locations;
                     slack;
                   })
        in
        match trace_r with
        | Error m ->
            prerr_endline ("rota load: " ^ m);
            1
        | Ok workload -> (
            let sink_r =
              match trace with
              | None -> Ok None
              | Some path -> (
                  let open_sink =
                    if Filename.check_suffix path ".rotb" then
                      Rota_obs.Sink.binary_file
                    else Rota_obs.Sink.jsonl_file
                  in
                  try Ok (Some (open_sink ~flush_every:64 path))
                  with Sys_error m -> Error m)
            in
            match sink_r with
            | Error m ->
                prerr_endline ("rota load: cannot open trace file: " ^ m);
                1
            | Ok sink -> (
                Option.iter Rota_obs.Tracer.install sink;
                let finally () = Rota_obs.Tracer.uninstall () in
                Fun.protect ~finally @@ fun () ->
                let cfg =
                  {
                    Rota_server.Loadgen.address;
                    connections;
                    pipeline;
                    budget_ms;
                    trace = workload;
                  }
                in
                match Rota_server.Loadgen.run cfg with
                | Ok report ->
                    Format.printf "%a@." Rota_server.Loadgen.pp_report report;
                    0
                | Error m ->
                    prerr_endline ("rota load: " ^ m);
                    1)))
  in
  let doc =
    "Drive a running serve daemon with a scenario workload (closed loop): \
     joins and arrivals replay as wire requests in event order, and the \
     report quotes admit/reject/shed counts and round-trip latency \
     percentiles."
  in
  Cmd.v (Cmd.info "load" ~doc)
    Term.(
      const run $ address_args $ seed_arg $ connections_arg $ pipeline_arg
      $ budget_arg $ arrivals_arg $ horizon_arg $ locations_arg $ slack_arg
      $ load_trace_arg $ file_arg)

(* --- rota ----------------------------------------------------------------- *)

let main_cmd =
  let doc =
    "ROTA: resource-oriented temporal logic for deadline assurance in \
     open distributed systems (ICDCS 2010 reproduction)."
  in
  Cmd.group
    (Cmd.info "rota" ~version:"1.0.0" ~doc)
    ([ experiment_cmd; simulate_cmd; check_cmd; plan_cmd; calibrate_cmd;
       trace_cmd; metrics_cmd; top_cmd; audit_cmd; explain_cmd; serve_cmd;
       load_cmd ]
    @ experiment_alias_cmds)

let () = exit (Cmd.eval' main_cmd)
