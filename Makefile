.PHONY: all build test bench bench-smoke bench-gate trace-smoke faults-smoke audit-smoke watchdog-smoke telemetry-smoke serve-smoke serve-metrics-smoke check fmt clean

all: build

build:
	dune build

test:
	dune runtest

# Observability-overhead proof: the disabled telemetry path must stay
# within noise of the uninstrumented baselines (see doc/observability.md).
bench:
	dune exec bench/main.exe

# Incremental-ledger smoke: run just the admission-at-scale group so
# the cached-residual decision path is exercised beyond unit tests (the
# O(n) invariant checker stays off here — it would hide the incremental
# cost being measured; the test suite runs it instead).  CI runs this
# on every push.  The machine-readable snapshot lands in BENCH_0.json
# (schema rota-bench-1); the committed copy is the repo's perf baseline.
bench-smoke:
	dune exec bench/main.exe -- scheduler/admission-scale server/decide-rtt server/telemetry-overhead --json BENCH_0.json

# Perf-regression gate: re-measure the admission-scale group with the
# committed baseline's quota (1.5 s per row — enough samples for the
# OLS fit to be trustworthy, r^2 >= 0.9 on a quiet machine) and diff
# every row against BENCH_1.json.  A trustworthy baseline row (r^2 >=
# 0.5, not tagged unstable) that slowed by more than 20% fails the
# build; unstable rows are listed as SKIP, never silently trusted.
# Two defences against shared-runner noise: fresh rows are rescaled by
# the ratio of the snapshots' spin-loop anchors (metadata
# spin_ns_per_iter), so a runner that is uniformly slower today does
# not fail every row; and the group is measured twice with the per-row
# best (stable preferred, then minimum) gating — contention only adds
# time, so the minimum estimates the code's true cost.
# After a deliberate perf change, refresh the baseline in the same
# commit with the same estimator:
#   for i in 1 2 3; do dune exec bench/main.exe -- \
#     scheduler/admission-scale server/decide-rtt \
#     server/telemetry-overhead --quota 1.5 --json /tmp/b$$i.json; done
#   dune exec bench/gate.exe -- --merge /tmp/b1.json /tmp/b2.json \
#     /tmp/b3.json > BENCH_1.json
# A failing first verdict gets one escalation — two more runs, gate on
# the best of all four — before the build fails: the minimum over four
# runs is inside the noise floor unless the code really regressed.
BENCH_GATE_GROUPS = scheduler/admission-scale server/decide-rtt server/telemetry-overhead
bench-gate: build
	@t1=$$(mktemp /tmp/rota-bench-gate.XXXXXX.json); \
	t2=$$(mktemp /tmp/rota-bench-gate.XXXXXX.json); \
	t3=$$(mktemp /tmp/rota-bench-gate.XXXXXX.json); \
	t4=$$(mktemp /tmp/rota-bench-gate.XXXXXX.json); \
	trap 'rm -f "$$t1" "$$t2" "$$t3" "$$t4"' EXIT; \
	dune exec bench/main.exe -- $(BENCH_GATE_GROUPS) --quota 1.5 \
	  --json "$$t1" >/dev/null && \
	dune exec bench/main.exe -- $(BENCH_GATE_GROUPS) --quota 1.5 \
	  --json "$$t2" >/dev/null || exit 1; \
	if dune exec bench/gate.exe -- BENCH_1.json "$$t1" "$$t2"; then :; else \
	  echo "bench-gate: verdict FAIL on two runs; escalating to four"; \
	  dune exec bench/main.exe -- $(BENCH_GATE_GROUPS) --quota 1.5 \
	    --json "$$t3" >/dev/null && \
	  dune exec bench/main.exe -- $(BENCH_GATE_GROUPS) --quota 1.5 \
	    --json "$$t4" >/dev/null || exit 1; \
	  dune exec bench/gate.exe -- BENCH_1.json "$$t1" "$$t2" "$$t3" "$$t4"; \
	fi

# Trace contract, end to end on a real experiment: the E6 trace the
# binary emits must satisfy its own validator, and the analysis tools
# must be able to read it back.
trace-smoke: build
	@tmp=$$(mktemp /tmp/rota-trace-smoke.XXXXXX.jsonl); \
	trap 'rm -f "$$tmp"' EXIT; \
	dune exec bin/main.exe -- e6 --trace "$$tmp" >/dev/null && \
	dune exec bin/main.exe -- trace validate "$$tmp" && \
	dune exec bin/main.exe -- trace summarize "$$tmp" >/dev/null && \
	echo "trace-smoke: OK"

# Fault-injection smoke, end to end: run E11 (repair vs no-repair vs
# optimistic under unannounced failure, see doc/robustness.md) with
# tracing on, check the emitted stream — fault/repair events included —
# against the trace validator, and re-run one arm from its --fault-seed
# to pin determinism.
faults-smoke: build
	@tmp=$$(mktemp /tmp/rota-faults-smoke.XXXXXX.jsonl); \
	trap 'rm -f "$$tmp"' EXIT; \
	dune exec bin/main.exe -- e11 --trace "$$tmp" >/dev/null && \
	dune exec bin/main.exe -- trace validate "$$tmp" && \
	a=$$(dune exec bin/main.exe -- simulate --policy rota --faults 1.0 --fault-seed 3) && \
	b=$$(dune exec bin/main.exe -- simulate --policy rota --faults 1.0 --fault-seed 3) && \
	test "$$a" = "$$b" && \
	echo "faults-smoke: OK"

# Decision-provenance smoke, end to end: trace E6 (admissions and
# rejections across all policies) and E11 (faults, evictions, repairs),
# then make the independent offline auditor replay each trace and
# re-verify every decision certificate from the trace file alone.  Any
# divergence — a certificate the validator rejects, a residual digest
# that does not match the reconstruction — fails the build.
audit-smoke: build
	@tmp6=$$(mktemp /tmp/rota-audit-smoke-e6.XXXXXX.jsonl); \
	tmp11=$$(mktemp /tmp/rota-audit-smoke-e11.XXXXXX.jsonl); \
	trap 'rm -f "$$tmp6" "$$tmp11"' EXIT; \
	dune exec bin/main.exe -- e6 --trace "$$tmp6" >/dev/null && \
	dune exec bin/main.exe -- trace validate "$$tmp6" && \
	dune exec bin/main.exe -- audit "$$tmp6" && \
	dune exec bin/main.exe -- e11 --trace "$$tmp11" >/dev/null && \
	dune exec bin/main.exe -- trace validate "$$tmp11" && \
	dune exec bin/main.exe -- audit "$$tmp11" && \
	echo "audit-smoke: OK"

# Live-watchdog smoke, end to end: ride E11 (faults, evictions,
# repairs) with the in-engine watchdog in fail-fast mode — any decision
# whose certificate fails to re-verify live aborts the run with a
# nonzero exit naming the decision — and require the exit summary to
# confirm 100% live re-verification with zero divergences.  The same
# trace must then re-audit cleanly offline (live ≡ offline), and the
# obs/audit-overhead bench pair prices the watchdog against the
# identical run without it.
watchdog-smoke: build
	@tmp=$$(mktemp /tmp/rota-watchdog-smoke.XXXXXX.jsonl); \
	trap 'rm -f "$$tmp"' EXIT; \
	out=$$(dune exec bin/main.exe -- e11 --trace "$$tmp" --watchdog=fail-fast) && \
	echo "$$out" | grep -q "every decision re-verified live" && \
	dune exec bin/main.exe -- audit "$$tmp" >/dev/null && \
	dune exec bench/main.exe -- obs/audit-overhead >/dev/null && \
	echo "watchdog-smoke: OK"

# Live-telemetry smoke, end to end: run a watchdogged, sampled E11 with
# the periodic OpenMetrics snapshot writer, then require (a) the scrape
# file to pass the format linter and to name the latency histograms and
# runtime-sampler series the engine is supposed to record, (b) the same
# series to be reconstructable from the trace alone via `metrics
# export`, and (c) `rota top --once` to render a dashboard frame —
# lifecycle tallies, latency quantiles, audit counters — from the trace
# file with no engine in sight.
telemetry-smoke: build
	@tmp=$$(mktemp /tmp/rota-telemetry-smoke.XXXXXX.jsonl); \
	prom=$$(mktemp /tmp/rota-telemetry-smoke.XXXXXX.prom); \
	trap 'rm -f "$$tmp" "$$prom" "$$prom.tmp"' EXIT; \
	dune exec bin/main.exe -- e11 --trace "$$tmp" --sample-every 10 \
	  --watchdog --metrics-out "$$prom" >/dev/null && \
	dune exec bin/main.exe -- metrics lint "$$prom" && \
	grep -q "^admission_decision_s_bucket" "$$prom" && \
	grep -q "^repair_attempt_s_bucket" "$$prom" && \
	grep -q "^accommodation_check_s_bucket" "$$prom" && \
	grep -q "^runtime_minor_words_total" "$$prom" && \
	dune exec bin/main.exe -- metrics export "$$tmp" \
	  | grep -q "^admission_decision_s" && \
	out=$$(dune exec bin/main.exe -- top --once "$$tmp") && \
	echo "$$out" | grep -q "admitted" && \
	echo "$$out" | grep -q "admission/decision_s" && \
	echo "$$out" | grep -q "audit verified" && \
	echo "telemetry-smoke: OK"

# Crash-fault + overload smoke for the serve daemon, end to end.
# Durability leg: start the daemon (slowed so the kill lands mid-stream),
# drive a generated workload at it, SIGKILL it, restart on the same
# state directory and require the recovery line to re-verify every
# logged decision with zero divergence; then push more load across the
# crash boundary, drain gracefully (SIGTERM must exit 0 via "drained"),
# and make the offline auditor re-verify the whole WAL — pre-crash and
# post-crash decisions in one stream, 0 divergent.  Overload leg: a
# slowed daemon under a closed-loop push far past its decision rate
# must answer with structured sheds (never unbounded queueing, never
# failed requests) and still be alive to drain.
serve-smoke: build
	@dir=$$(mktemp -d /tmp/rota-serve-smoke.XXXXXX); \
	bin=./_build/default/bin/main.exe; \
	pid=; \
	trap 'kill -9 $$pid 2>/dev/null; rm -rf "$$dir"' EXIT; \
	"$$bin" serve --dir "$$dir/state" --socket "$$dir/sock" \
	  --decide-delay-ms 10 --budget-ms 100000 >"$$dir/serve1.log" 2>&1 & pid=$$!; \
	i=0; until grep -q "rota serve: listening" "$$dir/serve1.log" 2>/dev/null; do \
	  i=$$((i+1)); test $$i -lt 100 || { cat "$$dir/serve1.log"; exit 1; }; sleep 0.1; \
	done; \
	"$$bin" load --socket "$$dir/sock" --arrivals 150 --horizon 600 \
	  --budget-ms 100000 >"$$dir/load1.log" 2>&1 & lpid=$$!; \
	sleep 1; \
	kill -9 $$pid 2>/dev/null; wait $$pid 2>/dev/null; \
	wait $$lpid 2>/dev/null; \
	"$$bin" serve --dir "$$dir/state" --socket "$$dir/sock" \
	  >"$$dir/serve2.log" 2>&1 & pid=$$!; \
	i=0; until grep -q "rota serve: listening" "$$dir/serve2.log" 2>/dev/null; do \
	  i=$$((i+1)); test $$i -lt 100 || { cat "$$dir/serve2.log"; exit 1; }; sleep 0.1; \
	done; \
	grep -q "re-verified, 0 diverged" "$$dir/serve2.log" \
	  || { echo "serve-smoke: recovery did not re-verify cleanly"; cat "$$dir/serve2.log"; exit 1; }; \
	"$$bin" load --socket "$$dir/sock" --arrivals 60 --horizon 600 --seed 11 \
	  >"$$dir/load2.log" 2>&1 || { cat "$$dir/load2.log"; exit 1; }; \
	kill -TERM $$pid; wait $$pid || { cat "$$dir/serve2.log"; exit 1; }; \
	grep -q "rota serve: drained" "$$dir/serve2.log" \
	  || { cat "$$dir/serve2.log"; exit 1; }; \
	"$$bin" audit "$$dir/state/wal.rotb" >"$$dir/audit.log" \
	  || { cat "$$dir/audit.log"; exit 1; }; \
	grep -q ", 0 divergent" "$$dir/audit.log" \
	  || { echo "serve-smoke: audit found divergence across the crash boundary"; cat "$$dir/audit.log"; exit 1; }; \
	"$$bin" serve --dir "$$dir/state2" --socket "$$dir/sock2" \
	  --decide-delay-ms 5 --budget-ms 40 >"$$dir/serve3.log" 2>&1 & pid=$$!; \
	i=0; until grep -q "rota serve: listening" "$$dir/serve3.log" 2>/dev/null; do \
	  i=$$((i+1)); test $$i -lt 100 || { cat "$$dir/serve3.log"; exit 1; }; sleep 0.1; \
	done; \
	"$$bin" load --socket "$$dir/sock2" --connections 4 --pipeline 32 \
	  --budget-ms 40 --arrivals 100 >"$$dir/load3.log" 2>&1 \
	  || { cat "$$dir/load3.log"; exit 1; }; \
	shed=$$(sed -n 's/.*shed \([0-9][0-9]*\),.*/\1/p' "$$dir/load3.log"); \
	failed=$$(sed -n 's/.*failed \([0-9][0-9]*\).*/\1/p' "$$dir/load3.log"); \
	{ test -n "$$shed" && test "$$shed" -gt 0; } \
	  || { echo "serve-smoke: expected sheds under overload"; cat "$$dir/load3.log"; exit 1; }; \
	test "$$failed" = 0 \
	  || { echo "serve-smoke: failed requests under overload"; cat "$$dir/load3.log"; exit 1; }; \
	kill -TERM $$pid; wait $$pid || { cat "$$dir/serve3.log"; exit 1; }; \
	echo "serve-smoke: OK"

# Serving-observability smoke: a daemon with the scrape endpoint on is
# driven by a load run, scraped over the mini HTTP responder, and the
# exposition must lint and carry the serve-side families (request RTT,
# admission slack, SLO burn).  The live cockpit must render a frame
# from the wire `metrics` verb.  Then SIGQUIT: the daemon must dump a
# flight-recorder ring that `trace validate` accepts as a standalone
# binary trace, and the periodic --metrics-out file must lint too.
serve-metrics-smoke: build
	@dir=$$(mktemp -d /tmp/rota-msmoke.XXXXXX); \
	bin=./_build/default/bin/main.exe; \
	pid=; \
	trap 'kill -9 $$pid 2>/dev/null; rm -rf "$$dir"' EXIT; \
	"$$bin" serve --dir "$$dir/state" --socket "$$dir/sock" \
	  --metrics-listen "$$dir/msock" --metrics-out "$$dir/out.prom" \
	  --metrics-every 16 >"$$dir/serve.log" 2>&1 & pid=$$!; \
	i=0; until grep -q "rota serve: metrics on" "$$dir/serve.log" 2>/dev/null; do \
	  i=$$((i+1)); test $$i -lt 100 || { cat "$$dir/serve.log"; exit 1; }; sleep 0.1; \
	done; \
	"$$bin" load --socket "$$dir/sock" --arrivals 60 --horizon 600 \
	  --trace "$$dir/load.rotb" >"$$dir/load.log" 2>&1 \
	  || { cat "$$dir/load.log"; exit 1; }; \
	"$$bin" metrics scrape "$$dir/msock" -o "$$dir/scrape.prom" \
	  || { echo "serve-metrics-smoke: scrape failed"; cat "$$dir/serve.log"; exit 1; }; \
	"$$bin" metrics lint "$$dir/scrape.prom" >/dev/null \
	  || { echo "serve-metrics-smoke: scrape does not lint"; exit 1; }; \
	for fam in server_rtt_s server_admit_slack slo_burn_5m slo_burn_1h \
	  server_requests_total server_queue_wait_s; do \
	  grep -q "$$fam" "$$dir/scrape.prom" \
	    || { echo "serve-metrics-smoke: family $$fam missing from scrape"; \
	         cat "$$dir/scrape.prom"; exit 1; }; \
	done; \
	"$$bin" top --connect "$$dir/sock" --once >"$$dir/top.log" 2>&1 \
	  || { echo "serve-metrics-smoke: live top failed"; cat "$$dir/top.log"; exit 1; }; \
	"$$bin" trace validate "$$dir/load.rotb" >/dev/null \
	  || { echo "serve-metrics-smoke: load trace invalid"; exit 1; }; \
	kill -QUIT $$pid; \
	wait $$pid || { cat "$$dir/serve.log"; exit 1; }; \
	grep -q "flight recorder:" "$$dir/serve.log" \
	  || { echo "serve-metrics-smoke: no flight dump on SIGQUIT"; \
	       cat "$$dir/serve.log"; exit 1; }; \
	flight=$$(ls "$$dir"/state/flight-*.rotb 2>/dev/null | head -n 1); \
	test -n "$$flight" \
	  || { echo "serve-metrics-smoke: flight file missing"; ls "$$dir/state"; exit 1; }; \
	"$$bin" trace validate "$$flight" >/dev/null \
	  || { echo "serve-metrics-smoke: flight dump does not validate"; exit 1; }; \
	"$$bin" metrics lint "$$dir/out.prom" >/dev/null \
	  || { echo "serve-metrics-smoke: --metrics-out file does not lint"; exit 1; }; \
	echo "serve-metrics-smoke: OK"

# What CI runs.  `dune fmt` is included only when ocamlformat is
# installed — the pinned toolchain image ships without it.
check: build test trace-smoke faults-smoke audit-smoke watchdog-smoke telemetry-smoke serve-smoke serve-metrics-smoke bench-gate
	@if command -v ocamlformat >/dev/null 2>&1; then \
	  dune build @fmt; \
	else \
	  echo "ocamlformat not installed; skipping format check"; \
	fi

fmt:
	dune fmt

clean:
	dune clean
