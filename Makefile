.PHONY: all build test bench check fmt clean

all: build

build:
	dune build

test:
	dune runtest

# Observability-overhead proof: the disabled telemetry path must stay
# within noise of the uninstrumented baselines (see doc/observability.md).
bench:
	dune exec bench/main.exe

# What CI runs.  `dune fmt` is included only when ocamlformat is
# installed — the pinned toolchain image ships without it.
check: build test
	@if command -v ocamlformat >/dev/null 2>&1; then \
	  dune build @fmt; \
	else \
	  echo "ocamlformat not installed; skipping format check"; \
	fi

fmt:
	dune fmt

clean:
	dune clean
