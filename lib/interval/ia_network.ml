type t = { n : int; edges : Allen.Set.t array }
(* [edges] is an [n * n] matrix in row-major order; the invariant
   [edges.(j*n+i) = Allen.Set.inverse edges.(i*n+j)] is maintained by every
   update, and the diagonal is pinned to [Equals]. *)

let idx net i j = (i * net.n) + j

let check_var net i =
  if i < 0 || i >= net.n then
    invalid_arg (Printf.sprintf "Ia_network: variable %d out of range" i)

let create n =
  if n < 0 then invalid_arg "Ia_network.create: negative size";
  let edges = Array.make (n * n) Allen.Set.full in
  for i = 0 to n - 1 do
    edges.((i * n) + i) <- Allen.Set.singleton Allen.Equals
  done;
  { n; edges }

let size net = net.n

let get net i j =
  check_var net i;
  check_var net j;
  net.edges.(idx net i j)

let set net i j s =
  net.edges.(idx net i j) <- s;
  net.edges.(idx net j i) <- Allen.Set.inverse s

let constrain net i j s =
  check_var net i;
  check_var net j;
  set net i j (Allen.Set.inter (get net i j) s)

let constrain_relation net i j r = constrain net i j (Allen.Set.singleton r)

let m_propagate = Rota_obs.Metrics.counter "ia/propagate"
let m_propagate_s = Rota_obs.Metrics.histogram "ia/propagate_s"

let propagate_uninstrumented net =
  let n = net.n in
  let queue = Queue.create () in
  let in_queue = Array.make (n * n) false in
  let enqueue i j =
    if i <> j && not in_queue.(idx net i j) then begin
      in_queue.(idx net i j) <- true;
      Queue.add (i, j) queue
    end
  in
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      enqueue i j
    done
  done;
  let inconsistent = ref false in
  (* Tighten [a -> b] with the composition through the path [a -> via -> b];
     enqueue the edge when it actually changed. *)
  let revise a via b =
    let before = net.edges.(idx net a b) in
    let through =
      Allen.Set.compose net.edges.(idx net a via) net.edges.(idx net via b)
    in
    let after = Allen.Set.inter before through in
    if not (Allen.Set.equal before after) then begin
      set net a b after;
      if Allen.Set.is_empty after then inconsistent := true;
      enqueue a b
    end
  in
  while (not !inconsistent) && not (Queue.is_empty queue) do
    let i, j = Queue.pop queue in
    in_queue.(idx net i j) <- false;
    for k = 0 to n - 1 do
      if k <> i && k <> j then begin
        revise i j k;
        if not !inconsistent then revise k i j
      end
    done
  done;
  not !inconsistent

let propagate net =
  if Rota_obs.Metrics.enabled () then begin
    Rota_obs.Metrics.incr m_propagate;
    Rota_obs.Metrics.time m_propagate_s (fun () ->
        propagate_uninstrumented net)
  end
  else propagate_uninstrumented net

let copy net = { n = net.n; edges = Array.copy net.edges }

let consistent_scenario net =
  let n = net.n in
  (* Backtracking refinement: pick the first non-atomic edge, try each of
     its base relations with propagation, recurse. *)
  let rec refine net =
    let non_atomic = ref None in
    (try
       for i = 0 to n - 1 do
         for j = i + 1 to n - 1 do
           if Allen.Set.cardinal (get net i j) > 1 then begin
             non_atomic := Some (i, j);
             raise Exit
           end
         done
       done
     with Exit -> ());
    match !non_atomic with
    | None ->
        let scenario =
          Array.init n (fun i ->
              Array.init n (fun j ->
                  match Allen.Set.to_list (get net i j) with
                  | [ r ] -> r
                  | _ -> assert false))
        in
        Some scenario
    | Some (i, j) ->
        let try_relation r =
          let candidate = copy net in
          constrain_relation candidate i j r;
          if propagate candidate then refine candidate else None
        in
        List.find_map try_relation (Allen.Set.to_list (get net i j))
  in
  let net = copy net in
  if propagate net then refine net else None

(* Realization: translate an atomic scenario into order constraints over the
   2n interval endpoints, merge equalities with union-find, then assign each
   point its longest-path layer in the strict-order DAG. *)
let realize scenario =
  let n = Array.length scenario in
  let points = 2 * n in
  let start_of i = 2 * i and stop_of i = (2 * i) + 1 in
  let parent = Array.init points Fun.id in
  let rec find x = if parent.(x) = x then x else find parent.(x) in
  let union x y =
    let rx = find x and ry = find y in
    if rx <> ry then parent.(rx) <- ry
  in
  let lt_edges = ref [] in
  let lt x y = lt_edges := (x, y) :: !lt_edges in
  let add_constraints i j r =
    let si = start_of i
    and ei = stop_of i
    and sj = start_of j
    and ej = stop_of j in
    match (r : Allen.relation) with
    | Before -> lt ei sj
    | After -> lt ej si
    | Meets -> union ei sj
    | Met_by -> union ej si
    | Overlaps ->
        lt si sj;
        lt sj ei;
        lt ei ej
    | Overlapped_by ->
        lt sj si;
        lt si ej;
        lt ej ei
    | Starts ->
        union si sj;
        lt ei ej
    | Started_by ->
        union si sj;
        lt ej ei
    | During ->
        lt sj si;
        lt ei ej
    | Contains ->
        lt si sj;
        lt ej ei
    | Finishes ->
        union ei ej;
        lt sj si
    | Finished_by ->
        union ei ej;
        lt si sj
    | Equals ->
        union si sj;
        union ei ej
  in
  for i = 0 to n - 1 do
    lt (start_of i) (stop_of i);
    for j = i + 1 to n - 1 do
      add_constraints i j scenario.(i).(j)
    done
  done;
  (* Longest-path layering over representatives; a cycle means the scenario
     was unsatisfiable. *)
  let succs = Hashtbl.create 16 in
  let indegree = Hashtbl.create 16 in
  let reps = Array.init points (fun p -> find p) in
  Array.iter
    (fun r ->
      if not (Hashtbl.mem succs r) then begin
        Hashtbl.add succs r [];
        Hashtbl.add indegree r 0
      end)
    reps;
  let add_edge (x, y) =
    let rx = find x and ry = find y in
    if rx = ry then raise Exit;
    Hashtbl.replace succs rx (ry :: Hashtbl.find succs rx);
    Hashtbl.replace indegree ry (Hashtbl.find indegree ry + 1)
  in
  match List.iter add_edge !lt_edges with
  | exception Exit -> None
  | () ->
      let layer = Hashtbl.create 16 in
      let ready = Queue.create () in
      Hashtbl.iter
        (fun r d ->
          if d = 0 then begin
            Queue.add r ready;
            Hashtbl.replace layer r 0
          end)
        indegree;
      let visited = ref 0 in
      while not (Queue.is_empty ready) do
        let r = Queue.pop ready in
        incr visited;
        let lr = Hashtbl.find layer r in
        let relax s =
          let cur = try Hashtbl.find layer s with Not_found -> 0 in
          if lr + 1 > cur then Hashtbl.replace layer s (lr + 1);
          let d = Hashtbl.find indegree s - 1 in
          Hashtbl.replace indegree s d;
          if d = 0 then Queue.add s ready
        in
        List.iter relax (Hashtbl.find succs r)
      done;
      if !visited <> Hashtbl.length succs then None
      else
        let value p = Hashtbl.find layer (find p) in
        let build i =
          Interval.of_pair (value (start_of i)) (value (stop_of i))
        in
        Some (Array.init n build)

let pp ppf net =
  for i = 0 to net.n - 1 do
    for j = i + 1 to net.n - 1 do
      Format.fprintf ppf "%d->%d: %a@." i j Allen.Set.pp (get net i j)
    done
  done
