open Import

(** The commitment ledger.

    A calendar tracks the system's capacity (all acquired resources, as a
    resource set over time) and the reservations committed to admitted
    computations.  Its {!residual} — capacity minus commitments — is
    exactly the paper's "resources which will expire unless new
    computations requiring them enter the system": the availability that
    Theorem 4 lets a new computation claim without disturbing anyone.

    The ledger is incremental: entries live in a map keyed by computation
    id, and the committed/residual sets are caches updated by one
    resource-set operation per {!commit}, {!release}, {!add_capacity},
    {!remove_capacity} and {!advance} — never by re-folding all entries.
    The admission decision path is therefore O(log n) in the number of
    committed computations (plus the size of the sets involved), instead
    of O(n).  {!self_check} recomputes both caches from scratch and
    compares, guarding against silent drift. *)

type entry = {
  computation : string;
  window : Interval.t;
  reservation : Resource_set.t;
      (** Exactly which resources, and when, this computation will use. *)
  schedules : (Actor_name.t * Accommodation.schedule) list;
      (** The per-actor certificates behind the reservation. *)
}

type t

val create : Resource_set.t -> t

val capacity : t -> Resource_set.t

val entries : t -> entry list
(** Live entries, in computation-id order. *)

val size : t -> int
(** Number of live entries — the ledger's telemetry size. *)

val committed : t -> Resource_set.t
(** Union of all reservations (cached; O(1)). *)

val residual : t -> Resource_set.t
(** Capacity minus commitments — the expiring resources offered to new
    computations (cached; O(1)).  An invariant of {!commit} is that this
    is always well-defined (commitments never exceed capacity). *)

val commit : t -> entry -> (t, string) result
(** Adds an entry; fails when its reservation is not covered by the current
    residual (which would disturb existing commitments), or when the id is
    already committed. *)

val release : t -> computation:string -> t
(** Drops a computation's entry (on completion, cancellation or deadline
    kill); its unused reservation returns to the residual.  Unknown ids are
    ignored. *)

val find : t -> computation:string -> entry option

val add_capacity : t -> Resource_set.t -> t
(** Resources joining the system. *)

val remove_capacity : t -> Resource_set.t -> (t, string) result
(** Withdraws capacity — used when delegating a slice to a child
    encapsulation (see [Pool]).  Fails when the slice is not covered by
    the {e residual} (committed resources cannot be withdrawn). *)

val revoke : t -> Resource_set.t -> t * entry list
(** Forcibly withdraws a capacity slice that never announced its leave —
    the fault-model counterpart of {!remove_capacity}.  Capacity shrinks
    by the clamped difference (total, unlike {!remove_capacity}); entries
    whose reservations no longer fit on the shrunk capacity are {e
    evicted} and returned (in id order) for the repair ladder.  Kept
    entries are untouched — their reservations still hold, so the
    computations behind them run exactly as committed (non-interference,
    Theorem 4). *)

val advance : t -> Time.t -> t
(** Expires capacity and reservations strictly before the given tick. *)

val committed_quantity : t -> Located_type.t -> Interval.t -> int

val capacity_quantity : t -> Located_type.t -> Interval.t -> int

val self_check : t -> (unit, string) result
(** Recomputes the committed and residual sets from the entries and
    compares them against the caches; [Error] describes the first drift
    found.  Cheap enough for tests, too slow for production ledgers. *)

val set_self_check : bool -> unit
(** When enabled, every mutating operation runs {!self_check} on its
    result and raises [Invalid_argument] on drift.  Defaults to the
    [ROTA_CHECK_CALENDAR] environment variable (any value other than
    empty, ["0"] or ["false"] enables it); tests turn it on explicitly. *)

val pp : Format.formatter -> t -> unit

(** {2 Snapshots}

    The ledger's durable form: capacity and every live entry (window,
    reservation and schedules, serialized through the certificate
    codec's rectangle lists).  Used by the serve daemon's digest-stamped
    state snapshots; the committed/residual caches are not stored — they
    are rebuilt by re-committing each entry, so restoring re-runs the
    same validation as admission and a corrupt snapshot is rejected
    rather than trusted. *)

val snapshot : t -> Rota_obs.Json.t

val restore : Rota_obs.Json.t -> (t, string) result
(** Accepts exactly what {!snapshot} produces. *)

(**/**)

val with_caches_unchecked :
  t -> committed:Resource_set.t -> residual:Resource_set.t -> t
(** Test-only: overwrites the committed/residual caches {e without} any
    consistency check, to simulate cache drift when exercising the
    invariant-violation reports.  Never call this outside tests. *)

(**/**)
