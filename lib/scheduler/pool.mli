open Import

(** Hierarchical resource encapsulations (CyberOrgs-inspired).

    The paper inherits from CyberOrgs the idea that resources and the
    computations using them live inside {b encapsulations}, and proposes
    (Section VI) to tame the cost of ROTA reasoning by scoping it to one
    encapsulation at a time.  This module provides that structure: a tree
    of pools, each with its own capacity slice and its own ROTA admission
    controller.

    - {!subdivide} carves a slice out of a pool's {e residual} (never out
      of committed reservations) and hands it to a new child;
    - {!admit} runs the Theorem-4 admission inside one named pool,
      touching only that pool's resources — experiment E7 measures what
      this scoping saves;
    - {!assimilate} dissolves a leaf child back into its parent, returning
      its capacity and re-committing its reservations.  Capacity-wise
      this cannot fail (the child's commitments were carved from capacity
      the parent regains), but it {e can} fail on an id conflict: the
      same computation admitted in both pools.  Such conflicts propagate
      as [Error] with the tree unchanged.

    Pool names are unique across the whole tree. *)

type t = private {
  name : string;
  controller : Admission.t;
  children : t list;
}

val root : ?cost_model:Cost_model.t -> name:string -> Resource_set.t -> t
(** A single encapsulation holding all capacity, with a ROTA controller. *)

val find : t -> string -> t option
(** Lookup by name anywhere in the tree. *)

val names : t -> string list
(** All pool names, preorder. *)

val capacity : t -> Resource_set.t
(** The pool's own capacity (excluding its children's). *)

val residual : t -> Resource_set.t
(** The pool's own uncommitted capacity. *)

val total_capacity : t -> Resource_set.t
(** Capacity of the pool and all descendants. *)

val subdivide :
  t -> parent:string -> name:string -> slice:Resource_set.t -> (t, string) result
(** Creates a child of [parent] owning [slice], withdrawn from the
    parent's residual.  Fails when the parent is unknown, the name is
    taken, or the slice is not covered by the residual. *)

val admit :
  t -> pool:string -> now:Time.t -> Computation.t -> (t * Admission.outcome, string) result
(** Theorem-4 admission scoped to one pool. *)

val complete : t -> pool:string -> computation:string -> (t, string) result
(** Releases a computation's reservation inside its pool. *)

val assimilate : t -> child:string -> (t, string) result
(** Dissolves a {e leaf} child into its parent: capacity returns, active
    reservations transfer.  Fails on unknown names, the root, a child
    that still has children of its own, or a computation id committed in
    both pools (the transfer would collide in the parent's ledger; the
    tree is left unchanged). *)

val fold : (t -> 'a -> 'a) -> t -> 'a -> 'a
(** Preorder fold over every pool. *)

val pp : Format.formatter -> t -> unit
