open Import

(** Admission control.

    The question ROTA exists to answer: "can the system accommodate one
    more computation without affecting the computations it has already
    committed to?"  This module wraps the Theorem-4 machinery as an
    admission controller, alongside the baseline policies the paper's
    argument implies:

    - {b Rota}: admit iff the residual (expiring) resources satisfy the
      computation's concurrent requirement in {e order} (Theorem 4); on
      admission the concrete reservation is committed to the calendar, so
      later admissions cannot disturb it.
    - {b Rota_unmerged}: ablation of Rota with the consecutive-same-type
      step merge disabled (one step per action).
    - {b Rota_given_order}: ablation of Rota that places parts only in
      their given order instead of trying heuristics.
    - {b Aggregate}: admit iff, per located type, the total capacity within
      the window minus the total demand of overlapping admitted
      computations covers the newcomer's total demand.  This is the
      "correct total quantities" test the paper warns about: it ignores
      {e when} resources are available relative to the order steps need
      them, so it over-admits; it books no reservation.
    - {b Optimistic}: admit everything whose deadline has not passed.

    Only the Rota variants book reservations; the baselines rely on
    runtime scheduling and are exactly what the end-to-end experiment (E6)
    measures against. *)

type policy =
  | Rota
  | Rota_unmerged
  | Rota_given_order
  | Aggregate
  | Optimistic

val policy_name : policy -> string

val policy_of_name : string -> policy option
(** Inverse of {!policy_name}; [None] for unknown names. *)

val all_policies : policy list

type outcome = {
  admitted : bool;
  reason : string;  (** Human-readable justification either way. *)
  schedules : (Actor_name.t * Accommodation.schedule) list option;
      (** The raw schedules, for policies that produce them. *)
  certificate : Certificate.t Lazy.t;
      (** Machine-checkable decision evidence: the theorem consulted and
          what was checked against which residual ({!Certificate}).
          Lazy — building it serializes schedules into rectangles — so
          untraced decisions never pay for it; forcing is free of side
          effects and idempotent. *)
}

type t
(** An admission controller: a policy plus its bookkeeping. *)

val create : ?cost_model:Cost_model.t -> policy -> Resource_set.t -> t
(** [create policy capacity]; the cost model defaults to
    {!Cost_model.default}. *)

val policy : t -> policy

val cost_model : t -> Cost_model.t
(** The cost model the controller prices requirements with — exposed so
    derived controllers (e.g. pool subdivision) inherit it. *)

val calendar : t -> Calendar.t
(** The underlying ledger (capacity and any reservations). *)

val residual : t -> Resource_set.t

val ledger_size : t -> int
(** Live bookkeeping records: calendar entries plus demand records — the
    scale the incremental ledger keeps decision cost independent of. *)

val request : t -> now:Time.t -> Computation.t -> t * outcome
(** Decide one arrival.  Deadline-passed and already-admitted requests
    are rejected by every policy.  On a Rota admission the controller
    commits the reservation. *)

val request_session : t -> now:Time.t -> Session.t -> t * outcome
(** Like {!request} for an interacting-actor session: the Rota policies
    run the dependency-aware (Precedence) scheduler on the residual and
    commit one reservation per segment; baselines use their usual
    order-blind checks on the aggregate demand. *)

val complete : t -> computation:string -> t
(** Releases any remaining reservation (completion or deadline kill). *)

val withdraw : t -> now:Time.t -> computation:string -> (t, string) result
(** The paper's {b computation leave} rule at the admission layer: an
    admitted computation may withdraw only before its start time
    ([now < s]); its reservation returns to the residual.  Fails when the
    computation is unknown or has already started. *)

val add_capacity : t -> Resource_set.t -> t
(** Resources joining the system. *)

val remove_capacity : t -> Resource_set.t -> (t, string) result
(** Withdraws uncommitted capacity (delegation to a child encapsulation —
    see [Pool]); fails when commitments cover part of the slice. *)

val revoke : t -> Resource_set.t -> t * Calendar.entry list
(** {!Calendar.revoke} at the admission layer: forcibly withdraws an
    {e unannounced} capacity slice and returns the evicted entries —
    the commitments broken by the fault, in id order — for the repair
    ladder.  Baseline demand records are kept (they hold no
    reservations; the shrunk capacity shows up in their later
    decisions). *)

val adopt : t -> Calendar.entry -> (t, string) result
(** Transfers an existing reservation into this controller's ledger —
    used when a child encapsulation is assimilated and its commitments
    move to the parent.  Fails when the residual cannot cover it. *)

val remember_demand :
  t ->
  computation:string ->
  window:Interval.t ->
  totals:(Located_type.t * int) list ->
  t
(** Re-installs a baseline (Aggregate/Optimistic) demand record without
    re-deciding — {!adopt}'s counterpart for reservation-less
    admissions, used when WAL replay reconstructs a controller from its
    own decision certificates.  Overwrites any record with the same id. *)

val advance : t -> Time.t -> t
(** Move the controller's notion of "now" forward, expiring the past. *)

val admitted_demands : t -> (string * Interval.t * (Located_type.t * int) list) list
(** For the Aggregate baseline's ledger (and diagnostics): each admitted,
    still-active computation with its window and per-type total demand,
    in computation-id order. *)

(** {2 Snapshots}

    The controller's durable form: policy, the calendar
    ({!Calendar.snapshot}), and the baselines' demand ledger, stamped
    with the {!Certificate.digest} of the residual at save time.
    {!restore} rebuilds the state through the same validated paths as
    live admission and fails unless the rebuilt residual hashes to the
    recorded digest, so a corrupt or stale snapshot is refused instead
    of silently voiding commitments. *)

val snapshot : t -> Rota_obs.Json.t

val restore : ?cost_model:Cost_model.t -> Rota_obs.Json.t -> (t, string) result
(** Accepts exactly what {!snapshot} produces; the cost model is not
    serialized (it prices future requests, not recorded state) and
    defaults to {!Cost_model.default}. *)

module Obs : sig
  val slug : string -> string
  (** Compresses a free-text reject reason into a stable counter-label
      slug; never empty (falls back to ["other"]).  An alias for
      {!Rota_obs.Slug.of_reason}, the single taxonomy shared with trace
      summaries. *)
end

val pp_outcome : Format.formatter -> outcome -> unit
