open Import

type policy =
  | Rota
  | Rota_unmerged
  | Rota_given_order
  | Aggregate
  | Optimistic

let policy_name = function
  | Rota -> "rota"
  | Rota_unmerged -> "rota-unmerged"
  | Rota_given_order -> "rota-given-order"
  | Aggregate -> "aggregate"
  | Optimistic -> "optimistic"

let all_policies = [ Rota; Rota_unmerged; Rota_given_order; Aggregate; Optimistic ]

type outcome = {
  admitted : bool;
  reason : string;
  schedules : (Actor_name.t * Accommodation.schedule) list option;
  certificate : Certificate.t Lazy.t;
      (** Lazy so the untraced hot path never serializes schedules; the
          engine forces it only when a tracer is recording. *)
}

type demand = {
  computation : string;
  window : Interval.t;
  totals : (Located_type.t * int) list;
}

module Demand_map = Map.Make (String)

type t = {
  policy : policy;
  cost_model : Cost_model.t;
  calendar : Calendar.t;
  demands : demand Demand_map.t;
      (** Aggregate/Optimistic baselines' ledger, keyed by computation id
          so duplicate checks and removals are O(log n); pruned of
          expired windows on {!advance}. *)
}

let create ?(cost_model = Cost_model.default) policy capacity =
  {
    policy;
    cost_model;
    calendar = Calendar.create capacity;
    demands = Demand_map.empty;
  }

let policy c = c.policy
let cost_model c = c.cost_model
let calendar c = c.calendar
let residual c = Calendar.residual c.calendar
let ledger_size c = Calendar.size c.calendar + Demand_map.cardinal c.demands

let already_admitted c id =
  Demand_map.mem id c.demands
  || Option.is_some (Calendar.find c.calendar ~computation:id)

let admitted_demands c =
  List.map
    (fun (_, d) -> (d.computation, d.window, d.totals))
    (Demand_map.bindings c.demands)

let total_demand cost_model computation =
  let conc = Computation.to_concurrent cost_model computation in
  let module M = Map.Make (Located_type) in
  let totals =
    List.fold_left
      (fun m part ->
        List.fold_left
          (fun m (xi, q) ->
            M.update xi (fun prev -> Some (Option.value prev ~default:0 + q)) m)
          m
          (Requirement.demand_complex part))
      M.empty conc.Requirement.parts
  in
  M.bindings totals

let reject ~certificate reason =
  { admitted = false; reason; schedules = None; certificate }

let admit ?schedules ~certificate reason =
  { admitted = true; reason; schedules; certificate }

(* --- telemetry ---------------------------------------------------------- *)

module Obs = struct
  module Metrics = Rota_obs.Metrics
  module Tracer = Rota_obs.Tracer
  module Clock = Rota_obs.Clock

  type series = {
    requests : Metrics.counter;
    admits : Metrics.counter;
    rejects : Metrics.counter;
    decision_s : Metrics.histogram;
    ledger : Metrics.gauge;
        (** Live ledger size (calendar entries + demand records) after
            the decision — the scale the incremental ledger keeps the
            decision cost independent of. *)
  }

  let series =
    List.map
      (fun p ->
        let n = policy_name p in
        ( p,
          {
            requests = Metrics.counter ("admission/requests." ^ n);
            admits = Metrics.counter ("admission/admitted." ^ n);
            rejects = Metrics.counter ("admission/rejected." ^ n);
            decision_s = Metrics.histogram ("admission/decision_s." ^ n);
            ledger = Metrics.gauge ("admission/ledger_size." ^ n);
          } ))
      all_policies

  let quantity_buckets =
    [| 1.; 2.; 5.; 10.; 20.; 50.; 100.; 200.; 500.; 1000.; 2000.; 5000.;
       10000. |]

  let reservation_quantity =
    Metrics.histogram ~buckets:quantity_buckets
      "admission/reservation_quantity"

  (* Reject reasons become counter labels; the shared slugging function
     guarantees trace summaries bucket by exactly these labels. *)
  let slug = Rota_obs.Slug.of_reason

  let observe_decision policy outcome ~elapsed_s =
    let s = List.assq policy series in
    Metrics.incr s.requests;
    Metrics.observe s.decision_s elapsed_s;
    if outcome.admitted then begin
      Metrics.incr s.admits;
      match outcome.schedules with
      | Some schedules ->
          let quantity =
            List.fold_left
              (fun acc (_, sch) ->
                acc + Resource_set.total sch.Accommodation.reservation)
              0 schedules
          in
          Metrics.observe reservation_quantity (float_of_int quantity)
      | None -> ()
    end
    else begin
      Metrics.incr s.rejects;
      Metrics.incr
        (Metrics.counter ("admission/reject_reason." ^ slug outcome.reason))
    end

  (* Span + per-policy counters/latency around one decision.  The
     disabled path is the bare [decide] call. *)
  let observed policy name ~now ~size decide =
    Tracer.with_span ~sim:now name (fun () ->
        if Metrics.enabled () then begin
          let t0 = Clock.wall_s () in
          let ((c, outcome) as r) = decide () in
          observe_decision policy outcome
            ~elapsed_s:(Clock.wall_s () -. t0);
          Metrics.set (List.assq policy series).ledger (size c);
          r
        end
        else decide ())
end

(* Theorem 4: schedule the newcomer on the residual and commit. *)
let request_rota ?(merge = true) ?order c ~now:_ computation =
  let conc = Computation.to_concurrent ~merge c.cost_model computation in
  let theta = residual c in
  let result =
    match order with
    | Some order -> Accommodation.schedule_concurrent ~order theta conc
    | None -> Accommodation.schedule_concurrent theta conc
  in
  match result with
  | None ->
      ( c,
        reject
          ~certificate:(lazy (Certificate.infeasible ~residual:theta))
          "residual expiring resources cannot satisfy the requirement" )
  | Some schedules ->
      let named =
        List.map2
          (fun (p : Program.t) s -> (p.Program.name, s))
          computation.Computation.programs schedules
      in
      let entry =
        {
          Calendar.computation = computation.Computation.id;
          window = Computation.window computation;
          reservation = Accommodation.reservation_of_schedules schedules;
          schedules = named;
        }
      in
      (* [theta] is the pre-commit residual — exactly what Theorem 4's
         check ran against, which is what the certificate must pin. *)
      let certificate =
        lazy
          (Certificate.of_schedules ~theorem:Certificate.T4 ~residual:theta
             (List.map2
                (fun (actor, s) spec -> (actor, spec, s))
                named conc.Requirement.parts))
      in
      (match Calendar.commit c.calendar entry with
      | Ok calendar ->
          ( { c with calendar },
            admit ~schedules:named ~certificate
              "reservation committed (Theorem 4)" )
      | Error e ->
          (* Cannot happen: the reservation was carved from the residual. *)
          ( c,
            reject
              ~certificate:(lazy (Certificate.infeasible ~residual:theta))
              ("internal: " ^ e) ))

let remember_demand c d =
  { c with demands = Demand_map.add d.computation d c.demands }

(* The aggregate baseline's feasibility table, one row per demanded
   type: the newcomer's demand vs. capacity within the window minus the
   total demand of overlapping admitted computations.  The rows are the
   decision {e and} the certificate — [Certificate.rows_fit] is the
   single verdict function, so the two cannot disagree. *)
let ledger_rows c ~window totals =
  let overlapping_committed xi =
    Demand_map.fold
      (fun _ d acc ->
        if Interval.overlaps d.window window then
          acc
          + List.fold_left
              (fun acc (xj, q) -> if Located_type.equal xi xj then acc + q else acc)
              0 d.totals
        else acc)
      c.demands 0
  in
  List.map
    (fun (xi, q) ->
      {
        Certificate.row_type = xi;
        demand = q;
        capacity = Calendar.capacity_quantity c.calendar xi window;
        committed = overlapping_committed xi;
      })
    totals

let decide_aggregate c ~id ~window totals =
  let rows = ledger_rows c ~window totals in
  let certificate =
    lazy (Certificate.aggregate ~residual:(residual c) ~window ~rows)
  in
  if not (Certificate.rows_fit rows) then
    (c, reject ~certificate "aggregate quantities do not fit")
  else
    let d = { computation = id; window; totals } in
    ( remember_demand c d,
      admit ~certificate "aggregate quantities fit (no ordering check)" )

let request_aggregate c ~now:_ computation =
  decide_aggregate c ~id:computation.Computation.id
    ~window:(Computation.window computation)
    (total_demand c.cost_model computation)

let session_totals cost_model session =
  let nodes = Session.to_nodes cost_model session in
  let module M = Map.Make (Located_type) in
  let totals =
    List.fold_left
      (fun m (n : Precedence.node) ->
        List.fold_left
          (fun m (xi, q) ->
            M.update xi (fun prev -> Some (Option.value prev ~default:0 + q)) m)
          m
          (Requirement.demand_complex n.Precedence.requirement))
      M.empty nodes
  in
  M.bindings totals

let session_window (s : Session.t) =
  Interval.of_pair s.Session.start s.Session.deadline

(* Theorem 4 lifted to sessions: dependency-aware scheduling on the
   residual, then commit. *)
let request_session_rota c ~now:_ session =
  let nodes = Session.to_nodes c.cost_model session in
  let theta = residual c in
  match Precedence.schedule theta nodes with
  | Error e ->
      ( c,
        reject
          ~certificate:(lazy (Certificate.infeasible ~residual:theta))
          (Format.asprintf "residual cannot carry the session: %a"
             Precedence.pp_error e) )
  | Ok placements ->
      let named =
        List.map
          (fun (p : Precedence.placement) ->
            (Actor_name.make p.Precedence.node, p.Precedence.schedule))
          placements
      in
      let reservation =
        Accommodation.reservation_of_schedules (List.map snd named)
      in
      let entry =
        {
          Calendar.computation = session.Session.id;
          window = session_window session;
          reservation;
          schedules = named;
        }
      in
      (* Placements come back in node order, so zip them with the nodes
         to recover each one's requirement.  A node's spec window is its
         {e effective} window — the placement schedule's window, clipped
         by its dependencies — not the session window. *)
      let certificate =
        lazy
          (Certificate.of_schedules ~theorem:Certificate.T4 ~residual:theta
             (List.map2
                (fun (n : Precedence.node) (p : Precedence.placement) ->
                  ( Actor_name.make p.Precedence.node,
                    Requirement.make_complex
                      ~steps:n.Precedence.requirement.Requirement.steps
                      ~window:p.Precedence.schedule.Accommodation.window,
                    p.Precedence.schedule ))
                nodes placements))
      in
      (match Calendar.commit c.calendar entry with
      | Ok calendar ->
          ( { c with calendar },
            admit ~schedules:named ~certificate
              "session reservation committed (Theorem 4)" )
      | Error e ->
          ( c,
            reject
              ~certificate:(lazy (Certificate.infeasible ~residual:theta))
              ("internal: " ^ e) ))

let admit_optimistic c d =
  ( remember_demand c d,
    admit
      ~certificate:
        (lazy (Certificate.optimistic ~window:d.window ~totals:d.totals))
      "optimistic admission" )

let decide_session c ~now session =
  if now >= session.Session.deadline then
    ( c,
      reject
        ~certificate:(lazy (Certificate.stale ~deadline:session.Session.deadline))
        "deadline already passed" )
  else if already_admitted c session.Session.id then
    ( c,
      reject
        ~certificate:(lazy Certificate.duplicate)
        (Printf.sprintf "%s is already admitted" session.Session.id) )
  else
    match c.policy with
    | Rota | Rota_unmerged | Rota_given_order ->
        request_session_rota c ~now session
    | Aggregate ->
        decide_aggregate c ~id:session.Session.id
          ~window:(session_window session)
          (session_totals c.cost_model session)
    | Optimistic ->
        admit_optimistic c
          {
            computation = session.Session.id;
            window = session_window session;
            totals = session_totals c.cost_model session;
          }

let decide c ~now computation =
  if now >= computation.Computation.deadline then
    ( c,
      reject
        ~certificate:
          (lazy (Certificate.stale ~deadline:computation.Computation.deadline))
        "deadline already passed" )
  else if already_admitted c computation.Computation.id then
    (* Without this guard a re-submitted id double-counts under
       Optimistic/Aggregate and surfaces under Rota as a misleading
       "internal: calendar: ... already committed" reject. *)
    ( c,
      reject
        ~certificate:(lazy Certificate.duplicate)
        (Printf.sprintf "%s is already admitted" computation.Computation.id) )
  else
    match c.policy with
    | Rota -> request_rota c ~now computation
    | Rota_unmerged -> request_rota ~merge:false c ~now computation
    | Rota_given_order ->
        request_rota ~order:Accommodation.Order.Given c ~now computation
    | Aggregate -> request_aggregate c ~now computation
    | Optimistic ->
        admit_optimistic c
          {
            computation = computation.Computation.id;
            window = Computation.window computation;
            totals = total_demand c.cost_model computation;
          }

let request c ~now computation =
  Obs.observed c.policy "admission/request" ~now ~size:ledger_size (fun () ->
      decide c ~now computation)

let request_session c ~now session =
  Obs.observed c.policy "admission/request-session" ~now ~size:ledger_size
    (fun () -> decide_session c ~now session)

let withdraw c ~now ~computation =
  let in_calendar = Calendar.find c.calendar ~computation in
  let in_demands = Demand_map.find_opt computation c.demands in
  let window =
    match (in_calendar, in_demands) with
    | Some entry, _ -> Some entry.Calendar.window
    | None, Some d -> Some d.window
    | None, None -> None
  in
  match window with
  | None -> Error (Printf.sprintf "computation %s is not admitted" computation)
  | Some window ->
      if now >= Interval.start window then
        Error
          (Printf.sprintf
             "computation %s has already started (s=%d, now=%d): cannot leave"
             computation (Interval.start window) now)
      else
        Ok
          {
            c with
            calendar = Calendar.release c.calendar ~computation;
            demands = Demand_map.remove computation c.demands;
          }

let complete c ~computation =
  {
    c with
    calendar = Calendar.release c.calendar ~computation;
    demands = Demand_map.remove computation c.demands;
  }

let add_capacity c theta =
  { c with calendar = Calendar.add_capacity c.calendar theta }

let remove_capacity c slice =
  Result.map (fun calendar -> { c with calendar })
    (Calendar.remove_capacity c.calendar slice)

(* Unannounced revocation: the calendar decides which commitments
   survive; the demand ledger (baselines) keeps its records — baseline
   policies hold no reservations to evict, they simply find less
   capacity at dispatch time. *)
let revoke c slice =
  let calendar, evicted = Calendar.revoke c.calendar slice in
  ({ c with calendar }, evicted)

let adopt c entry =
  Result.map (fun calendar -> { c with calendar })
    (Calendar.commit c.calendar entry)

(* Advancing also prunes demand records whose windows have fully
   expired: the optimistic/aggregate baselines would otherwise scan dead
   demands on every decision forever. *)
let advance c now =
  {
    c with
    calendar = Calendar.advance c.calendar now;
    demands = Demand_map.filter (fun _ d -> Interval.stop d.window > now) c.demands;
  }

let pp_outcome ppf o =
  Format.fprintf ppf "%s (%s)" (if o.admitted then "admit" else "reject") o.reason

(* --- state snapshots ------------------------------------------------------ *)

module Json = Rota_obs.Json

let ( let* ) = Result.bind

let policy_of_name name =
  List.find_opt (fun p -> String.equal (policy_name p) name) all_policies

let remember_demand c ~computation ~window ~totals =
  remember_demand c { computation; window; totals }

let jfield name json =
  match Json.member name json with
  | Some v -> Ok v
  | None -> Error (Printf.sprintf "admission snapshot: missing field %S" name)

let snapshot_format = "rota-admission-snapshot-1"

let demand_to_json (d : demand) =
  Json.Obj
    [
      ("computation", Json.String d.computation);
      ("window", Certificate.interval_to_json d.window);
      ( "totals",
        Json.List
          (List.map
             (fun (xi, q) ->
               Json.Obj
                 [
                   ("type", Certificate.ltype_to_json xi);
                   ("quantity", Json.Int q);
                 ])
             d.totals) );
    ]

let demand_of_json json =
  let* computation = Result.bind (jfield "computation" json) Json.to_str in
  let* window =
    Result.bind (jfield "window" json) Certificate.interval_of_json
  in
  let* totals =
    match jfield "totals" json with
    | Ok (Json.List items) ->
        List.fold_left
          (fun acc item ->
            let* acc = acc in
            let* xi = Result.bind (jfield "type" item) Certificate.ltype_of_json in
            let* q = Result.bind (jfield "quantity" item) Json.to_int in
            if q < 0 then Error "admission snapshot: negative demand quantity"
            else Ok ((xi, q) :: acc))
          (Ok []) items
        |> Result.map List.rev
    | Ok _ -> Error "admission snapshot: field \"totals\" is not a list"
    | Error _ as e -> e
  in
  Ok { computation; window; totals }

(* The digest stamp is the snapshot's integrity seal: restore rebuilds
   capacity, every reservation and every demand record, recomputes the
   residual, and refuses the snapshot unless its digest matches what the
   running controller hashed at save time. *)
let snapshot c =
  Json.Obj
    [
      ("format", Json.String snapshot_format);
      ("policy", Json.String (policy_name c.policy));
      ("digest", Json.String (Certificate.digest (residual c)));
      ("calendar", Calendar.snapshot c.calendar);
      ( "demands",
        Json.List
          (List.map
             (fun (_, d) -> demand_to_json d)
             (Demand_map.bindings c.demands)) );
    ]

let restore ?(cost_model = Cost_model.default) json =
  let* fmt = Result.bind (jfield "format" json) Json.to_str in
  let* () =
    if String.equal fmt snapshot_format then Ok ()
    else Error (Printf.sprintf "admission snapshot: unknown format %S" fmt)
  in
  let* pname = Result.bind (jfield "policy" json) Json.to_str in
  let* policy =
    match policy_of_name pname with
    | Some p -> Ok p
    | None -> Error (Printf.sprintf "admission snapshot: unknown policy %S" pname)
  in
  let* recorded = Result.bind (jfield "digest" json) Json.to_str in
  let* calendar = Result.bind (jfield "calendar" json) Calendar.restore in
  let* demands =
    match jfield "demands" json with
    | Ok (Json.List items) ->
        List.fold_left
          (fun acc item ->
            let* m = acc in
            let* d = demand_of_json item in
            Ok (Demand_map.add d.computation d m))
          (Ok Demand_map.empty) items
    | Ok _ -> Error "admission snapshot: field \"demands\" is not a list"
    | Error _ as e -> e
  in
  let c = { policy; cost_model; calendar; demands } in
  let rebuilt = Certificate.digest (residual c) in
  if String.equal rebuilt recorded then Ok c
  else
    Error
      (Printf.sprintf
         "admission snapshot: residual digest mismatch: recorded %s, rebuilt %s"
         recorded rebuilt)
