open Import

type t = { name : string; controller : Admission.t; children : t list }

let root ?cost_model ~name capacity =
  { name; controller = Admission.create ?cost_model Admission.Rota capacity; children = [] }

let rec find pool name =
  if String.equal pool.name name then Some pool
  else List.find_map (fun child -> find child name) pool.children

let rec fold f pool acc =
  List.fold_left (fun acc child -> fold f child acc) (f pool acc) pool.children

let names pool = List.rev (fold (fun p acc -> p.name :: acc) pool [])

let capacity pool = Calendar.capacity (Admission.calendar pool.controller)
let residual pool = Admission.residual pool.controller

let total_capacity pool =
  fold (fun p acc -> Resource_set.union acc (capacity p)) pool Resource_set.empty

(* [update] walking a name that [find] just located cannot miss — the
   tree is immutable between the two walks.  If it ever does, the tree
   itself violated its shape invariant; surface that as a structured
   error (in the spirit of [Calendar.self_check]) instead of aborting
   the process. *)
let tree_drift name =
  Error
    (Printf.sprintf
       "pool: internal tree invariant violated: %s was found but could not \
        be updated"
       name)

(* Rebuild the tree with the pool called [name] replaced by [f pool];
   [None] when the name is absent. *)
let rec update pool name f =
  if String.equal pool.name name then Some (f pool)
  else
    let rec try_children acc = function
      | [] -> None
      | child :: rest -> (
          match update child name f with
          | Some child' -> Some (List.rev_append acc (child' :: rest))
          | None -> try_children (child :: acc) rest)
    in
    Option.map (fun children -> { pool with children })
      (try_children [] pool.children)

let subdivide pool ~parent ~name ~slice =
  if Option.is_some (find pool name) then
    Error (Printf.sprintf "pool %s already exists" name)
  else
    match find pool parent with
    | None -> Error (Printf.sprintf "unknown pool %s" parent)
    | Some parent_pool -> (
        match Admission.remove_capacity parent_pool.controller slice with
        | Error e -> Error e
        | Ok controller ->
            let child =
              {
                name;
                controller =
                  (* The child prices requirements the way its parent
                     does; a default model here would silently change
                     admission decisions inside the slice. *)
                  Admission.create
                    ~cost_model:(Admission.cost_model parent_pool.controller)
                    Admission.Rota slice;
                children = [];
              }
            in
            let replace p =
              { p with controller; children = child :: p.children }
            in
            (match update pool parent replace with
            | Some pool -> Ok pool
            | None -> tree_drift parent))

let admit pool ~pool:pool_name ~now computation =
  match find pool pool_name with
  | None -> Error (Printf.sprintf "unknown pool %s" pool_name)
  | Some target ->
      let controller, outcome =
        Admission.request target.controller ~now computation
      in
      let replace p = { p with controller } in
      (match update pool pool_name replace with
      | Some pool -> Ok (pool, outcome)
      | None -> tree_drift pool_name)

let complete pool ~pool:pool_name ~computation =
  match find pool pool_name with
  | None -> Error (Printf.sprintf "unknown pool %s" pool_name)
  | Some target ->
      let controller = Admission.complete target.controller ~computation in
      let replace p = { p with controller } in
      (match update pool pool_name replace with
      | Some pool -> Ok pool
      | None -> tree_drift pool_name)

(* Find the parent of the pool called [name]. *)
let rec parent_of pool name =
  if List.exists (fun c -> String.equal c.name name) pool.children then
    Some pool
  else List.find_map (fun c -> parent_of c name) pool.children

let assimilate pool ~child =
  if String.equal pool.name child then Error "cannot assimilate the root"
  else
    match (find pool child, parent_of pool child) with
    | None, _ | _, None -> Error (Printf.sprintf "unknown pool %s" child)
    | Some child_pool, Some parent_pool ->
        if child_pool.children <> [] then
          Error (Printf.sprintf "pool %s still has children" child)
        else
          let child_calendar = Admission.calendar child_pool.controller in
          (* Return the child's capacity, then re-commit its live
             reservations.  Each reservation was carved from that
             capacity, so the residual covers it — but adoption can
             still fail genuinely: if the same computation id was
             admitted in both pools, the parent ledger already holds an
             entry under that id.  Merge the controllers {e before}
             rebuilding the tree so such a conflict propagates as an
             error (with the tree unchanged) instead of asserting
             mid-rebuild. *)
          let merged =
            List.fold_left
              (fun acc (entry : Calendar.entry) ->
                Result.bind acc (fun controller ->
                    match Admission.adopt controller entry with
                    | Ok controller -> Ok controller
                    | Error e ->
                        Error
                          (Printf.sprintf "cannot assimilate %s: %s" child e)))
              (Ok
                 (Admission.add_capacity parent_pool.controller
                    (Calendar.capacity child_calendar)))
              (Calendar.entries child_calendar)
          in
          Result.bind merged (fun controller ->
              let replace p =
                {
                  p with
                  controller;
                  children =
                    List.filter
                      (fun c -> not (String.equal c.name child))
                      p.children;
                }
              in
              match update pool parent_pool.name replace with
              | Some pool -> Ok pool
              | None -> tree_drift parent_pool.name)

let rec pp ppf pool =
  Format.fprintf ppf "@[<v2>%s: capacity %a@ %a@]" pool.name Resource_set.pp
    (capacity pool)
    (Format.pp_print_list pp)
    pool.children
