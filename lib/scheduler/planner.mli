open Import

(** Migration planning.

    The paper's second future-work direction: "an actor could continue to
    execute at its current location or migrate elsewhere, carry out part
    of its computation, and then return and resume.  Comparing these
    choices presents some interesting challenges."  ROTA makes the
    comparison mechanical: each choice is a program, each program a
    complex requirement, and Theorem 2 says which ones the available
    resources can carry — and by when.

    Given a body of work (the actions to perform) anchored at a home
    location, the planner enumerates strategies, prices each (migration
    costs included, via the cost model), keeps the feasible ones, and
    ranks them by completion time. *)

type strategy =
  | Stay  (** Execute everything at the home location. *)
  | Relocate of Location.t
      (** Migrate once and finish there (no return trip). *)
  | Round_trip of Location.t
      (** Migrate, do the work, migrate back home. *)

type verdict = {
  strategy : strategy;
  program : Program.t;  (** The concrete plan, costable and executable. *)
  finish : Time.t;  (** Completion time of the scheduled plan. *)
  schedule : Accommodation.schedule;  (** The Theorem-2 certificate. *)
}

val strategies : home:Location.t -> sites:Location.t list -> strategy list
(** [Stay], plus [Relocate]/[Round_trip] for every site other than home. *)

val program_of :
  strategy -> name:Actor_name.t -> home:Location.t -> work:Action.t list -> Program.t
(** The plan as an actor program: the work bracketed by the strategy's
    migrations.  The [work] actions are location-transparent (they execute
    wherever the actor is). *)

val evaluate :
  ?cost_model:Cost_model.t ->
  Resource_set.t ->
  window:Interval.t ->
  name:Actor_name.t ->
  home:Location.t ->
  sites:Location.t list ->
  work:Action.t list ->
  verdict list
(** All {e feasible} strategies, best (earliest finish) first; ties broken
    toward fewer migrations ([Stay] < [Relocate] < [Round_trip]). *)

val best :
  ?cost_model:Cost_model.t ->
  Resource_set.t ->
  window:Interval.t ->
  name:Actor_name.t ->
  home:Location.t ->
  sites:Location.t list ->
  work:Action.t list ->
  verdict option
(** Head of {!evaluate} — the plan to pursue, or [None] when every
    strategy is an "infeasible pursuit" to avoid. *)

val evaluate_on :
  ?cost_model:Cost_model.t ->
  Admission.t ->
  window:Interval.t ->
  name:Actor_name.t ->
  home:Location.t ->
  sites:Location.t list ->
  work:Action.t list ->
  verdict list
(** {!evaluate} against a live admission controller: strategies are
    priced with the controller's cost model (unless overridden) and
    scheduled on its {e residual}, so pursuing the winning plan cannot
    disturb already-committed reservations. *)

val best_on :
  ?cost_model:Cost_model.t ->
  Admission.t ->
  window:Interval.t ->
  name:Actor_name.t ->
  home:Location.t ->
  sites:Location.t list ->
  work:Action.t list ->
  verdict option
(** Head of {!evaluate_on}. *)

val pp_strategy : Format.formatter -> strategy -> unit

val pp_verdict : Format.formatter -> verdict -> unit
