open Import

(** Commitment repair: the graceful-degradation ladder.

    When an {e unannounced} fault (see [Rota_sim.Fault]) breaks the
    paper's "time of leaving must be declared" assumption, the
    commitments evicted by {!Calendar.revoke} still have remaining work
    and an un-passed deadline.  This module tries to rescue each one
    with the same machinery ROTA used to admit it — every rung is a
    Theorem-3 re-check over the post-fault {e residual}, so a repair
    can never disturb a commitment that survived the fault (Theorem 4's
    non-interference discipline applied to recovery):

    + {b Re-accommodate}: schedule the remaining work, as-is, on the
      residual.
    + {b Migrate}: when the remaining work is pure computation, replay
      the planner's [Relocate] strategy — price pack/transfer/unpack
      with the controller's cost model and re-check at each candidate
      site.
    + {b Backoff-retry}: wait for capacity to churn back in, retrying
      with capped exponential backoff.
    + {b Preempt}: give up and kill — by policy, lowest-slack victims
      first (the caller orders a batch with {!slack}). *)

type victim = {
  computation : string;
  window : Interval.t;  (** The original [(s, d)]; repair never moves [d]. *)
  parts : (Actor_name.t * Requirement.step list) list;
      (** Remaining (unconsumed) steps per actor, from [State.pending_of]. *)
}

type rung = Reaccommodate | Migrate of Location.t

val rung_name : rung -> string
(** ["reaccommodate"] or ["migrate"] — stable event labels. *)

type backoff = {
  base : int;  (** First retry delay, in ticks. *)
  cap : int;  (** Upper bound on any single delay. *)
  max_attempts : int;  (** Ladder gives up after this many attempts. *)
}

val default_backoff : backoff
(** [{ base = 1; cap = 8; max_attempts = 4 }]: delays 1, 2, 4, then
    preempt. *)

val delay : backoff -> attempt:int -> int
(** [min cap (base * 2^attempt)]. *)

type repaired = {
  controller : Admission.t;  (** With the rescue reservation committed. *)
  rung : rung;
  schedules : (Actor_name.t * Accommodation.schedule) list;
      (** The fresh Theorem-3 certificates. *)
  parts : (Actor_name.t * Requirement.step list) list;
      (** The steps actually committed — rewritten (migration legs
          prepended, cpu retargeted) when [rung] is [Migrate]. *)
  certificate : Certificate.t;
      (** Serializable Theorem-3 evidence for the re-admission, pinned
          to the pre-adopt residual — what the engine attaches to the
          repair's decision record. *)
}

type outcome =
  | Repaired of repaired
  | Retry of { at : Time.t; attempt : int }
      (** Rungs 1–2 failed but a later attempt may succeed: re-run
          {!attempt} at [at] with this [attempt] count. *)
  | Preempted of { reason : string }
      (** Rung 4: the ladder is exhausted (or no retry fits before the
          deadline); the caller should kill the victim. *)

val slack : now:Time.t -> victim -> int
(** Remaining laxity: window ticks left minus the largest single
    actor's remaining quantity.  The batch-ordering heuristic behind
    "kill lowest-slack first" — callers repair high-slack victims last
    so that when capacity is short it is the lowest-slack victims that
    reach {!Preempted}. *)

val attempt :
  ?backoff:backoff ->
  ?attempt:int ->
  Admission.t ->
  now:Time.t ->
  victim ->
  outcome
(** Walk the ladder once for one victim.  The victim's previous
    calendar entry must already be released/evicted; on [Repaired] the
    returned controller carries the new commitment under the same
    computation id.

    When the metrics registry is enabled each call records
    [repair/attempts.<policy>], a [repair/attempt_s.<policy>] latency
    observation, and a [repair/outcome.<label>] counter
    ([reaccommodate], [migrate], [retry], or [preempted]) — the same
    per-policy label convention as the admission series. *)

val pp_rung : Format.formatter -> rung -> unit

val pp_outcome : Format.formatter -> outcome -> unit
