(* Short aliases for the substrate libraries used throughout this library. *)
module Time = Rota_interval.Time
module Interval = Rota_interval.Interval
module Location = Rota_resource.Location
module Located_type = Rota_resource.Located_type
module Term = Rota_resource.Term
module Profile = Rota_resource.Profile
module Resource_set = Rota_resource.Resource_set
module Requirement = Rota_resource.Requirement
module Actor_name = Rota_actor.Actor_name
module Action = Rota_actor.Action
module Cost_model = Rota_actor.Cost_model
module Program = Rota_actor.Program
module Computation = Rota_actor.Computation
module Accommodation = Rota.Accommodation
module Certificate = Rota.Certificate
module Session = Rota.Session
module Precedence = Rota.Precedence
