open Import

type strategy = Stay | Relocate of Location.t | Round_trip of Location.t

type verdict = {
  strategy : strategy;
  program : Program.t;
  finish : Time.t;
  schedule : Accommodation.schedule;
}

let strategies ~home ~sites =
  let away = List.filter (fun s -> not (Location.equal s home)) sites in
  (Stay :: List.map (fun s -> Relocate s) away)
  @ List.map (fun s -> Round_trip s) away

let program_of strategy ~name ~home ~work =
  let actions =
    match strategy with
    | Stay -> work
    | Relocate site -> (Action.migrate site :: work)
    | Round_trip site -> (Action.migrate site :: work) @ [ Action.migrate home ]
  in
  Program.make ~name ~home actions

let migration_count = function
  | Stay -> 0
  | Relocate _ -> 1
  | Round_trip _ -> 2

let finish_of ~window (schedule : Accommodation.schedule) =
  List.fold_left
    (fun acc (a : Accommodation.step_allocation) ->
      Time.max acc (Interval.stop a.Accommodation.subwindow))
    (Interval.start window)
    schedule.Accommodation.steps

let evaluate ?(cost_model = Cost_model.default) theta ~window ~name ~home
    ~sites ~work =
  let locate _ = None in
  let judge strategy =
    let program = program_of strategy ~name ~home ~work in
    let requirement = Program.to_complex cost_model ~locate ~window program in
    match Accommodation.schedule_sequential theta requirement with
    | None -> None
    | Some schedule ->
        Some { strategy; program; finish = finish_of ~window schedule; schedule }
  in
  strategies ~home ~sites
  |> List.filter_map judge
  |> List.stable_sort (fun a b ->
         match Time.compare a.finish b.finish with
         | 0 ->
             Int.compare (migration_count a.strategy) (migration_count b.strategy)
         | c -> c)

let best ?cost_model theta ~window ~name ~home ~sites ~work =
  match evaluate ?cost_model theta ~window ~name ~home ~sites ~work with
  | [] -> None
  | v :: _ -> Some v

(* Plan against a live controller: only its residual (uncommitted)
   capacity is offered, priced with the controller's own cost model, so
   a pursued plan can be committed without disturbing admitted work. *)
let evaluate_on ?cost_model controller ~window ~name ~home ~sites ~work =
  let cost_model =
    Option.value cost_model ~default:(Admission.cost_model controller)
  in
  evaluate ~cost_model
    (Admission.residual controller)
    ~window ~name ~home ~sites ~work

let best_on ?cost_model controller ~window ~name ~home ~sites ~work =
  match evaluate_on ?cost_model controller ~window ~name ~home ~sites ~work with
  | [] -> None
  | v :: _ -> Some v

let pp_strategy ppf = function
  | Stay -> Format.pp_print_string ppf "stay"
  | Relocate site -> Format.fprintf ppf "relocate(%a)" Location.pp site
  | Round_trip site -> Format.fprintf ppf "round-trip(%a)" Location.pp site

let pp_verdict ppf v =
  Format.fprintf ppf "%a: finishes at %a" pp_strategy v.strategy Time.pp
    v.finish
