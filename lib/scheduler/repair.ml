open Import

type victim = {
  computation : string;
  window : Interval.t;
  parts : (Actor_name.t * Requirement.step list) list;
}

type rung = Reaccommodate | Migrate of Location.t

let rung_name = function
  | Reaccommodate -> "reaccommodate"
  | Migrate _ -> "migrate"

type backoff = { base : int; cap : int; max_attempts : int }

let default_backoff = { base = 1; cap = 8; max_attempts = 4 }

let delay b ~attempt =
  (* attempt is bounded by [max_attempts], so the shift cannot overflow. *)
  min b.cap (b.base * (1 lsl min attempt 30))

type repaired = {
  controller : Admission.t;
  rung : rung;
  schedules : (Actor_name.t * Accommodation.schedule) list;
  parts : (Actor_name.t * Requirement.step list) list;
  certificate : Certificate.t;
      (** Theorem-3 evidence for the re-admission, against the pre-adopt
          residual.  Eager: repairs only run on the (rare) fault path. *)
}

type outcome =
  | Repaired of repaired
  | Retry of { at : Time.t; attempt : int }
  | Preempted of { reason : string }

(* Ordering heuristic for batch repair: remaining laxity, measured as
   window ticks left minus the largest single actor's remaining
   quantity (a lower bound on the ticks it needs at unit rate).  Only
   used to decide who gets preempted first — exactness is not
   required. *)
let slack ~now (v : victim) =
  let longest =
    List.fold_left
      (fun acc (_, steps) ->
        let q =
          List.fold_left
            (fun acc step ->
              List.fold_left
                (fun acc (a : Requirement.amount) -> acc + a.quantity)
                acc step)
            0 steps
        in
        max acc q)
      0 v.parts
  in
  Interval.stop v.window - now - longest

(* Commit the given per-actor step lists on the controller's residual
   within [max now start, deadline).  This is the Theorem-3 re-check the
   ladder is built on: the residual excludes every live reservation, so
   a successful commit cannot disturb an unaffected commitment. *)
let commit_parts controller ~now ~computation ~window parts ~rung =
  match
    Interval.make
      ~start:(Time.max now (Interval.start window))
      ~stop:(Interval.stop window)
  with
  | None -> None
  | Some window -> (
      let conc =
        Requirement.make_concurrent
          ~parts:
            (List.map
               (fun (_, steps) -> Requirement.make_complex ~steps ~window)
               parts)
          ~window
      in
      let theta = Admission.residual controller in
      match Accommodation.schedule_concurrent theta conc with
      | None -> None
      | Some schedules -> (
          let named = List.map2 (fun (name, _) s -> (name, s)) parts schedules in
          let entry =
            {
              Calendar.computation;
              window;
              reservation = Accommodation.reservation_of_schedules schedules;
              schedules = named;
            }
          in
          let certificate =
            Certificate.of_schedules ~theorem:Certificate.T3 ~residual:theta
              (List.map2
                 (fun (actor, s) spec -> (actor, spec, s))
                 named conc.Requirement.parts)
          in
          match Admission.adopt controller entry with
          | Ok controller ->
              Some { controller; rung; schedules = named; parts; certificate }
          | Error _ -> None))

(* Rung 1: the victim's remaining work, re-accommodated as-is on the
   post-fault residual. *)
let try_reaccommodate controller ~now (v : victim) =
  commit_parts controller ~now ~computation:v.computation ~window:v.window
    v.parts ~rung:Reaccommodate

(* Rung 2 applies when the remaining work is pure computation: every
   amount of every part is cpu at that part's single home node.  Then
   the work is location-transparent modulo migration costs, and we can
   replay the planner's Relocate strategy: price pack/transfer/unpack
   with the controller's cost model, retarget the cpu amounts, and
   re-run the Theorem-3 check at each candidate site. *)
let cpu_home_of steps =
  match
    List.concat_map
      (fun step -> List.map (fun (a : Requirement.amount) -> a.ltype) step)
      steps
  with
  | [] -> None
  | Located_type.Cpu home :: rest ->
      if
        List.for_all
          (fun xi -> Located_type.equal xi (Located_type.cpu home))
          rest
      then Some home
      else None
  | _ -> None

let relocate_steps cm ~home ~site steps =
  if Location.equal home site then steps
  else
    let amount = Requirement.amount in
    let moved =
      List.map
        (List.map (fun (a : Requirement.amount) ->
             amount (Located_type.cpu site) a.quantity))
        steps
    in
    [ amount (Located_type.cpu home) cm.Cost_model.migrate_pack_cost ]
    :: [
         amount
           (Located_type.network ~src:home ~dst:site)
           cm.Cost_model.migrate_transfer_cost;
       ]
    :: [ amount (Located_type.cpu site) cm.Cost_model.migrate_unpack_cost ]
    :: moved

let cpu_sites theta =
  List.filter_map
    (function Located_type.Cpu l -> Some l | _ -> None)
    (Resource_set.domain theta)

let try_migrate controller ~now (v : victim) =
  let homes = List.map (fun (_, steps) -> cpu_home_of steps) v.parts in
  if List.exists Option.is_none homes then None
  else
    let homes = List.map Option.get homes in
    let cm = Admission.cost_model controller in
    let sites = cpu_sites (Admission.residual controller) in
    (* Enumerate candidate destinations through the planner's strategy
       space; [Stay] is rung 1, and a round trip buys nothing once the
       home capacity is gone. *)
    let candidates =
      List.concat_map
        (fun home ->
          List.filter_map
            (function Planner.Relocate site -> Some site | _ -> None)
            (Planner.strategies ~home ~sites))
        homes
      |> List.sort_uniq Location.compare
    in
    List.find_map
      (fun site ->
        let parts =
          List.map2
            (fun (name, steps) home ->
              (name, relocate_steps cm ~home ~site steps))
            v.parts homes
        in
        commit_parts controller ~now ~computation:v.computation
          ~window:v.window parts ~rung:(Migrate site))
      candidates

let attempt_ladder ?(backoff = default_backoff) ?(attempt = 0) controller ~now
    (v : victim) =
  let deadline = Interval.stop v.window in
  if now >= deadline then Preempted { reason = "deadline already passed" }
  else
    match try_reaccommodate controller ~now v with
    | Some r -> Repaired r
    | None -> (
        match try_migrate controller ~now v with
        | Some r -> Repaired r
        | None ->
            let next = Time.add now (delay backoff ~attempt) in
            if attempt + 1 >= backoff.max_attempts then
              Preempted { reason = "repair attempts exhausted" }
            else if next >= deadline then
              Preempted { reason = "no retry window left before the deadline" }
            else Retry { at = next; attempt = attempt + 1 })

(* Per-policy repair latency and outcome counters, labelled like the
   admission series (same [.slug] convention).  Handles are interned by
   name on each call: the fault path is rare, and lazy interning keeps
   processes that never repair free of repair/* rows. *)
module Obs = struct
  module Metrics = Rota_obs.Metrics

  let outcome_label = function
    | Repaired r -> rung_name r.rung
    | Retry _ -> "retry"
    | Preempted _ -> "preempted"
end

let attempt ?backoff ?attempt controller ~now v =
  let module Metrics = Rota_obs.Metrics in
  if not (Metrics.enabled ()) then
    attempt_ladder ?backoff ?attempt controller ~now v
  else begin
    let n = Admission.policy_name (Admission.policy controller) in
    Metrics.incr (Metrics.counter ("repair/attempts." ^ n));
    let outcome =
      Metrics.time
        (Metrics.histogram ("repair/attempt_s." ^ n))
        (fun () -> attempt_ladder ?backoff ?attempt controller ~now v)
    in
    Metrics.incr
      (Metrics.counter ("repair/outcome." ^ Obs.outcome_label outcome));
    outcome
  end

let pp_rung ppf r = Format.pp_print_string ppf (rung_name r)

let pp_outcome ppf = function
  | Repaired r -> Format.fprintf ppf "repaired (%s)" (rung_name r.rung)
  | Retry { at; attempt } ->
      Format.fprintf ppf "retry at %a (attempt %d)" Time.pp at attempt
  | Preempted { reason } -> Format.fprintf ppf "preempted: %s" reason
