open Import

type entry = {
  computation : string;
  window : Interval.t;
  reservation : Resource_set.t;
  schedules : (Actor_name.t * Accommodation.schedule) list;
}

module Id_map = Map.Make (String)

(* [committed] and [residual] are caches: the union of all live
   reservations, and capacity minus that union.  Every operation updates
   them with one resource-set operation instead of re-folding the whole
   ledger, which keeps the admission decision path sublinear in the
   number of committed computations.  [self_check] recomputes both from
   scratch and compares. *)
type t = {
  capacity : Resource_set.t;
  entries : entry Id_map.t;
  committed : Resource_set.t;
  residual : Resource_set.t;
}

(* --- invariant checking -------------------------------------------------- *)

(* A cache that should make an operation total turned out not to cover
   it: the ledger state itself is corrupt (e.g. built by poking the
   caches directly).  Report it as a structured invariant violation
   naming the operation, rather than dying on a bare [assert false]
   with no context. *)
let invariant_violation fmt =
  Format.kasprintf invalid_arg ("calendar: invariant violation: " ^^ fmt)

let checked =
  ref
    (match Sys.getenv_opt "ROTA_CHECK_CALENDAR" with
    | None | Some "" | Some "0" | Some "false" -> false
    | Some _ -> true)

let set_self_check enabled = checked := enabled

let recompute_committed c =
  Id_map.fold
    (fun _ e acc -> Resource_set.union acc e.reservation)
    c.entries Resource_set.empty

let self_check c =
  let committed = recompute_committed c in
  if not (Resource_set.equal committed c.committed) then
    Error
      (Format.asprintf
         "calendar: cached committed drifted: cached %a, recomputed %a"
         Resource_set.pp c.committed Resource_set.pp committed)
  else
    match Resource_set.diff c.capacity committed with
    | Error d ->
        Error
          (Format.asprintf "calendar: commitments exceed capacity: %a"
             Resource_set.pp_deficit d)
    | Ok residual ->
        if not (Resource_set.equal residual c.residual) then
          Error
            (Format.asprintf
               "calendar: cached residual drifted: cached %a, recomputed %a"
               Resource_set.pp c.residual Resource_set.pp residual)
        else Ok ()

let debug_check c =
  if !checked then
    match self_check c with Ok () -> c | Error e -> invalid_arg e
  else c

(* --- construction and accessors ------------------------------------------ *)

let create capacity =
  {
    capacity;
    entries = Id_map.empty;
    committed = Resource_set.empty;
    residual = capacity;
  }

let capacity c = c.capacity
let entries c = Id_map.fold (fun _ e acc -> e :: acc) c.entries [] |> List.rev
let size c = Id_map.cardinal c.entries
let committed c = c.committed
let residual c = c.residual

(* --- ledger operations ---------------------------------------------------- *)

exception Already_committed

let commit c entry =
  match
    (* One map traversal does both the duplicate check and the insert. *)
    Id_map.update entry.computation
      (function None -> Some entry | Some _ -> raise Already_committed)
      c.entries
  with
  | exception Already_committed ->
      Error (Printf.sprintf "calendar: %s already committed" entry.computation)
  | entries -> (
      match Resource_set.diff c.residual entry.reservation with
      | Error _ ->
          Error
            (Printf.sprintf
               "calendar: reservation for %s exceeds the residual capacity"
               entry.computation)
      | Ok residual ->
          Ok
            (debug_check
               {
                 c with
                 entries;
                 committed = Resource_set.union c.committed entry.reservation;
                 residual;
               }))

let release c ~computation =
  match Id_map.find_opt computation c.entries with
  | None -> c
  | Some e ->
      let committed =
        match Resource_set.diff c.committed e.reservation with
        | Ok r -> r
        | Error d ->
            (* [committed] is the union of all live reservations, so the
               difference is defined unless the cache has drifted. *)
            invariant_violation
              "release %s: cached committed does not cover the entry's \
               reservation (%a)"
              computation Resource_set.pp_deficit d
      in
      debug_check
        {
          c with
          entries = Id_map.remove computation c.entries;
          committed;
          residual = Resource_set.union c.residual e.reservation;
        }

let find c ~computation = Id_map.find_opt computation c.entries

let add_capacity c theta =
  debug_check
    {
      c with
      capacity = Resource_set.union c.capacity theta;
      residual = Resource_set.union c.residual theta;
    }

let remove_capacity c slice =
  match Resource_set.diff c.residual slice with
  | Error _ -> Error "calendar: cannot withdraw committed or absent capacity"
  | Ok residual -> (
      match Resource_set.diff c.capacity slice with
      | Ok capacity -> Ok (debug_check { c with capacity; residual })
      | Error d ->
          (* [slice] is dominated by the residual, a subset of capacity —
             unless the caches have drifted.  This operation already has
             an error channel, so report rather than raise. *)
          Error
            (Format.asprintf
               "calendar: invariant violation: remove_capacity: residual \
                covers the slice but capacity does not (%a)"
               Resource_set.pp_deficit d))

(* An unannounced revocation cannot be refused: the slice leaves whether
   the ledger likes it or not.  Shrink capacity with the clamped
   difference, then decide which commitments survive on what is left: a
   single greedy keep/evict pass in id order, keeping an entry exactly
   when the remaining capacity still dominates its reservation.  Kept
   entries retain their original reservations — they execute exactly as
   committed, which is what makes repair non-interfering (Theorem 4's
   residual discipline applied in reverse). *)
let revoke c slice =
  let capacity = Resource_set.diff_clamped c.capacity slice in
  let remaining, kept, evicted =
    Id_map.fold
      (fun id e (remaining, kept, evicted) ->
        match Resource_set.diff remaining e.reservation with
        | Ok remaining -> (remaining, Id_map.add id e kept, evicted)
        | Error _ -> (remaining, kept, e :: evicted))
      c.entries
      (capacity, Id_map.empty, [])
  in
  let committed =
    match
      Resource_set.diff capacity remaining
      (* [remaining] = capacity minus every kept reservation, so the
         difference is exactly their union. *)
    with
    | Ok committed -> committed
    | Error _ -> assert false
  in
  ( debug_check
      { capacity; entries = kept; committed; residual = remaining },
    List.rev evicted )

(* Truncation is pointwise per tick, so it distributes over both the
   union behind [committed] and the complement behind [residual]: the
   caches stay exact without recomputation. *)
let advance c now =
  debug_check
    {
      capacity = Resource_set.truncate_before c.capacity now;
      entries =
        Id_map.map
          (fun e ->
            { e with reservation = Resource_set.truncate_before e.reservation now })
          c.entries;
      committed = Resource_set.truncate_before c.committed now;
      residual = Resource_set.truncate_before c.residual now;
    }

let committed_quantity c xi w = Resource_set.integrate c.committed xi w
let capacity_quantity c xi w = Resource_set.integrate c.capacity xi w

let with_caches_unchecked c ~committed ~residual = { c with committed; residual }

let pp ppf c =
  Format.fprintf ppf "@[<v>calendar: capacity %a@ %d entries, residual %a@]"
    Resource_set.pp c.capacity (size c) Resource_set.pp c.residual

(* --- snapshots ----------------------------------------------------------- *)

module Json = Rota_obs.Json

let ( let* ) = Result.bind

let jfield name json =
  match Json.member name json with
  | Some v -> Ok v
  | None -> Error (Printf.sprintf "calendar snapshot: missing field %S" name)

(* An entry serializes as its window plus an eviction-style certificate
   of its own schedules: the certificate codec already round-trips
   schedules as rectangle lists and [Certificate.schedules_of_parts]
   rebuilds them, so the ledger needs no second schedule codec.  The
   certificate's digest field pins nothing here (an entry carries no
   residual) and is written empty.  The reservation is serialized on its
   own, NOT re-derived from the schedules on restore: [advance]
   truncates reservations but leaves schedules whole, so after any
   advance the two genuinely differ and only the reservation is the
   committed state. *)
let entry_to_json (e : entry) =
  let cert =
    Certificate.of_committed ~theorem:Certificate.Unchecked
      ~residual:Resource_set.empty e.schedules
  in
  Json.Obj
    [
      ("computation", Json.String e.computation);
      ("window", Certificate.interval_to_json e.window);
      ( "reservation",
        Certificate.rects_to_json (Certificate.rects_of_set e.reservation) );
      ("certificate", Certificate.to_json { cert with Certificate.digest = "" });
    ]

let entry_of_json json =
  let* computation = Result.bind (jfield "computation" json) Json.to_str in
  let* window =
    Result.bind (jfield "window" json) Certificate.interval_of_json
  in
  let* reservation =
    Result.map Certificate.set_of_rects
      (Result.bind (jfield "reservation" json) Certificate.rects_of_json)
  in
  let* cert = Result.bind (jfield "certificate" json) Certificate.of_json in
  let* () = Certificate.well_formed cert in
  Ok
    {
      computation;
      window;
      reservation;
      schedules = Certificate.schedules_of_parts cert;
    }

let snapshot c =
  Json.Obj
    [
      ( "capacity",
        Certificate.rects_to_json (Certificate.rects_of_set c.capacity) );
      ("entries", Json.List (List.map entry_to_json (entries c)));
    ]

(* Restoring replays every entry through [commit], so the usual
   admission-time validation (residual coverage, duplicate ids) runs
   again: a corrupted or hand-edited snapshot whose reservations do not
   fit its own capacity is rejected here instead of poisoning later
   decisions. *)
let restore json =
  let* capacity =
    Result.map Certificate.set_of_rects
      (Result.bind (jfield "capacity" json) Certificate.rects_of_json)
  in
  let* entry_jsons =
    match jfield "entries" json with
    | Ok (Json.List items) -> Ok items
    | Ok _ -> Error "calendar snapshot: field \"entries\" is not a list"
    | Error _ as e -> e
  in
  List.fold_left
    (fun acc ej ->
      let* c = acc in
      let* e = entry_of_json ej in
      commit c e)
    (Ok (create capacity))
    entry_jsons
