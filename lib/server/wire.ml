open Import

type op =
  | Admit of {
      now : Time.t;
      computation : Computation.t;
      budget_ms : float option;
    }
  | Release of { now : Time.t; id : string }
  | Revoke of { now : Time.t; terms : Certificate.rect list }
  | Join of { now : Time.t; terms : Certificate.rect list }
  | Query of string
  | Metrics
  | Ping
  | Shutdown

type request = { tag : Json.t; op : op }

type reply =
  | Decided of {
      id : string;
      action : string;
      slug : string;
      reason : string;
      digest : string;
    }
  | Shed of { id : string; reason : string }
  | Released of { id : string; existed : bool }
  | Revoked of { quantity : int; evicted : string list }
  | Joined of { quantity : int }
  | Info of (string * Json.t) list
  | Metrics_snapshot of { exposition : string; samples : Json.t list }
  | Pong
  | Draining
  | Failed of string

type response = { tag : Json.t; cid : string option; reply : reply }

let shed_slug = "shed"

let ( let* ) = Result.bind

let field name json =
  match Json.member name json with
  | Some v -> Ok v
  | None -> Error (Printf.sprintf "wire: missing field %S" name)

let str_field name json = Result.bind (field name json) Json.to_str
let int_field name json = Result.bind (field name json) Json.to_int

let opt_field name json decode =
  match Json.member name json with
  | None | Some Json.Null -> Ok None
  | Some v -> Result.map Option.some (decode v)

let list_field name decode json =
  match field name json with
  | Ok (Json.List items) ->
      List.fold_left
        (fun acc item ->
          let* acc = acc in
          let* x = decode item in
          Ok (x :: acc))
        (Ok []) items
      |> Result.map List.rev
  | Ok _ -> Error (Printf.sprintf "wire: field %S is not a list" name)
  | Error _ as e -> e

(* --- computations --------------------------------------------------------- *)

let action_to_json = function
  | Action.Evaluate { complexity } ->
      Json.Obj
        [ ("do", Json.String "evaluate"); ("complexity", Json.Int complexity) ]
  | Action.Send { dest; size } ->
      Json.Obj
        [
          ("do", Json.String "send");
          ("dest", Json.String (Actor_name.to_string dest));
          ("size", Json.Int size);
        ]
  | Action.Create { child } ->
      Json.Obj
        [
          ("do", Json.String "create");
          ("child", Json.String (Actor_name.to_string child));
        ]
  | Action.Ready -> Json.Obj [ ("do", Json.String "ready") ]
  | Action.Migrate { dest } ->
      Json.Obj
        [
          ("do", Json.String "migrate");
          ("dest", Json.String (Location.name dest));
        ]

let action_of_json json =
  let* kind = str_field "do" json in
  match kind with
  | "evaluate" ->
      let* complexity = int_field "complexity" json in
      Ok (Action.evaluate complexity)
  | "send" ->
      let* dest = str_field "dest" json in
      let* size = int_field "size" json in
      Ok (Action.send ~dest:(Actor_name.make dest) ~size)
  | "create" ->
      let* child = str_field "child" json in
      Ok (Action.create (Actor_name.make child))
  | "ready" -> Ok Action.ready
  | "migrate" ->
      let* dest = str_field "dest" json in
      Ok (Action.migrate (Location.make dest))
  | k -> Error (Printf.sprintf "wire: unknown action %S" k)

let program_to_json (p : Program.t) =
  Json.Obj
    [
      ("name", Json.String (Actor_name.to_string p.Program.name));
      ("home", Json.String (Location.name p.Program.home));
      ("actions", Json.List (List.map action_to_json p.Program.actions));
    ]

let program_of_json json =
  let* name = str_field "name" json in
  let* home = str_field "home" json in
  let* actions = list_field "actions" action_of_json json in
  Ok (Program.make ~name:(Actor_name.make name) ~home:(Location.make home) actions)

let computation_to_json (c : Computation.t) =
  Json.Obj
    [
      ("id", Json.String c.Computation.id);
      ("start", Json.Int c.Computation.start);
      ("deadline", Json.Int c.Computation.deadline);
      ("programs", Json.List (List.map program_to_json c.Computation.programs));
    ]

(* [Computation.make] and friends raise [Invalid_argument] on the
   invariants they own (window, duplicate actors, positive costs);
   requests come off an untrusted socket, so those become [Error]s. *)
let computation_of_json json =
  match
    let* id = str_field "id" json in
    let* start = int_field "start" json in
    let* deadline = int_field "deadline" json in
    let* programs = list_field "programs" program_of_json json in
    Ok (Computation.make ~id ~start ~deadline programs)
  with
  | result -> result
  | exception Invalid_argument msg -> Error (Printf.sprintf "wire: %s" msg)

(* --- requests ------------------------------------------------------------- *)

let tag_of json =
  match Json.member "tag" json with Some t -> t | None -> Json.Null

let with_tag tag fields =
  match tag with Json.Null -> fields | t -> fields @ [ ("tag", t) ]

let request_to_json { tag; op } =
  let fields =
    match op with
    | Admit { now; computation; budget_ms } ->
        [
          ("op", Json.String "admit");
          ("now", Json.Int now);
          ("computation", computation_to_json computation);
        ]
        @ Option.fold ~none:[]
            ~some:(fun b -> [ ("budget_ms", Json.Float b) ])
            budget_ms
    | Release { now; id } ->
        [
          ("op", Json.String "release");
          ("now", Json.Int now);
          ("id", Json.String id);
        ]
    | Revoke { now; terms } ->
        [
          ("op", Json.String "revoke");
          ("now", Json.Int now);
          ("terms", Certificate.rects_to_json terms);
        ]
    | Join { now; terms } ->
        [
          ("op", Json.String "join");
          ("now", Json.Int now);
          ("terms", Certificate.rects_to_json terms);
        ]
    | Query what ->
        [ ("op", Json.String "query"); ("what", Json.String what) ]
    | Metrics -> [ ("op", Json.String "metrics") ]
    | Ping -> [ ("op", Json.String "ping") ]
    | Shutdown -> [ ("op", Json.String "shutdown") ]
  in
  Json.Obj (with_tag tag fields)

let request_of_json json =
  let tag = tag_of json in
  let* op =
    let* op = str_field "op" json in
    match op with
    | "admit" ->
        let* now = int_field "now" json in
        let* computation =
          Result.bind (field "computation" json) computation_of_json
        in
        let* budget_ms = opt_field "budget_ms" json Json.to_float in
        Ok (Admit { now; computation; budget_ms })
    | "release" ->
        let* now = int_field "now" json in
        let* id = str_field "id" json in
        Ok (Release { now; id })
    | "revoke" ->
        let* now = int_field "now" json in
        let* terms = Result.bind (field "terms" json) Certificate.rects_of_json in
        Ok (Revoke { now; terms })
    | "join" ->
        let* now = int_field "now" json in
        let* terms = Result.bind (field "terms" json) Certificate.rects_of_json in
        Ok (Join { now; terms })
    | "query" ->
        let* what = str_field "what" json in
        Ok (Query what)
    | "metrics" -> Ok Metrics
    | "ping" -> Ok Ping
    | "shutdown" -> Ok Shutdown
    | op -> Error (Printf.sprintf "wire: unknown op %S" op)
  in
  Ok { tag; op }

(* --- responses ------------------------------------------------------------ *)

let response_to_json { tag; cid; reply } =
  let with_cid fields =
    match cid with
    | None -> fields
    | Some c -> fields @ [ ("cid", Json.String c) ]
  in
  let fields =
    match reply with
    | Decided { id; action; slug; reason; digest } ->
        [
          ("ok", Json.Bool true);
          ("decision", Json.String action);
          ("id", Json.String id);
          ("slug", Json.String slug);
          ("reason", Json.String reason);
          ("digest", Json.String digest);
        ]
    | Shed { id; reason } ->
        [
          ("ok", Json.Bool false);
          ("decision", Json.String "reject");
          ("id", Json.String id);
          ("slug", Json.String shed_slug);
          ("reason", Json.String reason);
        ]
    | Released { id; existed } ->
        [
          ("ok", Json.Bool true);
          ("released", Json.String id);
          ("existed", Json.Bool existed);
        ]
    | Revoked { quantity; evicted } ->
        [
          ("ok", Json.Bool true);
          ("revoked", Json.Int quantity);
          ("evicted", Json.List (List.map (fun id -> Json.String id) evicted));
        ]
    | Joined { quantity } ->
        [ ("ok", Json.Bool true); ("joined", Json.Int quantity) ]
    | Info fields ->
        [ ("ok", Json.Bool true); ("info", Json.Bool true) ] @ fields
    | Metrics_snapshot { exposition; samples } ->
        [
          ("ok", Json.Bool true);
          ("metrics", Json.Bool true);
          ("exposition", Json.String exposition);
          ("samples", Json.List samples);
        ]
    | Pong -> [ ("ok", Json.Bool true); ("pong", Json.Bool true) ]
    | Draining -> [ ("ok", Json.Bool true); ("draining", Json.Bool true) ]
    | Failed msg -> [ ("ok", Json.Bool false); ("error", Json.String msg) ]
  in
  Json.Obj (with_tag tag (with_cid fields))

let response_of_json json =
  let tag = tag_of json in
  let cid =
    match Json.member "cid" json with
    | Some (Json.String c) -> Some c
    | Some _ | None -> None
  in
  let has name = Json.member name json <> None in
  let* reply =
    if has "error" then
      let* msg = str_field "error" json in
      Ok (Failed msg)
    else if has "decision" then
      let* action = str_field "decision" json in
      let* id = str_field "id" json in
      let* slug = str_field "slug" json in
      let* reason = str_field "reason" json in
      if String.equal slug shed_slug then Ok (Shed { id; reason })
      else
        let* digest = str_field "digest" json in
        Ok (Decided { id; action; slug; reason; digest })
    else if has "released" then
      let* id = str_field "released" json in
      let* existed = Result.bind (field "existed" json) (function
        | Json.Bool b -> Ok b
        | _ -> Error "wire: field \"existed\" is not a bool")
      in
      Ok (Released { id; existed })
    else if has "revoked" then
      let* quantity = int_field "revoked" json in
      let* evicted = list_field "evicted" Json.to_str json in
      Ok (Revoked { quantity; evicted })
    else if has "joined" then
      let* quantity = int_field "joined" json in
      Ok (Joined { quantity })
    else if has "metrics" then
      let* exposition = str_field "exposition" json in
      let* samples =
        match Json.member "samples" json with
        | Some (Json.List items) -> Ok items
        | Some _ -> Error "wire: field \"samples\" is not a list"
        | None -> Ok []
      in
      Ok (Metrics_snapshot { exposition; samples })
    else if has "info" then
      match json with
      | Json.Obj fields ->
          Ok
            (Info
               (List.filter
                  (fun (k, _) ->
                    k <> "ok" && k <> "info" && k <> "tag" && k <> "cid")
                  fields))
      | _ -> Error "wire: response is not an object"
    else if has "pong" then Ok Pong
    else if has "draining" then Ok Draining
    else Error "wire: unrecognizable response shape"
  in
  Ok { tag; cid; reply }

(* --- framing -------------------------------------------------------------- *)

let request_to_line r = Json.to_string (request_to_json r)

let request_of_line line =
  Result.bind (Json.parse line) request_of_json

let response_to_line r = Json.to_string (response_to_json r)

let response_of_line line =
  Result.bind (Json.parse line) response_of_json
