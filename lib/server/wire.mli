open Import

(** The serve daemon's wire protocol: one JSON object per line, in both
    directions, over a Unix or TCP stream.

    Requests are decided strictly in arrival order per connection and
    answered in the same order, so a pipelining client can correlate by
    position alone; an optional [tag] field is echoed verbatim into the
    matching response for clients that prefer explicit correlation.
    Resource slices travel as certificate rectangle lists
    ({!Certificate.rects_of_json}) and computations as the JSON shape
    documented in doc/robustness.md — both reuse the codecs the
    certificates and the trace already speak, so the daemon introduces
    no second serialization of any domain object. *)

type op =
  | Admit of {
      now : Time.t;  (** The client's logical clock, in ticks. *)
      computation : Computation.t;
      budget_ms : float option;
          (** Decision-latency budget; the daemon sheds the request
              rather than decide it later than this. *)
    }
  | Release of { now : Time.t; id : string }
      (** The computation finished (or was externally killed): drop its
          reservation or demand record. *)
  | Revoke of { now : Time.t; terms : Certificate.rect list }
      (** Unannounced capacity loss: shrink capacity by the slice and
          evict the commitments it no longer carries. *)
  | Join of { now : Time.t; terms : Certificate.rect list }
      (** Resources joining the open system. *)
  | Query of string  (** ["residual-digest"], ["stats"] or ["now"]. *)
  | Metrics
      (** Scrape the daemon's live metrics registry.  Answered from the
          serving loop without touching the replica (never logged); the
          reply carries both the OpenMetrics exposition text and the
          registry as sample events, so one verb serves scrapers and
          [rota top --connect] alike. *)
  | Ping
  | Shutdown  (** Graceful drain, as if the daemon received SIGTERM. *)

type request = { tag : Json.t; op : op }

type reply =
  | Decided of {
      id : string;
      action : string;  (** ["admit"] or ["reject"]. *)
      slug : string;
      reason : string;
      digest : string;
          (** The decision certificate's residual digest ([""] when the
              certificate pinned no resource state). *)
    }
  | Shed of { id : string; reason : string }
      (** Reject-fast under overload: the request was {e not} decided
          (and not logged) because queue delay would have blown its
          budget.  Serialized as a reject with the ["shed"] slug. *)
  | Released of { id : string; existed : bool }
  | Revoked of { quantity : int; evicted : string list }
  | Joined of { quantity : int }
  | Info of (string * Json.t) list  (** Query answers, field by field. *)
  | Metrics_snapshot of { exposition : string; samples : Json.t list }
      (** Answer to {!Metrics}: [exposition] is the lint-clean
          OpenMetrics text ({!Rota_obs.Openmetrics.render} of the live
          registry), [samples] the same snapshot as serialized
          {!Rota_obs.Events} metric/hist-sample records — parseable with
          {!Rota_obs.Events.of_json} and foldable straight into
          {!Rota_obs.Top}. *)
  | Pong
  | Draining  (** Acknowledges {!Shutdown}; the connection then closes. *)
  | Failed of string  (** Malformed or unserviceable request. *)

type response = {
  tag : Json.t;
  cid : string option;
      (** The daemon's correlation id for the request this answers —
          minted per request, stamped into the WAL decision record, and
          reported here (as a ["cid"] field, omitted when absent) so a
          client can quote it when filing a complaint.  Untagged
          requests additionally get the cid echoed {e as} their [tag],
          so position-blind clients still correlate. *)
  reply : reply;
}

val shed_slug : string
(** ["shed"] — the reason slug every load-shedding reject carries. *)

(** {2 Computations on the wire} *)

val computation_to_json : Computation.t -> Json.t
val computation_of_json : Json.t -> (Computation.t, string) result
(** Accepts exactly what {!computation_to_json} produces; construction
    invariants (positive window, distinct actor names, positive action
    parameters) are re-checked, so a malformed computation fails here
    rather than inside the admission controller. *)

(** {2 Framing} *)

val request_to_line : request -> string
val request_of_line : string -> (request, string) result
val response_to_line : response -> string
val response_of_line : string -> (response, string) result
(** One JSON document, no trailing newline; [*_of_line] accepts exactly
    what the corresponding [*_to_line] produces. *)
