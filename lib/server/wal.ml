open Import

let wal_path ~dir = Filename.concat dir "wal.rotb"
let snapshot_path ~dir = Filename.concat dir "snapshot.json"

(* --- writer ---------------------------------------------------------------- *)

type writer = {
  fd : Unix.file_descr;
  buf : Buffer.t;
  mutable last_seq : int;
  mutable durable : int;
}

let seq w = w.last_seq
let offset w = w.durable
let buffered w = Buffer.length w.buf

let append w ~sim payloads =
  let wall_s = Unix.gettimeofday () in
  List.map
    (fun payload ->
      w.last_seq <- w.last_seq + 1;
      let e =
        { Events.seq = w.last_seq; run = 1; sim = Some sim; wall_s; payload }
      in
      Binary.encode w.buf e;
      e)
    payloads

let write_all fd s =
  let len = String.length s in
  let rec go pos =
    if pos < len then
      let n = Unix.write_substring fd s pos (len - pos) in
      go (pos + n)
  in
  go 0

let sync w =
  if Buffer.length w.buf > 0 then begin
    let s = Buffer.contents w.buf in
    Buffer.clear w.buf;
    write_all w.fd s;
    Unix.fsync w.fd;
    w.durable <- w.durable + String.length s
  end

let close w =
  sync w;
  Unix.close w.fd

let fresh_writer ~path ~label =
  let fd = Unix.openfile path [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o644 in
  let w = { fd; buf = Buffer.create 4096; last_seq = 0; durable = 0 } in
  Buffer.add_string w.buf Binary.header;
  ignore (append w ~sim:0 [ Events.Run_started { label } ]);
  sync w;
  w

(* Reopen after a scan: cut the file back to the last complete record
   (an interrupted append was never acknowledged, so dropping it loses
   nothing a client was told) and continue the sequence numbering. *)
let reopen_writer ~path ~at ~last_seq =
  let fd = Unix.openfile path [ Unix.O_WRONLY ] 0o644 in
  Unix.ftruncate fd at;
  ignore (Unix.lseek fd 0 Unix.SEEK_END);
  { fd; buf = Buffer.create 4096; last_seq; durable = at }

(* --- snapshots ------------------------------------------------------------- *)

let snapshot_format = "rota-serve-snapshot-1"

let ( let* ) = Result.bind

let jfield name json =
  match Json.member name json with
  | Some v -> Ok v
  | None -> Error (Printf.sprintf "snapshot: missing field %S" name)

let save_snapshot ~path w replica =
  let json =
    Json.Obj
      [
        ("format", Json.String snapshot_format);
        ("seq", Json.Int w.last_seq);
        ("wal_offset", Json.Int w.durable);
        ("replica", Replica.snapshot replica);
      ]
  in
  let tmp = path ^ ".tmp" in
  match
    let fd = Unix.openfile tmp [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o644 in
    Fun.protect
      ~finally:(fun () -> Unix.close fd)
      (fun () ->
        write_all fd (Json.to_string json);
        Unix.fsync fd);
    Unix.rename tmp path
  with
  | () -> Ok ()
  | exception Unix.Unix_error (e, _, _) ->
      Error (Printf.sprintf "snapshot %s: %s" path (Unix.error_message e))

let load_snapshot ?cost_model ~path () =
  let* contents =
    match In_channel.with_open_bin path In_channel.input_all with
    | s -> Ok s
    | exception Sys_error m -> Error m
  in
  let* json = Json.parse contents in
  let* fmt = Result.bind (jfield "format" json) Json.to_str in
  if not (String.equal fmt snapshot_format) then
    Error (Printf.sprintf "snapshot: unknown format %S" fmt)
  else
    let* snap_seq = Result.bind (jfield "seq" json) Json.to_int in
    let* replica = Result.bind (jfield "replica" json) (Replica.restore ?cost_model) in
    Ok (snap_seq, replica)

(* --- recovery -------------------------------------------------------------- *)

type recovery = {
  replica : Replica.t;
  writer : writer;
  from_snapshot : bool;
  scanned : int;
  replayed : int;
  truncated : int;
  verified : int;
  diverged : int;
  digest : string;
}

(* One pass over the whole WAL: every record feeds the independent
   auditor (the stream is the proof of what recovery must produce),
   records past [base_seq] also replay into the replica.  Returns the
   position of the last complete record so the caller can cut an
   interrupted tail. *)
let scan ~wal ~label ~replica ~base_seq =
  let ic = open_in_bin wal in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      let* () = Binary.read_header ic in
      let live = Live.create () in
      let verified = ref 0 and diverged = ref 0 in
      let rec loop last_good last_seq scanned replayed =
        match Binary.read_item ic with
        | Binary.Event e -> (
            let* () =
              match e.Events.payload with
              | Events.Run_started { label = l } when not (String.equal l label)
                ->
                  Error
                    (Printf.sprintf "wal belongs to run %S, expected %S" l label)
              | _ -> Ok ()
            in
            (match Live.step live e with
            | Some o -> (
                match o.Live.verdict with
                | Live.Verified -> incr verified
                | Live.Diverged _ -> incr diverged
                | Live.Skipped _ -> ())
            | None -> ());
            let* replayed =
              if e.Events.seq > base_seq then
                match Replica.replay replica e with
                | Ok () -> Ok (replayed + 1)
                | Error m ->
                    Error (Printf.sprintf "wal record %d: %s" e.Events.seq m)
              else Ok replayed
            in
            loop (pos_in ic) (max last_seq e.Events.seq) (scanned + 1) replayed)
        | Binary.Eof -> Ok (last_good, last_seq, scanned, replayed, 0)
        | Binary.Cut n -> Ok (last_good, last_seq, scanned, replayed, n)
        | Binary.Malformed m ->
            Error (Printf.sprintf "wal corrupt after record %d: %s" scanned m)
      in
      let* last_good, last_seq, scanned, replayed, truncated =
        loop (pos_in ic) 0 0 0
      in
      let* audited =
        Result.map_error (fun m -> "recovery audit: " ^ m)
          (Live.residual_digest live)
      in
      let mine = Replica.residual_digest replica in
      if not (String.equal mine audited) then
        Error
          (Printf.sprintf
             "recovered residual digest %s disagrees with the audited stream's %s"
             mine audited)
      else
        Ok (last_good, last_seq, scanned, replayed, truncated, !verified, !diverged, mine))

let recover ?cost_model ~dir ~policy () =
  let wal = wal_path ~dir in
  let label = Replica.run_label policy in
  if not (Sys.file_exists wal) then begin
    let replica = Replica.create ?cost_model policy in
    let writer = fresh_writer ~path:wal ~label in
    Ok
      {
        replica;
        writer;
        from_snapshot = false;
        scanned = 0;
        replayed = 0;
        truncated = 0;
        verified = 0;
        diverged = 0;
        digest = Replica.residual_digest replica;
      }
  end
  else
    let attempt ~base =
      let replica, base_seq, from_snapshot =
        match base with
        | Some (snap_seq, replica) -> (replica, snap_seq, true)
        | None -> (Replica.create ?cost_model policy, 0, false)
      in
      let* last_good, last_seq, scanned, replayed, truncated, verified, diverged, digest =
        scan ~wal ~label ~replica ~base_seq
      in
      let writer = reopen_writer ~path:wal ~at:last_good ~last_seq in
      Ok
        { replica; writer; from_snapshot; scanned; replayed; truncated;
          verified; diverged; digest }
    in
    let base =
      let path = snapshot_path ~dir in
      if Sys.file_exists path then
        match load_snapshot ?cost_model ~path () with
        | Ok (snap_seq, replica) when Replica.policy replica = policy ->
            Some (snap_seq, replica)
        | Ok _ | Error _ -> None
      else None
    in
    match base with
    | None -> attempt ~base:None
    | Some _ -> (
        (* A snapshot is an optimization: if recovering through it fails
           for any reason, the WAL alone is still the source of truth. *)
        match attempt ~base with
        | Ok _ as ok -> ok
        | Error _ -> attempt ~base:None)
