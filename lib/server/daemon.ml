open Import

type address = Unix_socket of string | Tcp of string * int

type config = {
  dir : string;
  address : address;
  policy : Admission.policy;
  cost_model : Cost_model.t option;
  max_queue : int;
  default_budget_ms : float;
  snapshot_every : int;
  decide_delay_ms : float;
  max_connections : int;
}

let config ?(max_queue = 512) ?(default_budget_ms = 250.) ?(snapshot_every = 512)
    ?(decide_delay_ms = 0.) ?(max_connections = 64) ?cost_model ~dir ~address
    policy =
  {
    dir;
    address;
    policy;
    cost_model;
    max_queue;
    default_budget_ms;
    snapshot_every;
    decide_delay_ms;
    max_connections;
  }

type conn = {
  fd : Unix.file_descr;
  inbuf : Buffer.t;
  outq : string Queue.t;
  mutable out_off : int;  (* bytes of [Queue.peek outq] already written *)
  mutable alive : bool;
}

type work = Decide of Wire.op | Ready of Wire.reply

type item = {
  conn : conn;
  tag : Json.t;
  work : work;
  enqueued : float;
  budget_ms : float option;
}

type stats = {
  mutable decided : int;
  mutable admitted : int;
  mutable rejected : int;
  mutable shed : int;
  mutable failed : int;
}

let batch_size = 64

let stop_requested = ref false

let install_signals () =
  let note _ = stop_requested := true in
  Sys.set_signal Sys.sigterm (Sys.Signal_handle note);
  Sys.set_signal Sys.sigint (Sys.Signal_handle note);
  (* Peer hangups surface as write errors, not process death. *)
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore

let listen_on address =
  match address with
  | Unix_socket path ->
      if Sys.file_exists path then Unix.unlink path;
      let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      Unix.bind fd (Unix.ADDR_UNIX path);
      Unix.listen fd 64;
      Unix.set_nonblock fd;
      fd
  | Tcp (host, port) ->
      let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
      Unix.setsockopt fd Unix.SO_REUSEADDR true;
      let addr =
        try (Unix.gethostbyname host).Unix.h_addr_list.(0)
        with Not_found -> Unix.inet_addr_of_string host
      in
      Unix.bind fd (Unix.ADDR_INET (addr, port));
      Unix.listen fd 64;
      Unix.set_nonblock fd;
      fd

let push_response conn response =
  if conn.alive then
    Queue.add (Wire.response_to_line response ^ "\n") conn.outq

(* One select round's worth of writing to a connection; partial writes
   keep their offset into the head chunk. *)
let write_some conn =
  try
    let progress = ref true in
    while !progress && not (Queue.is_empty conn.outq) do
      let chunk = Queue.peek conn.outq in
      let len = String.length chunk - conn.out_off in
      let n = Unix.write_substring conn.fd chunk conn.out_off len in
      if n = len then begin
        ignore (Queue.pop conn.outq);
        conn.out_off <- 0
      end
      else begin
        conn.out_off <- conn.out_off + n;
        progress := false
      end
    done;
    true
  with
  | Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _) ->
      true
  | Unix.Unix_error _ -> false

let run ?(on_ready = fun (_ : Wal.recovery) -> ()) cfg =
  if not (Sys.file_exists cfg.dir) then Unix.mkdir cfg.dir 0o755;
  match
    Wal.recover ?cost_model:cfg.cost_model ~dir:cfg.dir ~policy:cfg.policy ()
  with
  | Error m -> Error ("recovery: " ^ m)
  | Ok recovery -> (
      let replica = recovery.Wal.replica in
      let writer = ref recovery.Wal.writer in
      let shed =
        Shed.create
          ~default_budget_s:(cfg.default_budget_ms /. 1000.)
          ~max_queue:cfg.max_queue ()
      in
      let stats = { decided = 0; admitted = 0; rejected = 0; shed = 0; failed = 0 } in
      let queue : item Queue.t = Queue.create () in
      let conns : (Unix.file_descr, conn) Hashtbl.t = Hashtbl.create 16 in
      let draining = ref false in
      let since_snapshot = ref 0 in
      install_signals ();
      stop_requested := false;
      match listen_on cfg.address with
      | exception Unix.Unix_error (e, _, _) ->
          Error (Printf.sprintf "bind: %s" (Unix.error_message e))
      | listener ->
          on_ready recovery;
          let close_conn conn =
            if conn.alive then begin
              conn.alive <- false;
              Hashtbl.remove conns conn.fd;
              try Unix.close conn.fd with Unix.Unix_error _ -> ()
            end
          in
          let daemon_stat_fields () =
            [
              ("queue", Json.Int (Queue.length queue));
              ("connections", Json.Int (Hashtbl.length conns));
              ("decided", Json.Int stats.decided);
              ("admitted", Json.Int stats.admitted);
              ("rejected", Json.Int stats.rejected);
              ("shed", Json.Int stats.shed);
              ("failed", Json.Int stats.failed);
              ("estimate_ms", Json.Float (Shed.estimate_s shed *. 1000.));
              ("wal_seq", Json.Int (Wal.seq !writer));
              ("wal_offset", Json.Int (Wal.offset !writer));
            ]
          in
          let snapshot () =
            match
              Wal.save_snapshot
                ~path:(Wal.snapshot_path ~dir:cfg.dir)
                !writer replica
            with
            | Ok () -> since_snapshot := 0
            | Error m -> Printf.eprintf "rota serve: snapshot failed: %s\n%!" m
          in
          (* Accept whatever parses; every line becomes exactly one queue
             item — verdicts included — so responses leave in request
             order no matter how they were produced. *)
          let handle_line conn line =
            let now = Unix.gettimeofday () in
            match Wire.request_of_line line with
            | Error m ->
                stats.failed <- stats.failed + 1;
                Queue.add
                  { conn; tag = Json.Null; work = Ready (Wire.Failed m);
                    enqueued = now; budget_ms = None }
                  queue
            | Ok { Wire.tag; op } -> (
                match op with
                | Wire.Admit { computation; budget_ms; _ } -> (
                    match
                      Shed.on_enqueue shed ~queue_len:(Queue.length queue)
                        ~budget_ms
                    with
                    | Shed.Accept ->
                        Queue.add
                          { conn; tag; work = Decide op; enqueued = now;
                            budget_ms }
                          queue
                    | Shed.Reject reason ->
                        stats.shed <- stats.shed + 1;
                        Queue.add
                          { conn; tag;
                            work =
                              Ready
                                (Wire.Shed
                                   { id = computation.Computation.id; reason });
                            enqueued = now; budget_ms }
                          queue)
                | _ ->
                    Queue.add
                      { conn; tag; work = Decide op; enqueued = now;
                        budget_ms = None }
                      queue)
          in
          let feed conn bytes n =
            Buffer.add_subbytes conn.inbuf bytes 0 n;
            let rec split () =
              let s = Buffer.contents conn.inbuf in
              match String.index_opt s '\n' with
              | None -> ()
              | Some i ->
                  Buffer.clear conn.inbuf;
                  Buffer.add_string conn.inbuf
                    (String.sub s (i + 1) (String.length s - i - 1));
                  let line = String.trim (String.sub s 0 i) in
                  if line <> "" then handle_line conn line;
                  split ()
            in
            split ()
          in
          let decide item =
            match item.work with
            | Ready reply -> (None, reply)
            | Decide op -> (
                let waited = Unix.gettimeofday () -. item.enqueued in
                let sheddable =
                  match op with Wire.Admit _ -> true | _ -> false
                in
                match
                  if sheddable then
                    Shed.on_dequeue shed ~waited_s:waited
                      ~budget_ms:item.budget_ms
                  else Shed.Accept
                with
                | Shed.Reject reason ->
                    stats.shed <- stats.shed + 1;
                    let id =
                      match op with
                      | Wire.Admit { computation; _ } ->
                          computation.Computation.id
                      | _ -> ""
                    in
                    (None, Wire.Shed { id; reason })
                | Shed.Accept ->
                    let t0 = Unix.gettimeofday () in
                    if cfg.decide_delay_ms > 0. then
                      Unix.sleepf (cfg.decide_delay_ms /. 1000.);
                    let payloads, reply = Replica.apply replica op in
                    Shed.observe shed (Unix.gettimeofday () -. t0);
                    stats.decided <- stats.decided + 1;
                    (match reply with
                    | Wire.Decided { action = "admit"; _ } ->
                        stats.admitted <- stats.admitted + 1
                    | Wire.Decided _ -> stats.rejected <- stats.rejected + 1
                    | _ -> ());
                    let reply =
                      match (op, reply) with
                      | Wire.Query "stats", Wire.Info fields ->
                          Wire.Info (fields @ daemon_stat_fields ())
                      | _ -> reply
                    in
                    (match op with
                    | Wire.Shutdown -> draining := true
                    | _ -> ());
                    (Some payloads, reply))
          in
          (* Group commit: decide a batch, append everything, fsync once,
             only then let any of the batch's responses out. *)
          let process_queue () =
            let produced = ref [] in
            let logged = ref false in
            let rec go n =
              if n > 0 && not (Queue.is_empty queue) then begin
                let item = Queue.pop queue in
                let payloads, reply = decide item in
                (match payloads with
                | Some (_ :: _ as ps) ->
                    Wal.append !writer ~sim:(Replica.now replica) ps;
                    logged := true;
                    since_snapshot := !since_snapshot + 1
                | _ -> ());
                produced := (item, reply) :: !produced;
                go (n - 1)
              end
            in
            go batch_size;
            if !logged then Wal.sync !writer;
            List.iter
              (fun (item, reply) ->
                push_response item.conn { Wire.tag = item.tag; reply })
              (List.rev !produced)
          in
          let rec loop () =
            if !stop_requested then draining := true;
            let accepting =
              (not !draining)
              && Hashtbl.length conns < cfg.max_connections
              && Queue.length queue < cfg.max_queue
            in
            let reading =
              (not !draining) && Queue.length queue < cfg.max_queue
            in
            let reads =
              (if accepting then [ listener ] else [])
              @
              if reading then
                Hashtbl.fold (fun fd _ acc -> fd :: acc) conns []
              else []
            in
            let writes =
              Hashtbl.fold
                (fun fd c acc ->
                  if Queue.is_empty c.outq then acc else fd :: acc)
                conns []
            in
            let timeout = if Queue.is_empty queue then 0.2 else 0. in
            let readable, writable, _ =
              try Unix.select reads writes [] timeout
              with Unix.Unix_error (Unix.EINTR, _, _) -> ([], [], [])
            in
            List.iter
              (fun fd ->
                if fd == listener then begin
                  let rec accept_all () =
                    match Unix.accept listener with
                    | cfd, _ ->
                        Unix.set_nonblock cfd;
                        Hashtbl.replace conns cfd
                          {
                            fd = cfd;
                            inbuf = Buffer.create 256;
                            outq = Queue.create ();
                            out_off = 0;
                            alive = true;
                          };
                        accept_all ()
                    | exception
                        Unix.Unix_error
                          ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
                        ()
                    | exception Unix.Unix_error _ -> ()
                  in
                  accept_all ()
                end
                else
                  match Hashtbl.find_opt conns fd with
                  | None -> ()
                  | Some conn -> (
                      let bytes = Bytes.create 8192 in
                      match Unix.read fd bytes 0 8192 with
                      | 0 -> close_conn conn
                      | n -> feed conn bytes n
                      | exception
                          Unix.Unix_error
                            ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _)
                        ->
                          ()
                      | exception Unix.Unix_error _ -> close_conn conn))
              readable;
            process_queue ();
            List.iter
              (fun fd ->
                match Hashtbl.find_opt conns fd with
                | None -> ()
                | Some conn -> if not (write_some conn) then close_conn conn)
              writable;
            (* Whatever process_queue just produced should not wait for
               the next select round on an idle socket. *)
            Hashtbl.iter
              (fun _ conn ->
                if not (Queue.is_empty conn.outq) then
                  if not (write_some conn) then close_conn conn)
              (Hashtbl.copy conns);
            if !since_snapshot >= cfg.snapshot_every then snapshot ();
            let drained =
              !draining && Queue.is_empty queue
              && Hashtbl.fold
                   (fun _ c acc -> acc && Queue.is_empty c.outq)
                   conns true
            in
            if drained then begin
              Wal.sync !writer;
              snapshot ();
              Wal.close !writer;
              Hashtbl.iter (fun _ c -> close_conn c) (Hashtbl.copy conns);
              (try Unix.close listener with Unix.Unix_error _ -> ());
              (match cfg.address with
              | Unix_socket path ->
                  if Sys.file_exists path then Unix.unlink path
              | Tcp _ -> ());
              Ok ()
            end
            else loop ()
          in
          loop ())
