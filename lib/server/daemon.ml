open Import

type address = Unix_socket of string | Tcp of string * int

type config = {
  dir : string;
  address : address;
  policy : Admission.policy;
  cost_model : Cost_model.t option;
  max_queue : int;
  default_budget_ms : float;
  snapshot_every : int;
  decide_delay_ms : float;
  max_connections : int;
  telemetry : bool;
  metrics_listen : address option;
  metrics_out : string option;
  metrics_every : int;
  slo_budget : float;
  flight_capacity : int;
}

let config ?(max_queue = 512) ?(default_budget_ms = 250.) ?(snapshot_every = 512)
    ?(decide_delay_ms = 0.) ?(max_connections = 64) ?(telemetry = true)
    ?metrics_listen ?metrics_out ?(metrics_every = 256) ?(slo_budget = 0.01)
    ?(flight_capacity = 4096) ?cost_model ~dir ~address policy =
  {
    dir;
    address;
    policy;
    cost_model;
    max_queue;
    default_budget_ms;
    snapshot_every;
    decide_delay_ms;
    max_connections;
    telemetry;
    metrics_listen;
    metrics_out;
    metrics_every;
    slo_budget;
    flight_capacity;
  }

type conn = {
  fd : Unix.file_descr;
  inbuf : Buffer.t;
  outq : string Queue.t;
  mutable out_off : int;  (* bytes of [Queue.peek outq] already written *)
  mutable alive : bool;
}

type work = Decide of Wire.op | Ready of Wire.reply

type item = {
  conn : conn;
  tag : Json.t;
  cid : string;  (* the daemon's correlation id for this request *)
  span : int;  (* pre-allocated [server/request] span id *)
  work : work;
  recv : float;  (* wall time the request line arrived (parse began) *)
  enqueued : float;
  budget_ms : float option;
}

(* A metrics-scrape connection: one HTTP/1.0 request in, one response
   out, close.  Deliberately separate from [conn] — scrapers speak HTTP,
   never the JSONL wire protocol, and never touch the replica. *)
type scrape = {
  sfd : Unix.file_descr;
  sbuf : Buffer.t;
  mutable sout : string;  (* response bytes not yet written *)
  mutable soff : int;
  mutable sreplied : bool;
}

type stats = {
  mutable decided : int;
  mutable admitted : int;
  mutable rejected : int;
  mutable shed : int;
  mutable failed : int;
}

let batch_size = 64

(* Cumulative sheds that trigger the one shed-storm flight dump: enough
   that a handful of stragglers in a normal drain never fires it, small
   enough that a real storm is captured while it is still ongoing. *)
let shed_storm_threshold = 128

let stop_requested = ref false
let quit_requested = ref false

let install_signals () =
  let note _ = stop_requested := true in
  Sys.set_signal Sys.sigterm (Sys.Signal_handle note);
  Sys.set_signal Sys.sigint (Sys.Signal_handle note);
  (* SIGQUIT = "tell me what you were doing": dump the flight recorder,
     then drain — the crash-investigation analogue of a core dump. *)
  Sys.set_signal Sys.sigquit (Sys.Signal_handle (fun _ -> quit_requested := true));
  (* Peer hangups surface as write errors, not process death. *)
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore

let listen_on address =
  match address with
  | Unix_socket path ->
      if Sys.file_exists path then Unix.unlink path;
      let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      Unix.bind fd (Unix.ADDR_UNIX path);
      Unix.listen fd 64;
      Unix.set_nonblock fd;
      fd
  | Tcp (host, port) ->
      let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
      Unix.setsockopt fd Unix.SO_REUSEADDR true;
      let addr =
        try (Unix.gethostbyname host).Unix.h_addr_list.(0)
        with Not_found -> Unix.inet_addr_of_string host
      in
      Unix.bind fd (Unix.ADDR_INET (addr, port));
      Unix.listen fd 64;
      Unix.set_nonblock fd;
      fd

let push_response conn response =
  if conn.alive then
    Queue.add (Wire.response_to_line response ^ "\n") conn.outq

(* One select round's worth of writing to a connection; partial writes
   keep their offset into the head chunk. *)
let write_some conn =
  try
    let progress = ref true in
    while !progress && not (Queue.is_empty conn.outq) do
      let chunk = Queue.peek conn.outq in
      let len = String.length chunk - conn.out_off in
      let n = Unix.write_substring conn.fd chunk conn.out_off len in
      if n = len then begin
        ignore (Queue.pop conn.outq);
        conn.out_off <- 0
      end
      else begin
        conn.out_off <- conn.out_off + n;
        progress := false
      end
    done;
    true
  with
  | Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _) ->
      true
  | Unix.Unix_error _ -> false

let content_type = "application/openmetrics-text; version=1.0.0; charset=utf-8"

let http_response body =
  Printf.sprintf
    "HTTP/1.0 200 OK\r\nContent-Type: %s\r\nContent-Length: %d\r\nConnection: \
     close\r\n\r\n%s"
    content_type (String.length body) body

(* End of an HTTP request head: a blank line.  The whole GET fits in one
   or two reads in practice, but a byte-at-a-time client works too. *)
let has_blank_line s =
  let rec go i =
    if i + 1 >= String.length s then false
    else if s.[i] = '\n' && (s.[i + 1] = '\n' || (s.[i + 1] = '\r' && i + 2 < String.length s && s.[i + 2] = '\n'))
    then true
    else go (i + 1)
  in
  String.length s >= 2 && (String.sub s 0 1 = "\n" || go 0)

let flight_file ~dir = Filename.concat dir (Printf.sprintf "flight-%d.rotb" (Unix.getpid ()))

let run ?(on_ready = fun (_ : Wal.recovery) -> ()) cfg =
  if not (Sys.file_exists cfg.dir) then Unix.mkdir cfg.dir 0o755;
  (* The observability plane is on unless explicitly refused: a serving
     daemon that cannot answer "what are you doing" is flying blind. *)
  if cfg.telemetry then Metrics.set_enabled true;
  match
    Wal.recover ?cost_model:cfg.cost_model ~dir:cfg.dir ~policy:cfg.policy ()
  with
  | Error m -> Error ("recovery: " ^ m)
  | Ok recovery -> (
      let replica = recovery.Wal.replica in
      let writer = ref recovery.Wal.writer in
      let shed =
        Shed.create
          ~default_budget_s:(cfg.default_budget_ms /. 1000.)
          ~max_queue:cfg.max_queue ()
      in
      let stats = { decided = 0; admitted = 0; rejected = 0; shed = 0; failed = 0 } in
      let queue : item Queue.t = Queue.create () in
      let conns : (Unix.file_descr, conn) Hashtbl.t = Hashtbl.create 16 in
      let scrapes : (Unix.file_descr, scrape) Hashtbl.t = Hashtbl.create 4 in
      let draining = ref false in
      let since_snapshot = ref 0 in
      let cid_counter = ref 0 in
      let pid = Unix.getpid () in
      let mint_cid () =
        incr cid_counter;
        Printf.sprintf "r%d-%d" pid !cid_counter
      in
      (* --- the observability plane ------------------------------------- *)
      let telemetry = cfg.telemetry in
      let flight =
        if telemetry then Some (Flight.create ~capacity:cfg.flight_capacity ())
        else None
      in
      let metrics_out =
        if telemetry then
          Option.map
            (fun path -> Openmetrics.snapshot_sink ~every:cfg.metrics_every path)
            cfg.metrics_out
        else None
      in
      (* Every event the daemon produces — WAL records and telemetry-only
         records alike — flows through here: into the flight recorder's
         ring and past the --metrics-out refresh counter. *)
      let observe_event e =
        (match flight with Some f -> Flight.record f e | None -> ());
        match metrics_out with Some s -> s.Sink.emit e | None -> ()
      in
      (* Telemetry-only records (sheds, spans): stamped by the daemon —
         the flight ring re-sequences, and an installed tracer sink
         ([--trace]) gets its own independently stamped copy. *)
      let record_tele ?sim payload =
        if telemetry then begin
          observe_event
            {
              Events.seq = 0;
              run = 1;
              sim;
              wall_s = Unix.gettimeofday ();
              payload;
            };
          if Tracer.active () then Tracer.emit ?sim payload
        end
      in
      let record_span ?parent ?id ~name ~begin_s ~until () =
        if telemetry then
          let id = match id with Some i -> i | None -> Tracer.alloc_span_id () in
          record_tele
            (Events.Span
               {
                 name;
                 id;
                 parent;
                 depth = (match parent with None -> 0 | Some _ -> 1);
                 begin_s;
                 duration_s = until -. begin_s;
               })
      in
      let flight_path = flight_file ~dir:cfg.dir in
      let flight_dumped = ref false in
      let dump_flight reason =
        match flight with
        | None -> ()
        | Some f -> (
            flight_dumped := true;
            match Flight.dump f flight_path with
            | Ok n ->
                Printf.eprintf
                  "rota serve: flight recorder: %d events -> %s (%s)\n%!" n
                  flight_path reason
            | Error m ->
                Printf.eprintf "rota serve: flight dump failed: %s\n%!" m)
      in
      (* Deadline-assurance SLO: every request that reached a verdict is
         good when the live audit re-verified the decision, bad when the
         auditor diverged or the daemon shed it without deciding. *)
      let slo = Slo.create ~budget:cfg.slo_budget () in
      let divergence_dumped = ref false in
      let on_outcome (o : Live.outcome) =
        let now = Unix.gettimeofday () in
        match o.Live.verdict with
        | Live.Verified | Live.Skipped _ -> Slo.record slo ~now ~good:true
        | Live.Diverged complaints ->
            List.iter
              (fun message ->
                Slo.record slo ~now ~good:false;
                (* The watchdog emits these on the tracer stream; the
                   flight ring needs its own copy, tracer or not. *)
                match flight with
                | Some f ->
                    Flight.record f
                      {
                        Events.seq = 0;
                        run = o.Live.run;
                        sim = o.Live.sim;
                        wall_s = now;
                        payload =
                          Events.Audit_divergence
                            {
                              id = o.Live.id;
                              action = o.Live.action;
                              of_seq = o.Live.seq;
                              message;
                            };
                      }
                | None -> ())
              complaints;
            if not !divergence_dumped then begin
              divergence_dumped := true;
              dump_flight "audit divergence"
            end
      in
      let watchdog =
        if telemetry then Some (Watchdog.create ~on_outcome ()) else None
      in
      let tee_wal events =
        if telemetry then
          List.iter
            (fun e ->
              (match watchdog with Some w -> Watchdog.observe w e | None -> ());
              observe_event e)
            events
      in
      let shed_total = ref 0 in
      let storm_dumped = ref false in
      let note_shed ~id ~slug ~reason =
        stats.shed <- stats.shed + 1;
        incr shed_total;
        Telemetry.count_shed slug;
        Slo.record slo ~now:(Unix.gettimeofday ()) ~good:false;
        record_tele ~sim:(Replica.now replica) (Events.Shed { id; slug; reason });
        if !shed_total >= shed_storm_threshold && not !storm_dumped then begin
          storm_dumped := true;
          dump_flight
            (Printf.sprintf "shed storm (%d requests refused)" !shed_total)
        end
      in
      let refresh_gauges () =
        if telemetry then begin
          let now = Unix.gettimeofday () in
          Metrics.set Telemetry.queue_depth (Queue.length queue);
          Metrics.set Telemetry.connections (Hashtbl.length conns);
          Telemetry.set_burn Telemetry.burn_5m (Slo.burn slo ~now ~window_s:300);
          Telemetry.set_burn Telemetry.burn_1h (Slo.burn slo ~now ~window_s:3600);
          Runtime_sampler.update ()
        end
      in
      let exposition () =
        refresh_gauges ();
        Openmetrics.render (Metrics.snapshot ())
      in
      install_signals ();
      stop_requested := false;
      quit_requested := false;
      match listen_on cfg.address with
      | exception Unix.Unix_error (e, _, _) ->
          Error (Printf.sprintf "bind: %s" (Unix.error_message e))
      | listener -> (
          match Option.map listen_on cfg.metrics_listen with
          | exception Unix.Unix_error (e, _, _) ->
              (try Unix.close listener with Unix.Unix_error _ -> ());
              Error (Printf.sprintf "bind metrics: %s" (Unix.error_message e))
          | mlistener ->
          on_ready recovery;
          let close_conn conn =
            if conn.alive then begin
              conn.alive <- false;
              Hashtbl.remove conns conn.fd;
              try Unix.close conn.fd with Unix.Unix_error _ -> ()
            end
          in
          let close_scrape s =
            Hashtbl.remove scrapes s.sfd;
            try Unix.close s.sfd with Unix.Unix_error _ -> ()
          in
          let daemon_stat_fields () =
            [
              ("queue", Json.Int (Queue.length queue));
              ("connections", Json.Int (Hashtbl.length conns));
              ("decided", Json.Int stats.decided);
              ("admitted", Json.Int stats.admitted);
              ("rejected", Json.Int stats.rejected);
              ("shed", Json.Int stats.shed);
              ("failed", Json.Int stats.failed);
              ("estimate_ms", Json.Float (Shed.estimate_s shed *. 1000.));
              ("wal_seq", Json.Int (Wal.seq !writer));
              ("wal_offset", Json.Int (Wal.offset !writer));
            ]
          in
          let snapshot () =
            match
              Wal.save_snapshot
                ~path:(Wal.snapshot_path ~dir:cfg.dir)
                !writer replica
            with
            | Ok () -> since_snapshot := 0
            | Error m -> Printf.eprintf "rota serve: snapshot failed: %s\n%!" m
          in
          let metrics_reply () =
            refresh_gauges ();
            let view = Metrics.snapshot () in
            let now = Unix.gettimeofday () in
            let samples =
              List.mapi
                (fun i payload ->
                  Events.to_json
                    { Events.seq = i + 1; run = 0; sim = None; wall_s = now;
                      payload })
                (Tracer.samples_of_view view)
            in
            Wire.Metrics_snapshot
              { exposition = Openmetrics.render view; samples }
          in
          (* Accept whatever parses; every line becomes exactly one queue
             item — verdicts included — so responses leave in request
             order no matter how they were produced. *)
          let handle_line conn line =
            let recv = Unix.gettimeofday () in
            let parsed = Wire.request_of_line line in
            let now = Unix.gettimeofday () in
            let cid = mint_cid () in
            let span = Tracer.alloc_span_id () in
            record_span ~parent:span ~name:"server/parse" ~begin_s:recv
              ~until:now ();
            match parsed with
            | Error m ->
                stats.failed <- stats.failed + 1;
                Telemetry.count_request "invalid";
                Queue.add
                  { conn; tag = Json.Null; cid; span;
                    work = Ready (Wire.Failed m); recv; enqueued = now;
                    budget_ms = None }
                  queue
            | Ok { Wire.tag; op } -> (
                Telemetry.count_request (Telemetry.verb_of_op op);
                match op with
                | Wire.Admit { computation; budget_ms; _ } -> (
                    match
                      Shed.on_enqueue shed ~queue_len:(Queue.length queue)
                        ~budget_ms
                    with
                    | Shed.Accept ->
                        Queue.add
                          { conn; tag; cid; span; work = Decide op; recv;
                            enqueued = now; budget_ms }
                          queue
                    | Shed.Reject { slug; message } ->
                        let id = computation.Computation.id in
                        note_shed ~id ~slug ~reason:message;
                        Queue.add
                          { conn; tag; cid; span;
                            work = Ready (Wire.Shed { id; reason = message });
                            recv; enqueued = now; budget_ms }
                          queue)
                | _ ->
                    Queue.add
                      { conn; tag; cid; span; work = Decide op; recv;
                        enqueued = now; budget_ms = None }
                      queue)
          in
          let feed conn bytes n =
            Buffer.add_subbytes conn.inbuf bytes 0 n;
            let rec split () =
              let s = Buffer.contents conn.inbuf in
              match String.index_opt s '\n' with
              | None -> ()
              | Some i ->
                  Buffer.clear conn.inbuf;
                  Buffer.add_string conn.inbuf
                    (String.sub s (i + 1) (String.length s - i - 1));
                  let line = String.trim (String.sub s 0 i) in
                  if line <> "" then handle_line conn line;
                  split ()
            in
            split ()
          in
          let decide item =
            match item.work with
            | Ready reply -> (None, reply)
            | Decide op -> (
                let picked = Unix.gettimeofday () in
                let waited = picked -. item.enqueued in
                Metrics.observe Telemetry.queue_wait waited;
                record_span ~parent:item.span ~name:"server/queue-wait"
                  ~begin_s:item.enqueued ~until:picked ();
                let sheddable =
                  match op with Wire.Admit _ -> true | _ -> false
                in
                match
                  if sheddable then
                    Shed.on_dequeue shed ~waited_s:waited
                      ~budget_ms:item.budget_ms
                  else Shed.Accept
                with
                | Shed.Reject { slug; message } ->
                    let id =
                      match op with
                      | Wire.Admit { computation; _ } ->
                          computation.Computation.id
                      | _ -> ""
                    in
                    note_shed ~id ~slug ~reason:message;
                    (None, Wire.Shed { id; reason = message })
                | Shed.Accept when op = Wire.Metrics ->
                    (* Answered from the serving loop: a scrape must not
                       touch the replica or the WAL. *)
                    (None, metrics_reply ())
                | Shed.Accept ->
                    let t0 = Unix.gettimeofday () in
                    if cfg.decide_delay_ms > 0. then
                      Unix.sleepf (cfg.decide_delay_ms /. 1000.);
                    let payloads, reply =
                      Replica.apply ~cid:item.cid replica op
                    in
                    let t1 = Unix.gettimeofday () in
                    Shed.observe shed (t1 -. t0);
                    record_span ~parent:item.span ~name:"server/decide"
                      ~begin_s:t0 ~until:t1 ();
                    stats.decided <- stats.decided + 1;
                    (match reply with
                    | Wire.Decided { action = "admit"; _ } ->
                        stats.admitted <- stats.admitted + 1
                    | Wire.Decided _ -> stats.rejected <- stats.rejected + 1
                    | _ -> ());
                    (* Deadline slack: how much simulated headroom the
                       admitted schedule leaves before the deadline. *)
                    (match (op, reply) with
                    | ( Wire.Admit { computation; _ },
                        Wire.Decided { action = "admit"; _ } ) ->
                        List.iter
                          (function
                            | Events.Decision { certificate; _ } ->
                                Telemetry.observe_admit_slack
                                  ~deadline:computation.Computation.deadline
                                  certificate
                            | _ -> ())
                          payloads
                    | _ -> ());
                    let reply =
                      match (op, reply) with
                      | Wire.Query "stats", Wire.Info fields ->
                          Wire.Info (fields @ daemon_stat_fields ())
                      | _ -> reply
                    in
                    (match op with
                    | Wire.Shutdown -> draining := true
                    | _ -> ());
                    (Some payloads, reply))
          in
          (* Group commit: decide a batch, append everything, fsync once,
             only then let any of the batch's responses out. *)
          let process_queue () =
            let produced = ref [] in
            let logged = ref false in
            let rec go n =
              if n > 0 && not (Queue.is_empty queue) then begin
                let item = Queue.pop queue in
                let payloads, reply = decide item in
                (match payloads with
                | Some (_ :: _ as ps) ->
                    let b0 = Wal.buffered !writer in
                    let t0 = Unix.gettimeofday () in
                    let events =
                      Wal.append !writer ~sim:(Replica.now replica) ps
                    in
                    let t1 = Unix.gettimeofday () in
                    Metrics.add Telemetry.wal_bytes (Wal.buffered !writer - b0);
                    record_span ~parent:item.span ~name:"server/encode"
                      ~begin_s:t0 ~until:t1 ();
                    tee_wal events;
                    logged := true;
                    since_snapshot := !since_snapshot + 1
                | _ -> ());
                produced := (item, reply) :: !produced;
                go (n - 1)
              end
            in
            go batch_size;
            if !logged then begin
              let t0 = Unix.gettimeofday () in
              Wal.sync !writer;
              let t1 = Unix.gettimeofday () in
              Metrics.observe Telemetry.fsync (t1 -. t0);
              (* One flush covers the whole batch, so the span stands
                 alone rather than under any single request. *)
              record_span ~name:"server/wal-fsync" ~begin_s:t0 ~until:t1 ()
            end;
            List.iter
              (fun (item, reply) ->
                let now = Unix.gettimeofday () in
                Metrics.observe Telemetry.rtt (now -. item.recv);
                record_span ~id:item.span ~name:"server/request"
                  ~begin_s:item.recv ~until:now ();
                let tag =
                  (* Untagged clients still get a correlation handle: the
                     cid doubles as the echoed tag. *)
                  match item.tag with
                  | Json.Null -> Json.String item.cid
                  | t -> t
                in
                push_response item.conn
                  { Wire.tag; cid = Some item.cid; reply })
              (List.rev !produced)
          in
          let serve_scrape s =
            if has_blank_line (Buffer.contents s.sbuf) && not s.sreplied then begin
              s.sreplied <- true;
              s.sout <- http_response (exposition ())
            end
          in
          let write_scrape s =
            match
              let len = String.length s.sout - s.soff in
              if len = 0 then 0
              else Unix.write_substring s.sfd s.sout s.soff len
            with
            | n ->
                s.soff <- s.soff + n;
                if s.sreplied && s.soff >= String.length s.sout then
                  close_scrape s
            | exception
                Unix.Unix_error
                  ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _) ->
                ()
            | exception Unix.Unix_error _ -> close_scrape s
          in
          let accept_scrapes fd =
            let rec go () =
              match Unix.accept fd with
              | sfd, _ ->
                  Unix.set_nonblock sfd;
                  Hashtbl.replace scrapes sfd
                    {
                      sfd;
                      sbuf = Buffer.create 128;
                      sout = "";
                      soff = 0;
                      sreplied = false;
                    };
                  go ()
              | exception
                  Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
                  ()
              | exception Unix.Unix_error _ -> ()
            in
            go ()
          in
          let rec loop () =
            if !stop_requested then draining := true;
            if !quit_requested then begin
              quit_requested := false;
              dump_flight "sigquit";
              draining := true
            end;
            refresh_gauges ();
            let accepting =
              (not !draining)
              && Hashtbl.length conns < cfg.max_connections
              && Queue.length queue < cfg.max_queue
            in
            let reading =
              (not !draining) && Queue.length queue < cfg.max_queue
            in
            let reads =
              (if accepting then [ listener ] else [])
              @ (match mlistener with
                | Some m when not !draining -> [ m ]
                | _ -> [])
              @ Hashtbl.fold
                  (fun fd s acc -> if s.sreplied then acc else fd :: acc)
                  scrapes []
              @
              if reading then
                Hashtbl.fold (fun fd _ acc -> fd :: acc) conns []
              else []
            in
            let writes =
              Hashtbl.fold
                (fun fd c acc ->
                  if Queue.is_empty c.outq then acc else fd :: acc)
                conns []
              @ Hashtbl.fold
                  (fun fd s acc ->
                    if s.soff < String.length s.sout then fd :: acc else acc)
                  scrapes []
            in
            let timeout = if Queue.is_empty queue then 0.2 else 0. in
            let readable, writable, _ =
              try Unix.select reads writes [] timeout
              with Unix.Unix_error (Unix.EINTR, _, _) -> ([], [], [])
            in
            List.iter
              (fun fd ->
                if fd == listener then begin
                  let rec accept_all () =
                    match Unix.accept listener with
                    | cfd, _ ->
                        Unix.set_nonblock cfd;
                        Hashtbl.replace conns cfd
                          {
                            fd = cfd;
                            inbuf = Buffer.create 256;
                            outq = Queue.create ();
                            out_off = 0;
                            alive = true;
                          };
                        accept_all ()
                    | exception
                        Unix.Unix_error
                          ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
                        ()
                    | exception Unix.Unix_error _ -> ()
                  in
                  accept_all ()
                end
                else if (match mlistener with Some m -> fd == m | None -> false)
                then accept_scrapes fd
                else
                  match Hashtbl.find_opt scrapes fd with
                  | Some s -> (
                      let bytes = Bytes.create 1024 in
                      match Unix.read fd bytes 0 1024 with
                      | 0 -> close_scrape s
                      | n ->
                          Buffer.add_subbytes s.sbuf bytes 0 n;
                          serve_scrape s;
                          if s.sreplied then write_scrape s
                      | exception
                          Unix.Unix_error
                            ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _)
                        ->
                          ()
                      | exception Unix.Unix_error _ -> close_scrape s)
                  | None -> (
                      match Hashtbl.find_opt conns fd with
                      | None -> ()
                      | Some conn -> (
                          let bytes = Bytes.create 8192 in
                          match Unix.read fd bytes 0 8192 with
                          | 0 -> close_conn conn
                          | n -> feed conn bytes n
                          | exception
                              Unix.Unix_error
                                ( (Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR),
                                  _, _ ) ->
                              ()
                          | exception Unix.Unix_error _ -> close_conn conn)))
              readable;
            process_queue ();
            List.iter
              (fun fd ->
                match Hashtbl.find_opt conns fd with
                | None -> (
                    match Hashtbl.find_opt scrapes fd with
                    | Some s -> write_scrape s
                    | None -> ())
                | Some conn -> if not (write_some conn) then close_conn conn)
              writable;
            (* Whatever process_queue just produced should not wait for
               the next select round on an idle socket. *)
            Hashtbl.iter
              (fun _ conn ->
                if not (Queue.is_empty conn.outq) then
                  if not (write_some conn) then close_conn conn)
              (Hashtbl.copy conns);
            if !since_snapshot >= cfg.snapshot_every then snapshot ();
            let drained =
              !draining && Queue.is_empty queue
              && Hashtbl.fold
                   (fun _ c acc -> acc && Queue.is_empty c.outq)
                   conns true
            in
            if drained then begin
              Wal.sync !writer;
              snapshot ();
              Wal.close !writer;
              (match metrics_out with Some s -> s.Sink.close () | None -> ());
              Hashtbl.iter (fun _ c -> close_conn c) (Hashtbl.copy conns);
              Hashtbl.iter (fun _ s -> close_scrape s) (Hashtbl.copy scrapes);
              (try Unix.close listener with Unix.Unix_error _ -> ());
              (match mlistener with
              | Some m -> ( try Unix.close m with Unix.Unix_error _ -> ())
              | None -> ());
              (match cfg.address with
              | Unix_socket path ->
                  if Sys.file_exists path then Unix.unlink path
              | Tcp _ -> ());
              (match cfg.metrics_listen with
              | Some (Unix_socket path) ->
                  if Sys.file_exists path then Unix.unlink path
              | Some (Tcp _) | None -> ());
              Ok ()
            end
            else loop ()
          in
          (* A daemon dying of an uncaught exception still leaves its
             last seconds on disk for the post-mortem. *)
          try loop ()
          with exn ->
            if not !flight_dumped then
              dump_flight ("fatal: " ^ Printexc.to_string exn);
            raise exn))
