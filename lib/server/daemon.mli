open Import

(** The [rota serve] daemon: a single-threaded [select] loop serving the
    {!Wire} protocol over a Unix or TCP socket, with {!Wal} durability
    and {!Shed} overload protection.

    Request lifecycle: bytes → {!Wire.request_of_line} → the bounded
    FIFO (or an immediate shed verdict, which still travels {e through}
    the FIFO so responses stay in per-connection request order) → decide
    through {!Replica.apply} → append to the WAL → one [fsync] per batch
    (group commit) → respond.  No response precedes its fsync, so every
    acknowledged transition survives a crash.

    Backpressure: when the queue is full the loop simply stops
    [select]ing client descriptors readable (and the listener
    acceptable), so overload is pushed back into kernel buffers and
    client connect queues instead of process memory.

    Shutdown: SIGTERM/SIGINT (or a {!Wire.Shutdown} request) drains —
    stop accepting and reading, decide everything queued, flush
    responses, fsync, snapshot, exit cleanly. *)

type address = Unix_socket of string | Tcp of string * int

type config = {
  dir : string;  (** WAL + snapshot directory (created if missing). *)
  address : address;
  policy : Admission.policy;
  cost_model : Cost_model.t option;
  max_queue : int;
  default_budget_ms : float;
  snapshot_every : int;  (** Decided requests between snapshots. *)
  decide_delay_ms : float;
      (** Test hook: artificial latency added to every decision, so
          overload (and therefore shedding) can be provoked
          deterministically.  [0.] in production. *)
  max_connections : int;
}

val config :
  ?max_queue:int ->
  ?default_budget_ms:float ->
  ?snapshot_every:int ->
  ?decide_delay_ms:float ->
  ?max_connections:int ->
  ?cost_model:Cost_model.t ->
  dir:string ->
  address:address ->
  Admission.policy ->
  config

val run : ?on_ready:(Wal.recovery -> unit) -> config -> (unit, string) result
(** Recover (or create) the WAL, bind, serve until drained.  [on_ready]
    fires once the socket is listening, with the recovery summary —
    the CLI prints its "listening" line from it, and smoke tests key on
    that line to know the daemon is up. *)
