open Import

(** The [rota serve] daemon: a single-threaded [select] loop serving the
    {!Wire} protocol over a Unix or TCP socket, with {!Wal} durability
    and {!Shed} overload protection.

    Request lifecycle: bytes → {!Wire.request_of_line} → the bounded
    FIFO (or an immediate shed verdict, which still travels {e through}
    the FIFO so responses stay in per-connection request order) → decide
    through {!Replica.apply} → append to the WAL → one [fsync] per batch
    (group commit) → respond.  No response precedes its fsync, so every
    acknowledged transition survives a crash.

    Backpressure: when the queue is full the loop simply stops
    [select]ing client descriptors readable (and the listener
    acceptable), so overload is pushed back into kernel buffers and
    client connect queues instead of process memory.

    Observability (unless [telemetry = false]): every request carries a
    correlation id (minted [r<pid>-<n>], echoed in the reply [cid] field
    — and as the [tag] for untagged requests — and stamped into the WAL
    decision record) and a [server/request] span with
    parse/queue-wait/decide/encode children; the {!Telemetry} families
    fill in as traffic flows; a {!Rota_audit.Watchdog} re-verifies every
    WAL event and feeds the deadline-assurance {!Rota_obs.Slo} windows
    behind the [slo/burn_*] gauges; and a {!Rota_obs.Flight} ring keeps
    the last [flight_capacity] events in memory, dumped to
    [<dir>/flight-<pid>.rotb] on SIGQUIT, the first audit divergence, a
    shed storm, or a fatal exception.

    Scraping: [metrics_listen] adds a second listener inside the same
    [select] loop that answers any HTTP request with an OpenMetrics
    exposition ([rota metrics scrape], curl, or a Prometheus scraper);
    the wire verb {!Wire.Metrics} answers the same snapshot in-band;
    [metrics_out] atomically rewrites an exposition file every
    [metrics_every] observed events.

    Shutdown: SIGTERM/SIGINT (or a {!Wire.Shutdown} request) drains —
    stop accepting and reading, decide everything queued, flush
    responses, fsync, snapshot, exit cleanly.  SIGQUIT dumps the flight
    recorder first, then drains. *)

type address = Unix_socket of string | Tcp of string * int

type config = {
  dir : string;  (** WAL + snapshot directory (created if missing). *)
  address : address;
  policy : Admission.policy;
  cost_model : Cost_model.t option;
  max_queue : int;
  default_budget_ms : float;
  snapshot_every : int;  (** Decided requests between snapshots. *)
  decide_delay_ms : float;
      (** Test hook: artificial latency added to every decision, so
          overload (and therefore shedding) can be provoked
          deterministically.  [0.] in production. *)
  max_connections : int;
  telemetry : bool;
      (** [false] switches the whole observability plane off: no metric
          recording, no spans, no watchdog, no flight recorder.  The
          bench's overhead pair flips exactly this. *)
  metrics_listen : address option;
      (** Scrape endpoint: a second listener answering HTTP with the
          OpenMetrics exposition. *)
  metrics_out : string option;
      (** Atomically rewritten exposition file, for file-based
          collectors. *)
  metrics_every : int;
      (** Observed events between [metrics_out] rewrites. *)
  slo_budget : float;
      (** Fraction of requests allowed to miss (shed, or decided then
          contradicted by the live audit) before the burn rate exceeds
          1.0. *)
  flight_capacity : int;  (** Flight-recorder ring size, in events. *)
}

val config :
  ?max_queue:int ->
  ?default_budget_ms:float ->
  ?snapshot_every:int ->
  ?decide_delay_ms:float ->
  ?max_connections:int ->
  ?telemetry:bool ->
  ?metrics_listen:address ->
  ?metrics_out:string ->
  ?metrics_every:int ->
  ?slo_budget:float ->
  ?flight_capacity:int ->
  ?cost_model:Cost_model.t ->
  dir:string ->
  address:address ->
  Admission.policy ->
  config
(** Defaults: telemetry on, no scrape listener, no exposition file,
    [metrics_every = 256], [slo_budget = 0.01] (99% of requests),
    [flight_capacity = 4096]. *)

val run : ?on_ready:(Wal.recovery -> unit) -> config -> (unit, string) result
(** Recover (or create) the WAL, bind, serve until drained.  [on_ready]
    fires once the socket is listening, with the recovery summary —
    the CLI prints its "listening" line from it, and smoke tests key on
    that line to know the daemon is up. *)
