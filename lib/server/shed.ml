type t = {
  alpha : float;
  default_budget_s : float;
  max_queue : int;
  mutable estimate : float;
  mutable sampled : bool;
}

(* Pessimistic cold-start seed: a daemon that has decided nothing yet
   must still bound its queue under an instant burst. *)
let cold_estimate_s = 0.001

let create ?(alpha = 0.1) ?(default_budget_s = 0.25) ?(max_queue = 512) () =
  if alpha <= 0. || alpha > 1. then invalid_arg "Shed.create: alpha";
  if default_budget_s <= 0. then invalid_arg "Shed.create: default_budget_s";
  if max_queue < 1 then invalid_arg "Shed.create: max_queue";
  { alpha; default_budget_s; max_queue; estimate = cold_estimate_s; sampled = false }

let observe t decide_s =
  if decide_s >= 0. then
    if t.sampled then
      t.estimate <- (t.alpha *. decide_s) +. ((1. -. t.alpha) *. t.estimate)
    else begin
      t.estimate <- decide_s;
      t.sampled <- true
    end

let estimate_s t = t.estimate
let max_queue t = t.max_queue

let budget_s t ~budget_ms =
  match budget_ms with
  | Some ms when ms > 0. -> ms /. 1000.
  | Some _ | None -> t.default_budget_s

type verdict = Accept | Reject of { slug : string; message : string }

let on_enqueue t ~queue_len ~budget_ms =
  if queue_len >= t.max_queue then
    Reject
      {
        slug = "queue-full";
        message = Printf.sprintf "queue full (%d outstanding)" t.max_queue;
      }
  else
    let budget = budget_s t ~budget_ms in
    let predicted = float_of_int (queue_len + 1) *. t.estimate in
    if predicted > budget then
      Reject
        {
          slug = "predicted-delay";
          message =
            Printf.sprintf
              "predicted queue delay %.1fms exceeds budget %.1fms"
              (predicted *. 1000.) (budget *. 1000.);
        }
    else Accept

let on_dequeue t ~waited_s ~budget_ms =
  let budget = budget_s t ~budget_ms in
  if waited_s > budget then
    Reject
      {
        slug = "budget-spent";
        message =
          Printf.sprintf "waited %.1fms, budget %.1fms already spent"
            (waited_s *. 1000.) (budget *. 1000.);
      }
  else Accept
