open Import

(** The serve daemon's metric families, registered once and shared.

    Everything the daemon's scrape endpoint exports lives here: the
    request/latency histograms, the per-verb and per-shed-slug counters,
    the queue/connection gauges, and the SLO burn-rate gauges the
    {!Rota_obs.Slo} windows feed.  Registration is done at module
    initialisation (handles are interned by name), so the families
    appear in every scrape — zero-valued until traffic arrives — and
    the bench's instrumented/uninstrumented pair exercises exactly the
    code paths the daemon runs.

    All recording respects the global {!Metrics} enabled flag; with the
    registry off every helper is a load-and-branch. *)

(** {2 Histograms} *)

val rtt : Metrics.histogram
(** [server/rtt_s] — receipt to response-queued, seconds, per request. *)

val queue_wait : Metrics.histogram
(** [server/queue_wait_s] — FIFO wait before a decider picked the
    request up, seconds. *)

val fsync : Metrics.histogram
(** [server/fsync_s] — WAL group-commit flush+fsync, seconds, per
    batch. *)

val admit_slack : Metrics.histogram
(** [server/admit_slack] — deadline slack of each admitted computation,
    in simulated {e ticks} (deadline minus the certificate schedule's
    completion bound), with explicit small-integer buckets.  Slack 0
    means the schedule finishes exactly at the deadline; the lower this
    histogram leans, the closer the system sails to its promises. *)

(** {2 Gauges} *)

val queue_depth : Metrics.gauge
(** [server/queue_depth] — requests in the FIFO, sampled per loop tick. *)

val connections : Metrics.gauge
(** [server/connections] — live client connections. *)

val burn_5m : Metrics.gauge
val burn_1h : Metrics.gauge
(** [slo/burn_5m] / [slo/burn_1h] — error-budget burn rate over the
    trailing window, in {e milli-burns} (1000 = burning exactly at
    budget) because gauges are integers. *)

val set_burn : Metrics.gauge -> float -> unit
(** Store a {!Rota_obs.Slo.burn} reading on a burn gauge (×1000,
    rounded). *)

(** {2 Counters} *)

val wal_bytes : Metrics.counter
(** [server/wal_bytes] — bytes appended to the WAL. *)

val request_counter : string -> Metrics.counter
(** [server/requests.<verb>] — interned per verb. *)

val shed_counter : string -> Metrics.counter
(** [server/shed.<slug>] — interned per {!Shed} reject slug. *)

val verb_of_op : Wire.op -> string
(** The counter slug for an operation (["admit"], ["release"], ...);
    unparseable requests are counted under ["invalid"]. *)

val count_request : string -> unit
(** Bump [server/requests.<verb>]. *)

val count_shed : string -> unit
(** Bump [server/shed.<slug>]. *)

(** {2 Deadline slack} *)

val completion_bound : Certificate.t -> Time.t option
(** The latest simulated time the certificate's evidence says the
    computation can still be executing: the max schedule-step stop for
    constructive ({!Certificate.Schedules}) evidence, the window stop
    for the aggregate/optimistic baselines, [None] for reject
    evidence. *)

val observe_admit_slack : deadline:Time.t -> Json.t -> unit
(** Parse a decision record's certificate JSON and observe
    [deadline - completion_bound] on {!admit_slack}.  Free when the
    registry is disabled; silently skips certificates that do not parse
    or carry reject evidence. *)
