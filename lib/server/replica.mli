open Import

(** The daemon's replicated state machine: an admission controller plus
    the logical clock, with one transition function used two ways.

    {!apply} is the live path — decide a wire operation, return the
    trace events that {e are} the durable record of the transition (the
    WAL is a valid ROTB event stream) together with the wire reply.
    {!replay} is the recovery path — reconstruct the same state from
    those events alone, without re-running any decision procedure:
    admissions are re-installed from their own certificates
    ({!Certificate.schedules_of_parts} / {!Admission.remember_demand}),
    revocations re-derive their evictions deterministically through
    {!Admission.revoke}.  Keeping both paths in one module is what makes
    "state after crash = state the WAL proves" a local property.

    Time only moves forward: each operation's [now] is clamped to the
    replica's clock, and the controller is {!Admission.advance}d before
    deciding, so the residual a decision pins is truncated exactly the
    way the auditor's reconstruction at that simulated time is. *)

type t

val create : ?cost_model:Cost_model.t -> Admission.policy -> t
(** Empty capacity, clock at 0. *)

val policy : t -> Admission.policy
val now : t -> Time.t
val controller : t -> Admission.t

val run_label : Admission.policy -> string
(** The [run-started] label the WAL opens with (["serve policy=..."]) —
    the same [policy=] field the auditor reads to key its ledger. *)

val residual_digest : t -> string
(** {!Certificate.digest} of the controller's current residual — the
    value recovery must reproduce. *)

val apply : ?cid:string -> t -> Wire.op -> Events.payload list * Wire.reply
(** Decide one operation.  The returned payloads are in emission order
    and must be appended to the WAL {e before} the reply is sent
    (write-ahead).  Query/Ping/Shutdown return no payloads — they change
    no state, so they are never logged.  [cid] is the daemon's
    correlation id for the request; it is stamped into every
    {!Events.Decision} the operation produces (and echoed in the wire
    reply by the daemon), joining the durable record to the client
    conversation. *)

val replay : t -> Events.t -> (unit, string) result
(** Feed one WAL event, in stream order.  Events the daemon never
    writes (or that carry no state: rejects, evictions already implied
    by their fault, telemetry) are ignored; [Error] means the WAL
    records a transition this replica cannot re-install — corruption,
    not a decision disagreement. *)

(** {2 Snapshots} *)

val snapshot : t -> Json.t
(** Clock plus {!Admission.snapshot}. *)

val restore : ?cost_model:Cost_model.t -> Json.t -> (t, string) result
