open Import

(* Latency families use the registry's log-spaced seconds buckets; the
   slack histogram is in simulated ticks, so it gets explicit
   small-integer bounds instead. *)
let rtt = Metrics.histogram "server/rtt_s"
let queue_wait = Metrics.histogram "server/queue_wait_s"
let fsync = Metrics.histogram "server/fsync_s"

let slack_buckets =
  [| 0.; 1.; 2.; 5.; 10.; 20.; 50.; 100.; 200.; 500.; 1000. |]

let admit_slack = Metrics.histogram ~buckets:slack_buckets "server/admit_slack"
let queue_depth = Metrics.gauge "server/queue_depth"
let connections = Metrics.gauge "server/connections"
let burn_5m = Metrics.gauge "slo/burn_5m"
let burn_1h = Metrics.gauge "slo/burn_1h"
let set_burn g burn = Metrics.set g (int_of_float (Float.round (burn *. 1000.)))
let wal_bytes = Metrics.counter "server/wal_bytes"
let request_counter verb = Metrics.counter ("server/requests." ^ verb)
let shed_counter slug = Metrics.counter ("server/shed." ^ slug)

(* Pre-register every family the daemon can touch, so a scrape taken
   before the first request of a kind still lists the series at zero —
   dashboards and the golden scrape test key on stable family sets. *)
let () =
  List.iter
    (fun v -> ignore (request_counter v))
    [
      "admit"; "release"; "revoke"; "join"; "query"; "metrics"; "ping";
      "shutdown"; "invalid";
    ];
  List.iter
    (fun s -> ignore (shed_counter s))
    [ "queue-full"; "predicted-delay"; "budget-spent" ]

let verb_of_op = function
  | Wire.Admit _ -> "admit"
  | Wire.Release _ -> "release"
  | Wire.Revoke _ -> "revoke"
  | Wire.Join _ -> "join"
  | Wire.Query _ -> "query"
  | Wire.Metrics -> "metrics"
  | Wire.Ping -> "ping"
  | Wire.Shutdown -> "shutdown"

let count_request verb = Metrics.incr (request_counter verb)
let count_shed slug = Metrics.incr (shed_counter slug)

let completion_bound (cert : Certificate.t) =
  match cert.Certificate.evidence with
  | Certificate.Schedules parts ->
      let stop acc (p : Certificate.part) =
        List.fold_left
          (fun acc (s : Certificate.step) ->
            max acc (Interval.stop s.Certificate.subwindow))
          acc p.Certificate.steps
      in
      let bound = List.fold_left stop min_int parts in
      if bound = min_int then None else Some bound
  | Certificate.Aggregate_fit { window; _ } -> Some (Interval.stop window)
  | Certificate.Optimistic_fit { window; _ } -> Some (Interval.stop window)
  | Certificate.Infeasible | Certificate.Stale _ | Certificate.Duplicate ->
      None

let observe_admit_slack ~deadline cert_json =
  if Metrics.enabled () then
    match Certificate.of_json cert_json with
    | Error _ -> ()
    | Ok cert -> (
        match completion_bound cert with
        | None -> ()
        | Some stop ->
            Metrics.observe admit_slack (float_of_int (deadline - stop)))
