open Import

(** Durability for the serve daemon: a write-ahead log in the ROTB
    binary trace format, plus digest-stamped snapshots.

    The WAL {e is} a trace — [run-started] header, then the exact event
    records {!Replica.apply} produces — so every trace tool works on it
    unchanged: [rota audit] re-verifies each logged decision, [rota
    trace tail -f] follows it live.  Durability and auditability are the
    same file.

    Recovery ({!recover}) rebuilds state as: load the newest usable
    snapshot (falling back to a full replay when it is missing, corrupt,
    or for another policy — a snapshot is an optimization, never a
    source of truth), replay the WAL records past it, and cross-check by
    running the {e whole} WAL through the independent {!Live} auditor:
    the recovered controller's residual digest must equal the digest the
    auditor reconstructs from the stream, or recovery fails.  A record
    cut mid-write by a crash ({!Binary.Cut}) is truncated away — it was
    never acknowledged, write-ahead means its reply was never sent — but
    a complete record that does not decode is corruption and fails
    recovery rather than being skipped. *)

val wal_path : dir:string -> string
(** [dir ^ "/wal.rotb"]. *)

val snapshot_path : dir:string -> string
(** [dir ^ "/snapshot.json"]. *)

(** {2 The writer} *)

type writer

val append : writer -> sim:Time.t -> Events.payload list -> Events.t list
(** Stamp (monotonic [seq], [run = 1], the given simulated time) and
    buffer the records, returning the stamped events in order — exactly
    what the WAL will hold, so the daemon can tee the same records to
    the live watchdog and the flight recorder without re-stamping.
    Nothing is durable until {!sync}. *)

val sync : writer -> unit
(** Flush buffered records and [fsync].  Replies for the appended
    requests may be sent only after this returns. *)

val seq : writer -> int
(** Sequence number of the last stamped record. *)

val buffered : writer -> int
(** Bytes appended but not yet {!sync}ed — the size of the next sync's
    write, which is what the [server/wal_bytes] counter accumulates. *)

val offset : writer -> int
(** Durable file length, bytes — what the last {!sync} guaranteed. *)

val close : writer -> unit
(** {!sync} then close the descriptor. *)

(** {2 Snapshots} *)

val save_snapshot : path:string -> writer -> Replica.t -> (unit, string) result
(** Atomically (write-temp, fsync, rename) record the replica together
    with the writer's current [seq]/[offset], so recovery knows which
    WAL suffix the snapshot already covers. *)

(** {2 Recovery} *)

type recovery = {
  replica : Replica.t;
  writer : writer;  (** Positioned after the last complete record. *)
  from_snapshot : bool;
  scanned : int;  (** WAL records read (snapshot-covered ones included). *)
  replayed : int;  (** Records replayed into the replica. *)
  truncated : int;  (** Dangling bytes cut from an interrupted tail. *)
  verified : int;  (** Auditor-verified decisions in the stream. *)
  diverged : int;
  digest : string;  (** The agreed residual digest. *)
}

val recover :
  ?cost_model:Cost_model.t ->
  dir:string ->
  policy:Admission.policy ->
  unit ->
  (recovery, string) result
(** Bring up a replica in [dir], creating a fresh WAL (header +
    [run-started]) when none exists.  Fails — refusing to serve — when
    the WAL is for another policy, a complete record is corrupt or
    unreplayable, or the recovered residual digest disagrees with the
    auditor's reconstruction of the same stream. *)
