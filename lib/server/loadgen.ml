open Import

type config = {
  address : Daemon.address;
  connections : int;
  pipeline : int;
  budget_ms : float option;
  trace : Trace.t;
}

type report = {
  offered : int;
  joins : int;
  admitted : int;
  rejected : int;
  shed : int;
  failed : int;
  duration_s : float;
  rtt_ms : float * float * float * float;  (* p50, p90, p95, p99 *)
  digest : string option;
}

(* Sub-millisecond through multi-second decision RTTs, log-ish spacing. *)
let rtt_buckets =
  [|
    0.05; 0.1; 0.2; 0.5; 1.; 2.; 5.; 10.; 20.; 50.; 100.; 200.; 500.; 1000.;
    2000.; 5000.;
  |]

type conn = {
  fd : Unix.file_descr;
  inbuf : Buffer.t;
  inflight : float Queue.t;  (* send times, FIFO = response order *)
}

let connect address =
  match address with
  | Daemon.Unix_socket path ->
      let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      Unix.connect fd (Unix.ADDR_UNIX path);
      fd
  | Daemon.Tcp (host, port) ->
      let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
      let addr =
        try (Unix.gethostbyname host).Unix.h_addr_list.(0)
        with Not_found -> Unix.inet_addr_of_string host
      in
      Unix.connect fd (Unix.ADDR_INET (addr, port));
      fd

let send_line fd line =
  let s = line ^ "\n" in
  let len = String.length s in
  let rec go pos =
    if pos < len then go (pos + Unix.write_substring fd s pos (len - pos))
  in
  go 0

let requests_of_trace ~budget_ms trace =
  List.filter_map
    (fun (at, ev) ->
      match ev with
      | Trace.Join theta ->
          Some
            {
              Wire.tag = Json.Null;
              op =
                Wire.Join
                  { now = at; terms = Certificate.rects_of_set theta };
            }
      | Trace.Arrive computation ->
          Some
            {
              Wire.tag = Json.Null;
              op = Wire.Admit { now = at; computation; budget_ms };
            }
      | Trace.Arrive_session _ -> None)
    (Trace.events trace)

let run cfg =
  let requests = ref (requests_of_trace ~budget_ms:cfg.budget_ms cfg.trace) in
  let offered =
    List.length
      (List.filter
         (fun r -> match r.Wire.op with Wire.Admit _ -> true | _ -> false)
         !requests)
  and joins =
    List.length
      (List.filter
         (fun r -> match r.Wire.op with Wire.Join _ -> true | _ -> false)
         !requests)
  in
  (* The registry ships disabled (observation is a no-op); the whole
     point of this process is the latency histogram, so switch it on. *)
  Metrics.set_enabled true;
  let hist = Metrics.histogram ~buckets:rtt_buckets "load_rtt_ms" in
  let admitted = ref 0
  and rejected = ref 0
  and shed = ref 0
  and failed = ref 0 in
  (* With a tracer installed ([rota load --trace]), the RTT histogram
     also lands in the trace as periodic hist-sample events, so [rota
     trace summarize] and [rota top] can render load-test latency the
     same way they render engine latency.  [sample_metrics] is a no-op
     without a sink. *)
  let since_sample = ref 0 in
  let sample_tick () =
    incr since_sample;
    if !since_sample >= 256 then begin
      since_sample := 0;
      Tracer.sample_metrics ()
    end
  in
  match
    Array.init (max 1 cfg.connections) (fun _ ->
        {
          fd = connect cfg.address;
          inbuf = Buffer.create 256;
          inflight = Queue.create ();
        })
  with
  | exception Unix.Unix_error (e, _, s) ->
      Error (Printf.sprintf "connect %s: %s" s (Unix.error_message e))
  | conns ->
      let started = Unix.gettimeofday () in
      let classify reply =
        match reply with
        | Wire.Decided { action = "admit"; _ } -> incr admitted
        | Wire.Decided _ -> incr rejected
        | Wire.Shed _ -> incr shed
        | Wire.Joined _ | Wire.Info _ | Wire.Metrics_snapshot _ | Wire.Pong
        | Wire.Draining | Wire.Released _ | Wire.Revoked _ ->
            ()
        | Wire.Failed _ -> incr failed
      in
      let finally () =
        Array.iter
          (fun c -> try Unix.close c.fd with Unix.Unix_error _ -> ())
          conns
      in
      let consume c =
        let s = Buffer.contents c.inbuf in
        let rec go start =
          match String.index_from_opt s start '\n' with
          | None ->
              Buffer.clear c.inbuf;
              Buffer.add_string c.inbuf
                (String.sub s start (String.length s - start));
              Ok ()
          | Some i ->
              let line = String.sub s start (i - start) in
              let r =
                match Wire.response_of_line line with
                | Error m -> Error ("bad response: " ^ m)
                | Ok { Wire.reply; _ } ->
                    (match Queue.take_opt c.inflight with
                    | Some t0 ->
                        Metrics.observe hist
                          ((Unix.gettimeofday () -. t0) *. 1000.)
                    | None -> ());
                    classify reply;
                    sample_tick ();
                    Ok ()
              in
              (match r with Ok () -> go (i + 1) | Error _ as e -> e)
        in
        go 0
      in
      let outstanding () =
        Array.fold_left (fun acc c -> acc + Queue.length c.inflight) 0 conns
      in
      (* Closed loop: keep every connection at its pipeline depth from
         the shared time-ordered request list, then wait for responses. *)
      let rec drive idle =
        let sent = ref false in
        Array.iter
          (fun c ->
            while
              Queue.length c.inflight < max 1 cfg.pipeline && !requests <> []
            do
              match !requests with
              | [] -> ()
              | r :: rest ->
                  requests := rest;
                  Queue.add (Unix.gettimeofday ()) c.inflight;
                  send_line c.fd (Wire.request_to_line r);
                  sent := true
            done)
          conns;
        if !requests = [] && outstanding () = 0 then Ok ()
        else begin
          let fds =
            Array.to_list conns
            |> List.filter_map (fun c ->
                   if Queue.is_empty c.inflight then None else Some c.fd)
          in
          match Unix.select fds [] [] 1.0 with
          | [], _, _ ->
              if (not !sent) && idle > 30 then
                Error
                  (Printf.sprintf
                     "timed out with %d responses outstanding" (outstanding ()))
              else drive (idle + 1)
          | readable, _, _ ->
              let err = ref None in
              List.iter
                (fun fd ->
                  match
                    Array.to_list conns |> List.find_opt (fun c -> c.fd == fd)
                  with
                  | None -> ()
                  | Some c -> (
                      let bytes = Bytes.create 8192 in
                      match Unix.read fd bytes 0 8192 with
                      | 0 ->
                          err :=
                            Some
                              (Printf.sprintf
                                 "server closed the connection with %d \
                                  responses outstanding"
                                 (outstanding ()))
                      | n -> (
                          Buffer.add_subbytes c.inbuf bytes 0 n;
                          match consume c with
                          | Ok () -> ()
                          | Error m -> err := Some m)
                      | exception Unix.Unix_error (e, _, _) ->
                          err := Some (Unix.error_message e)))
                readable;
              (match !err with Some m -> Error m | None -> drive 0)
        end
      in
      let result =
        match drive 0 with
        | Error m ->
            finally ();
            Error m
        | Ok () ->
            Tracer.sample_metrics ();
            let duration_s = Unix.gettimeofday () -. started in
            (* One last round trip: the state the run left behind, for
               cross-checking against [rota audit] of the daemon's WAL. *)
            let digest =
              let c = conns.(0) in
              match
                send_line c.fd
                  (Wire.request_to_line
                     { Wire.tag = Json.Null; op = Wire.Query "residual-digest" });
                Unix.select [ c.fd ] [] [] 5.0
              with
              | [], _, _ -> None
              | _ -> (
                  let bytes = Bytes.create 8192 in
                  match Unix.read c.fd bytes 0 8192 with
                  | 0 -> None
                  | n -> (
                      let line =
                        String.trim (Bytes.sub_string bytes 0 n)
                      in
                      match Wire.response_of_line line with
                      | Ok { Wire.reply = Wire.Info fields; _ } -> (
                          match List.assoc_opt "digest" fields with
                          | Some (Json.String d) -> Some d
                          | _ -> None)
                      | _ -> None)
                  | exception Unix.Unix_error _ -> None)
            in
            finally ();
            let q p = Metrics.quantile hist p in
            Ok
              {
                offered;
                joins;
                admitted = !admitted;
                rejected = !rejected;
                shed = !shed;
                failed = !failed;
                duration_s;
                rtt_ms = (q 0.5, q 0.9, q 0.95, q 0.99);
                digest;
              }
      in
      result

let pp_report ppf r =
  let p50, p90, p95, p99 = r.rtt_ms in
  Format.fprintf ppf
    "@[<v>offered %d (joins %d): admitted %d, rejected %d, shed %d, failed %d@,\
     %.2fs wall, %.1f req/s@,\
     rtt ms: p50 %.3f  p90 %.3f  p95 %.3f  p99 %.3f"
    r.offered r.joins r.admitted r.rejected r.shed r.failed r.duration_s
    (float_of_int (r.offered + r.joins) /. max 1e-9 r.duration_s)
    p50 p90 p95 p99;
  (match r.digest with
  | Some d -> Format.fprintf ppf "@,residual digest: %s" d
  | None -> ());
  Format.fprintf ppf "@]"
