open Import

type t = {
  mutable ctrl : Admission.t;
  mutable now : Time.t;
  policy : Admission.policy;
}

let create ?cost_model policy =
  { ctrl = Admission.create ?cost_model policy Resource_set.empty;
    now = 0;
    policy }

let policy t = t.policy
let now t = t.now
let controller t = t.ctrl

let run_label policy =
  Printf.sprintf "serve policy=%s" (Admission.policy_name policy)

let residual_digest t = Certificate.digest (Admission.residual t.ctrl)

(* Clamp the clock and expire the past before touching state, so the
   residual every certificate pins is truncated exactly as the auditor
   reconstructs it at that simulated time. *)
let advance_to t at =
  if at > t.now then begin
    t.now <- at;
    t.ctrl <- Admission.advance t.ctrl at
  end;
  t.now

let policy_label t = Admission.policy_name t.policy

let decision_payloads ?cid t ~id ~action ~reason certificate =
  let legacy =
    if String.equal action "admit" then
      Events.Admitted { id; policy = policy_label t; reason }
    else Events.Rejected { id; policy = policy_label t; reason }
  in
  [
    legacy;
    Events.Decision
      {
        id;
        policy = policy_label t;
        action;
        slug = Slug.of_reason reason;
        certificate = Certificate.to_json certificate;
        cid;
      };
  ]

let known t id =
  Calendar.find (Admission.calendar t.ctrl) ~computation:id <> None
  || List.exists
       (fun (d, _, _) -> String.equal d id)
       (Admission.admitted_demands t.ctrl)

let apply_admit ?cid t ~now ~computation =
  let now = advance_to t now in
  let id = computation.Computation.id in
  let ctrl, outcome = Admission.request t.ctrl ~now computation in
  t.ctrl <- ctrl;
  let action = if outcome.Admission.admitted then "admit" else "reject" in
  let reason = outcome.Admission.reason in
  let cert = Lazy.force outcome.Admission.certificate in
  let payloads = decision_payloads ?cid t ~id ~action ~reason cert in
  let reply =
    Wire.Decided
      {
        id;
        action;
        slug = Slug.of_reason reason;
        reason;
        digest = cert.Certificate.digest;
      }
  in
  (payloads, reply)

let apply_release t ~now ~id =
  let _now = advance_to t now in
  let existed = known t id in
  if existed then begin
    t.ctrl <- Admission.complete t.ctrl ~computation:id;
    ([ Events.Completed { id } ], Wire.Released { id; existed = true })
  end
  else ([], Wire.Released { id; existed = false })

(* Mirrors the engine's [revoke_capacity]: clip the slice to what is
   actually still present from [now] on, announce the fault with the
   clipped slice as terms, then let the admission layer evict — and pin
   each eviction's certificate to the post-revocation residual. *)
let apply_revoke ?cid t ~now ~terms =
  let now = advance_to t now in
  let slice = Certificate.set_of_rects terms in
  let actual =
    Resource_set.meet
      (Resource_set.truncate_before slice now)
      (Calendar.capacity (Admission.calendar t.ctrl))
  in
  let lost = Resource_set.total actual in
  let fault =
    Events.Fault_injected
      {
        fault = "revocation";
        quantity = lost;
        terms = Certificate.rects_to_json (Certificate.rects_of_set actual);
      }
  in
  if Resource_set.is_empty actual then
    ([ fault ], Wire.Revoked { quantity = 0; evicted = [] })
  else begin
    let ctrl, evicted = Admission.revoke t.ctrl actual in
    t.ctrl <- ctrl;
    let revoked =
      List.map
        (fun (e : Calendar.entry) ->
          Events.Commitment_revoked
            {
              id = e.Calendar.computation;
              quantity = Resource_set.total e.Calendar.reservation;
            })
        evicted
    in
    let residual = Admission.residual t.ctrl in
    let reason = "commitment evicted by revocation" in
    let evictions =
      List.map
        (fun (e : Calendar.entry) ->
          Events.Decision
            {
              id = e.Calendar.computation;
              policy = policy_label t;
              action = "evict";
              slug = Slug.of_reason reason;
              certificate =
                Certificate.to_json
                  (Certificate.of_committed ~theorem:Certificate.T4 ~residual
                     e.Calendar.schedules);
              cid;
            })
        evicted
    in
    let ids = List.map (fun (e : Calendar.entry) -> e.Calendar.computation) evicted in
    ((fault :: revoked) @ evictions,
     Wire.Revoked { quantity = lost; evicted = ids })
  end

let apply_join t ~now ~terms =
  let now = advance_to t now in
  let slice = Certificate.set_of_rects terms in
  let clipped = Resource_set.truncate_before slice now in
  let counted = Resource_set.total clipped in
  t.ctrl <- Admission.add_capacity t.ctrl clipped;
  let payload =
    Events.Capacity_joined
      {
        quantity = counted;
        terms = Certificate.rects_to_json (Certificate.rects_of_set clipped);
      }
  in
  ([ payload ], Wire.Joined { quantity = counted })

let query t what =
  match what with
  | "residual-digest" ->
      Wire.Info [ ("digest", Json.String (residual_digest t)) ]
  | "now" -> Wire.Info [ ("now", Json.Int t.now) ]
  | "stats" ->
      Wire.Info
        [
          ("policy", Json.String (policy_label t));
          ("now", Json.Int t.now);
          ("ledger", Json.Int (Admission.ledger_size t.ctrl));
          ("digest", Json.String (residual_digest t));
        ]
  | w -> Wire.Failed (Printf.sprintf "unknown query %S" w)

let apply ?cid t (op : Wire.op) =
  match op with
  | Wire.Admit { now; computation; budget_ms = _ } ->
      apply_admit ?cid t ~now ~computation
  | Wire.Release { now; id } -> apply_release t ~now ~id
  | Wire.Revoke { now; terms } -> apply_revoke ?cid t ~now ~terms
  | Wire.Join { now; terms } -> apply_join t ~now ~terms
  | Wire.Query what -> ([], query t what)
  | Wire.Metrics ->
      (* The daemon answers metrics from the serving loop; reaching the
         replica means a non-daemon caller replayed a scrape op. *)
      ([], Wire.Failed "metrics is answered by the serving loop")
  | Wire.Ping -> ([], Wire.Pong)
  | Wire.Shutdown -> ([], Wire.Draining)

(* --- replay ---------------------------------------------------------------- *)

let ( let* ) = Result.bind

let hull_window (parts : Certificate.part list) =
  match parts with
  | [] -> None
  | p :: rest ->
      let widen w (p : Certificate.part) =
        let start = min (Interval.start w) (Interval.start p.Certificate.window)
        and stop = max (Interval.stop w) (Interval.stop p.Certificate.window) in
        match Interval.make ~start ~stop with Some w -> w | None -> w
      in
      Some (List.fold_left widen p.Certificate.window rest)

let replay_admit t ~id certificate =
  let* cert = Certificate.of_json certificate in
  match cert.Certificate.evidence with
  | Certificate.Schedules parts -> (
      match hull_window parts with
      | None -> Error (Printf.sprintf "admit %s: certificate has no parts" id)
      | Some window ->
          let entry =
            {
              Calendar.computation = id;
              window;
              reservation = Certificate.reservation cert;
              schedules = Certificate.schedules_of_parts cert;
            }
          in
          let* ctrl = Admission.adopt t.ctrl entry in
          t.ctrl <- ctrl;
          Ok ())
  | Certificate.Aggregate_fit { window; rows; fits = _ } ->
      let totals =
        List.map
          (fun (r : Certificate.row) -> (r.Certificate.row_type, r.Certificate.demand))
          rows
      in
      t.ctrl <- Admission.remember_demand t.ctrl ~computation:id ~window ~totals;
      Ok ()
  | Certificate.Optimistic_fit { window; totals } ->
      t.ctrl <- Admission.remember_demand t.ctrl ~computation:id ~window ~totals;
      Ok ()
  | Certificate.Infeasible | Certificate.Stale _ | Certificate.Duplicate ->
      Error (Printf.sprintf "admit %s: reject evidence on an admit decision" id)

let replay t (e : Events.t) =
  (match e.Events.sim with
  | Some s when s > t.now -> ignore (advance_to t s)
  | _ -> ());
  match e.Events.payload with
  | Events.Run_started _ -> Ok ()
  | Events.Capacity_joined { terms; quantity = _ } ->
      if terms = Json.Null then
        Error "capacity-joined without terms: slice cannot be replayed"
      else
        let* rects = Certificate.rects_of_json terms in
        t.ctrl <-
          Admission.add_capacity t.ctrl (Certificate.set_of_rects rects);
        Ok ()
  | Events.Admitted _ | Events.Rejected _ ->
      (* Legacy telling; the decision record is authoritative. *)
      Ok ()
  | Events.Decision { id; action = "admit"; certificate; _ } ->
      replay_admit t ~id certificate
  | Events.Decision { action = "reject" | "evict"; _ } ->
      (* Rejects change nothing; evictions were already re-derived when
         the fault itself replayed. *)
      Ok ()
  | Events.Decision { id; action; _ } ->
      Error (Printf.sprintf "decision %s: unreplayable action %S" id action)
  | Events.Completed { id } ->
      t.ctrl <- Admission.complete t.ctrl ~computation:id;
      Ok ()
  | Events.Fault_injected { fault = "revocation"; terms; quantity = _ } ->
      if terms = Json.Null then
        Error "revocation without terms: slice cannot be replayed"
      else
        let* rects = Certificate.rects_of_json terms in
        let ctrl, _evicted =
          Admission.revoke t.ctrl (Certificate.set_of_rects rects)
        in
        t.ctrl <- ctrl;
        Ok ()
  | Events.Fault_injected { fault; _ } ->
      Error (Printf.sprintf "unreplayable fault kind %S" fault)
  | Events.Commitment_revoked _ ->
      (* Implied by the preceding fault's replay. *)
      Ok ()
  | Events.Killed _ | Events.Commitment_degraded _ | Events.Repaired _
  | Events.Preempted _ | Events.Anomaly _ | Events.Shed _ ->
      (* Sheds in particular are telemetry-only by contract: nothing was
         decided, so nothing may claim replayability. *)
      Error
        (Printf.sprintf "event kind %S is never written by the daemon"
           (Events.kind e.Events.payload))
  | Events.Span _ | Events.Metric_sample _ | Events.Hist_sample _
  | Events.Audit_divergence _ | Events.Unknown _ ->
      Ok ()

(* --- snapshots ------------------------------------------------------------- *)

let snapshot_format = "rota-serve-replica-1"

let snapshot t =
  Json.Obj
    [
      ("format", Json.String snapshot_format);
      ("now", Json.Int t.now);
      ("admission", Admission.snapshot t.ctrl);
    ]

let jfield name json =
  match Json.member name json with
  | Some v -> Ok v
  | None -> Error (Printf.sprintf "replica snapshot: missing field %S" name)

let restore ?cost_model json =
  let* fmt = Result.bind (jfield "format" json) Json.to_str in
  if not (String.equal fmt snapshot_format) then
    Error (Printf.sprintf "replica snapshot: unknown format %S" fmt)
  else
    let* now = Result.bind (jfield "now" json) Json.to_int in
    let* adm = jfield "admission" json in
    let* ctrl = Admission.restore ?cost_model adm in
    Ok { ctrl; now; policy = Admission.policy ctrl }
