(** Deadline-aware load shedding for the serve daemon's request queue.

    The daemon admits work into a bounded FIFO; this module decides,
    purely from queue arithmetic, when a request should be rejected fast
    instead.  The policy is the paper's admission story turned on the
    daemon itself: a decision that would arrive after its latency budget
    is worthless, so refuse it while refusing is still cheap.

    Two checkpoints, both against the request's budget (its own
    [budget_ms] if given, else the server default):

    - {b enqueue}: shed when the queue is full, or when the predicted
      queue delay — queued requests ahead times the EWMA decide-latency
      estimate — already exceeds the budget.  This bounds queue growth
      under sustained overload regardless of how fast clients push.
    - {b dequeue}: shed when the request has {e actually} waited longer
      than its budget by the time a decider picks it up.  This is the
      backstop that keeps the p99 of {e accepted} requests bounded even
      when the estimate lags a latency spike.

    All state is a scalar estimate; the module never blocks and holds no
    references to requests. *)

type t

val create :
  ?alpha:float -> ?default_budget_s:float -> ?max_queue:int -> unit -> t
(** [alpha] is the EWMA gain on new decide-latency samples (default
    [0.1]); [default_budget_s] applies to requests that carry no budget
    of their own (default [0.25]); [max_queue] caps outstanding requests
    (default [512]). *)

val observe : t -> float -> unit
(** [observe t decide_s] folds one measured decide latency (seconds,
    queue wait excluded) into the estimate. *)

val estimate_s : t -> float
(** Current decide-latency estimate, seconds.  Before any sample, a
    deliberately pessimistic seed so a cold daemon under instant
    overload still sheds. *)

val max_queue : t -> int

val budget_s : t -> budget_ms:float option -> float
(** The effective budget for one request, seconds. *)

type verdict = Accept | Reject of { slug : string; message : string }
(** [Reject] carries both tellings of the refusal: [message] is the
    human-readable reason the wire response reports, [slug] the stable
    overload taxonomy the [server/shed.<slug>] counters and the
    {!Rota_obs.Events.Shed} telemetry event are keyed by —
    ["queue-full"], ["predicted-delay"], or ["budget-spent"]. *)

val on_enqueue : t -> queue_len:int -> budget_ms:float option -> verdict
(** Called with the queue length {e before} insertion. *)

val on_dequeue : t -> waited_s:float -> budget_ms:float option -> verdict
