open Import

(** [rota load]: a closed-loop client for the serve daemon.

    Replays a scenario trace — resource joins become {!Wire.Join}
    requests, computation arrivals {!Wire.Admit} requests, each carrying
    its event time as the logical [now] — over [connections] sockets,
    holding every connection at [pipeline] outstanding requests (closed
    loop: new work is issued only as responses return, so the offered
    rate tracks the daemon's actual capacity unless [pipeline] is set
    high enough to overload it deliberately).  Round-trip times land in
    the shared {!Metrics} histogram machinery; the report quotes its
    quantiles. *)

type config = {
  address : Daemon.address;
  connections : int;
  pipeline : int;  (** Outstanding requests per connection. *)
  budget_ms : float option;  (** Attached to every admit request. *)
  trace : Trace.t;
}

type report = {
  offered : int;  (** Admit requests sent. *)
  joins : int;
  admitted : int;
  rejected : int;  (** Decided rejects, sheds excluded. *)
  shed : int;
  failed : int;
  duration_s : float;
  rtt_ms : float * float * float * float;  (** p50, p90, p95, p99. *)
  digest : string option;
      (** The daemon's residual digest after the run — what [rota
          audit] of its WAL must reproduce. *)
}

val run : config -> (report, string) result
(** [Error] on connection loss or malformed responses; the message says
    how many responses were still outstanding. *)

val pp_report : Format.formatter -> report -> unit
