open Import

(** The independent offline auditor — the checker side of decision
    provenance.

    [rota audit] replays a JSONL trace from nothing but the trace file:
    capacity is rebuilt from [capacity-joined]/[fault] slice terms, the
    commitment ledger from prior decision records and lifecycle events,
    and every decision's certificate is then re-verified against that
    reconstruction with {!Certificate.verify} — which goes through the
    independent {!Rota.Accommodation.check_schedule} validator, never
    through the greedy decision procedures that produced the schedule.
    A decider bug that emits an invalid schedule, or a trace that was
    tampered with after the fact, surfaces as a {e divergence} naming
    the offending decision.

    All the verification lives in {!Live}, the incremental core the
    in-engine {!Watchdog} also runs; this module is the thin
    file-shaped driver over it, so offline and live verdicts cannot
    drift.  The replay is streaming (one event at a time, via
    {!Trace_reader.fold_file}), so trace size is bounded only by
    disk. *)

module Live = Live
(** The incremental core, re-exported so [Audit.Live] names it. *)

type divergence = {
  seq : int;  (** The offending event's sequence number. *)
  run : int;
  id : string;  (** The computation the decision was about. *)
  message : string;
}

type report = {
  events : int;  (** Events replayed (all kinds). *)
  runs : int;
  decisions : int;  (** Decision records seen. *)
  verified : int;  (** Decisions whose certificate re-verified. *)
  skipped : int;
      (** Decisions that could not be checked: no certificate recorded,
          or the capacity terms needed to reconstruct the residual are
          missing (traces from older binaries). *)
  divergences : divergence list;  (** In file order. *)
  suppressed : int;  (** Divergences beyond the reporting cap. *)
  truncated : bool;
      (** The trace ends in a crash-cut partial line; everything before
          it was still audited. *)
}

val ok : report -> bool
(** No divergences (skipped decisions do not fail an audit — they are
    reported as a coverage gap instead; a truncated tail is a note, not
    a failure). *)

val pp_report : Format.formatter -> report -> unit

val fold_decisions :
  ?strict:bool ->
  string ->
  init:'a ->
  f:('a -> Live.outcome -> 'a) ->
  ('a * Live.t * Trace_reader.tail, Trace_reader.error) result
(** The shared driver: step one fresh {!Live} auditor over the whole
    file and fold [f] over each decision's outcome, in file order.
    Returns the fold result together with the auditor (for its
    counters) and how the file ended. *)

val audit_file :
  ?max_divergences:int -> string -> (report, Trace_reader.error) result
(** Replay and re-verify the whole trace.  [max_divergences] (default
    100) bounds the divergence list; the remainder is counted in
    {!report.suppressed}.  [Error] means the file itself could not be
    read or parsed — verification failures are divergences, not errors. *)

val explain_file : string -> id:string -> (string list, Trace_reader.error) result
(** Every decision record about [id], rendered for humans: action, sim
    time, outcome slug, the certificate's theorem/breakpoint story
    ({!Certificate.pp}), and the auditor's verdict at that point of the
    replay.  Empty list: the trace has no decision about that id. *)
