(* Short aliases for the substrate libraries used throughout this library. *)
module Time = Rota_interval.Time
module Interval = Rota_interval.Interval
module Located_type = Rota_resource.Located_type
module Resource_set = Rota_resource.Resource_set
module Certificate = Rota.Certificate
module Json = Rota_obs.Json
module Events = Rota_obs.Events
module Trace_reader = Rota_obs.Trace_reader
module Summary = Rota_obs.Summary
module Sink = Rota_obs.Sink
module Tracer = Rota_obs.Tracer
module Metrics = Rota_obs.Metrics
