open Import
module Live = Live

type divergence = { seq : int; run : int; id : string; message : string }

type report = {
  events : int;
  runs : int;
  decisions : int;
  verified : int;
  skipped : int;
  divergences : divergence list;
  suppressed : int;
  truncated : bool;
}

let ok r = r.divergences = [] && r.suppressed = 0

(* --- the thin driver ------------------------------------------------------- *)

(* Everything file-shaped goes through here: one [Live] auditor stepped
   over the trace in file order.  [audit_file] and [explain_file] are
   folds over the decision outcomes — the live watchdog runs the exact
   same [Live.step], so offline and in-engine verdicts cannot drift. *)
let fold_decisions ?strict path ~init ~f =
  let live = Live.create () in
  match
    Trace_reader.fold_file ?strict path ~init ~f:(fun acc e ->
        match Live.step live e with Some o -> f acc o | None -> acc)
  with
  | Error e -> Error e
  | Ok (acc, tail) -> Ok (acc, live, tail)

let truncated = function
  | Trace_reader.Complete -> false
  | Trace_reader.Truncated _ -> true

let audit_file ?(max_divergences = 100) path =
  let on_outcome (kept, divs, suppressed) (o : Live.outcome) =
    match o.Live.verdict with
    | Live.Verified | Live.Skipped _ -> (kept, divs, suppressed)
    | Live.Diverged msgs ->
        List.fold_left
          (fun (kept, divs, suppressed) message ->
            if kept < max_divergences then
              ( kept + 1,
                { seq = o.Live.seq; run = o.Live.run; id = o.Live.id; message }
                :: divs,
                suppressed )
            else (kept, divs, suppressed + 1))
          (kept, divs, suppressed) msgs
  in
  match fold_decisions path ~init:(0, [], 0) ~f:on_outcome with
  | Error e -> Error e
  | Ok ((_, divs, suppressed), live, tail) ->
      Ok
        {
          events = Live.events live;
          runs = Live.runs live;
          decisions = Live.decisions live;
          verified = Live.verified live;
          skipped = Live.skipped live;
          divergences = List.rev divs;
          suppressed;
          truncated = truncated tail;
        }

let pp_report ppf r =
  Format.fprintf ppf
    "@[<v>%d events across %d runs: %d decisions, %d verified, %d skipped, %d \
     divergent%s"
    r.events r.runs r.decisions r.verified r.skipped
    (List.length r.divergences + r.suppressed)
    (if ok r then
       if r.skipped = 0 && r.decisions > 0 then
         " -- every decision re-verified"
       else ""
     else "");
  List.iter
    (fun d ->
      Format.fprintf ppf "@ seq %d (run %d, %s): %s" d.seq d.run d.id d.message)
    r.divergences;
  if r.suppressed > 0 then
    Format.fprintf ppf "@ ... and %d more divergences" r.suppressed;
  if r.truncated then
    Format.fprintf ppf
      "@ note: trace ends mid-line (crash-interrupted write); audited up to \
       the cut";
  Format.fprintf ppf "@]"

let explain_outcome (o : Live.outcome) =
  let b = Buffer.create 256 in
  let ppf = Format.formatter_of_buffer b in
  Format.fprintf ppf "@[<v>run %d seq %d t%s: %s %s [%s]@ " o.Live.run
    o.Live.seq
    (match o.Live.sim with Some t -> string_of_int t | None -> "-")
    o.Live.action o.Live.id o.Live.slug;
  (match o.Live.certificate with
  | Json.Null -> Format.fprintf ppf "no certificate recorded"
  | cj -> (
      match Certificate.of_json cj with
      | Ok cert -> Certificate.pp ppf cert
      | Error m -> Format.fprintf ppf "unparseable certificate: %s" m));
  (match o.Live.verdict with
  | Live.Verified ->
      Format.fprintf ppf "@ auditor: verified against the reconstructed ledger"
  | Live.Skipped reason -> Format.fprintf ppf "@ auditor: skipped (%s)" reason
  | Live.Diverged msgs ->
      List.iter
        (fun m -> Format.fprintf ppf "@ auditor: DIVERGENCE: %s" m)
        msgs);
  Format.fprintf ppf "@]@?";
  Buffer.contents b

let explain_file path ~id:target =
  match
    fold_decisions path ~init:[] ~f:(fun blocks (o : Live.outcome) ->
        if String.equal o.Live.id target then explain_outcome o :: blocks
        else blocks)
  with
  | Error e -> Error e
  | Ok (blocks, _, _) -> Ok (List.rev blocks)
