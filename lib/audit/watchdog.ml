open Import

type mode = Warn | Fail_fast

type stats = {
  decisions : int;
  verified : int;
  skipped : int;
  divergences : int;
}

let no_stats = { decisions = 0; verified = 0; skipped = 0; divergences = 0 }

let diff_stats a b =
  {
    decisions = a.decisions - b.decisions;
    verified = a.verified - b.verified;
    skipped = a.skipped - b.skipped;
    divergences = a.divergences - b.divergences;
  }

exception Trip of { seq : int; id : string; message : string }

type t = {
  live : Live.t;
  mode : mode;
  on_outcome : (Live.outcome -> unit) option;
  mutable divergences : int;  (* complaints, not decisions *)
}

(* Registered once at module init, mutated on the hot path: O(1) loads
   when the registry is disabled, like every other instrumented path. *)
let c_verified = Metrics.counter "audit/verified"
let c_skipped = Metrics.counter "audit/skipped"
let c_divergence = Metrics.counter "audit/divergence"
let g_lag = Metrics.gauge "audit/lag"

let create ?(mode = Warn) ?on_outcome () =
  { live = Live.create (); mode; on_outcome; divergences = 0 }

let stats t =
  {
    decisions = Live.decisions t.live;
    verified = Live.verified t.live;
    skipped = Live.skipped t.live;
    divergences = t.divergences;
  }

let live t = t.live

let observe t (e : Events.t) =
  match Live.step t.live e with
  | None -> ()
  | Some (o : Live.outcome) ->
      (* Verification delay behind the event's own stamp, in
         microseconds: ~0 when the watchdog rides the emitting process,
         the tail-distance when it follows a file another process is
         writing. *)
      Metrics.set g_lag
        (int_of_float ((Unix.gettimeofday () -. e.Events.wall_s) *. 1e6));
      (match t.on_outcome with Some f -> f o | None -> ());
      (match o.Live.verdict with
      | Live.Verified -> Metrics.incr c_verified
      | Live.Skipped _ -> Metrics.incr c_skipped
      | Live.Diverged msgs ->
          t.divergences <- t.divergences + List.length msgs;
          Metrics.add c_divergence (List.length msgs);
          (* Divergences flow back into the same trace the decision came
             from, one event per complaint.  Reentrant emission is safe:
             the watchdog sees its own audit-divergence events, and
             [Live.step] ignores that kind. *)
          List.iter
            (fun message ->
              Tracer.emit ?sim:o.Live.sim
                (Events.Audit_divergence
                   {
                     id = o.Live.id;
                     action = o.Live.action;
                     of_seq = o.Live.seq;
                     message;
                   }))
            msgs;
          if t.mode = Fail_fast then
            raise
              (Trip
                 { seq = o.Live.seq; id = o.Live.id; message = List.hd msgs }))

let sink t = Sink.make ~emit:(observe t) ~close:(fun () -> ())

(* --- the process-global instance ------------------------------------------ *)

(* The engine does not own the watchdog (the CLI installs it around
   whole commands, spanning runs); it only snapshots the stats delta a
   run contributed, via this registration. *)
let current : t option ref = ref None
let install t = current := Some t
let uninstall () = current := None
let installed () = !current

let pp_stats ppf s =
  Format.fprintf ppf
    "watchdog: %d decisions, %d verified, %d skipped, %d divergent%s"
    s.decisions s.verified s.skipped s.divergences
    (if s.divergences = 0 && s.skipped = 0 && s.decisions > 0 then
       " -- every decision re-verified live"
     else "")
