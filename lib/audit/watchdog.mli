open Import

(** The live audit watchdog: streaming in-engine certificate
    verification.

    A watchdog wraps a {!Live} auditor as a telemetry {!Sink} — teed
    next to the trace sink, it consumes every event as the engine emits
    it and re-verifies each decision certificate on the spot, through
    the same {!Live.step} the offline {!Audit.audit_file} drives.  A
    decider bug surfaces while the run is still going, not at the
    post-mortem.

    Divergences become first-class telemetry: each complaint is emitted
    back into the same trace as an [audit-divergence] event carrying the
    offending decision's seq/id/message, counted on the
    [audit/divergence] counter, and — in [Fail_fast] mode — raised as
    {!Trip} out of the emitting call. *)

type mode =
  | Warn  (** Report divergences (event + counter) and keep going. *)
  | Fail_fast
      (** Additionally raise {!Trip} at the first divergence, unwinding
          the run that emitted the bad decision. *)

exception Trip of { seq : int; id : string; message : string }
(** The first complaint of the tripping decision.  Raised from inside
    {!observe} — i.e. from inside the decider's own [Tracer.emit] — in
    [Fail_fast] mode. *)

type stats = {
  decisions : int;
  verified : int;
  skipped : int;
  divergences : int;  (** Complaints (a decision can carry several). *)
}

type t

val create : ?mode:mode -> ?on_outcome:(Live.outcome -> unit) -> unit -> t
(** [mode] defaults to [Warn].  [on_outcome] sees every decision's
    outcome as it is verified (before any [Fail_fast] raise) — the hook
    tests and [--follow] use. *)

val observe : t -> Events.t -> unit
(** Feed one event.  Counters touched per decision: [audit/verified],
    [audit/skipped], or [audit/divergence] (one per complaint), plus the
    [audit/lag] gauge — verification delay behind the event's wall-clock
    stamp, in microseconds. *)

val sink : t -> Sink.t
(** The watchdog as a sink ({!observe} on emit, no-op close), ready to
    {!Sink.tee} next to the trace sink. *)

val stats : t -> stats
(** Totals since {!create}. *)

val no_stats : stats

val diff_stats : stats -> stats -> stats
(** [diff_stats later earlier] — the delta a scope (one engine run)
    contributed. *)

val pp_stats : Format.formatter -> stats -> unit
(** One summary line, e.g. ["watchdog: 124 decisions, 124 verified, 0
    skipped, 0 divergent -- every decision re-verified live"]. *)

val live : t -> Live.t
(** The underlying auditor (for {!Live.live_commitments} etc.). *)

(** {2 The process-global instance}

    The CLI installs one watchdog around a whole command (it can span
    several engine runs); the engine only {e snapshots} it, reporting
    the stats delta each run contributed in {!Rota_sim.Engine.report}. *)

val install : t -> unit
val uninstall : unit -> unit
val installed : unit -> t option
