open Import

(* --- the reconstructed ledger --------------------------------------------- *)

(* Everything the auditor knows comes from the event stream: capacity is
   the union of capacity-joined slice terms minus fault slice terms, the
   commitment map is driven by decision records and lifecycle events
   (completed/killed/preempted/revoked release their reservations), and
   the baselines' demand ledger is rebuilt from their own certificates.
   Reservations are kept untruncated — truncation commutes pointwise, so
   it is applied at check time instead of replaying every tick.

   The state is bounded by the number of *live* commitments, not by the
   length of the stream: every table entry is created by an admission
   and removed by the matching lifecycle event, so a watchdog riding an
   arbitrarily long trace holds only the commitments currently in
   flight. *)
type ledger = {
  mutable policy : string;
  mutable capacity : Resource_set.t;
  mutable capacity_known : bool;
      (* Cleared when a join or revocation carries no slice terms (a
         trace from an older binary): from then on the residual cannot
         be reconstructed and residual-dependent checks are skipped. *)
  entries : (string, Resource_set.t) Hashtbl.t;
  demands : (string, Interval.t * (Located_type.t * int) list) Hashtbl.t;
}

let fresh_ledger () =
  {
    policy = "";
    capacity = Resource_set.empty;
    capacity_known = true;
    entries = Hashtbl.create 64;
    demands = Hashtbl.create 64;
  }

let reset_ledger led ~policy =
  led.policy <- policy;
  led.capacity <- Resource_set.empty;
  led.capacity_known <- true;
  Hashtbl.reset led.entries;
  Hashtbl.reset led.demands

let committed led ~now =
  Hashtbl.fold
    (fun _ r acc -> Resource_set.union acc (Resource_set.truncate_before r now))
    led.entries Resource_set.empty

let residual led ~now =
  match
    Resource_set.diff
      (Resource_set.truncate_before led.capacity now)
      (committed led ~now)
  with
  | Ok r -> Ok r
  | Error d ->
      Error
        (Format.asprintf
           "reconstructed commitments exceed reconstructed capacity (%a)"
           Resource_set.pp_deficit d)

(* Is the id admitted-and-active, as [Admission.already_admitted] would
   see it?  Calendar entries live until explicitly released; demand
   records expire with their windows (the controller prunes them on
   advance). *)
let is_live led ~now id =
  Hashtbl.mem led.entries id
  ||
  match Hashtbl.find_opt led.demands id with
  | Some (w, _) -> Interval.stop w > now
  | None -> false

let release led id =
  Hashtbl.remove led.entries id;
  Hashtbl.remove led.demands id

(* Recompute the aggregate baseline's feasibility table from the replayed
   ledger and compare it row by row with what the decider recorded. *)
let recheck_rows led ~now ~window rows =
  let cap = Resource_set.truncate_before led.capacity now in
  List.concat_map
    (fun (r : Certificate.row) ->
      let capacity = Resource_set.integrate cap r.Certificate.row_type window in
      let committed =
        Hashtbl.fold
          (fun _ (w, totals) acc ->
            if Interval.stop w > now && Interval.overlaps w window then
              acc
              + List.fold_left
                  (fun acc (xi, q) ->
                    if Located_type.equal xi r.Certificate.row_type then acc + q
                    else acc)
                  0 totals
            else acc)
          led.demands 0
      in
      (if capacity = r.Certificate.capacity then []
       else
         [
           Format.asprintf
             "row %a: capacity %d recorded, %d reconstructed" Located_type.pp
             r.Certificate.row_type r.Certificate.capacity capacity;
         ])
      @
      if committed = r.Certificate.committed then []
      else
        [
          Format.asprintf "row %a: committed %d recorded, %d reconstructed"
            Located_type.pp r.Certificate.row_type r.Certificate.committed
            committed;
        ])
    rows

(* --- per-decision verification -------------------------------------------- *)

type verdict = Verified | Skipped of string | Diverged of string list

let audit_decision led ~now ~id ~action (cert : Certificate.t) =
  let errors = ref [] in
  let skip = ref None in
  let err fmt = Format.kasprintf (fun m -> errors := m :: !errors) fmt in
  let check_residual k =
    if not led.capacity_known then (
      if !skip = None then
        skip := Some "capacity terms missing: residual cannot be reconstructed")
    else match residual led ~now with Error m -> err "%s" m | Ok r -> k r
  in
  let commit () =
    Hashtbl.replace led.entries id (Certificate.reservation cert)
  in
  (match (action, cert.Certificate.evidence) with
  | "admit", Certificate.Schedules _ ->
      if is_live led ~now id then err "admitted an id that is already live";
      check_residual (fun r ->
          match Certificate.verify ~residual:r cert with
          | Ok () -> ()
          | Error m -> err "%s" m);
      (* Track the reservation even on divergence, so one bad decision
         does not cascade into digest mismatches on every later one. *)
      commit ()
  | "admit", Certificate.Aggregate_fit { window; rows; fits } ->
      if is_live led ~now id then err "admitted an id that is already live";
      if not fits then
        err "admit recorded, but the certificate's own table does not fit";
      check_residual (fun r ->
          (match Certificate.verify ~residual:r cert with
          | Ok () -> ()
          | Error m -> err "%s" m);
          List.iter (fun m -> err "%s" m) (recheck_rows led ~now ~window rows));
      Hashtbl.replace led.demands id
        ( window,
          List.map
            (fun (row : Certificate.row) ->
              (row.Certificate.row_type, row.Certificate.demand))
            rows )
  | "admit", Certificate.Optimistic_fit { window; totals } ->
      if is_live led ~now id then err "admitted an id that is already live";
      if now >= Interval.stop window then
        err "optimistic admit at t%d, at or past the deadline t%d" now
          (Interval.stop window);
      Hashtbl.replace led.demands id (window, totals)
  | "admit", (Certificate.Infeasible | Certificate.Stale _ | Certificate.Duplicate)
    ->
      err "admit decision carries reject evidence"
  | "reject", Certificate.Infeasible ->
      check_residual (fun r ->
          match Certificate.verify ~residual:r cert with
          | Ok () -> ()
          | Error m -> err "%s" m)
  | "reject", Certificate.Aggregate_fit { window; rows; fits } ->
      if fits then err "reject recorded, but the certificate's own table fits";
      check_residual (fun r ->
          (match Certificate.verify ~residual:r cert with
          | Ok () -> ()
          | Error m -> err "%s" m);
          List.iter (fun m -> err "%s" m) (recheck_rows led ~now ~window rows))
  | "reject", Certificate.Stale { deadline } ->
      if now < deadline then
        err "stale reject at t%d, before the deadline t%d" now deadline
  | "reject", Certificate.Duplicate ->
      if not (is_live led ~now id) then
        err "duplicate reject, but the id is not live in the reconstructed ledger"
  | "reject", (Certificate.Schedules _ | Certificate.Optimistic_fit _) ->
      err "reject decision carries admit evidence"
  | "evict", Certificate.Schedules _ ->
      (* The reservation was just revoked, so the residual does not cover
         it — dominance is meaningless here.  Structure and digest (the
         post-revocation residual the engine saw) are still checked. *)
      (match Certificate.well_formed cert with
      | Ok () -> ()
      | Error m -> err "%s" m);
      if cert.Certificate.digest <> "" then
        check_residual (fun r ->
            let d = Certificate.digest r in
            if not (String.equal d cert.Certificate.digest) then
              err "residual digest mismatch: certificate %s, reconstructed %s"
                cert.Certificate.digest d)
  | "evict", _ -> err "evict decision without schedule evidence"
  | "repair", Certificate.Schedules _ ->
      (* The victim's old reservation was released before the ladder ran
         (eviction or degradation), so the rescue verifies like a fresh
         Theorem-3 admission and re-enters the ledger. *)
      check_residual (fun r ->
          match Certificate.verify ~residual:r cert with
          | Ok () -> ()
          | Error m -> err "%s" m);
      commit ()
  | "repair", _ -> err "repair decision without schedule evidence"
  | a, _ -> err "unknown decision action %S" a);
  match (List.rev !errors, !skip) with
  | [], None -> Verified
  | [], Some reason -> Skipped reason
  | errs, _ -> Diverged errs

(* --- the incremental auditor ----------------------------------------------- *)

type outcome = {
  seq : int;
  run : int;
  sim : int option;
  id : string;
  action : string;
  slug : string;
  certificate : Json.t;
  verdict : verdict;
}

type t = {
  led : ledger;
  mutable now : int;
  mutable events : int;
  mutable runs : int;
  mutable decisions : int;
  mutable verified : int;
  mutable skipped : int;
  mutable diverged : int;
}

let create () =
  {
    led = fresh_ledger ();
    now = 0;
    events = 0;
    runs = 0;
    decisions = 0;
    verified = 0;
    skipped = 0;
    diverged = 0;
  }

let events t = t.events
let runs t = t.runs
let decisions t = t.decisions
let verified t = t.verified
let skipped t = t.skipped
let diverged t = t.diverged

let live_commitments t =
  Hashtbl.length t.led.entries + Hashtbl.length t.led.demands

let apply_terms led terms ~f =
  match terms with
  | Json.Null -> led.capacity_known <- false
  | terms -> (
      match Certificate.rects_of_json terms with
      | Ok rects -> led.capacity <- f led.capacity (Certificate.set_of_rects rects)
      | Error _ -> led.capacity_known <- false)

let step t (e : Events.t) =
  t.events <- t.events + 1;
  (match e.Events.sim with Some tm -> t.now <- tm | None -> ());
  let now = t.now in
  let led = t.led in
  match e.Events.payload with
  | Events.Run_started { label } ->
      t.runs <- t.runs + 1;
      reset_ledger led
        ~policy:(Option.value (Summary.label_field "policy" label) ~default:"");
      None
  | Events.Capacity_joined { terms; _ } ->
      apply_terms led terms ~f:Resource_set.union;
      None
  | Events.Fault_injected { fault = "revocation" | "blackout"; quantity; terms }
    ->
      if terms = Json.Null && quantity = 0 then
        (* An older binary would omit terms even for a no-op fault; a
           no-op cannot desynchronize the capacity either way. *)
        ()
      else apply_terms led terms ~f:Resource_set.diff_clamped;
      None
  | Events.Fault_injected _ ->
      (* Slowdowns touch demand, not capacity; a rejoin's capacity
         arrives in the Capacity_joined record that follows it. *)
      None
  | Events.Commitment_revoked { id; _ } ->
      Hashtbl.remove led.entries id;
      None
  | Events.Commitment_degraded { id; released; _ } ->
      if released then Hashtbl.remove led.entries id;
      None
  | Events.Completed { id } | Events.Killed { id; _ } | Events.Preempted { id; _ }
    ->
      release led id;
      None
  | Events.Decision { id; action; slug; certificate; _ } ->
      t.decisions <- t.decisions + 1;
      let verdict =
        match certificate with
        | Json.Null -> Skipped "no certificate recorded"
        | cj -> (
            match Certificate.of_json cj with
            | Error m -> Diverged [ "unparseable certificate: " ^ m ]
            | Ok cert -> audit_decision led ~now ~id ~action cert)
      in
      (match verdict with
      | Verified -> t.verified <- t.verified + 1
      | Skipped _ -> t.skipped <- t.skipped + 1
      | Diverged _ -> t.diverged <- t.diverged + 1);
      Some
        {
          seq = e.Events.seq;
          run = e.Events.run;
          sim = e.Events.sim;
          id;
          action;
          slug;
          certificate;
          verdict;
        }
  (* The watchdog's own divergence reports are inert to the auditor:
     re-auditing a watchdogged trace must reproduce the original
     verdicts, and a watchdog observing its own emission must not
     recurse. *)
  | Events.Audit_divergence _
  | Events.Admitted _ | Events.Rejected _ | Events.Shed _
  | Events.Repaired _ | Events.Anomaly _ | Events.Span _
  | Events.Metric_sample _ | Events.Hist_sample _ | Events.Unknown _ ->
      None

(* Recovery verification hook: a recovered controller's own residual
   must hash to exactly what this independent reconstruction derives
   from the WAL — the daemon refuses to serve otherwise. *)
let residual_digest t =
  if not t.led.capacity_known then
    Error "capacity terms missing: residual cannot be reconstructed"
  else
    match residual t.led ~now:t.now with
    | Ok r -> Ok (Certificate.digest r)
    | Error m -> Error m
