open Import

(** The incremental auditor core — one event in, at most one verdict
    out.

    This is the checker side of decision provenance, factored so the
    same code runs in two places: {!Audit.audit_file} drives it over a
    finished trace file, and {!Watchdog} drives it {e inside} the engine
    over events as they are emitted.  Because both are thin drivers over
    {!step}, an offline audit and a live watchdog of the same stream
    cannot disagree.

    State is the reconstructed world as of the last event: the run's
    capacity (joined slices minus fault slices), the commitment ledger
    (reservations and baseline demand windows currently in force), and
    per-stream counters.  Memory is bounded by the number of {e live}
    commitments — every table entry is created by an admission and
    removed by its lifecycle event — never by stream length, so the
    watchdog can ride an unbounded trace. *)

type t
(** Mutable auditor state.  One [t] audits one event stream (possibly
    spanning several runs; a [run-started] event resets the ledger). *)

val create : unit -> t

type verdict =
  | Verified  (** The certificate re-verified against the reconstruction. *)
  | Skipped of string
      (** Could not be checked: no certificate recorded, or capacity
          terms missing (traces from older binaries). *)
  | Diverged of string list
      (** The checker disagrees with the decider; one message per
          complaint. *)

type outcome = {
  seq : int;  (** The decision event's sequence number. *)
  run : int;
  sim : int option;
  id : string;  (** The computation the decision was about. *)
  action : string;  (** ["admit"], ["reject"], ["evict"], ["repair"]. *)
  slug : string;  (** The decision's outcome slug, verbatim. *)
  certificate : Json.t;  (** The recorded certificate, verbatim. *)
  verdict : verdict;
}

val step : t -> Events.t -> outcome option
(** Feed one event, in stream order.  Non-decision events update the
    reconstruction and return [None]; a [decision] event is re-verified
    on the spot — {!Certificate.verify}, through the independent
    {!Rota.Accommodation.check_schedule} validator — and returns its
    outcome.  [audit-divergence] events (the watchdog's own reports) are
    ignored, so re-auditing a watchdogged trace reproduces the original
    verdicts and a watchdog observing its own emission cannot recurse. *)

(** {2 Counters} — totals since {!create}. *)

val events : t -> int
(** Events stepped (all kinds). *)

val runs : t -> int
val decisions : t -> int
val verified : t -> int
val skipped : t -> int
val diverged : t -> int
(** Decisions with at least one complaint. *)

val live_commitments : t -> int
(** Current ledger size — the quantity the memory bound is stated in. *)

val residual_digest : t -> (string, string) result
(** {!Certificate.digest} of the reconstructed residual as of the last
    event's simulated time — the recovery check: after replaying a
    write-ahead log, a restored controller's own residual must hash to
    exactly this, or the recovered state diverges from what the stream
    proves.  [Error] when capacity terms were missing from the stream
    (the residual cannot be reconstructed) or the reconstruction itself
    is inconsistent (commitments exceed capacity). *)
