open Import

(** Decision certificates: serializable evidence for Theorem 1–4 verdicts.

    Every admission-control decision — admit, reject, evict, repair —
    is backed by something the decider actually checked: a schedule with
    breakpoints (Theorems 2/3/4), an aggregate feasibility table
    (Theorem 1, the order-blind baseline), or an explicit record that
    nothing was checked (the optimistic baseline, stale arrivals,
    duplicates).  A certificate packages that evidence together with a
    digest of the residual resource set it was checked against, in a
    JSON-serializable form that travels inside the trace.

    The point of the exercise is the checker-vs-decider split: the
    offline auditor ([Rota_audit]) re-verifies certificates with
    {!well_formed}/{!verify}, which go through the independent
    {!Accommodation.check_schedule} validator — never through the greedy
    decision procedures that produced the schedule in the first place.
    A decider bug that emits an invalid schedule is caught even when
    every unit test of the decider passes. *)

type theorem =
  | T1  (** Single action / aggregate feasibility ([f(Theta, rho)]). *)
  | T2  (** Sequential accommodation via breakpoints. *)
  | T3  (** Meet deadline (repair re-admission). *)
  | T4  (** Accommodate one more against the residual. *)
  | Unchecked
      (** No theorem was consulted (optimistic baseline, stale
          arrivals, duplicate ids). *)

type rect = { ltype : Located_type.t; interval : Interval.t; rate : int }
(** One profile rectangle: [rate] units of [ltype] throughout
    [interval].  Resource sets serialize as rectangle lists (the
    canonical segment decomposition). *)

type step = {
  index : int;  (** Position in the complex requirement. *)
  need : (Located_type.t * int) list;
      (** The step's required amounts (the spec side). *)
  subwindow : Interval.t;  (** Where the step executes. *)
  allocation : rect list;  (** Exactly what it consumes, and when. *)
}

type part = {
  actor : string;
  window : Interval.t;
  breakpoints : Time.t list;
      (** Interior breakpoints [t_1 < ... < t_{m-1}] (Theorem 2). *)
  steps : step list;
}
(** One actor's scheduled complex requirement. *)

type row = {
  row_type : Located_type.t;
  demand : int;
  capacity : int;
  committed : int;
}
(** One line of the aggregate baseline's feasibility table: demand fits
    iff [demand <= capacity - committed] within the window. *)

type evidence =
  | Schedules of part list
      (** Constructive admit evidence: per-actor schedules, validated by
          {!Accommodation.check_schedule}. *)
  | Infeasible
      (** Reject: no schedule exists against the digested residual.  The
          digest pins {e which} residual the decider searched. *)
  | Aggregate_fit of { window : Interval.t; rows : row list; fits : bool }
      (** The order-blind check the aggregate baseline actually ran. *)
  | Optimistic_fit of {
      window : Interval.t;
      totals : (Located_type.t * int) list;
    }
      (** The optimistic baseline admitted on demand totals alone. *)
  | Stale of { deadline : Time.t }
      (** Rejected because the deadline had already passed on arrival. *)
  | Duplicate  (** Rejected because the id was already committed. *)

type t = {
  theorem : theorem;
  digest : string;
      (** {!digest} of the residual resource set the decision was
          checked against; [""] when no resource state was consulted. *)
  evidence : evidence;
}

(** {1 Digests} *)

val digest : Resource_set.t -> string
(** 64-bit FNV-1a over the canonical segment decomposition, printed as
    16 hex digits.  Deterministic across processes (no functorial
    hashing), so an offline reader can recompute it from a
    reconstructed resource set. *)

(** {1 Construction (decider side)} *)

val of_schedules :
  theorem:theorem ->
  residual:Resource_set.t ->
  (Actor_name.t * Requirement.complex * Accommodation.schedule) list ->
  t
(** Admit evidence from the decider's own schedules, one triple per
    actor/part.  Raises [Invalid_argument] if a schedule's steps do not
    align with its requirement's steps (a decider bug by definition). *)

val of_committed :
  theorem:theorem ->
  residual:Resource_set.t ->
  (Actor_name.t * Accommodation.schedule) list ->
  t
(** Like {!of_schedules} when the original requirement is no longer at
    hand (calendar evictions): each step's needs are derived from its
    allocation's integrals, so the certificate records what the
    commitment was actually consuming.  [residual] is the post-decision
    residual (for evictions: what remained after the revocation). *)

val infeasible : residual:Resource_set.t -> t
val stale : deadline:Time.t -> t
val duplicate : t

val aggregate :
  residual:Resource_set.t -> window:Interval.t -> rows:row list -> t
(** Theorem-1 table evidence; [fits] is derived from the rows. *)

val rows_fit : row list -> bool
(** [true] iff every row's demand fits ([demand <= capacity -
    committed]) — the aggregate baseline's actual criterion, shared so
    decider and certificate cannot disagree on it. *)

val optimistic :
  window:Interval.t -> totals:(Located_type.t * int) list -> t

(** {1 Verification (checker side)} *)

val reservation : t -> Resource_set.t
(** Union of all part allocations ({!Resource_set.empty} for
    non-schedule evidence) — what the decision committed. *)

val well_formed : t -> (unit, string) result
(** Internal consistency, checkable without any external state: every
    part's steps rebuild into a schedule that
    {!Accommodation.check_schedule} accepts against its own requirement
    (tiling subwindows, in-window allocations, covered amounts), and an
    aggregate table's verdict matches its rows. *)

val verify : residual:Resource_set.t -> t -> (unit, string) result
(** {!well_formed}, plus the external checks: the digest matches
    [residual] (when the certificate carries one), and schedule evidence
    is dominated by [residual] — i.e. the admission really fit the
    resources that were free. *)

(** {1 Serialization} *)

val to_json : t -> Rota_obs.Json.t
val of_json : Rota_obs.Json.t -> (t, string) result
(** Accepts exactly what {!to_json} produces; validates shapes
    (non-empty intervals, non-negative rates and quantities) so a
    corrupted certificate fails here rather than deep inside
    verification. *)

val rects_of_set : Resource_set.t -> rect list
val set_of_rects : rect list -> Resource_set.t
val rects_to_json : rect list -> Rota_obs.Json.t
val rects_of_json : Rota_obs.Json.t -> (rect list, string) result
(** Rectangle lists double as the wire form of resource slices outside
    certificates (capacity joins, fault terms). *)

val ltype_to_json : Located_type.t -> Rota_obs.Json.t
val ltype_of_json : Rota_obs.Json.t -> (Located_type.t, string) result
val interval_to_json : Interval.t -> Rota_obs.Json.t
val interval_of_json : Rota_obs.Json.t -> (Interval.t, string) result
(** The primitive codecs under {!rects_of_json}, exposed on their own so
    state snapshots (admission ledger, demand records) serialize located
    types and windows in exactly the certificate wire form. *)

val schedules_of_parts : t -> (Actor_name.t * Accommodation.schedule) list
(** Rebuilds the per-actor schedules recorded in [Schedules] evidence
    ([[]] for any other evidence) — the inverse of {!of_committed}'s
    serialization, so a commitment can be re-installed into a ledger
    from its own certificate alone (WAL replay, snapshot restore). *)

val theorem_name : theorem -> string
(** ["T1"] ... ["T4"], ["unchecked"]. *)

val pp : Format.formatter -> t -> unit
(** Multi-line human rendering: theorem, digest, and the evidence with
    its breakpoint timeline — the heart of [rota explain]. *)
