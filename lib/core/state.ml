open Import

type pending = {
  computation : string;
  actor : Actor_name.t;
  window : Interval.t;
  steps : Requirement.step list;
}

type t = { available : Resource_set.t; pending : pending list; now : Time.t }

let compare_pending a b =
  match String.compare a.computation b.computation with
  | 0 -> (
      match Actor_name.compare a.actor b.actor with
      | 0 -> (
          match Interval.compare a.window b.window with
          | 0 ->
              let compare_amount (x : Requirement.amount)
                  (y : Requirement.amount) =
                match Located_type.compare x.ltype y.ltype with
                | 0 -> Int.compare x.quantity y.quantity
                | c -> c
              in
              List.compare (List.compare compare_amount) a.steps b.steps
          | c -> c)
      | c -> c)
  | c -> c

(* Canonical pending order makes state comparison structural. *)
let normalize_pending pending = List.sort compare_pending pending

let make ~available ~now =
  { available = Resource_set.truncate_before available now;
    pending = [];
    now }

let is_idle s = s.pending = []

let pending_of s ~computation =
  List.filter (fun p -> String.equal p.computation computation) s.pending

let computations s =
  List.fold_left
    (fun acc p ->
      if List.exists (String.equal p.computation) acc then acc
      else p.computation :: acc)
    [] s.pending
  |> List.rev

let acquire s theta_join =
  {
    s with
    available =
      Resource_set.union s.available
        (Resource_set.truncate_before theta_join s.now);
  }

let revoke s slice =
  {
    s with
    available =
      Resource_set.diff_clamped s.available
        (Resource_set.truncate_before slice s.now);
  }

(* Remaining steps must be positive-amount only and non-empty. *)
let clean_steps steps =
  List.filter_map
    (fun step ->
      match
        List.filter (fun (a : Requirement.amount) -> a.quantity > 0) step
      with
      | [] -> None
      | step -> Some step)
    steps

let accommodate_parts s ~id ~window parts =
  if s.now >= Interval.stop window then
    Error
      (Printf.sprintf "cannot accommodate %s: deadline %d has passed (now %d)"
         id (Interval.stop window) s.now)
  else if List.exists (fun p -> String.equal p.computation id) s.pending then
    Error (Printf.sprintf "computation %s is already accommodated" id)
  else
    let pendings =
      List.filter_map
        (fun (actor, steps) ->
          match clean_steps steps with
          | [] -> None
          | steps -> Some { computation = id; actor; window; steps })
        parts
    in
    Ok { s with pending = normalize_pending (pendings @ s.pending) }

let accommodate ?merge s model computation =
  let conc = Computation.to_concurrent ?merge model computation in
  let parts =
    List.map2
      (fun (prog : Program.t) (part : Requirement.complex) ->
        (prog.name, part.Requirement.steps))
      computation.Computation.programs conc.Requirement.parts
  in
  accommodate_parts s ~id:computation.Computation.id
    ~window:(Computation.window computation)
    parts

let leave s ~computation =
  let mine, others =
    List.partition (fun p -> String.equal p.computation computation) s.pending
  in
  match mine with
  | [] -> Error (Printf.sprintf "computation %s is not accommodated" computation)
  | p :: _ ->
      if s.now >= Interval.start p.window then
        Error
          (Printf.sprintf
             "computation %s has already started (s=%d, now=%d): cannot leave"
             computation (Interval.start p.window) s.now)
      else Ok { s with pending = others }

let drop s ~computation =
  {
    s with
    pending =
      List.filter (fun p -> not (String.equal p.computation computation)) s.pending;
  }

let consume_in_head s ~computation ~actor consumed =
  let consume_step step =
    List.filter_map
      (fun (a : Requirement.amount) ->
        let taken =
          List.fold_left
            (fun acc (xi, q) ->
              if Located_type.equal xi a.ltype then acc + q else acc)
            0 consumed
        in
        let quantity = max 0 (a.quantity - taken) in
        if quantity > 0 then Some (Requirement.amount a.ltype quantity)
        else None)
      step
  in
  let update p =
    if String.equal p.computation computation && Actor_name.equal p.actor actor
    then
      match p.steps with
      | [] -> None
      | head :: rest -> (
          match consume_step head with
          | [] -> if rest = [] then None else Some { p with steps = rest }
          | head -> Some { p with steps = head :: rest })
    else Some p
  in
  { s with pending = List.filter_map update s.pending }

let tick s =
  let now = Time.succ s.now in
  { s with now; available = Resource_set.truncate_before s.available now }

let residual_demand s =
  List.map
    (fun p ->
      Requirement.make_simple ~amounts:(List.concat p.steps) ~window:p.window)
    s.pending

let compare a b =
  match Time.compare a.now b.now with
  | 0 -> (
      match Resource_set.compare a.available b.available with
      | 0 -> List.compare compare_pending a.pending b.pending
      | c -> c)
  | c -> c

let equal a b = compare a b = 0

let pp_pending ppf p =
  let pp_step ppf step =
    Format.fprintf ppf "[%a]"
      (Format.pp_print_list
         ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
         Requirement.pp_amount)
      step
  in
  Format.fprintf ppf "%s/%a%a: %a" p.computation Actor_name.pp p.actor
    Interval.pp p.window
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf " ; ")
       pp_step)
    p.steps

let pp ppf s =
  Format.fprintf ppf "@[<v>S(t=%a)@ Theta = %a@ rho = @[<v>%a@]@]" Time.pp
    s.now Resource_set.pp s.available
    (Format.pp_print_list pp_pending)
    s.pending
