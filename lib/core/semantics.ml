open Import

type verdict = Holds | Fails | Unknown of string

let verdict_of_bool b = if b then Holds else Fails

(* The usable remainder of a requirement window at evaluation time [at]:
   [(max(s,t), d)]. *)
let clip window ~at =
  Interval.make ~start:(Time.max (Interval.start window) at)
    ~stop:(Interval.stop window)

let times_after path t =
  List.filter_map
    (fun (s : State.t) -> if s.State.now > t then Some s.State.now else None)
    (Path.states path)

let rec on_path path ~at psi =
  match (psi : Formula.t) with
  | True -> true
  | False -> false
  | Satisfy_simple r -> (
      match clip r.Requirement.window ~at with
      | None -> false
      | Some window ->
          let theta = Path.expired_within path window in
          Requirement.satisfied_simple theta
            (Requirement.make_simple ~amounts:r.Requirement.amounts ~window))
  | Satisfy_complex r -> (
      match clip r.Requirement.window ~at with
      | None -> false
      | Some window ->
          let theta = Path.expired_within path window in
          Accommodation.sequential_feasible theta
            (Requirement.make_complex ~steps:r.Requirement.steps ~window))
  | Satisfy_concurrent r -> (
      match clip r.Requirement.window ~at with
      | None -> false
      | Some window ->
          let theta = Path.expired_within path window in
          Accommodation.concurrent_feasible theta
            (Requirement.make_concurrent ~parts:r.Requirement.parts ~window))
  | Not psi -> not (on_path path ~at psi)
  | Eventually psi ->
      List.exists (fun t -> on_path path ~at:t psi) (times_after path at)
  | Always psi ->
      List.for_all (fun t -> on_path path ~at:t psi) (times_after path at)

let default_horizon (state : State.t) psi =
  let now = state.State.now in
  let candidates =
    List.filter_map Fun.id
      [ Formula.horizon psi; Resource_set.horizon state.State.available ]
  in
  List.fold_left Time.max (Time.succ now) candidates

exception Out_of_budget

let m_exists = Rota_obs.Metrics.counter "semantics/exists_path"
let m_exists_s = Rota_obs.Metrics.histogram "semantics/exists_path_s"
let m_forall = Rota_obs.Metrics.counter "semantics/forall_paths"

let exists_path_uninstrumented ?horizon ?(budget = 200_000) (state : State.t)
    psi =
  let horizon =
    match horizon with Some h -> h | None -> default_horizon state psi
  in
  let remaining = ref budget in
  let rec dfs path =
    let tip = Path.tip path in
    if tip.State.now >= horizon then on_path path ~at:state.State.now psi
    else
      List.exists
        (fun label ->
          if !remaining <= 0 then raise Out_of_budget;
          decr remaining;
          dfs (Path.extend path label))
        (Transition.labels tip)
  in
  match dfs (Path.init state) with
  | true -> Holds
  | false -> Fails
  | exception Out_of_budget ->
      Unknown (Printf.sprintf "transition budget (%d) exhausted" budget)

let exists_path ?horizon ?budget state psi =
  if Rota_obs.Metrics.enabled () then begin
    Rota_obs.Metrics.incr m_exists;
    Rota_obs.Metrics.time m_exists_s (fun () ->
        exists_path_uninstrumented ?horizon ?budget state psi)
  end
  else exists_path_uninstrumented ?horizon ?budget state psi

let witness ?horizon ?(budget = 200_000) (state : State.t) psi =
  let horizon =
    match horizon with Some h -> h | None -> default_horizon state psi
  in
  let remaining = ref budget in
  let rec dfs path =
    let tip = Path.tip path in
    if tip.State.now >= horizon then
      if on_path path ~at:state.State.now psi then Some path else None
    else
      List.find_map
        (fun label ->
          if !remaining <= 0 then raise Out_of_budget;
          decr remaining;
          dfs (Path.extend path label))
        (Transition.labels tip)
  in
  match dfs (Path.init state) with
  | result -> result
  | exception Out_of_budget -> None

let forall_paths ?horizon ?budget state psi =
  Rota_obs.Metrics.incr m_forall;
  match exists_path ?horizon ?budget state (Formula.neg psi) with
  | Holds -> Fails
  | Fails -> Holds
  | Unknown _ as u -> u

module State_set = Set.Make (State)

type completion =
  | Completed of Path.t
  | Impossible
  | Budget_exhausted of { budget : int }

let completion_path ?(budget = 200_000) (state : State.t) ~computation =
  match State.pending_of state ~computation with
  | [] -> Completed (Path.init state)
  | pendings ->
      let deadline =
        List.fold_left
          (fun acc (p : State.pending) ->
            Time.max acc (Interval.stop p.State.window))
          min_int pendings
      in
      let remaining = ref budget in
      (* A state from which draining is impossible stays impossible however
         we reached it, so failures memoize soundly. *)
      let failed = ref State_set.empty in
      let rec dfs path =
        let tip = Path.tip path in
        if State.pending_of tip ~computation = [] then Some path
        else if tip.State.now >= deadline then None
        else if State_set.mem tip !failed then None
        else
          let result =
            List.find_map
              (fun label ->
                if !remaining <= 0 then raise Out_of_budget;
                decr remaining;
                dfs (Path.extend path label))
              (Transition.labels tip)
          in
          if result = None then failed := State_set.add tip !failed;
          result
      in
      (* An exhausted budget is an inconclusive search, not a crash: the
         caller decides whether "don't know" counts as infeasible. *)
      (match dfs (Path.init state) with
      | Some path -> Completed path
      | None -> Impossible
      | exception Out_of_budget -> Budget_exhausted { budget })

let pp_completion ppf = function
  | Completed path ->
      Format.fprintf ppf "completed at %a" Time.pp (Path.tip path).State.now
  | Impossible -> Format.pp_print_string ppf "impossible"
  | Budget_exhausted { budget } ->
      Format.fprintf ppf "budget exhausted after %d transitions" budget

let pp_verdict ppf = function
  | Holds -> Format.pp_print_string ppf "holds"
  | Fails -> Format.pp_print_string ppf "fails"
  | Unknown reason -> Format.fprintf ppf "unknown (%s)" reason
