open Import

(** System states — the paper's [S = (Theta, rho, t)].

    A state carries the future available resources [Theta] (from time [t]
    onward), the remaining resource requirements [rho] of the computations
    the system has committed to accommodate, and the current tick [t].

    [rho] is kept as a list of {!pending} records: one per actor of each
    accommodated computation, holding the {e remaining} suffix of its step
    sequence (the head step is the one being fuelled; its amounts decrease
    as transition rules consume resources). *)

type pending = private {
  computation : string;  (** Id of the accommodated computation. *)
  actor : Actor_name.t;
  window : Interval.t;  (** The computation's [(s, d)]. *)
  steps : Requirement.step list;
      (** Remaining steps, current first; never empty (a drained pending is
          removed from the state), and every amount is positive. *)
}

type t = private {
  available : Resource_set.t;  (** [Theta], truncated to [>= now]. *)
  pending : pending list;  (** [rho], in a canonical order. *)
  now : Time.t;  (** [t]. *)
}

val make : available:Resource_set.t -> now:Time.t -> t
(** An idle state: resources but no computations to use them (availability
    strictly before [now] is dropped — it has already expired). *)

val is_idle : t -> bool
(** No pending requirements. *)

val pending_of : t -> computation:string -> pending list

val computations : t -> string list
(** Distinct ids of accommodated computations, in order of first
    appearance. *)

(** {1 Instantaneous rules} *)

val acquire : t -> Resource_set.t -> t
(** The {b resource acquisition rule}: [Theta ∪ Theta_join] at the same
    instant.  Availability in the strict past of [now] is dropped.
    (There is no resource-leave rule: a term's interval already says when
    it leaves.) *)

val revoke : t -> Resource_set.t -> t
(** Forcibly removes a capacity slice from [Theta]: the pointwise clamped
    difference ({!Resource_set.diff_clamped}), so revoking more than is
    present zeroes availability rather than failing.  Not one of the
    paper's rules — the paper requires "the time of leaving must be
    declared at the time of joining" — this is the fault-model extension
    for {e unannounced} departure. *)

val accommodate :
  ?merge:bool -> t -> Cost_model.t -> Computation.t -> (t, string) result
(** The {b computation accommodation rule}: adds [rho(Lambda, s, d)] for
    the given computation.  Fails (with a reason) when [now >= d] ("it is
    not possible to accommodate a computation if its deadline has passed")
    or when the id is already accommodated.  [merge] as in
    {!Program.to_complex}.

    Note this rule {e registers} the requirement, exactly as in the paper;
    whether the requirement can actually be met is a separate judgment
    (see [Accommodation] and [Semantics]). *)

val accommodate_parts :
  t ->
  id:string ->
  window:Interval.t ->
  (Actor_name.t * Requirement.step list) list ->
  (t, string) result
(** Lower-level accommodation from explicit remaining step lists. *)

val leave : t -> computation:string -> (t, string) result
(** The {b computation leave rule}: removes [rho(Lambda, s, d)].  Fails
    when [now >= s] — "a computation which has already started in the
    system is not allowed to leave" — or when the id is unknown. *)

val drop : t -> computation:string -> t
(** Unconditionally clears a computation's pending requirements.  Not one
    of the paper's rules: runtimes use it to kill a computation whose
    deadline has been missed.  Unknown ids are ignored. *)

(** {1 Primitive moves}

    The transition rules of [Transition] are composed from these two
    primitives; they are exposed for that module and for tests, not for
    general use. *)

val consume_in_head : t ->
  computation:string ->
  actor:Actor_name.t ->
  (Located_type.t * int) list ->
  t
(** Decrements the named amounts in the pending's {e current} (head) step,
    clamping at zero; pops the step when it drains and removes the pending
    when its last step drains.  Unknown pendings are left untouched. *)

val tick : t -> t
(** Advances the clock by [Time.dt] and expires availability in the strict
    past — the part of every transition rule that moves [t] to
    [t + dt]. *)

(** {1 Structure} *)

val residual_demand : t -> Requirement.simple list
(** One simple requirement per pending actor: its aggregate remaining
    amounts over its window (order forgotten).  A cheap necessary
    condition used by baselines and diagnostics. *)

val equal : t -> t -> bool

val compare : t -> t -> int
(** Total order; states are memoization keys in the model checker. *)

val pp : Format.formatter -> t -> unit

val pp_pending : Format.formatter -> pending -> unit
