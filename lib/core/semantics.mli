open Import

(** The satisfaction relation [M, sigma, t |= psi] (Figure 1).

    Formulas are judged on a computation path [sigma] at a time point [t]:

    - [true] always holds, [false] never;
    - [satisfy(rho(gamma,s,d))] holds when the resources {b expiring
      unused} along [sigma] within [(max(s,t), d)] satisfy the simple
      requirement — expiring resources are the system's spare capacity,
      "unwanted resources which will expire unless new computations
      requiring them enter the system";
    - [satisfy(rho(Gamma,s,d))] holds when breakpoints
      [t_1 < ... < t_m-1] exist splitting [(max(s,t), d)] so every step's
      simple requirement holds on its subinterval (decided by the
      Theorem-2 procedure on the expiring resources);
    - [satisfy(rho(Lambda,s,d))] holds when the parts can be placed one
      after another, each on what the previous placements left (decided
      by the Theorem-3/4 procedure);
    - [not], and the temporal operators over the {e path's} later time
      points: [eventually psi] — some strictly later point of [sigma]
      satisfies [psi]; [always psi] — all strictly later points do.

    Paths here are finite (the tree is explored to a horizon), so the
    temporal operators are bounded — adequate because every [satisfy] atom
    is itself bounded by its window's deadline. *)

type verdict =
  | Holds
  | Fails
  | Unknown of string
      (** The exploration budget ran out before a witness either way; the
          payload says which limit was hit. *)

val verdict_of_bool : bool -> verdict

val on_path : Path.t -> at:Time.t -> Formula.t -> bool
(** [on_path sigma ~at psi] is [M, sigma, at |= psi], Figure 1 verbatim.
    Time points beyond the path's tip make temporal operators range over
    the empty set ([eventually] false, [always] true). *)

val default_horizon : State.t -> Formula.t -> Time.t
(** The natural exploration bound: the latest of the formula's deadlines
    and the availability horizon (at least one tick past [now]). *)

val exists_path :
  ?horizon:Time.t -> ?budget:int -> State.t -> Formula.t -> verdict
(** [exists_path state psi]: does {e some} computation path from [state]
    (explored to [horizon]) satisfy [psi] at [state]'s clock?  This is the
    quantifier of Theorems 3 and 4.  [budget] caps the number of
    transition applications (default [200_000]). *)

val forall_paths :
  ?horizon:Time.t -> ?budget:int -> State.t -> Formula.t -> verdict
(** Dual of {!exists_path}: every path satisfies [psi]. *)

val witness :
  ?horizon:Time.t -> ?budget:int -> State.t -> Formula.t -> Path.t option
(** Like {!exists_path} but returns the satisfying path itself — the
    concrete system evolution backing a [Holds] verdict.  [None] covers
    both [Fails] and a blown budget; use {!exists_path} to distinguish. *)

type completion =
  | Completed of Path.t
      (** A path along which the computation's pending requirements
          drain before its deadline. *)
  | Impossible  (** The exhaustive search proved no such path exists. *)
  | Budget_exhausted of { budget : int }
      (** The search hit its transition budget before reaching either
          verdict — inconclusive, not a crash. *)

val completion_path :
  ?budget:int -> State.t -> computation:string -> completion
(** Theorem 3's witness on the transition tree: a path along which the
    named computation's pending requirements drain before its deadline.
    Memoized on visited states; [Impossible] is exact (the budget was
    not hit), [Budget_exhausted] reports an inconclusive search as a
    structured outcome instead of raising. *)

val pp_completion : Format.formatter -> completion -> unit

val pp_verdict : Format.formatter -> verdict -> unit
