open Import

type step_allocation = {
  step_index : int;
  subwindow : Interval.t;
  allocation : Resource_set.t;
}

type schedule = {
  window : Interval.t;
  breakpoints : Time.t list;
  steps : step_allocation list;
  reservation : Resource_set.t;
}

let single_action = Requirement.satisfied_simple

(* Earliest tick by which every amount of [step] can be fully supplied when
   consuming greedily from [u]. *)
let step_finish theta ~u ~stop step =
  match Interval.make ~start:u ~stop with
  | None -> None
  | Some window ->
      List.fold_left
        (fun acc (a : Requirement.amount) ->
          match acc with
          | None -> None
          | Some finish -> (
              let profile = Resource_set.find a.Requirement.ltype theta in
              match
                Profile.completion_time profile ~window ~quantity:a.Requirement.quantity
              with
              | None -> None
              | Some f -> Some (Time.max finish f)))
        (Some u) step

(* Concrete earliest-fit allocation of one step inside its subwindow. *)
let step_allocation theta ~index ~subwindow step =
  let allocation =
    List.fold_left
      (fun acc (a : Requirement.amount) ->
        let profile = Resource_set.find a.Requirement.ltype theta in
        match
          Profile.consume profile ~window:subwindow ~quantity:a.Requirement.quantity
        with
        | Some (_, got) ->
            Resource_set.add_profile a.Requirement.ltype got acc
        | None ->
            (* [subwindow] extends past this amount's completion time, so
               consumption cannot fail. *)
            assert false)
      Resource_set.empty step
  in
  { step_index = index; subwindow; allocation }

let m_sequential = Rota_obs.Metrics.counter "accommodation/schedule_sequential"
let m_sequential_s =
  Rota_obs.Metrics.histogram "accommodation/schedule_sequential_s"
let m_concurrent = Rota_obs.Metrics.counter "accommodation/schedule_concurrent"
let m_concurrent_s =
  Rota_obs.Metrics.histogram "accommodation/schedule_concurrent_s"

let schedule_sequential_uninstrumented theta (c : Requirement.complex) =
  let stop = Interval.stop c.Requirement.window in
  let rec place u index placed = function
    | [] -> Some (List.rev placed)
    | step :: rest -> (
        match step_finish theta ~u ~stop step with
        | None -> None
        | Some finish ->
            (* Steps are normalized to positive demand, so [finish > u] and
               subwindows are non-empty: breakpoints strictly increase. *)
            let subwindow = Interval.of_pair u finish in
            let alloc = step_allocation theta ~index ~subwindow step in
            place finish (index + 1) (alloc :: placed) rest)
  in
  match place (Interval.start c.Requirement.window) 0 [] c.Requirement.steps with
  | None -> None
  | Some steps ->
      let breakpoints =
        match steps with
        | [] -> []
        | _ :: rest -> List.map (fun s -> Interval.start s.subwindow) rest
      in
      let reservation =
        List.fold_left
          (fun acc s -> Resource_set.union acc s.allocation)
          Resource_set.empty steps
      in
      Some { window = c.Requirement.window; breakpoints; steps; reservation }

let schedule_sequential theta c =
  if Rota_obs.Metrics.enabled () then begin
    Rota_obs.Metrics.incr m_sequential;
    Rota_obs.Metrics.time m_sequential_s (fun () ->
        schedule_sequential_uninstrumented theta c)
  end
  else schedule_sequential_uninstrumented theta c

let sequential_feasible theta c = Option.is_some (schedule_sequential theta c)

let sequential_feasible_exhaustive theta (c : Requirement.complex) =
  let stop = Interval.stop c.Requirement.window in
  let satisfied_within step window =
    List.for_all
      (fun (a : Requirement.amount) ->
        Resource_set.integrate theta a.Requirement.ltype window
        >= a.Requirement.quantity)
      step
  in
  (* Try every strictly increasing tuple of breakpoints. *)
  let rec search u = function
    | [] -> u <= stop
    | [ last ] -> (
        match Interval.make ~start:u ~stop with
        | None -> false
        | Some window -> satisfied_within last window)
    | step :: rest ->
        let rec try_breakpoint t =
          if t > stop then false
          else
            let ok =
              match Interval.make ~start:u ~stop:t with
              | None -> false
              | Some window -> satisfied_within step window
            in
            if ok && search t rest then true else try_breakpoint (Time.succ t)
        in
        try_breakpoint (Time.succ u)
  in
  search (Interval.start c.Requirement.window) c.Requirement.steps

let m_check = Rota_obs.Metrics.counter "accommodation/check"
let m_check_s = Rota_obs.Metrics.histogram "accommodation/check_s"

let check_schedule_uninstrumented theta (c : Requirement.complex) schedule =
  let fail fmt = Format.kasprintf (fun m -> Error m) fmt in
  let rec check_steps u expected_index steps
      (spec_steps : Requirement.step list) =
    match (steps, spec_steps) with
    | [], [] ->
        if u <= Interval.stop c.Requirement.window then Ok ()
        else fail "schedule overruns the window"
    | [], _ :: _ -> fail "schedule has fewer steps than the requirement"
    | _ :: _, [] -> fail "schedule has more steps than the requirement"
    | alloc :: steps, spec :: spec_steps ->
        if alloc.step_index <> expected_index then
          fail "step indices out of order at %d" expected_index
        else if not (Time.equal (Interval.start alloc.subwindow) u) then
          fail "subwindow of step %d does not start where the previous ended"
            expected_index
        else if
          not (Interval.subset alloc.subwindow c.Requirement.window)
        then fail "subwindow of step %d escapes the window" expected_index
        else if not (Resource_set.within alloc.allocation alloc.subwindow)
        then fail "allocation of step %d spills outside its subwindow" expected_index
        else
          let covered =
            List.for_all
              (fun (a : Requirement.amount) ->
                Resource_set.integrate alloc.allocation a.Requirement.ltype
                  alloc.subwindow
                >= a.Requirement.quantity)
              spec
          in
          if not covered then
            fail "allocation of step %d does not cover its amounts"
              expected_index
          else
            check_steps (Interval.stop alloc.subwindow) (expected_index + 1)
              steps spec_steps
  in
  if not (Interval.equal schedule.window c.Requirement.window) then
    fail "schedule window differs from the requirement window"
  else if not (Resource_set.dominates theta schedule.reservation) then
    fail "reservation is not covered by availability"
  else
    match
      check_steps
        (Interval.start c.Requirement.window)
        0 schedule.steps c.Requirement.steps
    with
    | Error _ as e -> e
    | Ok () ->
        let rebuilt =
          List.fold_left
            (fun acc s -> Resource_set.union acc s.allocation)
            Resource_set.empty schedule.steps
        in
        if Resource_set.equal rebuilt schedule.reservation then Ok ()
        else fail "reservation differs from the union of step allocations"

(* The checker is the audit watchdog's hot path: every certified
   decision re-runs it live, so its latency decides the watchdog's lag. *)
let check_schedule theta c schedule =
  if Rota_obs.Metrics.enabled () then begin
    Rota_obs.Metrics.incr m_check;
    Rota_obs.Metrics.time m_check_s (fun () ->
        check_schedule_uninstrumented theta c schedule)
  end
  else check_schedule_uninstrumented theta c schedule

module Order = struct
  type t = Given | Most_work_first | Least_work_first

  let all = [ Given; Most_work_first; Least_work_first ]

  let pp ppf = function
    | Given -> Format.pp_print_string ppf "given"
    | Most_work_first -> Format.pp_print_string ppf "most-work-first"
    | Least_work_first -> Format.pp_print_string ppf "least-work-first"
end

let order_parts order parts =
  let indexed = List.mapi (fun i p -> (i, p)) parts in
  let by_work direction =
    List.stable_sort
      (fun (_, a) (_, b) ->
        direction
        * Int.compare
            (Requirement.total_quantity_complex a)
            (Requirement.total_quantity_complex b))
      indexed
  in
  match (order : Order.t) with
  | Given -> indexed
  | Most_work_first -> by_work (-1)
  | Least_work_first -> by_work 1

let schedule_concurrent_uninstrumented ?(order = Order.Most_work_first) theta
    (conc : Requirement.concurrent) =
  match conc.Requirement.parts with
  | [ part ] -> (
      (* One part — the dominant shape on the admission path (a
         computation with a single program) — needs no ordering pass,
         no residual threading, and no re-sort. *)
      match schedule_sequential theta part with
      | None -> None
      | Some schedule -> Some [ schedule ])
  | parts ->
  let rec place residual acc = function
    | [] -> Some acc
    | (i, part) :: rest -> (
        match schedule_sequential residual part with
        | None -> None
        | Some schedule ->
            if rest = [] then Some ((i, schedule) :: acc)
            else (
              (* Later parts schedule on what this one left over. *)
              match Resource_set.diff residual schedule.reservation with
              | Error _ ->
                  (* The reservation was carved out of [residual]. *)
                  assert false
              | Ok residual -> place residual ((i, schedule) :: acc) rest))
  in
  match place theta [] (order_parts order parts) with
  | None -> None
  | Some indexed ->
      (* Restore original part order. *)
      Some
        (indexed
        |> List.sort (fun (i, _) (j, _) -> Int.compare i j)
        |> List.map snd)

let schedule_concurrent ?order theta conc =
  Rota_obs.Tracer.with_span "accommodation/schedule-concurrent" (fun () ->
      if Rota_obs.Metrics.enabled () then begin
        Rota_obs.Metrics.incr m_concurrent;
        Rota_obs.Metrics.time m_concurrent_s (fun () ->
            schedule_concurrent_uninstrumented ?order theta conc)
      end
      else schedule_concurrent_uninstrumented ?order theta conc)

let concurrent_feasible ?(try_orders = Order.all) theta conc =
  List.exists
    (fun order -> Option.is_some (schedule_concurrent ~order theta conc))
    try_orders

let meets_deadline ?merge model theta computation =
  let conc = Computation.to_concurrent ?merge model computation in
  match schedule_concurrent theta conc with
  | None -> None
  | Some schedules ->
      Some
        (List.map2
           (fun (p : Program.t) schedule -> (p.Program.name, schedule))
           computation.Computation.programs schedules)

let reservation_of_schedules schedules =
  List.fold_left
    (fun acc s -> Resource_set.union acc s.reservation)
    Resource_set.empty schedules

let pp_schedule ppf s =
  let pp_step ppf a =
    Format.fprintf ppf "step %d on %a: %a" a.step_index Interval.pp a.subwindow
      Resource_set.pp a.allocation
  in
  Format.fprintf ppf "@[<v>schedule on %a@ breakpoints: [%a]@ %a@]" Interval.pp
    s.window
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf "; ")
       Time.pp)
    s.breakpoints
    (Format.pp_print_list pp_step)
    s.steps
