open Import
module Json = Rota_obs.Json

type theorem = T1 | T2 | T3 | T4 | Unchecked

type rect = { ltype : Located_type.t; interval : Interval.t; rate : int }

type step = {
  index : int;
  need : (Located_type.t * int) list;
  subwindow : Interval.t;
  allocation : rect list;
}

type part = {
  actor : string;
  window : Interval.t;
  breakpoints : Time.t list;
  steps : step list;
}

type row = {
  row_type : Located_type.t;
  demand : int;
  capacity : int;
  committed : int;
}

type evidence =
  | Schedules of part list
  | Infeasible
  | Aggregate_fit of { window : Interval.t; rows : row list; fits : bool }
  | Optimistic_fit of {
      window : Interval.t;
      totals : (Located_type.t * int) list;
    }
  | Stale of { deadline : Time.t }
  | Duplicate

type t = { theorem : theorem; digest : string; evidence : evidence }

let theorem_name = function
  | T1 -> "T1"
  | T2 -> "T2"
  | T3 -> "T3"
  | T4 -> "T4"
  | Unchecked -> "unchecked"

let theorem_of_name = function
  | "T1" -> Ok T1
  | "T2" -> Ok T2
  | "T3" -> Ok T3
  | "T4" -> Ok T4
  | "unchecked" -> Ok Unchecked
  | s -> Error (Printf.sprintf "unknown theorem tag %S" s)

(* --- digests -------------------------------------------------------------- *)

(* 64-bit FNV-1a, folded over the canonical segment decomposition in
   type order.  Hashtbl.hash would do, but its value is not specified
   across compiler versions; a trace audited on a different build must
   recompute the same digest. *)
let digest set =
  let h = ref 0xcbf29ce484222325L in
  let prime = 0x100000001b3L in
  let mix_byte b = h := Int64.mul (Int64.logxor !h (Int64.of_int b)) prime in
  let mix_int i =
    for k = 0 to 7 do
      mix_byte ((i lsr (8 * k)) land 0xff)
    done
  in
  let mix_string s =
    String.iter (fun c -> mix_byte (Char.code c)) s;
    (* Terminator, so adjacent strings cannot alias. *)
    mix_byte 0
  in
  Resource_set.fold
    (fun xi p () ->
      mix_string (Located_type.to_string xi);
      List.iter
        (fun (s : Profile.segment) ->
          mix_int (Interval.start s.Profile.interval);
          mix_int (Interval.stop s.Profile.interval);
          mix_int s.Profile.rate)
        (Profile.segments p))
    set ();
  Printf.sprintf "%016Lx" !h

(* --- rectangles <-> resource sets ----------------------------------------- *)

let rects_of_set set =
  Resource_set.fold
    (fun xi p acc ->
      List.fold_left
        (fun acc (s : Profile.segment) ->
          { ltype = xi; interval = s.Profile.interval; rate = s.Profile.rate }
          :: acc)
        acc (Profile.segments p))
    set []
  |> List.rev

let set_of_rects rects =
  List.fold_left
    (fun acc r ->
      Resource_set.update r.ltype
        (Profile.add (Profile.constant r.interval r.rate))
        acc)
    Resource_set.empty rects

(* --- JSON codec ----------------------------------------------------------- *)

let ( let* ) = Result.bind

let field name decode json =
  match Json.member name json with
  | Some v -> decode v
  | None -> Error (Printf.sprintf "certificate: missing field %S" name)

let rec map_result f = function
  | [] -> Ok []
  | x :: rest ->
      let* y = f x in
      let* ys = map_result f rest in
      Ok (y :: ys)

let list_field name decode json =
  field name
    (function
      | Json.List items -> map_result decode items
      | _ -> Error (Printf.sprintf "certificate: field %S is not a list" name))
    json

let ltype_to_json xi =
  match xi with
  | Located_type.Network (src, dst) ->
      Json.Obj
        [
          ("kind", Json.String "network");
          ("src", Json.String (Location.name src));
          ("dst", Json.String (Location.name dst));
        ]
  | _ ->
      Json.Obj
        [
          ("kind", Json.String (Located_type.kind xi));
          ( "at",
            Json.String
              (match Located_type.locations xi with
              | l :: _ -> Location.name l
              | [] -> "") );
        ]

let location_field name json =
  let* s = field name Json.to_str json in
  if s = "" then Error (Printf.sprintf "certificate: empty location in %S" name)
  else Ok (Location.make s)

let ltype_of_json json =
  let* kind = field "kind" Json.to_str json in
  match kind with
  | "network" ->
      let* src = location_field "src" json in
      let* dst = location_field "dst" json in
      Ok (Located_type.network ~src ~dst)
  | _ ->
      let* at = location_field "at" json in
      Ok
        (match kind with
        | "cpu" -> Located_type.cpu at
        | "memory" -> Located_type.memory at
        | k -> Located_type.custom k at)

let interval_to_json i =
  Json.List [ Json.Int (Interval.start i); Json.Int (Interval.stop i) ]

let interval_of_json = function
  | Json.List [ a; b ] -> (
      let* start = Json.to_int a in
      let* stop = Json.to_int b in
      match Interval.make ~start ~stop with
      | Some i -> Ok i
      | None ->
          Error (Printf.sprintf "certificate: empty interval [%d,%d)" start stop)
      )
  | _ -> Error "certificate: interval is not a two-element list"

let rect_to_json r =
  Json.Obj
    [
      ("type", ltype_to_json r.ltype);
      ("interval", interval_to_json r.interval);
      ("rate", Json.Int r.rate);
    ]

let rect_of_json json =
  let* ltype = field "type" ltype_of_json json in
  let* interval = field "interval" interval_of_json json in
  let* rate = field "rate" Json.to_int json in
  if rate < 0 then Error "certificate: negative rate"
  else Ok { ltype; interval; rate }

let rects_to_json rects = Json.List (List.map rect_to_json rects)

let rects_of_json = function
  | Json.List items -> map_result rect_of_json items
  | _ -> Error "certificate: rectangle list expected"

let amount_to_json (xi, q) =
  Json.Obj [ ("type", ltype_to_json xi); ("quantity", Json.Int q) ]

let amount_of_json json =
  let* xi = field "type" ltype_of_json json in
  let* q = field "quantity" Json.to_int json in
  if q < 0 then Error "certificate: negative quantity" else Ok (xi, q)

let step_to_json s =
  Json.Obj
    [
      ("index", Json.Int s.index);
      ("need", Json.List (List.map amount_to_json s.need));
      ("subwindow", interval_to_json s.subwindow);
      ("allocation", rects_to_json s.allocation);
    ]

let step_of_json json =
  let* index = field "index" Json.to_int json in
  let* need = list_field "need" amount_of_json json in
  let* subwindow = field "subwindow" interval_of_json json in
  let* allocation = field "allocation" rects_of_json json in
  Ok { index; need; subwindow; allocation }

let part_to_json p =
  Json.Obj
    [
      ("actor", Json.String p.actor);
      ("window", interval_to_json p.window);
      ("breakpoints", Json.List (List.map (fun t -> Json.Int t) p.breakpoints));
      ("steps", Json.List (List.map step_to_json p.steps));
    ]

let part_of_json json =
  let* actor = field "actor" Json.to_str json in
  let* window = field "window" interval_of_json json in
  let* breakpoints = list_field "breakpoints" Json.to_int json in
  let* steps = list_field "steps" step_of_json json in
  Ok { actor; window; breakpoints; steps }

let row_to_json r =
  Json.Obj
    [
      ("type", ltype_to_json r.row_type);
      ("demand", Json.Int r.demand);
      ("capacity", Json.Int r.capacity);
      ("committed", Json.Int r.committed);
    ]

let row_of_json json =
  let* row_type = field "type" ltype_of_json json in
  let* demand = field "demand" Json.to_int json in
  let* capacity = field "capacity" Json.to_int json in
  let* committed = field "committed" Json.to_int json in
  Ok { row_type; demand; capacity; committed }

let evidence_to_json = function
  | Schedules parts ->
      Json.Obj
        [
          ("kind", Json.String "schedules");
          ("parts", Json.List (List.map part_to_json parts));
        ]
  | Infeasible -> Json.Obj [ ("kind", Json.String "infeasible") ]
  | Aggregate_fit { window; rows; fits } ->
      Json.Obj
        [
          ("kind", Json.String "aggregate");
          ("window", interval_to_json window);
          ("fits", Json.Bool fits);
          ("rows", Json.List (List.map row_to_json rows));
        ]
  | Optimistic_fit { window; totals } ->
      Json.Obj
        [
          ("kind", Json.String "optimistic");
          ("window", interval_to_json window);
          ("totals", Json.List (List.map amount_to_json totals));
        ]
  | Stale { deadline } ->
      Json.Obj [ ("kind", Json.String "stale"); ("deadline", Json.Int deadline) ]
  | Duplicate -> Json.Obj [ ("kind", Json.String "duplicate") ]

let evidence_of_json json =
  let* kind = field "kind" Json.to_str json in
  match kind with
  | "schedules" ->
      let* parts = list_field "parts" part_of_json json in
      Ok (Schedules parts)
  | "infeasible" -> Ok Infeasible
  | "aggregate" ->
      let* window = field "window" interval_of_json json in
      let* fits =
        field "fits"
          (function
            | Json.Bool b -> Ok b
            | _ -> Error "certificate: \"fits\" is not a boolean")
          json
      in
      let* rows = list_field "rows" row_of_json json in
      Ok (Aggregate_fit { window; rows; fits })
  | "optimistic" ->
      let* window = field "window" interval_of_json json in
      let* totals = list_field "totals" amount_of_json json in
      Ok (Optimistic_fit { window; totals })
  | "stale" ->
      let* deadline = field "deadline" Json.to_int json in
      Ok (Stale { deadline })
  | "duplicate" -> Ok Duplicate
  | k -> Error (Printf.sprintf "certificate: unknown evidence kind %S" k)

let to_json t =
  Json.Obj
    [
      ("theorem", Json.String (theorem_name t.theorem));
      ("digest", Json.String t.digest);
      ("evidence", evidence_to_json t.evidence);
    ]

let of_json json =
  let* theorem =
    let* name = field "theorem" Json.to_str json in
    theorem_of_name name
  in
  let* digest = field "digest" Json.to_str json in
  let* evidence = field "evidence" evidence_of_json json in
  Ok { theorem; digest; evidence }

(* --- construction --------------------------------------------------------- *)

let part_of_schedule ~actor ~need_of (schedule : Accommodation.schedule) =
  let steps =
    List.map
      (fun (a : Accommodation.step_allocation) ->
        {
          index = a.Accommodation.step_index;
          need = need_of a;
          subwindow = a.Accommodation.subwindow;
          allocation = rects_of_set a.Accommodation.allocation;
        })
      schedule.Accommodation.steps
  in
  {
    actor = Actor_name.to_string actor;
    window = schedule.Accommodation.window;
    breakpoints = schedule.Accommodation.breakpoints;
    steps;
  }

let of_schedules ~theorem ~residual triples =
  let parts =
    List.map
      (fun (actor, (spec : Requirement.complex), schedule) ->
        let spec_steps = Array.of_list spec.Requirement.steps in
        let need_of (a : Accommodation.step_allocation) =
          if a.Accommodation.step_index >= Array.length spec_steps then
            invalid_arg
              "Certificate.of_schedules: schedule/requirement step mismatch"
          else
            List.map
              (fun (am : Requirement.amount) ->
                (am.Requirement.ltype, am.Requirement.quantity))
              spec_steps.(a.Accommodation.step_index)
        in
        part_of_schedule ~actor ~need_of schedule)
      triples
  in
  { theorem; digest = digest residual; evidence = Schedules parts }

let of_committed ~theorem ~residual pairs =
  let parts =
    List.map
      (fun (actor, (schedule : Accommodation.schedule)) ->
        (* The original requirement is gone; record what the commitment
           was actually consuming, which its own allocation trivially
           covers — the certificate then documents the eviction's victim
           rather than re-proving its admission. *)
        let need_of (a : Accommodation.step_allocation) =
          Resource_set.fold
            (fun xi _ acc ->
              let q =
                Resource_set.integrate a.Accommodation.allocation xi
                  a.Accommodation.subwindow
              in
              if q > 0 then (xi, q) :: acc else acc)
            a.Accommodation.allocation []
          |> List.rev
        in
        part_of_schedule ~actor ~need_of schedule)
      pairs
  in
  { theorem; digest = digest residual; evidence = Schedules parts }

let infeasible ~residual =
  { theorem = T4; digest = digest residual; evidence = Infeasible }

let stale ~deadline =
  { theorem = Unchecked; digest = ""; evidence = Stale { deadline } }

let duplicate = { theorem = Unchecked; digest = ""; evidence = Duplicate }

let rows_fit rows =
  List.for_all (fun r -> r.demand <= r.capacity - r.committed) rows

let aggregate ~residual ~window ~rows =
  {
    theorem = T1;
    digest = digest residual;
    evidence = Aggregate_fit { window; rows; fits = rows_fit rows };
  }

let optimistic ~window ~totals =
  {
    theorem = Unchecked;
    digest = "";
    evidence = Optimistic_fit { window; totals };
  }

(* --- verification --------------------------------------------------------- *)

let part_reservation p =
  List.fold_left
    (fun acc s -> Resource_set.union acc (set_of_rects s.allocation))
    Resource_set.empty p.steps

let reservation t =
  match t.evidence with
  | Schedules parts ->
      List.fold_left
        (fun acc p -> Resource_set.union acc (part_reservation p))
        Resource_set.empty parts
  | Infeasible | Aggregate_fit _ | Optimistic_fit _ | Stale _ | Duplicate ->
      Resource_set.empty

(* Rebuild the concrete schedule a part serialized — the inverse of
   {!part_of_schedule} modulo the dropped requirement spec. *)
let schedule_of_part p =
  let steps =
    List.map
      (fun s ->
        {
          Accommodation.step_index = s.index;
          subwindow = s.subwindow;
          allocation = set_of_rects s.allocation;
        })
      p.steps
  in
  let reservation =
    List.fold_left
      (fun acc (s : Accommodation.step_allocation) ->
        Resource_set.union acc s.Accommodation.allocation)
      Resource_set.empty steps
  in
  { Accommodation.window = p.window; breakpoints = p.breakpoints; steps;
    reservation }

let schedules_of_parts t =
  match t.evidence with
  | Schedules parts ->
      List.map (fun p -> (Actor_name.make p.actor, schedule_of_part p)) parts
  | Infeasible | Aggregate_fit _ | Optimistic_fit _ | Stale _ | Duplicate -> []

let check_part p =
  let schedule = schedule_of_part p in
  let spec =
    Requirement.make_complex
      ~steps:
        (List.map
           (fun s -> List.map (fun (xi, q) -> Requirement.amount xi q) s.need)
           p.steps)
      ~window:p.window
  in
  (* theta := the part's own reservation: domination is trivially true
     here, so check_schedule validates only the internal structure —
     tiling, containment, coverage.  Whether the reservation fit the
     residual is the *external* question, answered in [verify]. *)
  match
    Accommodation.check_schedule schedule.Accommodation.reservation spec
      schedule
  with
  | Ok () -> Ok ()
  | Error e -> Error (Printf.sprintf "part %s: %s" p.actor e)

let well_formed t =
  match t.evidence with
  | Schedules parts ->
      List.fold_left
        (fun acc p -> match acc with Error _ -> acc | Ok () -> check_part p)
        (Ok ()) parts
  | Aggregate_fit { rows; fits; _ } ->
      if fits = rows_fit rows then Ok ()
      else Error "aggregate verdict contradicts its own rows"
  | Infeasible | Optimistic_fit _ | Stale _ | Duplicate -> Ok ()

let verify ~residual t =
  let* () = well_formed t in
  let* () =
    if t.digest = "" then Ok ()
    else
      let d = digest residual in
      if String.equal d t.digest then Ok ()
      else
        Error
          (Printf.sprintf
             "residual digest mismatch: certificate %s, reconstructed %s"
             t.digest d)
  in
  match t.evidence with
  | Schedules _ ->
      if Resource_set.dominates residual (reservation t) then Ok ()
      else Error "reservation is not covered by the reconstructed residual"
  | Infeasible | Aggregate_fit _ | Optimistic_fit _ | Stale _ | Duplicate ->
      Ok ()

(* --- pretty-printing ------------------------------------------------------ *)

let pp_times ppf = function
  | [] -> Format.pp_print_string ppf "none"
  | ts ->
      Format.pp_print_list
        ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
        Time.pp ppf ts

let pp_amounts ppf = function
  | [] -> Format.pp_print_string ppf "nothing"
  | amounts ->
      Format.pp_print_list
        ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
        (fun ppf (xi, q) -> Format.fprintf ppf "%d of %a" q Located_type.pp xi)
        ppf amounts

let pp_rects ppf = function
  | [] -> Format.pp_print_string ppf "0"
  | rects ->
      Format.pp_print_list
        ~pp_sep:(fun ppf () -> Format.pp_print_string ppf " + ")
        (fun ppf r ->
          Format.fprintf ppf "%d@%a %a" r.rate Interval.pp r.interval
            Located_type.pp r.ltype)
        ppf rects

let pp_part ppf p =
  Format.fprintf ppf "@[<v 2>part %s on %a, breakpoints: %a" p.actor
    Interval.pp p.window pp_times p.breakpoints;
  List.iter
    (fun s ->
      Format.fprintf ppf "@ step %d on %a needs %a@   reserved %a" s.index
        Interval.pp s.subwindow pp_amounts s.need pp_rects s.allocation)
    p.steps;
  Format.fprintf ppf "@]"

let pp ppf t =
  Format.fprintf ppf "@[<v>theorem %s" (theorem_name t.theorem);
  if t.digest <> "" then
    Format.fprintf ppf ", checked against residual %s" t.digest;
  (match t.evidence with
  | Schedules parts ->
      List.iter (fun p -> Format.fprintf ppf "@ %a" pp_part p) parts
  | Infeasible ->
      Format.fprintf ppf "@ no schedule exists against that residual"
  | Aggregate_fit { window; rows; fits } ->
      Format.fprintf ppf "@ aggregate check on %a: %s" Interval.pp window
        (if fits then "fits" else "does not fit");
      List.iter
        (fun r ->
          Format.fprintf ppf "@ %a: demand %d vs capacity %d - committed %d"
            Located_type.pp r.row_type r.demand r.capacity r.committed)
        rows
  | Optimistic_fit { window; totals } ->
      Format.fprintf ppf "@ admitted optimistically on %a for %a" Interval.pp
        window pp_amounts totals
  | Stale { deadline } ->
      Format.fprintf ppf "@ deadline %a had already passed on arrival" Time.pp
        deadline
  | Duplicate -> Format.fprintf ppf "@ the id was already committed");
  Format.fprintf ppf "@]"
