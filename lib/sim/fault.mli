open Import

(** Fault plans: deterministic schedules of unannounced failures.

    The paper's open-system model requires "the time of leaving must be
    declared at the time of joining" ({!Trace}'s join events carry their
    whole availability interval up front).  A fault plan breaks exactly
    that assumption, so the engine can measure how much deadline
    assurance survives when commitments are violated from outside:

    - {!Revoke}: a capacity slice leaves {e before} its declared
      interval end.  The slice is clipped to the capacity actually
      present, so duplicate or late revocations degrade to no-ops
      instead of corrupting availability.
    - {!Blackout}: a whole node goes dark for a window — every resource
      type located there loses its capacity until the given tick (and
      keeps whatever was declared after it).
    - {!Slowdown}: a transient cost overrun — the believed cost model
      [Phi] under-estimated; the computation's remaining work inflates
      by an integer factor.
    - {!Rejoin}: churned capacity comes back (possibly duplicated by an
      unreliable membership layer — the engine deduplicates nothing and
      must tolerate the repeat).  Rejoins are what give the repair
      ladder's backoff-retry rung something to wait for.

    Plans are plain data; generation from a seeded [Prng] lives in
    [Rota_workload.Gen.random_faults] (this library sits below the
    workload layer). *)

type kind =
  | Revoke of Resource_set.t
  | Blackout of { location : Location.t; until : Time.t }
  | Slowdown of { computation : string; factor : int }
  | Rejoin of Resource_set.t

type t = { at : Time.t; kind : kind }
(** One fault, delivered at tick [at] (before dispatch on that tick). *)

type plan = t list

val kind_name : kind -> string
(** ["revocation"], ["blackout"], ["slowdown"] or ["rejoin"] — stable
    event labels. *)

val sort : plan -> plan
(** By delivery time, stable (same-tick faults keep plan order). *)

val pp_kind : Format.formatter -> kind -> unit

val pp : Format.formatter -> t -> unit
