open Import

type dispatch = Auto | Reservation | Shared

type outcome = {
  computation : string;
  arrived : Time.t;
  deadline : Time.t;
  admitted : bool;
  reject_reason : string option;
  finished : Time.t option;
  unfinished : (Located_type.t * int) list;
  faulted : bool;
}

let on_time o =
  o.admitted
  && match o.finished with Some t -> t <= o.deadline | None -> false

let missed o = o.admitted && not (on_time o)

type type_stat = { ltype : Located_type.t; capacity : int; consumed : int }

type fault_stats = {
  injected : int;
  revoked_quantity : int;
  commitments_revoked : int;
  degraded : int;
  reaccommodated : int;
  migrated : int;
  retries : int;
  retry_successes : int;
  preempted : int;
  work_saved : int;
}

let no_faults =
  {
    injected = 0;
    revoked_quantity = 0;
    commitments_revoked = 0;
    degraded = 0;
    reaccommodated = 0;
    migrated = 0;
    retries = 0;
    retry_successes = 0;
    preempted = 0;
    work_saved = 0;
  }

type report = {
  policy : Admission.policy;
  dispatch_used : dispatch;
  horizon : Time.t;
  offered : int;
  admitted : int;
  rejected : int;
  completed_on_time : int;
  missed_deadlines : int;
  capacity_total : int;
  consumed_total : int;
  type_stats : type_stat list;
  outcomes : outcome list;
  faults : fault_stats;
  anomalies : (Time.t * string) list;
  watchdog : Rota_audit.Watchdog.stats option;
}

let utilization r =
  if r.capacity_total <= 0 then 0.
  else float_of_int r.consumed_total /. float_of_int r.capacity_total

let goodput r =
  if r.offered <= 0 then 0.
  else float_of_int r.completed_on_time /. float_of_int r.offered

let is_rota_family = function
  | Admission.Rota | Admission.Rota_unmerged | Admission.Rota_given_order ->
      true
  | Admission.Aggregate | Admission.Optimistic -> false

(* Processor sharing of one type's rate among wanting actors: an even
   split, with the remainder going to the earliest deadlines. *)
let shared_allocations rate wanters =
  let n = List.length wanters in
  if n = 0 then []
  else
    let base = rate / n and extra = rate mod n in
    List.mapi (fun i w -> (w, if i < extra then base + 1 else base)) wanters

let head_wants (p : State.pending) xi =
  match p.State.steps with
  | [] -> false
  | head :: _ ->
      List.exists
        (fun (a : Requirement.amount) -> Located_type.equal a.Requirement.ltype xi)
        head

type event =
  | Capacity_joined of { at : Time.t; quantity : int }
  | Admitted of { id : string; at : Time.t; reason : string }
  | Rejected of { id : string; at : Time.t; reason : string }
  | Completed of { id : string; at : Time.t }
  | Killed of { id : string; at : Time.t; owed : int }

let event_time = function
  | Capacity_joined { at; _ }
  | Admitted { at; _ }
  | Rejected { at; _ }
  | Completed { at; _ }
  | Killed { at; _ } ->
      at

let payload_of_event ~policy = function
  | Capacity_joined { quantity; _ } ->
      Rota_obs.Events.Capacity_joined { quantity; terms = Rota_obs.Json.Null }
  | Admitted { id; reason; _ } -> Rota_obs.Events.Admitted { id; policy; reason }
  | Rejected { id; reason; _ } -> Rota_obs.Events.Rejected { id; policy; reason }
  | Completed { id; _ } -> Rota_obs.Events.Completed { id }
  | Killed { id; owed; _ } -> Rota_obs.Events.Killed { id; owed }

(* The capacity slice (or a fault's revoked slice) as profile
   rectangles, for the trace; [Null] when no tracer is recording, so the
   untraced path never serializes resource sets. *)
let terms_json set =
  if Rota_obs.Tracer.active () then
    Certificate.rects_to_json (Certificate.rects_of_set set)
  else Rota_obs.Json.Null

(* One formatting path for engine events: delegate to the telemetry
   layer's renderer (the policy label does not show in the rendering). *)
let pp_event ppf e =
  Rota_obs.Events.pp_payload ~sim:(Some (event_time e)) ppf
    (payload_of_event ~policy:"" e)

(* --- metrics ------------------------------------------------------------ *)

let m_runs = Rota_obs.Metrics.counter "engine/runs"
let m_run_s = Rota_obs.Metrics.histogram "engine/run_s"
let m_ticks = Rota_obs.Metrics.counter "engine/ticks"
let m_arrivals = Rota_obs.Metrics.counter "engine/arrivals"
let m_capacity_joins = Rota_obs.Metrics.counter "engine/capacity_joins"
let m_capacity_quantity = Rota_obs.Metrics.counter "engine/capacity_quantity"
let m_completions = Rota_obs.Metrics.counter "engine/completions"
let m_kills = Rota_obs.Metrics.counter "engine/kills"
let m_owed = Rota_obs.Metrics.counter "engine/owed_work"
let m_consumed = Rota_obs.Metrics.counter "engine/consumed_quantity"
let m_faults = Rota_obs.Metrics.counter "engine/faults"
let m_revoked = Rota_obs.Metrics.counter "engine/revoked_quantity"
let m_repairs = Rota_obs.Metrics.counter "engine/repairs"
let m_repair_retries = Rota_obs.Metrics.counter "engine/repair_retries"
let m_preempts = Rota_obs.Metrics.counter "engine/preemptions"
let g_queue = Rota_obs.Metrics.gauge "engine/queue_depth"
let g_running = Rota_obs.Metrics.gauge "engine/running"
let g_ledger = Rota_obs.Metrics.gauge "engine/ledger_size"

let depth_buckets =
  [| 0.; 1.; 2.; 5.; 10.; 20.; 50.; 100.; 200.; 500.; 1000. |]

let h_queue_depth =
  Rota_obs.Metrics.histogram ~buckets:depth_buckets "engine/queue_depth_dist"

let run ?(cost_model = Cost_model.default) ?true_cost_model
    ?(dispatch = Auto) ?(observer = fun (_ : event) -> ()) ?(faults = [])
    ?(repair = true) ~policy trace =
  let true_cost_model = Option.value true_cost_model ~default:cost_model in
  let horizon = Trace.horizon trace in
  let dispatch_used =
    match dispatch with
    | Auto -> if is_rota_family policy then Reservation else Shared
    | (Reservation | Shared) as d -> d
  in
  let policy_label = Admission.policy_name policy in
  ignore
    (Rota_obs.Tracer.new_run ~sim:0
       (Printf.sprintf "engine policy=%s dispatch=%s horizon=%d" policy_label
          (match dispatch_used with
          | Reservation -> "reservation"
          | Shared -> "shared"
          | Auto -> "auto")
          horizon));
  Rota_obs.Metrics.incr m_runs;
  (* Snapshot the installed watchdog (if any) so the report can state
     the verification delta this run contributed — the watchdog itself
     spans commands, not runs. *)
  let watchdog_before =
    Option.map Rota_audit.Watchdog.stats (Rota_audit.Watchdog.installed ())
  in
  Rota_obs.Tracer.with_span ~sim:0 "engine/run" @@ fun () ->
  Rota_obs.Metrics.time m_run_s @@ fun () ->
  let events = Event_queue.of_list (Trace.events trace) in
  let state = ref (State.make ~available:Resource_set.empty ~now:0) in
  let admission = ref (Admission.create ~cost_model policy Resource_set.empty) in
  let outcomes : (string, outcome) Hashtbl.t = Hashtbl.create 64 in
  let arrival_order = ref [] in
  let running : (string, unit) Hashtbl.t = Hashtbl.create 64 in
  let capacity_total = ref 0 and consumed_total = ref 0 in
  let offered = ref 0 in
  let per_type_capacity : (Located_type.t, int) Hashtbl.t = Hashtbl.create 16 in
  let per_type_consumed : (Located_type.t, int) Hashtbl.t = Hashtbl.create 16 in
  let bump tbl xi q =
    Hashtbl.replace tbl xi (q + Option.value (Hashtbl.find_opt tbl xi) ~default:0)
  in
  (* Every run-time notification goes through here: the caller's observer
     plus the telemetry sink, stamped with simulated time, in one place. *)
  let notify ?(terms = Rota_obs.Json.Null) e =
    observer e;
    let payload =
      match payload_of_event ~policy:policy_label e with
      | Rota_obs.Events.Capacity_joined { quantity; terms = _ }
        when terms <> Rota_obs.Json.Null ->
          Rota_obs.Events.Capacity_joined { quantity; terms }
      | p -> p
    in
    Rota_obs.Tracer.emit ~sim:(event_time e) payload
  in
  (* Decision provenance: one structured record per admission-control
     verdict, carrying the certificate the decider actually checked.
     Forcing the lazy certificate serializes schedules, so it happens
     only when a tracer is recording. *)
  let emit_decision t ~id ~action ~reason certificate =
    if Rota_obs.Tracer.active () then
      Rota_obs.Tracer.emit ~sim:t
        (Rota_obs.Events.Decision
           {
             id;
             policy = policy_label;
             action;
             slug = Rota_obs.Slug.of_reason reason;
             certificate = Certificate.to_json (Lazy.force certificate);
             cid = None;
           })
  in
  (* Fault machinery.  All of it is inert when the plan is empty: the
     queues stay empty, [faults_enabled] gates the extra per-tick
     bookkeeping, and a fault-free run takes exactly the same path (and
     produces byte-identical output) as before faults existed. *)
  let fault_plan = Fault.sort faults in
  let faults_enabled = fault_plan <> [] in
  let fault_queue =
    Event_queue.of_list
      (List.map (fun (f : Fault.t) -> (f.Fault.at, f.Fault.kind)) fault_plan)
  in
  (* Backoff retries scheduled by the repair ladder: (id, attempt, window). *)
  let retry_queue : (string * int * Interval.t) Event_queue.t =
    Event_queue.create ()
  in
  let fs = ref no_faults in
  let anomalies = ref [] in
  (* Ids whose commitment a fault touched, and per-computation consumption
     (only tracked under faults) — together they price the work that
     repair saved from being thrown away. *)
  let affected : (string, unit) Hashtbl.t = Hashtbl.create 16 in
  let per_comp_consumed : (string, int) Hashtbl.t = Hashtbl.create 64 in
  (* An anomaly is an internal inconsistency the engine survives by
     degrading (the computation is left to its deadline) instead of
     aborting the whole run; each one is surfaced in the report. *)
  let anomaly ~id ~at reason =
    anomalies := (at, Printf.sprintf "%s: %s" id reason) :: !anomalies;
    Rota_obs.Tracer.emit ~sim:at (Rota_obs.Events.Anomaly { id; reason })
  in
  let mark_faulted id =
    Hashtbl.replace affected id ();
    match Hashtbl.find_opt outcomes id with
    | Some o -> Hashtbl.replace outcomes id { o with faulted = true }
    | None -> ()
  in
  (* Interacting-actor sessions: each segment runs as its own pending batch
     under a derived id, released only once its dependencies complete. *)
  let module Srt = struct
    type t = {
      session : Session.t;
      nodes : Precedence.node list;
      mutable released : string list;  (* node ids accommodated so far *)
      mutable completed : string list;  (* node ids fully drained *)
    }
  end in
  let active_sessions : (string, Srt.t) Hashtbl.t = Hashtbl.create 8 in
  let segment_cid session_id node_id = session_id ^ "/" ^ node_id in

  let record_finish id at =
    match Hashtbl.find_opt outcomes id with
    | Some o when o.finished = None ->
        Hashtbl.replace outcomes id { o with finished = Some at };
        Hashtbl.remove running id;
        admission := Admission.complete !admission ~computation:id;
        Rota_obs.Metrics.incr m_completions;
        notify (Completed { id; at })
    | Some _ | None -> ()
  in

  let consume ~computation ~actor amounts =
    let amounts = List.filter (fun (_, q) -> q > 0) amounts in
    if amounts <> [] then begin
      (* Clamp to what the pending actually still needs, so accounting is
         exact even when a share overshoots the remaining requirement. *)
      let needed =
        match
          List.find_opt
            (fun (p : State.pending) ->
              String.equal p.State.computation computation
              && Actor_name.equal p.State.actor actor)
            !state.State.pending
        with
        | None -> []
        | Some p -> (
            match p.State.steps with
            | [] -> []
            | head :: _ ->
                List.map
                  (fun (xi, q) ->
                    let need =
                      List.fold_left
                        (fun acc (a : Requirement.amount) ->
                          if Located_type.equal a.Requirement.ltype xi then
                            acc + a.Requirement.quantity
                          else acc)
                        0 head
                    in
                    (xi, min q need))
                  amounts)
      in
      let total = List.fold_left (fun acc (_, q) -> acc + q) 0 needed in
      if total > 0 then begin
        consumed_total := !consumed_total + total;
        Rota_obs.Metrics.add m_consumed total;
        List.iter (fun (xi, q) -> bump per_type_consumed xi q) needed;
        if faults_enabled then bump per_comp_consumed computation total;
        state := State.consume_in_head !state ~computation ~actor needed
      end
    end
  in

  let pending_remainder cid =
    List.concat_map
      (fun (p : State.pending) ->
        List.concat_map
          (fun step ->
            List.map
              (fun (a : Requirement.amount) ->
                (a.Requirement.ltype, a.Requirement.quantity))
              step)
          p.State.steps)
      (State.pending_of !state ~computation:cid)
  in

  (* Accommodate every segment whose dependencies have all completed and
     whose work is non-empty; empty segments complete instantly, possibly
     cascading further releases. *)
  let rec release_ready (rt : Srt.t) now =
    let id = rt.Srt.session.Session.id in
    let progressed = ref false in
    List.iter
      (fun (n : Precedence.node) ->
        let nid = n.Precedence.id in
        if
          (not (List.mem nid rt.Srt.released))
          && List.for_all (fun d -> List.mem d rt.Srt.completed) n.Precedence.deps
        then begin
          rt.Srt.released <- nid :: rt.Srt.released;
          progressed := true;
          let steps = n.Precedence.requirement.Requirement.steps in
          if steps = [] then rt.Srt.completed <- nid :: rt.Srt.completed
          else
            (* A segment released at (or past) the deadline has no window
               left; it stays pending-less and the deadline pass kills the
               session. *)
            match
              Interval.make
                ~start:(Time.max now rt.Srt.session.Session.start)
                ~stop:rt.Srt.session.Session.deadline
            with
            | None -> ()
            | Some window -> (
                match
                  State.accommodate_parts !state ~id:(segment_cid id nid)
                    ~window
                    [ (Actor_name.make nid, steps) ]
                with
                | Ok s -> state := s
                | Error e ->
                    (* Formerly fatal: degrade instead — the segment never
                       gets pendings, so the deadline pass kills the
                       session and the run carries on. *)
                    anomaly ~id:(segment_cid id nid) ~at:now
                      ("session segment accommodate: " ^ e))
        end)
      rt.Srt.nodes;
    if !progressed then release_ready rt now
  in

  let process_session_arrival t session =
    incr offered;
    Rota_obs.Metrics.incr m_arrivals;
    let id = session.Session.id in
    arrival_order := id :: !arrival_order;
    let adm, decision = Admission.request_session !admission ~now:t session in
    admission := adm;
    Hashtbl.replace outcomes id
      {
        computation = id;
        arrived = t;
        deadline = session.Session.deadline;
        admitted = decision.Admission.admitted;
        reject_reason =
          (if decision.Admission.admitted then None
           else Some decision.Admission.reason);
        finished = None;
        unfinished = [];
        faulted = false;
      };
    (if decision.Admission.admitted then
       notify (Admitted { id; at = t; reason = decision.Admission.reason })
     else notify (Rejected { id; at = t; reason = decision.Admission.reason }));
    emit_decision t ~id
      ~action:(if decision.Admission.admitted then "admit" else "reject")
      ~reason:decision.Admission.reason decision.Admission.certificate;
    if decision.Admission.admitted then begin
      let rt =
        {
          Srt.session;
          nodes = Session.to_nodes true_cost_model session;
          released = [];
          completed = [];
        }
      in
      Hashtbl.replace active_sessions id rt;
      Hashtbl.replace running id ();
      release_ready rt t;
      if List.length rt.Srt.completed = List.length rt.Srt.nodes then begin
        Hashtbl.remove active_sessions id;
        record_finish id t
      end
    end
  in

  let process_event t = function
    | Trace.Join theta ->
        let clipped = Resource_set.truncate_before theta t in
        let counted =
          match Interval.make ~start:t ~stop:horizon with
          | Some w ->
              let within = Resource_set.restrict clipped w in
              Resource_set.fold
                (fun xi profile () -> bump per_type_capacity xi (Profile.total profile))
                within ();
              Resource_set.total within
          | None -> 0
        in
        capacity_total := !capacity_total + counted;
        state := State.acquire !state clipped;
        admission := Admission.add_capacity !admission clipped;
        Rota_obs.Metrics.incr m_capacity_joins;
        Rota_obs.Metrics.add m_capacity_quantity counted;
        notify ~terms:(terms_json clipped)
          (Capacity_joined { at = t; quantity = counted })
    | Trace.Arrive_session session -> process_session_arrival t session
    | Trace.Arrive computation ->
        incr offered;
        Rota_obs.Metrics.incr m_arrivals;
        let id = computation.Computation.id in
        arrival_order := id :: !arrival_order;
        let adm, decision = Admission.request !admission ~now:t computation in
        admission := adm;
        let outcome =
          {
            computation = id;
            arrived = t;
            deadline = computation.Computation.deadline;
            admitted = decision.Admission.admitted;
            reject_reason =
              (if decision.Admission.admitted then None
               else Some decision.Admission.reason);
            finished = None;
            unfinished = [];
            faulted = false;
          }
        in
        Hashtbl.replace outcomes id outcome;
        (if decision.Admission.admitted then
           notify (Admitted { id; at = t; reason = decision.Admission.reason })
         else
           notify
             (Rejected { id; at = t; reason = decision.Admission.reason }));
        emit_decision t ~id
          ~action:(if decision.Admission.admitted then "admit" else "reject")
          ~reason:decision.Admission.reason decision.Admission.certificate;
        if decision.Admission.admitted then begin
          let conc = Computation.to_concurrent true_cost_model computation in
          let parts =
            List.map2
              (fun (p : Program.t) (part : Requirement.complex) ->
                (p.Program.name, part.Requirement.steps))
              computation.Computation.programs conc.Requirement.parts
          in
          match
            State.accommodate_parts !state ~id
              ~window:(Computation.window computation)
              parts
          with
          | Ok s ->
              state := s;
              Hashtbl.replace running id ();
              (* A workless computation finishes instantly. *)
              if State.pending_of s ~computation:id = [] then record_finish id t
          | Error e ->
              (* Ids are unique per trace and deadlines were checked by the
                 admission layer, so this cannot happen on a healthy run;
                 degrade instead of aborting.  Registering the id keeps
                 its lifecycle intact: the deadline pass will close it
                 with a Killed notification. *)
              Hashtbl.replace running id ();
              anomaly ~id ~at:t ("accommodate failed: " ^ e)
        end
  in

  (* --- fault handling ----------------------------------------------------

     Everything below runs only when the plan is non-empty (and the
     ladder only under a Rota policy with reservation dispatch — the
     baselines hold no commitments to repair). *)
  let repair_enabled =
    repair && is_rota_family policy
    && match dispatch_used with Reservation -> true | Shared | Auto -> false
  in
  (* Rung 4: kill the victim now, releasing what it still holds for the
     survivors, instead of letting it limp to a guaranteed miss. *)
  let preempt t id =
    if Hashtbl.mem running id then begin
      let unfinished = pending_remainder id in
      (match Hashtbl.find_opt outcomes id with
      | Some o -> Hashtbl.replace outcomes id { o with unfinished }
      | None -> ());
      let owed = List.fold_left (fun acc (_, q) -> acc + q) 0 unfinished in
      fs := { !fs with preempted = !fs.preempted + 1 };
      Rota_obs.Metrics.incr m_preempts;
      Rota_obs.Tracer.emit ~sim:t (Rota_obs.Events.Preempted { id; owed });
      state := State.drop !state ~computation:id;
      Hashtbl.remove running id;
      admission := Admission.complete !admission ~computation:id
    end
  in
  (* One walk of the repair ladder for one victim; Retry outcomes are
     queued and re-enter here on a later tick (the victim may have
     finished or been killed in between — then this is a no-op). *)
  let run_repair t ~attempt id window =
    if Hashtbl.mem running id && not (Hashtbl.mem active_sessions id) then begin
      let parts =
        List.map
          (fun (p : State.pending) -> (p.State.actor, p.State.steps))
          (State.pending_of !state ~computation:id)
      in
      if parts <> [] then
        let v = { Repair.computation = id; window; parts } in
        match
          Rota_obs.Tracer.with_span ~sim:t "engine/repair" (fun () ->
              Repair.attempt ~attempt !admission ~now:t v)
        with
        | Repair.Repaired r ->
            admission := r.Repair.controller;
            (match r.Repair.rung with
            | Repair.Reaccommodate ->
                fs := { !fs with reaccommodated = !fs.reaccommodated + 1 }
            | Repair.Migrate _ ->
                (* The rescue rewrote the remaining steps (migration legs
                   prepended, cpu retargeted): swap the pendings to match
                   the new reservation. *)
                fs := { !fs with migrated = !fs.migrated + 1 };
                state := State.drop !state ~computation:id;
                (match
                   State.accommodate_parts !state ~id ~window r.Repair.parts
                 with
                | Ok s -> state := s
                | Error e -> anomaly ~id ~at:t ("migration rewrite: " ^ e)));
            if attempt > 0 then
              fs := { !fs with retry_successes = !fs.retry_successes + 1 };
            Rota_obs.Metrics.incr m_repairs;
            let certificate =
              if Rota_obs.Tracer.active () then
                Certificate.to_json r.Repair.certificate
              else Rota_obs.Json.Null
            in
            Rota_obs.Tracer.emit ~sim:t
              (Rota_obs.Events.Repaired
                 {
                   id;
                   rung = Repair.rung_name r.Repair.rung;
                   attempt;
                   certificate;
                 });
            emit_decision t ~id ~action:"repair"
              ~reason:
                (Printf.sprintf "repaired via %s"
                   (Repair.rung_name r.Repair.rung))
              (lazy r.Repair.certificate)
        | Repair.Retry { at; attempt } ->
            fs := { !fs with retries = !fs.retries + 1 };
            Rota_obs.Metrics.incr m_repair_retries;
            Event_queue.add retry_queue ~time:at (id, attempt, window)
        | Repair.Preempted _ -> preempt t id
    end
  in
  (* Commitments evicted by a revocation: mark and announce each one,
     then run the ladder highest-slack first — when the shrunk residual
     cannot carry everyone, it is the lowest-slack victims that fall
     through to preemption ("kill lowest-slack first"). *)
  let handle_evicted t (evicted : Calendar.entry list) =
    List.iter
      (fun (entry : Calendar.entry) ->
        let id = entry.Calendar.computation in
        mark_faulted id;
        fs := { !fs with commitments_revoked = !fs.commitments_revoked + 1 };
        Rota_obs.Tracer.emit ~sim:t
          (Rota_obs.Events.Commitment_revoked
             { id; quantity = Resource_set.total entry.Calendar.reservation }))
      evicted;
    (* Second pass, after every revocation above is applied: the evict
       decisions' digests pin the post-revocation residual, before any
       repair mutates it. *)
    if Rota_obs.Tracer.active () then begin
      let residual = Admission.residual !admission in
      List.iter
        (fun (entry : Calendar.entry) ->
          emit_decision t ~id:entry.Calendar.computation ~action:"evict"
            ~reason:"commitment evicted by revocation"
            (lazy
              (Certificate.of_committed ~theorem:Certificate.T4 ~residual
                 entry.Calendar.schedules)))
        evicted
    end;
    if repair_enabled then
      List.filter_map
        (fun (entry : Calendar.entry) ->
          let id = entry.Calendar.computation in
          if Hashtbl.mem active_sessions id then
            (* A session holds one merged reservation over many staged
               segments; re-deriving per-segment remainders is beyond the
               ladder — an evicted session stalls and dies at its
               deadline. *)
            None
          else
            let parts =
              List.map
                (fun (p : State.pending) -> (p.State.actor, p.State.steps))
                (State.pending_of !state ~computation:id)
            in
            let v =
              { Repair.computation = id; window = entry.Calendar.window; parts }
            in
            Some (Repair.slack ~now:t v, id, entry.Calendar.window))
        evicted
      |> List.sort (fun (s1, id1, _) (s2, id2, _) ->
             match compare (s2 : int) s1 with
             | 0 -> String.compare id1 id2
             | c -> c)
      |> List.iter (fun (_, id, window) -> run_repair t ~attempt:0 id window)
  in
  (* Withdraw a capacity slice that never announced its leave.  The slice
     is clipped to what is actually still present from [t] on, so
     duplicate or late revocations degrade to no-ops instead of driving
     availability negative. *)
  let revoke_capacity t ~fault slice =
    let actual =
      Resource_set.meet
        (Resource_set.truncate_before slice t)
        (Calendar.capacity (Admission.calendar !admission))
    in
    let within w = Resource_set.restrict actual w in
    let lost =
      match Interval.make ~start:t ~stop:horizon with
      | Some w -> Resource_set.total (within w)
      | None -> 0
    in
    Rota_obs.Tracer.emit ~sim:t
      (Rota_obs.Events.Fault_injected
         { fault; quantity = lost; terms = terms_json actual });
    if not (Resource_set.is_empty actual) then begin
      capacity_total := !capacity_total - lost;
      fs := { !fs with revoked_quantity = !fs.revoked_quantity + lost };
      Rota_obs.Metrics.add m_revoked lost;
      (match Interval.make ~start:t ~stop:horizon with
      | Some w ->
          Resource_set.fold
            (fun xi profile () -> bump per_type_capacity xi (-Profile.total profile))
            (within w) ()
      | None -> ());
      state := State.revoke !state actual;
      let adm, evicted = Admission.revoke !admission actual in
      admission := adm;
      handle_evicted t evicted
    end
  in
  let apply_fault t kind =
    fs := { !fs with injected = !fs.injected + 1 };
    Rota_obs.Metrics.incr m_faults;
    match (kind : Fault.kind) with
    | Fault.Revoke slice -> revoke_capacity t ~fault:"revocation" slice
    | Fault.Blackout { location; until } ->
        (* Everything located at the node — cpu, memory, and network legs
           touching it — goes dark for [t, until); capacity declared past
           [until] survives. *)
        let slice =
          match Interval.make ~start:t ~stop:until with
          | None -> Resource_set.empty
          | Some w ->
              Resource_set.fold
                (fun xi profile acc ->
                  if
                    List.exists (Location.equal location)
                      (Located_type.locations xi)
                  then
                    Resource_set.update xi
                      (fun _ -> Profile.restrict profile w)
                      acc
                  else acc)
                (Calendar.capacity (Admission.calendar !admission))
                Resource_set.empty
        in
        revoke_capacity t ~fault:"blackout" slice
    | Fault.Slowdown { computation = id; factor } ->
        Rota_obs.Tracer.emit ~sim:t
          (Rota_obs.Events.Fault_injected
             { fault = "slowdown"; quantity = 0; terms = Rota_obs.Json.Null });
        if
          factor > 1
          && Hashtbl.mem running id
          && not (Hashtbl.mem active_sessions id)
        then begin
          match State.pending_of !state ~computation:id with
          | [] -> ()
          | first :: _ as pendings ->
              let window = first.State.window in
              let inflate =
                List.map
                  (List.map (fun (a : Requirement.amount) ->
                       Requirement.amount a.Requirement.ltype
                         (a.Requirement.quantity * factor)))
              in
              let quantity steps =
                List.fold_left
                  (fun acc step ->
                    List.fold_left
                      (fun acc (a : Requirement.amount) ->
                        acc + a.Requirement.quantity)
                      acc step)
                  0 steps
              in
              let parts, extra =
                List.fold_left
                  (fun (parts, extra) (p : State.pending) ->
                    ( (p.State.actor, inflate p.State.steps) :: parts,
                      extra + ((factor - 1) * quantity p.State.steps) ))
                  ([], 0) pendings
              in
              let parts = List.rev parts in
              mark_faulted id;
              fs := { !fs with degraded = !fs.degraded + 1 };
              (* [released]: whether the engine is about to hand the
                 commitment's reservation back and re-admit the inflated
                 remainder — the auditor frees the ledger entry iff so. *)
              Rota_obs.Tracer.emit ~sim:t
                (Rota_obs.Events.Commitment_degraded
                   { id; extra; released = repair_enabled });
              state := State.drop !state ~computation:id;
              (match State.accommodate_parts !state ~id ~window parts with
              | Ok s -> state := s
              | Error e -> anomaly ~id ~at:t ("slowdown inflate: " ^ e));
              if repair_enabled then begin
                (* The committed reservation covers only the original
                   work; release it and re-admit the inflated remainder
                   through the ladder. *)
                admission := Admission.complete !admission ~computation:id;
                run_repair t ~attempt:0 id window
              end
        end
    | Fault.Rejoin theta ->
        let quantity =
          match Interval.make ~start:t ~stop:horizon with
          | Some w ->
              Resource_set.total
                (Resource_set.restrict (Resource_set.truncate_before theta t) w)
          | None -> 0
        in
        (* terms stay Null: the Capacity_joined this forwards to carries
           the slice. *)
        Rota_obs.Tracer.emit ~sim:t
          (Rota_obs.Events.Fault_injected
             { fault = "rejoin"; quantity; terms = Rota_obs.Json.Null });
        (* From here on a rejoin is exactly a join: same accounting, same
           Capacity_joined notification — arriving twice is harmless
           (capacity just grows twice), which is the point: the engine
           tolerates an unreliable membership layer's duplicates. *)
        process_event t (Trace.Join theta)
  in

  let dispatch_reservation t =
    let calendar = Admission.calendar !admission in
    List.iter
      (fun (entry : Calendar.entry) ->
        let is_session = Hashtbl.mem active_sessions entry.Calendar.computation in
        List.iter
          (fun (actor, (schedule : Accommodation.schedule)) ->
            let amounts =
              Resource_set.fold
                (fun xi profile acc ->
                  let rate = Profile.rate_at profile t in
                  if rate > 0 then (xi, rate) :: acc else acc)
                schedule.Accommodation.reservation []
            in
            let computation =
              if is_session then
                segment_cid entry.Calendar.computation (Actor_name.name actor)
              else entry.Calendar.computation
            in
            consume ~computation ~actor amounts)
          entry.Calendar.schedules)
      (Calendar.entries calendar)
  in

  let dispatch_shared t =
    let snapshot = !state in
    Resource_set.fold
      (fun xi profile () ->
        let rate = Profile.rate_at profile t in
        if rate > 0 then begin
          let wanters =
            List.filter
              (fun (p : State.pending) ->
                Interval.mem t p.State.window && head_wants p xi)
              snapshot.State.pending
            |> List.sort
                 (fun (p1 : State.pending) (p2 : State.pending) ->
                   match
                     Time.compare
                       (Interval.stop p1.State.window)
                       (Interval.stop p2.State.window)
                   with
                   | 0 -> String.compare p1.State.computation p2.State.computation
                   | c -> c)
          in
          List.iter
            (fun ((p : State.pending), share) ->
              consume ~computation:p.State.computation ~actor:p.State.actor
                [ (xi, share) ])
            (shared_allocations rate wanters)
        end)
      snapshot.State.available ()
  in

  (* Metric sampling: at the configured cadence, fold the engine's own
     GC/allocation footprint into the registry (Runtime_sampler) and
     snapshot every series into the trace so registry series become
     time series (Tracer.sample_metrics is a no-op without a sink +
     enabled registry). *)
  let sample_every = Rota_obs.Tracer.sample_period () in
  if sample_every > 0 then Rota_obs.Runtime_sampler.reset ();
  for t = 0 to horizon - 1 do
    if sample_every > 0 && t mod sample_every = 0 then begin
      Rota_obs.Runtime_sampler.update ~sim:t ();
      Rota_obs.Tracer.sample_metrics ~sim:t ()
    end;
    Rota_obs.Metrics.incr m_ticks;
    if Rota_obs.Metrics.enabled () then begin
      let depth = List.length !state.State.pending in
      Rota_obs.Metrics.set g_queue depth;
      Rota_obs.Metrics.observe h_queue_depth (float_of_int depth);
      Rota_obs.Metrics.set g_running (Hashtbl.length running);
      Rota_obs.Metrics.set g_ledger (Admission.ledger_size !admission)
    end;
    List.iter (fun (_, e) -> process_event t e) (Event_queue.pop_until events t);
    if faults_enabled then begin
      (* Faults land after the tick's declared events and before dispatch:
         a commitment never consumes from capacity revoked "this tick". *)
      List.iter
        (fun (_, kind) -> apply_fault t kind)
        (Event_queue.pop_until fault_queue t);
      List.iter
        (fun (_, (id, attempt, window)) -> run_repair t ~attempt id window)
        (Event_queue.pop_until retry_queue t)
    end;
    (match dispatch_used with
    | Reservation -> dispatch_reservation t
    | Shared -> dispatch_shared t
    | Auto -> assert false);
    (* Completions: session segments first (they may release successors)... *)
    Hashtbl.iter
      (fun id (rt : Srt.t) ->
        let newly_done =
          List.filter
            (fun nid ->
              (not (List.mem nid rt.Srt.completed))
              && State.pending_of !state ~computation:(segment_cid id nid) = [])
            rt.Srt.released
        in
        if newly_done <> [] then begin
          rt.Srt.completed <- newly_done @ rt.Srt.completed;
          release_ready rt (Time.succ t)
        end;
        if List.length rt.Srt.completed = List.length rt.Srt.nodes then begin
          Hashtbl.remove active_sessions id;
          record_finish id (Time.succ t)
        end)
      (Hashtbl.copy active_sessions);
    (* ... then plain computations. *)
    Hashtbl.iter
      (fun id () ->
        if
          (not (Hashtbl.mem active_sessions id))
          && State.pending_of !state ~computation:id = []
        then record_finish id (Time.succ t))
      (Hashtbl.copy running);
    (* ... and deadline kills, recording the work still owed. *)
    Hashtbl.iter
      (fun id () ->
        match Hashtbl.find_opt outcomes id with
        | Some o when o.deadline <= Time.succ t ->
            let unfinished =
              match Hashtbl.find_opt active_sessions id with
              | Some rt ->
                  (* Released segments owe their pending remainder; segments
                     never released owe their whole requirement. *)
                  let from_released =
                    List.concat_map
                      (fun nid -> pending_remainder (segment_cid id nid))
                      rt.Srt.released
                  in
                  let from_unreleased =
                    List.concat_map
                      (fun (n : Precedence.node) ->
                        if List.mem n.Precedence.id rt.Srt.released then []
                        else Requirement.demand_complex n.Precedence.requirement)
                      rt.Srt.nodes
                  in
                  from_released @ from_unreleased
              | None -> pending_remainder id
            in
            Hashtbl.replace outcomes id { o with unfinished };
            let owed =
              List.fold_left (fun acc (_, q) -> acc + q) 0 unfinished
            in
            Rota_obs.Metrics.incr m_kills;
            Rota_obs.Metrics.add m_owed owed;
            notify (Killed { id; at = Time.succ t; owed });
            (match Hashtbl.find_opt active_sessions id with
            | Some rt ->
                List.iter
                  (fun nid ->
                    state := State.drop !state ~computation:(segment_cid id nid))
                  rt.Srt.released;
                Hashtbl.remove active_sessions id
            | None -> state := State.drop !state ~computation:id);
            Hashtbl.remove running id;
            admission := Admission.complete !admission ~computation:id
        | Some _ | None -> ())
      (Hashtbl.copy running);
    state := State.tick !state;
    admission := Admission.advance !admission (Time.succ t)
  done;

  let outcomes_list =
    List.rev_map (fun id -> Hashtbl.find outcomes id) !arrival_order
  in
  let count f = List.length (List.filter f outcomes_list) in
  let type_stats =
    Hashtbl.fold (fun xi capacity acc -> (xi, capacity) :: acc) per_type_capacity []
    |> List.sort (fun (a, _) (b, _) -> Located_type.compare a b)
    |> List.map (fun (ltype, capacity) ->
           {
             ltype;
             capacity;
             consumed =
               Option.value (Hashtbl.find_opt per_type_consumed ltype) ~default:0;
           })
  in
  (* Work saved: consumption already sunk into fault-affected computations
     that nonetheless finished on time — without repair it would have been
     thrown away at their deadlines.  (Session segments consume under
     derived "id/node" ids; credit them to the session.) *)
  let work_saved =
    Hashtbl.fold
      (fun id () acc ->
        match Hashtbl.find_opt outcomes id with
        | Some o when on_time o ->
            let prefix = id ^ "/" in
            Hashtbl.fold
              (fun cid q acc ->
                if String.equal cid id || String.starts_with ~prefix cid then
                  acc + q
                else acc)
              per_comp_consumed acc
        | Some _ | None -> acc)
      affected 0
  in
  {
    policy;
    dispatch_used;
    horizon;
    offered = !offered;
    admitted = count (fun o -> o.admitted);
    rejected = count (fun o -> not o.admitted);
    completed_on_time = count on_time;
    missed_deadlines = count missed;
    capacity_total = !capacity_total;
    consumed_total = !consumed_total;
    type_stats;
    outcomes = outcomes_list;
    faults = { !fs with work_saved };
    anomalies = List.rev !anomalies;
    watchdog =
      (match (Rota_audit.Watchdog.installed (), watchdog_before) with
      | Some w, Some before ->
          Some (Rota_audit.Watchdog.diff_stats (Rota_audit.Watchdog.stats w) before)
      | Some w, None -> Some (Rota_audit.Watchdog.stats w)
      | None, _ -> None);
  }

let pp_report ppf r =
  Format.fprintf ppf
    "%-16s %-11s offered=%3d admitted=%3d rejected=%3d on-time=%3d missed=%3d util=%.2f goodput=%.2f"
    (Admission.policy_name r.policy)
    (match r.dispatch_used with
    | Reservation -> "reservation"
    | Shared -> "shared"
    | Auto -> "auto")
    r.offered r.admitted r.rejected r.completed_on_time r.missed_deadlines
    (utilization r) (goodput r);
  (* The row is byte-identical to the fault-free format unless faults
     actually fired (E6 and friends diff engine output verbatim). *)
  if r.faults.injected > 0 then
    Format.fprintf ppf " faults=%d revoked=%d repaired=%d preempted=%d saved=%d"
      r.faults.injected r.faults.commitments_revoked
      (r.faults.reaccommodated + r.faults.migrated)
      r.faults.preempted r.faults.work_saved;
  (* Same discipline as the fault segment: nothing appended unless a
     watchdog was actually riding the run. *)
  match r.watchdog with
  | None -> ()
  | Some w ->
      Format.fprintf ppf " audited=%d/%d divergent=%d"
        w.Rota_audit.Watchdog.verified w.Rota_audit.Watchdog.decisions
        w.Rota_audit.Watchdog.divergences

let pp_type_stats ppf r =
  List.iter
    (fun s ->
      let util =
        if s.capacity <= 0 then 0.
        else float_of_int s.consumed /. float_of_int s.capacity
      in
      Format.fprintf ppf "%-24s capacity=%6d consumed=%6d util=%.2f@."
        (Format.asprintf "%a" Located_type.pp s.ltype)
        s.capacity s.consumed util)
    r.type_stats
